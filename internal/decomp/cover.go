package decomp

import (
	"repro/internal/cn"
	"repro/internal/tss"
)

// Piece is one fragment instance laid onto a CTSSN: the fragment's walk
// mapped to a simple path of the network. Occs lists the network
// occurrence indexes visited, aligned with the fragment's canonical step
// sequence (Reversed true means the matched path ran against it).
type Piece struct {
	Frag     Fragment
	Occs     []int
	Reversed bool
}

// stepCode packs a step into 7 bits (edge ids < 64, 1 direction bit),
// offset by 1 so a zero byte never encodes a step. Walk keys concatenate
// step codes into a uint64, which bounds keyed walks to 9 steps — beyond
// every M the system uses.
func stepCode(s Step) uint64 {
	return (uint64(s.EdgeID)<<1 | uint64(s.Dir)) + 1
}

const maxKeyedSteps = 9

func walkKey(steps []Step) (uint64, bool) {
	if len(steps) > maxKeyedSteps {
		return 0, false
	}
	var k uint64
	for _, s := range steps {
		k = k<<7 | stepCode(s)
	}
	return k, true
}

// Coverer precomputes the fragment-matching tables of a fixed fragment
// set, so covering many networks against one decomposition (the Fig. 12
// algorithm scans thousands of shapes) avoids rebuilding them per call.
type Coverer struct {
	tg       *tss.Graph
	exact    map[uint64]coverHit
	prefixes map[uint64]bool
}

type coverHit struct {
	frag     Fragment
	reversed bool
}

// NewCoverer builds matching tables for the fragment set.
func NewCoverer(tg *tss.Graph, frags []Fragment) *Coverer {
	c := &Coverer{tg: tg, exact: make(map[uint64]coverHit), prefixes: make(map[uint64]bool)}
	for _, f := range frags {
		c.addFragment(f)
	}
	return c
}

func (c *Coverer) addFragment(f Fragment) {
	for orient, steps := range [][]Step{f.steps, f.reversedSteps()} {
		if len(steps) > maxKeyedSteps {
			continue
		}
		var key uint64
		for _, s := range steps {
			key = key<<7 | stepCode(s)
			c.prefixes[key] = true
		}
		if _, dup := c.exact[key]; !dup {
			c.exact[key] = coverHit{frag: f, reversed: orient == 1}
		}
	}
}

// With returns a new Coverer extended with extra fragments; the receiver
// is unchanged.
func (c *Coverer) With(extra ...Fragment) *Coverer {
	n := &Coverer{tg: c.tg, exact: make(map[uint64]coverHit, len(c.exact)), prefixes: make(map[uint64]bool, len(c.prefixes))}
	for k, v := range c.exact {
		n.exact[k] = v
	}
	for k := range c.prefixes {
		n.prefixes[k] = true
	}
	for _, f := range extra {
		n.addFragment(f)
	}
	return n
}

// Cover finds a minimum-piece cover of the network's edges by instances
// of the given fragments (pieces may overlap on edges). It returns the
// pieces and true if the network can be evaluated with at most maxJoins
// joins, i.e. with at most maxJoins+1 pieces. maxJoins < 0 lifts the
// bound. Choosing the relations to evaluate a CTSSN is NP-complete in
// general (§1); networks are small (≤ M edges), so breadth-first search
// over covered-edge bitmasks is exact and fast.
func Cover(tg *tss.Graph, t *cn.TSSNetwork, frags []Fragment, maxJoins int) ([]Piece, bool) {
	return NewCoverer(tg, frags).Cover(t, maxJoins)
}

// Cover is the Coverer-based version of the package-level Cover.
func (c *Coverer) Cover(t *cn.TSSNetwork, maxJoins int) ([]Piece, bool) {
	nEdges := len(t.Edges)
	if nEdges == 0 {
		return nil, true
	}
	if nEdges > 30 || len(t.Occs) > 60 {
		return nil, false
	}
	pieces := c.matchPieces(t)
	if len(pieces) == 0 {
		return nil, false
	}
	edgeMask := make([]uint32, len(pieces))
	occMask := make([]uint64, len(pieces))
	for i, p := range pieces {
		edgeMask[i] = pathEdgeMask(t, p.Occs)
		var om uint64
		for _, o := range p.Occs {
			om |= 1 << uint(o)
		}
		occMask[i] = om
	}
	full := uint32(1)<<uint(nEdges) - 1

	type prevInfo struct {
		prev  uint32
		piece int32
		depth int32
	}
	pred := map[uint32]prevInfo{0: {piece: -1}}
	frontier := []uint32{0}
	occOfMask := func(m uint32) uint64 {
		var om uint64
		for ei := 0; ei < nEdges; ei++ {
			if m&(1<<uint(ei)) != 0 {
				om |= 1 << uint(t.Edges[ei].From)
				om |= 1 << uint(t.Edges[ei].To)
			}
		}
		return om
	}
	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		info := pred[cur]
		if cur == full {
			var out []Piece
			for m := cur; ; {
				pi := pred[m]
				if pi.piece < 0 {
					break
				}
				out = append(out, pieces[pi.piece])
				m = pi.prev
			}
			joins := len(out) - 1
			return out, maxJoins < 0 || joins <= maxJoins
		}
		if maxJoins >= 0 && int(info.depth) > maxJoins+1 {
			continue
		}
		curOcc := occOfMask(cur)
		for i, pm := range edgeMask {
			nc := cur | pm
			if nc == cur {
				continue
			}
			if _, visited := pred[nc]; visited {
				continue
			}
			// Pieces must stay connected to what is already covered so
			// every join has a shared occurrence; the first piece anchors.
			if cur != 0 && curOcc&occMask[i] == 0 {
				continue
			}
			pred[nc] = prevInfo{prev: cur, piece: int32(i), depth: info.depth + 1}
			frontier = append(frontier, nc)
		}
	}
	return nil, false
}

// MinJoins returns the minimum number of joins needed to evaluate the
// network with the given fragments, or -1 if it cannot be evaluated.
func MinJoins(tg *tss.Graph, t *cn.TSSNetwork, frags []Fragment) int {
	ps, ok := Cover(tg, t, frags, -1)
	if !ok {
		return -1
	}
	if len(ps) == 0 {
		return 0
	}
	return len(ps) - 1
}

// matchPieces enumerates every simple path of the network whose step
// sequence matches one of the fragments (in either orientation), pruning
// the path search with a prefix set of all fragment orientations.
func (c *Coverer) matchPieces(t *cn.TSSNetwork) []Piece {
	exact, prefixes := c.exact, c.prefixes
	adj := netAdjacency(t)
	var out []Piece
	type pieceSig struct {
		lo, hi int // normalized endpoints
		key    uint64
	}
	seen := make(map[pieceSig]bool)
	var dfs func(path []int, key uint64, depth int)
	dfs = func(path []int, key uint64, depth int) {
		if key != 0 {
			if h, ok := exact[key]; ok {
				a, b := path[0], path[len(path)-1]
				if a > b {
					a, b = b, a
				}
				sig := pieceSig{lo: a, hi: b, key: canonPairKey(key, path)}
				if !seen[sig] {
					seen[sig] = true
					occs := append([]int(nil), path...)
					if h.reversed {
						occs = reversedInts(occs)
					}
					out = append(out, Piece{Frag: h.frag, Occs: occs, Reversed: h.reversed})
				}
			}
		}
		if depth >= maxKeyedSteps {
			return
		}
		cur := path[len(path)-1]
		for _, hp := range adj[cur] {
			onPath := false
			for _, v := range path {
				if v == hp.to {
					onPath = true
					break
				}
			}
			if onPath {
				continue
			}
			nk := key<<7 | stepCode(hp.step)
			if !prefixes[nk] {
				continue
			}
			dfs(append(path, hp.to), nk, depth+1)
		}
	}
	for v := range t.Occs {
		dfs([]int{v}, 0, 0)
	}
	return out
}

// canonPairKey dedups a path found from both endpoints: the same piece is
// discovered once per orientation with mirrored keys; normalize by the
// smaller key of the two orientations.
func canonPairKey(key uint64, path []int) uint64 {
	var rev uint64
	k := key
	for k != 0 {
		code := k & 0x7f
		k >>= 7
		// Flip the direction bit of the 7-bit code (offset by 1).
		c := code - 1
		c ^= 1
		rev = rev<<7 | (c + 1)
	}
	if rev < key {
		return rev
	}
	return key
}

func reversedInts(xs []int) []int {
	out := make([]int, len(xs))
	for i, x := range xs {
		out[len(xs)-1-i] = x
	}
	return out
}

type hop struct {
	to   int
	step Step
}

func netAdjacency(t *cn.TSSNetwork) [][]hop {
	adj := make([][]hop, len(t.Occs))
	for _, e := range t.Edges {
		adj[e.From] = append(adj[e.From], hop{to: e.To, step: Step{EdgeID: e.EdgeID, Dir: Fwd}})
		adj[e.To] = append(adj[e.To], hop{to: e.From, step: Step{EdgeID: e.EdgeID, Dir: Bwd}})
	}
	return adj
}

// pathEdgeMask returns the bitmask of network edge indexes a path covers.
func pathEdgeMask(t *cn.TSSNetwork, occs []int) uint32 {
	var m uint32
	for i := 0; i+1 < len(occs); i++ {
		for ei, e := range t.Edges {
			if (e.From == occs[i] && e.To == occs[i+1]) || (e.From == occs[i+1] && e.To == occs[i]) {
				m |= 1 << uint(ei)
			}
		}
	}
	return m
}
