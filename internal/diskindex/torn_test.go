package diskindex_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/datagen"
	"repro/internal/diskindex"
	"repro/internal/kwindex"
)

// TestTornFileTable simulates a torn write by cutting the .xki file at
// every page boundary (plus the degenerate 0, 1 and size-1 cuts) and
// opening the truncated remainder. Every cut must end one of two ways:
// Open refuses the file with a descriptive error, or the reader opens
// and every subsequent lookup either matches the in-memory ground truth
// or records a loud soft-failure in Err(). A panic or a silently wrong
// answer fails the table. The page size is shrunk to 512 so the table
// exercises many distinct boundaries.
func TestTornFileTable(t *testing.T) {
	const pageSize = 512
	ds, err := datagen.TPCH(datagen.DefaultTPCHParams())
	if err != nil {
		t.Fatal(err)
	}
	ix := kwindex.Build(ds.Obj)
	whole := writeIndex(t, ix)
	data, err := os.ReadFile(whole)
	if err != nil {
		t.Fatal(err)
	}
	lists := make(map[string][]kwindex.Posting, len(ix.Terms()))
	for _, term := range ix.Terms() {
		lists[term] = ix.ContainingList(term)
	}
	if len(data) < 4*pageSize {
		t.Fatalf("fixture index is only %d bytes; table needs several pages", len(data))
	}

	cuts := []int{0, 1, len(data) - 1}
	for off := pageSize; off < len(data); off += pageSize {
		cuts = append(cuts, off)
	}
	dir := t.TempDir()
	for _, cut := range cuts {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			path := filepath.Join(dir, fmt.Sprintf("torn-%d.xki", cut))
			if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			rd, err := diskindex.Open(path, diskindex.Options{
				PageSize:       pageSize,
				CacheBytes:     4 * pageSize,
				ListCacheBytes: -1,
			})
			if err != nil {
				if err.Error() == "" {
					t.Fatal("Open rejected the torn file with an empty error message")
				}
				return
			}
			defer rd.Close()
			// The cut spared the header, dictionary and meta checksum, so
			// only posting blocks can be missing. Lookups over them must
			// never fabricate an answer.
			for _, term := range ix.Terms() {
				got := rd.ContainingList(term)
				if !reflect.DeepEqual(got, lists[term]) && rd.Err() == nil {
					t.Fatalf("cut %d: ContainingList(%q) silently wrong with no recorded error", cut, term)
				}
			}
			if err := rd.Err(); err != nil &&
				!errors.Is(err, diskindex.ErrCorrupt) && !errors.Is(err, diskindex.ErrIO) {
				t.Fatalf("cut %d: soft-failure %v is neither ErrCorrupt nor ErrIO", cut, err)
			}
		})
	}
}
