package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
)

// shardClient is the coordinator's handle to one shard replica: an
// HTTP client plus a per-replica circuit breaker, latency histogram and
// last-error record. The breaker opens after consecutive failures so a
// dead replica costs one fast-failed check per query instead of a full
// timeout, and half-opens after its window so a recovered replica
// rejoins without a restart. A replica group holds one shardClient per
// replica; a single-replica group behaves exactly like the pre-replica
// per-shard client.
type shardClient struct {
	id      int    // shard id
	replica int    // replica index within the group
	label   string // "shard 2 at http://..." / "shard 2 replica 1 at http://..."
	base    string // e.g. http://host:port
	hc      *http.Client
	lat     obs.Histogram

	timeout   time.Duration
	threshold int
	window    time.Duration

	mu        sync.Mutex
	fails     int       // guarded by mu — consecutive failures
	openUntil time.Time // guarded by mu — breaker open deadline
	probing   bool      // guarded by mu — a half-open probe is in flight
	lastErr   string    // guarded by mu — most recent failure, for /healthz
}

// errBreakerOpen marks fast-fails; callers treat it like any shard
// failure but skip retries (the breaker exists to avoid them).
var errBreakerOpen = fmt.Errorf("circuit breaker open")

// allow reports whether a call may proceed: yes while closed, and for
// exactly one probe per window while open.
func (c *shardClient) allow() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fails < c.threshold {
		return true
	}
	if time.Now().After(c.openUntil) && !c.probing {
		c.probing = true // half-open: admit one probe
		return true
	}
	return false
}

func (c *shardClient) noteSuccess() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fails = 0
	c.probing = false
	c.lastErr = ""
}

func (c *shardClient) noteFailure(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fails++
	c.probing = false
	if err != nil {
		c.lastErr = err.Error()
	}
	if c.fails >= c.threshold {
		c.openUntil = time.Now().Add(c.window)
	}
}

// releaseProbe frees the half-open probe slot without recording an
// outcome. A cancelled probe — a hedge loser cancelled by the winner, a
// caller-abandoned query, a deadline that expired coordinator-side —
// says nothing about the replica's health, but probing is only ever
// cleared by noteSuccess/noteFailure: without this release the slot
// would be held forever and allow() would fast-fail the replica even
// after it recovers.
func (c *shardClient) releaseProbe() {
	c.mu.Lock()
	c.probing = false
	c.mu.Unlock()
}

// broken reports whether the breaker currently fast-fails (for health).
func (c *shardClient) broken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fails >= c.threshold && time.Now().Before(c.openUntil)
}

// state snapshots the routing inputs: whether the breaker fast-fails
// and the consecutive-failure count (replica ordering prefers clean
// replicas over recovering ones).
func (c *shardClient) state() (broken bool, fails int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fails >= c.threshold && time.Now().Before(c.openUntil), c.fails
}

// breakerLabel renders the breaker for /healthz: "closed" while under
// the threshold, "open" while fast-failing, "half-open" once the window
// elapsed and a probe would be (or is being) admitted.
func (c *shardClient) breakerLabel() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fails < c.threshold {
		return "closed"
	}
	if time.Now().Before(c.openUntil) {
		return "open"
	}
	return "half-open"
}

// lastError returns the most recent failure recorded against this
// replica ("" after a success), for /healthz operator visibility.
func (c *shardClient) lastError() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastErr
}

// call POSTs a JSON request with bounded retries (transient transport
// errors and 5xx responses only; cancellation and breaker fast-fails
// are not retried) and decodes the JSON response. Successful calls feed
// the replica's latency histogram, which drives routing and hedging.
func (c *shardClient) call(ctx context.Context, path string, reqBody, respBody any, retry fault.RetryPolicy) error {
	return c.dial(ctx, path, reqBody, respBody, retry, true)
}

// probe is call without the latency observation. Health and validation
// probes (/shard/stats) are cheap and unrepresentative of query work,
// and the histogram drives replica ordering and the p95-derived hedge
// delay: a 1s stream of stats samples would mark a cold replica
// "proven" and drag its quantiles toward zero, causing over-hedging.
func (c *shardClient) probe(ctx context.Context, path string, reqBody, respBody any, retry fault.RetryPolicy) error {
	return c.dial(ctx, path, reqBody, respBody, retry, false)
}

func (c *shardClient) dial(ctx context.Context, path string, reqBody, respBody any, retry fault.RetryPolicy, observe bool) error {
	if !c.allow() {
		return fmt.Errorf("%s: %w", c.describe(), errBreakerOpen)
	}
	var stop error // cancellation: parked here to end the retry loop early
	err := retry.Do(func() error {
		err := c.once(ctx, path, reqBody, respBody, observe)
		if err != nil && ctx.Err() != nil {
			stop = ctx.Err()
			return nil
		}
		return err
	})
	if stop != nil {
		err = stop
	}
	if err != nil {
		if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
			// A cancelled or hedged-away request says nothing about the
			// replica's health: don't charge its breaker for it — but do
			// free the half-open probe slot this call may hold, or the
			// replica stays fast-failed forever.
			c.releaseProbe()
			return fmt.Errorf("%s: %w", c.describe(), err)
		}
		c.noteFailure(err)
		return fmt.Errorf("%s: %w", c.describe(), err)
	}
	c.noteSuccess()
	return nil
}

// describe names the replica in errors; the label is set by the
// coordinator at construction and falls back to the id/base pair.
func (c *shardClient) describe() string {
	if c.label != "" {
		return c.label
	}
	return fmt.Sprintf("shard %d at %s", c.id, c.base)
}

func (c *shardClient) once(ctx context.Context, path string, reqBody, respBody any, observe bool) error {
	body, err := json.Marshal(reqBody)
	if err != nil {
		return err
	}
	rctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body) //xk:ignore errdrop draining for connection reuse
		resp.Body.Close()                     //xk:ignore errdrop response body close cannot lose data
	}()
	if resp.StatusCode != http.StatusOK {
		var er errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&er) //xk:ignore errdrop best-effort error detail; status carries the failure
		return fmt.Errorf("%s: HTTP %d: %s", path, resp.StatusCode, er.Error)
	}
	if err := json.NewDecoder(resp.Body).Decode(respBody); err != nil {
		return err
	}
	// Only successful attempts feed the routing histogram: connection-
	// refused fast failures (~0ms) and hedge-cancelled losers would
	// otherwise make a flapping replica rank fastest and drag the
	// p95-derived hedge delay toward the clamp floor.
	if observe {
		c.lat.Observe(time.Since(start))
	}
	return nil
}
