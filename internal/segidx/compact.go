package segidx

import (
	"fmt"
	"os"

	"repro/internal/kwindex"
)

// Merging layers — whether sealed memtables at flush or committed
// segments at compaction — follows one rule: walking newest to oldest,
// the first layer to claim a target object owns it. An owning document
// entry carries that TO's postings into the merged output; an owning
// tombstone contributes nothing and is itself kept only while an even
// older layer (an earlier segment or the base index) could still hold
// postings it must mask. Compacting the full segment set of a baseless
// store therefore eliminates every tombstone.

// mergeMemtables merges sealed memtables (oldest first) into one
// segment's content.
func mergeMemtables(mems []*memtable) (postings map[string][]kwindex.Posting, docs map[int64]string, tombs map[int64]bool) {
	type snap struct {
		postings map[string][]kwindex.Posting
		docs     map[int64]string
		tombs    map[int64]bool
	}
	snaps := make([]snap, len(mems))
	for i, m := range mems {
		p, d, t := m.snapshot()
		snaps[i] = snap{p, d, t}
	}
	owner := make(map[int64]int) // TO → index of the layer whose document owns it
	docs = make(map[int64]string)
	tombs = make(map[int64]bool)
	claimed := make(map[int64]bool)
	for i := len(snaps) - 1; i >= 0; i-- {
		for to, sum := range snaps[i].docs {
			if !claimed[to] {
				claimed[to] = true
				owner[to] = i
				docs[to] = sum
			}
		}
		for to := range snaps[i].tombs {
			if !claimed[to] {
				claimed[to] = true
				tombs[to] = true
			}
		}
	}
	postings = make(map[string][]kwindex.Posting)
	for i, sn := range snaps {
		for tok, ps := range sn.postings {
			for _, p := range ps {
				if o, ok := owner[p.TO]; ok && o == i {
					postings[tok] = append(postings[tok], p)
				}
			}
		}
	}
	return postings, docs, tombs
}

// mergeSegments merges committed segments (oldest first) into one
// segment's content, reading postings back through each segment's
// paged reader.
func mergeSegments(segs []*segment) (postings map[string][]kwindex.Posting, docs map[int64]string, tombs map[int64]bool, err error) {
	owner := make(map[int64]int)
	docs = make(map[int64]string)
	tombs = make(map[int64]bool)
	claimed := make(map[int64]bool)
	for i := len(segs) - 1; i >= 0; i-- {
		for to, sum := range segs[i].docs {
			if !claimed[to] {
				claimed[to] = true
				owner[to] = i
				docs[to] = sum
			}
		}
		for to := range segs[i].tombs {
			if !claimed[to] {
				claimed[to] = true
				tombs[to] = true
			}
		}
	}
	postings = make(map[string][]kwindex.Posting)
	for i, sg := range segs {
		// Terms are tokens, and tokenization is idempotent on its own
		// output, so ContainingList resolves each term exactly.
		for _, term := range sg.rd.Terms() {
			for _, p := range sg.rd.ContainingList(term) {
				if o, ok := owner[p.TO]; ok && o == i {
					postings[term] = append(postings[term], p)
				}
			}
		}
		// The reader soft-fails lookups; a compaction must not commit a
		// merged segment that silently dropped postings.
		if err := sg.rd.Err(); err != nil {
			return nil, nil, nil, fmt.Errorf("segment %d: %w", sg.id, err)
		}
	}
	return postings, docs, tombs, nil
}

// Compact merges every committed segment into one new generation,
// resolving newest-wins updates and dropping tombstones that no longer
// mask anything (all of them, when the store has no base index). The
// memtable layers are untouched — compaction never blocks ingest — and
// the manifest rename is the commit point: a crash at any earlier
// instant leaves the old segment set in force. With fewer than two
// segments there is nothing to merge and Compact is a no-op.
func (s *Store) Compact() error {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if len(s.segs) < 2 {
		s.mu.Unlock()
		return nil
	}
	old := append([]*segment(nil), s.segs...)
	segID := s.man.NextID
	s.man.NextID++
	walFloor := s.man.WALFloor
	nextID := s.man.NextID
	hasBase := s.opts.Base != nil
	s.mu.Unlock()

	postings, docs, tombs, err := mergeSegments(old)
	if err != nil {
		return fmt.Errorf("segidx: compaction read: %w", err)
	}
	if !hasBase {
		tombs = nil // no base below the merged set: nothing left to mask
	}

	var xkiCRC, metaCRC uint32
	err = s.retryPolicy().Do(func() error {
		var werr error
		xkiCRC, metaCRC, werr = writeSegment(s.segPath(segID), s.segMetaPath(segID), postings, docs, tombs)
		return werr
	})
	if err != nil {
		return fmt.Errorf("segidx: writing compacted segment %d: %w", segID, err)
	}
	if err := s.crashPoint("compact:after-segment-write"); err != nil {
		return err
	}

	ent := manifestSegment{ID: segID, XKICRC: xkiCRC, MetaCRC: metaCRC}
	seg, err := openSegment(s.segPath(segID), s.segMetaPath(segID), ent, s.readerOptions())
	if err != nil {
		return fmt.Errorf("segidx: reopening compacted segment %d: %w", segID, err)
	}
	newMan := &manifest{WALFloor: walFloor, NextID: nextID, Segments: []manifestSegment{ent}}
	if err := s.commit(seg, "compact", newMan, func() {
		// In-flight reads may still hold the old readers through a layer
		// snapshot; retire them and let Close release the handles.
		for _, o := range old {
			s.retired = append(s.retired, o.rd)
		}
		s.segs = []*segment{seg}
		s.compacts++
	}); err != nil {
		return err
	}

	// The superseded files are unreferenced now. Open handles keep the
	// unlinked inodes readable for snapshots already taken.
	for _, o := range old {
		os.Remove(s.segPath(o.id))     //xk:ignore errdrop best-effort GC; a survivor is swept at the next open
		os.Remove(s.segMetaPath(o.id)) //xk:ignore errdrop best-effort GC; a survivor is swept at the next open
	}
	return nil
}
