// Package exec implements XKeyword's execution module (paper §6):
// nested-loop evaluation of CTSSN plans over connection relations, with
// the optimized partial-result caching algorithm (and the naive
// non-caching baseline of DISCOVER/DBXplorer), a hash-join strategy for
// full-result queries over unindexed decompositions, and the thread-pool
// top-k evaluation across candidate networks.
package exec

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/cn"
	"repro/internal/kwindex"
	"repro/internal/optimizer"
	"repro/internal/relstore"
	"repro/internal/tss"
)

// Result is one MTTON: an assignment of target objects to the CTSSN's
// occurrences. Its score is the size of the corresponding MTNN in schema
// edges — smaller is better.
type Result struct {
	Net   *cn.TSSNetwork
	Bind  []int64 // TO id per occurrence
	Score int
	// Ord is the result's position in the canonical enumeration order:
	// the plan's index in the ascending-score plan list (high 32 bits)
	// and the result's emission sequence within that plan (low 32 bits).
	// Plans are sorted ascending by score, so ordering by Ord alone
	// refines ordering by Score; (Score, Ord) is a total order that is
	// identical on every replica executing the same plan list, which is
	// what lets a scatter-gather coordinator merge per-shard top-k
	// streams byte-identically to single-node execution.
	Ord int64
}

// MakeOrd packs a plan index and a per-plan emission sequence into a
// canonical-order key. Both must fit in 32 bits, which they do by a wide
// margin (plan counts are bounded by CN generation, sequences by result
// enumeration).
func MakeOrd(plan, seq int) int64 { return int64(plan)<<32 | int64(seq) }

// OrdLess orders results by (Score, Ord) — the canonical total order all
// ranked surfaces (single-node rank stage, top-k collection, coordinator
// merge) agree on.
func OrdLess(a, b Result) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Ord < b.Ord
}

// Key returns a canonical identity for deduplication.
func (r Result) Key() string {
	return fmt.Sprint(r.Net.Canon(), r.Bind)
}

// Executor evaluates plans. It is safe for concurrent use; the lookup
// cache is shared across goroutines and across the plans of one keyword
// query, which is how common subexpressions between candidate networks
// are reused.
type Executor struct {
	Store *relstore.Store
	TSS   *tss.Graph
	// Index is the master index backend — in-memory (*kwindex.Index) or
	// disk-backed (*diskindex.Reader); the executor only reads it.
	Index kwindex.Source
	// Cache enables the optimized execution algorithm: connection
	// relation lookups are memoized so repeated queries are not re-sent
	// to the store (§6). Nil runs the naive algorithm.
	Cache *LookupCache
	// NoPushdown disables keyword-filter pushdown (§8's "tighter
	// integration of the master index into the execution engine"):
	// normally, when a probe would return many rows but a newly bound
	// column is keyword-constrained to a small TO set, the executor
	// issues composite (probe value, keyword TO) lookups instead of
	// filtering after the fact. Used for ablation.
	NoPushdown bool
}

// LookupCache memoizes relation lookups with a bounded entry count; when
// full, new results are not cached (the paper re-sends queries when its
// fixed-size cache fills).
type LookupCache struct {
	mu      sync.Mutex
	entries map[lookupKey][]relstore.Row
	cap     int
	hits    int64
	misses  int64
}

type lookupKey struct {
	rel  string
	col  int
	val  int64
	col2 int // -1 for single-column lookups
	val2 int64
}

// NewLookupCache returns a cache bounded to capacity entries
// (0 = unlimited).
func NewLookupCache(capacity int) *LookupCache {
	return &LookupCache{entries: make(map[lookupKey][]relstore.Row), cap: capacity}
}

// Stats returns cumulative hit and miss counts.
func (c *LookupCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

func (c *LookupCache) get(k lookupKey) ([]relstore.Row, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rows, ok := c.entries[k]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return rows, ok
}

func (c *LookupCache) put(k lookupKey, rows []relstore.Row) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cap > 0 && len(c.entries) >= c.cap {
		return
	}
	c.entries[k] = rows
}

// lookup probes a connection relation, through the cache when enabled.
func (ex *Executor) lookup(rel *relstore.Relation, col int, val int64) []relstore.Row {
	if ex.Cache == nil {
		rows, _ := rel.LookupPrefix([]int{col}, []int64{val})
		return rows
	}
	k := lookupKey{rel: rel.Name, col: col, val: val, col2: -1}
	if rows, ok := ex.Cache.get(k); ok {
		return rows
	}
	rows, _ := rel.LookupPrefix([]int{col}, []int64{val})
	ex.Cache.put(k, rows)
	return rows
}

// lookup2 is lookup for composite (pushdown) probes.
func (ex *Executor) lookup2(rel *relstore.Relation, cols []int, vals []int64) []relstore.Row {
	if ex.Cache == nil {
		rows, _ := rel.LookupPrefix(cols, vals)
		return rows
	}
	k := lookupKey{rel: rel.Name, col: cols[0], val: vals[0], col2: cols[1], val2: vals[1]}
	if rows, ok := ex.Cache.get(k); ok {
		return rows
	}
	rows, _ := rel.LookupPrefix(cols, vals)
	ex.Cache.put(k, rows)
	return rows
}

// Evaluate runs the plan's nested-loop pipeline, calling emit for every
// result; emit returns false to stop early (top-k). The traversal is
// depth-first in plan-step order, exactly the §6 nesting.
func (ex *Executor) Evaluate(p *optimizer.Plan, emit func(Result) bool) error {
	return ex.EvaluateContext(context.Background(), p, emit)
}

// EvaluateContext is Evaluate with cooperative cancellation: the join
// loops poll ctx periodically (and exactly at every emission), so a
// cancelled context stops an in-flight evaluation mid-join and
// EvaluateContext returns ctx's error. No result is emitted after the
// cancellation is observed.
func (ex *Executor) EvaluateContext(ctx context.Context, p *optimizer.Plan, emit func(Result) bool) error {
	if len(p.Steps) == 0 {
		return fmt.Errorf("exec: empty plan")
	}
	cc := newCancelCheck(ctx)
	if cc.err != nil {
		return cc.err
	}
	bind := make([]int64, len(p.Net.Occs))
	var run func(step int) bool // returns false to stop everything
	run = func(step int) bool {
		if step == len(p.Steps) {
			if cc.now() {
				return false
			}
			out := Result{Net: p.Net, Bind: append([]int64(nil), bind...), Score: p.Net.Score()}
			return emit(out)
		}
		s := p.Steps[step]
		if s.Seed {
			for _, to := range p.SortedFilter(s.Occ) {
				if cc.tick() {
					return false
				}
				if boundElsewhere(bind, s.Occ, to) {
					continue
				}
				bind[s.Occ] = to
				if !run(step + 1) {
					bind[s.Occ] = 0
					return false
				}
				bind[s.Occ] = 0
			}
			return true
		}
		rel := ex.Store.Relation(s.Piece.Frag.RelationName())
		if rel == nil {
			panic(fmt.Sprintf("exec: relation %s not materialized", s.Piece.Frag.RelationName()))
		}
		probeOcc := s.Piece.Occs[s.ProbePos]
		rows := ex.probe(rel, s, p, bind[probeOcc])
	rowLoop:
		for _, row := range rows {
			if cc.tick() {
				return false
			}
			for _, pos := range s.CheckPos {
				if row[pos] != bind[s.Piece.Occs[pos]] {
					continue rowLoop
				}
			}
			for _, pos := range s.NewPos {
				occ := s.Piece.Occs[pos]
				to := row[pos]
				if f := p.Filters[occ]; f != nil && !f[to] {
					continue rowLoop
				}
				if boundElsewhere(bind, occ, to) {
					continue rowLoop
				}
			}
			// Distinctness among the new positions themselves.
			for i, pi := range s.NewPos {
				for _, pj := range s.NewPos[i+1:] {
					if row[pi] == row[pj] {
						continue rowLoop
					}
				}
			}
			for _, pos := range s.NewPos {
				bind[s.Piece.Occs[pos]] = row[pos]
			}
			ok := run(step + 1)
			for _, pos := range s.NewPos {
				bind[s.Piece.Occs[pos]] = 0
			}
			if !ok {
				return false
			}
		}
		return true
	}
	run(0)
	return cc.err
}

// pushdownMaxSet bounds how large a keyword TO set is still worth
// iterating as composite point lookups instead of one range probe.
const pushdownMaxSet = 8

// probe fetches the rows matching the step's probe binding, pushing a
// small keyword filter into a composite clustered lookup when possible
// (§8's tighter master-index integration).
func (ex *Executor) probe(rel *relstore.Relation, s optimizer.Step, p *optimizer.Plan, val int64) []relstore.Row {
	if !ex.NoPushdown {
		for _, pos := range s.NewPos {
			occ := s.Piece.Occs[pos]
			f := p.Filters[occ]
			if f == nil || len(f) == 0 || len(f) > pushdownMaxSet {
				continue
			}
			cols := []int{s.ProbePos, pos}
			if _, ok := rel.ClusteredOn(cols); !ok {
				continue
			}
			var rows []relstore.Row
			for _, to := range SortedSet(f) {
				rows = append(rows, ex.lookup2(rel, cols, []int64{val, to})...)
			}
			return rows
		}
	}
	return ex.lookup(rel, s.ProbePos, val)
}

// boundElsewhere reports whether TO to is already bound to an occurrence
// other than occ (results are trees of distinct target objects).
func boundElsewhere(bind []int64, occ int, to int64) bool {
	for i, b := range bind {
		if i != occ && b == to {
			return true
		}
	}
	return false
}

// All evaluates the plan to completion and returns every result.
func (ex *Executor) All(p *optimizer.Plan) ([]Result, error) {
	var out []Result
	err := ex.Evaluate(p, func(r Result) bool {
		out = append(out, r)
		return true
	})
	return out, err
}
