package qserve_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/qserve"
)

// healthEngine is a fakeEngine that also reports index-backend health,
// like *core.System does.
type healthEngine struct {
	fakeEngine
	state core.IndexHealth
	err   error
}

func (h *healthEngine) IndexHealthState() (core.IndexHealth, error) {
	return h.state, h.err
}

// TestCancellationDuringQueueWait asserts a caller that gives up while
// queued for an execution slot gets its own ctx.Err(), not
// ErrOverloaded: the server was not proven overloaded, the client left.
func TestCancellationDuringQueueWait(t *testing.T) {
	eng := &fakeEngine{block: make(chan struct{})}
	qs := qserve.New(eng, qserve.Options{
		MaxEntries:    -1,
		MaxConcurrent: 1,
		QueueWait:     10 * time.Second, // far longer than the test
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = qs.Query(context.Background(), []string{"occupier"}, 10)
	}()
	for qs.InFlight() == 0 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := qs.Query(ctx, []string{"queued", "then", "cancelled"}, 10)
		errc <- err
	}()
	// Give the query time to enter the queue wait, then hang up.
	for qs.Stats().Waiters == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if errors.Is(err, qserve.ErrOverloaded) {
			t.Fatal("cancellation misreported as overload")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled admission never returned")
	}
	if st := qs.Stats(); st.Cancels != 1 || st.Sheds != 0 {
		t.Fatalf("cancels=%d sheds=%d, want 1/0", st.Cancels, st.Sheds)
	}
	close(eng.block)
	<-done
}

// TestBreakerFastFailsAfterShed asserts that once a shed proves the
// server saturated, the next admission is rejected immediately instead
// of paying the full queue wait, and that a successful admission closes
// the breaker again.
func TestBreakerFastFailsAfterShed(t *testing.T) {
	const wait = 200 * time.Millisecond
	eng := &fakeEngine{block: make(chan struct{})}
	qs := qserve.New(eng, qserve.Options{
		MaxEntries:    -1,
		MaxConcurrent: 1,
		QueueWait:     wait,
		BreakerWindow: 10 * time.Second, // hold open for the whole test
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = qs.Query(context.Background(), []string{"occupier"}, 10)
	}()
	for qs.InFlight() == 0 {
		time.Sleep(time.Millisecond)
	}
	if _, err := qs.Query(context.Background(), []string{"first"}, 10); !errors.Is(err, qserve.ErrOverloaded) {
		t.Fatalf("first err = %v, want ErrOverloaded", err)
	}
	st := qs.Stats()
	if !st.BreakerOpen || st.BreakerTrips != 1 {
		t.Fatalf("breaker open=%v trips=%d after shed, want open/1", st.BreakerOpen, st.BreakerTrips)
	}
	if st.RetryAfterMillis <= 0 {
		t.Fatalf("retry-after hint %dms, want positive", st.RetryAfterMillis)
	}
	start := time.Now()
	if _, err := qs.Query(context.Background(), []string{"second"}, 10); !errors.Is(err, qserve.ErrOverloaded) {
		t.Fatalf("second err = %v, want ErrOverloaded", err)
	}
	if fast := time.Since(start); fast > wait/2 {
		t.Fatalf("breaker did not fast-fail: rejection took %v (queue wait %v)", fast, wait)
	}
	// Free the slot: the next admission must succeed and close the
	// breaker even though its window has not expired.
	close(eng.block)
	<-done
	if _, err := qs.Query(context.Background(), []string{"after", "recovery"}, 10); err != nil {
		t.Fatalf("post-recovery query failed: %v", err)
	}
	if st := qs.Stats(); st.BreakerOpen {
		t.Fatal("breaker still open after a successful admission")
	}
}

// TestHealthStates maps each index-backend state to the serving-layer
// health the /healthz endpoint reports.
func TestHealthStates(t *testing.T) {
	for _, tc := range []struct {
		state core.IndexHealth
		err   error
		want  qserve.Health
	}{
		{core.IndexOK, nil, qserve.HealthOK},
		{core.IndexDegraded, errors.New("sidecar checksum mismatch"), qserve.HealthDegraded},
		{core.IndexUnavailable, errors.New("rebuild failed"), qserve.HealthUnavailable},
	} {
		var logged []string
		eng := &healthEngine{state: tc.state, err: tc.err}
		qs := qserve.New(eng, qserve.Options{
			MaxEntries: -1,
			Logf:       func(format string, args ...any) { logged = append(logged, format) },
		})
		got, detail := qs.Health()
		if got != tc.want {
			t.Fatalf("state %s: health = %s, want %s", tc.state, got, tc.want)
		}
		if tc.err != nil && detail == "" {
			t.Fatalf("state %s: no detail for unhealthy state", tc.state)
		}
		st := qs.Stats()
		if st.IndexState != string(tc.state) {
			t.Fatalf("snapshot index_state = %q, want %q", st.IndexState, tc.state)
		}
		if tc.err != nil {
			if st.IndexErr == "" {
				t.Fatalf("state %s: index error not surfaced in stats", tc.state)
			}
			if len(logged) != 1 {
				t.Fatalf("state %s: index failure logged %d times, want once", tc.state, len(logged))
			}
		}
	}
}

// TestHealthEngineStillServes sanity-checks that the optional health
// interface does not interfere with serving.
func TestHealthEngineStillServes(t *testing.T) {
	eng := &healthEngine{state: core.IndexOK}
	eng.results = []exec.Result{}
	qs := qserve.New(eng, qserve.Options{MaxEntries: -1})
	if _, err := qs.Query(context.Background(), []string{"a"}, 5); err != nil {
		t.Fatal(err)
	}
}
