package rank_test

import (
	"reflect"
	"testing"

	"repro/internal/cn"
	"repro/internal/exec"
	"repro/internal/kwindex"
	"repro/internal/rank"
)

func TestRegistry(t *testing.T) {
	for _, name := range append([]string{""}, rank.Names()...) {
		sc, err := rank.New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if name != "" && sc.Name() != name {
			t.Fatalf("New(%q).Name() = %q", name, sc.Name())
		}
		if !rank.Valid(name) {
			t.Fatalf("Valid(%q) = false", name)
		}
	}
	if _, err := rank.New("bm25"); err == nil {
		t.Fatal("unknown scorer did not error")
	}
	if rank.Valid("bm25") {
		t.Fatal("Valid accepted an unknown scorer")
	}
	if !rank.IsDefault(nil) || !rank.IsDefault(rank.EdgeCount{}) {
		t.Fatal("nil/EdgeCount must be default")
	}
	if rank.IsDefault(rank.Weighted{}) || rank.IsDefault(rank.Diversified{}) {
		t.Fatal("non-default scorer reported as default")
	}
}

// res builds a synthetic result: score, canonical sequence, bindings,
// and one keyword occurrence per (keyword, schemaNode) pair.
func res(score, seq int, bind []int64, occs ...cn.KeywordAt) exec.Result {
	net := &cn.TSSNetwork{}
	for _, ka := range occs {
		net.Occs = append(net.Occs, cn.TSSOcc{Segment: "s", Keywords: []cn.KeywordAt{ka}})
	}
	return exec.Result{Net: net, Bind: bind, Score: score, Ord: exec.MakeOrd(0, seq)}
}

func ords(rs []exec.Result) []int64 {
	out := make([]int64, len(rs))
	for i, r := range rs {
		out[i] = r.Ord
	}
	return out
}

func TestEdgeCountRestoresCanonicalOrder(t *testing.T) {
	a := res(2, 0, []int64{1})
	b := res(2, 1, []int64{2})
	c := res(3, 0, []int64{3})
	got := rank.EdgeCount{}.Rank(rank.Context{}, []exec.Result{c, b, a}, 0)
	if !reflect.DeepEqual(ords(got), []int64{a.Ord, b.Ord, c.Ord}) {
		t.Fatalf("order = %x", ords(got))
	}
	got = rank.EdgeCount{}.Rank(rank.Context{}, []exec.Result{c, b, a}, 2)
	if len(got) != 2 || got[0].Ord != a.Ord {
		t.Fatalf("truncation broke: %x", ords(got))
	}
}

// fakeIndex is a kwindex.Source with fixed per-(keyword, schema node)
// TO sets, for exercising the Weighted scorer's rarity weighting.
type fakeIndex struct {
	tos      map[[2]string]int // (kw, schemaNode) -> df
	postings int
}

func (f fakeIndex) ContainingList(string) []kwindex.Posting { return nil }
func (f fakeIndex) SchemaNodes(string) []string             { return nil }
func (f fakeIndex) NumPostings() int                        { return f.postings }
func (f fakeIndex) NumKeywords() int                        { return len(f.tos) }
func (f fakeIndex) TOSet(kw, sn string) map[int64]bool {
	out := make(map[int64]bool)
	for i := 0; i < f.tos[[2]string{kw, sn}]; i++ {
		out[int64(i)] = true
	}
	return out
}

// Two equal-sized results: the one whose keyword is rare must outrank
// the one reached through a ubiquitous keyword, flipping the canonical
// order; exact-cost ties keep it.
func TestWeightedRarityGolden(t *testing.T) {
	ix := fakeIndex{postings: 200, tos: map[[2]string]int{
		{"common", "n"}: 100,
		{"rare", "n"}:   1,
	}}
	rc := rank.Context{Index: ix, Keywords: []string{"common", "rare"}}
	viaCommon := res(2, 0, []int64{1}, cn.KeywordAt{Keyword: "common", SchemaNode: "n"})
	viaRare := res(2, 1, []int64{2}, cn.KeywordAt{Keyword: "rare", SchemaNode: "n"})
	got := rank.Weighted{}.Rank(rc, []exec.Result{viaCommon, viaRare}, 0)
	if !reflect.DeepEqual(ords(got), []int64{viaRare.Ord, viaCommon.Ord}) {
		t.Fatalf("rarity did not outrank: order = %x", ords(got))
	}
	// Identical occurrences cost identically: canonical order is the tie-break.
	twinA := res(2, 0, []int64{1}, cn.KeywordAt{Keyword: "common", SchemaNode: "n"})
	twinB := res(2, 1, []int64{2}, cn.KeywordAt{Keyword: "common", SchemaNode: "n"})
	got = rank.Weighted{}.Rank(rc, []exec.Result{twinB, twinA}, 0)
	if !reflect.DeepEqual(ords(got), []int64{twinA.Ord, twinB.Ord}) {
		t.Fatalf("cost tie broke canonical order: %x", ords(got))
	}
}

// Greedy diversification: after showing a result, rebinding the same
// target objects costs 2 per repeat, so a fresh-region result of worse
// edge count jumps ahead of a near-duplicate of the best one.
func TestDiversifiedGolden(t *testing.T) {
	best := res(2, 0, []int64{1, 2})
	dup := res(2, 1, []int64{1, 2})   // same TOs as best
	fresh := res(3, 0, []int64{3, 4}) // worse score, new region
	in := []exec.Result{best, dup, fresh}

	got := rank.Diversified{}.Rank(rank.Context{}, append([]exec.Result(nil), in...), 0)
	if !(got[0].Score == 2 && reflect.DeepEqual(got[0].Bind, []int64{1, 2}) &&
		got[1].Score == 3 && got[2].Score == 2) {
		t.Fatalf("diversified order wrong: %+v (want best, fresh, dup)", got)
	}
	// Truncation happens after diversification, keeping the diverse head.
	got = rank.Diversified{}.Rank(rank.Context{}, append([]exec.Result(nil), in...), 2)
	if len(got) != 2 || got[1].Score != 3 {
		t.Fatalf("truncated diversified = %+v", got)
	}
}
