// Package xmlgraph implements the labeled-directed-graph abstraction of XML
// data used by XKeyword (Hristidis, Papakonstantinou, Balmin; ICDE 2003).
//
// Nodes correspond to XML elements and carry a tag (label), an optional
// string value, and a unique id. Edges are classified into containment
// edges (element/sub-element) and reference edges (IDREF-to-ID and XML
// Link). Graphs may have multiple roots: the administrator may omit an
// artificial document root, and a graph may capture several linked
// documents (paper, Definition 3.1).
package xmlgraph

import (
	"fmt"
	"sort"
)

// NodeID uniquely identifies a node in an XML graph. IDs are invented by
// the system when the underlying element has no ID attribute.
type NodeID int64

// InvalidNode is the zero NodeID; it never identifies a real node.
const InvalidNode NodeID = 0

// EdgeKind classifies graph edges per Definition 3.1.
type EdgeKind uint8

const (
	// Containment is an element/sub-element edge.
	Containment EdgeKind = iota
	// Reference is an IDREF-to-ID or cross-document XML Link edge.
	Reference
)

// String returns "containment" or "reference".
func (k EdgeKind) String() string {
	switch k {
	case Containment:
		return "containment"
	case Reference:
		return "reference"
	default:
		return fmt.Sprintf("EdgeKind(%d)", uint8(k))
	}
}

// Node is a vertex of the XML graph: an element with a tag label and an
// optional string value. Type records the schema node the element conforms
// to; it is assigned by generators or by schema.Assign and is required by
// the rest of the system (keyword indexing, CN generation).
type Node struct {
	ID    NodeID
	Label string // element tag
	Value string // optional string value ("" if none)
	Type  string // schema node name; "" until assigned
}

// Edge is a directed edge between two nodes.
type Edge struct {
	From, To NodeID
	Kind     EdgeKind
}

// Graph is a mutable XML graph. The zero value is not usable; construct
// with New.
type Graph struct {
	nodes  map[NodeID]*Node
	out    map[NodeID][]Edge
	in     map[NodeID][]Edge
	order  []NodeID // insertion order, for deterministic iteration
	nextID NodeID
	nEdges int
}

// New returns an empty XML graph.
func New() *Graph {
	return &Graph{
		nodes:  make(map[NodeID]*Node),
		out:    make(map[NodeID][]Edge),
		in:     make(map[NodeID][]Edge),
		nextID: 1,
	}
}

// AddNode creates a node with a fresh id and returns the id.
func (g *Graph) AddNode(label, value string) NodeID {
	id := g.nextID
	g.nextID++
	g.nodes[id] = &Node{ID: id, Label: label, Value: value}
	g.order = append(g.order, id)
	return id
}

// AddTypedNode creates a node with a fresh id and an already-assigned
// schema type.
func (g *Graph) AddTypedNode(label, value, typ string) NodeID {
	id := g.AddNode(label, value)
	g.nodes[id].Type = typ
	return id
}

// AddNodeWithID inserts a node with a caller-chosen id (e.g. taken from an
// XML ID attribute). It returns an error if the id is already in use or
// not positive.
func (g *Graph) AddNodeWithID(id NodeID, label, value string) error {
	if id <= 0 {
		return fmt.Errorf("xmlgraph: node id must be positive, got %d", id)
	}
	if _, ok := g.nodes[id]; ok {
		return fmt.Errorf("xmlgraph: duplicate node id %d", id)
	}
	g.nodes[id] = &Node{ID: id, Label: label, Value: value}
	g.order = append(g.order, id)
	if id >= g.nextID {
		g.nextID = id + 1
	}
	return nil
}

// AddEdge inserts a directed edge. Both endpoints must exist. A node may
// have at most one containment parent (XML containment forms a forest);
// violating that is an error.
func (g *Graph) AddEdge(from, to NodeID, kind EdgeKind) error {
	if _, ok := g.nodes[from]; !ok {
		return fmt.Errorf("xmlgraph: edge source %d does not exist", from)
	}
	if _, ok := g.nodes[to]; !ok {
		return fmt.Errorf("xmlgraph: edge target %d does not exist", to)
	}
	if from == to {
		return fmt.Errorf("xmlgraph: self-loop on node %d", from)
	}
	if kind == Containment {
		for _, e := range g.in[to] {
			if e.Kind == Containment {
				return fmt.Errorf("xmlgraph: node %d already has containment parent %d", to, e.From)
			}
		}
	}
	e := Edge{From: from, To: to, Kind: kind}
	g.out[from] = append(g.out[from], e)
	g.in[to] = append(g.in[to], e)
	g.nEdges++
	return nil
}

// MustAddEdge is AddEdge that panics on error; intended for generators and
// tests building known-good graphs.
func (g *Graph) MustAddEdge(from, to NodeID, kind EdgeKind) {
	if err := g.AddEdge(from, to, kind); err != nil {
		panic(err)
	}
}

// Node returns the node with the given id, or nil if absent.
func (g *Graph) Node(id NodeID) *Node {
	return g.nodes[id]
}

// SetType assigns the schema node of id. It is a no-op for unknown ids.
func (g *Graph) SetType(id NodeID, typ string) {
	if n := g.nodes[id]; n != nil {
		n.Type = typ
	}
}

// Out returns the outgoing edges of id in insertion order. The returned
// slice must not be modified.
func (g *Graph) Out(id NodeID) []Edge { return g.out[id] }

// In returns the incoming edges of id in insertion order. The returned
// slice must not be modified.
func (g *Graph) In(id NodeID) []Edge { return g.in[id] }

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return g.nEdges }

// Nodes returns all node ids in insertion order.
func (g *Graph) Nodes() []NodeID {
	ids := make([]NodeID, len(g.order))
	copy(ids, g.order)
	return ids
}

// Edges returns all edges, ordered by source node insertion order.
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.nEdges)
	for _, id := range g.order {
		es = append(es, g.out[id]...)
	}
	return es
}

// ContainmentParent returns the containment parent of id, if any.
func (g *Graph) ContainmentParent(id NodeID) (NodeID, bool) {
	for _, e := range g.in[id] {
		if e.Kind == Containment {
			return e.From, true
		}
	}
	return InvalidNode, false
}

// ContainmentChildren returns the containment children of id.
func (g *Graph) ContainmentChildren(id NodeID) []NodeID {
	var kids []NodeID
	for _, e := range g.out[id] {
		if e.Kind == Containment {
			kids = append(kids, e.To)
		}
	}
	return kids
}

// Roots returns the nodes with no incoming containment edge, sorted by id.
// Per the paper a graph may have multiple roots.
func (g *Graph) Roots() []NodeID {
	var roots []NodeID
	for _, id := range g.order {
		if _, ok := g.ContainmentParent(id); !ok {
			roots = append(roots, id)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	return roots
}

// Validate checks structural invariants: every edge endpoint exists, each
// node has at most one containment parent, and containment is acyclic.
func (g *Graph) Validate() error {
	// Endpoint existence and single containment parent are enforced by
	// AddEdge; re-check here for graphs assembled through other means.
	for id, es := range g.in {
		if _, ok := g.nodes[id]; !ok {
			return fmt.Errorf("xmlgraph: edges into unknown node %d", id)
		}
		nParents := 0
		for _, e := range es {
			if _, ok := g.nodes[e.From]; !ok {
				return fmt.Errorf("xmlgraph: edge from unknown node %d", e.From)
			}
			if e.Kind == Containment {
				nParents++
			}
		}
		if nParents > 1 {
			return fmt.Errorf("xmlgraph: node %d has %d containment parents", id, nParents)
		}
	}
	// Containment acyclicity: walk parent chains with a visited set.
	state := make(map[NodeID]int8, len(g.nodes)) // 0 unseen, 1 active, 2 done
	for _, id := range g.order {
		cur := id
		var chain []NodeID
		for {
			switch state[cur] {
			case 2:
			case 1:
				return fmt.Errorf("xmlgraph: containment cycle through node %d", cur)
			default:
				state[cur] = 1
				chain = append(chain, cur)
				if p, ok := g.ContainmentParent(cur); ok {
					cur = p
					continue
				}
			}
			break
		}
		for _, n := range chain {
			state[n] = 2
		}
	}
	return nil
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New()
	c.nextID = g.nextID
	c.nEdges = g.nEdges
	c.order = append([]NodeID(nil), g.order...)
	for id, n := range g.nodes {
		cp := *n
		c.nodes[id] = &cp
	}
	for id, es := range g.out {
		c.out[id] = append([]Edge(nil), es...)
	}
	for id, es := range g.in {
		c.in[id] = append([]Edge(nil), es...)
	}
	return c
}
