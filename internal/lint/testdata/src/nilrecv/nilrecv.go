// Package nilrecv seeds violations for the nilrecv analyzer: methods of
// nil-safe documented types dereferencing the receiver unguarded.
package nilrecv

// Gauge is a metrics sink. A nil *Gauge is a valid no-op sink: every
// method is nil-safe.
type Gauge struct {
	v    int64
	name string
}

func (g *Gauge) Add(n int64) {
	g.v += n // violation: no nil check before the field access
}

func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v // ok: guarded
}

func (g *Gauge) Name() string {
	if g != nil {
		return g.name // ok: guarded via !=
	}
	return ""
}

func (g *Gauge) Reset() {
	g.v = 0 // violation: write before any nil check
}

func (g *Gauge) id() string {
	//xk:ignore nilrecv internal helper only reached from guarded methods
	return g.name // suppressed
}

// Plain makes no promises about nil receivers; unguarded methods are
// fine.
type Plain struct{ v int }

func (p *Plain) Bump() { p.v++ }
