package specfile_test

import (
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/specfile"
	"repro/internal/tss"
)

const tpchSpec = `
# TPC-H target decomposition (Figure 6)
segment person head=person members=name,nation
segment order head=order
segment lineitem head=lineitem members=quantity,ship
segment part head=part members=key,pname
segment product head=product members=prodkey,pdescr
segment service_call head=service_call members=scdescr

annotate person>order forward="placed" backward="placed by"
annotate lineitem>supplier>person forward="supplied by" backward="supplier of"

reftarget supplier person
reftarget line part
reftarget service_call person
root person
root part
root service_call
`

func TestParseTPCHSpec(t *testing.T) {
	cfg, err := specfile.ParseString(tpchSpec)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Spec.Segments) != 6 {
		t.Fatalf("segments = %d", len(cfg.Spec.Segments))
	}
	if len(cfg.Spec.Annotations) != 2 {
		t.Fatalf("annotations = %d", len(cfg.Spec.Annotations))
	}
	ann := cfg.Spec.Annotations[1]
	if ann.Path != "lineitem>supplier>person" || ann.Forward != "supplied by" || ann.Backward != "supplier of" {
		t.Fatalf("annotation = %+v", ann)
	}
	if cfg.RefTargets["supplier"] != "person" || len(cfg.RefTargets) != 3 {
		t.Fatalf("refTargets = %v", cfg.RefTargets)
	}
	if len(cfg.Roots) != 3 {
		t.Fatalf("roots = %v", cfg.Roots)
	}
	// The parsed spec derives a working TSS graph over the real schema.
	tg, err := tss.Derive(datagen.TPCHSchema(), cfg.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if tg.NumEdges() != 7 {
		t.Fatalf("TSS edges = %d", tg.NumEdges())
	}
	for _, e := range tg.Edges() {
		if e.PathString() == "lineitem>supplier>person" && e.ForwardLabel != "supplied by" {
			t.Fatalf("annotation not applied: %q", e.ForwardLabel)
		}
	}
}

func TestSegmentDefaults(t *testing.T) {
	cfg, err := specfile.ParseString("segment author\n")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Spec.Segments[0].Head != "author" {
		t.Fatalf("default head = %q", cfg.Spec.Segments[0].Head)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no segments":     "# nothing\n",
		"unknown":         "frobnicate x\n",
		"bad seg option":  "segment a color=red\n",
		"not kv":          "segment a head\n",
		"annotate empty":  "segment a\nannotate\n",
		"annotate option": "segment a\nannotate p>q upward=\"x\"\n",
		"reftarget arity": "segment a\nreftarget supplier\n",
		"root arity":      "segment a\nroot\n",
		"open quote":      "segment a\nannotate p forward=\"oops\n",
	}
	for name, in := range cases {
		if _, err := specfile.ParseString(in); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestCommentsAndBlanks(t *testing.T) {
	cfg, err := specfile.ParseString("\n# c\n\nsegment a\n  # indented comment\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Spec.Segments) != 1 {
		t.Fatalf("segments = %d", len(cfg.Spec.Segments))
	}
	if !strings.Contains(tpchSpec, "#") {
		t.Fatal("fixture lost comments")
	}
}
