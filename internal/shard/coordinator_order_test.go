package shard_test

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/shard"
)

// TestGatherOrderDeterministic is the regression test for the execute
// gather walking shards in index order. The per-round outputs used to
// live in a map keyed by shard index; ranging over that map meant the
// "lost shard" log lines, the pending reassignment list (and hence the
// ErrNoQuorum error text), and the stream order feeding the merge all
// followed Go's randomized map iteration order. With two shards failing
// on every query, each gather must report the losses in ascending shard
// order, every time — under the old map iteration this sequence flips
// roughly every other query.
func TestGatherOrderDeterministic(t *testing.T) {
	sys := tpchSystem(t)
	const n = 3
	var mu sync.Mutex
	var lost []string
	cl := startCluster(t, sys, n, clusterConfig{
		opts: shard.CoordinatorOptions{
			BreakerThreshold: 100, // keep failing shards in rotation each query
			Logf: func(format string, args ...any) {
				line := fmt.Sprintf(format, args...)
				if strings.Contains(line, "lost shard") {
					mu.Lock()
					lost = append(lost, line)
					mu.Unlock()
				}
			},
		},
		wrap: func(i int, h http.Handler) http.Handler {
			if i == 0 {
				return h // shard 0 survives and absorbs the reassignments
			}
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.URL.Path == "/shard/execute" {
					http.Error(w, "injected execute failure", http.StatusInternalServerError)
					return
				}
				h.ServeHTTP(w, r)
			})
		},
	})
	ctx := context.Background()
	const queries = 8
	for q := 0; q < queries; q++ {
		if _, err := cl.coord.QueryContext(ctx, []string{"john", "tv"}, 10); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(lost) != 2*queries {
		t.Fatalf("expected %d lost-shard log lines (2 per query), got %d:\n%s", 2*queries, len(lost), strings.Join(lost, "\n"))
	}
	for q := 0; q < queries; q++ {
		first, second := lost[2*q], lost[2*q+1]
		if !strings.Contains(first, "lost shard 1") || !strings.Contains(second, "lost shard 2") {
			t.Fatalf("query %d gathered losses out of shard order:\n%s\n%s", q, first, second)
		}
	}
}
