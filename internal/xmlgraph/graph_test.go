package xmlgraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddNodeAssignsSequentialIDs(t *testing.T) {
	g := New()
	a := g.AddNode("person", "")
	b := g.AddNode("order", "")
	if a == b {
		t.Fatalf("ids must be unique, both %d", a)
	}
	if g.Node(a).Label != "person" || g.Node(b).Label != "order" {
		t.Fatalf("labels not stored: %+v %+v", g.Node(a), g.Node(b))
	}
	if g.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d, want 2", g.NumNodes())
	}
}

func TestAddNodeWithID(t *testing.T) {
	g := New()
	if err := g.AddNodeWithID(42, "part", "TV"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNodeWithID(42, "part", "VCR"); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if err := g.AddNodeWithID(0, "part", ""); err == nil {
		t.Fatal("zero id accepted")
	}
	if err := g.AddNodeWithID(-1, "part", ""); err == nil {
		t.Fatal("negative id accepted")
	}
	// Fresh ids must not collide with explicit ones.
	n := g.AddNode("order", "")
	if n == 42 {
		t.Fatal("fresh id collided with explicit id")
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := New()
	a := g.AddNode("a", "")
	b := g.AddNode("b", "")
	c := g.AddNode("c", "")
	if err := g.AddEdge(a, b, Containment); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(c, b, Containment); err == nil {
		t.Fatal("second containment parent accepted")
	}
	if err := g.AddEdge(c, b, Reference); err != nil {
		t.Fatalf("reference edge into contained node rejected: %v", err)
	}
	if err := g.AddEdge(a, a, Containment); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := g.AddEdge(a, NodeID(999), Containment); err == nil {
		t.Fatal("edge to unknown node accepted")
	}
	if err := g.AddEdge(NodeID(999), a, Containment); err == nil {
		t.Fatal("edge from unknown node accepted")
	}
}

func TestRootsAndParents(t *testing.T) {
	g := New()
	p := g.AddNode("person", "")
	o := g.AddNode("order", "")
	l := g.AddNode("lineitem", "")
	s := g.AddNode("service_call", "")
	g.MustAddEdge(p, o, Containment)
	g.MustAddEdge(o, l, Containment)
	g.MustAddEdge(s, p, Reference) // references do not affect roots

	roots := g.Roots()
	if len(roots) != 2 || roots[0] != p || roots[1] != s {
		t.Fatalf("Roots = %v, want [%d %d]", roots, p, s)
	}
	if par, ok := g.ContainmentParent(l); !ok || par != o {
		t.Fatalf("parent of %d = %d,%v want %d", l, par, ok, o)
	}
	if _, ok := g.ContainmentParent(p); ok {
		t.Fatal("root has a containment parent")
	}
	if kids := g.ContainmentChildren(p); len(kids) != 1 || kids[0] != o {
		t.Fatalf("children of %d = %v", p, kids)
	}
}

func TestValidateDetectsContainmentCycle(t *testing.T) {
	// Assemble a cyclic containment chain by bypassing AddEdge's parent
	// check (a <- b is fine, then force b <- a via direct mutation).
	g := New()
	a := g.AddNode("a", "")
	b := g.AddNode("b", "")
	g.MustAddEdge(a, b, Containment)
	e := Edge{From: b, To: a, Kind: Containment}
	g.out[b] = append(g.out[b], e)
	g.in[a] = append(g.in[a], e)
	g.nEdges++
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted a containment cycle")
	}
}

func TestValidateOK(t *testing.T) {
	g := New()
	a := g.AddNode("a", "")
	b := g.AddNode("b", "")
	c := g.AddNode("c", "")
	g.MustAddEdge(a, b, Containment)
	g.MustAddEdge(a, c, Containment)
	g.MustAddEdge(c, b, Reference)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestUndirectedDistanceAndPath(t *testing.T) {
	// person -> order -> lineitem -ref-> part; distance person..part = 3
	// following edges in either direction.
	g := New()
	p := g.AddNode("person", "John")
	o := g.AddNode("order", "")
	l := g.AddNode("lineitem", "")
	pa := g.AddNode("part", "TV")
	g.MustAddEdge(p, o, Containment)
	g.MustAddEdge(o, l, Containment)
	g.MustAddEdge(l, pa, Reference)

	if d := g.UndirectedDistance(p, pa); d != 3 {
		t.Fatalf("distance = %d, want 3", d)
	}
	if d := g.UndirectedDistance(pa, p); d != 3 {
		t.Fatalf("reverse distance = %d, want 3", d)
	}
	if d := g.UndirectedDistance(p, p); d != 0 {
		t.Fatalf("self distance = %d", d)
	}
	path := g.UndirectedPath(p, pa)
	want := []NodeID{p, o, l, pa}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}

	lone := g.AddNode("island", "")
	if d := g.UndirectedDistance(p, lone); d != -1 {
		t.Fatalf("disconnected distance = %d, want -1", d)
	}
	if path := g.UndirectedPath(p, lone); path != nil {
		t.Fatalf("disconnected path = %v, want nil", path)
	}
}

func TestSubgraphIsUncycled(t *testing.T) {
	tree := Subgraph{
		Nodes: []NodeID{1, 2, 3},
		Edges: []Edge{{From: 1, To: 2}, {From: 1, To: 3}},
	}
	if !tree.IsUncycled() {
		t.Fatal("tree reported cycled")
	}
	cyc := Subgraph{
		Nodes: []NodeID{1, 2, 3},
		Edges: []Edge{{From: 1, To: 2}, {From: 2, To: 3}, {From: 3, To: 1}},
	}
	if cyc.IsUncycled() {
		t.Fatal("triangle reported uncycled")
	}
	// Anti-parallel edges between the same pair are NOT an undirected
	// cycle (they collapse to one undirected edge).
	anti := Subgraph{
		Nodes: []NodeID{1, 2},
		Edges: []Edge{{From: 1, To: 2}, {From: 2, To: 1}},
	}
	if !anti.IsUncycled() {
		t.Fatal("anti-parallel pair reported cycled")
	}
}

func TestSubgraphIsConnected(t *testing.T) {
	s := Subgraph{
		Nodes: []NodeID{1, 2, 3},
		Edges: []Edge{{From: 1, To: 2}},
	}
	if s.IsConnected() {
		t.Fatal("disconnected subgraph reported connected")
	}
	s.Edges = append(s.Edges, Edge{From: 3, To: 2})
	if !s.IsConnected() {
		t.Fatal("connected subgraph reported disconnected")
	}
	if !(Subgraph{}).IsConnected() {
		t.Fatal("empty subgraph must be connected")
	}
}

func TestClone(t *testing.T) {
	g := New()
	a := g.AddTypedNode("a", "v", "T")
	b := g.AddNode("b", "")
	g.MustAddEdge(a, b, Containment)
	c := g.Clone()
	c.Node(a).Value = "changed"
	c.AddNode("extra", "")
	if g.Node(a).Value != "v" {
		t.Fatal("clone shares node storage")
	}
	if g.NumNodes() != 2 || c.NumNodes() != 3 {
		t.Fatalf("node counts: orig %d clone %d", g.NumNodes(), c.NumNodes())
	}
	if c.Node(a).Type != "T" {
		t.Fatal("clone lost node type")
	}
}

// Property: a random containment forest is always uncycled and Validate
// accepts it; adding any extra undirected connection between two existing
// tree nodes makes the Subgraph of all nodes/edges cycled.
func TestRandomForestProperties(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%20) + 2
		rng := rand.New(rand.NewSource(seed))
		g := New()
		ids := make([]NodeID, n)
		for i := 0; i < n; i++ {
			ids[i] = g.AddNode("n", "")
			if i > 0 {
				parent := ids[rng.Intn(i)]
				g.MustAddEdge(parent, ids[i], Containment)
			}
		}
		if err := g.Validate(); err != nil {
			return false
		}
		all := Subgraph{Nodes: g.Nodes(), Edges: g.Edges()}
		if !all.IsUncycled() || !all.IsConnected() {
			return false
		}
		// Close a cycle with a reference edge between two distinct nodes.
		a, b := ids[rng.Intn(n)], ids[rng.Intn(n)]
		if a == b || g.UndirectedDistance(a, b) == 1 {
			// A parallel edge collapses in the undirected view; skip.
			return true
		}
		g.MustAddEdge(a, b, Reference)
		all = Subgraph{Nodes: g.Nodes(), Edges: g.Edges()}
		return !all.IsUncycled()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
