package xmlgraph

import (
	"strings"
	"testing"
)

// FuzzParse asserts the parser never panics and every accepted document
// yields a structurally valid graph.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`<a/>`,
		`<a><b>leaf</b></a>`,
		`<a><b id="x"/><c ref="x"/></a>`,
		`<a><b ref="later"/><c id="later"/></a>`,
		`<db><person id="p"><name>John</name></person><part ref="p"/></db>`,
		`<a><b></a>`,
		`<a><b ref="nope"/></a>`,
		`<a><b id="x"/><c id="x"/></a>`,
		``,
		`garbage`,
		`<a attr="v&amp;v">x</a>`,
		`<a><!-- comment --><b/></a>`,
	}
	for _, s := range seeds {
		f.Add(s, true)
		f.Add(s, false)
	}
	f.Fuzz(func(t *testing.T, doc string, omitRoot bool) {
		g, err := Parse(strings.NewReader(doc), ParseOptions{OmitRoot: omitRoot, AttrsAsChildren: true})
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails Validate: %v (doc %q)", err, doc)
		}
		// Every edge endpoint resolves; roots have no containment parent.
		for _, id := range g.Roots() {
			if _, ok := g.ContainmentParent(id); ok {
				t.Fatalf("root %d has a parent", id)
			}
		}
	})
}
