package webdemo_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/webdemo"
)

func demoServer(t *testing.T) *httptest.Server {
	t.Helper()
	ds, err := datagen.TPCHFigure1()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.LoadPrepared(&core.Prepared{Schema: ds.Schema, TSS: ds.TSS, Data: ds.Data, Obj: ds.Obj},
		core.Options{Z: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(webdemo.NewServer(sys).Handler())
	t.Cleanup(srv.Close)
	return srv
}

func getJSON(t *testing.T, url string, out interface{}) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("%s: %v", url, err)
	}
	return resp.StatusCode
}

func TestQueryEndpoint(t *testing.T) {
	srv := demoServer(t)
	var out struct {
		Results []struct {
			Score    int      `json:"score"`
			Rendered string   `json:"rendered"`
			Objects  []string `json:"objects"`
		} `json:"results"`
	}
	code := getJSON(t, srv.URL+"/api/query?q=john+vcr&k=3", &out)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(out.Results) == 0 {
		t.Fatal("no results")
	}
	if out.Results[0].Score != 6 {
		t.Fatalf("best score = %d", out.Results[0].Score)
	}
	if !strings.Contains(out.Results[0].Rendered, "John") {
		t.Fatalf("rendered = %q", out.Results[0].Rendered)
	}
}

// TestQServeStatsEndpoint: repeated queries are served by the cache and
// /debug/qserve reports live counters.
func TestQServeStatsEndpoint(t *testing.T) {
	srv := demoServer(t)
	var out struct {
		Results []struct {
			Score int `json:"score"`
		} `json:"results"`
	}
	// Same query twice (second is a hit), once with permuted case/order
	// (also a hit thanks to key normalization).
	for _, q := range []string{"john+vcr", "john+vcr", "VCR+John"} {
		if code := getJSON(t, srv.URL+"/api/query?q="+q+"&k=3", &out); code != http.StatusOK {
			t.Fatalf("query %q status %d", q, code)
		}
		if len(out.Results) == 0 {
			t.Fatalf("query %q: no results", q)
		}
	}
	var st struct {
		Hits         int64 `json:"hits"`
		Misses       int64 `json:"misses"`
		Sheds        int64 `json:"sheds"`
		Served       int64 `json:"served"`
		CacheEntries int   `json:"cache_entries"`
	}
	if code := getJSON(t, srv.URL+"/debug/qserve", &st); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("stats hits=%d misses=%d, want 2/1", st.Hits, st.Misses)
	}
	if st.Served != 3 || st.CacheEntries != 1 || st.Sheds != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNetworksEndpoint(t *testing.T) {
	srv := demoServer(t)
	var out struct {
		Networks []struct {
			Size  int    `json:"size"`
			Shape string `json:"shape"`
		} `json:"networks"`
	}
	if code := getJSON(t, srv.URL+"/api/networks?q=tv+vcr", &out); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(out.Networks) == 0 {
		t.Fatal("no networks")
	}
}

func TestPresentationGraphFlow(t *testing.T) {
	srv := demoServer(t)
	var open struct {
		Session string `json:"session"`
		Graphs  int    `json:"graphs"`
	}
	if code := getJSON(t, srv.URL+"/api/pg/open?q=us+vcr", &open); code != http.StatusOK {
		t.Fatalf("open status %d", code)
	}
	if open.Graphs == 0 {
		t.Fatal("no presentation graphs")
	}
	type state struct {
		Occurrences []struct {
			Index    int  `json:"index"`
			Expanded bool `json:"expanded"`
			Nodes    []struct {
				TO      int64  `json:"to"`
				Summary string `json:"summary"`
			} `json:"nodes"`
			Segment string `json:"segment"`
		} `json:"occurrences"`
		Added *int `json:"added"`
	}
	// Find the graph of the Figure 3 network (4 occurrences with 2 parts)
	// and expand its lineitem occurrence.
	for gi := 0; gi < open.Graphs; gi++ {
		var st state
		url := fmt.Sprintf("%s/api/pg/show?session=%s&graph=%d", srv.URL, open.Session, gi)
		if code := getJSON(t, url, &st); code != http.StatusOK {
			t.Fatalf("show status %d", code)
		}
		liOcc := -1
		parts := 0
		for _, o := range st.Occurrences {
			if o.Segment == "lineitem" {
				liOcc = o.Index
			}
			if o.Segment == "part" {
				parts++
			}
		}
		if liOcc < 0 || parts != 2 || len(st.Occurrences) != 4 {
			continue
		}
		var expanded state
		url = fmt.Sprintf("%s/api/pg/expand?session=%s&graph=%d&occ=%d", srv.URL, open.Session, gi, liOcc)
		if code := getJSON(t, url, &expanded); code != http.StatusOK {
			t.Fatalf("expand status %d", code)
		}
		if expanded.Added == nil || *expanded.Added != 1 {
			t.Fatalf("expand added = %v, want 1", expanded.Added)
		}
		// Contract back to the first lineitem.
		keep := expanded.Occurrences[liOcc].Nodes[0].TO
		var contracted state
		url = fmt.Sprintf("%s/api/pg/contract?session=%s&graph=%d&occ=%d&keep=%d", srv.URL, open.Session, gi, liOcc, keep)
		if code := getJSON(t, url, &contracted); code != http.StatusOK {
			t.Fatalf("contract status %d", code)
		}
		if got := len(contracted.Occurrences[liOcc].Nodes); got != 1 {
			t.Fatalf("after contraction: %d lineitems", got)
		}
		return
	}
	t.Fatal("figure-3 graph not found in session")
}

func TestErrorHandling(t *testing.T) {
	srv := demoServer(t)
	var errOut struct {
		Error string `json:"error"`
	}
	cases := []string{
		"/api/query",              // missing q
		"/api/query?q=john&k=-1",  // bad k
		"/api/pg/show?session=zz", // unknown session
		"/api/pg/expand?session=zz&occ=0",
	}
	for _, path := range cases {
		code := getJSON(t, srv.URL+path, &errOut)
		if code == http.StatusOK || errOut.Error == "" {
			t.Errorf("%s: status %d error %q", path, code, errOut.Error)
		}
	}
	// Index page serves HTML; other paths 404.
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(resp.Header.Get("Content-Type"), "text/html") {
		t.Fatalf("index: %d %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	resp, err = http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path: %d", resp.StatusCode)
	}
}

func TestObjectEndpoint(t *testing.T) {
	srv := demoServer(t)
	// Discover a valid TO id through a query.
	var out struct {
		Results []struct {
			Objects []string `json:"objects"`
		} `json:"results"`
	}
	if code := getJSON(t, srv.URL+"/api/query?q=john&k=1", &out); code != http.StatusOK {
		t.Fatalf("query status %d", code)
	}
	// Probe ids until one hits (ids are node ids; the first person is 1).
	found := false
	for id := 1; id <= 50 && !found; id++ {
		resp, err := http.Get(fmt.Sprintf("%s/api/object?id=%d", srv.URL, id))
		if err != nil {
			t.Fatal(err)
		}
		body := resp.Header.Get("Content-Type")
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			found = true
			if !strings.Contains(body, "xml") {
				t.Fatalf("content type %q", body)
			}
		}
	}
	if !found {
		t.Fatal("no target object served")
	}
	resp, err := http.Get(srv.URL + "/api/object?id=999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing object: %d", resp.StatusCode)
	}
}

func TestDOTEndpoint(t *testing.T) {
	srv := demoServer(t)
	var open struct {
		Session string `json:"session"`
		Graphs  int    `json:"graphs"`
	}
	if code := getJSON(t, srv.URL+"/api/pg/open?q=us+vcr", &open); code != http.StatusOK {
		t.Fatalf("open status %d", code)
	}
	resp, err := http.Get(srv.URL + "/api/pg/dot?session=" + open.Session)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dot status %d", resp.StatusCode)
	}
	buf := make([]byte, 64)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "digraph") {
		t.Fatalf("dot body = %q", buf[:n])
	}
}
