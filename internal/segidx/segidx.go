// Package segidx is the master index's write path: a segmented,
// compacting disk index that lets the system ingest documents while it
// serves queries, instead of rebuilding the single batch-built .xki
// from scratch (EMBANKS' disk-based segment/merge direction; see
// PAPERS.md).
//
// The design is LSM-shaped, built from the repo's existing storage
// pieces:
//
//   - a mutable in-memory segment (memtable) absorbs Add/Update/Delete
//     of documents;
//   - every acknowledged batch is first appended to a length-prefixed,
//     CRC-guarded WAL and fsynced, so no acknowledged ingest is lost to
//     a crash; reopening replays the log and stops cleanly at a torn
//     tail;
//   - Flush seals the memtable and writes it as an immutable .xki
//     segment (the exact diskindex format the batch load stage writes,
//     served by the same paged reader) plus a meta sidecar recording
//     which target objects the segment owns and which it deletes
//     (tombstones);
//   - a CRC-guarded manifest names the live segment set; it is replaced
//     via atomicio's temp+fsync+rename protocol, making the rename the
//     single commit point of every flush and compaction;
//   - compaction merges the on-disk segments into one larger
//     generation, resolving newest-wins updates and eliminating
//     tombstones that no longer mask anything.
//
// The whole store implements kwindex.Source by unioning postings across
// the memtable and every segment — newest layer wins per target object,
// tombstones mask deletes — so pipeline, exec, qserve and presentation
// run unchanged over a live, writable index.
package segidx

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/atomicio"
	"repro/internal/diskindex"
	"repro/internal/fault"
	"repro/internal/kwindex"
)

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("segidx: store is closed")

// manifestName is the manifest file inside the store directory.
const manifestName = "MANIFEST"

// Options configure a Store. The zero value selects the defaults.
type Options struct {
	// Base is an optional read-only bulk index (the batch-built master
	// index) layered below every segment: ingested documents shadow it
	// per target object, deletes tombstone it. nil serves purely from
	// the segments.
	Base kwindex.Source
	// FlushBytes triggers an automatic flush when the memtable's
	// approximate footprint reaches it (default 4 MiB; negative
	// disables auto-flush).
	FlushBytes int64
	// CompactAt triggers compaction when the on-disk segment count
	// reaches it (default 8; negative disables auto-compaction).
	CompactAt int
	// AutoCompact runs triggered compactions on a background goroutine
	// instead of inline on the flushing caller.
	AutoCompact bool
	// NoSync skips the per-batch WAL fsync. Acknowledged writes are
	// then only as durable as the page cache — benchmarks and bulk
	// builds only.
	NoSync bool
	// IndexCacheBytes is the paged reader budget per segment (default
	// diskindex.DefaultCacheBytes).
	IndexCacheBytes int64
	// Retry bounds how flush and compaction retry transient I/O
	// failures before surfacing them. Zero value means
	// fault.DefaultRetry.
	Retry fault.RetryPolicy
	// Logf receives rare operational messages (background flush or
	// compaction failures). nil discards them; Err still records the
	// first failure either way.
	Logf func(format string, args ...any)
}

func (o *Options) defaults() {
	if o.FlushBytes == 0 {
		o.FlushBytes = 4 << 20
	}
	if o.CompactAt == 0 {
		o.CompactAt = 8
	}
	if o.IndexCacheBytes <= 0 {
		o.IndexCacheBytes = diskindex.DefaultCacheBytes
	}
}

// Store is a live, writable master index over a directory of segments.
// Reads (the kwindex.Source methods) and writes (Apply/Add/Delete/
// Flush/Compact) are safe for concurrent use.
type Store struct {
	dir  string
	opts Options

	// ioMu serializes the structural operations — flush and compaction,
	// the two manifest writers. Always acquired before mu.
	ioMu sync.Mutex

	mu       sync.RWMutex
	man      *manifest           // guarded by mu
	mem      *memtable           // guarded by mu — the active mutable segment
	sealed   []*memtable         // guarded by mu — sealed but uncommitted, oldest first
	segs     []*segment          // guarded by mu — committed, oldest first
	wal      *wal                // guarded by mu — the active log
	retired  []*diskindex.Reader // guarded by mu — compacted-away readers, closed at Close
	bgErr    error               // guarded by mu — first background flush/compaction failure
	flushes  int64               // guarded by mu
	compacts int64               // guarded by mu
	closed   bool                // guarded by mu

	compactCh chan struct{}
	done      chan struct{}
	wg        sync.WaitGroup

	// crash, when set (tests only), is invoked at the named points of
	// flush and compaction; a non-nil return aborts the operation there,
	// leaving the directory exactly as a kill at that instant would.
	crash func(point string) error
}

// Open opens (or creates) a segmented index at dir, recovering from any
// crash: torn temp files are quarantined, files no committed manifest
// references are deleted, and every log at or above the manifest's WAL
// floor is replayed into a fresh memtable — stopping cleanly at a torn
// tail, so acknowledged batches survive and a partially written one is
// discarded whole.
func Open(dir string, opts Options) (*Store, error) {
	opts.defaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// Recovery builds into locals and publishes under the lock at the
	// end, once the store is fully formed.
	s := &Store{dir: dir, opts: opts}
	if _, err := atomicio.Sweep(s.manifestPath()); err != nil {
		return nil, err
	}
	man, err := loadManifest(s.manifestPath())
	if err != nil {
		return nil, err
	}
	if man == nil {
		man = &manifest{WALFloor: 1, NextID: 1}
	}

	live := make(map[uint64]manifestSegment, len(man.Segments))
	for _, ent := range man.Segments {
		live[ent.ID] = ent
	}
	walIDs, maxID, err := s.sweepDir(live, man.WALFloor)
	if err != nil {
		return nil, err
	}
	if man.NextID <= maxID {
		man.NextID = maxID + 1
	}

	var segs []*segment
	for _, ent := range man.Segments {
		seg, err := openSegment(s.segPath(ent.ID), s.segMetaPath(ent.ID), ent, s.readerOptions())
		if err != nil {
			closeSegments(segs)
			return nil, fmt.Errorf("segidx: opening segment %d: %w", ent.ID, err)
		}
		segs = append(segs, seg)
	}

	// Replay the surviving logs, oldest first, into the fresh memtable.
	mem := newMemtable()
	sort.Slice(walIDs, func(i, j int) bool { return walIDs[i] < walIDs[j] })
	var activeID uint64
	var activeLen int64
	for _, id := range walIDs {
		n, err := replayWALFile(s.walPath(id), mem.apply)
		if err != nil {
			closeSegments(segs)
			return nil, fmt.Errorf("segidx: replaying %s: %w", s.walPath(id), err)
		}
		activeID, activeLen = id, n
	}
	if activeID == 0 {
		activeID = man.NextID
		man.NextID++
		activeLen = 0
	}
	wal, err := openWALForAppend(s.walPath(activeID), activeID, activeLen, !opts.NoSync)
	if err != nil {
		closeSegments(segs)
		return nil, err
	}

	s.mu.Lock()
	s.man, s.mem, s.segs, s.wal = man, mem, segs, wal
	s.mu.Unlock()

	if opts.AutoCompact {
		s.compactCh = make(chan struct{}, 1)
		s.done = make(chan struct{})
		s.wg.Add(1)
		go s.compactor()
	}
	return s, nil
}

// sweepDir quarantines torn temp files, deletes files no committed
// manifest references, and returns the surviving log ids at or above
// walFloor plus the highest id seen anywhere (for the allocator).
func (s *Store) sweepDir(live map[uint64]manifestSegment, walFloor uint64) (walIDs []uint64, maxID uint64, err error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, 0, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		switch {
		case strings.Contains(name, ".tmp-") && !strings.HasSuffix(name, atomicio.TornSuffix):
			// A kill mid-write left an uncommitted temp; preserve it for
			// forensics where it can never shadow a committed file.
			if err := os.Rename(filepath.Join(s.dir, name), filepath.Join(s.dir, name)+atomicio.TornSuffix); err != nil {
				return nil, 0, err
			}
		case strings.HasPrefix(name, "seg-"):
			id, ok := parseID(name, "seg-", ".xki")
			if !ok {
				id, ok = parseID(name, "seg-", ".meta")
			}
			if !ok {
				continue
			}
			if id > maxID {
				maxID = id
			}
			if _, referenced := live[id]; !referenced {
				// Debris of a flush or compaction that never committed, or
				// of one that was compacted away: provably not part of the
				// committed state.
				if err := os.Remove(filepath.Join(s.dir, name)); err != nil {
					return nil, 0, err
				}
			}
		case strings.HasPrefix(name, "wal-"):
			id, ok := parseID(name, "wal-", ".log")
			if !ok {
				continue
			}
			if id > maxID {
				maxID = id
			}
			if id < walFloor {
				// Fully contained in a committed segment.
				if err := os.Remove(filepath.Join(s.dir, name)); err != nil {
					return nil, 0, err
				}
				continue
			}
			walIDs = append(walIDs, id)
		}
	}
	return walIDs, maxID, nil
}

func parseID(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	if mid == "" {
		return 0, false
	}
	var id uint64
	for _, c := range mid {
		if c < '0' || c > '9' {
			return 0, false
		}
		id = id*10 + uint64(c-'0')
	}
	return id, true
}

func (s *Store) manifestPath() string { return filepath.Join(s.dir, manifestName) }
func (s *Store) segPath(id uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("seg-%06d.xki", id))
}
func (s *Store) segMetaPath(id uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("seg-%06d.meta", id))
}
func (s *Store) walPath(id uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("wal-%06d.log", id))
}

func (s *Store) readerOptions() diskindex.Options {
	return diskindex.Options{CacheBytes: s.opts.IndexCacheBytes}
}

// closeSegments abandons the partially opened segment readers of a
// failed Open.
func closeSegments(segs []*segment) {
	for _, seg := range segs {
		seg.rd.Close() //xk:ignore errdrop best-effort close while abandoning a failed open
	}
}

// Add ingests (or replaces — newest wins) one document. The write is
// durable when Add returns nil.
func (s *Store) Add(d Document) error {
	var b Batch
	b.AddDoc(d)
	return s.Apply(b)
}

// Delete tombstones a target object: its postings in every older layer
// stop being visible. Deleting an unknown TO is a durable no-op.
func (s *Store) Delete(to int64) error {
	var b Batch
	b.DeleteTO(to)
	return s.Apply(b)
}

// Apply ingests a batch of operations with all-or-nothing durability:
// the batch is one WAL record, so after a crash either every operation
// of an acknowledged batch is recovered or a never-acknowledged batch
// is discarded whole.
func (s *Store) Apply(batch Batch) error {
	if len(batch) == 0 {
		return nil
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if err := s.wal.append(batch); err != nil {
		s.mu.Unlock()
		return err
	}
	s.mem.apply(batch)
	bytes := s.mem.approxBytes()
	s.mu.Unlock()

	if s.opts.FlushBytes > 0 && bytes >= s.opts.FlushBytes {
		// The ingest itself is already durable; a failed flush must not
		// make it look lost. Record and report the failure loudly instead.
		if err := s.Flush(); err != nil && !errors.Is(err, ErrClosed) {
			s.background("auto-flush", err)
		}
	}
	return nil
}

// background records a failed background operation: the first failure
// surfaces in Err (turning health checks unhealthy) and every one is
// logged.
func (s *Store) background(what string, err error) {
	s.mu.Lock()
	if s.bgErr == nil {
		s.bgErr = fmt.Errorf("segidx: %s: %w", what, err)
	}
	s.mu.Unlock()
	if s.opts.Logf != nil {
		s.opts.Logf("segidx: %s failed: %v", what, err)
	}
}

// Flush seals the memtable, writes it as an immutable segment, and
// commits it to the manifest; the old WAL generation is deleted once
// the segment supersedes it. A flush with nothing to write is a no-op.
func (s *Store) Flush() error {
	if err := s.flush(); err != nil {
		return err
	}
	// Outside flush's ioMu scope: an inline compaction takes it itself.
	s.maybeCompact()
	return nil
}

func (s *Store) flush() error {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()

	// Rotate: seal the memtable, start a fresh one and a fresh WAL
	// generation so ingest continues while the segment is written.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if s.mem.empty() && len(s.sealed) == 0 {
		s.mu.Unlock()
		return nil
	}
	walID := s.man.NextID
	segID := s.man.NextID + 1
	s.man.NextID += 2
	nw, err := createWAL(s.walPath(walID), walID, !s.opts.NoSync)
	if err != nil {
		s.man.NextID -= 2 // nothing was sealed; the ids stay unused
		s.mu.Unlock()
		return err
	}
	oldWAL := s.wal
	s.wal = nw
	if !s.mem.empty() {
		s.sealed = append(s.sealed, s.mem)
		s.mem = newMemtable()
	}
	toFlush := append([]*memtable(nil), s.sealed...)
	baseSegs := append([]manifestSegment(nil), s.man.Segments...)
	nextID := s.man.NextID
	hasOlder := len(s.segs) > 0 || s.opts.Base != nil
	s.mu.Unlock()
	oldWAL.close() //xk:ignore errdrop the sealed log takes no further appends; replay tolerates its state either way

	if err := s.crashPoint("flush:after-wal-rotate"); err != nil {
		return err
	}

	// Merge the sealed memtables (oldest first, newest wins) into one
	// segment's content.
	postings, docs, tombs := mergeMemtables(toFlush)
	if !hasOlder {
		tombs = nil // nothing older exists for a tombstone to mask
	}

	var xkiCRC, metaCRC uint32
	err = s.retryPolicy().Do(func() error {
		var werr error
		xkiCRC, metaCRC, werr = writeSegment(s.segPath(segID), s.segMetaPath(segID), postings, docs, tombs)
		return werr
	})
	if err != nil {
		return fmt.Errorf("segidx: writing segment %d: %w", segID, err)
	}
	if err := s.crashPoint("flush:after-segment-write"); err != nil {
		return err
	}

	ent := manifestSegment{ID: segID, XKICRC: xkiCRC, MetaCRC: metaCRC}
	seg, err := openSegment(s.segPath(segID), s.segMetaPath(segID), ent, s.readerOptions())
	if err != nil {
		return fmt.Errorf("segidx: reopening segment %d: %w", segID, err)
	}
	newMan := &manifest{WALFloor: walID, NextID: nextID, Segments: append(baseSegs, ent)}
	if err := s.commit(seg, "flush", newMan, func() {
		s.segs = append(s.segs, seg)
		s.sealed = nil
		s.flushes++
	}); err != nil {
		return err
	}

	// The committed segment supersedes every log below the new floor.
	s.removeWALsBelow(walID)
	return nil
}

// commit writes the manifest (the commit point) and installs the new
// in-memory view. On any error the new segment's reader is closed and
// the old view stays in force.
func (s *Store) commit(seg *segment, what string, newMan *manifest, install func()) error {
	if err := s.crashPoint(what + ":before-manifest"); err != nil {
		seg.rd.Close() //xk:ignore errdrop abandoning the uncommitted segment; the simulated crash is what matters
		return err
	}
	err := s.retryPolicy().Do(func() error {
		return commitManifest(s.manifestPath(), newMan)
	})
	if err != nil {
		seg.rd.Close() //xk:ignore errdrop abandoning the uncommitted segment; the commit error is what matters
		return fmt.Errorf("segidx: committing manifest: %w", err)
	}
	if err := s.crashPoint(what + ":after-manifest"); err != nil {
		seg.rd.Close() //xk:ignore errdrop simulated kill directly after commit; reopen validates the committed state
		return err
	}
	s.mu.Lock()
	s.man = newMan
	install()
	s.mu.Unlock()
	return nil
}

// removeWALsBelow deletes log files below the floor, best-effort: a
// leftover is replay-idempotent and swept at the next open.
func (s *Store) removeWALsBelow(floor uint64) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if id, ok := parseID(e.Name(), "wal-", ".log"); ok && id < floor {
			os.Remove(filepath.Join(s.dir, e.Name())) //xk:ignore errdrop best-effort GC; a survivor replays idempotently
		}
	}
}

// retryPolicy returns the configured policy for transient I/O retries.
func (s *Store) retryPolicy() fault.RetryPolicy {
	if s.opts.Retry == (fault.RetryPolicy{}) {
		return fault.DefaultRetry
	}
	return s.opts.Retry
}

func (s *Store) crashPoint(point string) error {
	if s.crash == nil {
		return nil
	}
	return s.crash(point)
}

// maybeCompact triggers compaction per the configured policy.
func (s *Store) maybeCompact() {
	if s.opts.CompactAt <= 0 {
		return
	}
	s.mu.RLock()
	n := len(s.segs)
	s.mu.RUnlock()
	if n < s.opts.CompactAt {
		return
	}
	if s.compactCh != nil {
		select {
		case s.compactCh <- struct{}{}:
		default: // a compaction signal is already pending
		}
		return
	}
	if err := s.Compact(); err != nil && !errors.Is(err, ErrClosed) {
		s.background("auto-compaction", err)
	}
}

// compactor is the background compaction loop.
func (s *Store) compactor() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case <-s.compactCh:
			if err := s.Compact(); err != nil && !errors.Is(err, ErrClosed) {
				s.background("background compaction", err)
			}
		}
	}
}

// Close stops background work and releases every file handle. Pending
// memtable state stays recoverable: it is in the WAL, and the next Open
// replays it.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	if s.done != nil {
		close(s.done)
		s.wg.Wait()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	if err := s.wal.close(); err != nil && first == nil {
		first = err
	}
	for _, seg := range s.segs {
		if err := seg.rd.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, rd := range s.retired {
		rd.Close() //xk:ignore errdrop retired readers were already superseded; nothing depends on them
	}
	return first
}
