package exec_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
)

func TestStreamPagesCoverAllResults(t *testing.T) {
	s := fig1System(t, core.Options{Z: 8})
	all, err := s.QueryAll([]string{"us", "vcr"})
	if err != nil {
		t.Fatal(err)
	}
	plans, err := s.Plans([]string{"us", "vcr"})
	if err != nil {
		t.Fatal(err)
	}
	ex := &exec.Executor{Store: s.Store, TSS: s.TSS, Index: s.Index}
	st := exec.StreamPlans(ex, plans, 4, exec.NestedLoop)
	defer st.Close()

	got := map[string]bool{}
	pages := 0
	for {
		page := st.Next(2)
		if len(page) == 0 {
			break
		}
		pages++
		if len(page) > 2 {
			t.Fatalf("page of %d", len(page))
		}
		for _, r := range page {
			if got[r.Key()] {
				t.Fatalf("duplicate result %s", r.Key())
			}
			got[r.Key()] = true
		}
	}
	if len(got) != len(all) {
		t.Fatalf("stream yielded %d results, QueryAll %d", len(got), len(all))
	}
	if pages < 2 {
		t.Fatalf("only %d pages; paging not exercised", pages)
	}
	// Exhausted stream returns empty pages forever.
	if page := st.Next(5); len(page) != 0 {
		t.Fatalf("post-exhaustion page of %d", len(page))
	}
}

func TestStreamCloseEarly(t *testing.T) {
	s := fig1System(t, core.Options{Z: 8})
	plans, err := s.Plans([]string{"us", "vcr"})
	if err != nil {
		t.Fatal(err)
	}
	ex := &exec.Executor{Store: s.Store, TSS: s.TSS, Index: s.Index}
	st := exec.StreamPlans(ex, plans, 2, exec.NestedLoop)
	first := st.Next(1)
	st.Close()
	st.Close() // idempotent
	if len(first) > 1 {
		t.Fatalf("page of %d", len(first))
	}
}

func TestStreamFirstPageHasBestScore(t *testing.T) {
	s := fig1System(t, core.Options{Z: 8})
	all, err := s.QueryAll([]string{"john", "vcr"})
	if err != nil || len(all) == 0 {
		t.Fatalf("queryall: %v, %d", err, len(all))
	}
	plans, err := s.Plans([]string{"john", "vcr"})
	if err != nil {
		t.Fatal(err)
	}
	ex := &exec.Executor{Store: s.Store, TSS: s.TSS, Index: s.Index}
	st := exec.StreamPlans(ex, plans, 4, exec.NestedLoop)
	defer st.Close()
	// Pull everything; the global best must appear somewhere.
	best := -1
	for {
		page := st.Next(10)
		if len(page) == 0 {
			break
		}
		for _, r := range page {
			if best < 0 || r.Score < best {
				best = r.Score
			}
		}
	}
	if best != all[0].Score {
		t.Fatalf("stream best %d, QueryAll best %d", best, all[0].Score)
	}
}
