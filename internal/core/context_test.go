package core_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
)

func TestQueryContextCancelled(t *testing.T) {
	s := loadFig1(t, core.Options{Z: 8})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.QueryContext(ctx, []string{"john", "vcr"}, 10); !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryContext err = %v, want context.Canceled", err)
	}
	if _, err := s.QueryAllContext(ctx, []string{"john", "vcr"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryAllContext err = %v, want context.Canceled", err)
	}
	// An unconstrained context behaves exactly like the plain API.
	a, err := s.QueryContext(context.Background(), []string{"john", "vcr"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Query([]string{"john", "vcr"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("ctx query returned %d results, plain %d", len(a), len(b))
	}
}

func TestQueryStreamContextCancel(t *testing.T) {
	s := loadFig1(t, core.Options{Z: 8})
	ctx, cancel := context.WithCancel(context.Background())
	st, err := s.QueryStreamContext(ctx, []string{"us", "vcr"})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	cancel()
	deadline := time.After(2 * time.Second)
	for {
		select {
		case <-deadline:
			t.Fatal("stream still open after context cancellation")
		default:
		}
		if page := st.Next(8); len(page) == 0 {
			return
		}
	}
}
