package optimizer_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/optimizer"
)

func fig1System(t *testing.T, opts core.Options) *core.System {
	t.Helper()
	ds, err := datagen.TPCHFigure1()
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.LoadPrepared(&core.Prepared{Schema: ds.Schema, TSS: ds.TSS, Data: ds.Data, Obj: ds.Obj}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPlanStructure(t *testing.T) {
	s := fig1System(t, core.Options{Z: 8, B: 2})
	plans, err := s.Plans([]string{"john", "vcr"})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) == 0 {
		t.Fatal("no plans")
	}
	for _, pp := range plans {
		p := pp.Plan
		if !p.Steps[0].Seed {
			t.Fatalf("first step is not a seed: %+v", p.Steps[0])
		}
		bound := map[int]bool{p.Steps[0].Occ: true}
		for _, st := range p.Steps[1:] {
			if st.Seed {
				t.Fatal("second seed step")
			}
			// Probe occurrence must already be bound.
			if !bound[st.Piece.Occs[st.ProbePos]] {
				t.Fatalf("probe occurrence unbound in %+v", st)
			}
			for _, pos := range st.CheckPos {
				if !bound[st.Piece.Occs[pos]] {
					t.Fatalf("check occurrence unbound in %+v", st)
				}
			}
			for _, pos := range st.NewPos {
				if bound[st.Piece.Occs[pos]] {
					t.Fatalf("new occurrence already bound in %+v", st)
				}
				bound[st.Piece.Occs[pos]] = true
			}
		}
		// Every occurrence bound exactly once.
		if len(bound) != len(p.Net.Occs) {
			t.Fatalf("%d of %d occurrences bound", len(bound), len(p.Net.Occs))
		}
		// Join budget respected (Figure 1's graph is small enough for
		// every network to be coverable within B).
		if p.Joins > s.Opts.B {
			t.Fatalf("plan uses %d joins, budget %d (net %s)", p.Joins, s.Opts.B, p.Net)
		}
	}
}

func TestSeedHasNearSmallestContainingList(t *testing.T) {
	s := fig1System(t, core.Options{Z: 8})
	// The seed is the keyword occurrence with the smallest containing
	// list, except that cache-profitable occurrences may win when lists
	// are within 2x (§6's VCR-outermost rule). Either way the seed's
	// list never exceeds twice the minimum.
	plans, err := s.Plans([]string{"john", "vcr"})
	if err != nil {
		t.Fatal(err)
	}
	for _, pp := range plans {
		p := pp.Plan
		seed := p.Steps[0].Occ
		minList := -1
		for _, f := range p.Filters {
			if f == nil {
				continue
			}
			if minList < 0 || len(f) < minList {
				minList = len(f)
			}
		}
		if p.Filters[seed] == nil {
			t.Fatalf("seed %d has no keyword filter (network %s)", seed, p.Net)
		}
		if len(p.Filters[seed]) > 2*minList {
			t.Fatalf("seed list %d exceeds 2x the minimum %d (network %s)",
				len(p.Filters[seed]), minList, p.Net)
		}
	}
}

func TestFiltersIntersection(t *testing.T) {
	s := fig1System(t, core.Options{Z: 8})
	// "set" and "dvd" co-occur in the product description; a query for
	// the phrase-like pair must intersect at the product TO.
	plans, err := s.Plans([]string{"set", "dvd"})
	if err != nil {
		t.Fatal(err)
	}
	// The size-0 network (both keywords on one node) must exist and its
	// filter must be a single TO (the product).
	found := false
	for _, pp := range plans {
		p := pp.Plan
		if p.Net.Size() == 0 && len(p.Net.Occs[0].Keywords) == 2 {
			found = true
			if got := len(p.Filters[0]); got != 1 {
				t.Fatalf("intersection filter size = %d, want 1", got)
			}
		}
	}
	if !found {
		t.Fatal("size-0 two-keyword network not planned")
	}
}

func TestPlanErrorPaths(t *testing.T) {
	s := fig1System(t, core.Options{Z: 8})
	o := &optimizer.Optimizer{
		TSS:       s.TSS,
		Store:     s.Store,
		Index:     s.Index,
		Stats:     s.Stats,
		Fragments: nil, // nothing to cover with
		MaxJoins:  2,
	}
	nets, err := s.Networks([]string{"john", "vcr"})
	if err != nil || len(nets) == 0 {
		t.Fatalf("networks: %v", err)
	}
	var multi bool
	for _, tn := range nets {
		if tn.Size() > 0 {
			if _, err := o.Plan(tn); err == nil {
				t.Fatalf("empty fragment set covered %s", tn)
			}
			multi = true
			break
		}
	}
	if !multi {
		t.Fatal("no multi-occurrence network to test")
	}
}

func TestPlanJoinsFallback(t *testing.T) {
	// With B=0 most networks cannot be covered by single-edge fragments
	// alone, so the planner must fall back to more joins rather than fail.
	s := fig1System(t, core.Options{Z: 8, B: 2, Decomposition: core.PresetMinClust})
	opt := &optimizer.Optimizer{
		TSS:       s.TSS,
		Store:     s.Store,
		Index:     s.Index,
		Stats:     s.Stats,
		Fragments: s.Decomp.Fragments,
		MaxJoins:  0,
	}
	nets, err := s.Networks([]string{"john", "vcr"})
	if err != nil {
		t.Fatal(err)
	}
	for _, tn := range nets {
		if tn.Size() < 2 {
			continue
		}
		p, err := opt.Plan(tn)
		if err != nil {
			t.Fatalf("fallback failed for %s: %v", tn, err)
		}
		if p.Joins != tn.Size()-1 {
			t.Fatalf("minimal cover of %s used %d joins, want %d", tn, p.Joins, tn.Size()-1)
		}
	}
}
