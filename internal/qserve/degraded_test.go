package qserve_test

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/exec"
	"repro/internal/qserve"
)

// degEngine reports a degradation note on every call while degrade is
// set — the shape of a scatter-gather coordinator missing a shard.
type degEngine struct {
	calls   atomic.Int64
	degrade atomic.Bool
	results []exec.Result
}

func (e *degEngine) run(ctx context.Context) ([]exec.Result, error) {
	e.calls.Add(1)
	if e.degrade.Load() {
		qserve.NoteDegradation(ctx, qserve.Degradation{
			Shards: []string{"shard 1 of 3 at http://test"},
			Detail: "answers computed without 1 of 3 index partitions",
		})
	}
	return e.results, nil
}

func (e *degEngine) QueryContext(ctx context.Context, keywords []string, k int) ([]exec.Result, error) {
	return e.run(ctx)
}

func (e *degEngine) QueryAllStrategyContext(ctx context.Context, keywords []string, strat exec.Strategy) ([]exec.Result, error) {
	return e.run(ctx)
}

// TestDegradedAnswersAreLoudAndNeverCached exercises the serving
// invariant end to end: a degraded answer reaches the caller with its
// note attached, is never cached (the shard may be back next query),
// and once the engine heals its complete answer is cached as usual.
func TestDegradedAnswersAreLoudAndNeverCached(t *testing.T) {
	eng := &degEngine{results: []exec.Result{{Score: 1, Ord: 1}}}
	eng.degrade.Store(true)
	qs := qserve.New(eng, qserve.Options{})
	ctx := context.Background()
	kws := []string{"john", "tv"}

	rs, deg, err := qs.QueryAnnotated(ctx, kws, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 {
		t.Fatalf("degraded answer dropped results: %v", rs)
	}
	if deg == nil || len(deg.Shards) != 1 || deg.Detail == "" {
		t.Fatalf("degradation note did not reach the caller: %+v", deg)
	}

	// The degraded answer must NOT have been cached: the same query runs
	// the engine again.
	if _, _, err := qs.QueryAnnotated(ctx, kws, 5); err != nil {
		t.Fatal(err)
	}
	if got := eng.calls.Load(); got != 2 {
		t.Fatalf("engine ran %d times; a cached degraded answer would explain %d", got, got)
	}

	// Healed: the complete answer is cached and the note disappears.
	eng.degrade.Store(false)
	if _, deg, err := qs.QueryAnnotated(ctx, kws, 5); err != nil || deg != nil {
		t.Fatalf("healed engine still degraded (err=%v note=%+v)", err, deg)
	}
	before := eng.calls.Load()
	if _, deg, err := qs.QueryAnnotated(ctx, kws, 5); err != nil || deg != nil {
		t.Fatalf("cache hit carried a note (err=%v note=%+v)", err, deg)
	}
	if eng.calls.Load() != before {
		t.Fatal("healed answer was not cached")
	}

	st := qs.Stats()
	if st.Degraded != 2 {
		t.Fatalf("stats count %d degraded answers, want 2", st.Degraded)
	}
}

// TestDegradationDedupCounts records the same shard loss repeatedly —
// the shape of failover retries hitting a dead group in both query
// phases — and checks the note stays deduplicated: the shard is named
// once, and Count carries the raw record count.
func TestDegradationDedupCounts(t *testing.T) {
	ctx, take := qserve.CaptureDegradation(context.Background())
	one := qserve.Degradation{
		Shards: []string{"shard 1 of 3 at http://a|http://b"},
		Detail: "answers computed without 1 of 3 index partitions",
	}
	for i := 0; i < 3; i++ {
		qserve.NoteDegradation(ctx, one)
	}
	qserve.NoteDegradation(ctx, qserve.Degradation{
		Shards: []string{"shard 2 of 3 at http://c"},
		Detail: "answers computed without 1 of 3 index partitions",
	})
	d := take()
	if d == nil {
		t.Fatal("no degradation collected")
	}
	if len(d.Shards) != 2 {
		t.Fatalf("shards %v: repeated notes for one shard must not repeat it", d.Shards)
	}
	if d.Count != 4 {
		t.Fatalf("count %d, want 4 (three repeats + one distinct)", d.Count)
	}
	if strings.Count(d.Detail, "partitions") != 1 {
		t.Fatalf("detail %q repeats itself", d.Detail)
	}
}

// TestInvalidateCacheTokens checks the scoped invalidation contract:
// only cached queries whose normalized keyword bag intersects the
// ingested tokens are dropped; an empty token list drops nothing.
func TestInvalidateCacheTokens(t *testing.T) {
	eng := &degEngine{results: []exec.Result{{Score: 1, Ord: 1}}}
	qs := qserve.New(eng, qserve.Options{})
	ctx := context.Background()

	warm := func(kws ...string) {
		t.Helper()
		if _, err := qs.Query(ctx, kws, 5); err != nil {
			t.Fatal(err)
		}
	}
	hits := func(kws ...string) bool {
		t.Helper()
		before := eng.calls.Load()
		warm(kws...)
		return eng.calls.Load() == before
	}

	warm("john", "vcr")
	warm("Anna") // cache key holds the normalized form "anna"
	if !hits("john", "vcr") || !hits("Anna") {
		t.Fatal("warm queries are not cache hits")
	}

	// Tokens touching neither query invalidate nothing.
	qs.InvalidateCacheTokens([]string{"zebra"})
	qs.InvalidateCacheTokens(nil)
	if !hits("john", "vcr") || !hits("Anna") {
		t.Fatal("unrelated tokens invalidated cached queries")
	}

	// A token of one query drops exactly that query.
	qs.InvalidateCacheTokens([]string{"anna"})
	if hits("Anna") {
		t.Fatal("query mentioning the ingested token survived invalidation")
	}
	if !hits("john", "vcr") {
		t.Fatal("scoped invalidation dropped an unrelated cached query")
	}

	// Full invalidation drops everything.
	qs.InvalidateCache()
	if hits("john", "vcr") {
		t.Fatal("InvalidateCache left a cached query behind")
	}
}
