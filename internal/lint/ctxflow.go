package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ctxflow enforces context threading: a function that already receives
// a context.Context must not mint a fresh root context or call a
// callee's context-free variant when a *Context variant exists. PR 1
// threaded cancellation through core.QueryContext into the executor's
// join loops precisely because earlier code called the plain variants
// and kept burning CPU after every client had disconnected.
var analyzerCtxflow = &Analyzer{
	Name: "ctxflow",
	Doc:  "functions with a ctx parameter must thread it: no context.Background()/TODO(), no F() when FContext() exists",
	Run:  runCtxflow,
}

func runCtxflow(p *Pass) {
	for _, ff := range p.Flow.Funcs {
		fd := ff.Decl
		if fd == nil || !hasCtxParam(p, fd) {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p, call)
			if fn == nil {
				return true
			}
			if fn.Pkg() != nil && fn.Pkg().Path() == "context" && (fn.Name() == "Background" || fn.Name() == "TODO") {
				p.Reportf(call.Pos(), "%s has a context.Context parameter but calls context.%s(); thread the caller's ctx (or annotate why a detached context is needed)", fd.Name.Name, fn.Name())
				return true
			}
			if v := contextVariant(p, fn); v != "" {
				p.Reportf(call.Pos(), "%s has a context.Context parameter but calls %s; use %s to propagate cancellation", fd.Name.Name, types.ExprString(call.Fun), v)
			}
			return true
		})
	}
}

// hasCtxParam reports whether the function declares a context.Context
// parameter.
func hasCtxParam(p *Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if isContextType(p.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

// contextVariant returns the name of fn's context-aware sibling
// (fnName + "Context" on the same receiver type or in the same
// package, taking a context.Context first) or "" if there is none.
func contextVariant(p *Pass, fn *types.Func) string {
	name := fn.Name()
	if strings.HasSuffix(name, "Context") {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if recv := sig.Recv(); recv != nil {
		obj, _, _ := types.LookupFieldOrMethod(recv.Type(), true, fn.Pkg(), name+"Context")
		if v, ok := obj.(*types.Func); ok && firstParamIsCtx(v) {
			return typeShortName(recv.Type()) + "." + name + "Context"
		}
		return ""
	}
	if fn.Pkg() == nil {
		return ""
	}
	if o := fn.Pkg().Scope().Lookup(name + "Context"); o != nil {
		if v, ok := o.(*types.Func); ok && firstParamIsCtx(v) {
			return name + "Context"
		}
	}
	return ""
}

func firstParamIsCtx(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return false
	}
	return isContextType(sig.Params().At(0).Type())
}

func typeShortName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}
