# Development targets. `make check` is what CI (and every PR) runs:
# the tier-1 gate plus vet, the xkvet invariant linter (`make lint`),
# and the race-focused concurrency suites.

GO ?= go

# Bench targets pipe through cmd/xkbenchjson; pipefail keeps a failing
# `go test` from being masked by a successful pipe tail.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

.PHONY: check tier1 vet lint race chaos fuzzseed bench-qserve bench-diskindex bench-pipeline bench-segidx bench-shard bench-graphsrc bench-lint

check: vet lint tier1 fuzzseed race chaos

# Tier-1 gate (see ROADMAP.md).
tier1:
	$(GO) build ./... && $(GO) test ./...

vet:
	$(GO) vet ./...

# xkvet: the repo's own static-analysis suite (internal/lint). Enforces
# every registered invariant analyzer — atomiccommit, crcgate, ctxflow,
# errdrop, goleak, keyfields, keyjoin, lockguard, maporder, nilrecv,
# retryloop (the list `xkvet -list` prints is authoritative) — and exits
# nonzero on any finding not suppressed by an //xk:ignore <analyzer>
# <reason> comment. Always leaves a machine-readable xkvet.sarif next to
# the human-readable output for CI to archive.
lint:
	$(GO) run ./cmd/xkvet -dir . -sarif xkvet.sarif

# The serving layer, the executor, the disk-index buffer pool, the
# query pipeline (shared CN memo + metrics sink under concurrent
# Query/QueryStream) and the segmented live index (WAL + memtable +
# background flush/compaction) are the concurrency-heavy packages; run
# their tests under the race detector.
race:
	$(GO) test -race ./internal/qserve/ ./internal/exec/ ./internal/diskindex/ ./internal/core/ ./internal/pipeline/ ./internal/segidx/ ./internal/shard/ ./internal/rank/ ./internal/edgelist/ ./internal/graphsource/

# Chaos suite: 200+ deterministic seeded fault scenarios (injected read
# errors, bit flips, short reads, engine latency/errors/hangs) over the
# disk index and the serving path, plus the torn-write table, all under
# the race detector. Asserts the robustness invariant: fail loudly or
# answer correctly — never return silently wrong results.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos|TestTornFileTable' ./internal/fault/ ./internal/diskindex/ ./internal/segidx/ ./internal/edgelist/
	$(GO) test -race -count=1 -run 'TestQuorum|TestSlowShard|TestBreaker|TestRetryMasks|TestKillShard|TestExecuteFailure|TestCancellation|TestReplica|TestGroupLoss|TestHedge' ./internal/shard/

# Run every fuzz target against its seed corpus only (no new inputs);
# catches regressions on the known tricky files deterministically.
fuzzseed:
	$(GO) test -run=Fuzz ./internal/diskindex/ ./internal/dtd/ ./internal/xmlgraph/ ./internal/segidx/ ./internal/edgelist/

# Every bench target tees its text output through cmd/xkbenchjson,
# leaving a machine-readable BENCH_<name>.json trajectory file at the
# repo root next to the human-readable log.

# Cold vs warm serving-layer latency on the DBLP workload.
bench-qserve:
	$(GO) test -run xxx -bench BenchmarkQServe -benchtime 50x -benchmem . | $(GO) run ./cmd/xkbenchjson -out BENCH_qserve.json

# In-memory vs paged-disk master-index lookups (cold and warm pool).
bench-diskindex:
	$(GO) test -run xxx -bench BenchmarkDiskIndexLookup -benchmem . | $(GO) run ./cmd/xkbenchjson -out BENCH_diskindex.json

# Tracing-off vs EXPLAIN ANALYZE overhead of the staged query pipeline.
bench-pipeline:
	$(GO) test -run xxx -bench 'BenchmarkQuery$$|BenchmarkPipelineOverhead' -benchtime 200x -benchmem . | $(GO) run ./cmd/xkbenchjson -out BENCH_pipeline.json

# The live-index write and read path: synced vs unsynced ingest, cold
# vs warm multi-segment lookups, flush and compaction cost.
bench-segidx:
	$(GO) test -run xxx -bench BenchmarkSegidx -benchtime 50x -benchmem ./internal/segidx/ | $(GO) run ./cmd/xkbenchjson -out BENCH_segidx.json

# Scatter-gather serving: coordinator round trip vs the single-node
# baseline per shard count and per replica count, steady-state degraded
# latency with a dead shard, the hedged-tail p99 with one stalling
# replica (hedge off vs on), merge throughput, and the offline split.
bench-shard:
	$(GO) test -run xxx -bench BenchmarkShard -benchtime 50x -benchmem ./internal/shard/ | $(GO) run ./cmd/xkbenchjson -out BENCH_shard.json

# The generic graph-source path on the citation workload: edge-list
# parse throughput, full load (decompose + proximity + index) and
# per-scorer query latency.
bench-graphsrc:
	$(GO) test -run xxx -bench BenchmarkGraphsrc -benchtime 20x -benchmem ./internal/edgelist/ | $(GO) run ./cmd/xkbenchjson -out BENCH_graphsrc.json

# The lint gate itself: full-module type-check alone vs with all
# analyzers, so analyzer cost on top of the shared type-check is visible
# in the trajectory. TestXkvetWallClock (tier 1) brakes the same path at
# a 60s budget.
bench-lint:
	$(GO) test -run xxx -bench BenchmarkXkvet -benchtime 3x -benchmem ./internal/lint/ | $(GO) run ./cmd/xkbenchjson -out BENCH_lint.json
