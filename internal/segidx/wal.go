package segidx

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// The WAL is a sequence of length-prefixed, CRC-guarded records, one
// per acknowledged batch:
//
//	[uint32 LE payload length][uint32 LE CRC32(payload)][payload]
//
// An append is acknowledged only after the record bytes are fsynced
// (unless the store was opened with NoSync), so a crash at any instant
// loses at most the batch that was never acknowledged. Replay walks the
// records in order and stops cleanly at the first frame that is
// truncated, oversized, or fails its checksum — the torn tail a kill
// mid-append leaves — without ever applying a partial record.

// walFrameHeader is the per-record framing overhead.
const walFrameHeader = 8

// maxWALRecord bounds a single record; larger length claims are
// treated as corruption, not as allocation requests.
const maxWALRecord = 1 << 28

// wal is an append-only log open for writing.
type wal struct {
	f    *os.File
	id   uint64
	path string
	size int64
	sync bool
}

// createWAL creates (or truncates) the log file for sequence id.
func createWAL(path string, id uint64, sync bool) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return &wal{f: f, id: id, path: path, sync: sync}, nil
}

// openWALForAppend opens an existing log and positions writes at size —
// the length of the valid prefix replay established. Bytes past size
// (a torn tail) are truncated away so future appends produce a
// well-formed log.
func openWALForAppend(path string, id uint64, size int64, sync bool) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(size); err != nil {
		f.Close() //xk:ignore errdrop double-close backstop on the error path; the truncate error is what matters
		return nil, err
	}
	if _, err := f.Seek(size, io.SeekStart); err != nil {
		f.Close() //xk:ignore errdrop double-close backstop on the error path; the seek error is what matters
		return nil, err
	}
	return &wal{f: f, id: id, path: path, size: size, sync: sync}, nil
}

// append frames, writes and (by default) fsyncs one batch record.
// Returning nil is the durability acknowledgement.
func (w *wal) append(batch Batch) error {
	payload := encodeBatch(nil, batch)
	if len(payload) > maxWALRecord {
		return fmt.Errorf("segidx: batch encodes to %d bytes, over the %d-byte record bound", len(payload), maxWALRecord)
	}
	rec := make([]byte, walFrameHeader, walFrameHeader+len(payload))
	binary.LittleEndian.PutUint32(rec[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:], crc32.ChecksumIEEE(payload))
	rec = append(rec, payload...)
	if _, err := w.f.Write(rec); err != nil {
		return fmt.Errorf("segidx: wal append: %w", err)
	}
	if w.sync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("segidx: wal sync: %w", err)
		}
	}
	w.size += int64(len(rec))
	return nil
}

func (w *wal) close() error { return w.f.Close() }

// replayWAL decodes every complete, checksummed record of data,
// invoking apply per batch, and returns the byte length of the valid
// prefix. Decoding stops at the first bad frame — a truncated header,
// an oversized or overrunning length, a checksum mismatch, or a payload
// that does not parse — and whatever follows is ignored; a torn tail
// can only ever cost the final (unacknowledged) record. apply is never
// called with a partially decoded batch.
func replayWAL(data []byte, apply func(Batch)) int64 {
	off := 0
	for {
		if len(data)-off < walFrameHeader {
			return int64(off)
		}
		n := binary.LittleEndian.Uint32(data[off:])
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if n > maxWALRecord || int(n) > len(data)-off-walFrameHeader {
			return int64(off)
		}
		payload := data[off+walFrameHeader : off+walFrameHeader+int(n)]
		if crc32.ChecksumIEEE(payload) != crc {
			return int64(off)
		}
		batch, err := decodeBatch(payload)
		if err != nil {
			return int64(off)
		}
		apply(batch)
		off += walFrameHeader + int(n)
	}
}

// replayWALFile reads and replays one log file from disk.
func replayWALFile(path string, apply func(Batch)) (validLen int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	return replayWAL(data, apply), nil
}
