// Package keyfields seeds violations for the keyfields analyzer: key
// and digest builders that drop fields of their request struct, so two
// requests differing only in the dropped field collide on one cache
// entry. The compliant shapes fold every field in — directly, through
// a helper the call graph can see into, or by handing the whole struct
// to an opaque consumer assumed to read everything.
package keyfields

import (
	"fmt"
	"hash/crc64"
)

// QueryRequest is the PR 8 shape: the cache key below forgets Weighted.
type QueryRequest struct {
	Keywords []string
	K        int
	Weighted bool
}

// cacheKey drops Weighted: a weighted query would be answered from the
// canonical entry.
func cacheKey(q QueryRequest) string {
	return fmt.Sprintf("%v|%d", q.Keywords, q.K)
}

// ScanParams exercises the receiver position of a method builder.
type ScanParams struct {
	Depth  int
	Limit  int
	Strict bool
}

// Key drops Strict.
func (p ScanParams) Key() string {
	return fmt.Sprintf("%d|%d", p.Depth, p.Limit)
}

// LookupQuery exercises the inter-procedural path: the builder
// delegates to a helper that reads only two of the three fields.
type LookupQuery struct {
	Term string
	Fuzz int
	Page int
}

// lookupKey delegates to partial, which never reads Page.
func lookupKey(q *LookupQuery) string {
	return partial(q)
}

func partial(q *LookupQuery) string {
	return fmt.Sprintf("%s|%d", q.Term, q.Fuzz)
}

// requestDigest folds every field in through a helper the module call
// graph resolves.
func requestDigest(q *QueryRequest) uint64 {
	t := crc64.MakeTable(crc64.ISO)
	return crc64.Checksum(encode(q), t)
}

func encode(q *QueryRequest) []byte {
	return fmt.Appendf(nil, "%v|%d|%t", q.Keywords, q.K, q.Weighted)
}

// fingerprintAll hands the whole struct to fmt, which formats every
// field: assumed complete.
func fingerprintAll(q QueryRequest) string {
	return fmt.Sprintf("%+v", q)
}

// Config is not request/params/options-shaped; builders over it are out
// of scope.
type Config struct {
	A int
	B int
}

func configKey(c Config) string {
	return fmt.Sprint(c.A)
}

// RelaxOptions documents a deliberate partial key.
type RelaxOptions struct {
	MaxDrop int
	Trace   bool
}

//xk:ignore keyfields Trace only toggles span capture; answers are identical either way, collisions are safe
func relaxKey(o RelaxOptions) string {
	return fmt.Sprintf("relax|%d", o.MaxDrop)
}
