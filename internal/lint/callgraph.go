package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CallGraph is the module-wide static call graph, accumulated package
// by package during the driver's topo-sorted type-check. Because
// packages are checked in dependency order, by the time a package's
// analyzers run the graph already contains every function that package
// can statically reach — which is exactly what the inter-procedural
// facts (keyfields' transitive field-read sets) need. Dynamic calls
// through function values and interface methods are not resolved; an
// analyzer that follows an edge into the unknown must treat the callee
// conservatively.
type CallGraph struct {
	nodes map[*types.Func]*GraphFunc
}

// GraphFunc is one declared function: its AST, the type info of its
// package (needed to interpret the AST), and its statically resolved
// callees in body order.
type GraphFunc struct {
	Fn      *types.Func
	Decl    *ast.FuncDecl
	Fset    *token.FileSet
	Info    *types.Info
	Callees []*types.Func
}

// NewCallGraph returns an empty graph.
func NewCallGraph() *CallGraph {
	return &CallGraph{nodes: make(map[*types.Func]*GraphFunc)}
}

// AddPackage registers every function declared in the package and
// resolves its static call edges.
func (g *CallGraph) AddPackage(fset *token.FileSet, files []*ast.File, info *types.Info) {
	for _, file := range files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			node := &GraphFunc{Fn: fn, Decl: fd, Fset: fset, Info: info}
			seen := make(map[*types.Func]bool)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := staticCallee(info, call); callee != nil && !seen[callee] {
					seen[callee] = true
					node.Callees = append(node.Callees, callee)
				}
				return true
			})
			g.nodes[fn] = node
		}
	}
}

// FuncOf returns the graph node for fn, or nil when fn is outside the
// module (or dynamic).
func (g *CallGraph) FuncOf(fn *types.Func) *GraphFunc {
	if g == nil {
		return nil
	}
	return g.nodes[fn]
}

// staticCallee resolves the *types.Func a call statically dispatches
// to, or nil for calls through function values, builtins, and
// conversions. It is calleeFunc without the *Pass dependency, so the
// graph builder and the analyzers share one resolver.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}
