package exec

import "repro/internal/kwindex"

// IsMinimal checks the strict MTNN condition of §3.1 on a result: no
// node can be removed with the tree remaining total. In a tree only
// leaves are removable, so a result is non-minimal exactly when some
// leaf occurrence's keywords all appear in other bound target objects —
// e.g. a product described as "set of VCR and DVD" already contains
// both keywords, making an attached part{vcr} leaf redundant.
//
// Like DISCOVER and DBXplorer, XKeyword's executor emits such results
// (each candidate network is evaluated independently); core's
// StrictMinimal option applies this check to make the semantics exact.
func IsMinimal(ix kwindex.Source, r Result) bool {
	if len(r.Net.Occs) <= 1 {
		return true
	}
	deg := make([]int, len(r.Net.Occs))
	for _, e := range r.Net.Edges {
		deg[e.From]++
		deg[e.To]++
	}
	for i, o := range r.Net.Occs {
		if deg[i] != 1 {
			continue // interior nodes are not removable from a tree
		}
		if o.Free() {
			// A free leaf makes the result trivially non-minimal; the
			// generator never emits such networks, but check anyway.
			return false
		}
		redundant := true
		for _, ka := range o.Keywords {
			foundElsewhere := false
			for j, to := range r.Bind {
				if j == i {
					continue
				}
				if ix.TOSet(ka.Keyword, "")[to] {
					foundElsewhere = true
					break
				}
			}
			if !foundElsewhere {
				redundant = false
				break
			}
		}
		if redundant {
			return false
		}
	}
	return true
}
