package shard

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/atomicio"
	"repro/internal/diskindex"
	"repro/internal/kwindex"
)

// IndexFileName is the partition index file inside each shard dir.
const IndexFileName = "index.xki"

// SnapshotFileName is the replicated structural snapshot inside each
// shard dir when the split copies one.
const SnapshotFileName = "snapshot.xkw"

// SplitOptions configure Split.
type SplitOptions struct {
	// Snapshot, when non-empty, is a saved system snapshot (persist
	// format) copied into every shard directory, making each directory
	// fully self-contained: partition index + replicated structural
	// data. Empty skips the copy (the server loads structural data from
	// its own -load/-data flags).
	Snapshot string
	// Addrs, when non-empty, records each shard's replica-group serving
	// addresses in the manifest (Addrs[i] lists shard i's replica base
	// URLs), enabling "-coordinator auto". Its length must equal the
	// shard count.
	Addrs [][]string
	// Logf receives progress lines (default: silent).
	Logf func(format string, args ...any)
}

// Split partitions a built master index into n self-contained shard
// directories under dir — dir/shard-000/index.xki … — each a valid
// diskindex file holding exactly the postings whose TO hashes to that
// shard, and commits the CRC-guarded manifest last, so a crashed split
// leaves no manifest and is simply re-run. Partitions are disjoint and
// exhaustive by construction: every posting lands in Partition(TO, n)
// and nowhere else.
func Split(ix *kwindex.Index, dir string, n int, opts SplitOptions) (*Manifest, error) {
	if n <= 0 {
		return nil, fmt.Errorf("shard: split into %d shards", n)
	}
	if len(opts.Addrs) != 0 && len(opts.Addrs) != n {
		return nil, fmt.Errorf("shard: %d replica groups recorded for %d shards", len(opts.Addrs), n)
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	m := &Manifest{Version: 1, Scheme: HashScheme, N: n}
	for part := 0; part < n; part++ {
		sub := fmt.Sprintf("shard-%03d", part)
		sdir := filepath.Join(dir, sub)
		if err := os.MkdirAll(sdir, 0o755); err != nil {
			return nil, fmt.Errorf("shard: creating %s: %w", sdir, err)
		}
		pix := PartitionIndex(ix, part, n)
		ipath := filepath.Join(sdir, IndexFileName)
		if _, err := diskindex.CreateCRC(ipath, pix); err != nil {
			return nil, fmt.Errorf("shard: writing partition %d: %w", part, err)
		}
		crc, err := FileCRC(ipath)
		if err != nil {
			return nil, fmt.Errorf("shard: checksumming partition %d: %w", part, err)
		}
		if opts.Snapshot != "" {
			if err := copyFile(opts.Snapshot, filepath.Join(sdir, SnapshotFileName)); err != nil {
				return nil, fmt.Errorf("shard: copying snapshot into shard %d: %w", part, err)
			}
		}
		si := ShardInfo{
			ID:       part,
			Dir:      sub,
			Index:    IndexFileName,
			CRC:      crc,
			Postings: pix.NumPostings(),
			Keywords: pix.NumKeywords(),
		}
		if len(opts.Addrs) != 0 {
			si.Addrs = append([]string(nil), opts.Addrs[part]...)
		}
		m.Shards = append(m.Shards, si)
		logf("shard: wrote partition %d/%d: %d postings, %d keywords", part, n, pix.NumPostings(), pix.NumKeywords())
	}
	if err := WriteManifest(dir, m); err != nil {
		return nil, err
	}
	return m, nil
}

// copyFile copies src to dst atomically (temp + sync + rename).
func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close() //xk:ignore errdrop read-only file; Close cannot lose data
	return atomicio.WriteFile(dst, func(f *os.File) error {
		_, err := io.Copy(f, in)
		return err
	})
}

// Verify checks a split end to end: the manifest loads (magic, CRC,
// scheme), every partition file's bytes match the recorded CRC, every
// partition opens as a valid diskindex, and — the routing invariant —
// every posting in every partition hashes to its own shard. It returns
// the manifest on success.
func Verify(dir string) (*Manifest, error) {
	m, err := LoadManifest(dir)
	if err != nil {
		return nil, err
	}
	for _, si := range m.Shards {
		ipath := filepath.Join(dir, si.Dir, si.Index)
		crc, err := FileCRC(ipath)
		if err != nil {
			return nil, fmt.Errorf("shard: verify shard %d: %w", si.ID, err)
		}
		if crc != si.CRC {
			return nil, fmt.Errorf("shard: verify shard %d: %s CRC mismatch (manifest %08x, file %08x)", si.ID, ipath, si.CRC, crc)
		}
		r, err := diskindex.Open(ipath, diskindex.Options{})
		if err != nil {
			return nil, fmt.Errorf("shard: verify shard %d: opening %s: %w", si.ID, ipath, err)
		}
		for _, term := range r.Terms() {
			for _, p := range r.ContainingList(term) {
				if got := Partition(p.TO, m.N); got != si.ID {
					r.Close() //xk:ignore errdrop read-only reader on the error path
					return nil, fmt.Errorf("shard: verify shard %d: posting for TO %d routes to partition %d", si.ID, p.TO, got)
				}
			}
		}
		if err := r.Err(); err != nil {
			r.Close() //xk:ignore errdrop read-only reader on the error path
			return nil, fmt.Errorf("shard: verify shard %d: reader failed: %w", si.ID, err)
		}
		if err := r.Close(); err != nil {
			return nil, fmt.Errorf("shard: verify shard %d: closing: %w", si.ID, err)
		}
	}
	return m, nil
}
