package qserve

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/exec"
	"repro/internal/kwindex"
	"repro/internal/rank"
)

// cacheKey returns the canonical identity of a query: the kind of
// evaluation ("topk"/"all"), the result-shaping parameters, and the
// normalized keyword bag. Keywords are normalized exactly as the master
// index sees them — kwindex.Tokenize lower-cases and splits on
// non-alphanumerics, and the index re-tokenizes phrases on lookup — and
// then sorted, because CN generation is symmetric in the keywords. So
// "Codd relational", "relational codd" and "Relational, CODD" map to
// one entry. Duplicated keywords are kept (a bag, not a set): the CN
// generator treats "codd codd" as two occurrences.
//
// The scorer is part of the identity — the same keywords ranked by
// different scorers are different answers. It is keyed raw, so "" (the
// default) and an explicit "edgecount" occupy two entries; that wastes
// at most one duplicate slot and keeps the key transparent. Validating
// the name here also guarantees no '|' can enter the key and break
// keyMentionsToken's field split.
func cacheKey(kind string, keywords []string, k int, strat exec.Strategy, scorer string) (string, error) {
	if len(keywords) == 0 {
		return "", fmt.Errorf("qserve: empty keyword query")
	}
	if !rank.Valid(scorer) {
		return "", fmt.Errorf("qserve: unknown scorer %q (have %v)", scorer, rank.Names())
	}
	norm := make([]string, len(keywords))
	for i, kw := range keywords {
		toks := kwindex.Tokenize(kw)
		if len(toks) == 0 {
			return "", fmt.Errorf("qserve: keyword %q has no tokens", kw)
		}
		norm[i] = strings.Join(toks, " ")
	}
	sort.Strings(norm)
	var b strings.Builder
	fmt.Fprintf(&b, "%s|k=%d|s=%d|sc=%s|", kind, k, strat, scorer)
	for i, n := range norm {
		if i > 0 {
			b.WriteByte(0)
		}
		b.WriteString(n)
	}
	return b.String(), nil
}

// keyMentionsToken reports whether a cache key's normalized keyword bag
// contains any token of set — the match predicate of scoped
// invalidation. The bag is the fifth '|'-separated field (kind, k,
// strategy and the validated scorer name cannot contain '|'); keywords
// are '\x00'-separated and each is its space-joined token list.
func keyMentionsToken(key string, set map[string]bool) bool {
	parts := strings.SplitN(key, "|", 5)
	if len(parts) < 5 {
		return false
	}
	for _, kw := range strings.Split(parts[4], "\x00") {
		for _, tok := range strings.Split(kw, " ") {
			if set[tok] {
				return true
			}
		}
	}
	return false
}
