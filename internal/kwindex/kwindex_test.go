package kwindex_test

import (
	"reflect"
	"testing"

	"repro/internal/datagen"
	"repro/internal/kwindex"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"set of VCR and DVD", []string{"set", "of", "vcr", "and", "dvd"}},
		{"John", []string{"john"}},
		{"", nil},
		{"  --  ", nil},
		{"TPC-H 2001", []string{"tpc", "h", "2001"}},
		{"ÜberGraph", []string{"übergraph"}},
	}
	for _, c := range cases {
		if got := kwindex.Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func buildFig1Index(t *testing.T) (*kwindex.Index, *datagen.Dataset) {
	t.Helper()
	ds, err := datagen.TPCHFigure1()
	if err != nil {
		t.Fatal(err)
	}
	return kwindex.Build(ds.Obj), ds
}

func TestContainingListJohn(t *testing.T) {
	ix, ds := buildFig1Index(t)
	ps := ix.ContainingList("John")
	if len(ps) != 1 {
		t.Fatalf("postings = %+v, want 1", ps)
	}
	p := ps[0]
	if p.SchemaNode != "name" {
		t.Fatalf("schema node = %q", p.SchemaNode)
	}
	if ds.Obj.TO(p.TO).Segment != "person" {
		t.Fatalf("TO segment = %q", ds.Obj.TO(p.TO).Segment)
	}
}

func TestContainingListVCR(t *testing.T) {
	ix, _ := buildFig1Index(t)
	// VCR occurs in two part names and one product description.
	ps := ix.ContainingList("VCR")
	if len(ps) != 3 {
		t.Fatalf("postings = %+v, want 3", ps)
	}
	nodes := ix.SchemaNodes("vcr")
	want := []string{"pdescr", "pname"}
	if !reflect.DeepEqual(nodes, want) {
		t.Fatalf("schema nodes = %v, want %v", nodes, want)
	}
}

func TestCaseInsensitive(t *testing.T) {
	ix, _ := buildFig1Index(t)
	if len(ix.ContainingList("vcr")) != len(ix.ContainingList("VCR")) {
		t.Fatal("case sensitivity leaked")
	}
}

func TestTagsAreIndexed(t *testing.T) {
	ix, _ := buildFig1Index(t)
	// "quantity" appears only as a tag; keywords(n) covers tag and value.
	if len(ix.ContainingList("quantity")) == 0 {
		t.Fatal("tag tokens not indexed")
	}
}

func TestDummyNodesSkipped(t *testing.T) {
	ix, _ := buildFig1Index(t)
	// "supplier" and "sub" are dummy tags: no target object contains them.
	if got := ix.ContainingList("supplier"); len(got) != 0 {
		t.Fatalf("dummy tag indexed: %+v", got)
	}
	if got := ix.ContainingList("sub"); len(got) != 0 {
		t.Fatalf("dummy tag indexed: %+v", got)
	}
}

func TestMultiTokenKeyword(t *testing.T) {
	ix, _ := buildFig1Index(t)
	// "DVD error" matches only the service_call descr node.
	ps := ix.ContainingList("DVD error")
	if len(ps) != 1 || ps[0].SchemaNode != "scdescr" {
		t.Fatalf("postings = %+v", ps)
	}
	// Both tokens occur in the graph, but never together except there.
	if len(ix.ContainingList("dvd")) < 2 {
		t.Fatal("test premise broken: dvd should occur in several nodes")
	}
}

func TestTOSetFilter(t *testing.T) {
	ix, ds := buildFig1Index(t)
	all := ix.TOSet("vcr", "")
	if len(all) != 3 {
		t.Fatalf("TOSet(vcr) = %v", all)
	}
	onlyNames := ix.TOSet("vcr", "pname")
	if len(onlyNames) != 2 {
		t.Fatalf("TOSet(vcr, pname) = %v", onlyNames)
	}
	for to := range onlyNames {
		if ds.Obj.TO(to).Segment != "part" {
			t.Fatalf("TO %d not a part", to)
		}
	}
}

func TestPostingsSortedAndCounted(t *testing.T) {
	ix, _ := buildFig1Index(t)
	ps := ix.ContainingList("vcr")
	for i := 1; i < len(ps); i++ {
		if ps[i-1].TO > ps[i].TO {
			t.Fatal("postings not sorted by TO")
		}
	}
	if ix.NumKeywords() == 0 || ix.NumPostings() < ix.NumKeywords() {
		t.Fatalf("counts: %d keywords, %d postings", ix.NumKeywords(), ix.NumPostings())
	}
	if ix.ContainingList("") != nil {
		t.Fatal("empty keyword returned postings")
	}
}

func TestValueTokenDedupedPerNode(t *testing.T) {
	ix, _ := buildFig1Index(t)
	// "US" occurs once per nation node even though tokenizer could see it
	// twice in pathological values; here: two persons => two postings.
	if got := len(ix.ContainingList("US")); got != 2 {
		t.Fatalf("US postings = %d, want 2", got)
	}
}
