// Package kwindex implements XKeyword's master index (paper §4, load
// stage item 1): an inverted index that stores, for every keyword k, the
// list of ⟨TOid, nodeID, schemaNode⟩ triplets identifying the nodes that
// contain k. The schema node is needed by the CN generator and the node
// id distinguishes two nodes of the same type inside one target object.
// It replaces the Oracle interMedia Text extension of the paper's
// implementation.
package kwindex

import (
	"sort"
	"unicode"
	"unicode/utf8"

	"repro/internal/tss"
	"repro/internal/xmlgraph"
)

// Posting locates one occurrence of a keyword.
type Posting struct {
	TO         int64
	Node       xmlgraph.NodeID
	SchemaNode string
}

// Index is the master index. Build once with Build; reads are then safe
// for concurrent use.
type Index struct {
	postings map[string][]Posting
	nTokens  int
}

// Tokenize lower-cases s and splits it into maximal letter/digit runs.
// Tokens that are already lowercase ASCII alphanumerics — the common case
// on real data — are returned as substrings of s without allocating; the
// transformation buffer is reused across the remaining tokens, so the
// only per-call allocations are the token slice and one string per token
// that actually needs lower-casing.
func Tokenize(s string) []string {
	var toks []string
	var buf []byte // reused scratch for tokens that need transformation
	start := -1    // byte offset of the current token, -1 = between tokens
	clean := true  // current token so far is lowercase ASCII alnum
	flush := func(end int) {
		if start < 0 {
			return
		}
		if clean {
			toks = append(toks, s[start:end])
		} else {
			toks = append(toks, string(buf))
		}
		start, clean = -1, true
	}
	for i, r := range s {
		if !(unicode.IsLetter(r) || unicode.IsDigit(r)) {
			flush(i)
			continue
		}
		lower := (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9')
		if start < 0 {
			if toks == nil {
				toks = make([]string, 0, 4)
			}
			start, clean = i, lower
			if !lower {
				buf = utf8.AppendRune(buf[:0], unicode.ToLower(r))
			}
			continue
		}
		if clean {
			if lower {
				continue
			}
			// First rune needing transformation: copy the clean prefix.
			buf = append(buf[:0], s[start:i]...)
			clean = false
		}
		buf = utf8.AppendRune(buf, unicode.ToLower(r))
	}
	flush(len(s))
	return toks
}

// Build indexes every target-object member node of the object graph: the
// keywords of a node are the tokens of its tag and of its value (paper
// §3.1, keywords(n)). Dummy nodes carry no information and are skipped —
// they belong to no target object.
func Build(og *tss.ObjectGraph) *Index {
	ix := &Index{postings: make(map[string][]Posting)}
	for _, id := range og.Data.Nodes() {
		toID, ok := og.TOOf(id)
		if !ok {
			continue
		}
		n := og.Data.Node(id)
		seen := make(map[string]bool)
		for _, tok := range append(Tokenize(n.Label), Tokenize(n.Value)...) {
			if seen[tok] {
				continue
			}
			seen[tok] = true
			ix.postings[tok] = append(ix.postings[tok], Posting{TO: toID, Node: id, SchemaNode: n.Type})
			ix.nTokens++
		}
	}
	for _, ps := range ix.postings {
		sort.Slice(ps, func(i, j int) bool {
			if ps[i].TO != ps[j].TO {
				return ps[i].TO < ps[j].TO
			}
			return ps[i].Node < ps[j].Node
		})
	}
	return ix
}

// FromPostings builds an index directly from token → posting lists,
// taking ownership of the map and its slices. Each list is sorted by
// (TO, node) and empty lists are dropped, so the result is
// indistinguishable from an index Build produced over the same logical
// content. The segmented write path (internal/segidx) uses this to turn
// a sealed memtable into an index the diskindex writer can serialize.
func FromPostings(postings map[string][]Posting) *Index {
	ix := &Index{postings: postings}
	for tok, ps := range postings {
		if len(ps) == 0 {
			delete(postings, tok)
			continue
		}
		sort.Slice(ps, func(i, j int) bool {
			if ps[i].TO != ps[j].TO {
				return ps[i].TO < ps[j].TO
			}
			return ps[i].Node < ps[j].Node
		})
		ix.nTokens += len(ps)
	}
	return ix
}

// ContainingList returns the postings of keyword k (the containing list
// L(k) of §4). The keyword is tokenized first; a multi-token keyword
// matches nodes containing all its tokens. The returned slice must not
// be modified.
func (ix *Index) ContainingList(k string) []Posting {
	toks := Tokenize(k)
	switch len(toks) {
	case 0:
		return nil
	case 1:
		return ix.postings[toks[0]]
	}
	lists := make([][]Posting, len(toks))
	for i, tok := range toks {
		lists[i] = ix.postings[tok]
	}
	return Intersect(lists)
}

// SchemaNodes returns the distinct schema nodes whose extensions contain
// keyword k, sorted — the input the CN generator needs.
func (ix *Index) SchemaNodes(k string) []string {
	return DistinctSchemaNodes(ix.ContainingList(k))
}

// TOSet returns the set of target objects containing keyword k,
// restricted to postings on the given schema node ("" for any).
func (ix *Index) TOSet(k, schemaNode string) map[int64]bool {
	return TOSetFromList(ix.ContainingList(k), schemaNode)
}

// NumPostings returns the total number of postings in the index.
func (ix *Index) NumPostings() int { return ix.nTokens }

// NumKeywords returns the number of distinct indexed tokens.
func (ix *Index) NumKeywords() int { return len(ix.postings) }

// Terms returns every indexed token in ascending order — the enumeration
// the disk-index writer serializes.
func (ix *Index) Terms() []string {
	out := make([]string, 0, len(ix.postings))
	for tok := range ix.postings {
		out = append(out, tok)
	}
	sort.Strings(out)
	return out
}

// Postings returns the posting list of one exact token, bypassing
// tokenization ("" and unindexed tokens yield nil). The returned slice
// must not be modified.
func (ix *Index) Postings(token string) []Posting {
	return ix.postings[token]
}
