package lint

import (
	"flag"
	"go/build"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the analyzer golden files")

// testdataPackages are the seeded-violation packages; each is checked
// under a synthetic internal/ import path so path-scoped analyzers
// (errdrop) apply, and every analyzer runs over every package so the
// goldens also prove non-interference.
var testdataPackages = []string{
	"atomiccommit", "crcgate", "ctxflow", "errdrop", "goleak", "ignore",
	"keyfields", "keyjoin", "lockguard", "maporder", "nilrecv",
}

// TestAnalyzerGoldens runs the full analyzer suite over each testdata
// package and compares the exact findings (file:line: [name] message)
// against the package's golden file. The seeded files include at least
// two violations and one //xk:ignore suppression per analyzer; a
// suppressed line showing up here is a regression in the directive
// filter.
func TestAnalyzerGoldens(t *testing.T) {
	for _, name := range testdataPackages {
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", name)
			findings, err := CheckDir(dir, "repro/internal/lintcheck/"+name, Analyzers())
			if err != nil {
				t.Fatalf("CheckDir(%s): %v", dir, err)
			}
			var sb strings.Builder
			for _, f := range findings {
				sb.WriteString(f.String())
				sb.WriteByte('\n')
			}
			got := sb.String()
			golden := filepath.Join("testdata", "golden", name+".txt")
			if *update {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("reading golden (run `go test ./internal/lint -run Golden -update` after changing testdata): %v", err)
			}
			if got != string(want) {
				t.Errorf("findings mismatch for %s\n--- got ---\n%s--- want ---\n%s", name, got, want)
			}
		})
	}
}

// TestGoldenCoverage asserts each analyzer's golden records at least two
// seeded violations, so a silently dead analyzer cannot hide behind an
// empty-but-matching golden.
func TestGoldenCoverage(t *testing.T) {
	for _, name := range []string{
		"atomiccommit", "crcgate", "ctxflow", "errdrop", "goleak",
		"keyfields", "keyjoin", "lockguard", "maporder", "nilrecv",
	} {
		data, err := os.ReadFile(filepath.Join("testdata", "golden", name+".txt"))
		if err != nil {
			t.Fatal(err)
		}
		if n := strings.Count(string(data), "["+name+"]"); n < 2 {
			t.Errorf("golden for %s has %d findings; want >= 2 seeded violations", name, n)
		}
		src, err := os.ReadFile(filepath.Join("testdata", "src", name, name+".go"))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(src), "//xk:ignore "+name+" ") {
			t.Errorf("testdata for %s seeds no //xk:ignore suppression", name)
		}
	}
}

// TestIgnoreDirectives pins the directive-hygiene contract beyond what
// the golden shows: every malformed directive — including one naming an
// analyzer that has since been removed from the registry — surfaces as
// an unsuppressible [ignore] finding rather than being dropped.
func TestIgnoreDirectives(t *testing.T) {
	findings, err := CheckDir(filepath.Join("testdata", "src", "ignore"), "repro/internal/lintcheck/ignore", Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	wants := []string{
		`unknown analyzer "nosuchcheck"`,
		`unknown analyzer "topkheap"`, // removed analyzer: reported, not dropped
		"needs a reason",
		"one //xk:ignore per line",
	}
	for _, want := range wants {
		found := false
		for _, f := range findings {
			if f.Name != ignoreName || !strings.Contains(f.Msg, want) {
				continue
			}
			found = true
			break
		}
		if !found {
			t.Errorf("no [ignore] finding containing %q; got:\n%v", want, findings)
		}
	}
}

// TestXkvetCleanOnRepo loads the whole module exactly as cmd/xkvet does
// and asserts zero unsuppressed findings: the repo must stay lint-clean.
func TestXkvetCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type-check is slow; skipped in -short mode")
	}
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := CheckModule(root, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("unsuppressed finding: %s", f)
	}
}

// TestStdlibOnlyImports enforces the acceptance criterion that the lint
// subsystem builds on the standard library alone: internal/lint imports
// only stdlib, and cmd/xkvet imports only stdlib plus internal/lint.
func TestStdlibOnlyImports(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := modulePath(root)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		dir     string
		allowed map[string]bool
	}{
		{"internal/lint", nil},
		{"cmd/xkvet", map[string]bool{mod + "/internal/lint": true}},
	}
	for _, c := range cases {
		bp, err := build.Default.ImportDir(filepath.Join(root, c.dir), 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, imp := range append(bp.Imports, bp.TestImports...) {
			if c.allowed[imp] {
				continue
			}
			if imp == mod || strings.HasPrefix(imp, mod+"/") {
				t.Errorf("%s imports module package %s; only the standard library is allowed", c.dir, imp)
				continue
			}
			if first := strings.SplitN(imp, "/", 2)[0]; strings.Contains(first, ".") {
				t.Errorf("%s imports non-stdlib package %s", c.dir, imp)
			}
		}
	}
}
