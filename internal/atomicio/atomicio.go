// Package atomicio writes files crash-safely. Every durable artifact
// the system persists (the snapshot, the .xki master index) goes
// through WriteFile: the bytes land in a same-directory temp file, are
// fsynced, and only then renamed over the target, with the parent
// directory fsynced so the rename itself is durable. A crash at any
// instant leaves either the old generation or the new one — never a
// torn file at the target path.
//
// The companions handle the debris a crash can leave: Sweep quarantines
// orphaned temp files at startup, and Quarantine moves a file that
// failed validation out of the load path while preserving it for
// forensics.
package atomicio

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// tempInfix marks in-progress writes: a temp for /d/name is
// /d/name.tmp-<random>. Sweep recognizes the pattern.
const tempInfix = ".tmp-"

// TornSuffix is appended by Sweep when it quarantines an orphaned temp
// file — evidence of a write that never committed.
const TornSuffix = ".torn"

// CorruptSuffix is appended by Quarantine when a file fails validation.
const CorruptSuffix = ".corrupt"

// WriteFile atomically replaces path with whatever write produces. The
// callback receives a temp file in path's directory (so the final
// rename cannot cross filesystems) and may seek and write at will; when
// it returns nil the file is fsynced, closed, renamed over path, and
// the directory entry is fsynced. On any error the temp file is removed
// and path is left exactly as it was.
func WriteFile(path string, write func(*os.File) error) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+tempInfix+"*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()      //xk:ignore errdrop double-close backstop on the error path; the first error is what matters
			os.Remove(tmp) //xk:ignore errdrop best-effort removal of the aborted temp file
		}
	}()
	if err = write(f); err != nil {
		return err
	}
	// Sync before rename: the rename must never become visible while the
	// file's bytes are still only in the page cache.
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-committed rename survives a
// crash. Filesystems that cannot fsync directories make this a no-op.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close() //xk:ignore errdrop read-only directory handle; Close cannot lose data
	if err := d.Sync(); err != nil && !isSyncUnsupported(err) {
		return fmt.Errorf("atomicio: fsync %s: %w", dir, err)
	}
	return nil
}

// isSyncUnsupported reports whether a directory fsync failed only
// because the filesystem does not support it (EINVAL/ENOTSUP on some
// network and FUSE filesystems), which is not a durability bug we can
// fix from here.
func isSyncUnsupported(err error) bool {
	s := err.Error()
	return strings.Contains(s, "invalid argument") || strings.Contains(s, "not supported")
}

// Sweep quarantines the orphaned temp files a crash mid-WriteFile(path)
// can leave behind, renaming each to its name + TornSuffix so it is
// preserved for forensics but can never shadow a future write. It
// returns the quarantined paths. Call it at startup before trusting the
// directory.
func Sweep(path string) (quarantined []string, err error) {
	dir, base := filepath.Dir(path), filepath.Base(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, base+tempInfix) || strings.HasSuffix(name, TornSuffix) {
			continue
		}
		from := filepath.Join(dir, name)
		to := from + TornSuffix
		if err := os.Rename(from, to); err != nil {
			return quarantined, err
		}
		quarantined = append(quarantined, to)
	}
	return quarantined, nil
}

// Quarantine moves a file that failed validation to path +
// CorruptSuffix (replacing any earlier quarantined copy) and returns
// the new name. The original path is freed for a rebuilt replacement.
func Quarantine(path string) (string, error) {
	to := path + CorruptSuffix
	if err := os.Rename(path, to); err != nil {
		return "", err
	}
	return to, nil
}
