package lint

import (
	"go/ast"
	"go/types"
)

// goleak flags goroutines launched where they multiply — inside a loop,
// or on a per-request path (a function taking *http.Request) — with no
// join or cancellation mechanism reaching them. The shard coordinator
// scatters a goroutine per shard per query; without a ctx/done signal
// or a WaitGroup/channel join, one slow shard strands a goroutine per
// request and the server's goroutine count grows with traffic until it
// falls over (the class PR 7's two-phase scatter-gather was built to
// avoid, with per-shard breakers and context propagation throughout).
//
// Join evidence, any of which silences the check:
//   - the goroutine references a context.Context (captured or passed
//     as an argument), so cancellation can reach it;
//   - the goroutine references a sync.WaitGroup;
//   - the goroutine sends on or closes a channel that the launching
//     function receives from after the go statement (a gather loop).
var analyzerGoleak = &Analyzer{
	Name: "goleak",
	Doc:  "goroutines launched in loops or per-request paths need a ctx/done/WaitGroup join",
	Run:  runGoleak,
}

func runGoleak(p *Pass) {
	for _, ff := range p.Flow.Funcs {
		perRequest := ff.Decl != nil && hasRequestParam(p, ff.Decl)
		ast.Inspect(ff.Body, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			inLoop := ff.EnclosingLoop(g) != nil
			if !inLoop && !perRequest {
				return true
			}
			if goroutineJoined(p, ff, g) {
				return true
			}
			where := "in a loop"
			if !inLoop {
				where = "on a per-request path"
			}
			p.Reportf(g.Pos(), "goroutine launched %s with no ctx, WaitGroup, or gathered channel reaching it; under load these accumulate without bound — join or cancel it", where)
			return true
		})
	}
}

func hasRequestParam(p *Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		t := p.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if ptr, ok := t.(*types.Pointer); ok {
			if n, ok := ptr.Elem().(*types.Named); ok {
				if n.Obj().Name() == "Request" && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "net/http" {
					return true
				}
			}
		}
	}
	return false
}

// goroutineJoined looks for any of the three join mechanisms.
func goroutineJoined(p *Pass, ff *FuncFlow, g *ast.GoStmt) bool {
	// Arguments passed to the goroutine count as references inside it:
	// `go worker(ctx, i)` threads cancellation even though the body is
	// elsewhere.
	for _, arg := range g.Call.Args {
		if t := p.TypeOf(arg); t != nil && (isContextType(t) || isWaitGroupType(t)) {
			return true
		}
	}
	joined := false
	var sentChans []*types.Var
	ast.Inspect(g.Call, func(n ast.Node) bool {
		if joined {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if v := ff.identVar[n]; v != nil && (isContextType(v.Type()) || isWaitGroupType(v.Type())) {
				joined = true
				return false
			}
		case *ast.SendStmt:
			if v := ff.VarOf(chanExpr(n.Chan)); v != nil {
				sentChans = append(sentChans, v)
			}
		case *ast.CallExpr:
			// close(ch) inside the goroutine pairs with a receive outside.
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && len(n.Args) == 1 {
				if b, ok := p.Info.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
					if v := ff.VarOf(n.Args[0]); v != nil {
						sentChans = append(sentChans, v)
					}
				}
			}
		}
		return true
	})
	if joined {
		return true
	}
	// A channel the goroutine sends on joins it only if the launcher
	// actually drains it after the go statement.
	for _, ch := range sentChans {
		if receivedAfter(p, ff, ch, g) {
			return true
		}
	}
	return false
}

func chanExpr(e ast.Expr) ast.Expr { return ast.Unparen(e) }

func isWaitGroupType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "WaitGroup" && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync"
}

// receivedAfter reports whether ch is received from (unary <-, range,
// or a select case) after pos in the launching function, outside the
// goroutine itself.
func receivedAfter(p *Pass, ff *FuncFlow, ch *types.Var, g *ast.GoStmt) bool {
	for _, use := range ff.UsesOf(ch) {
		if use.Pos() < g.End() || insideNode(ff, use, g) {
			continue
		}
		parent := ff.flow.Parent(use)
		switch pn := parent.(type) {
		case *ast.UnaryExpr:
			if pn.Op.String() == "<-" {
				return true
			}
		case *ast.RangeStmt:
			if pn.X == ast.Expr(use) {
				return true
			}
		}
	}
	return false
}
