package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRetryloopGolden mirrors TestAnalyzerGoldens for the retryloop
// testdata package; it lives in its own file so the original golden
// test table stays untouched. The full analyzer suite runs over the
// package, so the golden also proves non-interference.
func TestRetryloopGolden(t *testing.T) {
	const name = "retryloop"
	dir := filepath.Join("testdata", "src", name)
	findings, err := CheckDir(dir, "repro/internal/lintcheck/"+name, Analyzers())
	if err != nil {
		t.Fatalf("CheckDir(%s): %v", dir, err)
	}
	var sb strings.Builder
	for _, f := range findings {
		sb.WriteString(f.String())
		sb.WriteByte('\n')
	}
	got := sb.String()
	golden := filepath.Join("testdata", "golden", name+".txt")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run `go test ./internal/lint -run Golden -update` after changing testdata): %v", err)
	}
	if got != string(want) {
		t.Errorf("findings mismatch for %s\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

// TestRetryloopCoverage is the TestGoldenCoverage contract for the new
// analyzer: the golden must record several distinct seeded violations
// (unbounded, hot, and both), and the testdata must seed a suppression.
func TestRetryloopCoverage(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "golden", "retryloop.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(data), "[retryloop]"); n < 3 {
		t.Errorf("golden for retryloop has %d findings; want >= 3 seeded violations", n)
	}
	for _, fragment := range []string{"no attempt bound", "without backoff", "neither an attempt bound nor backoff"} {
		if !strings.Contains(string(data), fragment) {
			t.Errorf("golden for retryloop misses the %q variant", fragment)
		}
	}
	src, err := os.ReadFile(filepath.Join("testdata", "src", "retryloop", "retryloop.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "//xk:ignore retryloop ") {
		t.Error("testdata for retryloop seeds no //xk:ignore suppression")
	}
}
