package xsd_test

import (
	"testing"

	"repro/internal/schema"
	"repro/internal/tss"
	"repro/internal/xmlgraph"
	"repro/internal/xsd"
)

// dblpXSD declares the Figure 14 schema in XML Schema.
const dblpXSD = `
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="conference">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="cname" type="xs:string"/>
        <xs:element ref="confyear" maxOccurs="unbounded"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
  <xs:element name="confyear">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="year" type="xs:string"/>
        <xs:element ref="paper" maxOccurs="unbounded"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
  <xs:element name="paper">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="title" type="xs:string"/>
        <xs:element name="pages" type="xs:string"/>
        <xs:element name="url" type="xs:string"/>
        <xs:element ref="authorref" maxOccurs="unbounded"/>
        <xs:element ref="cite" maxOccurs="unbounded"/>
      </xs:sequence>
      <xs:attribute name="id" type="xs:ID"/>
    </xs:complexType>
  </xs:element>
  <xs:element name="authorref">
    <xs:complexType>
      <xs:attribute name="ref" type="xs:IDREF"/>
    </xs:complexType>
  </xs:element>
  <xs:element name="cite">
    <xs:complexType>
      <xs:attribute name="ref" type="xs:IDREF"/>
    </xs:complexType>
  </xs:element>
  <xs:element name="author">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="aname" type="xs:string"/>
      </xs:sequence>
      <xs:attribute name="id" type="xs:ID"/>
    </xs:complexType>
  </xs:element>
</xs:schema>`

func dblpRefs() map[string]string {
	return map[string]string{"authorref": "author", "cite": "paper"}
}

func TestParseDBLPXSD(t *testing.T) {
	g, err := xsd.ParseString(dblpXSD, xsd.Options{RefTargets: dblpRefs()})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 12 {
		t.Fatalf("nodes = %d, want 12", g.NumNodes())
	}
	if e, ok := g.FindEdge("confyear", "paper", xmlgraph.Containment); !ok || e.MaxOccurs != schema.Unbounded {
		t.Fatalf("confyear->paper = %+v, %v", e, ok)
	}
	if e, ok := g.FindEdge("paper", "title", xmlgraph.Containment); !ok || e.MaxOccurs != 1 {
		t.Fatalf("paper->title = %+v, %v", e, ok)
	}
	if _, ok := g.FindEdge("cite", "paper", xmlgraph.Reference); !ok {
		t.Fatal("cite IDREF lost")
	}
	// Auto-roots: conference and author (never inside a content model).
	for _, root := range []string{"conference", "author"} {
		if !g.Node(root).Root {
			t.Fatalf("%s not a root", root)
		}
	}
	if g.Node("paper").Root {
		t.Fatal("paper must not be a root")
	}
	// The XSD-built schema supports a full TSS derivation.
	tg, err := tss.Derive(g, tss.Spec{Segments: []tss.SegmentSpec{
		{Name: "conference", Head: "conference", Members: []string{"cname"}},
		{Name: "confyear", Head: "confyear", Members: []string{"year"}},
		{Name: "paper", Head: "paper", Members: []string{"title", "pages", "url"}},
		{Name: "author", Head: "author", Members: []string{"aname"}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if tg.NumEdges() != 4 {
		t.Fatalf("TSS edges = %d, want 4", tg.NumEdges())
	}
}

func TestChoiceElement(t *testing.T) {
	g, err := xsd.ParseString(`
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="line">
    <xs:complexType>
      <xs:choice>
        <xs:element ref="part"/>
        <xs:element ref="product"/>
      </xs:choice>
    </xs:complexType>
  </xs:element>
  <xs:element name="part"/>
  <xs:element name="product"/>
</xs:schema>`, xsd.Options{Roots: []string{"line"}})
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsChoice("line") {
		t.Fatal("line must be a choice node")
	}
}

func TestNumericMaxOccurs(t *testing.T) {
	g, err := xsd.ParseString(`
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="a">
    <xs:complexType><xs:sequence>
      <xs:element name="b" type="xs:string" maxOccurs="3"/>
    </xs:sequence></xs:complexType>
  </xs:element>
</xs:schema>`, xsd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e, _ := g.FindEdge("a", "b", xmlgraph.Containment); e.MaxOccurs != 3 {
		t.Fatalf("maxOccurs = %d", e.MaxOccurs)
	}
}

func TestParseErrors(t *testing.T) {
	const header = `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">`
	cases := map[string]struct {
		doc  string
		opts xsd.Options
	}{
		"not xml":      {"nope", xsd.Options{}},
		"empty schema": {header + `</xs:schema>`, xsd.Options{}},
		"dup element":  {header + `<xs:element name="a"/><xs:element name="a"/></xs:schema>`, xsd.Options{}},
		"bad ref": {header + `<xs:element name="a"><xs:complexType><xs:sequence>
			<xs:element ref="zz"/></xs:sequence></xs:complexType></xs:element></xs:schema>`, xsd.Options{}},
		"seq and choice": {header + `<xs:element name="a"><xs:complexType>
			<xs:sequence><xs:element name="b" type="xs:string"/></xs:sequence>
			<xs:choice><xs:element name="c" type="xs:string"/></xs:choice>
			</xs:complexType></xs:element></xs:schema>`, xsd.Options{}},
		"idref no target": {header + `<xs:element name="a"><xs:complexType>
			<xs:attribute name="r" type="xs:IDREF"/></xs:complexType></xs:element></xs:schema>`, xsd.Options{}},
		"bad occurs": {header + `<xs:element name="a"><xs:complexType><xs:sequence>
			<xs:element name="b" type="xs:string" maxOccurs="-2"/></xs:sequence></xs:complexType></xs:element></xs:schema>`, xsd.Options{}},
		"nameless": {header + `<xs:element name="a"><xs:complexType><xs:sequence>
			<xs:element/></xs:sequence></xs:complexType></xs:element></xs:schema>`, xsd.Options{}},
	}
	for name, c := range cases {
		if _, err := xsd.ParseString(c.doc, c.opts); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// End to end: XSD schema types a real document.
func TestXSDSchemaAssignsData(t *testing.T) {
	g, err := xsd.ParseString(dblpXSD, xsd.Options{RefTargets: dblpRefs()})
	if err != nil {
		t.Fatal(err)
	}
	doc := `
<db>
 <conference><cname>ICDE</cname>
  <confyear><year>2003</year>
   <paper><title>Keyword Proximity Search on XML Graphs</title>
    <pages>367-378</pages><url>x</url>
    <authorref ref="a1"/></paper>
  </confyear>
 </conference>
 <author id="a1"><aname>Vagelis Hristidis</aname></author>
</db>`
	data, err := xmlgraph.ParseString(doc, xmlgraph.ParseOptions{OmitRoot: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Assign(data); err != nil {
		t.Fatal(err)
	}
}
