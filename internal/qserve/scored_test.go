package qserve_test

import (
	"context"
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/pipeline"
	"repro/internal/qserve"
)

// fakeScoredEngine extends fakeEngine with the scored surface, recording
// the scorer names routed through and returning a fixed relaxation.
type fakeScoredEngine struct {
	fakeEngine
	scorers []string
	relax   *pipeline.Relaxation
}

func (f *fakeScoredEngine) QueryScoredContext(ctx context.Context, keywords []string, k int, scorer string) ([]exec.Result, *pipeline.Relaxation, error) {
	f.scorers = append(f.scorers, scorer)
	rs, err := f.run(ctx)
	return rs, f.relax, err
}

// A relaxation note must reach the caller on the cache miss AND be
// replayed on the hit — a relaxed answer without its note would look
// like a confident exact answer.
func TestScoredCachesRelaxationNote(t *testing.T) {
	eng := &fakeScoredEngine{relax: &pipeline.Relaxation{Dropped: []string{"zzz"}}}
	qs := qserve.New(eng, qserve.Options{})
	ctx := context.Background()

	for round := 0; round < 2; round++ {
		rs, ann, err := qs.QueryScored(ctx, []string{"john", "zzz"}, 10, "")
		if err != nil {
			t.Fatal(err)
		}
		if len(rs) != 0 {
			t.Fatalf("round %d: %d results", round, len(rs))
		}
		if ann == nil || ann.Relaxed == nil || len(ann.Relaxed.Dropped) != 1 || ann.Relaxed.Dropped[0] != "zzz" {
			t.Fatalf("round %d: annotations = %+v, want dropped zzz", round, ann)
		}
	}
	if got := eng.calls.Load(); got != 1 {
		t.Fatalf("engine ran %d times, want 1 (second round must be a cache hit)", got)
	}
	if st := qs.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit 1 miss", st)
	}
}

// Different scorers are different answers: the cache must miss across
// scorer names and hit within one.
func TestScoredCacheKeySeparatesScorers(t *testing.T) {
	eng := &fakeScoredEngine{}
	qs := qserve.New(eng, qserve.Options{})
	ctx := context.Background()

	for _, scorer := range []string{"", "weighted", "diversified"} {
		for round := 0; round < 2; round++ {
			if _, _, err := qs.QueryScored(ctx, []string{"john"}, 10, scorer); err != nil {
				t.Fatalf("scorer %q round %d: %v", scorer, round, err)
			}
		}
	}
	if got := eng.calls.Load(); got != 3 {
		t.Fatalf("engine ran %d times, want 3 (one per scorer, repeats cached)", got)
	}
	// The engine saw each requested scorer verbatim.
	if len(eng.scorers) != 3 || eng.scorers[0] != "" || eng.scorers[1] != "weighted" || eng.scorers[2] != "diversified" {
		t.Fatalf("scorers routed through: %q", eng.scorers)
	}
}

// A plain Engine (no scored surface) keeps serving the default scorer
// and loudly rejects any other — silent fallback to a different ranking
// would misreport what the user asked for.
func TestScoredPlainEngineFallback(t *testing.T) {
	eng := &fakeEngine{}
	qs := qserve.New(eng, qserve.Options{})
	ctx := context.Background()

	for _, scorer := range []string{"", "edgecount"} {
		rs, ann, err := qs.QueryScored(ctx, []string{"john"}, 10, scorer)
		if err != nil {
			t.Fatalf("scorer %q: %v", scorer, err)
		}
		if len(rs) != 0 || (ann != nil && ann.Relaxed != nil) {
			t.Fatalf("scorer %q: rs=%v ann=%+v", scorer, rs, ann)
		}
	}
	_, _, err := qs.QueryScored(ctx, []string{"john"}, 10, "weighted")
	if err == nil || !strings.Contains(err.Error(), "does not support scorer") {
		t.Fatalf("plain engine accepted a non-default scorer: %v", err)
	}
}
