// Package fault is the repo's deterministic fault-injection and
// fault-tolerance layer. One half injects failures: a seed-driven
// Injector wraps the disk-index I/O path (transient ReadAt errors, bit
// flips, short reads, latency) and the serving path (an Engine wrapper
// that delays, errs, or hangs pipeline executions), so the chaos suite
// (`make chaos`) can replay the same failure schedule from a seed. The
// other half tolerates them: RetryPolicy is the blessed bounded-retry
// pattern with exponential backoff and jitter that the read path uses —
// and that the xkvet retryloop analyzer checks hand-rolled loops
// against. Standard library only, like the rest of the repo.
//
// Injection decisions derive from a splitmix64 stream seeded by the
// caller, not from math/rand, so a scenario's fault schedule is stable
// across Go releases and platforms: chaos failures reproduce from
// nothing but the seed.
package fault

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/obs"
)

// ErrInjected marks a failure manufactured by an Injector, so tests can
// tell injected faults from real ones.
var ErrInjected = errors.New("fault: injected I/O error")

// ErrCrash marks the simulated process kill of a LimitWriter: the write
// path stops mid-stream as if the machine died.
var ErrCrash = errors.New("fault: simulated crash (write cut short)")

// Profile sets the per-operation fault probabilities of an Injector.
// The zero value injects nothing.
type Profile struct {
	// ReadErrProb is the probability that a ReadAt starts failing. A
	// faulted offset fails ReadErrStreak consecutive attempts and then
	// recovers — a transient error, the kind bounded retries absorb.
	ReadErrProb float64
	// ReadErrStreak is how many consecutive attempts at a faulted offset
	// fail before it recovers (default 1). Set it beyond the reader's
	// retry budget to make faults permanent.
	ReadErrStreak int
	// CorruptProb is the probability that a ReadAt silently returns data
	// with one bit flipped — torn writes and bit rot, the faults only a
	// checksum can catch.
	CorruptProb float64
	// ShortReadProb is the probability that a ReadAt returns fewer bytes
	// than requested with io.ErrUnexpectedEOF, as a truncated file would.
	ShortReadProb float64
	// MaxLatency, when positive, sleeps a uniform [0, MaxLatency) before
	// each ReadAt, modeling a saturated or degraded device.
	MaxLatency time.Duration
}

// Injector makes deterministic fault decisions from a seed. It is safe
// for concurrent use; decisions are serialized, so a fixed seed yields a
// fixed fault budget even if the arrival order of concurrent operations
// varies.
type Injector struct {
	prof Profile

	mu      sync.Mutex
	rng     rng           // guarded by mu
	streaks map[int64]int // guarded by mu; remaining failures per faulted offset
	sleep   func(time.Duration)

	// Injected-fault counters, exported for assertions and dashboards.
	Reads       obs.Counter
	ReadErrs    obs.Counter
	Corruptions obs.Counter
	ShortReads  obs.Counter
}

// NewInjector returns an injector whose decisions replay exactly for a
// given (seed, profile) pair.
func NewInjector(seed int64, prof Profile) *Injector {
	if prof.ReadErrStreak <= 0 {
		prof.ReadErrStreak = 1
	}
	return &Injector{
		prof:    prof,
		rng:     rng{state: uint64(seed)*2654435769 + 0x9e3779b97f4a7c15},
		streaks: make(map[int64]int),
		sleep:   time.Sleep,
	}
}

// decide rolls the three read-fault dice for one ReadAt at off.
func (in *Injector) decide(off int64) (fail, corrupt bool, short bool, delay time.Duration) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.prof.MaxLatency > 0 {
		delay = time.Duration(in.rng.intn(int(in.prof.MaxLatency)))
	}
	if left, ok := in.streaks[off]; ok {
		if left > 1 {
			in.streaks[off] = left - 1
		} else {
			delete(in.streaks, off) // streak exhausted: next attempt succeeds
		}
		return true, false, false, delay
	}
	switch {
	case in.rng.float() < in.prof.ReadErrProb:
		if in.prof.ReadErrStreak > 1 {
			in.streaks[off] = in.prof.ReadErrStreak - 1
		}
		return true, false, false, delay
	case in.rng.float() < in.prof.CorruptProb:
		return false, true, false, delay
	case in.rng.float() < in.prof.ShortReadProb:
		return false, false, true, delay
	}
	return false, false, false, delay
}

// flipBit picks the bit to corrupt in an n-byte read.
func (in *Injector) flipBit(n int) (byteIdx int, bit uint) {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.intn(n), uint(in.rng.intn(8))
}

// ReaderAt wraps r so every ReadAt consults the injector first. The
// wrapped reader never mutates r's underlying data: corruption is
// applied to the caller's buffer only.
func (in *Injector) ReaderAt(r io.ReaderAt) io.ReaderAt {
	return &faultyReaderAt{in: in, r: r}
}

type faultyReaderAt struct {
	in *Injector
	r  io.ReaderAt
}

func (f *faultyReaderAt) ReadAt(p []byte, off int64) (int, error) {
	f.in.Reads.Add(1)
	fail, corrupt, short, delay := f.in.decide(off)
	if delay > 0 {
		f.in.sleep(delay)
	}
	if fail {
		f.in.ReadErrs.Add(1)
		return 0, fmt.Errorf("%w: ReadAt(%d bytes, off %d)", ErrInjected, len(p), off)
	}
	if short && len(p) > 1 {
		f.in.ShortReads.Add(1)
		n, err := f.r.ReadAt(p[:len(p)/2], off)
		if err != nil {
			return n, err
		}
		return n, io.ErrUnexpectedEOF
	}
	n, err := f.r.ReadAt(p, off)
	if corrupt && n > 0 {
		f.in.Corruptions.Add(1)
		i, bit := f.in.flipBit(n)
		p[i] ^= 1 << bit
	}
	return n, err
}

// LimitWriter returns a writer that passes through at most n bytes to w
// and then fails every write with ErrCrash — the moment the simulated
// machine died mid-save. A cut inside a buffered stream models a torn
// write: some prefix durable, the rest gone.
func LimitWriter(w io.Writer, n int64) io.Writer {
	return &limitWriter{w: w, left: n}
}

type limitWriter struct {
	w    io.Writer
	left int64
}

func (l *limitWriter) Write(p []byte) (int, error) {
	if l.left <= 0 {
		return 0, ErrCrash
	}
	if int64(len(p)) <= l.left {
		n, err := l.w.Write(p)
		l.left -= int64(n)
		return n, err
	}
	n, err := l.w.Write(p[:l.left])
	l.left -= int64(n)
	if err != nil {
		return n, err
	}
	return n, ErrCrash
}

// rng is a splitmix64 stream: tiny, fast, and stable across platforms
// and Go releases, which math/rand does not guarantee.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform value in [0, 1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// intn returns a uniform value in [0, n); n must be positive.
func (r *rng) intn(n int) int {
	return int(r.next() % uint64(n))
}
