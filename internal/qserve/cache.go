package qserve

import (
	"container/list"
	"hash/fnv"
	"sync"
	"time"

	"repro/internal/exec"
)

// resultCache is a sharded LRU over query results with TTL and a byte
// budget. Sharding keeps lock contention off the serve path: a hot
// cache under concurrent load would otherwise serialize every hit on
// one mutex. Entries expire lazily on access and by LRU eviction when a
// shard exceeds its entry or byte share.
type resultCache struct {
	shards []*cacheShard
	ttl    time.Duration
}

type cacheShard struct {
	mu         sync.Mutex
	ll         *list.List               // guarded by mu; front = most recently used
	m          map[string]*list.Element // guarded by mu
	bytes      int64                    // guarded by mu
	maxBytes   int64
	maxEntries int
}

type cacheEntry struct {
	key     string
	rs      []exec.Result
	meta    any // caller annotation returned verbatim on hits (e.g. a relaxation record)
	size    int64
	expires time.Time // zero = never
}

func newResultCache(shards, maxEntries int, maxBytes int64, ttl time.Duration) *resultCache {
	c := &resultCache{shards: make([]*cacheShard, shards), ttl: ttl}
	perEntries := (maxEntries + shards - 1) / shards
	if perEntries < 1 {
		perEntries = 1
	}
	perBytes := maxBytes / int64(shards)
	if perBytes < 1 {
		perBytes = 1
	}
	for i := range c.shards {
		c.shards[i] = &cacheShard{
			ll:         list.New(),
			m:          make(map[string]*list.Element),
			maxBytes:   perBytes,
			maxEntries: perEntries,
		}
	}
	return c
}

func (c *resultCache) shard(key string) *cacheShard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return c.shards[h.Sum32()%uint32(len(c.shards))]
}

// get returns the cached results and the annotation stored with them,
// refreshing the entry's LRU position. Expired entries are removed and
// reported as a miss.
func (c *resultCache) get(key string) ([]exec.Result, any, bool) {
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.m[key]
	if !ok {
		return nil, nil, false
	}
	e := el.Value.(*cacheEntry)
	if !e.expires.IsZero() && time.Now().After(e.expires) {
		sh.removeLocked(el)
		return nil, nil, false
	}
	sh.ll.MoveToFront(el)
	return e.rs, e.meta, true
}

// put inserts (or refreshes) an entry and returns how many entries were
// evicted to fit it. meta travels with the results and comes back
// verbatim on every hit — the serving layer stores relaxation records
// there, so a cached relaxed answer stays loudly annotated.
func (c *resultCache) put(key string, rs []exec.Result, meta any) int64 {
	e := &cacheEntry{key: key, rs: rs, meta: meta, size: resultBytes(key, rs)}
	if c.ttl > 0 {
		e.expires = time.Now().Add(c.ttl)
	}
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.m[key]; ok {
		sh.removeLocked(el)
	}
	sh.bytes += e.size
	sh.m[key] = sh.ll.PushFront(e)
	var evicted int64
	for (sh.bytes > sh.maxBytes || sh.ll.Len() > sh.maxEntries) && sh.ll.Len() > 1 {
		sh.removeLocked(sh.ll.Back())
		evicted++
	}
	return evicted
}

// removeLocked drops an element; the shard lock must be held.
func (sh *cacheShard) removeLocked(el *list.Element) {
	e := el.Value.(*cacheEntry)
	sh.ll.Remove(el)
	delete(sh.m, e.key)
	sh.bytes -= e.size
}

// clear drops every entry in every shard and returns how many were
// dropped. The ingest path uses it: after a write batch, cached results
// may no longer reflect the index.
func (c *resultCache) clear() int64 {
	var dropped int64
	for _, sh := range c.shards {
		sh.mu.Lock()
		dropped += int64(sh.ll.Len())
		sh.ll.Init()
		sh.m = make(map[string]*list.Element)
		sh.bytes = 0
		sh.mu.Unlock()
	}
	return dropped
}

// invalidateMatching drops every entry whose key satisfies match and
// returns how many were dropped — the scoped form of clear for ingests
// whose token footprint is known.
func (c *resultCache) invalidateMatching(match func(key string) bool) int64 {
	var dropped int64
	for _, sh := range c.shards {
		sh.mu.Lock()
		var doomed []*list.Element
		for el := sh.ll.Front(); el != nil; el = el.Next() {
			if match(el.Value.(*cacheEntry).key) {
				doomed = append(doomed, el)
			}
		}
		for _, el := range doomed {
			sh.removeLocked(el)
		}
		dropped += int64(len(doomed))
		sh.mu.Unlock()
	}
	return dropped
}

// usage totals entries and bytes across the shards.
func (c *resultCache) usage() (entries int, bytes int64) {
	for _, sh := range c.shards {
		sh.mu.Lock()
		entries += sh.ll.Len()
		bytes += sh.bytes
		sh.mu.Unlock()
	}
	return entries, bytes
}

// resultBytes approximates an entry's memory footprint: the key, the
// slice headers, and the per-result binding arrays. Networks are shared
// with the engine's memo, so only the pointer is charged.
func resultBytes(key string, rs []exec.Result) int64 {
	n := int64(len(key)) + 96 // entry struct, map slot, list element
	for _, r := range rs {
		n += 48 + 8*int64(len(r.Bind))
	}
	return n
}
