package shard_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/kwindex"
	"repro/internal/qserve"
	"repro/internal/shard"
)

// replicaCluster is an in-process replicated deployment: n shard groups
// of r replicas each, every replica an httptest server over the SAME
// partition slice (byte-identical data, as real deployments copy the
// shard directory), and a coordinator over the group topology.
type replicaCluster struct {
	coord   *shard.Coordinator
	servers [][]*httptest.Server // [shard][replica]
}

// replicaConfig tweaks startReplicatedCluster per test.
type replicaConfig struct {
	opts shard.CoordinatorOptions
	// wrap decorates shard i replica ri's handler (nil = identity).
	wrap func(i, ri int, h http.Handler) http.Handler
}

func startReplicatedCluster(t testing.TB, sys *core.System, n, r int, cfg replicaConfig) *replicaCluster {
	t.Helper()
	master := kwindex.Build(sys.Obj)
	c := &replicaCluster{}
	var groups [][]string
	for i := 0; i < n; i++ {
		part := shard.PartitionIndex(master, i, n)
		var reps []*httptest.Server
		var addrs []string
		for ri := 0; ri < r; ri++ {
			srv := &shard.Server{Sys: sys, Local: part, ID: i, N: n}
			h := http.Handler(srv.Handler())
			if cfg.wrap != nil {
				h = cfg.wrap(i, ri, h)
			}
			ts := httptest.NewServer(h)
			t.Cleanup(ts.Close)
			reps = append(reps, ts)
			addrs = append(addrs, ts.URL)
		}
		c.servers = append(c.servers, reps)
		groups = append(groups, addrs)
	}
	if cfg.opts.HealthTTL == 0 {
		cfg.opts.HealthTTL = -1 // tests want fresh states, not 1s-stale ones
	}
	if cfg.opts.Logf == nil {
		cfg.opts.Logf = t.Logf
	}
	c.coord = shard.NewCoordinatorGroups(sys, groups, cfg.opts)
	return c
}

// runEquivalenceSuite checks a seeded batch of queries against the
// single-node answer, requiring byte-identical results and — the
// replica invariant — zero degradation notes.
func runEquivalenceSuite(t *testing.T, sys *core.System, coord *shard.Coordinator, tag string) {
	t.Helper()
	ctx := context.Background()
	for _, kws := range [][]string{{"john", "tv"}, {"anna", "vcr"}, {"maria", "dvd"}} {
		for _, k := range []int{1, 5, 10} {
			want, err := sys.QueryContext(ctx, kws, k)
			if err != nil {
				t.Fatalf("%s: single-node %v: %v", tag, kws, err)
			}
			cctx, deg := qserve.CaptureDegradation(ctx)
			got, err := coord.QueryContext(cctx, kws, k)
			if err != nil {
				t.Fatalf("%s: coordinator %v: %v", tag, kws, err)
			}
			if d := deg(); d != nil {
				t.Fatalf("%s: degradation note %+v — replica faults must be absorbed silently", tag, d)
			}
			mustEqualResults(t, fmt.Sprintf("%s %v k=%d", tag, kws, k), got, want)
		}
	}
}

// TestReplicaEquivalenceAcrossR is the randomized equivalence suite for
// replica counts R∈{1,2,3}: a healthy replicated deployment must return
// exactly the single-node answer (replicas serve identical partitions,
// so routing and hedging cannot change a byte), and Validate must
// accept the group CRC cross-check.
func TestReplicaEquivalenceAcrossR(t *testing.T) {
	sys := tpchSystem(t)
	for _, r := range []int{1, 2, 3} {
		t.Run(fmt.Sprintf("r=%d", r), func(t *testing.T) {
			cl := startReplicatedCluster(t, sys, 3, r, replicaConfig{})
			if err := cl.coord.Validate(context.Background()); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if got := cl.coord.Replicas(); got != 3*r {
				t.Fatalf("Replicas() = %d, want %d", got, 3*r)
			}
			runEquivalenceSuite(t, sys, cl.coord, fmt.Sprintf("r=%d", r))
		})
	}
}

// TestReplicaKillOneStaysExact kills one replica of EVERY group
// mid-suite: answers must stay byte-identical to single-node with zero
// degradation notes — availability now comes from the sibling, and the
// loud-degradation path is reserved for whole-group loss.
func TestReplicaKillOneStaysExact(t *testing.T) {
	sys := tpchSystem(t)
	cl := startReplicatedCluster(t, sys, 3, 2, replicaConfig{
		opts: shard.CoordinatorOptions{Retry: fault.RetryPolicy{Attempts: 1}},
	})
	runEquivalenceSuite(t, sys, cl.coord, "before kill")
	for i := range cl.servers {
		cl.servers[i][0].Close() // lights out for one replica per group
	}
	runEquivalenceSuite(t, sys, cl.coord, "after kill")
	if s := cl.coord.Stats(); s.Failovers == 0 {
		t.Fatal("killed replicas but Failovers did not move — who answered?")
	} else if s.Degraded != 0 {
		t.Fatalf("replica loss counted %d degraded queries, want 0", s.Degraded)
	}
	// Health: still a live replica per group, so never unavailable; the
	// dead siblings make it degraded, with per-replica detail.
	if got, err := cl.coord.IndexHealthState(); got != core.IndexDegraded {
		t.Fatalf("health with one dead replica per group = %v (%v), want degraded", got, err)
	}
	for i, st := range cl.coord.ShardStates() {
		if len(st.Replicas) != 2 {
			t.Fatalf("shard %d reports %d replica states, want 2", i, len(st.Replicas))
		}
		if st.State == string(core.IndexUnavailable) {
			t.Fatalf("shard %d reported unavailable with a live replica: %+v", i, st)
		}
		dead := st.Replicas[0]
		if dead.State != string(core.IndexUnavailable) || dead.LastErr == "" {
			t.Fatalf("shard %d dead replica state %+v, want unavailable with last-error", i, dead)
		}
	}
}

// TestReplicaSlowOneStaysExact hangs one replica of every group past
// the request timeout: the coordinator must fail over to the sibling
// and keep answers byte-identical with zero degradation notes, within
// the timeout budget.
func TestReplicaSlowOneStaysExact(t *testing.T) {
	sys := tpchSystem(t)
	release := make(chan struct{})
	defer close(release)
	var slow atomic.Bool
	cl := startReplicatedCluster(t, sys, 3, 2, replicaConfig{
		opts: shard.CoordinatorOptions{
			RequestTimeout: 150 * time.Millisecond,
			Retry:          fault.RetryPolicy{Attempts: 1},
			HedgeDisabled:  true, // isolate the failover path
		},
		wrap: func(i, ri int, h http.Handler) http.Handler {
			if ri != 0 {
				return h
			}
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if slow.Load() {
					<-release // hold until teardown: a hung, not slow, replica
					return
				}
				h.ServeHTTP(w, r)
			})
		},
	})
	runEquivalenceSuite(t, sys, cl.coord, "before slowdown")
	slow.Store(true)
	start := time.Now()
	runEquivalenceSuite(t, sys, cl.coord, "during slowdown")
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Fatalf("suite stalled %v behind hung replicas", elapsed)
	}
	if s := cl.coord.Stats(); s.Degraded != 0 {
		t.Fatalf("hung replicas counted %d degraded queries, want 0", s.Degraded)
	}
}

// TestReplicaFlapStaysExact flaps one replica per group — alternating
// hard failure and healthy service per request — which is nastier than
// a clean kill: the breaker keeps re-admitting it. Answers must stay
// byte-identical with zero degradation notes throughout.
func TestReplicaFlapStaysExact(t *testing.T) {
	sys := tpchSystem(t)
	var calls atomic.Int64
	cl := startReplicatedCluster(t, sys, 3, 2, replicaConfig{
		opts: shard.CoordinatorOptions{
			Retry: fault.RetryPolicy{Attempts: 1}, // failover, not retry, absorbs the flaps
		},
		wrap: func(i, ri int, h http.Handler) http.Handler {
			if ri != 0 {
				return h
			}
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if calls.Add(1)%2 == 1 {
					http.Error(w, "flapping replica", http.StatusInternalServerError)
					return
				}
				h.ServeHTTP(w, r)
			})
		},
	})
	for round := 0; round < 3; round++ {
		runEquivalenceSuite(t, sys, cl.coord, fmt.Sprintf("flap round %d", round))
	}
	if s := cl.coord.Stats(); s.Degraded != 0 {
		t.Fatalf("flapping replica counted %d degraded queries, want 0", s.Degraded)
	}
}

// TestGroupLossDegradesLoudly kills BOTH replicas of one group: only
// then may the answer degrade, and it must do so loudly — a note naming
// the group — with the result a subset of the single-node answer.
func TestGroupLossDegradesLoudly(t *testing.T) {
	sys := tpchSystem(t)
	cl := startReplicatedCluster(t, sys, 3, 2, replicaConfig{
		opts: shard.CoordinatorOptions{Retry: fault.RetryPolicy{Attempts: 1}},
	})
	ctx := context.Background()
	kws := []string{"john", "tv"}
	want, err := sys.QueryContext(ctx, kws, 10)
	if err != nil {
		t.Fatal(err)
	}
	cl.servers[2][0].Close()
	cl.servers[2][1].Close() // the whole group, not one process

	cctx, deg := qserve.CaptureDegradation(ctx)
	got, err := cl.coord.QueryContext(cctx, kws, 10)
	if err != nil {
		t.Fatalf("quorum held (2 of 3 groups) — the query must degrade, not fail: %v", err)
	}
	d := deg()
	if d == nil {
		t.Fatal("whole group killed but no degradation note: silent partial answer")
	}
	if len(d.Shards) != 1 || d.Shards[0] == "" {
		t.Fatalf("degradation names %v, want the one dead group", d.Shards)
	}
	if d.Count < 1 {
		t.Fatalf("degradation count %d, want ≥ 1", d.Count)
	}
	wantKeys := map[string]bool{}
	for _, r := range want {
		wantKeys[resultKey(r)] = true
	}
	for _, r := range got {
		if !wantKeys[resultKey(r)] {
			t.Fatalf("degraded answer invented result %s", resultKey(r))
		}
	}
	if got, _ := cl.coord.IndexHealthState(); got != core.IndexDegraded {
		t.Fatalf("health with one dead group (quorum held) = %v, want degraded", got)
	}
}

// TestGroupLossBelowQuorumRefuses kills every replica of two groups out
// of three: below quorum the coordinator must refuse with ErrNoQuorum —
// redundancy changes how rarely this fires, not what it means.
func TestGroupLossBelowQuorumRefuses(t *testing.T) {
	sys := tpchSystem(t)
	cl := startReplicatedCluster(t, sys, 3, 2, replicaConfig{
		opts: shard.CoordinatorOptions{Retry: fault.RetryPolicy{Attempts: 1}},
	})
	for _, i := range []int{0, 2} {
		cl.servers[i][0].Close()
		cl.servers[i][1].Close()
	}
	_, err := cl.coord.QueryContext(context.Background(), []string{"john", "tv"}, 10)
	if !errors.Is(err, shard.ErrNoQuorum) {
		t.Fatalf("1 of 3 groups alive: err = %v, want ErrNoQuorum", err)
	}
	if got, _ := cl.coord.IndexHealthState(); got != core.IndexUnavailable {
		t.Fatalf("health below quorum = %v, want unavailable", got)
	}
}

// TestHedgeFiresAndPreservesAnswer turns a primed primary slow: the
// p95-derived hedge must fire at the fast sibling, win the race, and —
// because replicas serve identical partitions — leave every answer
// byte-identical with zero degradation notes.
func TestHedgeFiresAndPreservesAnswer(t *testing.T) {
	sys := tpchSystem(t)
	var slow atomic.Bool
	cl := startReplicatedCluster(t, sys, 2, 2, replicaConfig{
		opts: shard.CoordinatorOptions{
			HedgeMinSamples: 1,
			HedgeMaxDelay:   5 * time.Millisecond,
			HedgeBudgetPct:  100, // the budget is exercised separately
			Retry:           fault.RetryPolicy{Attempts: 1},
		},
		wrap: func(i, ri int, h http.Handler) http.Handler {
			if ri != 0 {
				return h
			}
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if slow.Load() {
					time.Sleep(40 * time.Millisecond) // past any p95 the warmup recorded
				}
				h.ServeHTTP(w, r)
			})
		},
	})
	// Warmup primes replica 0's histograms while fast, keeping it the
	// preferred (proven) replica when the slowdown starts.
	runEquivalenceSuite(t, sys, cl.coord, "warmup")
	slow.Store(true)
	runEquivalenceSuite(t, sys, cl.coord, "slow primary")
	s := cl.coord.Stats()
	if s.Hedges == 0 {
		t.Fatal("slow primary past its p95 but no hedges fired")
	}
	if s.HedgeWins == 0 {
		t.Fatal("hedges fired at a fast sibling but never won")
	}
	if s.Degraded != 0 {
		t.Fatalf("hedging counted %d degraded queries, want 0", s.Degraded)
	}
}

// TestHedgeBudgetCaps drives a permanently slow primary with a 0%-ish
// budget: hedges must stay within the configured percentage of group
// requests instead of doubling cluster load.
func TestHedgeBudgetCaps(t *testing.T) {
	sys := tpchSystem(t)
	cl := startReplicatedCluster(t, sys, 2, 2, replicaConfig{
		opts: shard.CoordinatorOptions{
			HedgeMinSamples: 1,
			HedgeMaxDelay:   2 * time.Millisecond,
			HedgeBudgetPct:  1,
			Retry:           fault.RetryPolicy{Attempts: 1},
		},
		wrap: func(i, ri int, h http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				time.Sleep(8 * time.Millisecond) // everyone slow: every request hedge-eligible
				h.ServeHTTP(w, r)
			})
		},
	})
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if _, err := cl.coord.QueryContext(ctx, []string{"john", "tv"}, 5); err != nil {
			t.Fatal(err)
		}
	}
	s := cl.coord.Stats()
	if s.Hedges == 0 {
		t.Fatal("budget must admit the first hedge (grace), not zero")
	}
	// fired ≤ 1% of requests + the grace hedge.
	if limit := s.Queries*3/100 + 2; s.Hedges > limit {
		t.Fatalf("hedges %d blew the 1%% budget (limit ~%d)", s.Hedges, limit)
	}
}

// TestValidateCatchesDivergentReplicas wires a group whose two
// "replicas" serve different partitions: the connect-time CRC
// cross-check must refuse — failover and hedging are only
// byte-preserving over identical copies.
func TestValidateCatchesDivergentReplicas(t *testing.T) {
	sys := tpchSystem(t)
	master := kwindex.Build(sys.Obj)
	mkServer := func(id, n int, part *kwindex.Index) *httptest.Server {
		srv := &shard.Server{Sys: sys, Local: part, ID: id, N: n}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		return ts
	}
	const n = 2
	good0 := mkServer(0, n, shard.PartitionIndex(master, 0, n))
	good1 := mkServer(1, n, shard.PartitionIndex(master, 1, n))
	// An impostor replica for shard 0 serving shard 1's slice but
	// identifying as shard 0 — the id check passes, the CRC must not.
	impostor := mkServer(0, n, shard.PartitionIndex(master, 1, n))

	coord := shard.NewCoordinatorGroups(sys,
		[][]string{{good0.URL, impostor.URL}, {good1.URL}},
		shard.CoordinatorOptions{HealthTTL: -1, Logf: t.Logf})
	err := coord.Validate(context.Background())
	if err == nil {
		t.Fatal("Validate accepted divergent replicas within one group")
	}
	t.Logf("Validate refused: %v", err)
}
