package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the v2 fact layer: a lightweight intra-procedural
// def-use pass built once per package before the analyzers run. It
// gives every analyzer the same three primitives —
//
//   - parent links (Flow.Parent, FuncFlow.EnclosingStmt), so a check
//     can ask "is this use inside a return statement / call argument /
//     loop body" without re-walking the file,
//   - def and use sites per *types.Var (FuncFlow.DefsOf / UsesOf), in
//     source order, covering :=, =, var declarations, range bindings,
//     parameters and named results, and
//   - flow closures (ForwardVars, BackwardVars): the set of variables a
//     value reaches through chains of assignments, and the backward
//     slice of variables feeding an expression.
//
// The pass is deliberately flow-insensitive within a function (facts
// are ordered by position, and dominance is approximated by source
// order, matching the repo's straight-line commit/verify idioms) and
// purely intra-procedural; cross-function questions go through the
// CallGraph built in callgraph.go.

// Def is one definition site of a variable: an assignment, declaration,
// range binding, parameter, or named result.
type Def struct {
	Pos  token.Pos
	RHS  ast.Expr       // defining expression; nil for params/results/bare var decls
	Stmt ast.Node       // enclosing assign/decl/range statement, nil for params
	Rng  *ast.RangeStmt // non-nil when the def is a range key/value binding
}

// FuncFlow holds the def-use facts of one function body. A FuncFlow is
// built for every FuncDecl and for every function literal that is not
// nested inside one (package-level var initializers); literals nested
// in a declared function share their enclosing FuncFlow, matching Go's
// closure semantics.
type FuncFlow struct {
	Decl *ast.FuncDecl // nil for a package-level function literal
	Lit  *ast.FuncLit  // set when Decl is nil
	Body *ast.BlockStmt

	flow     *Flow
	defs     map[*types.Var][]Def
	uses     map[*types.Var][]*ast.Ident
	identVar map[*ast.Ident]*types.Var // reverse index over use sites
}

// Flow is the package-wide fact set: one FuncFlow per function plus a
// parent map spanning every file of the package.
type Flow struct {
	Funcs []*FuncFlow

	parent map[ast.Node]ast.Node
	funcOf map[ast.Node]*FuncFlow
}

// buildFlow walks the package once, recording parent links and per-
// function def/use facts.
func buildFlow(files []*ast.File, info *types.Info) *Flow {
	fl := &Flow{
		parent: make(map[ast.Node]ast.Node),
		funcOf: make(map[ast.Node]*FuncFlow),
	}
	for _, file := range files {
		// Parent links for the whole file, including package-level decls.
		// The file node itself is the root and must stay parentless, or
		// every walk up the chain would cycle on parent[file] == file.
		stack := []ast.Node{nil}
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if top := stack[len(stack)-1]; top != nil {
				fl.parent[n] = top
			}
			stack = append(stack, n)
			return true
		})
	}
	for _, file := range files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fl.addFunc(&FuncFlow{Decl: fd, Body: fd.Body}, info)
			}
		}
		// Package-level function literals (var handlers = func() {...})
		// get their own FuncFlow; literals inside FuncDecls are already
		// covered by their enclosing function's walk.
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.FuncLit)
			if !ok {
				return true
			}
			if fl.enclosingFuncDecl(lit) != nil {
				return false
			}
			fl.addFunc(&FuncFlow{Lit: lit, Body: lit.Body}, info)
			return false
		})
	}
	return fl
}

func (fl *Flow) enclosingFuncDecl(n ast.Node) *ast.FuncDecl {
	for p := fl.parent[n]; p != nil; p = fl.parent[p] {
		if fd, ok := p.(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}

func (fl *Flow) addFunc(ff *FuncFlow, info *types.Info) {
	ff.flow = fl
	ff.defs = make(map[*types.Var][]Def)
	ff.uses = make(map[*types.Var][]*ast.Ident)
	ff.identVar = make(map[*ast.Ident]*types.Var)
	if ff.Decl != nil && ff.Decl.Type.Params != nil {
		for _, field := range ff.Decl.Type.Params.List {
			for _, name := range field.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					ff.defs[v] = append(ff.defs[v], Def{Pos: name.Pos()})
				}
			}
		}
	}
	if ff.Decl != nil && ff.Decl.Type.Results != nil {
		for _, field := range ff.Decl.Type.Results.List {
			for _, name := range field.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					ff.defs[v] = append(ff.defs[v], Def{Pos: name.Pos()})
				}
			}
		}
	}
	record := func(id *ast.Ident, def Def) {
		v := varObj(info, id)
		if v == nil {
			return
		}
		def.Pos = id.Pos()
		ff.defs[v] = append(ff.defs[v], def)
		ff.identVar[id] = v // defs resolve through VarOf too
	}
	ast.Inspect(ff.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					rhs = n.Rhs[0] // tuple assignment: every lhs comes from the call
				}
				record(id, Def{RHS: rhs, Stmt: n})
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				var rhs ast.Expr
				if i < len(n.Values) {
					rhs = n.Values[i]
				}
				record(name, Def{RHS: rhs, Stmt: n})
			}
		case *ast.RangeStmt:
			for _, e := range [2]ast.Expr{n.Key, n.Value} {
				if e == nil {
					continue
				}
				if id, ok := ast.Unparen(e).(*ast.Ident); ok {
					record(id, Def{RHS: n.X, Stmt: n, Rng: n})
				}
			}
		case *ast.IncDecStmt:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
				record(id, Def{RHS: n.X, Stmt: n})
			}
		case *ast.Ident:
			if v := varObj(info, n); v != nil {
				if _, isDef := info.Defs[n]; !isDef {
					ff.uses[v] = append(ff.uses[v], n)
					ff.identVar[n] = v
				}
			}
			ff.flow.funcOf[n] = ff
		}
		return true
	})
	fl.Funcs = append(fl.Funcs, ff)
}

// varObj resolves an identifier to the *types.Var it denotes (use or
// def), or nil.
func varObj(info *types.Info, id *ast.Ident) *types.Var {
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v
	}
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	return nil
}

// Parent returns the syntactic parent of n within the package, or nil.
func (fl *Flow) Parent(n ast.Node) ast.Node { return fl.parent[n] }

// DefsOf returns v's definition sites in this function, in source
// order.
func (ff *FuncFlow) DefsOf(v *types.Var) []Def { return ff.defs[v] }

// UsesOf returns v's use sites (reads) in this function, in source
// order.
func (ff *FuncFlow) UsesOf(v *types.Var) []*ast.Ident { return ff.uses[v] }

// EnclosingStmt walks parent links from n to the nearest enclosing
// statement, or nil.
func (ff *FuncFlow) EnclosingStmt(n ast.Node) ast.Stmt {
	for p := ast.Node(n); p != nil; p = ff.flow.parent[p] {
		if s, ok := p.(ast.Stmt); ok {
			return s
		}
	}
	return nil
}

// EnclosingLoop returns the nearest for/range statement enclosing n
// within this function, or nil. The search stops at the function
// boundary but deliberately not at function literals: a statement in a
// closure created inside a loop still executes per-iteration in the
// cases this repo cares about (goroutine bodies).
func (ff *FuncFlow) EnclosingLoop(n ast.Node) ast.Stmt {
	for p := ff.flow.parent[n]; p != nil; p = ff.flow.parent[p] {
		switch s := p.(type) {
		case *ast.ForStmt:
			return s
		case *ast.RangeStmt:
			return s
		case *ast.FuncDecl:
			return nil
		}
		if p == ff.Body {
			return nil
		}
	}
	return nil
}

// InFuncLit reports whether n sits inside a function literal nested
// below this function's body (i.e. runs on a different activation).
func (ff *FuncFlow) InFuncLit(n ast.Node) bool {
	for p := ff.flow.parent[n]; p != nil; p = ff.flow.parent[p] {
		if _, ok := p.(*ast.FuncLit); ok && p != ff.Lit {
			return true
		}
		if p == ff.Body {
			return false
		}
	}
	return false
}

// HasAncestor reports whether any strict ancestor of n within the
// package satisfies pred.
func (fl *Flow) HasAncestor(n ast.Node, pred func(ast.Node) bool) bool {
	for p := fl.parent[n]; p != nil; p = fl.parent[p] {
		if pred(p) {
			return true
		}
	}
	return false
}

// ForwardVars computes the forward closure of seed: every variable
// reachable from a seed variable through chains of assignments
// (w := v, w = f(v), w = v.Field, ...). The result includes the seeds.
func (ff *FuncFlow) ForwardVars(seed map[*types.Var]bool) map[*types.Var]bool {
	out := make(map[*types.Var]bool, len(seed))
	for v := range seed {
		out[v] = true
	}
	for changed := true; changed; {
		changed = false
		for v, defs := range ff.defs {
			if out[v] {
				continue
			}
			for _, d := range defs {
				if d.RHS != nil && exprUsesAny(ff, d.RHS, out) {
					out[v] = true
					changed = true
					break
				}
			}
		}
	}
	return out
}

// BackwardVars computes the backward slice of expr: the variables it
// reads, plus (transitively) the variables feeding their definitions.
func (ff *FuncFlow) BackwardVars(expr ast.Expr) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	collectVars(ff, expr, out)
	for changed := true; changed; {
		changed = false
		for v := range out {
			for _, d := range ff.defs[v] {
				if d.RHS == nil {
					continue
				}
				before := len(out)
				collectVars(ff, d.RHS, out)
				if len(out) != before {
					changed = true
				}
			}
		}
	}
	return out
}

func collectVars(ff *FuncFlow, e ast.Expr, out map[*types.Var]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v := ff.identVar[id]; v != nil {
				out[v] = true
			}
		}
		return true
	})
}

func exprUsesAny(ff *FuncFlow, e ast.Expr, vars map[*types.Var]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if v := ff.identVar[id]; v != nil && vars[v] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// VarOf resolves an expression to the variable it names, unwrapping
// parentheses, or nil for anything more complex than an identifier.
func (ff *FuncFlow) VarOf(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if v := ff.identVar[id]; v != nil {
		return v
	}
	return nil
}
