// Command xkbench regenerates the evaluation figures of "Keyword
// Proximity Search on XML Graphs" (ICDE 2003, §7): Figure 15(a) top-K
// per decomposition, Figure 15(b) all-results per decomposition,
// Figure 16(a) optimized-vs-naive execution, and Figure 16(b)
// presentation-graph expansion. Output is one text table per figure;
// cost is reported as wall time and simulated page reads.
//
// Usage:
//
//	xkbench [-fig 15a|15b|16a|16b|all] [-quick] [-queries N] [-seed N]
//	        [-papers N] [-authors N] [-cites N]
//	        [-disk-index] [-index-cache-bytes N]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/diskindex"
	"repro/internal/experiments"
)

func main() {
	var (
		figFlag = flag.String("fig", "all", "figure to regenerate: 15a, 15b, 16a, 16b, z, space, stages, baseline or all")
		quick   = flag.Bool("quick", false, "use the small test-scale configuration")
		queries = flag.Int("queries", 0, "override the number of query pairs to average over")
		seed    = flag.Int64("seed", 0, "override the workload seed")
		papers  = flag.Int("papers", 0, "override papers per conference-year")
		authors = flag.Int("authors", 0, "override the number of authors")
		cites   = flag.Int("cites", 0, "override the average citations per paper")

		diskIdx  = flag.Bool("disk-index", false, "serve the master index from a paged .xki file through a buffer pool instead of RAM")
		idxCache = flag.Int64("index-cache-bytes", diskindex.DefaultCacheBytes, "buffer-pool budget for -disk-index")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	if *queries > 0 {
		cfg.Queries = *queries
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *papers > 0 {
		cfg.DBLP.PapersPerYear = *papers
	}
	if *authors > 0 {
		cfg.DBLP.Authors = *authors
	}
	if *cites > 0 {
		cfg.DBLP.AvgCitations = *cites
	}
	cfg.DiskIndex = *diskIdx
	cfg.IndexCacheBytes = *idxCache

	fmt.Printf("# xkbench: DBLP-like dataset (%d conf × %d years × %d papers, %d authors, avg %d citations), Z=%d B=%d, %d query pairs\n",
		cfg.DBLP.Conferences, cfg.DBLP.YearsPerConf, cfg.DBLP.PapersPerYear,
		cfg.DBLP.Authors, cfg.DBLP.AvgCitations, cfg.Z, cfg.B, cfg.Queries)
	start := time.Now()
	w, err := experiments.NewWorkload(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("# dataset: %d nodes, %d target objects, %d object edges (generated in %v)\n",
		w.DS.Data.NumNodes(), w.DS.Obj.NumObjects(), w.DS.Obj.NumEdges(), time.Since(start).Round(time.Millisecond))
	if cfg.DiskIndex {
		fmt.Printf("# master index: disk-backed, buffer pool %d bytes\n", *idxCache)
	}
	fmt.Println()

	run := func(id string, fn func(*experiments.Workload) (experiments.Figure, error)) {
		if *figFlag != "all" && *figFlag != id {
			return
		}
		t0 := time.Now()
		fig, err := fn(w)
		if err != nil {
			fatal(err)
		}
		fmt.Println(fig.Format())
		fmt.Printf("# figure %s computed in %v\n\n", id, time.Since(t0).Round(time.Millisecond))
	}
	if *figFlag == "space" || *figFlag == "all" {
		report, err := experiments.SpaceComparison(w)
		if err != nil {
			fatal(err)
		}
		fmt.Println(report)
	}
	run("15a", experiments.Fig15a)
	run("15b", experiments.Fig15b)
	run("16a", experiments.Fig16a)
	run("16b", experiments.Fig16b)
	if *figFlag == "z" || *figFlag == "all" {
		t0 := time.Now()
		fig, err := experiments.FigZ(w, []int{5, 6, 7, 8})
		if err != nil {
			fatal(err)
		}
		fmt.Println(fig.Format())
		fmt.Printf("# figure z computed in %v\n\n", time.Since(t0).Round(time.Millisecond))
	}
	if *figFlag == "stages" || *figFlag == "all" {
		t0 := time.Now()
		tbl, err := experiments.StageBreakdown(w, 10)
		if err != nil {
			fatal(err)
		}
		fmt.Println(tbl.Format())
		fmt.Printf("# stage breakdown computed in %v\n\n", time.Since(t0).Round(time.Millisecond))
	}
	if *figFlag == "baseline" || *figFlag == "all" {
		t0 := time.Now()
		bcfg := cfg
		bcfg.DBLP.AvgCitations = 10 // keep scale-4 affordable
		fig, err := experiments.FigBaseline(bcfg, []int{1, 2, 4})
		if err != nil {
			fatal(err)
		}
		fmt.Println(fig.Format())
		fmt.Printf("# figure baseline computed in %v\n\n", time.Since(t0).Round(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xkbench:", err)
	os.Exit(1)
}
