package decomp_test

import (
	"testing"

	"repro/internal/cn"
	"repro/internal/decomp"
	"repro/internal/tss"
)

// coverValid checks a Cover result: every network edge is covered by
// some piece, every piece's occurrence path walks existing network
// edges, and the path's step sequence matches the piece's fragment in
// the claimed orientation.
func coverValid(t *testing.T, tg *tss.Graph, net *cn.TSSNetwork, pieces []decomp.Piece) {
	t.Helper()
	type pair struct{ a, b int }
	covered := make(map[pair]bool)
	edgeBetween := func(a, b int) (cn.TSSEdgeRef, bool) {
		for _, e := range net.Edges {
			if (e.From == a && e.To == b) || (e.From == b && e.To == a) {
				return e, true
			}
		}
		return cn.TSSEdgeRef{}, false
	}
	for _, p := range pieces {
		steps := p.Frag.Steps()
		if len(p.Occs) != len(steps)+1 {
			t.Fatalf("piece %s has %d occs for %d steps", p.Frag.Key(), len(p.Occs), len(steps))
		}
		for i := 0; i+1 < len(p.Occs); i++ {
			e, ok := edgeBetween(p.Occs[i], p.Occs[i+1])
			if !ok {
				t.Fatalf("piece %s walks a non-edge %d-%d", p.Frag.Key(), p.Occs[i], p.Occs[i+1])
			}
			if e.EdgeID != steps[i].EdgeID {
				t.Fatalf("piece %s step %d uses edge %d, network has %d", p.Frag.Key(), i, steps[i].EdgeID, e.EdgeID)
			}
			// Direction consistency: a Fwd step must walk the edge in
			// its network direction.
			fwdWalk := e.From == p.Occs[i] && e.To == p.Occs[i+1]
			if (steps[i].Dir == decomp.Fwd) != fwdWalk {
				t.Fatalf("piece %s step %d direction mismatch", p.Frag.Key(), i)
			}
			a, b := p.Occs[i], p.Occs[i+1]
			if a > b {
				a, b = b, a
			}
			covered[pair{a, b}] = true
		}
	}
	for _, e := range net.Edges {
		a, b := e.From, e.To
		if a > b {
			a, b = b, a
		}
		if !covered[pair{a, b}] {
			t.Fatalf("edge %d-%d uncovered", e.From, e.To)
		}
	}
}

// Property: for every shape up to M, the cover returned against the
// XKeyword decomposition is structurally valid and within the join
// budget; against the minimal decomposition it is valid with size-1
// pieces only.
func TestCoverValidity(t *testing.T) {
	for _, build := range []func(*testing.T) *tss.Graph{tpchGraph, dblpGraph} {
		tg := build(t)
		const m, b = 5, 2
		xk, err := decomp.XKeyword(tg, m, b)
		if err != nil {
			t.Fatal(err)
		}
		xkCov := decomp.NewCoverer(tg, xk.Fragments)
		minimal := decomp.Minimal(tg)
		minCov := decomp.NewCoverer(tg, minimal.Fragments)
		shapes := decomp.EnumerateShapes(tg, m)
		for _, shape := range shapes {
			pieces, ok := xkCov.Cover(shape, b)
			if !ok {
				t.Fatalf("XKeyword cannot cover %s within %d joins", shape, b)
			}
			if len(pieces)-1 > b {
				t.Fatalf("cover of %s uses %d joins", shape, len(pieces)-1)
			}
			coverValid(t, tg, shape, pieces)

			mp, ok := minCov.Cover(shape, -1)
			if !ok {
				t.Fatalf("minimal cannot cover %s", shape)
			}
			if len(mp) != shape.Size() {
				t.Fatalf("minimal cover of %s uses %d pieces, want %d", shape, len(mp), shape.Size())
			}
			coverValid(t, tg, shape, mp)
			for _, p := range mp {
				if p.Frag.Size() != 1 {
					t.Fatalf("minimal cover used fragment of size %d", p.Frag.Size())
				}
			}
		}
		t.Logf("validated covers for %d shapes", len(shapes))
	}
}

func TestCoverEmptyAndUncoverable(t *testing.T) {
	tg := tpchGraph(t)
	empty := &cn.TSSNetwork{Occs: []cn.TSSOcc{{Segment: "part"}}}
	if ps, ok := decomp.Cover(tg, empty, nil, 0); !ok || len(ps) != 0 {
		t.Fatal("size-0 network must be trivially covered")
	}
	shape := ctssn4(t, tg)
	if _, ok := decomp.Cover(tg, shape, nil, -1); ok {
		t.Fatal("covered with no fragments")
	}
}
