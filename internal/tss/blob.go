package tss

import (
	"encoding/xml"
	"fmt"
	"sort"
	"strings"

	"repro/internal/xmlgraph"
)

// BlobXML serializes a target object as a self-contained XML fragment:
// the head element with its intra-segment member subtree. The paper
// stores these BLOBs at load time so a target object can be returned
// instantly given its id (§4, load stage item 3).
func (og *ObjectGraph) BlobXML(id int64) ([]byte, error) {
	to := og.tos[id]
	if to == nil {
		return nil, fmt.Errorf("tss: unknown target object %d", id)
	}
	member := make(map[xmlgraph.NodeID]bool, len(to.Nodes))
	for _, n := range to.Nodes {
		member[n] = true
	}
	var sb strings.Builder
	var render func(n xmlgraph.NodeID)
	render = func(n xmlgraph.NodeID) {
		node := og.Data.Node(n)
		fmt.Fprintf(&sb, "<%s id=\"%d\">", node.Label, n)
		if node.Value != "" {
			if err := xml.EscapeText(&sb, []byte(node.Value)); err != nil {
				// strings.Builder never errors; keep vet quiet.
				panic(err)
			}
		}
		kids := og.Data.ContainmentChildren(n)
		sort.Slice(kids, func(i, j int) bool { return kids[i] < kids[j] })
		for _, k := range kids {
			if member[k] {
				render(k)
			}
		}
		fmt.Fprintf(&sb, "</%s>", node.Label)
	}
	render(xmlgraph.NodeID(to.ID))
	return []byte(sb.String()), nil
}

// Summary returns a short human-readable rendering of a target object:
// its head label plus the leaf member fields, e.g.
// "part[key=1005 name=TV]". Used by result presentation.
func (og *ObjectGraph) Summary(id int64) string {
	to := og.tos[id]
	if to == nil {
		return fmt.Sprintf("TO(%d)?", id)
	}
	head := og.Data.Node(xmlgraph.NodeID(to.ID))
	// Non-XML sources can leave head labels empty; the segment name is
	// the generic fallback — "#42" with no label is not a summary.
	label := head.Label
	if label == "" {
		label = to.Segment
	}
	var fields []string
	if head.Value != "" {
		fields = append(fields, head.Value)
	}
	rest := append([]xmlgraph.NodeID(nil), to.Nodes[1:]...)
	sort.Slice(rest, func(i, j int) bool { return rest[i] < rest[j] })
	for _, n := range rest {
		node := og.Data.Node(n)
		if node.Value != "" {
			fields = append(fields, fmt.Sprintf("%s=%s", node.Label, node.Value))
		}
	}
	if len(fields) == 0 {
		return fmt.Sprintf("%s#%d", label, to.ID)
	}
	return fmt.Sprintf("%s[%s]", label, strings.Join(fields, " "))
}
