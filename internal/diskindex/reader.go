package diskindex

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"

	"repro/internal/atomicio"
	"repro/internal/fault"
	"repro/internal/kwindex"
	"repro/internal/xmlgraph"
)

// Options configure a Reader.
type Options struct {
	// CacheBytes is the buffer-pool budget over posting blocks
	// (default DefaultCacheBytes).
	CacheBytes int64
	// PageSize is the buffer-pool page size (default: the writer's hint
	// in the file header, else DefaultPageSize).
	PageSize int
	// Shards is the pool's shard count (default 8).
	Shards int
	// ListCacheBytes budgets the decoded posting-list cache layered above
	// the page pool; 0 defaults to CacheBytes, negative disables it.
	// Decoded lists run roughly ten times their encoded size, so warm
	// lookups need this to cover the hot terms.
	ListCacheBytes int64
	// Retry bounds how page reads retry transient ReadAt failures. The
	// zero value means fault.DefaultRetry; set Attempts to 1 to disable
	// retrying.
	Retry fault.RetryPolicy
	// WrapReaderAt, when set, wraps the file handle before any byte is
	// read — the fault-injection seam the chaos suite uses to interpose
	// errors, latency and bit flips between the reader and the disk.
	WrapReaderAt func(io.ReaderAt) io.ReaderAt
}

// Stats is a snapshot of a Reader's cache counters.
type Stats struct {
	// PageHits and PageMisses count buffer-pool probes; a miss is one
	// page-sized ReadAt.
	PageHits, PageMisses int64
	// ListHits and ListMisses count decoded posting-list cache probes.
	ListHits, ListMisses int64
	// BytesRead is the total bytes fetched from disk.
	BytesRead int64
	// RetriedReads counts page reads that succeeded only after at least
	// one retry — transient faults the retry policy absorbed.
	RetriedReads int64
	// PagesResident is the current buffer-pool occupancy in pages.
	PagesResident int
}

// dictEntry locates one term's posting block and carries its checksum.
type dictEntry struct {
	count int
	off   int64
	len   int64
	crc   uint32 // CRC32 of the encoded block, verified on every read
}

// Reader serves master-index lookups from an .xki file. It implements
// kwindex.Source (= core.PostingSource) and is safe for concurrent use:
// the underlying ReadAt, the sharded buffer pool and the list cache all
// tolerate concurrent readers.
type Reader struct {
	f    *os.File
	path string
	hdr  header

	schema  []string // schema-node table, indexed by id
	terms   []string // sorted tokens
	entries []dictEntry

	pool  *pagePool
	lists *listCache

	mu  sync.Mutex
	err error // first background I/O or decode failure
}

// Open maps the index file at path. The dictionary and schema table are
// loaded and checksummed eagerly; posting blocks are paged in on demand
// through the buffer pool.
func Open(path string, opts Options) (*Reader, error) {
	if opts.CacheBytes <= 0 {
		opts.CacheBytes = DefaultCacheBytes
	}
	if opts.Shards == 0 {
		opts.Shards = 8
	}
	if opts.ListCacheBytes == 0 {
		opts.ListCacheBytes = opts.CacheBytes
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r, err := open(f, path, opts)
	if err != nil {
		f.Close() //xk:ignore errdrop best-effort close on the error path; the open error is what matters
		return nil, err
	}
	return r, nil
}

func open(f *os.File, path string, opts Options) (*Reader, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	var src io.ReaderAt = f
	if opts.WrapReaderAt != nil {
		src = opts.WrapReaderAt(src)
	}
	size := st.Size()
	hb := make([]byte, headerSize)
	if _, err := io.ReadFull(io.NewSectionReader(src, 0, size), hb); err != nil {
		return nil, fmt.Errorf("diskindex: %s: reading header: %w", path, err)
	}
	r := &Reader{f: f, path: path}
	if err := r.hdr.unmarshal(hb); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	h := &r.hdr

	// Section layout must tile the file exactly; anything else means a
	// truncated or doctored file.
	if h.postOff != headerSize ||
		h.schemaOff != h.postOff+h.postLen ||
		h.dictOff != h.schemaOff+h.schemaLen ||
		h.dictOff+h.dictLen != uint64(size) {
		return nil, fmt.Errorf("diskindex: %s: section layout inconsistent with file size %d (truncated?)", path, size)
	}

	meta := make([]byte, h.schemaLen+h.dictLen)
	if _, err := src.ReadAt(meta, int64(h.schemaOff)); err != nil {
		return nil, fmt.Errorf("diskindex: %s: reading metadata: %w", path, err)
	}
	if got := crc32.ChecksumIEEE(meta); got != h.metaCRC {
		return nil, fmt.Errorf("diskindex: %s: metadata checksum mismatch (file corrupt)", path)
	}
	if err := r.parseSchema(meta[:h.schemaLen]); err != nil {
		return nil, fmt.Errorf("diskindex: %s: %w", path, err)
	}
	if err := r.parseDict(meta[h.schemaLen:]); err != nil {
		return nil, fmt.Errorf("diskindex: %s: %w", path, err)
	}

	pageSize := opts.PageSize
	if pageSize == 0 {
		pageSize = int(h.pageSize)
	}
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	r.pool = newPagePool(src, int64(h.postOff), int64(h.postLen), pageSize, opts.CacheBytes, opts.Shards, opts.Retry)
	if opts.ListCacheBytes > 0 {
		r.lists = newListCache(opts.ListCacheBytes, 8)
	}
	return r, nil
}

func (r *Reader) parseSchema(b []byte) error {
	n, i, err := uvarint(b, 0)
	if err != nil {
		return err
	}
	if n > uint64(len(b)) { // each entry takes ≥ 1 byte
		return fmt.Errorf("schema table claims %d entries in %d bytes", n, len(b))
	}
	r.schema = make([]string, 0, n)
	for k := uint64(0); k < n; k++ {
		var l uint64
		if l, i, err = uvarint(b, i); err != nil {
			return err
		}
		if uint64(len(b)-i) < l {
			return fmt.Errorf("schema name %d overruns table", k)
		}
		r.schema = append(r.schema, string(b[i:i+int(l)]))
		i += int(l)
	}
	if i != len(b) {
		return fmt.Errorf("%d trailing bytes after schema table", len(b)-i)
	}
	return nil
}

func (r *Reader) parseDict(b []byte) error {
	n := r.hdr.numTerms
	if n > uint64(len(b)) { // each entry takes ≥ 4 bytes
		return fmt.Errorf("dictionary claims %d terms in %d bytes", n, len(b))
	}
	r.terms = make([]string, 0, n)
	r.entries = make([]dictEntry, 0, n)
	var postings, i int
	for k := uint64(0); k < n; k++ {
		l, j, err := uvarint(b, i)
		if err != nil {
			return err
		}
		if uint64(len(b)-j) < l {
			return fmt.Errorf("term %d overruns dictionary", k)
		}
		term := string(b[j : j+int(l)])
		j += int(l)
		var count, off, blen, crc uint64
		if count, j, err = uvarint(b, j); err != nil {
			return err
		}
		if off, j, err = uvarint(b, j); err != nil {
			return err
		}
		if blen, j, err = uvarint(b, j); err != nil {
			return err
		}
		if crc, j, err = uvarint(b, j); err != nil {
			return err
		}
		if crc > 0xFFFFFFFF {
			return fmt.Errorf("term %q block CRC %#x exceeds 32 bits", term, crc)
		}
		i = j
		if len(r.terms) > 0 && r.terms[len(r.terms)-1] >= term {
			return fmt.Errorf("dictionary terms not strictly sorted at %q", term)
		}
		if off+blen < off || off+blen > r.hdr.postLen {
			return fmt.Errorf("term %q posting block [%d,%d) outside region of %d bytes", term, off, off+blen, r.hdr.postLen)
		}
		// Each posting is at least three 1-byte varints.
		if count*3 > blen {
			return fmt.Errorf("term %q claims %d postings in %d bytes", term, count, blen)
		}
		r.terms = append(r.terms, term)
		r.entries = append(r.entries, dictEntry{count: int(count), off: int64(off), len: int64(blen), crc: uint32(crc)})
		postings += int(count)
	}
	if i != len(b) {
		return fmt.Errorf("%d trailing bytes after dictionary", len(b)-i)
	}
	if uint64(postings) != r.hdr.numPostings {
		return fmt.Errorf("dictionary holds %d postings, header says %d", postings, r.hdr.numPostings)
	}
	return nil
}

// Close releases the underlying file. Lookups that subsequently miss
// the caches fail softly (empty results, Err set).
func (r *Reader) Close() error {
	return r.f.Close()
}

// Err returns the first background failure a lookup hit (I/O error,
// malformed posting block), if any. Lookup methods cannot return errors
// — they implement the in-memory index's interface — so failures surface
// here and as empty results.
func (r *Reader) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

func (r *Reader) fail(err error) {
	r.mu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.mu.Unlock()
}

// postingsOf returns the decoded posting list of one exact token.
func (r *Reader) postingsOf(token string) []kwindex.Posting {
	if r.lists != nil {
		if ps, ok := r.lists.get(token); ok {
			return ps
		}
	}
	i := sort.SearchStrings(r.terms, token)
	if i == len(r.terms) || r.terms[i] != token {
		return nil
	}
	e := r.entries[i]
	raw, err := r.pool.readRange(e.off, e.len)
	if err != nil {
		r.fail(err)
		return nil
	}
	// Verify before decode: the posting region is not covered by Open's
	// metadata checksum, so this is the only thing standing between a bit
	// flip on disk and a silently wrong answer.
	if got := crc32.ChecksumIEEE(raw); got != e.crc {
		r.fail(fmt.Errorf("%w: %s: term %q posting block checksum %#x, want %#x", ErrCorrupt, r.path, token, got, e.crc))
		return nil
	}
	ps, err := decodePostings(raw, e.count, r.schema)
	if err != nil {
		r.fail(fmt.Errorf("%w: %s: term %q: %w", ErrCorrupt, r.path, token, err))
		return nil
	}
	if r.lists != nil {
		r.lists.put(token, ps)
	}
	return ps
}

func decodePostings(b []byte, count int, schema []string) ([]kwindex.Posting, error) {
	ps := make([]kwindex.Posting, 0, count)
	var to, node int64
	i := 0
	for k := 0; k < count; k++ {
		dTO, i2, err := uvarint(b, i)
		if err != nil {
			return nil, err
		}
		dNode, i3, err := varint(b, i2)
		if err != nil {
			return nil, err
		}
		sid, i4, err := uvarint(b, i3)
		if err != nil {
			return nil, err
		}
		i = i4
		to += int64(dTO)
		node += dNode
		if sid >= uint64(len(schema)) {
			return nil, fmt.Errorf("schema id %d out of range", sid)
		}
		ps = append(ps, kwindex.Posting{TO: to, Node: xmlgraph.NodeID(node), SchemaNode: schema[sid]})
	}
	if i != len(b) {
		return nil, fmt.Errorf("%d trailing bytes in posting block", len(b)-i)
	}
	return ps, nil
}

// ContainingList returns the containing list L(k) of keyword k — the
// same tokenization and multi-token intersection semantics as the
// in-memory index. The returned slice must not be modified.
func (r *Reader) ContainingList(k string) []kwindex.Posting {
	toks := kwindex.Tokenize(k)
	switch len(toks) {
	case 0:
		return nil
	case 1:
		return r.postingsOf(toks[0])
	}
	lists := make([][]kwindex.Posting, len(toks))
	for i, tok := range toks {
		lists[i] = r.postingsOf(tok)
	}
	return kwindex.Intersect(lists)
}

// SchemaNodes returns the distinct schema nodes whose extensions contain
// keyword k, sorted.
func (r *Reader) SchemaNodes(k string) []string {
	return kwindex.DistinctSchemaNodes(r.ContainingList(k))
}

// TOSet returns the target objects containing keyword k, restricted to
// postings on the given schema node ("" for any).
func (r *Reader) TOSet(k, schemaNode string) map[int64]bool {
	return kwindex.TOSetFromList(r.ContainingList(k), schemaNode)
}

// NumPostings returns the total number of postings in the index.
func (r *Reader) NumPostings() int { return int(r.hdr.numPostings) }

// NumKeywords returns the number of distinct indexed tokens.
func (r *Reader) NumKeywords() int { return int(r.hdr.numTerms) }

// Terms returns the sorted indexed tokens. The slice is shared and must
// not be modified.
func (r *Reader) Terms() []string { return r.terms }

// Path returns the file the reader serves from.
func (r *Reader) Path() string { return r.path }

// MetaCRC returns the file's metadata checksum — the generation
// fingerprint CreateCRC reported when the file was written. persist
// compares it against the snapshot's recorded value to detect a sidecar
// that does not belong to the snapshot.
func (r *Reader) MetaCRC() uint32 { return r.hdr.metaCRC }

// Quarantine closes the reader and moves its file aside to
// path + atomicio.CorruptSuffix, freeing the path for a rebuilt index
// while preserving the corrupt bytes for forensics. It returns the
// quarantined name.
func (r *Reader) Quarantine() (string, error) {
	_ = r.f.Close() //xk:ignore errdrop the file is being quarantined; a close error cannot make it worse
	return atomicio.Quarantine(r.path)
}

// Stats snapshots the cache counters.
func (r *Reader) Stats() Stats {
	s := Stats{
		PageHits:      r.pool.hits.Load(),
		PageMisses:    r.pool.misses.Load(),
		BytesRead:     r.pool.bytesRead.Load(),
		RetriedReads:  r.pool.retries.Load(),
		PagesResident: r.pool.resident(),
	}
	if r.lists != nil {
		s.ListHits = r.lists.hits.Load()
		s.ListMisses = r.lists.misses.Load()
	}
	return s
}

var _ kwindex.Source = (*Reader)(nil)
