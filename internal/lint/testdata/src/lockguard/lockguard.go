// Package lockguard seeds violations for the lockguard analyzer:
// guarded-field accesses without the lock, and Lock/Unlock pairs broken
// by early returns.
package lockguard

import "sync"

type box struct {
	mu sync.Mutex
	n  int            // guarded by mu
	m  map[string]int // guarded by mu
}

func newBox() *box {
	b := &box{m: make(map[string]int)}
	b.n = 1 // ok: constructors may initialize before the value is shared
	return b
}

func (b *box) good() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

func (b *box) bad() int {
	return b.n // violation: read without holding mu
}

func (b *box) leaky() {
	b.mu.Lock()
	b.n++
	if b.n > 3 {
		return // violation: returns with mu held
	}
	b.mu.Unlock()
}

func (b *box) sizeLocked() int { return len(b.m) } // ok: ...Locked convention

func (b *box) snapshot() map[string]int {
	//xk:ignore lockguard only called from the shutdown path after Stop
	return b.m // suppressed
}
