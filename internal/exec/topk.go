package exec

import (
	"sort"
	"sync"

	"repro/internal/optimizer"
)

// TopKOptions configure the thread-pool top-k evaluation of §6.
type TopKOptions struct {
	K        int
	Workers  int // pool size; default 4
	Strategy Strategy
}

// Planned pairs a plan with the CN it came from, for bookkeeping.
type Planned struct {
	Plan *optimizer.Plan
}

// TopKPlans evaluates the plans (which must be sorted by ascending
// score, as the CN generator emits them) with a pool of workers, one
// plan per worker starting from the smallest networks, and stops once K
// results have been produced in total. Results are returned sorted by
// score.
//
// Because smaller networks need less execution time and produce
// higher-ranked results, assigning threads smallest-first yields the
// paper's fast first-response behaviour (§6).
func TopKPlans(ex *Executor, plans []Planned, opts TopKOptions) []Result {
	if opts.K <= 0 {
		return nil
	}
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	var (
		mu      sync.Mutex
		results []Result
		done    bool
	)
	collect := func(r Result) bool {
		mu.Lock()
		defer mu.Unlock()
		if done {
			return false
		}
		results = append(results, r)
		if len(results) >= opts.K {
			done = true
			return false
		}
		return true
	}
	next := make(chan Planned)
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range next {
				mu.Lock()
				stop := done
				mu.Unlock()
				if stop {
					continue // drain
				}
				_ = ex.Run(p.Plan, opts.Strategy, collect)
			}
		}()
	}
	for _, p := range plans {
		next <- p
	}
	close(next)
	wg.Wait()
	sort.SliceStable(results, func(i, j int) bool { return results[i].Score < results[j].Score })
	if len(results) > opts.K {
		results = results[:opts.K]
	}
	return results
}
