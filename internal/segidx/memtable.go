package segidx

import (
	"sort"
	"sync"

	"repro/internal/kwindex"
)

// memDoc is one live document in the memtable together with its derived
// postings, kept so a replacement or delete can unindex it exactly.
type memDoc struct {
	doc    Document
	tokens []string // distinct tokens this doc contributed, for unindexing
}

// memtable is the mutable in-memory segment: the newest layer of the
// store. It absorbs upserts and deletes and answers token lookups until
// it is sealed and flushed to an immutable on-disk segment. Safe for
// concurrent use.
type memtable struct {
	mu    sync.RWMutex
	docs  map[int64]*memDoc                      // guarded by mu — live documents by TO
	tombs map[int64]bool                         // guarded by mu — deleted TOs masking older layers
	inv   map[string]map[int64][]kwindex.Posting // guarded by mu — token → TO → postings
	bytes int64                                  // guarded by mu — approximate footprint
	ops   int                                    // guarded by mu — applied operations (for stats)
	posts int                                    // guarded by mu — live posting count
}

func newMemtable() *memtable {
	return &memtable{
		docs:  make(map[int64]*memDoc),
		tombs: make(map[int64]bool),
		inv:   make(map[string]map[int64][]kwindex.Posting),
	}
}

// apply absorbs one acknowledged batch.
func (m *memtable) apply(batch Batch) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, op := range batch {
		if op.Doc != nil {
			m.addLocked(*op.Doc)
		} else {
			m.deleteLocked(op.Delete)
		}
		m.ops++
	}
}

func (m *memtable) addLocked(d Document) {
	m.unindexLocked(d.TO)
	// A re-added TO is alive again: the doc entry itself masks older
	// layers, so the tombstone would only misreport the TO as deleted.
	delete(m.tombs, d.TO)
	md := &memDoc{doc: d}
	seenTok := make(map[string]bool)
	d.postings(func(tok string, p kwindex.Posting) {
		byTO := m.inv[tok]
		if byTO == nil {
			byTO = make(map[int64][]kwindex.Posting)
			m.inv[tok] = byTO
		}
		byTO[d.TO] = append(byTO[d.TO], p)
		m.posts++
		if !seenTok[tok] {
			seenTok[tok] = true
			md.tokens = append(md.tokens, tok)
		}
	})
	m.docs[d.TO] = md
	m.bytes += d.approxBytes()
}

func (m *memtable) deleteLocked(to int64) {
	m.unindexLocked(to)
	m.tombs[to] = true
	m.bytes += 16
}

// unindexLocked removes an existing doc's postings ahead of its
// replacement or deletion.
func (m *memtable) unindexLocked(to int64) {
	md := m.docs[to]
	if md == nil {
		return
	}
	for _, tok := range md.tokens {
		byTO := m.inv[tok]
		m.posts -= len(byTO[to])
		delete(byTO, to)
		if len(byTO) == 0 {
			delete(m.inv, tok)
		}
	}
	delete(m.docs, to)
	m.bytes -= md.doc.approxBytes()
}

// claims reports whether this layer owns the target object — either a
// live document or a tombstone — and so masks every older layer's
// postings for it.
func (m *memtable) claims(to int64) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.docs[to] != nil || m.tombs[to]
}

// postingsOf returns the sorted postings of one exact token. The slice
// is freshly allocated and owned by the caller.
func (m *memtable) postingsOf(token string) []kwindex.Posting {
	m.mu.RLock()
	defer m.mu.RUnlock()
	byTO := m.inv[token]
	if len(byTO) == 0 {
		return nil
	}
	var out []kwindex.Posting
	for _, ps := range byTO {
		out = append(out, ps...)
	}
	sortPostings(out)
	return out
}

// snapshot freezes the memtable's content for flushing: the full
// token → postings map (ownership transferred to the caller), the live
// docs (TO → summary, carried into the segment meta so ingested objects
// keep presenting properly after a flush) and the tombstone set. Only
// called on sealed memtables, which no longer receive writes, but it
// locks anyway so a late reader snapshotting concurrently stays safe.
func (m *memtable) snapshot() (postings map[string][]kwindex.Posting, docs map[int64]string, tombs map[int64]bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	postings = make(map[string][]kwindex.Posting, len(m.inv))
	for tok, byTO := range m.inv {
		var ps []kwindex.Posting
		for _, l := range byTO {
			ps = append(ps, l...)
		}
		sortPostings(ps)
		postings[tok] = ps
	}
	docs = make(map[int64]string, len(m.docs))
	for to, md := range m.docs {
		docs[to] = md.doc.Summary()
	}
	tombs = make(map[int64]bool, len(m.tombs))
	for to := range m.tombs {
		tombs[to] = true
	}
	return postings, docs, tombs
}

// summaryOf resolves one TO in this layer: claimed=false means the
// layer has no opinion (look further down the stack); ok=false with
// claimed=true means a tombstone.
func (m *memtable) summaryOf(to int64) (summary string, ok, claimed bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if md := m.docs[to]; md != nil {
		return md.doc.Summary(), true, true
	}
	if m.tombs[to] {
		return "", false, true
	}
	return "", false, false
}

// stats returns the memtable's occupancy.
func (m *memtable) stats() (docs, tombs, ops int, bytes int64) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.docs), len(m.tombs), m.ops, m.bytes
}

// empty reports whether the memtable holds no state worth flushing.
func (m *memtable) empty() bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.docs) == 0 && len(m.tombs) == 0
}

// counts returns the live posting and distinct-token counts.
func (m *memtable) counts() (postings, tokens int) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.posts, len(m.inv)
}

func (m *memtable) approxBytes() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.bytes
}

func sortPostings(ps []kwindex.Posting) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].TO != ps[j].TO {
			return ps[i].TO < ps[j].TO
		}
		return ps[i].Node < ps[j].Node
	})
}
