package decomp

import (
	"fmt"

	"repro/internal/relstore"
	"repro/internal/tss"
)

// Materialize populates one connection relation per fragment from the
// target-object graph and applies the decomposition's physical design.
// A tuple is added per subgraph of the fragment's type (§5): one walk of
// distinct target objects following the fragment's steps. Column i binds
// the i-th segment of the walk; columns are named "t0", "t1", ....
func Materialize(s *relstore.Store, og *tss.ObjectGraph, d *Decomposition) error {
	for _, f := range d.Fragments {
		if err := materializeFragment(s, og, d, f); err != nil {
			return err
		}
	}
	return nil
}

func materializeFragment(s *relstore.Store, og *tss.ObjectGraph, d *Decomposition, f Fragment) error {
	cols := make([]string, f.Size()+1)
	for i := range cols {
		cols[i] = fmt.Sprintf("t%d", i)
	}
	rel, err := s.CreateRelation(f.RelationName(), cols)
	if err != nil {
		return err
	}
	steps := f.Steps()
	startSeg := stepFrom(og.TSS, steps[0])
	row := make(relstore.Row, len(cols))
	var walk func(pos int, at int64) error
	walk = func(pos int, at int64) error {
		row[pos] = at
		if pos == len(steps) {
			// Distinctness: a subgraph has distinct nodes.
			for i := 0; i < pos; i++ {
				for j := i + 1; j <= pos; j++ {
					if row[i] == row[j] {
						return nil
					}
				}
			}
			return rel.Insert(row)
		}
		st := steps[pos]
		if st.Dir == Fwd {
			for _, oe := range og.Out(at) {
				if oe.EdgeID == st.EdgeID {
					if err := walk(pos+1, oe.To); err != nil {
						return err
					}
				}
			}
		} else {
			for _, oe := range og.In(at) {
				if oe.EdgeID == st.EdgeID {
					if err := walk(pos+1, oe.From); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}
	for _, to := range og.BySegment(startSeg) {
		if err := walk(0, to); err != nil {
			return err
		}
	}
	rel.Seal()

	if d.Physical.ClusterBothDirections {
		fwd := make([]int, len(cols))
		bwd := make([]int, len(cols))
		for i := range cols {
			fwd[i] = i
			bwd[i] = len(cols) - 1 - i
		}
		if err := rel.Cluster(fwd...); err != nil {
			return err
		}
		if len(cols) > 1 {
			if err := rel.AddOrdering(bwd...); err != nil {
				return err
			}
		}
	}
	if d.Physical.HashIndexes {
		rel.BuildAllHashIndexes()
	}
	return nil
}

// SpaceReport summarizes a materialized decomposition: per-fragment
// cardinalities — the space/performance tradeoff data of §5.1.
type SpaceReport struct {
	Name       string
	Fragments  int
	TotalRows  int
	TotalPages int
	PerFrag    []FragRows
}

// FragRows pairs a fragment with its relation cardinality and class.
type FragRows struct {
	Fragment string
	Class    Class
	Rows     int
}

// Report computes a SpaceReport for a materialized decomposition.
func Report(s *relstore.Store, tg *tss.Graph, d *Decomposition) SpaceReport {
	rep := SpaceReport{Name: d.Name, Fragments: len(d.Fragments)}
	for _, f := range d.Fragments {
		rel := s.Relation(f.RelationName())
		if rel == nil {
			continue
		}
		rep.TotalRows += rel.NumRows()
		rep.TotalPages += rel.NumPages()
		rep.PerFrag = append(rep.PerFrag, FragRows{
			Fragment: f.String(tg),
			Class:    f.Classify(tg),
			Rows:     rel.NumRows(),
		})
	}
	return rep
}
