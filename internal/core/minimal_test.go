package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
)

// The product described as "set of VCR and DVD" contains both keywords
// of the query "dvd, vcr": any result that attaches an extra part{vcr}
// or service_call{dvd} leaf to that product is non-minimal under §3.1's
// strict MTNN definition. StrictMinimal must drop exactly those.
func TestStrictMinimalDropsRedundantLeaves(t *testing.T) {
	loose := loadFig1(t, core.Options{Z: 8})
	strict := loadFig1(t, core.Options{Z: 8, StrictMinimal: true})

	all, err := loose.QueryAll([]string{"dvd", "vcr"})
	if err != nil {
		t.Fatal(err)
	}
	min, err := strict.QueryAll([]string{"dvd", "vcr"})
	if err != nil {
		t.Fatal(err)
	}
	if len(min) >= len(all) {
		t.Fatalf("strict %d results, loose %d: nothing dropped", len(min), len(all))
	}
	// Everything kept is minimal; everything dropped is not.
	kept := map[string]bool{}
	for _, r := range min {
		kept[r.Key()] = true
		if !exec.IsMinimal(strict.Index, r) {
			t.Fatalf("kept non-minimal result: %s", strict.RenderResult(r))
		}
	}
	for _, r := range all {
		if !kept[r.Key()] && exec.IsMinimal(loose.Index, r) {
			t.Fatalf("dropped minimal result: %s", loose.RenderResult(r))
		}
	}
	// The size-0 result (product holding both keywords) survives.
	if min[0].Score != 0 {
		t.Fatalf("best strict score = %d, want 0", min[0].Score)
	}
}

func TestStrictMinimalKeepsNormalResults(t *testing.T) {
	strict := loadFig1(t, core.Options{Z: 8, StrictMinimal: true})
	rs, err := strict.QueryAll([]string{"john", "vcr"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 || rs[0].Score != 6 {
		t.Fatalf("strict minimal broke the intro example: %d results", len(rs))
	}
}
