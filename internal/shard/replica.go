package shard

// Replica groups: every partition can be served by several
// interchangeable replicas (independent xkserve -shard-of processes
// over byte-identical copies of the same shard directory). The
// coordinator routes each protocol request to the healthiest replica of
// the partition's group, fails over to siblings on error, breaker-open
// or timeout, and — for requests whose latency history says the primary
// is past its p95 — hedges the same idempotent request to a second
// replica, taking the first success and cancelling the loser. Replicas
// serve identical partition data (Validate cross-checks the partition
// CRC across the group at connect time), so any replica's answer is THE
// answer and hedging cannot change a single byte of the merged result.

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/fault"
)

// hedgeControl is the coordinator-wide hedging policy and budget,
// shared by every replica group. The budget is global on purpose: a
// cluster-wide latency event must not let every group double its
// request volume at once — that is how retry storms start.
type hedgeControl struct {
	disabled   bool
	minDelay   time.Duration
	maxDelay   time.Duration
	budgetPct  int64 // hedges allowed per 100 group requests
	minSamples int64 // latency observations before p95 is trusted

	reqs  atomic.Int64 // group calls that could have hedged
	fired atomic.Int64 // hedges actually sent
	wins  atomic.Int64 // hedges that answered before the primary
}

// allow reports whether the budget admits one more hedge. The +100
// grace lets the very first eligible requests hedge before any volume
// has accumulated; after that, fired hedges are capped at budgetPct
// percent of group requests.
func (hc *hedgeControl) allow() bool {
	if hc == nil || hc.disabled {
		return false
	}
	return hc.fired.Load()*100 < hc.reqs.Load()*hc.budgetPct+100
}

// replicaGroup is the coordinator's handle to one partition's replica
// set: the per-replica clients (each with its own breaker, latency
// histogram and last-error record) plus the group's failover counter.
type replicaGroup struct {
	shard    int
	replicas []*shardClient
	hedge    *hedgeControl

	failovers atomic.Int64 // successes that needed a non-preferred replica after a failure
}

// name renders the group for logs and degradation notes. With one
// replica it reads exactly like the pre-replica format ("shard 2 of 3
// at http://..."); with more, the replica addresses are "|"-joined.
func (g *replicaGroup) name(n int) string {
	addrs := make([]string, len(g.replicas))
	for i, cl := range g.replicas {
		addrs[i] = cl.base
	}
	return fmt.Sprintf("shard %d of %d at %s", g.shard, n, strings.Join(addrs, "|"))
}

// order ranks the group's replicas healthiest-first: breaker-closed
// before broken, zero consecutive failures before some, proven
// replicas (any latency history) before never-used ones — an empty
// histogram reads p50=0, which must not make an idle sibling look
// faster than the replica actually serving — then by observed p50,
// ties broken by replica index so routing is deterministic when
// nothing distinguishes the replicas. Broken replicas stay in the
// list — when every sibling fails they are still tried, which is how
// a half-open probe gets through on the query path.
func (g *replicaGroup) order() []*shardClient {
	type cand struct {
		cl     *shardClient
		broken bool
		fails  int
		proven bool
		p50    time.Duration
		idx    int
	}
	cands := make([]cand, len(g.replicas))
	for i, cl := range g.replicas {
		broken, fails := cl.state()
		cands[i] = cand{cl: cl, broken: broken, fails: fails, proven: cl.lat.Count() > 0, p50: cl.lat.Quantile(0.50), idx: i}
	}
	sort.SliceStable(cands, func(a, b int) bool {
		ca, cb := cands[a], cands[b]
		if ca.broken != cb.broken {
			return !ca.broken
		}
		if (ca.fails > 0) != (cb.fails > 0) {
			return ca.fails == 0
		}
		if ca.proven != cb.proven {
			return ca.proven
		}
		if ca.p50 != cb.p50 {
			return ca.p50 < cb.p50
		}
		return ca.idx < cb.idx
	})
	out := make([]*shardClient, len(cands))
	for i, c := range cands {
		out[i] = c.cl
	}
	return out
}

// do routes one idempotent protocol request through the group: the
// healthiest replica first (possibly hedged to the next), failing over
// down the health order until a replica answers. It fails only when
// every replica has — the group is then treated exactly like a dead
// single-replica shard by the coordinator's existing loud-degradation
// and quorum machinery.
func (g *replicaGroup) do(ctx context.Context, path string, req, resp any, retry fault.RetryPolicy) error {
	order := g.order()
	var lastErr error
	for i := 0; i < len(order); i++ { //xk:ignore retryloop failover walks DIFFERENT replicas, not the same resource; per-attempt backoff lives in retry

		primary := order[i]
		var backup *shardClient
		if i+1 < len(order) {
			backup = order[i+1]
		}
		winner, primaryFailed, backupFailed, err := g.attempt(ctx, path, req, resp, primary, backup, retry)
		if err == nil {
			if i > 0 || (winner == backup && primaryFailed) {
				g.failovers.Add(1)
			}
			return nil
		}
		lastErr = err
		if backupFailed {
			i++ // the hedge already tried (and failed) the next replica
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
	}
	return lastErr
}

// hedgeDelay derives the hedge trigger from the primary replica's own
// latency history: its p95, clamped to the configured bounds. Hedging
// starts only once enough samples exist — before that a cold histogram
// would read p95=0 and hedge every request on arrival.
func (g *replicaGroup) hedgeDelay(primary *shardClient) (time.Duration, bool) {
	hc := g.hedge
	if hc == nil || hc.disabled {
		return 0, false
	}
	if primary.lat.Count() < hc.minSamples {
		return 0, false
	}
	d := primary.lat.Quantile(0.95)
	if d < hc.minDelay {
		d = hc.minDelay
	}
	if d > hc.maxDelay {
		d = hc.maxDelay
	}
	return d, true
}

// attempt runs one possibly-hedged request: the primary immediately,
// and — when a live backup, the latency history and the hedge budget
// allow — the identical request to the backup after the hedge delay,
// taking the first success. The loser is cancelled through the shared
// attempt context, never leaked: its goroutine aborts its HTTP request,
// sends into the buffered channel and exits.
func (g *replicaGroup) attempt(ctx context.Context, path string, req, resp any, primary, backup *shardClient, retry fault.RetryPolicy) (winner *shardClient, primaryFailed, backupFailed bool, err error) {
	hc := g.hedge
	if hc != nil && !hc.disabled && backup != nil {
		hc.reqs.Add(1)
	}
	actx, cancel := context.WithCancel(ctx)
	defer cancel() // hedge losers are cancelled, not leaked

	respType := reflect.TypeOf(resp).Elem()
	type result struct {
		cl  *shardClient
		val reflect.Value
		err error
	}
	// Buffered to the attempt count: a loser finishing after this call
	// returned sends without blocking and its goroutine exits.
	ch := make(chan result, 2)
	launch := func(cl *shardClient) {
		// Each in-flight attempt decodes into its own value; only the
		// winner's is copied into resp, so concurrent attempts never
		// race on the caller's response.
		val := reflect.New(respType)
		go func() {
			ch <- result{cl: cl, val: val, err: cl.call(actx, path, req, val.Interface(), retry)}
		}()
	}
	launch(primary)
	outstanding := 1

	var hedgeC <-chan time.Time
	if backup != nil {
		if d, ok := g.hedgeDelay(primary); ok {
			timer := time.NewTimer(d)
			defer timer.Stop()
			hedgeC = timer.C
		}
	}
	var firstErr error
	for {
		select {
		case r := <-ch:
			outstanding--
			if r.err == nil {
				if hc != nil && r.cl == backup && !primaryFailed {
					hc.wins.Add(1)
				}
				cancel() // abort the loser promptly
				reflect.ValueOf(resp).Elem().Set(r.val.Elem())
				return r.cl, primaryFailed, backupFailed, nil
			}
			if r.cl == primary {
				primaryFailed = true
			} else {
				backupFailed = true
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if outstanding == 0 {
				return nil, primaryFailed, backupFailed, firstErr
			}
			// The other attempt is still in flight (the primary failed
			// under a hedge, or the hedge failed first): wait it out —
			// it may still succeed and save the request.
		case <-hedgeC:
			hedgeC = nil
			if !hc.allow() {
				continue
			}
			hc.fired.Add(1)
			launch(backup)
			outstanding++
		}
	}
}

// ParseTopology parses a coordinator topology spec: comma-separated
// shard groups in shard-id order, each a "|"-separated list of replica
// base URLs. "http://a,http://b" is two single-replica shards (the
// pre-replica syntax unchanged); "http://a1|http://a2,http://b1|http://b2"
// is two shards of two replicas each.
func ParseTopology(spec string) ([][]string, error) {
	var groups [][]string
	for _, gs := range strings.Split(spec, ",") {
		if strings.TrimSpace(gs) == "" {
			continue
		}
		var addrs []string
		for _, a := range strings.Split(gs, "|") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		if len(addrs) == 0 {
			return nil, fmt.Errorf("shard: topology group %q lists no replica addresses", gs)
		}
		groups = append(groups, addrs)
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("shard: topology %q lists no shard groups", spec)
	}
	return groups, nil
}
