package repro

// Benchmarks of the staged query pipeline: BenchmarkQuery is the
// canonical end-to-end top-10 figure (warm CN memo, the steady state a
// server runs in), and BenchmarkPipelineOverhead isolates what the
// observability layer costs — "disabled" runs with a nil Trace (every
// span operation a no-op) and must stay within noise of BenchmarkQuery;
// "traced" is the full EXPLAIN ANALYZE path with per-stage spans.

import (
	"context"
	"testing"

	"repro/internal/core"
)

// BenchmarkQuery measures a warm-memo top-10 author-pair query through
// the staged pipeline — discover, generate (memo hit), reduce,
// optimize, execute, rank.
func BenchmarkQuery(b *testing.B) {
	sys := system(b, core.PresetXKeyword)
	w := workload(b)
	pair := w.Pairs[0]
	if _, err := sys.Query(pair[:], 10); err != nil { // warm the CN memo
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Query(pair[:], 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineOverhead compares the query path with tracing
// disabled (nil Trace, the default for Query/QueryAll/QueryStream)
// against the traced EXPLAIN ANALYZE path. The disabled run is the
// <2%-overhead acceptance gate for the pipeline refactor; the traced
// run prices the six spans and the trace allocation.
func BenchmarkPipelineOverhead(b *testing.B) {
	sys := system(b, core.PresetXKeyword)
	w := workload(b)
	pair := w.Pairs[0]
	if _, err := sys.Query(pair[:], 10); err != nil { // warm the CN memo
		b.Fatal(err)
	}
	b.Run("disabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sys.Query(pair[:], 10); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("traced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sys.ExplainAnalyze(context.Background(), pair[:], 10); err != nil {
				b.Fatal(err)
			}
		}
	})
}
