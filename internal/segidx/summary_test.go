package segidx_test

import (
	"testing"

	"repro/internal/segidx"
)

func personDoc(to int64, node int64, name string) segidx.Document {
	return doc(to,
		field(node, "person", "person", ""),
		field(node+1, "name", "name", name),
		field(node+2, "nation", "nation", "US"),
	)
}

// TestSummaryLifecycle follows one ingested TO's presentation summary
// through every index layer: memtable, sealed segment (flush),
// compaction, replacement (newest wins), tombstone, and recovery from a
// reopened directory. Runtime-ingested TOs must present like
// batch-loaded ones at every stage — never as placeholders.
func TestSummaryLifecycle(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, segidx.Options{})

	mustAdd(t, s, personDoc(100, 10, "Anna"))
	const want = "person[name=Anna nation=US]"
	if sum, ok := s.Summary(100); !ok || sum != want {
		t.Fatalf("memtable summary = %q, %v; want %q", sum, ok, want)
	}

	// Through a flush: the summary now lives in the segment meta.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if sum, ok := s.Summary(100); !ok || sum != want {
		t.Fatalf("post-flush summary = %q, %v; want %q", sum, ok, want)
	}

	// Replacement: newest layer wins over the flushed segment.
	mustAdd(t, s, personDoc(100, 10, "Maria"))
	const want2 = "person[name=Maria nation=US]"
	if sum, ok := s.Summary(100); !ok || sum != want2 {
		t.Fatalf("replaced summary = %q, %v; want %q", sum, ok, want2)
	}

	// Through a second flush and a compaction: both segments merge and
	// the newest version's summary survives.
	mustAdd(t, s, personDoc(200, 20, "Wei"))
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if sum, ok := s.Summary(100); !ok || sum != want2 {
		t.Fatalf("post-compaction summary = %q, %v; want %q", sum, ok, want2)
	}
	if sum, ok := s.Summary(200); !ok || sum != "person[name=Wei nation=US]" {
		t.Fatalf("post-compaction summary of TO 200 = %q, %v", sum, ok)
	}

	// Tombstones hide the summary at every layer.
	mustDelete(t, s, 100)
	if sum, ok := s.Summary(100); ok {
		t.Fatalf("deleted TO still presents summary %q", sum)
	}

	// Recovery: a reopened store serves the same summaries from disk
	// (WAL replay for the unflushed delete, segment meta for the rest).
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := openStore(t, dir, segidx.Options{})
	if sum, ok := r.Summary(200); !ok || sum != "person[name=Wei nation=US]" {
		t.Fatalf("reopened summary of TO 200 = %q, %v", sum, ok)
	}
	if sum, ok := r.Summary(100); ok {
		t.Fatalf("reopened store resurrected deleted TO's summary %q", sum)
	}
	if _, ok := r.Summary(999); ok {
		t.Fatal("summary claimed for a TO the store never saw")
	}
}

// TestSummaryShapes pins the presentation forms: valueless documents
// fall back to label#TO and empty ones to TO#id, mirroring how the
// object graph presents batch-loaded target objects.
func TestSummaryShapes(t *testing.T) {
	d := doc(7, field(1, "part", "part", ""))
	if got := d.Summary(); got != "part#7" {
		t.Errorf("valueless doc summary = %q, want part#7", got)
	}
	e := doc(8)
	if got := e.Summary(); got != "TO#8" {
		t.Errorf("empty doc summary = %q, want TO#8", got)
	}
	// Head value leads without a label= prefix.
	h := doc(9, field(1, "name", "name", "TV"), field(2, "key", "key", "1005"))
	if got := h.Summary(); got != "name[TV key=1005]" {
		t.Errorf("headed doc summary = %q, want name[TV key=1005]", got)
	}
}
