// Package atomiccommit seeds violations for the atomiccommit analyzer:
// files created and renamed into place with no Sync between write and
// publish. The compliant shapes at the bottom mirror
// internal/atomicio.WriteFile (temp, write, Sync, Close, Rename) and
// renames that do not publish freshly written bytes.
package atomiccommit

import (
	"os"
	"path/filepath"
)

// publishWriteFile routes a manifest through os.WriteFile, which never
// fsyncs: the rename can survive a crash the data bytes do not.
func publishWriteFile(dir string, data []byte) error {
	tmp := filepath.Join(dir, "manifest.tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, "manifest"))
}

// publishCreate writes through a handle but renames without a Sync.
func publishCreate(path string, data []byte) error {
	f, err := os.Create(path + ".tmp")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(path+".tmp", path)
}

// publishTemp tracks the temp file through f.Name(); still no Sync.
func publishTemp(dir, dst string, data []byte) error {
	f, err := os.CreateTemp(dir, "seg-*")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(f.Name(), dst)
}

// publishSynced is the full commit protocol: write, Sync, Close, then
// rename.
func publishSynced(path string, data []byte) error {
	f, err := os.Create(path + ".tmp")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(path+".tmp", path)
}

// publishViaHelper hands the open handle to a helper; the helper owns
// the sync decision, so the rename here is not charged.
func publishViaHelper(path string, data []byte) error {
	f, err := os.Create(path + ".tmp")
	if err != nil {
		return err
	}
	if err := flushAndSync(f, data); err != nil {
		return err
	}
	return os.Rename(path+".tmp", path)
}

func flushAndSync(f *os.File, data []byte) error {
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// quarantine renames an existing file aside: nothing was created here,
// so there is nothing to sync.
func quarantine(path string) error {
	return os.Rename(path, path+".corrupt")
}

// rotateAfterRead opens read-only; renaming it later commits no new
// bytes.
func rotateAfterRead(path string) error {
	f, err := os.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(path, path+".done")
}

// publishSuppressed documents a deliberate unsynced publish: the WAL
// already made the bytes durable and recovery CRC-rejects torn state.
func publishSuppressed(dir string, data []byte) error {
	tmp := filepath.Join(dir, "wal.tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	//xk:ignore atomiccommit recovery replays the fsynced WAL and CRC-rejects torn bytes; this file is a cache
	return os.Rename(tmp, filepath.Join(dir, "wal"))
}
