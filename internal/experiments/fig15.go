package experiments

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/optimizer"
)

// fig15Presets are the decompositions compared in Figure 15. The paper's
// chart omits MinNClustNIndx from 15(a) because it is an order of
// magnitude worse; we include it so the claim is checkable.
var fig15Presets = []core.DecompositionPreset{
	core.PresetXKeyword,
	core.PresetComplete,
	core.PresetMinClust,
	core.PresetMinNClustIndx,
	core.PresetMinNClustNIndx,
}

// Fig15a reproduces Figure 15(a): the average time to output the top-K
// results of each candidate network of a two-keyword query, per
// decomposition, for K in cfg.Ks. Lower is better; the paper's findings:
// XKeyword fastest, Complete slower than MinClust (MVD fragment bloat),
// unclustered variants poor.
func Fig15a(w *Workload) (Figure, error) {
	fig := Figure{ID: "15a", Title: "top-K results per candidate network", XLabel: "K"}
	for _, preset := range fig15Presets {
		sys, err := w.load(preset, -1) // per-run caches created below
		if err != nil {
			return fig, err
		}
		// Plan once per pair; planning (CN generation) is identical
		// across decompositions and excluded from the measurement.
		var pairPlans [][]exec.Planned
		for _, pair := range w.Pairs {
			plans, err := sys.Plans(pair[:])
			if err != nil {
				return fig, err
			}
			pairPlans = append(pairPlans, plans)
		}
		series := Series{Label: string(preset)}
		for _, k := range w.Config.Ks {
			var pt Point
			pt.X = k
			runs := 0
			for _, plans := range pairPlans {
				ex := &exec.Executor{Store: sys.Store, TSS: sys.TSS, Index: sys.Index, Cache: exec.NewLookupCache(0)}
				for _, p := range plans {
					plan := p.Plan
					n := 0
					dur, io := measure(sys.Store, func() {
						_ = ex.Evaluate(plan, func(exec.Result) bool {
							n++
							return n < k
						})
					})
					pt.Millis += float64(dur.Microseconds()) / 1000
					pt.Cost += io.Cost()
					pt.Lookups += float64(io.Lookups)
					pt.Results += float64(n)
					runs++
				}
			}
			if runs > 0 {
				pt.Millis /= float64(runs)
				pt.Cost /= float64(runs)
				pt.Lookups /= float64(runs)
				pt.Results /= float64(runs)
			}
			series.Points = append(series.Points, pt)
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

// Fig15b reproduces Figure 15(b): the average time to output ALL results
// of an author-chain candidate network, per decomposition, as the
// CTSSN size grows. The paper's finding: MinNClustNIndx is fastest here
// — full scans plus hash joins beat index nested loops when whole
// relations must be consumed anyway.
func Fig15b(w *Workload) (Figure, error) {
	fig := Figure{ID: "15b", Title: "all results per candidate network", XLabel: "size"}
	rng := rand.New(rand.NewSource(w.Config.Seed + 1))
	// Fixed per-size query pairs shared by every decomposition.
	type sizedQuery struct {
		size   int
		a1, a2 string
	}
	var queries []sizedQuery
	for _, size := range w.Config.Sizes {
		for q := 0; q < w.Config.Queries; q++ {
			if a1, a2, ok := PairForChain(w.DS, rng, size); ok {
				queries = append(queries, sizedQuery{size: size, a1: a1, a2: a2})
			}
		}
	}
	for _, preset := range fig15Presets {
		sys, err := w.load(preset, -1)
		if err != nil {
			return fig, err
		}
		opt := &optimizer.Optimizer{
			TSS: sys.TSS, Store: sys.Store, Index: sys.Index, Stats: sys.Stats,
			Fragments: sys.Decomp.Fragments, MaxJoins: sys.Opts.B,
		}
		series := Series{Label: string(preset)}
		for _, size := range w.Config.Sizes {
			var pt Point
			pt.X = size
			runs := 0
			for _, q := range queries {
				if q.size != size {
					continue
				}
				net, err := AuthorChain(sys.TSS, q.a1, q.a2, size)
				if err != nil {
					return fig, err
				}
				plan, err := opt.Plan(net)
				if err != nil {
					return fig, err
				}
				ex := &exec.Executor{Store: sys.Store, TSS: sys.TSS, Index: sys.Index, Cache: exec.NewLookupCache(0)}
				nres := 0
				dur, io := measure(sys.Store, func() {
					_ = ex.Run(plan, exec.AutoStrategy, func(exec.Result) bool {
						nres++
						return true
					})
				})
				pt.Millis += float64(dur.Microseconds()) / 1000
				pt.Cost += io.Cost()
				pt.Lookups += float64(io.Lookups)
				pt.Results += float64(nres)
				runs++
			}
			if runs > 0 {
				pt.Millis /= float64(runs)
				pt.Cost /= float64(runs)
				pt.Lookups /= float64(runs)
				pt.Results /= float64(runs)
			}
			series.Points = append(series.Points, pt)
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}
