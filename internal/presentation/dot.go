package presentation

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the presentation graph's active subgraph in Graphviz DOT:
// one cluster per occurrence (role), one node per displayed target
// object (labeled by the summary function), and edges between displayed
// objects of adjacent occurrences that are actually connected — the
// visual form of Figure 3. summary renders a target object (use
// core.System.Obj.Summary); pass nil for bare ids.
func (g *Graph) DOT(summary func(int64) string) string {
	if summary == nil {
		summary = func(to int64) string { return fmt.Sprintf("TO %d", to) }
	}
	var sb strings.Builder
	sb.WriteString("digraph pg {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n")
	for i, o := range g.Net.Occs {
		fmt.Fprintf(&sb, "  subgraph cluster_%d {\n", i)
		label := o.Segment
		if g.Expanded[i] {
			label += " (expanded)"
		}
		fmt.Fprintf(&sb, "    label=%q;\n", fmt.Sprintf("occ %d: %s", i, label))
		for _, to := range g.Displayed(i) {
			fmt.Fprintf(&sb, "    n%d_%d [label=%q];\n", i, to, summary(to))
		}
		sb.WriteString("  }\n")
	}
	// Edges between displayed, actually-connected object pairs.
	for _, e := range g.Net.Edges {
		te := g.sess.TSS.Edge(e.EdgeID)
		for _, from := range g.Displayed(e.From) {
			for _, to := range g.Displayed(e.To) {
				if g.connected(from, to, e.EdgeID) {
					fmt.Fprintf(&sb, "  n%d_%d -> n%d_%d [label=%q, fontsize=9];\n",
						e.From, from, e.To, to, te.ForwardLabel)
				}
			}
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// connected checks the object graph for an instance of edgeID between
// the two target objects.
func (g *Graph) connected(from, to int64, edgeID int) bool {
	for _, oe := range g.sess.Obj.Out(from) {
		if oe.To == to && oe.EdgeID == edgeID {
			return true
		}
	}
	return false
}

// DisplayedPairs returns the connected displayed pairs per network edge,
// sorted — the data the DOT rendering draws, exposed for tests and
// alternative front ends.
func (g *Graph) DisplayedPairs() map[int][][2]int64 {
	out := make(map[int][][2]int64)
	for ei, e := range g.Net.Edges {
		for _, from := range g.Displayed(e.From) {
			for _, to := range g.Displayed(e.To) {
				if g.connected(from, to, e.EdgeID) {
					out[ei] = append(out[ei], [2]int64{from, to})
				}
			}
		}
		sort.Slice(out[ei], func(a, b int) bool {
			if out[ei][a][0] != out[ei][b][0] {
				return out[ei][a][0] < out[ei][b][0]
			}
			return out[ei][a][1] < out[ei][b][1]
		})
	}
	return out
}
