package repro

// Benchmarks regenerating each figure of the paper's evaluation (§7) at
// test scale, plus micro-benchmarks of the core components. The full
// paper-scale runs live in cmd/xkbench; these testing.B versions verify
// the same code paths and give per-operation costs:
//
//	Figure 15(a) -> BenchmarkFig15aTopK
//	Figure 15(b) -> BenchmarkFig15bAll
//	Figure 16(a) -> BenchmarkFig16aNaive / BenchmarkFig16aOptimized
//	Figure 16(b) -> BenchmarkFig16bExpand
import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/banks"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/decomp"
	"repro/internal/diskindex"
	"repro/internal/exec"
	"repro/internal/experiments"
	"repro/internal/kwindex"
	"repro/internal/optimizer"
	"repro/internal/presentation"
	"repro/internal/qserve"
	"repro/internal/tss"
)

var (
	benchOnce sync.Once
	benchW    *experiments.Workload
	benchSys  map[core.DecompositionPreset]*core.System
	benchErr  error
)

func workload(b *testing.B) *experiments.Workload {
	b.Helper()
	benchOnce.Do(func() {
		cfg := experiments.QuickConfig()
		cfg.Queries = 2
		benchW, benchErr = experiments.NewWorkload(cfg)
		if benchErr != nil {
			return
		}
		benchSys = make(map[core.DecompositionPreset]*core.System)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchW
}

func system(b *testing.B, preset core.DecompositionPreset) *core.System {
	b.Helper()
	w := workload(b)
	if sys, ok := benchSys[preset]; ok {
		return sys
	}
	sys, err := core.LoadPrepared(w.Prepared, core.Options{
		Z: w.Config.Z, B: w.Config.B, Decomposition: preset,
		PoolPages: w.Config.PoolPages, SkipBlobs: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	benchSys[preset] = sys
	return sys
}

// BenchmarkFig15aTopK measures producing the top-K results of every
// candidate network of one author-pair query, per decomposition.
func BenchmarkFig15aTopK(b *testing.B) {
	presets := []core.DecompositionPreset{
		core.PresetXKeyword, core.PresetComplete, core.PresetMinClust,
		core.PresetMinNClustIndx, core.PresetMinNClustNIndx,
	}
	for _, preset := range presets {
		for _, k := range []int{1, 10} {
			b.Run(fmt.Sprintf("%s/K=%d", preset, k), func(b *testing.B) {
				sys := system(b, preset)
				w := workload(b)
				plans, err := sys.Plans(w.Pairs[0][:])
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ex := &exec.Executor{Store: sys.Store, TSS: sys.TSS, Index: sys.Index, Cache: exec.NewLookupCache(0)}
					for _, p := range plans {
						n := 0
						_ = ex.Evaluate(p.Plan, func(exec.Result) bool {
							n++
							return n < k
						})
					}
				}
			})
		}
	}
}

// BenchmarkFig15bAll measures producing all results of the author-chain
// network, per decomposition and CTSSN size.
func BenchmarkFig15bAll(b *testing.B) {
	presets := []core.DecompositionPreset{
		core.PresetXKeyword, core.PresetMinClust, core.PresetMinNClustNIndx,
	}
	for _, preset := range presets {
		for _, size := range []int{2, 3, 4} {
			b.Run(fmt.Sprintf("%s/size=%d", preset, size), func(b *testing.B) {
				sys := system(b, preset)
				plan := chainPlan(b, sys, size)
				ex := &exec.Executor{Store: sys.Store, TSS: sys.TSS, Index: sys.Index}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_ = ex.Run(plan, exec.AutoStrategy, func(exec.Result) bool { return true })
				}
			})
		}
	}
}

func chainPlan(b *testing.B, sys *core.System, size int) *optimizer.Plan {
	b.Helper()
	w := workload(b)
	rngPair := func() (string, string) {
		// Deterministic pair per size from the shared workload seed.
		rng := newRand(w.Config.Seed + int64(size))
		a1, a2, ok := experiments.PairForChain(w.DS, rng, size)
		if !ok {
			b.Skip("no chain pair at this size")
		}
		return a1, a2
	}
	a1, a2 := rngPair()
	net, err := experiments.AuthorChain(sys.TSS, a1, a2, size)
	if err != nil {
		b.Fatal(err)
	}
	opt := &optimizer.Optimizer{
		TSS: sys.TSS, Store: sys.Store, Index: sys.Index, Stats: sys.Stats,
		Fragments: sys.Decomp.Fragments, MaxJoins: sys.Opts.B,
	}
	plan, err := opt.Plan(net)
	if err != nil {
		b.Fatal(err)
	}
	return plan
}

// BenchmarkFig16aNaive and BenchmarkFig16aOptimized measure the two
// execution algorithms whose ratio is Figure 16(a)'s speedup.
func BenchmarkFig16aNaive(b *testing.B) {
	benchFig16a(b, false)
}

// BenchmarkFig16aOptimized is the caching counterpart.
func BenchmarkFig16aOptimized(b *testing.B) {
	benchFig16a(b, true)
}

func benchFig16a(b *testing.B, cached bool) {
	for _, size := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			sys := system(b, core.PresetXKeyword)
			plan := chainPlan(b, sys, size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ex := &exec.Executor{Store: sys.Store, TSS: sys.TSS, Index: sys.Index}
				if cached {
					ex.Cache = exec.NewLookupCache(0)
				}
				_ = ex.Evaluate(plan, func(exec.Result) bool { return true })
			}
		})
	}
}

// BenchmarkFig16bExpand measures one presentation-graph expansion of a
// Paper node per probe-set variant.
func BenchmarkFig16bExpand(b *testing.B) {
	variants := []string{"inlined", "minimal", "combination"}
	for _, variant := range variants {
		for _, size := range []int{2, 3} {
			b.Run(fmt.Sprintf("%s/size=%d", variant, size), func(b *testing.B) {
				sys := system(b, core.PresetXKeyword)
				w := workload(b)
				rng := newRand(w.Config.Seed + int64(size))
				a1, a2, ok := experiments.PairForChain(w.DS, rng, size)
				if !ok {
					b.Skip("no chain pair")
				}
				net, err := experiments.AuthorChain(sys.TSS, a1, a2, size)
				if err != nil {
					b.Fatal(err)
				}
				var frags []decomp.Fragment
				switch variant {
				case "inlined":
					frags = sys.InlinedFragments()
				case "minimal":
					frags = sys.MinimalFragments()
				default:
					frags = sys.Decomp.Fragments
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sess := &presentation.Session{
						TSS: sys.TSS, Obj: sys.Obj, Store: sys.Store, Index: sys.Index,
						Stats: sys.Stats, Fragments: frags, Fallback: sys.Decomp.Fragments,
						Cache: exec.NewLookupCache(0),
					}
					g, err := sess.Build(net)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := g.Expand(1, presentation.ExpandOptions{}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkBaselineBANKS and BenchmarkBaselineXKeyword quantify §2's
// comparison: the data-graph baseline (BANKS-style backward search over
// all 50k+ nodes) against XKeyword's schema-derived connection
// relations, answering the same top-10 author-pair query.
func BenchmarkBaselineBANKS(b *testing.B) {
	w := workload(b)
	s := banks.NewSearcher(w.DS.Data)
	pair := w.Pairs[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Search(pair[:], banks.Options{MaxScore: 8, K: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselineXKeyword is the schema-aware counterpart.
func BenchmarkBaselineXKeyword(b *testing.B) {
	sys := system(b, core.PresetXKeyword)
	w := workload(b)
	pair := w.Pairs[0]
	if _, err := sys.Query(pair[:], 10); err != nil { // warm the CN memo
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Query(pair[:], 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQServe measures the serving layer on the DBLP dataset: cold
// runs a fresh qserve.Server per iteration (every query executes the
// full CN-generation/planning/join pipeline), warm repeats one query
// through a shared server so every iteration after the first is a
// cache hit. The ratio is the serving-layer win for repeated queries.
func BenchmarkQServe(b *testing.B) {
	sys := system(b, core.PresetXKeyword)
	w := workload(b)
	pair := w.Pairs[0][:]
	if _, err := sys.Query(pair, 10); err != nil { // warm the CN memo for both runs
		b.Fatal(err)
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			qs := qserve.New(sys, qserve.Options{})
			if _, err := qs.Query(context.Background(), pair, 10); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		qs := qserve.New(sys, qserve.Options{})
		if _, err := qs.Query(context.Background(), pair, 10); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := qs.Query(context.Background(), pair, 10); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if st := qs.Stats(); st.Hits < int64(b.N) {
			b.Fatalf("warm run missed the cache: %+v", st)
		}
	})
}

// BenchmarkPushdown measures the §8 keyword-filter pushdown ablation:
// composite (probe, keyword-TO) lookups versus probe-then-filter.
func BenchmarkPushdown(b *testing.B) {
	for _, mode := range []string{"on", "off"} {
		b.Run(mode, func(b *testing.B) {
			sys := system(b, core.PresetXKeyword)
			w := workload(b)
			plans, err := sys.Plans(w.Pairs[0][:])
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ex := &exec.Executor{Store: sys.Store, TSS: sys.TSS, Index: sys.Index, NoPushdown: mode == "off"}
				for _, p := range plans {
					_ = ex.Evaluate(p.Plan, func(exec.Result) bool { return true })
				}
			}
		})
	}
}

// Micro-benchmarks of the load-stage components.

// BenchmarkDiskIndexLookup compares master-index lookups served from RAM
// against the paged .xki reader, cold (fresh reader, empty buffer pool)
// and warm (pool and list cache primed). The pool is budgeted at half
// the index file so the cold path must actually page.
func BenchmarkDiskIndexLookup(b *testing.B) {
	w := workload(b)
	ix := kwindex.Build(w.DS.Obj)
	path := filepath.Join(b.TempDir(), "bench.xki")
	if err := diskindex.Create(path, ix); err != nil {
		b.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	// The page pool is capped below the file size so cold lookups must
	// page; the decoded-list cache keeps the budget a default serving
	// config would give it (it is derived from CacheBytes otherwise,
	// which the cap above would shrink to a few KB).
	opts := diskindex.Options{
		CacheBytes:     st.Size() / 2,
		ListCacheBytes: diskindex.DefaultCacheBytes,
	}
	terms := ix.Terms()

	b.Run("memory", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix.ContainingList(terms[i%len(terms)])
		}
	})
	b.Run("disk-cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			rd, err := diskindex.Open(path, opts)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			rd.ContainingList(terms[i%len(terms)])
			b.StopTimer()
			rd.Close()
			b.StartTimer()
		}
	})
	b.Run("disk-warm", func(b *testing.B) {
		rd, err := diskindex.Open(path, opts)
		if err != nil {
			b.Fatal(err)
		}
		defer rd.Close()
		for _, t := range terms {
			rd.ContainingList(t)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rd.ContainingList(terms[i%len(terms)])
		}
	})
}

func BenchmarkMasterIndexBuild(b *testing.B) {
	w := workload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kwindex.Build(w.DS.Obj)
	}
}

func BenchmarkTargetDecomposition(b *testing.B) {
	w := workload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.DS.TSS.Decompose(w.DS.Data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCNGeneration(b *testing.B) {
	sys := system(b, core.PresetXKeyword)
	w := workload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Networks(w.Pairs[0][:]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaterializeMinimal(b *testing.B) {
	w := workload(b)
	min := decomp.Minimal(w.DS.TSS)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := newBenchStore()
		if err := decomp.Materialize(s, w.DS.Obj, min); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompositionAlgorithm(b *testing.B) {
	// XKeyword memoizes per TSS-graph structure, so after the first call
	// this measures the memoized path — the cost every Load after the
	// first pays. The cold cost appears once in any profile as the first
	// iteration's outlier (seconds at M=6).
	tg, err := tss.Derive(datagen.DBLPSchema(), datagen.DBLPSpec())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := decomp.XKeyword(tg, 6, 2); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := decomp.XKeyword(tg, 6, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLookupPaths(b *testing.B) {
	sys := system(b, core.PresetXKeyword)
	// The largest relation by probes: the citation single edge.
	var rel = sys.Store.Relation(firstRelation(sys))
	if rel == nil || rel.NumRows() == 0 {
		b.Skip("no populated relation")
	}
	b.Run("clustered", func(b *testing.B) {
		var sink int
		for i := 0; i < b.N; i++ {
			rows, _ := rel.LookupPrefix([]int{0}, []int64{int64(i%1000 + 1)})
			sink += len(rows)
		}
		_ = sink
	})
}

func firstRelation(sys *core.System) string {
	best, rows := "", -1
	for _, name := range sys.Store.Relations() {
		if r := sys.Store.Relation(name); r.NumRows() > rows {
			best, rows = name, r.NumRows()
		}
	}
	return best
}
