package shard_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/kwindex"
	"repro/internal/qserve"
	"repro/internal/shard"
)

// tpchSystem builds a small synthetic TPC-H-like system: big enough
// that keywords hit several target objects across partitions, small
// enough that the N=7 cluster runs every query on 8 pipelines quickly.
func tpchSystem(t testing.TB) *core.System {
	t.Helper()
	ds, err := datagen.TPCH(datagen.TPCHParams{
		Persons:           12,
		OrdersPerPerson:   2,
		LineitemsPerOrder: 2,
		Parts:             8,
		SubsPerPart:       2,
		Seed:              7,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.LoadPrepared(&core.Prepared{Schema: ds.Schema, TSS: ds.TSS, Data: ds.Data, Obj: ds.Obj}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// cluster is an in-process shard deployment: n httptest shard servers
// over disjoint PartitionIndex slices of one master, and a coordinator.
type cluster struct {
	coord   *shard.Coordinator
	servers []*httptest.Server
	shards  []*shard.Server
}

// clusterConfig tweaks startCluster per test.
type clusterConfig struct {
	opts shard.CoordinatorOptions
	// local overrides shard i's partition source (nil = PartitionIndex).
	local func(i int, part *kwindex.Index) kwindex.Source
	// wrap decorates shard i's handler (nil = identity) — fault injection.
	wrap func(i int, h http.Handler) http.Handler
}

func startCluster(t testing.TB, sys *core.System, n int, cfg clusterConfig) *cluster {
	t.Helper()
	master := kwindex.Build(sys.Obj)
	c := &cluster{}
	var addrs []string
	for i := 0; i < n; i++ {
		part := shard.PartitionIndex(master, i, n)
		var local kwindex.Source = part
		if cfg.local != nil {
			local = cfg.local(i, part)
		}
		srv := &shard.Server{Sys: sys, Local: local, ID: i, N: n}
		h := srv.Handler()
		if cfg.wrap != nil {
			h = cfg.wrap(i, h)
		}
		ts := httptest.NewServer(h)
		t.Cleanup(ts.Close)
		c.shards = append(c.shards, srv)
		c.servers = append(c.servers, ts)
		addrs = append(addrs, ts.URL)
	}
	if cfg.opts.HealthTTL == 0 {
		cfg.opts.HealthTTL = -1 // tests want fresh states, not 1s-stale ones
	}
	if cfg.opts.Logf == nil {
		cfg.opts.Logf = t.Logf
	}
	c.coord = shard.NewCoordinator(sys, addrs, cfg.opts)
	return c
}

// resultKey fingerprints a result for set comparisons.
func resultKey(r exec.Result) string {
	return fmt.Sprintf("%d|%d|%v|%s", r.Score, r.Ord, r.Bind, r.Net.Canon())
}

// mustEqualResults asserts byte-identical answers: same length, same
// order, and per position the same score, canonical order key, binding
// and network.
func mustEqualResults(t *testing.T, tag string, got, want []exec.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, single-node %d", tag, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Score != w.Score || g.Ord != w.Ord || !reflect.DeepEqual(g.Bind, w.Bind) || g.Net.Canon() != w.Net.Canon() {
			t.Fatalf("%s: result %d differs:\ngot  score=%d ord=%x bind=%v net=%s\nwant score=%d ord=%x bind=%v net=%s",
				tag, i, g.Score, g.Ord, g.Bind, g.Net.Canon(), w.Score, w.Ord, w.Bind, w.Net.Canon())
		}
	}
}

// queryVocab picks indexed terms worth querying: every term with at
// least two postings (so cross-partition trees exist), deterministic
// order.
func queryVocab(sys *core.System) []string {
	ix := kwindex.Build(sys.Obj)
	var vocab []string
	for _, term := range ix.Terms() {
		if len(ix.ContainingList(term)) >= 2 {
			vocab = append(vocab, term)
		}
	}
	return vocab
}

// TestEquivalenceAcrossN is the randomized equivalence suite: for every
// shard count the sharded deployment must return exactly the single-node
// answer — same result set, same ranks, same deterministic order — for a
// seeded random batch of queries and k values.
func TestEquivalenceAcrossN(t *testing.T) {
	sys := tpchSystem(t)
	vocab := queryVocab(sys)
	if len(vocab) < 4 {
		t.Fatalf("test dataset has only %d multi-posting terms", len(vocab))
	}
	rng := rand.New(rand.NewSource(42))
	type q struct {
		kws []string
		k   int
	}
	queries := []q{
		{[]string{"john", "tv"}, 10}, // the paper's running example shape
		{[]string{"anna", "vcr"}, 5},
	}
	for i := 0; i < 10; i++ {
		nkw := 2
		if rng.Intn(3) == 0 {
			nkw = 3
		}
		var kws []string
		seen := map[string]bool{}
		for len(kws) < nkw {
			w := vocab[rng.Intn(len(vocab))]
			if !seen[w] {
				seen[w] = true
				kws = append(kws, w)
			}
		}
		queries = append(queries, q{kws, []int{1, 2, 5, 10}[rng.Intn(4)]})
	}

	ctx := context.Background()
	for _, n := range []int{1, 2, 3, 7} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			cl := startCluster(t, sys, n, clusterConfig{})
			if err := cl.coord.Validate(ctx); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			for _, qq := range queries {
				want, err := sys.QueryContext(ctx, qq.kws, qq.k)
				if err != nil {
					t.Fatalf("single-node %v: %v", qq.kws, err)
				}
				cctx, deg := qserve.CaptureDegradation(ctx)
				got, err := cl.coord.QueryContext(cctx, qq.kws, qq.k)
				if err != nil {
					t.Fatalf("coordinator %v: %v", qq.kws, err)
				}
				if d := deg(); d != nil {
					t.Fatalf("healthy cluster reported degradation: %+v", d)
				}
				mustEqualResults(t, fmt.Sprintf("%v k=%d", qq.kws, qq.k), got, want)
			}
			// Full enumeration (k=0) through the all-strategy path.
			want, err := sys.QueryAllStrategyContext(ctx, []string{"john", "tv"}, exec.NestedLoop)
			if err != nil {
				t.Fatal(err)
			}
			got, err := cl.coord.QueryAllStrategyContext(ctx, []string{"john", "tv"}, exec.NestedLoop)
			if err != nil {
				t.Fatal(err)
			}
			mustEqualResults(t, "query-all", got, want)
		})
	}
}

// brokenSource is a FallibleSource whose reads silently come back empty
// while Err reports the failure — the shape of a torn partition file
// behind a diskindex reader.
type brokenSource struct{}

func (brokenSource) ContainingList(string) []kwindex.Posting { return nil }
func (brokenSource) SchemaNodes(string) []string             { return nil }
func (brokenSource) TOSet(string, string) map[int64]bool     { return nil }
func (brokenSource) NumPostings() int                        { return 0 }
func (brokenSource) NumKeywords() int                        { return 0 }
func (brokenSource) Err() error                              { return errors.New("injected partition read failure") }

// TestEquivalenceWithFailoverShard degrades one shard to its rebuilt
// fallback (PR 5's failover path): its primary always fails, the
// fallback is the true partition slice. Answers must stay byte-exact
// with no degradation note — a shard on its fallback answers correctly,
// it is only *reported* degraded.
func TestEquivalenceWithFailoverShard(t *testing.T) {
	sys := tpchSystem(t)
	const n = 3
	cl := startCluster(t, sys, n, clusterConfig{
		local: func(i int, part *kwindex.Index) kwindex.Source {
			if i != 1 {
				return part
			}
			return kwindex.NewFailover(brokenSource{}, func() (kwindex.Source, error) { return part, nil }, nil)
		},
	})
	ctx := context.Background()
	for _, kws := range [][]string{{"john", "tv"}, {"anna", "vcr"}, {"maria", "dvd"}} {
		want, err := sys.QueryContext(ctx, kws, 10)
		if err != nil {
			t.Fatal(err)
		}
		cctx, deg := qserve.CaptureDegradation(ctx)
		got, err := cl.coord.QueryContext(cctx, kws, 10)
		if err != nil {
			t.Fatal(err)
		}
		if d := deg(); d != nil {
			t.Fatalf("failover shard caused a degradation note: %+v (its answers are exact)", d)
		}
		mustEqualResults(t, fmt.Sprint(kws), got, want)
	}
	// The shard's own health must still say degraded, surfaced per-shard.
	states := cl.coord.ShardStates()
	if states[1].State != string(core.IndexDegraded) {
		t.Fatalf("failover shard reports state %q, want %q", states[1].State, core.IndexDegraded)
	}
	if got, err := cl.coord.IndexHealthState(); got != core.IndexDegraded {
		t.Fatalf("coordinator health = %v (%v), want degraded", got, err)
	}
}

// TestExecuteFailureReassignsExactly kills one shard's execute endpoint
// only: phase 2 failures are fully recoverable (the request carries the
// merged global postings), so the coordinator must reassign the dead
// shard's cover to survivors and return the EXACT single-node answer
// with no degradation note.
func TestExecuteFailureReassignsExactly(t *testing.T) {
	sys := tpchSystem(t)
	const n = 3
	cl := startCluster(t, sys, n, clusterConfig{
		opts: shard.CoordinatorOptions{BreakerThreshold: 100}, // keep lookups flowing
		wrap: func(i int, h http.Handler) http.Handler {
			if i != 2 {
				return h
			}
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.URL.Path == "/shard/execute" {
					http.Error(w, "injected execute failure", http.StatusInternalServerError)
					return
				}
				h.ServeHTTP(w, r)
			})
		},
	})
	ctx := context.Background()
	want, err := sys.QueryContext(ctx, []string{"john", "tv"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	cctx, deg := qserve.CaptureDegradation(ctx)
	got, err := cl.coord.QueryContext(cctx, []string{"john", "tv"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if d := deg(); d != nil {
		t.Fatalf("recoverable execute failure produced a degradation note: %+v", d)
	}
	mustEqualResults(t, "reassigned", got, want)
	if s := cl.coord.Stats(); s.Reassignments == 0 {
		t.Fatal("no reassignments counted — did the injected failure fire?")
	}
}

// TestKillShardMidSuite kills a shard between queries. The next answer
// must be LOUDLY degraded — non-nil note naming the shard — and a
// subset of the single-node answer, never a silently truncated one
// passed off as complete.
func TestKillShardMidSuite(t *testing.T) {
	sys := tpchSystem(t)
	const n = 3
	cl := startCluster(t, sys, n, clusterConfig{})
	ctx := context.Background()
	kws := []string{"john", "tv"}

	want, err := sys.QueryContext(ctx, kws, 10)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cl.coord.QueryContext(ctx, kws, 10)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualResults(t, "before kill", got, want)

	cl.servers[2].Close() // lights out mid-suite

	cctx, deg := qserve.CaptureDegradation(ctx)
	got, err = cl.coord.QueryContext(cctx, kws, 10)
	if err != nil {
		t.Fatalf("quorum held (2 of 3) — the query must degrade, not fail: %v", err)
	}
	d := deg()
	if d == nil {
		t.Fatal("shard killed but no degradation note: silent partial answer")
	}
	if len(d.Shards) != 1 || d.Shards[0] == "" {
		t.Fatalf("degradation names %v, want the one dead shard", d.Shards)
	}
	wantKeys := map[string]bool{}
	for _, r := range want {
		wantKeys[resultKey(r)] = true
	}
	for _, r := range got {
		if !wantKeys[resultKey(r)] {
			t.Fatalf("degraded answer invented result %s not in the single-node answer", resultKey(r))
		}
	}
	if s := cl.coord.Stats(); s.Degraded == 0 {
		t.Fatal("degraded counter did not move")
	}
}
