package core

import (
	"context"

	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

// ExplainAnalyze answers the query exactly like Query (k > 0, top-k
// nested loops) or QueryAll (k <= 0, automatic strategy) while
// collecting a span per pipeline stage, and returns the per-stage tree:
// duration, input/output cardinality and cache traffic for discovery,
// CN generation, CTSSN reduction, optimization, execution and ranking.
// The query's results are in Explain.Results (count) — use Query/
// QueryAll when the result trees themselves are needed.
func (s *System) ExplainAnalyze(ctx context.Context, keywords []string, k int) (*pipeline.Explain, error) {
	tr := obs.NewTrace()
	q := &pipeline.Query{
		Keywords: keywords,
		Mode:     pipeline.ModeTopK,
		K:        k,
		Strategy: exec.NestedLoop,
		Trace:    tr,
	}
	if k <= 0 {
		q.Mode = pipeline.ModeAll
		q.K = 0
		q.Strategy = exec.AutoStrategy
	}
	if err := s.run(ctx, q); err != nil {
		return nil, err
	}
	return pipeline.NewExplain(q, tr), nil
}
