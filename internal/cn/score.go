package cn

import "repro/internal/xmlgraph"

// The paper ranks results purely by MTNN edge count and names richer
// semantics as future work (§8: "different semantics for keyword
// queries ... going beyond the distance between keywords"). Weights
// implements the natural first step: per-edge-kind costs, so reference
// hops (IDREF jumps across the document) can count differently from
// containment hops (structural nesting).
type Weights struct {
	Containment float64
	Reference   float64
}

// UnitWeights reproduce the paper's semantics: every edge costs 1.
func UnitWeights() Weights { return Weights{Containment: 1, Reference: 1} }

// WeightedSize returns the network's score under w.
func (n *Network) WeightedSize(w Weights) float64 {
	total := 0.0
	for _, e := range n.Edges {
		if e.Kind == xmlgraph.Reference {
			total += w.Reference
		} else {
			total += w.Containment
		}
	}
	return total
}

// WeightedScore returns the CTSSN's score under w, computed over the
// originating candidate network's schema edges. Without a backing CN it
// falls back to the TSS edge count (each edge weight 1).
func (t *TSSNetwork) WeightedScore(w Weights) float64 {
	if t.CN == nil {
		return float64(t.Size())
	}
	return t.CN.WeightedSize(w)
}
