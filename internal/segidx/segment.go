package segidx

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sort"

	"repro/internal/diskindex"
	"repro/internal/kwindex"
)

// A segment pairs an immutable .xki posting file (the same format the
// batch load stage writes, served by the same paged reader) with a
// small meta sidecar recording which target objects the segment owns:
//
//   - docs: the TOs whose documents were written into this segment's
//     postings, each with its presentation summary (so ingested objects
//     keep rendering properly after their document leaves the
//     memtable). A newer segment owning a TO masks every older layer's
//     postings for it (newest wins on update).
//   - tombs: the TOs deleted as of this segment. They mask older
//     layers the same way, but contribute no postings.
//
// Meta file format (version 2, little endian):
//
//	magic "XKS1" | uint32 version
//	uvarint nDocs  | per doc: varint delta-encoded sorted TO id,
//	                 then (v2 only) uvarint len + summary bytes
//	uvarint nTombs | varint delta-encoded sorted TO ids
//	uint32 CRC32 over everything before it
//
// Version 1 files (no summaries) still load; their docs read back with
// empty summaries and presentation falls back to the object graph.
type segment struct {
	id    uint64
	rd    *diskindex.Reader
	docs  map[int64]string
	tombs map[int64]bool
}

// claims reports whether the segment owns the target object.
func (s *segment) claims(to int64) bool {
	if _, ok := s.docs[to]; ok {
		return true
	}
	return s.tombs[to]
}

var segMetaMagic = [4]byte{'X', 'K', 'S', '1'}

const segMetaVersion = 2

// maxSummaryBytes truncates one stored summary; longer ones are display
// strings gone wrong, not data to preserve.
const maxSummaryBytes = 4096

func encodeSegMeta(docs map[int64]string, tombs map[int64]bool) []byte {
	b := make([]byte, 0, 16+9*(len(docs)+len(tombs)))
	b = append(b, segMetaMagic[:]...)
	b = binary.LittleEndian.AppendUint32(b, segMetaVersion)
	ids := make([]int64, 0, len(docs))
	for to := range docs {
		ids = append(ids, to)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	b = binary.AppendUvarint(b, uint64(len(ids)))
	var prev int64
	for _, to := range ids {
		b = binary.AppendVarint(b, to-prev)
		prev = to
		sum := docs[to]
		if len(sum) > maxSummaryBytes {
			sum = sum[:maxSummaryBytes]
		}
		b = binary.AppendUvarint(b, uint64(len(sum)))
		b = append(b, sum...)
	}
	ids = ids[:0]
	for to := range tombs {
		ids = append(ids, to)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	b = binary.AppendUvarint(b, uint64(len(ids)))
	prev = 0
	for _, to := range ids {
		b = binary.AppendVarint(b, to-prev)
		prev = to
	}
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

func decodeSegMeta(b []byte) (docs map[int64]string, tombs map[int64]bool, err error) {
	if len(b) < 12 {
		return nil, nil, fmt.Errorf("segidx: segment meta is %d bytes, too short", len(b))
	}
	if [4]byte(b[0:4]) != segMetaMagic {
		return nil, nil, fmt.Errorf("segidx: bad segment meta magic %q", b[0:4])
	}
	version := binary.LittleEndian.Uint32(b[4:])
	if version != 1 && version != segMetaVersion {
		return nil, nil, fmt.Errorf("segidx: segment meta version %d, want 1 or %d", version, segMetaVersion)
	}
	body, tail := b[:len(b)-4], b[len(b)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail); got != want {
		return nil, nil, fmt.Errorf("segidx: segment meta checksum mismatch (file corrupt)")
	}
	i := 8
	nDocs, adv := binary.Uvarint(body[i:])
	if adv <= 0 {
		return nil, nil, fmt.Errorf("segidx: malformed segment meta count at byte %d", i)
	}
	i += adv
	if nDocs > uint64(len(body)-i) { // each doc takes ≥ 1 byte
		return nil, nil, fmt.Errorf("segidx: segment meta claims %d docs in %d bytes", nDocs, len(body)-i)
	}
	docs = make(map[int64]string, nDocs)
	var prev int64
	for j := uint64(0); j < nDocs; j++ {
		d, adv := binary.Varint(body[i:])
		if adv <= 0 {
			return nil, nil, fmt.Errorf("segidx: malformed segment meta id at byte %d", i)
		}
		i += adv
		prev += d
		sum := ""
		if version >= 2 {
			l, adv := binary.Uvarint(body[i:])
			if adv <= 0 {
				return nil, nil, fmt.Errorf("segidx: malformed summary length at byte %d", i)
			}
			i += adv
			if l > uint64(len(body)-i) {
				return nil, nil, fmt.Errorf("segidx: summary of %d bytes overruns meta at byte %d", l, i)
			}
			sum = string(body[i : i+int(l)])
			i += int(l)
		}
		docs[prev] = sum
	}
	nTombs, adv := binary.Uvarint(body[i:])
	if adv <= 0 {
		return nil, nil, fmt.Errorf("segidx: malformed segment meta count at byte %d", i)
	}
	i += adv
	if nTombs > uint64(len(body)-i) { // each id takes ≥ 1 byte
		return nil, nil, fmt.Errorf("segidx: segment meta claims %d ids in %d bytes", nTombs, len(body)-i)
	}
	tombs = make(map[int64]bool, nTombs)
	prev = 0
	for j := uint64(0); j < nTombs; j++ {
		d, adv := binary.Varint(body[i:])
		if adv <= 0 {
			return nil, nil, fmt.Errorf("segidx: malformed segment meta id at byte %d", i)
		}
		i += adv
		prev += d
		tombs[prev] = true
	}
	if i != len(body) {
		return nil, nil, fmt.Errorf("segidx: %d trailing bytes in segment meta", len(body)-i)
	}
	return docs, tombs, nil
}

// writeSegment serializes postings + ownership to the segment file pair
// crash-safely (both files commit by atomic rename; neither is
// referenced until the manifest commits) and returns the .xki metadata
// CRC, the manifest's fingerprint for the pair.
func writeSegment(xkiPath, metaPath string, postings map[string][]kwindex.Posting, docs map[int64]string, tombs map[int64]bool) (xkiCRC uint32, metaCRC uint32, err error) {
	ix := kwindex.FromPostings(postings)
	xkiCRC, err = diskindex.CreateCRC(xkiPath, ix)
	if err != nil {
		return 0, 0, err
	}
	meta := encodeSegMeta(docs, tombs)
	metaCRC = crc32.ChecksumIEEE(meta)
	if err := writeFileAtomic(metaPath, meta); err != nil {
		return 0, 0, err
	}
	return xkiCRC, metaCRC, nil
}

// openSegment opens one committed segment pair, verifying both files
// against the manifest's recorded fingerprints so a swapped or stale
// file is refused loudly at startup instead of serving wrong postings.
func openSegment(xkiPath, metaPath string, ent manifestSegment, opts diskindex.Options) (*segment, error) {
	rd, err := diskindex.Open(xkiPath, opts)
	if err != nil {
		return nil, err
	}
	if rd.MetaCRC() != ent.XKICRC {
		rd.Close() //xk:ignore errdrop the reader is being abandoned; the fingerprint mismatch is what matters
		return nil, fmt.Errorf("segidx: %s: index fingerprint %#x does not match manifest %#x", xkiPath, rd.MetaCRC(), ent.XKICRC)
	}
	meta, err := os.ReadFile(metaPath)
	if err != nil {
		rd.Close() //xk:ignore errdrop the reader is being abandoned; the read error is what matters
		return nil, err
	}
	if got := crc32.ChecksumIEEE(meta); got != ent.MetaCRC {
		rd.Close() //xk:ignore errdrop the reader is being abandoned; the fingerprint mismatch is what matters
		return nil, fmt.Errorf("segidx: %s: meta fingerprint %#x does not match manifest %#x", metaPath, got, ent.MetaCRC)
	}
	docs, tombs, err := decodeSegMeta(meta)
	if err != nil {
		rd.Close() //xk:ignore errdrop the reader is being abandoned; the decode error is what matters
		return nil, err
	}
	return &segment{id: ent.ID, rd: rd, docs: docs, tombs: tombs}, nil
}
