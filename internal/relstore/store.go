package relstore

import (
	"fmt"
	"sort"
	"sync"
)

// DefaultPoolPages is the default buffer-pool capacity. The paper's
// machine had 1 GB RAM against a multi-hundred-MB database; a pool that
// holds a modest fraction of the benchmark relations reproduces the same
// cache dynamics.
const DefaultPoolPages = 4096

// Store owns a set of connection relations, the target-object BLOBs and
// the shared buffer pool. Reads are safe for concurrent use once loading
// has finished.
type Store struct {
	Pool  *BufferPool
	Stats IOStats

	mu        sync.RWMutex
	relations map[string]*Relation
	blobs     map[int64][]byte
}

// NewStore returns a store with the given buffer-pool capacity in pages
// (<= 0 disables caching).
func NewStore(poolPages int) *Store {
	return &Store{
		Pool:      NewBufferPool(poolPages),
		relations: make(map[string]*Relation),
		blobs:     make(map[int64][]byte),
	}
}

// CreateRelation registers an empty relation with the given attributes.
func (s *Store) CreateRelation(name string, cols []string) (*Relation, error) {
	if name == "" || len(cols) == 0 {
		return nil, fmt.Errorf("relstore: relation needs a name and columns")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.relations[name]; dup {
		return nil, fmt.Errorf("relstore: duplicate relation %q", name)
	}
	r := &Relation{Name: name, Cols: append([]string(nil), cols...), store: s}
	s.relations[name] = r
	return r, nil
}

// Relation returns the named relation, or nil.
func (s *Store) Relation(name string) *Relation {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.relations[name]
}

// Relations returns all relation names, sorted.
func (s *Store) Relations() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.relations))
	for n := range s.relations {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TotalRows returns the summed cardinality of all relations — the space
// cost of a decomposition, which §5.1 trades against join count.
func (s *Store) TotalRows() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, r := range s.relations {
		n += r.NumRows()
	}
	return n
}

// TotalPages returns the summed primary page counts of all relations.
func (s *Store) TotalPages() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, r := range s.relations {
		n += r.NumPages()
	}
	return n
}

// PutBlob stores the serialized target object for id (load stage item 3).
func (s *Store) PutBlob(id int64, blob []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blobs[id] = append([]byte(nil), blob...)
}

// Blob returns the stored target-object BLOB, if present.
func (s *Store) Blob(id int64) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.blobs[id]
	return b, ok
}

// ResetStats zeroes the I/O counters and empties the buffer pool, so a
// benchmark can measure one query in isolation.
func (s *Store) ResetStats() {
	s.Stats = IOStats{}
	s.Pool.Reset()
}
