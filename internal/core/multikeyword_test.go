package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// Three-keyword queries: the paper's experiments fix two keywords, but
// the semantics (§3.1) and the generator handle any number. Verify a
// three-keyword query end-to-end on the Figure 1 data.
func TestThreeKeywordQuery(t *testing.T) {
	s := loadFig1(t, core.Options{Z: 8, MaxKeywords: 3})
	// john (person), us (nations), vcr (parts/product): connected trees
	// exist, e.g. name{john} <- person -> nation{us} plus the lineitem
	// path to a VCR.
	rs, err := s.QueryAll([]string{"john", "us", "vcr"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("no results")
	}
	for _, r := range rs {
		// Every result must contain each keyword on its designated
		// occurrence.
		found := map[string]bool{}
		for i, o := range r.Net.Occs {
			for _, ka := range o.Keywords {
				sum := strings.ToLower(s.Obj.Summary(r.Bind[i]))
				if !strings.Contains(sum, ka.Keyword) {
					t.Fatalf("binding %s lacks keyword %q", sum, ka.Keyword)
				}
				found[ka.Keyword] = true
			}
		}
		for _, k := range []string{"john", "us", "vcr"} {
			if !found[k] {
				t.Fatalf("result misses keyword %q: %s", k, s.RenderResult(r))
			}
		}
	}
	// The best result: john and us are on the SAME person (name+nation
	// merge into one TSS occurrence), so the top tree should be as small
	// as the two-keyword john/vcr best (score 6... plus the us
	// annotation costs one more schema edge: nation adds 1 -> 7).
	if rs[0].Score > 7 {
		t.Fatalf("best three-keyword score = %d, want <= 7:\n%s", rs[0].Score, s.RenderResult(rs[0]))
	}
}

func TestThreeKeywordTopK(t *testing.T) {
	s := loadFig1(t, core.Options{Z: 8, MaxKeywords: 3})
	all, err := s.QueryAll([]string{"john", "us", "vcr"})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := s.Query([]string{"john", "us", "vcr"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := 2
	if len(all) < want {
		want = len(all)
	}
	if len(rs) != want {
		t.Fatalf("top-2 returned %d, want %d", len(rs), want)
	}
}
