package obs

import (
	"sync"
	"time"
)

// Span is one completed pipeline stage of a query: its wall-clock
// duration plus the cardinality and cache behaviour the stage reported.
// Spans are plain values — the caller builds one on the stack and hands
// it to Trace.Add, so a disabled trace records nothing and allocates
// nothing.
type Span struct {
	// Stage is the stage name ("discover", "generate", ...).
	Stage string `json:"stage"`
	// Start is when the stage began.
	Start time.Time `json:"-"`
	// Duration is the stage's wall-clock time in nanoseconds.
	Duration time.Duration `json:"duration_ns"`
	// In and Out are the stage's input and output cardinality (keywords
	// in, candidate networks out, plans in, results out, ...).
	In  int64 `json:"in"`
	Out int64 `json:"out"`
	// CacheHits and CacheMisses count the stage's cache traffic: the CN
	// memo for generation, the executor's lookup cache for execution.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// Cached marks a stage whose whole output came from a cache.
	Cached bool `json:"cached,omitempty"`
	// Note carries a short stage-specific annotation (e.g. the execution
	// mode), for the EXPLAIN ANALYZE rendering.
	Note string `json:"note,omitempty"`
}

// Trace collects the spans of one query. The zero value is not used
// directly: call NewTrace for an enabled trace, or keep a nil *Trace for
// a disabled one — every method is nil-safe and a disabled trace costs
// no allocations and no synchronization on the query path.
type Trace struct {
	mu    sync.Mutex
	began time.Time
	spans []Span
}

// NewTrace starts an enabled trace.
func NewTrace() *Trace {
	return &Trace{began: time.Now()}
}

// Enabled reports whether spans are being collected.
func (t *Trace) Enabled() bool { return t != nil }

// Add appends a completed span. No-op on a disabled (nil) trace.
func (t *Trace) Add(sp Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
}

// Spans returns a copy of the collected spans in completion order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Elapsed is the wall-clock time since the trace started.
func (t *Trace) Elapsed() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.began)
}
