package banks_test

import (
	"testing"

	"repro/internal/banks"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/xmlgraph"
)

func fig1Searcher(t *testing.T) (*banks.Searcher, *datagen.Dataset) {
	t.Helper()
	ds, err := datagen.TPCHFigure1()
	if err != nil {
		t.Fatal(err)
	}
	return banks.NewSearcher(ds.Data), ds
}

func TestSearchIntroExample(t *testing.T) {
	s, ds := fig1Searcher(t)
	trees, err := s.Search([]string{"john", "vcr"}, banks.Options{MaxScore: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) == 0 {
		t.Fatal("no trees")
	}
	// The best connection has 6 edges, like XKeyword's best MTNN.
	if trees[0].Score != 6 {
		t.Fatalf("best score = %d, want 6", trees[0].Score)
	}
	for i := 1; i < len(trees); i++ {
		if trees[i-1].Score > trees[i].Score {
			t.Fatal("trees not sorted")
		}
	}
	// Every tree is a valid connected acyclic subgraph containing both
	// keywords.
	for _, tr := range trees {
		sub := xmlgraph.Subgraph{Nodes: tr.Nodes, Edges: tr.Edges}
		if !sub.IsUncycled() || !sub.IsConnected() {
			t.Fatalf("invalid tree %v", tr.Nodes)
		}
		var hasJohn, hasVCR bool
		for _, id := range tr.Nodes {
			n := ds.Data.Node(id)
			switch n.Value {
			case "John":
				hasJohn = true
			}
			if n.Value == "VCR" || n.Value == "set of VCR and DVD" {
				hasVCR = true
			}
		}
		if !hasJohn || !hasVCR {
			t.Fatalf("tree misses a keyword: john=%v vcr=%v", hasJohn, hasVCR)
		}
	}
}

// The baseline and XKeyword agree on the best proximity score — both
// find the shortest connection, even though the baseline works on the
// raw data graph and XKeyword on schema-derived connection relations.
func TestAgreesWithXKeywordOnBestScore(t *testing.T) {
	ds, err := datagen.TPCHFigure1()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.LoadPrepared(&core.Prepared{Schema: ds.Schema, TSS: ds.TSS, Data: ds.Data, Obj: ds.Obj},
		core.Options{Z: 8})
	if err != nil {
		t.Fatal(err)
	}
	s := banks.NewSearcher(ds.Data)
	for _, q := range [][]string{{"john", "vcr"}, {"us", "vcr"}, {"tv", "vcr"}, {"mike", "dvd"}} {
		xk, err := sys.QueryAll(q)
		if err != nil {
			t.Fatal(err)
		}
		bk, err := s.Search(q, banks.Options{MaxScore: 8})
		if err != nil {
			t.Fatal(err)
		}
		if (len(xk) == 0) != (len(bk) == 0) {
			t.Fatalf("%v: xkeyword %d results, banks %d", q, len(xk), len(bk))
		}
		if len(xk) == 0 {
			continue
		}
		if xk[0].Score != bk[0].Score {
			t.Fatalf("%v: best scores differ: xkeyword %d, banks %d", q, xk[0].Score, bk[0].Score)
		}
	}
}

func TestSearchThreeKeywords(t *testing.T) {
	s, _ := fig1Searcher(t)
	trees, err := s.Search([]string{"john", "us", "vcr"}, banks.Options{MaxScore: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) == 0 {
		t.Fatal("no trees for three keywords")
	}
	if trees[0].Score > 7 {
		t.Fatalf("best three-keyword score = %d", trees[0].Score)
	}
}

func TestSearchValidation(t *testing.T) {
	s, _ := fig1Searcher(t)
	if _, err := s.Search(nil, banks.Options{}); err == nil {
		t.Fatal("empty query accepted")
	}
	if _, err := s.Search([]string{"  "}, banks.Options{}); err == nil {
		t.Fatal("blank keyword accepted")
	}
	trees, err := s.Search([]string{"john", "doesnotexist"}, banks.Options{})
	if err != nil || trees != nil {
		t.Fatalf("absent keyword: %v, %v", trees, err)
	}
}

func TestSearchTopK(t *testing.T) {
	s, _ := fig1Searcher(t)
	all, err := s.Search([]string{"us", "vcr"}, banks.Options{MaxScore: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 2 {
		t.Skip("not enough trees")
	}
	top, err := s.Search([]string{"us", "vcr"}, banks.Options{MaxScore: 8, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 1 {
		t.Fatalf("K=1 returned %d", len(top))
	}
}

func TestMaxScoreBound(t *testing.T) {
	s, _ := fig1Searcher(t)
	trees, err := s.Search([]string{"john", "vcr"}, banks.Options{MaxScore: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range trees {
		if tr.Score > 5 {
			t.Fatalf("tree of score %d exceeds bound", tr.Score)
		}
	}
}
