// Package core is the XKeyword system facade: it wires the load stage —
// schema conformance, target decomposition, master index, statistics,
// target-object BLOBs and connection-relation materialization — and the
// query stage — CN generation, CTSSN reduction, plan optimization and
// execution (paper §4, Figure 7).
package core

import (
	"fmt"
	"sync"

	"repro/internal/decomp"
	"repro/internal/kwindex"
	"repro/internal/pipeline"
	"repro/internal/rank"
	"repro/internal/relstore"
	"repro/internal/schema"
	"repro/internal/tss"
	"repro/internal/xmlgraph"
)

// DecompositionPreset selects the §7 decomposition variant to build.
type DecompositionPreset string

const (
	// PresetXKeyword is the inlined, non-MVD-where-possible decomposition
	// of Figure 12 plus the minimal single-edge fragments (the default).
	PresetXKeyword DecompositionPreset = "xkeyword"
	// PresetComplete materializes every fragment of size up to L.
	PresetComplete DecompositionPreset = "complete"
	// PresetMinClust is minimal with all clusterings.
	PresetMinClust DecompositionPreset = "minclust"
	// PresetMinNClustIndx is minimal with hash indexes only.
	PresetMinNClustIndx DecompositionPreset = "minnclustindx"
	// PresetMinNClustNIndx is minimal with no physical design at all.
	PresetMinNClustNIndx DecompositionPreset = "minnclustnindx"
)

// Options configure Load.
type Options struct {
	// Z is the maximum MTNN size of interest (default 6).
	Z int
	// B is the join budget per CTSSN (default 2).
	B int
	// MaxKeywords sizes the CTSSN bound M = f(Z) (default 2).
	MaxKeywords int
	// Decomposition preset (default PresetXKeyword).
	Decomposition DecompositionPreset
	// PoolPages is the buffer-pool capacity (default relstore's).
	PoolPages int
	// CacheSize bounds the executor's lookup cache in entries; 0 means
	// unlimited, negative disables caching (the naive algorithm).
	CacheSize int
	// Workers is the top-k thread pool size (default 4).
	Workers int
	// SkipBlobs skips target-object BLOB construction (benchmarks).
	SkipBlobs bool
	// StrictMinimal drops results that violate the strict MTNN
	// minimality of §3.1 (a leaf whose keywords already appear in
	// another bound target object). Off by default, matching the
	// paper's system (and DISCOVER/DBXplorer), which emit them.
	StrictMinimal bool
	// Scorer names the default result scorer (rank.Names; "" means
	// edgecount, the paper's ranking). Validated at load time; a query
	// may override it per call via the QueryScored entry points.
	Scorer string
	// Relax lets the pipeline rewrite no-match keywords (substitute or
	// drop, loudly recorded in the returned Relaxation) instead of
	// returning zero results. Off by default.
	Relax bool
}

func (o *Options) defaults() {
	if o.Z == 0 {
		o.Z = 6
	}
	if o.B == 0 {
		o.B = 2
	}
	if o.MaxKeywords == 0 {
		o.MaxKeywords = 2
	}
	if o.Decomposition == "" {
		o.Decomposition = PresetXKeyword
	}
	if o.PoolPages == 0 {
		o.PoolPages = relstore.DefaultPoolPages
	}
	if o.Workers == 0 {
		o.Workers = 4
	}
}

// System is a loaded XKeyword instance.
type System struct {
	Schema *schema.Graph
	TSS    *tss.Graph
	Data   *xmlgraph.Graph
	Obj    *tss.ObjectGraph
	Store  *relstore.Store
	// Index is the master index backend (see PostingSource). Load builds
	// the in-memory index; persist and the cmds swap in a disk-backed
	// reader when -disk-index is set.
	Index  PostingSource
	Stats  *tss.Stats
	Decomp *decomp.Decomposition
	// M is the CTSSN size bound f(Z) the decomposition was built for.
	M    int
	Opts Options

	// netMemo caches generated candidate networks per keyword-shape
	// signature. It lives on the System (not in a package global) so the
	// memo is released with the System and cannot grow for the life of
	// the process when many systems are loaded. Lazily initialized by
	// memo(): Systems are also built by struct literal outside this
	// package (e.g. internal/persist), which cannot set unexported
	// fields.
	netMemo  *netMemo
	memoOnce sync.Once

	// metrics accumulates per-stage pipeline statistics across every
	// query this System serves (/debug/pipeline). Lazily initialized by
	// PipelineMetrics for the same struct-literal reason as netMemo.
	metrics     *pipeline.Metrics
	metricsOnce sync.Once
}

// IndexHealth classifies the master-index backend's state for the
// serving layer's health endpoint.
type IndexHealth string

const (
	// IndexOK: the backend is serving normally.
	IndexOK IndexHealth = "ok"
	// IndexDegraded: the primary backend failed but a fallback (rebuilt
	// in-memory index) is answering correctly. Results are right; latency
	// and memory footprint may not be.
	IndexDegraded IndexHealth = "degraded"
	// IndexUnavailable: the backend has failed and no fallback exists —
	// lookups return empty results that must not be trusted.
	IndexUnavailable IndexHealth = "unavailable"
)

// IndexHealthState reports the index backend's health and the first
// error behind a non-ok state. A bare fallible backend (disk reader
// without failover) that has recorded an error is unavailable: its
// lookups return silently empty results, which the serving layer must
// refuse to pass off as answers.
func (s *System) IndexHealthState() (IndexHealth, error) {
	return SourceHealth(s.Index)
}

// SourceHealth classifies any index source's health — the shared logic
// behind IndexHealthState, also used by shard servers for their
// partition source.
func SourceHealth(src kwindex.Source) (IndexHealth, error) {
	switch ix := src.(type) {
	case *kwindex.Failover:
		if !ix.Degraded() {
			return IndexOK, nil
		}
		if rerr := ix.RebuildErr(); rerr != nil {
			return IndexUnavailable, fmt.Errorf("primary failed (%v); rebuild failed: %w", ix.Err(), rerr)
		}
		if !ix.Healed() {
			return IndexUnavailable, ix.Err()
		}
		return IndexDegraded, ix.Err()
	case interface{ Err() error }:
		if err := ix.Err(); err != nil {
			return IndexUnavailable, err
		}
	}
	return IndexOK, nil
}

// PipelineMetrics returns the System's cumulative per-stage pipeline
// counters, creating the sink on first use.
func (s *System) PipelineMetrics() *pipeline.Metrics {
	s.metricsOnce.Do(func() {
		if s.metrics == nil {
			s.metrics = pipeline.NewMetrics()
		}
	})
	return s.metrics
}

// PipelineSnapshot captures the current per-stage pipeline counters —
// the qserve serving layer embeds it into its stats snapshot so cached
// and executed queries are distinguishable.
func (s *System) PipelineSnapshot() pipeline.Snapshot {
	return s.PipelineMetrics().Snapshot()
}

// memo returns the System's CN memo, creating it on first use.
func (s *System) memo() *netMemo {
	s.memoOnce.Do(func() {
		if s.netMemo == nil {
			s.netMemo = newNetMemo(netMemoCap)
		}
	})
	return s.netMemo
}

// Load runs the load stage of Figure 7 over a typed or untyped data
// graph: conformance/type assignment, TSS derivation, target
// decomposition, master index, statistics, BLOBs, and connection
// relation materialization under the chosen decomposition preset.
func Load(sg *schema.Graph, spec tss.Spec, data *xmlgraph.Graph, opts Options) (*System, error) {
	opts.defaults()
	if err := sg.Assign(data); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	tg, err := tss.Derive(sg, spec)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	og, err := tg.Decompose(data)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return LoadPrepared(&Prepared{Schema: sg, TSS: tg, Data: data, Obj: og}, opts)
}

// Prepared bundles an already-decomposed dataset, so several systems
// (e.g. one per decomposition preset) can share the load-stage graphs.
type Prepared struct {
	Schema *schema.Graph
	TSS    *tss.Graph
	Data   *xmlgraph.Graph
	Obj    *tss.ObjectGraph
}

// LoadPrepared builds a System over an already-decomposed dataset.
func LoadPrepared(p *Prepared, opts Options) (*System, error) {
	opts.defaults()
	if opts.Z < 0 || opts.B < 0 || opts.MaxKeywords < 0 || opts.Workers < 0 {
		return nil, fmt.Errorf("core: negative option (Z=%d B=%d MaxKeywords=%d Workers=%d)",
			opts.Z, opts.B, opts.MaxKeywords, opts.Workers)
	}
	if p == nil || p.Schema == nil || p.TSS == nil || p.Data == nil || p.Obj == nil {
		return nil, fmt.Errorf("core: incomplete prepared dataset")
	}
	if _, err := rank.New(opts.Scorer); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	s := &System{
		Schema: p.Schema,
		TSS:    p.TSS,
		Data:   p.Data,
		Obj:    p.Obj,
		Store:  relstore.NewStore(opts.PoolPages),
		Opts:   opts,
	}
	s.Index = kwindex.Build(s.Obj)
	s.Stats = s.Obj.CollectStats()
	s.M = SizeBound(s.TSS, s.Data, opts.Z, opts.MaxKeywords)

	var d *decomp.Decomposition
	var err error
	switch opts.Decomposition {
	case PresetXKeyword:
		d, err = decomp.XKeyword(s.TSS, s.M, opts.B)
	case PresetComplete:
		d = decomp.Complete(s.TSS, decomp.JoinBound(s.M, opts.B))
	case PresetMinClust:
		d = decomp.MinClust(s.TSS)
	case PresetMinNClustIndx:
		d = decomp.MinNClustIndx(s.TSS)
	case PresetMinNClustNIndx:
		d = decomp.MinNClustNIndx(s.TSS)
	default:
		err = fmt.Errorf("core: unknown decomposition preset %q", opts.Decomposition)
	}
	if err != nil {
		return nil, err
	}
	s.Decomp = d
	if err := decomp.Materialize(s.Store, s.Obj, d); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if !opts.SkipBlobs {
		for _, id := range s.Obj.Objects() {
			blob, err := s.Obj.BlobXML(id)
			if err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
			s.Store.PutBlob(id, blob)
		}
	}
	return s, nil
}

// SizeBound computes M = f(Z): the maximum CTSSN size a CN of size Z can
// reduce to, assuming keywords match element values. Every valued schema
// node sits at some containment depth below its segment head; each of
// the (up to MaxKeywords) keyword endpoints spends at least the minimal
// such depth on intra-segment edges, which vanish in the reduction. For
// the DBLP graph of Figure 14 this gives f(8) = 8 - 2 = 6, as in §7.
// Keywords matching element tags of segment heads can exceed the bound;
// the optimizer then falls back to more than B joins.
func SizeBound(tg *tss.Graph, data *xmlgraph.Graph, z, maxKeywords int) int {
	depth := make(map[string]int) // schema node -> intra-segment depth
	for _, segName := range tg.Segments() {
		seg := tg.Segment(segName)
		depth[seg.Head] = 0
		// BFS down intra-segment containment.
		queue := []string{seg.Head}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, e := range tg.Schema.Out(cur) {
				if tg.SegmentOf(e.To) == segName {
					if _, seen := depth[e.To]; !seen {
						depth[e.To] = depth[cur] + 1
						queue = append(queue, e.To)
					}
				}
			}
		}
	}
	minValueDepth := -1
	for _, id := range data.Nodes() {
		n := data.Node(id)
		if n.Value == "" {
			continue
		}
		if d, ok := depth[n.Type]; ok {
			if minValueDepth < 0 || d < minValueDepth {
				minValueDepth = d
			}
			if minValueDepth == 0 {
				break
			}
		}
	}
	if minValueDepth < 0 {
		minValueDepth = 0
	}
	m := z - maxKeywords*minValueDepth
	if m < 1 {
		m = 1
	}
	return m
}
