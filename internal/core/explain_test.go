package core_test

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"sync"
	"testing"

	"repro/internal/core"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

var (
	// Duration tokens ("12µs", "1.234ms", "0s") are the only
	// run-to-run-variable part of the explain output.
	durRe   = regexp.MustCompile(`\d+(\.\d+)?(ns|µs|ms|s)`)
	spaceRe = regexp.MustCompile(` +`)
)

// normalizeExplain blanks durations and collapses the padding that
// tracks their width, leaving structure, cardinalities and cache
// counters to compare exactly.
func normalizeExplain(s string) string {
	return spaceRe.ReplaceAllString(durRe.ReplaceAllString(s, "<dur>"), " ")
}

// TestExplainAnalyzeGolden locks the -explain-analyze textual output
// for the paper's Figure 1 query. Workers: 1 keeps the execute stage
// sequential, so lookup-cache hit/miss counts are deterministic; a
// fresh System makes the first run a memo miss. Regenerate with
// go test ./internal/core/ -run ExplainAnalyzeGolden -update
func TestExplainAnalyzeGolden(t *testing.T) {
	s := loadFig1(t, core.Options{Z: 8, Workers: 1})
	expl, err := s.ExplainAnalyze(context.Background(), []string{"john", "vcr"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	got := normalizeExplain(expl.Format())

	golden := filepath.Join("testdata", "explain_fig1.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("explain output drifted from golden file\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// A second identical query must hit the CN memo.
	expl2, err := s.ExplainAnalyze(context.Background(), []string{"john", "vcr"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range expl2.Stages {
		if sp.Stage == "generate" && !sp.Cached {
			t.Error("second run did not hit the CN memo")
		}
	}
	// Same answer either way.
	if expl2.Results != expl.Results || expl2.Networks != expl.Networks {
		t.Errorf("memo-hit run differs: %d/%d results, %d/%d networks",
			expl2.Results, expl.Results, expl2.Networks, expl.Networks)
	}
}

// TestExplainAnalyzeAll covers the k<=0 path (QueryAll semantics).
func TestExplainAnalyzeAll(t *testing.T) {
	s := loadFig1(t, core.Options{Z: 8})
	expl, err := s.ExplainAnalyze(context.Background(), []string{"john", "vcr"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if expl.Mode != "all" {
		t.Fatalf("mode = %q, want all", expl.Mode)
	}
	all, err := s.QueryAll([]string{"john", "vcr"})
	if err != nil {
		t.Fatal(err)
	}
	if expl.Results != len(all) {
		t.Fatalf("explain reports %d results, QueryAll returns %d", expl.Results, len(all))
	}
}

// TestConcurrentQueryAndStream hammers one System with interleaved
// Query and QueryStream calls — the serving pattern — exercising the
// shared netMemo, metrics sink and per-query lookup caches through the
// pipeline. Run under -race in CI.
func TestConcurrentQueryAndStream(t *testing.T) {
	s := loadFig1(t, core.Options{Z: 8})
	want, err := s.Query([]string{"john", "vcr"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if (w+i)%2 == 0 {
					rs, err := s.Query([]string{"john", "vcr"}, 5)
					if err != nil {
						errs <- err
						return
					}
					if len(rs) != len(want) {
						errs <- nil
						return
					}
				} else {
					st, err := s.QueryStream([]string{"us", "vcr"})
					if err != nil {
						errs <- err
						return
					}
					n := 0
					for {
						page := st.Next(4)
						n += len(page)
						if len(page) < 4 {
							break
						}
					}
					st.Close()
					if n == 0 {
						errs <- nil
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent query/stream failed: %v", err)
	}
	snap := s.PipelineSnapshot()
	if snap.Queries < 32 {
		t.Fatalf("metrics counted %d queries, want >= 32", snap.Queries)
	}
	if snap.ByMode["topk"] == 0 || snap.ByMode["stream"] == 0 {
		t.Fatalf("by-mode counters missing a mode: %v", snap.ByMode)
	}
}
