// Package xsd parses a practical subset of XML Schema — the standard
// the paper's schema graphs are modeled on (§3, [22]) — into schema
// graphs. Supported constructs:
//
//	<xs:element name="..."> with inline <xs:complexType>
//	<xs:sequence> / <xs:choice> of <xs:element ref="..."/> or
//	  <xs:element name="..." type="xs:string"/> (inline leaf children)
//	minOccurs / maxOccurs (numbers or "unbounded")
//	<xs:attribute type="xs:ID"/> and type="xs:IDREF"
//
// Like DTDs, XML Schema leaves IDREF targets untyped; the caller
// supplies them through Options.RefTargets (the paper's schema graphs
// have *typed* references, which is exactly this extra input).
package xsd

import (
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/schema"
	"repro/internal/xmlgraph"
)

// Options configure the translation (same contract as package dtd).
type Options struct {
	RefTargets map[string]string
	Roots      []string
}

// xsdSchema mirrors the XSD document structure we accept.
type xsdSchema struct {
	XMLName  xml.Name     `xml:"schema"`
	Elements []xsdElement `xml:"element"`
}

type xsdElement struct {
	Name        string          `xml:"name,attr"`
	Ref         string          `xml:"ref,attr"`
	Type        string          `xml:"type,attr"`
	MinOccurs   string          `xml:"minOccurs,attr"`
	MaxOccurs   string          `xml:"maxOccurs,attr"`
	ComplexType *xsdComplexType `xml:"complexType"`
}

type xsdComplexType struct {
	Sequence   *xsdGroup      `xml:"sequence"`
	Choice     *xsdGroup      `xml:"choice"`
	Attributes []xsdAttribute `xml:"attribute"`
}

type xsdGroup struct {
	Elements []xsdElement `xml:"element"`
}

type xsdAttribute struct {
	Name string `xml:"name,attr"`
	Type string `xml:"type,attr"`
}

// Parse reads an XSD document and builds the schema graph.
func Parse(r io.Reader, opts Options) (*schema.Graph, error) {
	var doc xsdSchema
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("xsd: %w", err)
	}
	if len(doc.Elements) == 0 {
		return nil, fmt.Errorf("xsd: no top-level element declarations")
	}
	g := schema.New()
	type pendingEdge struct {
		from, to  string
		maxOccurs int
	}
	var edges []pendingEdge
	var refs []string // elements with IDREF attributes
	referenced := make(map[string]bool)
	declared := make(map[string]bool)

	// Two passes: declare nodes (top-level and inline leaves), then edges.
	var declare func(el xsdElement, parent string) error
	declare = func(el xsdElement, parent string) error {
		name := el.Name
		if name == "" {
			return fmt.Errorf("xsd: element without a name under %q", parent)
		}
		if declared[name] {
			return fmt.Errorf("xsd: duplicate element %q", name)
		}
		declared[name] = true
		kind := schema.All
		if el.ComplexType != nil && el.ComplexType.Choice != nil {
			if el.ComplexType.Sequence != nil {
				return fmt.Errorf("xsd: element %q mixes sequence and choice", name)
			}
			kind = schema.Choice
		}
		if err := g.AddNode(name, kind); err != nil {
			return err
		}
		if el.ComplexType == nil {
			return nil
		}
		for _, a := range el.ComplexType.Attributes {
			if strings.HasSuffix(a.Type, "IDREF") || strings.HasSuffix(a.Type, "IDREFS") {
				refs = append(refs, name)
			}
		}
		group := el.ComplexType.Sequence
		if group == nil {
			group = el.ComplexType.Choice
		}
		if group == nil {
			return nil
		}
		for _, child := range group.Elements {
			target := child.Ref
			if target == "" {
				// Inline child: declare it as a leaf (or nested complex).
				if child.Name == "" {
					return fmt.Errorf("xsd: child of %q has neither name nor ref", name)
				}
				target = child.Name
				if !declared[target] {
					if err := declare(child, name); err != nil {
						return err
					}
				}
			}
			max, err := parseOccurs(child.MaxOccurs)
			if err != nil {
				return fmt.Errorf("xsd: element %q child %q: %w", name, target, err)
			}
			edges = append(edges, pendingEdge{from: name, to: target, maxOccurs: max})
			referenced[target] = true
		}
		return nil
	}
	for _, el := range doc.Elements {
		if el.Name == "" {
			return nil, fmt.Errorf("xsd: top-level element without a name")
		}
		if declared[el.Name] {
			return nil, fmt.Errorf("xsd: duplicate element %q", el.Name)
		}
		if err := declare(el, ""); err != nil {
			return nil, err
		}
	}
	for _, e := range edges {
		if g.Node(e.to) == nil {
			return nil, fmt.Errorf("xsd: element %q references undeclared %q", e.from, e.to)
		}
		if err := g.AddEdge(e.from, e.to, xmlgraph.Containment, e.maxOccurs); err != nil {
			return nil, err
		}
	}
	for _, el := range refs {
		target, ok := opts.RefTargets[el]
		if !ok {
			return nil, fmt.Errorf("xsd: element %q has an IDREF attribute; add it to RefTargets", el)
		}
		if g.Node(target) == nil {
			return nil, fmt.Errorf("xsd: IDREF %q -> %q names an undeclared element", el, target)
		}
		if err := g.AddEdge(el, target, xmlgraph.Reference, 1); err != nil {
			return nil, err
		}
	}
	roots := opts.Roots
	if len(roots) == 0 {
		for _, el := range doc.Elements {
			if !referenced[el.Name] {
				roots = append(roots, el.Name)
			}
		}
	}
	if len(roots) == 0 {
		return nil, fmt.Errorf("xsd: no root elements")
	}
	for _, root := range roots {
		if err := g.SetRoot(root); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// ParseString is Parse over an in-memory document.
func ParseString(doc string, opts Options) (*schema.Graph, error) {
	return Parse(strings.NewReader(doc), opts)
}

func parseOccurs(s string) (int, error) {
	switch s {
	case "", "1", "0":
		// minOccurs handling is out of scope; maxOccurs "" or "1" is 1.
		// "0" as maxOccurs would make the child unusable; treat as error.
		if s == "0" {
			return 0, fmt.Errorf("maxOccurs 0 is not supported")
		}
		return 1, nil
	case "unbounded":
		return schema.Unbounded, nil
	default:
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			return 0, fmt.Errorf("bad maxOccurs %q", s)
		}
		return n, nil
	}
}
