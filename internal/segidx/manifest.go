package segidx

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"repro/internal/atomicio"
)

// The manifest is the store's single source of truth: the ordered live
// segment set (oldest first), the WAL floor (the lowest log sequence
// whose operations are NOT yet covered by a committed segment), and the
// id allocator's high-water mark. It is rewritten in full through
// atomicio.WriteFile, so the atomic rename IS the commit point of every
// flush and compaction: a kill anywhere before it leaves the previous
// manifest — and therefore the previous consistent view — in force,
// with the not-yet-referenced new files swept as garbage on reopen.
//
// File format (version 1, little endian):
//
//	magic "XKMF" | uint32 version
//	uvarint walFloor | uvarint nextID | uvarint nSegments
//	per segment: uvarint id | uvarint xkiCRC | uvarint metaCRC
//	uint32 CRC32 over everything before it
type manifest struct {
	// WALFloor is the active log's sequence at the last flush commit;
	// logs below it are fully contained in committed segments.
	WALFloor uint64
	// NextID is strictly above every id ever handed out; reopening takes
	// the max of this and the ids actually seen on disk, so a crashed
	// flush can never cause an id to be reused.
	NextID uint64
	// Segments is the live set, oldest first.
	Segments []manifestSegment
}

// manifestSegment records one live segment and the fingerprints its
// files must match at open.
type manifestSegment struct {
	ID      uint64
	XKICRC  uint32 // the .xki metadata CRC diskindex.CreateCRC reported
	MetaCRC uint32 // CRC32 of the meta sidecar's bytes
}

var manifestMagic = [4]byte{'X', 'K', 'M', 'F'}

const manifestVersion = 1

func (m *manifest) encode() []byte {
	b := make([]byte, 0, 32+16*len(m.Segments))
	b = append(b, manifestMagic[:]...)
	b = binary.LittleEndian.AppendUint32(b, manifestVersion)
	b = binary.AppendUvarint(b, m.WALFloor)
	b = binary.AppendUvarint(b, m.NextID)
	b = binary.AppendUvarint(b, uint64(len(m.Segments)))
	for _, s := range m.Segments {
		b = binary.AppendUvarint(b, s.ID)
		b = binary.AppendUvarint(b, uint64(s.XKICRC))
		b = binary.AppendUvarint(b, uint64(s.MetaCRC))
	}
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

func decodeManifest(b []byte) (*manifest, error) {
	if len(b) < 12 {
		return nil, fmt.Errorf("segidx: manifest is %d bytes, too short", len(b))
	}
	if [4]byte(b[0:4]) != manifestMagic {
		return nil, fmt.Errorf("segidx: bad manifest magic %q", b[0:4])
	}
	if v := binary.LittleEndian.Uint32(b[4:]); v != manifestVersion {
		return nil, fmt.Errorf("segidx: manifest version %d, want %d", v, manifestVersion)
	}
	body, tail := b[:len(b)-4], b[len(b)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail); got != want {
		return nil, fmt.Errorf("segidx: manifest checksum mismatch (file corrupt)")
	}
	i := 8
	next := func() (uint64, error) {
		v, adv := binary.Uvarint(body[i:])
		if adv <= 0 {
			return 0, fmt.Errorf("segidx: malformed manifest varint at byte %d", i)
		}
		i += adv
		return v, nil
	}
	m := &manifest{}
	var err error
	if m.WALFloor, err = next(); err != nil {
		return nil, err
	}
	if m.NextID, err = next(); err != nil {
		return nil, err
	}
	n, err := next()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(body)-i) { // each entry takes ≥ 3 bytes
		return nil, fmt.Errorf("segidx: manifest claims %d segments in %d bytes", n, len(body)-i)
	}
	for k := uint64(0); k < n; k++ {
		var s manifestSegment
		if s.ID, err = next(); err != nil {
			return nil, err
		}
		xki, err := next()
		if err != nil {
			return nil, err
		}
		meta, err := next()
		if err != nil {
			return nil, err
		}
		if xki > 0xFFFFFFFF || meta > 0xFFFFFFFF {
			return nil, fmt.Errorf("segidx: manifest segment %d CRC exceeds 32 bits", s.ID)
		}
		s.XKICRC, s.MetaCRC = uint32(xki), uint32(meta)
		if len(m.Segments) > 0 && m.Segments[len(m.Segments)-1].ID >= s.ID {
			return nil, fmt.Errorf("segidx: manifest segment ids not strictly ascending at %d", s.ID)
		}
		m.Segments = append(m.Segments, s)
	}
	if i != len(body) {
		return nil, fmt.Errorf("segidx: %d trailing bytes in manifest", len(body)-i)
	}
	return m, nil
}

// commitManifest atomically replaces the manifest file; its return is
// the flush/compaction commit point.
func commitManifest(path string, m *manifest) error {
	return writeFileAtomic(path, m.encode())
}

// loadManifest reads and validates the manifest; a missing file means a
// fresh store (nil manifest, no error).
func loadManifest(path string) (*manifest, error) {
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	m, err := decodeManifest(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// writeFileAtomic commits bytes through the repo's crash-safe write
// protocol (same-directory temp, fsync, rename, directory fsync).
func writeFileAtomic(path string, b []byte) error {
	return atomicio.WriteFile(path, func(f *os.File) error {
		_, err := f.Write(b)
		return err
	})
}
