package exec

import (
	"context"
	"sort"
	"sync"

	"repro/internal/optimizer"
)

// TopKOptions configure the thread-pool top-k evaluation of §6.
type TopKOptions struct {
	K        int
	Workers  int // pool size; default 4
	Strategy Strategy
}

// Planned pairs a plan with the CN it came from, for bookkeeping.
type Planned struct {
	Plan *optimizer.Plan
}

// TopKPlans evaluates the plans (which must be sorted by ascending
// score, as the CN generator emits them) with a pool of workers, one
// plan per worker starting from the smallest networks, and stops once K
// results have been produced in total. Results are returned sorted by
// score.
//
// Because smaller networks need less execution time and produce
// higher-ranked results, assigning threads smallest-first yields the
// paper's fast first-response behaviour (§6).
func TopKPlans(ex *Executor, plans []Planned, opts TopKOptions) []Result {
	out, _ := TopKPlansContext(context.Background(), ex, plans, opts)
	return out
}

// TopKPlansContext is TopKPlans with cooperative cancellation: workers
// poll ctx inside their join loops, so a cancelled context stops all
// in-flight evaluations and the call returns ctx's error along with
// whatever results were produced before the cancellation.
//
// Top-K correctness: every result of a plan carries that plan's network
// score, and plans are handed out in ascending score order, so (a) a
// plan never needs to emit more than K results, and (b) once K results
// exist, plans not yet handed out can only tie — never beat — the
// collected ones (same-score results from a later plan order after
// them in the canonical (Score, Ord) order). A handed-out plan may
// still beat — or tie-break ahead of — results produced concurrently by
// later plans, so a worker skips its plan only when K results that
// canonically precede the plan's smallest possible result already
// exist, never merely because K results exist. That makes the returned
// result list deterministic where a first-K-results-win stop would
// depend on scheduling.
func TopKPlansContext(ctx context.Context, ex *Executor, plans []Planned, opts TopKOptions) ([]Result, error) {
	if opts.K <= 0 {
		return nil, ctx.Err()
	}
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	var col topkCollector
	type fed struct {
		p   Planned
		idx int // position in the ascending-score plan list, for Ord
	}
	next := make(chan fed)
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for f := range next {
				if col.countBeating(f.p.Plan.Net.Score(), MakeOrd(f.idx, 0)) >= opts.K || ctx.Err() != nil {
					continue // drain; K canonically-smaller results already exist
				}
				n := 0
				// The only error RunContext can return is ctx's, which the
				// ctx.Err() check after wg.Wait() reports for all workers.
				_ = ex.RunContext(ctx, f.p.Plan, opts.Strategy, func(r Result) bool {
					r.Ord = MakeOrd(f.idx, n)
					col.add(r)
					n++
					return n < opts.K
				})
			}
		}()
	}
feed:
	for i, p := range plans {
		if col.count() >= opts.K {
			break
		}
		select {
		case next <- fed{p: p, idx: i}:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	results := col.take()
	if err := ctx.Err(); err != nil {
		return results, err
	}
	// Sort by the canonical (Score, Ord) total order, not merely by
	// score: the collected set is a superset of the canonical top-K (the
	// skip rule only drops plans that K at-or-below-score results already
	// beat or tie), so sorting canonically and truncating yields exactly
	// the K canonically-smallest results regardless of worker scheduling.
	sort.Slice(results, func(i, j int) bool { return OrdLess(results[i], results[j]) })
	if len(results) > opts.K {
		results = results[:opts.K]
	}
	return results, nil
}

// topkCollector is the workers' shared result sink.
type topkCollector struct {
	mu      sync.Mutex
	results []Result // guarded by mu
}

func (c *topkCollector) add(r Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.results = append(c.results, r)
}

func (c *topkCollector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.results)
}

// countBeating reports how many collected results canonically precede
// (score, ord) — where ord is a plan's smallest possible order key,
// MakeOrd(idx, 0). Only when K such results exist can that plan
// contribute nothing to the canonical top-K. Counting merely "score at
// or below" is not enough: a same-score result emitted concurrently by
// a LATER plan orders after this plan's results, so it must not justify
// skipping them.
func (c *topkCollector) countBeating(score int, ord int64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, r := range c.results {
		if r.Score < score || (r.Score == score && r.Ord < ord) {
			n++
		}
	}
	return n
}

// take hands the collected results to the caller; the workers must have
// finished.
func (c *topkCollector) take() []Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.results
}
