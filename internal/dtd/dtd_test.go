package dtd_test

import (
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dtd"
	"repro/internal/schema"
	"repro/internal/xmlgraph"
)

// tpchDTD is the Figure 5 schema expressed as a DTD (tags renamed to be
// unique, as schema node names must be).
const tpchDTD = `
<!-- TPC-H-like schema of Figure 5 -->
<!ELEMENT person (name, nation, order*)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT nation (#PCDATA)>
<!ELEMENT order (lineitem*)>
<!ELEMENT lineitem (quantity, ship, supplier, line)>
<!ELEMENT quantity (#PCDATA)>
<!ELEMENT ship (#PCDATA)>
<!ELEMENT supplier EMPTY>
<!ATTLIST supplier ref IDREF #REQUIRED>
<!ELEMENT line (part | product)>
<!ATTLIST line ref IDREF #IMPLIED>
<!ELEMENT part (key, pname, sub*)>
<!ATTLIST part id ID #REQUIRED>
<!ELEMENT key (#PCDATA)>
<!ELEMENT pname (#PCDATA)>
<!ELEMENT sub (part)>
<!ELEMENT product (prodkey, pdescr)>
<!ELEMENT prodkey (#PCDATA)>
<!ELEMENT pdescr (#PCDATA)>
<!ELEMENT service_call (scdescr)>
<!ATTLIST service_call ref IDREF #REQUIRED>
<!ELEMENT scdescr (#PCDATA)>
`

func tpchRefs() map[string]string {
	return map[string]string{
		"supplier":     "person",
		"line":         "part",
		"service_call": "person",
	}
}

func TestParseTPCHDTD(t *testing.T) {
	g, err := dtd.ParseString(tpchDTD, dtd.Options{RefTargets: tpchRefs()})
	if err != nil {
		t.Fatal(err)
	}
	// Structure mirrors datagen.TPCHSchema in node count; the edge count
	// differs by one because a DTD cannot express the original's
	// choice-between-reference-and-containment (line -ref-> part vs
	// line -> product), so this DTD gives line a containment alternative
	// to part as well as the IDREF.
	ref := datagen.TPCHSchema()
	if g.NumNodes() != ref.NumNodes() {
		t.Fatalf("nodes = %d, want %d", g.NumNodes(), ref.NumNodes())
	}
	if g.NumEdges() != ref.NumEdges()+1 {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), ref.NumEdges()+1)
	}
	if !g.IsChoice("line") {
		t.Fatal("line must be a choice node")
	}
	if e, ok := g.FindEdge("person", "order", xmlgraph.Containment); !ok || e.MaxOccurs != schema.Unbounded {
		t.Fatalf("person->order = %+v, %v", e, ok)
	}
	if e, ok := g.FindEdge("person", "name", xmlgraph.Containment); !ok || e.MaxOccurs != 1 {
		t.Fatalf("person->name = %+v, %v", e, ok)
	}
	if _, ok := g.FindEdge("supplier", "person", xmlgraph.Reference); !ok {
		t.Fatal("supplier IDREF lost")
	}
	// Roots: person, part and service_call never appear in a content
	// model... except part appears under sub, so auto-roots = person,
	// service_call only.
	for _, root := range []string{"person", "service_call"} {
		if !g.Node(root).Root {
			t.Fatalf("%s not a root", root)
		}
	}
}

func TestParseExplicitRoots(t *testing.T) {
	g, err := dtd.ParseString(tpchDTD, dtd.Options{
		RefTargets: tpchRefs(),
		Roots:      []string{"person", "part", "service_call"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Node("part").Root {
		t.Fatal("explicit root ignored")
	}
}

// A DTD-built schema must type real data end-to-end.
func TestDTDSchemaAssignsData(t *testing.T) {
	g, err := dtd.ParseString(tpchDTD, dtd.Options{
		RefTargets: tpchRefs(),
		Roots:      []string{"person", "part", "service_call"},
	})
	if err != nil {
		t.Fatal(err)
	}
	doc := `
<db>
 <person><name>John</name><nation>US</nation>
  <order><lineitem><quantity>1</quantity><ship>now</ship>
   <supplier ref="p1"/><line ref="pa1"/></lineitem></order>
 </person>
 <person id="p1"><name>Mike</name><nation>US</nation></person>
 <part id="pa1"><key>1</key><pname>TV</pname></part>
</db>`
	data, err := xmlgraph.ParseString(doc, xmlgraph.ParseOptions{OmitRoot: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Assign(data); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]struct {
		dtd  string
		opts dtd.Options
	}{
		"empty":           {"", dtd.Options{}},
		"undeclared":      {"<!ELEMENT a (b)>", dtd.Options{}},
		"duplicate":       {"<!ELEMENT a (#PCDATA)>\n<!ELEMENT a (#PCDATA)>", dtd.Options{}},
		"nested group":    {"<!ELEMENT a (b, (c|d))>\n<!ELEMENT b (#PCDATA)>\n<!ELEMENT c (#PCDATA)>\n<!ELEMENT d (#PCDATA)>", dtd.Options{}},
		"mixed model":     {"<!ELEMENT a (b | c, d)>\n<!ELEMENT b (#PCDATA)>\n<!ELEMENT c (#PCDATA)>\n<!ELEMENT d (#PCDATA)>", dtd.Options{}},
		"missing target":  {"<!ELEMENT a (#PCDATA)>\n<!ATTLIST a r IDREF #REQUIRED>", dtd.Options{}},
		"unknown target":  {"<!ELEMENT a (#PCDATA)>\n<!ATTLIST a r IDREF #REQUIRED>", dtd.Options{RefTargets: map[string]string{"a": "zzz"}}},
		"unterminated":    {"<!ELEMENT a (#PCDATA)", dtd.Options{}},
		"bad declaration": {"<!NOTATION x SYSTEM \"y\">", dtd.Options{}},
		"cyclic only":     {"<!ELEMENT a (b)>\n<!ELEMENT b (a)>", dtd.Options{}},
	}
	for name, c := range cases {
		if _, err := dtd.ParseString(c.dtd, c.opts); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestGroupOccurrence(t *testing.T) {
	g, err := dtd.ParseString(`
<!ELEMENT a (b | c)*>
<!ELEMENT b (#PCDATA)>
<!ELEMENT c (#PCDATA)>
`, dtd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsChoice("a") {
		t.Fatal("a should be a choice")
	}
	if e, _ := g.FindEdge("a", "b", xmlgraph.Containment); e.MaxOccurs != schema.Unbounded {
		t.Fatalf("group * not applied: %+v", e)
	}
}

func TestOptionalChild(t *testing.T) {
	g, err := dtd.ParseString(`
<!ELEMENT a (b?, c+)>
<!ELEMENT b (#PCDATA)>
<!ELEMENT c (#PCDATA)>
`, dtd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e, _ := g.FindEdge("a", "b", xmlgraph.Containment); e.MaxOccurs != 1 {
		t.Fatalf("b? maxOccurs = %d", e.MaxOccurs)
	}
	if e, _ := g.FindEdge("a", "c", xmlgraph.Containment); e.MaxOccurs != schema.Unbounded {
		t.Fatalf("c+ maxOccurs = %d", e.MaxOccurs)
	}
}

func TestParseIgnoresComments(t *testing.T) {
	g, err := dtd.ParseString(`
<!-- a comment
     spanning lines -->
<!ELEMENT a (#PCDATA)>
`, dtd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 1 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if !strings.Contains(tpchDTD, "<!--") {
		t.Fatal("fixture lost its comment")
	}
}
