package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// errdrop forbids silently discarded error results in internal/
// packages: a call statement (plain, go, or defer) whose callee returns
// an error — alone or in a multi-result tuple, the fmt.Sscanf/Fprintf
// shape — must consume it. The PR 3 Sscanf silent-skip put a
// placeholder substitution bug in production because the (n, err)
// tuple of a scan was never looked at. Writers that are documented
// never to fail (*strings.Builder, *bytes.Buffer, hash.Hash) are
// exempt, as are fmt.Fprint* calls targeting them.
var analyzerErrdrop = &Analyzer{
	Name: "errdrop",
	Doc:  "internal/ packages must not discard error results in call statements",
	Run:  runErrdrop,
}

func runErrdrop(p *Pass) {
	path := p.Pkg.Path()
	if !strings.HasPrefix(path, "internal/") && !strings.Contains(path, "/internal/") {
		return
	}
	// Flow.Funcs bodies are disjoint and cover every executable
	// statement of the package exactly once (nested function literals
	// belong to their enclosing function's FuncFlow).
	for _, ff := range p.Flow.Funcs {
		ast.Inspect(ff.Body, func(n ast.Node) bool {
			var call *ast.CallExpr
			prefix := ""
			switch st := n.(type) {
			case *ast.ExprStmt:
				call, _ = ast.Unparen(st.X).(*ast.CallExpr)
			case *ast.GoStmt:
				call, prefix = st.Call, "go "
			case *ast.DeferStmt:
				call, prefix = st.Call, "defer "
			}
			if call == nil || !resultHasError(p, call) || neverFailingCall(p, call) {
				return true
			}
			p.Reportf(call.Pos(), "%s%s discards an error result; handle it or add //xk:ignore errdrop <reason>", prefix, types.ExprString(call.Fun))
			return true
		})
	}
}

// resultHasError reports whether the call produces an error, alone or
// as one element of a tuple.
func resultHasError(p *Pass, call *ast.CallExpr) bool {
	t := p.TypeOf(call)
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isErrorType(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

// neverFailingCall exempts calls whose error result is documented to
// always be nil: methods on *strings.Builder, *bytes.Buffer and
// hash.Hash values, and fmt.Fprint* writing into one of those.
func neverFailingCall(p *Pass, call *ast.CallExpr) bool {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s := p.Info.Selections[sel]; s != nil && neverFailingWriter(s.Recv()) {
			return true
		}
	}
	fn := calleeFunc(p, call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Fprint") && len(call.Args) > 0 {
		return neverFailingWriter(p.TypeOf(call.Args[0]))
	}
	return false
}

func neverFailingWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	pkg, name := n.Obj().Pkg().Path(), n.Obj().Name()
	switch {
	case pkg == "strings" && name == "Builder":
		return true
	case pkg == "bytes" && name == "Buffer":
		return true
	case pkg == "hash": // hash.Hash, Hash32, Hash64: Write never errors
		return true
	}
	return false
}
