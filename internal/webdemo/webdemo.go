// Package webdemo serves the XKeyword demo of Figure 4 over HTTP: a
// query page, the ranked list-of-results presentation, and the
// interactive presentation graphs with expansion and contraction — the
// counterpart of the demo the paper hosted at db.ucsd.edu. The API is
// JSON; a small embedded HTML page drives it.
package webdemo

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/presentation"
	"repro/internal/qserve"
	"repro/internal/rank"
	"repro/internal/segidx"
	"repro/internal/shard"
)

// Server wraps a loaded system with HTTP handlers. Queries are served
// through the qserve layer (result cache, singleflight, admission
// control); presentation graphs are kept per session id so navigation
// is stateful, as in the demo.
type Server struct {
	sys *core.System
	qs  *qserve.Server

	// ingest is the optional live-ingestion store behind /api/ingest;
	// nil until EnableIngest (the endpoints then answer 404).
	ingest *segidx.Store

	mu       sync.Mutex
	sessions map[string]*pgSession
	nextID   int
}

type pgSession struct {
	graphs []*presentation.Graph
	nets   []string // rendered network descriptions
}

// NewServer creates a demo server over a loaded system, with a serving
// layer using the default qserve options.
func NewServer(sys *core.System) *Server {
	return NewServerWith(sys, qserve.New(sys, qserve.Options{}))
}

// NewServerWith creates a demo server that serves queries through the
// given serving layer (cmd/xkserve configures one from flags).
func NewServerWith(sys *core.System, qs *qserve.Server) *Server {
	return &Server{sys: sys, qs: qs, sessions: make(map[string]*pgSession)}
}

// Handler returns the demo's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/api/query", s.handleQuery)
	mux.HandleFunc("/api/networks", s.handleNetworks)
	mux.HandleFunc("/api/pg/open", s.handlePGOpen)
	mux.HandleFunc("/api/pg/show", s.handlePGShow)
	mux.HandleFunc("/api/pg/expand", s.handlePGExpand)
	mux.HandleFunc("/api/pg/contract", s.handlePGContract)
	mux.HandleFunc("/api/object", s.handleObject)
	mux.HandleFunc("/api/pg/dot", s.handlePGDOT)
	mux.HandleFunc("/debug/qserve", s.handleQServeStats)
	mux.HandleFunc("/debug/pipeline", s.handlePipelineStats)
	mux.HandleFunc("/api/explain", s.handleExplain)
	mux.HandleFunc("/api/ingest", s.handleIngest)
	mux.HandleFunc("/debug/segidx", s.handleSegidxStats)
	mux.HandleFunc("/debug/shard", s.handleShardStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// handleHealthz reports the serving health state machine: 200 with
// "ok" or "degraded" (degraded answers are still correct — a load
// balancer should keep the instance but an operator should look), 503
// with Retry-After for "unavailable".
// When the engine is a scatter-gather coordinator the body also carries
// the per-shard states, and "unavailable" follows the coordinator's
// quorum rule: 503 only when fewer than a quorum of shards answer — a
// single dead shard keeps the endpoint 200 "degraded" (answers are
// loudly annotated, not wrong).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	state, detail := s.qs.Health()
	w.Header().Set("Content-Type", "application/json")
	if state == qserve.HealthUnavailable {
		setRetryAfter(w, s.qs.RetryAfter())
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	body := map[string]interface{}{"status": string(state), "detail": detail}
	if shards := s.qs.ShardStates(); shards != nil {
		body["shards"] = shards
	}
	_ = json.NewEncoder(w).Encode(body)
}

// setRetryAfter writes the Retry-After header in whole seconds (minimum
// 1 — the header has no finer granularity), so shed clients back off by
// the server's own pressure estimate instead of hammering.
func setRetryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
}

// handleQServeStats exposes the serving-layer counters (hits, misses,
// collapses, sheds, evictions, latency quantiles) as JSON for
// dashboards and the concurrency tests.
func (s *Server) handleQServeStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.qs.Stats())
}

// handlePipelineStats exposes the per-stage query-pipeline breakdown.
// cached (result-cache hits, no pipeline run) vs executed (pipeline
// runs) makes the serving layer's work reduction visible next to the
// per-stage costs of the queries that did execute.
func (s *Server) handlePipelineStats(w http.ResponseWriter, r *http.Request) {
	st := s.qs.Stats()
	writeJSON(w, map[string]interface{}{
		"cached":   st.Hits,
		"executed": st.Misses,
		"pipeline": s.sys.PipelineSnapshot(),
	})
}

// handleShardStats exposes the scatter-gather coordinator's snapshot:
// group/replica topology, per-replica health and breaker states, and
// the failover/hedge counters. 404 when the engine is not a
// coordinator — a single-node server has no shard state to report.
func (s *Server) handleShardStats(w http.ResponseWriter, r *http.Request) {
	coord, ok := s.qs.Engine().(*shard.Coordinator)
	if !ok {
		http.Error(w, "not serving a sharded index", http.StatusNotFound)
		return
	}
	writeJSON(w, coord.Stats())
}

// handleExplain runs EXPLAIN ANALYZE for a query — always through the
// engine, never the result cache, since the point is per-stage timings.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	keywords, k, ok := queryParams(w, r)
	if !ok {
		return
	}
	expl, err := s.sys.ExplainAnalyze(r.Context(), keywords, k)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, expl)
}

// handlePGDOT renders a presentation graph in Graphviz DOT for external
// visualization (the paper's demo drew these graphs; Figure 3/4c).
func (s *Server) handlePGDOT(w http.ResponseWriter, r *http.Request) {
	g, _, ok := s.session(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "text/vnd.graphviz")
	_, _ = w.Write([]byte(g.DOT(s.sys.SummaryOf)))
}

// handleObject returns a target object's stored BLOB — the full XML
// fragment the load stage serialized (§4, load stage item 3), which the
// demo shows when the user clicks a node.
func (s *Server) handleObject(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.URL.Query().Get("id"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad id: %w", err))
		return
	}
	blob, ok := s.sys.Store.Blob(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no target object %d", id))
		return
	}
	w.Header().Set("Content-Type", "application/xml")
	_, _ = w.Write(blob)
}

// resultJSON is one result tree in the list presentation.
type resultJSON struct {
	Score    int      `json:"score"`
	Rendered string   `json:"rendered"`
	Objects  []string `json:"objects"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	keywords, k, ok := queryParams(w, r)
	if !ok {
		return
	}
	scorer := strings.TrimSpace(r.URL.Query().Get("scorer"))
	if !rank.Valid(scorer) {
		httpError(w, http.StatusBadRequest, fmt.Errorf("unknown scorer %q (want %s)", scorer, strings.Join(rank.Names(), ", ")))
		return
	}
	// Through the serving layer: cached, collapsed, admission-controlled,
	// and cancelled when the client disconnects (r.Context()). Annotated:
	// a scatter-gather answer computed without a dead shard's partition
	// arrives with a degradation note, a relaxed query with the exact
	// substitutions made — both surfaced below, never silent.
	results, ann, err := s.qs.QueryScored(r.Context(), keywords, k, scorer)
	if err != nil {
		switch {
		case errors.Is(err, qserve.ErrOverloaded), errors.Is(err, shard.ErrNoQuorum):
			setRetryAfter(w, s.qs.RetryAfter())
			httpError(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			// The client is gone; nothing useful to write.
			httpError(w, http.StatusRequestTimeout, err)
		default:
			httpError(w, http.StatusBadRequest, err)
		}
		return
	}
	// Fail loudly, never silently wrong: a failed index backend with no
	// fallback answers every lookup with empty postings, so its "results"
	// must not leave the building as a 200.
	if state, detail := s.qs.Health(); state == qserve.HealthUnavailable {
		setRetryAfter(w, s.qs.RetryAfter())
		httpError(w, http.StatusServiceUnavailable, fmt.Errorf("index unavailable: %s", detail))
		return
	}
	out := make([]resultJSON, 0, len(results))
	for _, res := range results {
		out = append(out, resultJSON{
			Score:    res.Score,
			Rendered: s.sys.RenderResult(res),
			Objects:  s.sys.ResultSummaries(res),
		})
	}
	body := map[string]interface{}{"results": out}
	if scorer != "" {
		body["scorer"] = scorer
	}
	if ann != nil && ann.Degraded != nil {
		// Loud, never silent: the client learns exactly which partitions
		// the answer was computed without.
		body["degraded"] = ann.Degraded
	}
	if ann != nil && ann.Relaxed != nil {
		body["relaxed"] = ann.Relaxed
	}
	writeJSON(w, body)
}

func (s *Server) handleNetworks(w http.ResponseWriter, r *http.Request) {
	keywords, _, ok := queryParams(w, r)
	if !ok {
		return
	}
	nets, err := s.sys.Networks(keywords)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	type netJSON struct {
		Index int    `json:"index"`
		Size  int    `json:"size"`
		Score int    `json:"score"`
		Shape string `json:"shape"`
	}
	out := make([]netJSON, 0, len(nets))
	for i, tn := range nets {
		out = append(out, netJSON{Index: i, Size: tn.Size(), Score: tn.Score(), Shape: tn.String()})
	}
	writeJSON(w, map[string]interface{}{"networks": out})
}

// handlePGOpen starts a presentation-graph session: one graph per
// candidate network that has results.
func (s *Server) handlePGOpen(w http.ResponseWriter, r *http.Request) {
	keywords, _, ok := queryParams(w, r)
	if !ok {
		return
	}
	nets, err := s.sys.Networks(keywords)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	sess := &pgSession{}
	psess := s.sys.PresentationSession(nil)
	for _, tn := range nets {
		g, err := psess.Build(tn)
		if err != nil {
			continue // networks without results are not shown
		}
		sess.graphs = append(sess.graphs, g)
		sess.nets = append(sess.nets, tn.String())
	}
	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("pg%d", s.nextID)
	s.sessions[id] = sess
	s.mu.Unlock()
	writeJSON(w, map[string]interface{}{"session": id, "graphs": len(sess.graphs), "networks": sess.nets})
}

// pgStateJSON renders one presentation graph's active subgraph.
type pgStateJSON struct {
	Network     string              `json:"network"`
	Occurrences []pgOccurrenceJSON  `json:"occurrences"`
	Edges       []map[string]string `json:"edges"`
}

type pgOccurrenceJSON struct {
	Index    int      `json:"index"`
	Segment  string   `json:"segment"`
	Expanded bool     `json:"expanded"`
	Nodes    []pgNode `json:"nodes"`
}

type pgNode struct {
	TO      int64  `json:"to"`
	Summary string `json:"summary"`
}

func (s *Server) handlePGShow(w http.ResponseWriter, r *http.Request) {
	g, _, ok := s.session(w, r)
	if !ok {
		return
	}
	writeJSON(w, s.renderPG(g))
}

func (s *Server) handlePGExpand(w http.ResponseWriter, r *http.Request) {
	g, _, ok := s.session(w, r)
	if !ok {
		return
	}
	occ, err := strconv.Atoi(r.URL.Query().Get("occ"))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad occ: %w", err))
		return
	}
	// The demo shows the first 10 expanded nodes (§3.1).
	added, err := g.Expand(occ, presentation.ExpandOptions{MaxNodes: 10})
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	out := s.renderPG(g)
	out["added"] = added
	writeJSON(w, out)
}

func (s *Server) handlePGContract(w http.ResponseWriter, r *http.Request) {
	g, _, ok := s.session(w, r)
	if !ok {
		return
	}
	occ, err := strconv.Atoi(r.URL.Query().Get("occ"))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad occ: %w", err))
		return
	}
	keep, err := strconv.ParseInt(r.URL.Query().Get("keep"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad keep: %w", err))
		return
	}
	if err := g.Contract(occ, keep); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, s.renderPG(g))
}

func (s *Server) renderPG(g *presentation.Graph) map[string]interface{} {
	state := pgStateJSON{Network: g.Net.String()}
	for i, o := range g.Net.Occs {
		occ := pgOccurrenceJSON{Index: i, Segment: o.Segment, Expanded: g.Expanded[i]}
		for _, to := range g.Displayed(i) {
			occ.Nodes = append(occ.Nodes, pgNode{TO: to, Summary: s.sys.SummaryOf(to)})
		}
		state.Occurrences = append(state.Occurrences, occ)
	}
	for _, e := range g.Net.Edges {
		te := s.sys.TSS.Edge(e.EdgeID)
		state.Edges = append(state.Edges, map[string]string{
			"from":  strconv.Itoa(e.From),
			"to":    strconv.Itoa(e.To),
			"label": te.ForwardLabel,
		})
	}
	return map[string]interface{}{
		"network":     state.Network,
		"occurrences": state.Occurrences,
		"edges":       state.Edges,
	}
}

// session resolves the pg session and graph index from the request.
func (s *Server) session(w http.ResponseWriter, r *http.Request) (*presentation.Graph, *pgSession, bool) {
	id := r.URL.Query().Get("session")
	s.mu.Lock()
	sess := s.sessions[id]
	s.mu.Unlock()
	if sess == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown session %q", id))
		return nil, nil, false
	}
	gi := 0
	if v := r.URL.Query().Get("graph"); v != "" {
		var err error
		if gi, err = strconv.Atoi(v); err != nil || gi < 0 || gi >= len(sess.graphs) {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad graph index %q", v))
			return nil, nil, false
		}
	}
	if len(sess.graphs) == 0 {
		httpError(w, http.StatusNotFound, fmt.Errorf("session has no graphs"))
		return nil, nil, false
	}
	return sess.graphs[gi], sess, true
}

func queryParams(w http.ResponseWriter, r *http.Request) ([]string, int, bool) {
	q := strings.TrimSpace(r.URL.Query().Get("q"))
	if q == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("missing q parameter"))
		return nil, 0, false
	}
	k := 10
	if v := r.URL.Query().Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad k %q", v))
			return nil, 0, false
		}
		k = n
	}
	return strings.Fields(q), k, true
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(indexHTML))
}

const indexHTML = `<!DOCTYPE html>
<html><head><title>XKeyword demo</title>
<style>
 body { font-family: sans-serif; margin: 2em; max-width: 60em; }
 pre { background: #f4f4f4; padding: 1em; overflow-x: auto; }
 input { width: 24em; }
</style></head>
<body>
<h1>XKeyword — keyword proximity search on XML graphs</h1>
<p>Enter keywords (e.g. two author names). Results are trees of target
objects containing all keywords, ranked by size.</p>
<form onsubmit="run(); return false;">
 <input id="q" placeholder="keywords..."> <button>Search</button>
</form>
<pre id="out"></pre>
<script>
async function run() {
  const q = document.getElementById('q').value;
  const res = await fetch('/api/query?q=' + encodeURIComponent(q));
  const data = await res.json();
  let out = '';
  if (data.error) { out = 'error: ' + data.error; }
  else if (!data.results.length) { out = 'no results'; }
  else for (const [i, r] of data.results.entries()) {
    out += '#' + (i+1) + '  score ' + r.score + '\n' + r.rendered + '\n\n';
  }
  document.getElementById('out').textContent = out;
}
</script>
</body></html>`
