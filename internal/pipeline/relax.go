package pipeline

import (
	"fmt"
	"strings"
)

// Relaxation records how a no-match query was rewritten so it could
// still be answered (Naseriparsa et al.'s no-but-semantic-match
// direction, PAPERS.md): a multi-token keyword with no containing node
// is substituted by its first individually-matching token; a keyword
// with no match at all is dropped. Relaxation is never silent — every
// surface that returns relaxed results (pipeline trace, qserve
// annotations, xkeyword output, the web demo's JSON body) carries this
// record, because a relaxed answer to a different query presented as an
// exact answer is a wrong answer.
//
// Relaxation is deterministic given the index contents: the same
// keywords against the same index always relax the same way, which is
// what makes relaxed results safe to cache (invalidation still keys on
// the original keywords).
type Relaxation struct {
	// Dropped lists the original keywords removed from the query, in
	// request order.
	Dropped []string `json:"dropped,omitempty"`
	// Substituted maps original keyword → the matching token that
	// replaced it.
	Substituted map[string]string `json:"substituted,omitempty"`
	// Detail is the human-readable one-line account.
	Detail string `json:"detail"`
}

// String returns the one-line account ("dropped \"xyzzy\"; substituted
// \"codd tuple\" -> \"codd\"").
func (r *Relaxation) String() string {
	if r == nil {
		return ""
	}
	return r.Detail
}

// relaxDetail builds the Detail line from parts accumulated in request
// order (map iteration would scramble it between runs).
func relaxDetail(parts []string) string {
	return strings.Join(parts, "; ")
}

// quoteKw renders a keyword for the Detail line.
func quoteKw(k string) string { return fmt.Sprintf("%q", k) }
