package optimizer_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/optimizer"
)

func TestPlanSeeded(t *testing.T) {
	s := fig1System(t, core.Options{Z: 8})
	nets, err := s.Networks([]string{"us", "vcr"})
	if err != nil {
		t.Fatal(err)
	}
	opt := &optimizer.Optimizer{
		TSS: s.TSS, Store: s.Store, Index: s.Index, Stats: s.Stats,
		Fragments: s.Decomp.Fragments, MaxJoins: s.Opts.B,
	}
	for _, tn := range nets {
		if tn.Size() == 0 {
			continue
		}
		for seed := range tn.Occs {
			p, err := opt.PlanSeeded(tn, seed)
			if err != nil {
				t.Fatalf("seed %d of %s: %v", seed, tn, err)
			}
			if !p.Steps[0].Seed || p.Steps[0].Occ != seed {
				t.Fatalf("seed %d not honored: %+v", seed, p.Steps[0])
			}
		}
		if _, err := opt.PlanSeeded(tn, -1); err == nil {
			t.Fatal("negative seed accepted")
		}
		if _, err := opt.PlanSeeded(tn, len(tn.Occs)); err == nil {
			t.Fatal("out-of-range seed accepted")
		}
		break
	}
}

// Seeded plans pre-bound at the seed produce exactly the results whose
// seed binding matches — regardless of which occurrence seeds.
func TestPlanSeededEquivalence(t *testing.T) {
	s := fig1System(t, core.Options{Z: 8})
	nets, err := s.Networks([]string{"us", "vcr"})
	if err != nil {
		t.Fatal(err)
	}
	opt := &optimizer.Optimizer{
		TSS: s.TSS, Store: s.Store, Index: s.Index, Stats: s.Stats,
		Fragments: s.Decomp.Fragments, MaxJoins: s.Opts.B,
	}
	ex := &exec.Executor{Store: s.Store, TSS: s.TSS, Index: s.Index}
	checked := 0
	for _, tn := range nets {
		if tn.Size() == 0 {
			continue
		}
		base, err := opt.Plan(tn)
		if err != nil {
			t.Fatal(err)
		}
		var ref []exec.Result
		if err := ex.Evaluate(base, func(r exec.Result) bool { ref = append(ref, r); return true }); err != nil {
			t.Fatal(err)
		}
		if len(ref) == 0 {
			continue
		}
		for seed := range tn.Occs {
			sp, err := opt.PlanSeeded(tn, seed)
			if err != nil {
				t.Fatal(err)
			}
			// Collect results per seed binding and compare with ref.
			want := map[string]bool{}
			for _, r := range ref {
				want[r.Key()] = true
			}
			got := map[string]bool{}
			for _, r := range ref {
				rs, _, err := firstAll(ex, sp, seed, r.Bind[seed])
				if err != nil {
					t.Fatal(err)
				}
				for _, x := range rs {
					got[x.Key()] = true
				}
			}
			for k := range want {
				if !got[k] {
					t.Fatalf("seed %d of %s misses result %s", seed, tn, k)
				}
			}
		}
		checked++
		if checked >= 2 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no networks with results; vacuous")
	}
}

func firstAll(ex *exec.Executor, p *optimizer.Plan, occ int, to int64) ([]exec.Result, bool, error) {
	var out []exec.Result
	err := ex.EvaluateConstrained(p, exec.Constraint{PreBind: map[int]int64{occ: to}}, func(r exec.Result) bool {
		out = append(out, r)
		return true
	})
	return out, len(out) > 0, err
}

// PlanSeededVariants returns the min-join plan plus, when distinct, the
// single-edge plan; both are executable and equivalent.
func TestPlanSeededVariants(t *testing.T) {
	s := fig1System(t, core.Options{Z: 8})
	nets, err := s.Networks([]string{"us", "vcr"})
	if err != nil {
		t.Fatal(err)
	}
	opt := &optimizer.Optimizer{
		TSS: s.TSS, Store: s.Store, Index: s.Index, Stats: s.Stats,
		Fragments: s.Decomp.Fragments, MaxJoins: -1,
	}
	ex := &exec.Executor{Store: s.Store, TSS: s.TSS, Index: s.Index}
	sawTwo := false
	for _, tn := range nets {
		if tn.Size() < 2 {
			continue
		}
		vs, err := opt.PlanSeededVariants(tn, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(vs) == 0 {
			t.Fatalf("no variants for %s", tn)
		}
		if len(vs) == 2 {
			sawTwo = true
			if vs[0].Joins == vs[1].Joins {
				t.Fatalf("variants with equal join counts returned: %d", vs[0].Joins)
			}
			// The single-edge variant uses exactly size pieces.
			alt := vs[1]
			if alt.Joins != tn.Size()-1 {
				t.Fatalf("alt variant has %d joins for size %d", alt.Joins, tn.Size())
			}
			// Same result sets under a shared pre-binding domain.
			count := func(p *optimizer.Plan) int {
				n := 0
				if err := ex.Evaluate(p, func(exec.Result) bool { n++; return true }); err != nil {
					t.Fatal(err)
				}
				return n
			}
			if count(vs[0]) != count(vs[1]) {
				t.Fatalf("variants disagree on %s", tn)
			}
		}
	}
	if !sawTwo {
		t.Fatal("no network yielded two variants; vacuous")
	}
}
