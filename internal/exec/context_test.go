package exec_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
)

// TestEvaluateContextCancelMidFlight proves a cancelled context
// terminates an in-flight evaluation: cancelling inside the first emit
// means no further result is ever emitted (the executor re-polls the
// context exactly at each emission) and the ctx error surfaces.
func TestEvaluateContextCancelMidFlight(t *testing.T) {
	s := fig1System(t, core.Options{Z: 8})
	plans, err := s.Plans([]string{"us", "vcr"})
	if err != nil {
		t.Fatal(err)
	}
	ex := &exec.Executor{Store: s.Store, TSS: s.TSS, Index: s.Index}
	total := 0
	for _, p := range plans {
		if err := ex.Evaluate(p.Plan, func(exec.Result) bool { total++; return true }); err != nil {
			t.Fatal(err)
		}
	}
	if total < 2 {
		t.Skipf("need ≥2 results to observe early termination, have %d", total)
	}
	for _, strat := range []exec.Strategy{exec.NestedLoop, exec.HashJoin} {
		ctx, cancel := context.WithCancel(context.Background())
		emitted := 0
		sawCancel := false
		for _, p := range plans {
			err := ex.RunContext(ctx, p.Plan, strat, func(exec.Result) bool {
				emitted++
				cancel()
				return true
			})
			if err != nil {
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("strategy %d: err = %v", strat, err)
				}
				sawCancel = true
			}
		}
		if emitted >= total {
			t.Fatalf("strategy %d: emitted %d of %d results after cancellation", strat, emitted, total)
		}
		if emitted > 1 {
			t.Fatalf("strategy %d: %d results emitted after cancel (want ≤1)", strat, emitted)
		}
		if !sawCancel {
			t.Fatalf("strategy %d: cancellation never surfaced as an error", strat)
		}
		cancel()
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	s := fig1System(t, core.Options{Z: 8})
	plans, err := s.Plans([]string{"us", "vcr"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ex := &exec.Executor{Store: s.Store, TSS: s.TSS, Index: s.Index}
	n := 0
	err = ex.RunContext(ctx, plans[0].Plan, exec.NestedLoop, func(exec.Result) bool { n++; return true })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n != 0 {
		t.Fatalf("pre-cancelled context emitted %d results", n)
	}
}

func TestTopKPlansContextCancelled(t *testing.T) {
	s := fig1System(t, core.Options{Z: 8})
	plans, err := s.Plans([]string{"us", "vcr"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ex := &exec.Executor{Store: s.Store, TSS: s.TSS, Index: s.Index}
	rs, err := exec.TopKPlansContext(ctx, ex, plans, exec.TopKOptions{K: 10})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(rs) != 0 {
		t.Fatalf("pre-cancelled top-k returned %d results", len(rs))
	}
}

// TestStreamContextCancel: cancelling the stream's context closes it —
// the workers stop and Next drains to an empty page.
func TestStreamContextCancel(t *testing.T) {
	s := fig1System(t, core.Options{Z: 8})
	plans, err := s.Plans([]string{"us", "vcr"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ex := &exec.Executor{Store: s.Store, TSS: s.TSS, Index: s.Index}
	st := exec.StreamPlansContext(ctx, ex, plans, 2, exec.NestedLoop)
	defer st.Close()
	cancel()
	deadline := time.After(2 * time.Second)
	for {
		select {
		case <-deadline:
			t.Fatal("stream still producing after cancellation")
		default:
		}
		if page := st.Next(16); len(page) == 0 {
			return // drained and closed
		}
	}
}
