// The navigation example walks through Figure 3 of the paper: the
// presentation graph of the "US, VCR" query over the Figure 1/2 data.
// The initial graph shows one result tree; expanding the lineitem node
// reveals the second lineitem connected to the same person and TV part
// (the multivalued-dependency redundancy that a flat result list would
// show four times); contracting hides it again.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/presentation"
)

func main() {
	ds, err := datagen.TPCHFigure1()
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.LoadPrepared(&core.Prepared{
		Schema: ds.Schema, TSS: ds.TSS, Data: ds.Data, Obj: ds.Obj,
	}, core.Options{Z: 8})
	if err != nil {
		log.Fatal(err)
	}

	// Find the Figure 3 candidate network:
	// person{us} — lineitem — part — part{vcr}.
	nets, err := sys.Networks([]string{"us", "vcr"})
	if err != nil {
		log.Fatal(err)
	}
	idx := -1
	for i, tn := range nets {
		segs := map[string]int{}
		for _, o := range tn.Occs {
			segs[o.Segment]++
		}
		if len(tn.Occs) == 4 && segs["person"] == 1 && segs["lineitem"] == 1 && segs["part"] == 2 {
			idx = i
			break
		}
	}
	if idx < 0 {
		log.Fatal("figure-3 network not found")
	}
	net := nets[idx]

	sess := sys.PresentationSession(nil)
	g, err := sess.Build(net)
	if err != nil {
		log.Fatal(err)
	}
	show(sys, g, "initial presentation graph (one MTTON, Figure 3a)")

	liOcc := -1
	for i, o := range g.Net.Occs {
		if o.Segment == "lineitem" {
			liOcc = i
		}
	}
	added, err := g.Expand(liOcc, presentation.ExpandOptions{})
	if err != nil {
		log.Fatal(err)
	}
	show(sys, g, fmt.Sprintf("after expanding the lineitem node (+%d, Figure 3b)", added))

	keep := g.Displayed(liOcc)[0]
	if err := g.Contract(liOcc, keep); err != nil {
		log.Fatal(err)
	}
	show(sys, g, "after contracting back to one lineitem (Figure 3c)")
}

func show(sys *core.System, g *presentation.Graph, title string) {
	fmt.Printf("\n== %s ==\n", title)
	for i, o := range g.Net.Occs {
		var sums []string
		for _, to := range g.Displayed(i) {
			sums = append(sums, sys.Obj.Summary(to))
		}
		marker := " "
		if g.Expanded[i] {
			marker = "*"
		}
		fmt.Printf(" %s occ %d (%s): %s\n", marker, i, o.Segment, strings.Join(sums, " | "))
	}
}
