package cn_test

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/cn"
	"repro/internal/datagen"
	"repro/internal/kwindex"
	"repro/internal/xmlgraph"
)

func fig1Input(t *testing.T, keywords []string, z int) (cn.Input, *datagen.Dataset) {
	t.Helper()
	ds, err := datagen.TPCHFigure1()
	if err != nil {
		t.Fatal(err)
	}
	ix := kwindex.Build(ds.Obj)
	nodes := make(map[string][]string)
	for _, k := range keywords {
		nodes[k] = ix.SchemaNodes(k)
	}
	return cn.Input{Schema: ds.Schema, Keywords: keywords, SchemaNodesOf: nodes, MaxSize: z}, ds
}

func generate(t *testing.T, in cn.Input) []*cn.Network {
	t.Helper()
	nets, err := cn.Generate(in)
	if err != nil {
		t.Fatal(err)
	}
	return nets
}

func TestGenerateValidation(t *testing.T) {
	if _, err := cn.Generate(cn.Input{}); err == nil {
		t.Fatal("empty input accepted")
	}
	in, _ := fig1Input(t, []string{"john"}, 2)
	in.MaxSize = -1
	if _, err := cn.Generate(in); err != nil {
		// negative MaxSize must error
	} else {
		t.Fatal("negative MaxSize accepted")
	}
	in2, _ := fig1Input(t, []string{"john"}, 2)
	in2.SchemaNodesOf["john"] = []string{"nosuchnode"}
	if _, err := cn.Generate(in2); err == nil {
		t.Fatal("unknown schema node accepted")
	}
}

func TestGenerateMissingKeywordYieldsNothing(t *testing.T) {
	in, _ := fig1Input(t, []string{"john", "zzzznope"}, 6)
	nets := generate(t, in)
	if len(nets) != 0 {
		t.Fatalf("networks for absent keyword: %d", len(nets))
	}
}

// The introduction's "John, VCR" example: the best result has size 6
// (John supplied the lineitem whose product description mentions VCR) and
// the next interesting one size 8 (VCR is a sub-part of a part John
// supplied). The corresponding CNs must be generated.
func TestIntroJohnVCRNetworks(t *testing.T) {
	in, _ := fig1Input(t, []string{"john", "vcr"}, 8)
	nets := generate(t, in)
	if len(nets) == 0 {
		t.Fatal("no networks")
	}
	// Sizes must be non-decreasing.
	for i := 1; i < len(nets); i++ {
		if nets[i-1].Size() > nets[i].Size() {
			t.Fatal("networks not sorted by size")
		}
	}
	var has6, has8 bool
	for _, n := range nets {
		s := n.String()
		if n.Size() == 6 && strings.Contains(s, "pdescr{vcr}") && strings.Contains(s, "name{john}") {
			has6 = true
		}
		if n.Size() == 8 && strings.Contains(s, "pname{vcr}") && strings.Contains(s, "sub") && strings.Contains(s, "name{john}") {
			has8 = true
		}
	}
	if !has6 {
		t.Error("size-6 product-descr network missing")
	}
	if !has8 {
		t.Error("size-8 sub-part network missing")
	}
	// Smallest network connecting john and vcr needs at least 6 edges in
	// this schema (name-person-supplier-lineitem-line-product-descr).
	if nets[0].Size() < 6 {
		t.Errorf("smallest network size %d: %s", nets[0].Size(), nets[0])
	}
}

func TestGenerateNonRedundant(t *testing.T) {
	in, _ := fig1Input(t, []string{"tv", "vcr"}, 8)
	nets := generate(t, in)
	seen := make(map[string]bool)
	for _, n := range nets {
		if err := n.Validate(); err != nil {
			t.Fatalf("invalid network %s: %v", n, err)
		}
		c := n.Canon()
		if seen[c] {
			t.Fatalf("duplicate network %s", n)
		}
		seen[c] = true
		if n.Size() > 8 {
			t.Fatalf("oversized network %s", n)
		}
		for _, l := range n.Leaves() {
			if n.Occs[l].Free() {
				t.Fatalf("free leaf in %s", n)
			}
		}
	}
}

// XML-specific pruning: a part and a product can never connect through a
// single lineitem, because "line" is a choice node with one alternative.
func TestChoicePruning(t *testing.T) {
	in, _ := fig1Input(t, []string{"tv", "vcr"}, 9)
	nets := generate(t, in)
	for _, n := range nets {
		// Count outgoing edges of each line occurrence.
		outs := make(map[int]int)
		for _, e := range n.Edges {
			if n.Occs[e.From].Schema == "line" {
				outs[e.From]++
			}
		}
		for occ, c := range outs {
			if c > 1 {
				t.Fatalf("choice occurrence %d has %d alternatives in %s", occ, c, n)
			}
		}
	}
}

// Two occurrences may not both contain the same occurrence by containment
// (an element has a single parent).
func TestContainmentParentPruning(t *testing.T) {
	in, _ := fig1Input(t, []string{"us", "vcr"}, 9)
	nets := generate(t, in)
	for _, n := range nets {
		parents := make(map[int]int)
		for _, e := range n.Edges {
			if e.Kind == xmlgraph.Containment {
				parents[e.To]++
			}
		}
		for occ, c := range parents {
			if c > 1 {
				t.Fatalf("occurrence %d has %d containment parents in %s", occ, c, n)
			}
		}
	}
}

// maxOccurs pruning: person -> name has maxOccurs 1, so no network may
// give one person occurrence two name children.
func TestMaxOccursPruning(t *testing.T) {
	in, _ := fig1Input(t, []string{"john", "mike"}, 8)
	nets := generate(t, in)
	if len(nets) == 0 {
		t.Fatal("no networks for john/mike")
	}
	for _, n := range nets {
		kids := make(map[int]int)
		for _, e := range n.Edges {
			if n.Occs[e.From].Schema == "person" && n.Occs[e.To].Schema == "name" {
				kids[e.From]++
			}
		}
		for occ, c := range kids {
			if c > 1 {
				t.Fatalf("person occurrence %d has %d name children in %s", occ, c, n)
			}
		}
	}
}

// Completeness (paper §4: the generator is complete): every MTNN of the
// Figure 1 instance with size ≤ Z belongs to some generated CN. For two
// keywords an MTNN is a simple undirected path between nodes containing
// them, so brute-force enumeration is feasible.
func TestGenerateComplete(t *testing.T) {
	const z = 8
	keywords := []string{"john", "vcr"}
	in, ds := fig1Input(t, keywords, z)
	nets := generate(t, in)
	canon := make(map[string]bool)
	for _, n := range nets {
		canon[n.Canon()] = true
	}

	containing := func(kw string) []xmlgraph.NodeID {
		var out []xmlgraph.NodeID
		for _, id := range ds.Data.Nodes() {
			n := ds.Data.Node(id)
			toks := append(kwindex.Tokenize(n.Label), kwindex.Tokenize(n.Value)...)
			for _, tk := range toks {
				if tk == kw {
					out = append(out, id)
					break
				}
			}
		}
		return out
	}
	k1Nodes, k2Nodes := containing(keywords[0]), containing(keywords[1])
	if len(k1Nodes) == 0 || len(k2Nodes) == 0 {
		t.Fatal("fixture lost its keywords")
	}

	// Enumerate all simple paths from k1 nodes to k2 nodes with ≤ z edges.
	checked := 0
	var dfs func(path []xmlgraph.NodeID, onPath map[xmlgraph.NodeID]bool, target map[xmlgraph.NodeID]bool)
	toNetwork := func(path []xmlgraph.NodeID) *cn.Network {
		net := &cn.Network{}
		for i, id := range path {
			kws := []string{}
			if i == 0 {
				kws = append(kws, keywords[0])
			}
			if i == len(path)-1 {
				kws = append(kws, keywords[1])
			}
			sort.Strings(kws)
			net.Occs = append(net.Occs, cn.Occ{Schema: ds.Data.Node(id).Type, Keywords: kws})
		}
		for i := 0; i+1 < len(path); i++ {
			from, to := path[i], path[i+1]
			found := false
			for _, e := range ds.Data.Out(from) {
				if e.To == to {
					net.Edges = append(net.Edges, cn.Edge{From: i, To: i + 1, Kind: e.Kind})
					found = true
					break
				}
			}
			if !found {
				for _, e := range ds.Data.In(from) {
					if e.From == to {
						net.Edges = append(net.Edges, cn.Edge{From: i + 1, To: i, Kind: e.Kind})
						break
					}
				}
			}
		}
		return net
	}
	dfs = func(path []xmlgraph.NodeID, onPath map[xmlgraph.NodeID]bool, target map[xmlgraph.NodeID]bool) {
		cur := path[len(path)-1]
		if target[cur] && len(path) > 1 {
			net := toNetwork(path)
			checked++
			if !canon[net.Canon()] {
				t.Fatalf("MTNN path %v (size %d) not covered by any CN: %s", path, net.Size(), net)
			}
			// A path may continue through a keyword node, so no return.
		}
		if len(path)-1 >= z {
			return
		}
		for _, nb := range ds.Data.UndirectedNeighbors(cur) {
			if onPath[nb.Node] {
				continue
			}
			onPath[nb.Node] = true
			dfs(append(path, nb.Node), onPath, target)
			delete(onPath, nb.Node)
		}
	}
	target := make(map[xmlgraph.NodeID]bool)
	for _, id := range k2Nodes {
		target[id] = true
	}
	for _, s := range k1Nodes {
		dfs([]xmlgraph.NodeID{s}, map[xmlgraph.NodeID]bool{s: true}, target)
	}
	if checked == 0 {
		t.Fatal("brute force found no MTNNs; test is vacuous")
	}
	t.Logf("verified %d brute-force MTNNs against %d CNs", checked, len(nets))
}

func TestMaxNetworksCap(t *testing.T) {
	in, _ := fig1Input(t, []string{"tv", "vcr"}, 8)
	in.MaxNetworks = 3
	nets := generate(t, in)
	if len(nets) != 3 {
		t.Fatalf("cap ignored: %d networks", len(nets))
	}
}

func TestSingleKeywordSingleNode(t *testing.T) {
	in, _ := fig1Input(t, []string{"john"}, 4)
	nets := generate(t, in)
	if len(nets) == 0 {
		t.Fatal("no networks")
	}
	if nets[0].Size() != 0 {
		t.Fatalf("smallest single-keyword network has size %d", nets[0].Size())
	}
}
