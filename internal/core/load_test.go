package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/xmlgraph"
)

func TestLoadValidation(t *testing.T) {
	ds, err := datagen.TPCHFigure1()
	if err != nil {
		t.Fatal(err)
	}
	prep := &core.Prepared{Schema: ds.Schema, TSS: ds.TSS, Data: ds.Data, Obj: ds.Obj}

	if _, err := core.LoadPrepared(nil, core.Options{}); err == nil {
		t.Fatal("nil prepared accepted")
	}
	if _, err := core.LoadPrepared(&core.Prepared{}, core.Options{}); err == nil {
		t.Fatal("empty prepared accepted")
	}
	if _, err := core.LoadPrepared(prep, core.Options{Z: -1}); err == nil {
		t.Fatal("negative Z accepted")
	}
	if _, err := core.LoadPrepared(prep, core.Options{Decomposition: "nope"}); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestLoadRejectsNonConformingData(t *testing.T) {
	bad := xmlgraph.New()
	bad.AddNode("mystery", "")
	_, err := core.Load(datagen.TPCHSchema(), datagen.TPCHSpec(), bad, core.Options{})
	if err == nil || !strings.Contains(err.Error(), "root") {
		t.Fatalf("non-conforming data: %v", err)
	}
}

func TestLoadEndToEndFromRawGraph(t *testing.T) {
	// Load (as opposed to LoadPrepared) runs conformance, derivation and
	// decomposition itself.
	ds, err := datagen.TPCHFigure1()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.Load(datagen.TPCHSchema(), datagen.TPCHSpec(), ds.Data.Clone(), core.Options{Z: 8})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := sys.Query([]string{"john", "vcr"}, 1)
	if err != nil || len(rs) != 1 || rs[0].Score != 6 {
		t.Fatalf("query: %v, %d results", err, len(rs))
	}
}
