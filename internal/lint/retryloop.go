package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// retryloop flags hand-rolled retry loops that are unbounded or retry
// without backing off. The robustness work wrapped the disk-index read
// path in fault.RetryPolicy (bounded attempts, exponential backoff with
// jitter) precisely because a bare `for { if err := op(); err == nil
// {...} }` turns a persistent device failure into a hot spin — and a
// bounded-but-hot loop hammers a struggling resource at the worst
// moment. A loop is retry-shaped when an error produced by a call
// inside the loop decides whether to go around again: success exits
// while failure stays, or failure explicitly continues.
var analyzerRetryloop = &Analyzer{
	Name: "retryloop",
	Doc:  "retry loops must bound their attempts and back off between them (fault.RetryPolicy is the blessed pattern)",
	Run:  runRetryloop,
}

func runRetryloop(p *Pass) {
	for _, ff := range p.Flow.Funcs {
		ast.Inspect(ff.Body, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok || !isRetryShaped(p, ff, loop) {
				return true
			}
			unbounded := loop.Cond == nil || isTrueLiteral(loop.Cond)
			backoff := hasBackoffCall(loop.Body)
			switch {
			case unbounded && !backoff:
				p.Reportf(loop.Pos(), "retry loop has neither an attempt bound nor backoff; a persistent failure spins hot forever (use fault.RetryPolicy)")
			case unbounded:
				p.Reportf(loop.Pos(), "retry loop has no attempt bound; a persistent failure retries forever (use fault.RetryPolicy)")
			case !backoff:
				p.Reportf(loop.Pos(), "retry loop retries without backoff; failed attempts hammer the resource back-to-back (use fault.RetryPolicy)")
			}
			return true
		})
	}
}

// isRetryShaped reports whether the loop re-attempts an operation based
// on its error: an error-typed value assigned from a call inside the
// loop is nil-checked, and either success exits the loop (break/return
// under err == nil) or failure explicitly stays (continue under
// err != nil, with an exit elsewhere for the success path). Nested
// loops, switches and selects are not descended — break/continue change
// meaning there, and inner loops are judged on their own.
func isRetryShaped(p *Pass, ff *FuncFlow, loop *ast.ForStmt) bool {
	var continueOnErr, exitOnSuccess, hasExit bool
	var walk func(s ast.Stmt)
	walkList := func(list []ast.Stmt) {
		for _, s := range list {
			walk(s)
		}
	}
	walk = func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.BlockStmt:
			walkList(s.List)
		case *ast.LabeledStmt:
			walk(s.Stmt)
		case *ast.IfStmt:
			if obj, isEq := errNilCheck(p, s.Cond); obj != nil && errAssignedFromCall(ff, loop, obj) {
				if isEq && blockHasExit(s.Body) {
					exitOnSuccess = true
				}
				if !isEq && blockHasContinue(s.Body) {
					continueOnErr = true
				}
			}
			walk(s.Body)
			if s.Else != nil {
				walk(s.Else)
			}
		case *ast.BranchStmt:
			if s.Tok == token.BREAK {
				hasExit = true
			}
		case *ast.ReturnStmt:
			hasExit = true
		}
	}
	walkList(loop.Body.List)
	return exitOnSuccess || (continueOnErr && hasExit)
}

// errNilCheck matches `x == nil` / `x != nil` where x is an error-typed
// identifier, returning x's object and whether the comparison is ==.
func errNilCheck(p *Pass, cond ast.Expr) (types.Object, bool) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return nil, false
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	if isNilIdent(p, y) {
		// keep x
	} else if isNilIdent(p, x) {
		x = y
	} else {
		return nil, false
	}
	id, ok := x.(*ast.Ident)
	if !ok || !isErrorType(p.TypeOf(id)) {
		return nil, false
	}
	obj := p.Info.Uses[id]
	if obj == nil {
		obj = p.Info.Defs[id]
	}
	return obj, be.Op == token.EQL
}

// errAssignedFromCall reports whether obj is defined from a call
// expression somewhere in the loop (including if-statement inits) — the
// "attempt" whose failure drives the next iteration. It reads the
// function's def-use facts instead of re-walking the loop; definitions
// inside nested function literals run on a different activation and do
// not count, matching the pre-flow behavior.
func errAssignedFromCall(ff *FuncFlow, loop *ast.ForStmt, obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	for _, d := range ff.DefsOf(v) {
		if d.Pos < loop.Body.Pos() || d.Pos > loop.Body.End() || d.RHS == nil {
			continue
		}
		if _, isCall := ast.Unparen(d.RHS).(*ast.CallExpr); !isCall {
			continue
		}
		if d.Stmt != nil && ff.InFuncLit(d.Stmt) {
			continue
		}
		return true
	}
	return false
}

// blockHasExit reports whether the block (not descending into nested
// loops, switches, selects or function literals) breaks or returns.
func blockHasExit(b *ast.BlockStmt) bool {
	exit := false
	shallowWalk(b, func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.BranchStmt:
			if s.Tok == token.BREAK {
				exit = true
			}
		case *ast.ReturnStmt:
			exit = true
		}
	})
	return exit
}

// blockHasContinue is blockHasExit's counterpart for continue.
func blockHasContinue(b *ast.BlockStmt) bool {
	cont := false
	shallowWalk(b, func(s ast.Stmt) {
		if br, ok := s.(*ast.BranchStmt); ok && br.Tok == token.CONTINUE {
			cont = true
		}
	})
	return cont
}

// shallowWalk visits every statement reachable without crossing a
// nested loop, switch, select or function literal.
func shallowWalk(b *ast.BlockStmt, fn func(ast.Stmt)) {
	var walk func(ast.Stmt)
	walk = func(s ast.Stmt) {
		fn(s)
		switch s := s.(type) {
		case *ast.BlockStmt:
			for _, inner := range s.List {
				walk(inner)
			}
		case *ast.LabeledStmt:
			walk(s.Stmt)
		case *ast.IfStmt:
			walk(s.Body)
			if s.Else != nil {
				walk(s.Else)
			}
		}
	}
	for _, s := range b.List {
		walk(s)
	}
}

// hasBackoffCall reports whether the loop body waits between attempts:
// a time.Sleep/After/NewTimer/Tick call, or any callee whose name
// suggests a pacing primitive (sleep, backoff, delay, wait).
func hasBackoffCall(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := ""
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
			if pkg, ok := fun.X.(*ast.Ident); ok && pkg.Name == "time" {
				switch name {
				case "Sleep", "After", "NewTimer", "Tick":
					found = true
					return false
				}
			}
		}
		switch l := strings.ToLower(name); {
		case strings.Contains(l, "sleep"), strings.Contains(l, "backoff"),
			strings.Contains(l, "delay"), l == "wait":
			found = true
			return false
		}
		return true
	})
	return found
}

func isTrueLiteral(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "true"
}
