package tss_test

import (
	"strings"
	"testing"

	"repro/internal/schema"
	"repro/internal/tss"
	"repro/internal/xmlgraph"
)

// Generic graph sources (edge lists) can produce head nodes with empty
// labels; Summary must fall back to the segment name instead of
// rendering "#42".
func TestSummaryFallsBackToSegment(t *testing.T) {
	sg := schema.New()
	sg.MustBuild(
		sg.AddTaggedNode("item", "", schema.All),
		sg.SetRoot("item"),
	)
	data := xmlgraph.New()
	bare := data.AddNode("", "")
	valued := data.AddNode("", "x")
	if err := sg.Assign(data); err != nil {
		t.Fatal(err)
	}
	tg, err := tss.Derive(sg, tss.Spec{Segments: []tss.SegmentSpec{{Name: "item", Head: "item"}}})
	if err != nil {
		t.Fatal(err)
	}
	og, err := tg.Decompose(data)
	if err != nil {
		t.Fatal(err)
	}
	if got := og.Summary(int64(bare)); !strings.HasPrefix(got, "item#") {
		t.Fatalf("Summary(bare) = %q, want item#<id>", got)
	}
	if got := og.Summary(int64(valued)); got != "item[x]" {
		t.Fatalf("Summary(valued) = %q, want item[x]", got)
	}
}
