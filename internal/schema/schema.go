// Package schema implements the schema graphs of XKeyword (paper §3): a
// simplified XML-Schema-like description of XML graphs with typed
// references, keeping only the constructs the paper uses for performance
// optimization — all vs choice content, containment vs reference edges,
// and the maximum occurrence of an edge.
package schema

import (
	"fmt"
	"sort"

	"repro/internal/xmlgraph"
)

// NodeKind distinguishes all-content nodes from choice nodes (an instance
// of a choice node has exactly one of the edges under the choice).
type NodeKind uint8

const (
	// All nodes may instantiate every outgoing edge.
	All NodeKind = iota
	// Choice nodes instantiate exactly one outgoing containment/reference
	// edge (the "line" node of the TPC-H schema is the paper's example).
	Choice
)

// String returns "all" or "choice".
func (k NodeKind) String() string {
	if k == Choice {
		return "choice"
	}
	return "all"
}

// Unbounded is the MaxOccurs value for edges with no occurrence limit.
const Unbounded = -1

// Node is a schema graph vertex. Name is the unique identifier used
// throughout the system; Tag is the element tag data nodes carry (two
// schema nodes may share a tag, e.g. person/name and part/name).
type Node struct {
	Name string
	Tag  string
	Kind NodeKind
	Root bool // may appear as a graph root (no containment parent)
}

// Edge is a schema graph edge. For containment edges MaxOccurs bounds how
// many To-children a From-element may contain (Unbounded if unlimited).
// Reference edges are always to-one from the referencing element.
type Edge struct {
	From, To  string
	Kind      xmlgraph.EdgeKind
	MaxOccurs int
}

// Graph is a schema graph. Construct with New and the Add* methods.
type Graph struct {
	nodes map[string]*Node
	names []string // insertion order
	out   map[string][]Edge
	in    map[string][]Edge
}

// New returns an empty schema graph.
func New() *Graph {
	return &Graph{
		nodes: make(map[string]*Node),
		out:   make(map[string][]Edge),
		in:    make(map[string][]Edge),
	}
}

// AddNode registers a schema node whose tag equals its name.
func (g *Graph) AddNode(name string, kind NodeKind) error {
	return g.AddTaggedNode(name, name, kind)
}

// AddTaggedNode registers a schema node with an explicit element tag.
func (g *Graph) AddTaggedNode(name, tag string, kind NodeKind) error {
	if name == "" {
		return fmt.Errorf("schema: empty node name")
	}
	if _, dup := g.nodes[name]; dup {
		return fmt.Errorf("schema: duplicate node %q", name)
	}
	g.nodes[name] = &Node{Name: name, Tag: tag, Kind: kind}
	g.names = append(g.names, name)
	return nil
}

// SetRoot marks a node as allowed at graph roots.
func (g *Graph) SetRoot(name string) error {
	n, ok := g.nodes[name]
	if !ok {
		return fmt.Errorf("schema: unknown node %q", name)
	}
	n.Root = true
	return nil
}

// AddEdge registers an edge between two known nodes.
func (g *Graph) AddEdge(from, to string, kind xmlgraph.EdgeKind, maxOccurs int) error {
	if _, ok := g.nodes[from]; !ok {
		return fmt.Errorf("schema: unknown edge source %q", from)
	}
	if _, ok := g.nodes[to]; !ok {
		return fmt.Errorf("schema: unknown edge target %q", to)
	}
	if maxOccurs == 0 || maxOccurs < Unbounded {
		return fmt.Errorf("schema: invalid maxOccurs %d for %s->%s", maxOccurs, from, to)
	}
	for _, e := range g.out[from] {
		if e.To == to && e.Kind == kind {
			return fmt.Errorf("schema: duplicate edge %s->%s (%s)", from, to, kind)
		}
	}
	e := Edge{From: from, To: to, Kind: kind, MaxOccurs: maxOccurs}
	g.out[from] = append(g.out[from], e)
	g.in[to] = append(g.in[to], e)
	return nil
}

// MustBuild panics on the first error of a sequence of Add calls; it lets
// static schema definitions read declaratively.
func (g *Graph) MustBuild(steps ...error) *Graph {
	for _, err := range steps {
		if err != nil {
			panic(err)
		}
	}
	return g
}

// Node returns the named node, or nil.
func (g *Graph) Node(name string) *Node { return g.nodes[name] }

// Nodes returns all node names in insertion order.
func (g *Graph) Nodes() []string {
	out := make([]string, len(g.names))
	copy(out, g.names)
	return out
}

// Out returns the outgoing edges of name. The slice must not be modified.
func (g *Graph) Out(name string) []Edge { return g.out[name] }

// In returns the incoming edges of name. The slice must not be modified.
func (g *Graph) In(name string) []Edge { return g.in[name] }

// NumNodes returns the number of schema nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the number of schema edges.
func (g *Graph) NumEdges() int {
	n := 0
	for _, es := range g.out {
		n += len(es)
	}
	return n
}

// Edges returns every schema edge, ordered by source insertion order.
func (g *Graph) Edges() []Edge {
	var es []Edge
	for _, name := range g.names {
		es = append(es, g.out[name]...)
	}
	return es
}

// FindEdge returns the edge from->to of the given kind, if present.
func (g *Graph) FindEdge(from, to string, kind xmlgraph.EdgeKind) (Edge, bool) {
	for _, e := range g.out[from] {
		if e.To == to && e.Kind == kind {
			return e, true
		}
	}
	return Edge{}, false
}

// IsChoice reports whether name is a choice node.
func (g *Graph) IsChoice(name string) bool {
	n := g.nodes[name]
	return n != nil && n.Kind == Choice
}

// Undirected neighbors of a schema node: every node one hop away in
// either direction, with the connecting edge and traversal direction.
type Neighbor struct {
	Node    string
	Edge    Edge
	Forward bool // edge followed From -> To
}

// Neighbors returns every schema node one undirected hop from name,
// sorted deterministically.
func (g *Graph) Neighbors(name string) []Neighbor {
	var ns []Neighbor
	for _, e := range g.out[name] {
		ns = append(ns, Neighbor{Node: e.To, Edge: e, Forward: true})
	}
	for _, e := range g.in[name] {
		ns = append(ns, Neighbor{Node: e.From, Edge: e, Forward: false})
	}
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].Node != ns[j].Node {
			return ns[i].Node < ns[j].Node
		}
		return ns[i].Forward && !ns[j].Forward
	})
	return ns
}
