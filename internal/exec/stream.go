package exec

import (
	"context"
	"sort"
	"sync"
)

// Stream is the web-search-engine-like presentation of §3.1: a pool of
// workers evaluates the candidate networks smallest-first and fills a
// queue with MTTONs, which the caller consumes page by page. Because
// smaller networks are scheduled first and finish sooner, early pages
// hold the higher-ranked (smaller) results, exactly as the paper
// describes — but arrival order across networks is not a total sort.
type Stream struct {
	results chan Result
	stop    chan struct{}
	once    sync.Once
	wg      sync.WaitGroup
}

// StreamPlans starts evaluating the plans (sorted by ascending score, as
// the CN generator emits them) into a result queue. Close the stream
// when done to release the workers.
func StreamPlans(ex *Executor, plans []Planned, workers int, strategy Strategy) *Stream {
	return StreamPlansContext(context.Background(), ex, plans, workers, strategy)
}

// StreamPlansContext is StreamPlans tied to a context: cancelling ctx
// closes the stream, stopping the workers mid-join (a disconnected
// client stops burning CPU). The stream must still be Closed by the
// caller; Close is idempotent with the context-driven shutdown.
func StreamPlansContext(ctx context.Context, ex *Executor, plans []Planned, workers int, strategy Strategy) *Stream {
	if workers <= 0 {
		workers = 4
	}
	s := &Stream{
		results: make(chan Result, 64),
		stop:    make(chan struct{}),
	}
	next := make(chan Planned)
	for w := 0; w < workers; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for p := range next {
				_ = ex.RunContext(ctx, p.Plan, strategy, func(r Result) bool {
					select {
					case s.results <- r:
						return true
					case <-s.stop:
						return false
					}
				})
			}
		}()
	}
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				s.Close()
			case <-s.stop:
			}
		}()
	}
	go func() {
		defer close(next)
		for _, p := range plans {
			select {
			case next <- p:
			case <-s.stop:
				return
			}
		}
	}()
	go func() {
		s.wg.Wait()
		close(s.results)
	}()
	return s
}

// Next returns up to n further results (sorted by score within the
// page). It returns a short or empty page when the stream is exhausted.
func (s *Stream) Next(n int) []Result {
	var page []Result
	for len(page) < n {
		r, ok := <-s.results
		if !ok {
			break
		}
		page = append(page, r)
	}
	sort.SliceStable(page, func(i, j int) bool { return page[i].Score < page[j].Score })
	return page
}

// Close stops the workers; pending results are discarded. Safe to call
// multiple times and after exhaustion.
func (s *Stream) Close() {
	s.once.Do(func() {
		close(s.stop)
		// Drain so workers blocked on send can observe stop.
		go func() {
			for range s.results {
			}
		}()
	})
}
