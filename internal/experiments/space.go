package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/decomp"
)

// SpaceComparison materializes every decomposition preset and reports
// fragment counts, total rows and pages — the space side of the
// space/performance tradeoff of §5.1, including the MVD-fragment blow-up
// that makes the Complete decomposition expensive.
func SpaceComparison(w *Workload) (string, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Decomposition space (DBLP-like dataset, %d target objects)\n", w.DS.Obj.NumObjects())
	fmt.Fprintf(&sb, "%-16s %10s %12s %10s %18s\n", "decomposition", "fragments", "rows", "pages", "largest relation")
	for _, preset := range fig15Presets {
		sys, err := w.load(preset, -1)
		if err != nil {
			return "", err
		}
		rep := decomp.Report(sys.Store, sys.TSS, sys.Decomp)
		sort.Slice(rep.PerFrag, func(i, j int) bool { return rep.PerFrag[i].Rows > rep.PerFrag[j].Rows })
		largest := "-"
		if len(rep.PerFrag) > 0 {
			f := rep.PerFrag[0]
			largest = fmt.Sprintf("%s (%s, %d rows)", f.Fragment, f.Class, f.Rows)
		}
		fmt.Fprintf(&sb, "%-16s %10d %12d %10d %18s\n",
			preset, rep.Fragments, rep.TotalRows, rep.TotalPages, largest)
	}
	return sb.String(), nil
}
