package core_test

import (
	"sync"
	"testing"

	"repro/internal/core"
)

// A loaded system serves concurrent queries (the demo server's usage
// pattern); run under -race in CI.
func TestConcurrentQueries(t *testing.T) {
	s := loadFig1(t, core.Options{Z: 8})
	queries := [][]string{{"john", "vcr"}, {"us", "vcr"}, {"tv", "vcr"}, {"mike", "dvd"}}
	want := make(map[int]int)
	for i, q := range queries {
		rs, err := s.QueryAll(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = len(rs)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				qi := (w + i) % len(queries)
				rs, err := s.QueryAll(queries[qi])
				if err != nil {
					errs <- err
					return
				}
				if len(rs) != want[qi] {
					errs <- nil
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent query mismatch: %v", err)
	}
}
