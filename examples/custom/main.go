// The custom example shows the full path for a dataset of your own: a
// DTD declares the schema, an administrator spec file declares the
// target segments, semantic annotations, IDREF targets and roots, and
// the XML document is parsed, decomposed and queried — no code specific
// to the domain.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dtd"
	"repro/internal/specfile"
	"repro/internal/xmlgraph"
)

const moviesDTD = `
<!ELEMENT studio (sname, movie*)>
<!ELEMENT sname (#PCDATA)>
<!ELEMENT movie (title, year, role*)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT year (#PCDATA)>
<!ELEMENT role (rolename, actorref)>
<!ELEMENT rolename (#PCDATA)>
<!ELEMENT actorref EMPTY>
<!ATTLIST actorref ref IDREF #REQUIRED>
<!ELEMENT actor (aname)>
<!ELEMENT aname (#PCDATA)>
`

const moviesSpec = `
segment studio head=studio members=sname
segment movie head=movie members=title,year
segment role head=role members=rolename
segment actor head=actor members=aname
annotate studio>movie forward="produced" backward="produced by"
annotate movie>role forward="has role" backward="role in"
annotate role>actorref>actor forward="played by" backward="plays"
reftarget actorref actor
root studio
root actor
`

const moviesXML = `
<db>
  <studio><sname>Miramax</sname>
    <movie><title>Graph Story</title><year>2001</year>
      <role><rolename>Hero</rolename><actorref ref="a1"/></role>
      <role><rolename>Villain</rolename><actorref ref="a2"/></role>
    </movie>
  </studio>
  <studio><sname>Pixelight</sname>
    <movie><title>Tree of Results</title><year>2002</year>
      <role><rolename>Narrator</rolename><actorref ref="a1"/></role>
    </movie>
  </studio>
  <actor id="a1"><aname>Vera Chen</aname></actor>
  <actor id="a2"><aname>Omar Reyes</aname></actor>
</db>
`

func main() {
	cfg, err := specfile.ParseString(moviesSpec)
	if err != nil {
		log.Fatal(err)
	}
	sg, err := dtd.ParseString(moviesDTD, dtd.Options{RefTargets: cfg.RefTargets, Roots: cfg.Roots})
	if err != nil {
		log.Fatal(err)
	}
	data, err := xmlgraph.ParseString(moviesXML, xmlgraph.ParseOptions{OmitRoot: true})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.Load(sg, cfg.Spec, data, core.Options{Z: 8})
	if err != nil {
		log.Fatal(err)
	}

	for _, q := range [][]string{
		{"Vera", "Omar"},      // two actors: connected through a shared movie
		{"Miramax", "Vera"},   // studio to actor
		{"Pixelight", "2002"}, // studio to year (same target object)
	} {
		fmt.Printf("query %v\n", q)
		results, err := sys.Query(q, 3)
		if err != nil {
			log.Fatal(err)
		}
		if len(results) == 0 {
			fmt.Println("  (no results)")
		}
		for i, r := range results {
			fmt.Printf("#%d score %d\n%s\n\n", i+1, r.Score, sys.RenderResult(r))
		}
	}
}
