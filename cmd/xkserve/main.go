// Command xkserve hosts the XKeyword web demo (the paper's Figure 4):
// a keyword query page and JSON APIs for the ranked result list and the
// interactive presentation graphs, served through the qserve layer
// (result cache, singleflight collapse, admission control). Serving
// stats are exposed at /debug/qserve; the per-stage query-pipeline
// breakdown (cached vs executed queries, stage timings and cache
// traffic) at /debug/pipeline; per-query EXPLAIN ANALYZE at
// /api/explain?q=...; the ok/degraded/unavailable health state machine
// at /healthz.
//
// Snapshot loads are self-healing: the startup recovery sweep
// quarantines torn temp files, and a sidecar index that is missing,
// corrupt or mismatched is quarantined and rebuilt in memory (degraded
// mode) rather than failing the boot.
//
// Usage:
//
//	xkserve [-addr :8080] [-schema tpch|dblp] [-in file.xml] [-load snapshot]
//	        [-cache-entries 4096] [-cache-bytes 67108864] [-cache-ttl 5m]
//	        [-max-concurrent 0] [-queue-wait 100ms]
//	        [-disk-index] [-index-cache-bytes 1048576]
//	        [-segdir dir] [-seg-nosync]
//
// With -segdir the server layers a live segmented index (internal/segidx)
// over the loaded master index and accepts durable write batches at
// POST /api/ingest; /debug/segidx exposes the store's shape.
//
// Scatter-gather serving (internal/shard) over a split produced by
// `xkeyword -shardop split`:
//
//	xkserve -sharddir dir -shard-of 1            one shard server (protocol endpoints only)
//	xkserve -shards http://h1:p,http://h2:p [-sharddir dir] [-load snapshot]
//
// A shard server answers only the wire protocol (lookup, execute,
// stats) plus /healthz — never the ordinary query API, which would be
// silently partial. The coordinator serves the full demo API, fanning
// every query across all shards with loud degradation (never silent
// truncation) when shards are down, and 503 below quorum.
//
// Each shard group may list several replicas, "|"-separated — servers
// over byte-identical copies of the same shard directory:
//
//	xkserve -shards 'http://a1|http://a2,http://b1|http://b2' -sharddir dir
//
// The coordinator routes each request to the group's healthiest
// replica, fails over to siblings, and hedges requests that run past
// the replica's p95 (budget-capped; -hedge-off disables). A partition
// degrades queries only when its whole group is down. "-shards auto"
// reads the topology from the split manifest's recorded addresses
// (xkeyword -shardop split -shardaddrs ...). /healthz reports
// per-replica breaker states; /debug/shard the replica, failover and
// hedge counters.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/diskindex"
	"repro/internal/edgelist"
	"repro/internal/graphsource"
	"repro/internal/kwindex"
	"repro/internal/persist"
	"repro/internal/qserve"
	"repro/internal/rank"
	"repro/internal/segidx"
	"repro/internal/shard"
	"repro/internal/webdemo"
	"repro/internal/xmlgraph"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		schemaFlag = flag.String("schema", "dblp", "built-in schema: tpch or dblp")
		in         = flag.String("in", "", "XML file to load (default: built-in synthetic data)")
		loadFrom   = flag.String("load", "", "restore a snapshot instead of loading XML")
		z          = flag.Int("z", 8, "maximum MTNN size Z")

		cacheEntries = flag.Int("cache-entries", 4096, "result cache capacity in queries (negative disables caching)")
		cacheBytes   = flag.Int64("cache-bytes", 64<<20, "result cache byte budget")
		cacheTTL     = flag.Duration("cache-ttl", 5*time.Minute, "result cache entry lifetime (negative = no expiry)")
		maxConc      = flag.Int("max-concurrent", 0, "max concurrent query executions (0 = 2×GOMAXPROCS)")
		queueWait    = flag.Duration("queue-wait", 100*time.Millisecond, "admission queue wait before shedding with 503")

		diskIdx  = flag.Bool("disk-index", false, "serve the master index from a paged .xki file through a buffer pool instead of RAM")
		idxCache = flag.Int64("index-cache-bytes", diskindex.DefaultCacheBytes, "buffer-pool budget for -disk-index")

		segDir    = flag.String("segdir", "", "directory of a live segmented index: enables POST /api/ingest, layered over the loaded master index")
		segNoSync = flag.Bool("seg-nosync", false, "skip the per-batch WAL fsync of -segdir ingests (durability only as strong as the page cache)")

		shardDir    = flag.String("sharddir", "", "directory of a partitioned index (written by xkeyword -shardop split)")
		shardOf     = flag.Int("shard-of", -1, "serve one shard of -sharddir's split: the shard id (protocol endpoints only)")
		coordinator = flag.String("coordinator", "", "alias for -shards (kept for existing deployments)")
		shards      = flag.String("shards", "", "shard topology: comma-separated groups of |-separated replica URLs, or \"auto\" to read the manifest's recorded addresses; serve as scatter-gather coordinator")
		shardCache  = flag.Int("shard-cache-entries", 1024, "shard-side execute-response cache capacity (negative disables)")
		hedgeOff    = flag.Bool("hedge-off", false, "disable hedged requests to sibling replicas")
		hedgeMax    = flag.Duration("hedge-max-delay", 100*time.Millisecond, "upper clamp on the p95-derived hedge delay")
		hedgeBudget = flag.Int("hedge-budget-pct", 10, "cap fired hedges at this percent of hedgeable requests, coordinator-wide")

		nodesFile = flag.String("nodes", "", "edge-list nodes file (CSV/TSV; requires -edges, replaces -in/-schema)")
		edgesFile = flag.String("edges", "", "edge-list edges file (CSV/TSV; requires -nodes)")
		scorer    = flag.String("scorer", "", fmt.Sprintf("default result scorer: %s (per-query override via ?scorer=)", strings.Join(rank.Names(), ", ")))
		relax     = flag.Bool("relax", false, "relax queries with unmatched keywords (drop/substitute, loudly annotated) instead of returning nothing")
	)
	flag.Parse()
	if _, err := rank.New(*scorer); err != nil {
		fmt.Fprintln(os.Stderr, "xkserve:", err)
		os.Exit(1)
	}
	if (*nodesFile == "") != (*edgesFile == "") {
		fmt.Fprintln(os.Stderr, "xkserve: -nodes and -edges must be given together")
		os.Exit(1)
	}
	if *nodesFile != "" && (*in != "" || *loadFrom != "") {
		fmt.Fprintln(os.Stderr, "xkserve: -nodes/-edges replace -in/-load")
		os.Exit(1)
	}

	if *shards != "" && *coordinator != "" {
		fmt.Fprintln(os.Stderr, "xkserve: -shards and -coordinator (its alias) are mutually exclusive; pass one")
		os.Exit(1)
	}
	topology := *shards
	if topology == "" {
		topology = *coordinator
	}
	if *shardOf >= 0 && topology != "" {
		fmt.Fprintln(os.Stderr, "xkserve: -shard-of and -shards are mutually exclusive")
		os.Exit(1)
	}
	if *shardOf >= 0 {
		if err := runShard(*addr, *shardDir, *shardOf, *loadFrom, *schemaFlag, *in, *z, *idxCache, *scorer, *relax, *shardCache); err != nil {
			fmt.Fprintln(os.Stderr, "xkserve:", err)
			os.Exit(1)
		}
		return
	}

	start := time.Now()
	sys, err := buildSystem(*loadFrom, *schemaFlag, *in, *nodesFile, *edgesFile, *z, *diskIdx, *idxCache, *scorer, *relax)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xkserve:", err)
		os.Exit(1)
	}
	switch ix := sys.Index.(type) {
	case *diskindex.Reader:
		fmt.Fprintf(os.Stderr, "xkserve: master index on disk (%d terms, %d postings), cache %d bytes\n",
			ix.NumKeywords(), ix.NumPostings(), *idxCache)
	case *kwindex.Failover:
		if rd, ok := ix.Primary().(*diskindex.Reader); ok {
			fmt.Fprintf(os.Stderr, "xkserve: master index on disk with in-memory failover (%d terms, %d postings), cache %d bytes\n",
				rd.NumKeywords(), rd.NumPostings(), *idxCache)
		}
	}
	// With -segdir the segmented store becomes the system's master
	// index, layered over whatever buildSystem produced: batch-loaded
	// postings serve as the base, ingested segments and the memtable
	// shadow it per target object. Queries run unchanged.
	var store *segidx.Store
	if *segDir != "" && topology != "" {
		fmt.Fprintln(os.Stderr, "xkserve: -segdir and -shards are mutually exclusive (ingest writes locally, queries go to shards)")
		os.Exit(1)
	}
	if *segDir != "" {
		store, err = segidx.Open(*segDir, segidx.Options{
			Base:            sys.Index,
			IndexCacheBytes: *idxCache,
			AutoCompact:     true,
			NoSync:          *segNoSync,
			Logf:            func(format string, args ...any) { fmt.Fprintf(os.Stderr, "xkserve: "+format+"\n", args...) },
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "xkserve:", err)
			os.Exit(1)
		}
		sys.Index = store
		st := store.Stats()
		fmt.Fprintf(os.Stderr, "xkserve: live ingestion at %s (%d segments, %d memtable docs recovered)\n",
			*segDir, len(st.Segments), st.MemDocs)
	}
	// The serving layer fronts either the local system or — in
	// coordinator mode — the scatter-gather engine; cache, singleflight,
	// admission control and health are identical either way.
	var eng qserve.Engine = sys
	if topology != "" {
		coord, err := buildCoordinator(sys, topology, *shardDir, shard.CoordinatorOptions{
			HedgeDisabled:  *hedgeOff,
			HedgeMaxDelay:  *hedgeMax,
			HedgeBudgetPct: *hedgeBudget,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "xkserve:", err)
			os.Exit(1)
		}
		eng = coord
	}
	qs := qserve.New(eng, qserve.Options{
		MaxEntries:    *cacheEntries,
		MaxBytes:      *cacheBytes,
		TTL:           *cacheTTL,
		MaxConcurrent: *maxConc,
		QueueWait:     *queueWait,
	})
	fmt.Fprintf(os.Stderr, "xkserve: %d target objects ready in %v; listening on %s\n",
		sys.Obj.NumObjects(), time.Since(start).Round(time.Millisecond), *addr)

	wd := webdemo.NewServerWith(sys, qs)
	if store != nil {
		wd.EnableIngest(store)
	}
	hs := &http.Server{
		Addr:              *addr,
		Handler:           wd.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// Graceful shutdown: stop accepting on SIGINT/SIGTERM, give in-flight
	// requests a grace period, then exit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		fmt.Fprintln(os.Stderr, "xkserve: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			_ = hs.Close()
		}
	}()
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "xkserve:", err)
		os.Exit(1)
	}
	<-done
	if store != nil {
		// Memtable state needs no flush: it is in the WAL and the next
		// open replays it. Close releases the handles cleanly.
		if err := store.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "xkserve: closing segmented index:", err)
		}
	}
	st := qs.Stats()
	fmt.Fprintf(os.Stderr, "xkserve: served %d queries (%d hits, %d misses, %d collapsed, %d shed)\n",
		st.Served, st.Hits, st.Misses, st.Collapses, st.Sheds)
}

// runShard serves one partition of a split: the wire-protocol endpoints
// over the shard's own .xki slice, with the structural data restored
// from the snapshot the split copied beside it (or built from the data
// flags). The partition reader gets an in-memory failover rebuilt from
// the replicated object graph, so a corrupt or failing slice degrades
// loudly instead of answering empty.
func runShard(addr, shardDir string, id int, loadFrom, schemaFlag, in string, z int, idxCache int64, scorer string, relax bool, cacheEntries int) error {
	if shardDir == "" {
		return fmt.Errorf("-shard-of requires -sharddir")
	}
	man, err := shard.LoadManifest(shardDir)
	if err != nil {
		return err
	}
	if id >= man.N {
		return fmt.Errorf("shard id %d out of range: the split has %d shards", id, man.N)
	}
	si := man.Shards[id]
	snap := filepath.Join(shardDir, si.Dir, shard.SnapshotFileName)
	if loadFrom == "" {
		if _, err := os.Stat(snap); err == nil {
			loadFrom = snap
		}
	}
	// Scorer/relax settings are replicated to the shard side so plan
	// derivation (and the relax token lookups) match the coordinator's;
	// the coordinator's network CRC cross-check catches a mismatch.
	sys, err := buildSystem(loadFrom, schemaFlag, in, "", "", z, false, idxCache, scorer, relax)
	if err != nil {
		return err
	}
	idxPath := filepath.Join(shardDir, si.Dir, si.Index)
	rd, err := diskindex.Open(idxPath, diskindex.Options{CacheBytes: idxCache})
	if err != nil {
		return err
	}
	rebuild := func() (kwindex.Source, error) {
		return shard.PartitionIndex(kwindex.Build(sys.Obj), id, man.N), nil
	}
	srv := &shard.Server{Sys: sys, ID: id, N: man.N, CRC: si.CRC}
	if cacheEntries >= 0 {
		n := cacheEntries
		if n == 0 {
			n = 1024
		}
		srv.Cache = qserve.NewResultCache(0, n, 32<<20, 5*time.Minute)
	}
	local := kwindex.NewFailover(rd, rebuild, func(cause error) {
		fmt.Fprintf(os.Stderr, "xkserve: shard %d DEGRADED: partition reader abandoned, serving from in-memory rebuild: %v\n", id, cause)
		// Cached execute responses may predate the index transition.
		srv.InvalidateCache()
	})
	sys.Index = local
	srv.Local = local
	fmt.Fprintf(os.Stderr, "xkserve: shard %d of %d (%d postings, %d keywords) listening on %s\n",
		id, man.N, rd.NumPostings(), rd.NumKeywords(), addr)
	hs := &http.Server{
		Addr:              addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			_ = hs.Close()
		}
	}()
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// buildCoordinator wires the scatter-gather engine to the shard replica
// topology: "a|b,c|d" style groups, or "auto" to read the addresses the
// split recorded in its manifest. With -sharddir the manifest is loaded
// so validation can check each replica serves the recorded partition
// (CRC) — and that every replica of a group serves byte-identical data,
// the invariant that makes failover and hedging answer-preserving.
// Validation failure is loud but not fatal: availability is governed by
// the quorum rule at query time, so a replica that is down at boot does
// not keep the coordinator from starting.
func buildCoordinator(sys *core.System, topology, shardDir string, opts shard.CoordinatorOptions) (*shard.Coordinator, error) {
	opts.Logf = func(format string, args ...any) { fmt.Fprintf(os.Stderr, "xkserve: "+format+"\n", args...) }
	var man *shard.Manifest
	if shardDir != "" {
		var err error
		if man, err = shard.LoadManifest(shardDir); err != nil {
			return nil, err
		}
		opts.Manifest = man
	}
	var groups [][]string
	if topology == "auto" {
		if man == nil {
			return nil, fmt.Errorf("-shards auto requires -sharddir (the topology lives in the split manifest)")
		}
		var err error
		if groups, err = man.Topology(); err != nil {
			return nil, err
		}
	} else {
		var err error
		if groups, err = shard.ParseTopology(topology); err != nil {
			return nil, err
		}
	}
	if man != nil && man.N != len(groups) {
		return nil, fmt.Errorf("manifest records %d shards, -shards lists %d groups", man.N, len(groups))
	}
	coord := shard.NewCoordinatorGroups(sys, groups, opts)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := coord.Validate(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "xkserve: WARNING: shard validation failed (%v); serving anyway — the quorum rule governs availability\n", err)
	} else {
		fmt.Fprintf(os.Stderr, "xkserve: coordinator over %d shards (%d replicas) validated\n", coord.N(), coord.Replicas())
	}
	return coord, nil
}

func buildSystem(loadFrom, schemaFlag, in, nodesFile, edgesFile string, z int, diskIdx bool, idxCache int64, scorer string, relax bool) (*core.System, error) {
	if loadFrom != "" {
		sys, err := persist.LoadFileOpts(loadFrom, persist.LoadOptions{
			DiskIndex:       diskIdx,
			IndexCacheBytes: idxCache,
			SelfHeal:        true,
			OnDegrade: func(cause error) {
				fmt.Fprintf(os.Stderr, "xkserve: DEGRADED: disk index abandoned, serving from in-memory rebuild: %v\n", cause)
			},
		})
		if err != nil {
			return nil, err
		}
		// Serving-time choices, not snapshot state.
		sys.Opts.Scorer = scorer
		sys.Opts.Relax = relax
		return sys, nil
	}
	if nodesFile != "" {
		ds, err := edgelist.Open(nodesFile, edgesFile, edgelist.Options{})
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "xkserve: %s: %d entities, %d links\n", ds.DatasetName(), ds.NumEntities, ds.NumLinks)
		sys, err := graphsource.Load(ds, core.Options{Z: z, Scorer: scorer, Relax: relax})
		if err != nil {
			return nil, err
		}
		if diskIdx {
			if err := swapToDiskIndex(sys, idxCache); err != nil {
				return nil, err
			}
		}
		return sys, nil
	}
	switch schemaFlag {
	case "tpch", "dblp":
	default:
		return nil, fmt.Errorf("unknown schema %q", schemaFlag)
	}
	var sys *core.System
	var err error
	if in != "" {
		var data *xmlgraph.Graph
		if data, err = loadXML(in); err != nil {
			return nil, err
		}
		if schemaFlag == "tpch" {
			sys, err = core.Load(datagen.TPCHSchema(), datagen.TPCHSpec(), data, core.Options{Z: z, Scorer: scorer, Relax: relax})
		} else {
			sys, err = core.Load(datagen.DBLPSchema(), datagen.DBLPSpec(), data, core.Options{Z: z, Scorer: scorer, Relax: relax})
		}
	} else {
		var ds *datagen.Dataset
		if schemaFlag == "tpch" {
			ds, err = datagen.TPCH(datagen.DefaultTPCHParams())
		} else {
			ds, err = datagen.DBLP(datagen.DefaultDBLPParams())
		}
		if err != nil {
			return nil, err
		}
		sys, err = core.LoadPrepared(&core.Prepared{Schema: ds.Schema, TSS: ds.TSS, Data: ds.Data, Obj: ds.Obj},
			core.Options{Z: z, Scorer: scorer, Relax: relax})
	}
	if err != nil {
		return nil, err
	}
	if diskIdx {
		if err := swapToDiskIndex(sys, idxCache); err != nil {
			return nil, err
		}
	}
	return sys, nil
}

// swapToDiskIndex writes the freshly built master index to an unlinked
// temp .xki file and points the system at a paged reader over it.
func swapToDiskIndex(sys *core.System, cacheBytes int64) error {
	ix, ok := sys.Index.(*kwindex.Index)
	if !ok {
		return nil
	}
	f, err := os.CreateTemp("", "xkserve-*.xki")
	if err != nil {
		return err
	}
	path := f.Name()
	f.Close()
	if err := diskindex.Create(path, ix); err != nil {
		os.Remove(path)
		return err
	}
	rd, err := diskindex.Open(path, diskindex.Options{CacheBytes: cacheBytes})
	os.Remove(path) // the open handle keeps the unlinked file alive
	if err != nil {
		return err
	}
	sys.Index = rd
	return nil
}

func loadXML(path string) (*xmlgraph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return xmlgraph.Parse(f, xmlgraph.ParseOptions{OmitRoot: true})
}
