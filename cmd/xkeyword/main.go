// Command xkeyword answers keyword proximity queries over an XML
// database, reproducing the XKeyword system (ICDE 2003). It loads an XML
// document (e.g. one produced by xkgen) or a built-in synthetic dataset,
// builds the master index and connection relations, and prints the
// ranked result trees of each query.
//
// Usage:
//
//	xkeyword -schema tpch|dblp [-in file.xml] [-k N] [-z N] [-all]
//	         [-scorer edgecount|weighted|diversified] [-relax]
//	         [-explain-analyze] [-disk-index] [-index-cache-bytes N]
//	         keyword keyword...
//
// With no keywords it reads queries from stdin, one per line.
//
// Generic edge-list sources (internal/edgelist; e.g. the citation
// network from xkgen -schema citation) load through the same engine:
//
//	xkeyword -nodes x.nodes.csv -edges x.edges.csv keyword keyword...
//
// Offline maintenance of a live segmented index (internal/segidx, the
// store behind xkserve -segdir):
//
//	xkeyword -segdir dir -segop build [data flags...]   bulk-load the dataset into committed segments
//	xkeyword -segdir dir -segop compact                 merge the segment set down to one
//	xkeyword -segdir dir -segop stats                   print the store's shape as JSON
//
// Partitioned-index maintenance (internal/shard, the split behind
// xkserve -shard-of / -coordinator):
//
//	xkeyword -sharddir dir -shardop split -shards N [data flags...]   split the master index into N shard directories
//	xkeyword -sharddir dir -shardop verify                            re-check every shard file against the manifest
//	xkeyword -sharddir dir -shardop stats                             print the split's manifest as JSON
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/diskindex"
	"repro/internal/dtd"
	"repro/internal/edgelist"
	"repro/internal/exec"
	"repro/internal/graphsource"
	"repro/internal/kwindex"
	"repro/internal/persist"
	"repro/internal/pipeline"
	"repro/internal/rank"
	"repro/internal/schema"
	"repro/internal/segidx"
	"repro/internal/shard"
	"repro/internal/specfile"
	"repro/internal/tss"
	"repro/internal/xmlgraph"
	"repro/internal/xsd"
)

func main() {
	var (
		schemaFlag = flag.String("schema", "dblp", "built-in schema of the data: tpch or dblp")
		dtdFile    = flag.String("dtd", "", "DTD file declaring the schema (overrides -schema; requires -spec)")
		xsdFile    = flag.String("xsd", "", "XML Schema file declaring the schema (overrides -schema; requires -spec)")
		specFile   = flag.String("spec", "", "administrator spec file: segments, annotations, IDREF targets, roots")
		in         = flag.String("in", "", "XML file to load (default: built-in synthetic data)")
		k          = flag.Int("k", 10, "number of results (top-k)")
		z          = flag.Int("z", 8, "maximum MTNN size Z")
		all        = flag.Bool("all", false, "produce all results instead of top-k")
		explain    = flag.Bool("explain", false, "print the execution plans instead of running the query")
		analyze    = flag.Bool("explain-analyze", false, "run the query and print the per-stage timing tree")
		preset     = flag.String("decomposition", "xkeyword", "decomposition preset: xkeyword, complete, minclust, minnclustindx, minnclustnindx")
		saveTo     = flag.String("save", "", "after loading, snapshot the database to this file")
		loadFrom   = flag.String("load", "", "restore a snapshot instead of loading XML (skips the load stage)")
		diskIndex  = flag.Bool("disk-index", false, "serve the master index from a paged .xki file through a buffer pool instead of RAM")
		idxCache   = flag.Int64("index-cache-bytes", diskindex.DefaultCacheBytes, "buffer-pool budget for -disk-index")
		segDir     = flag.String("segdir", "", "segmented-index directory for -segop")
		segOp      = flag.String("segop", "", "offline segmented-index command: build, compact or stats (requires -segdir)")
		shardDir   = flag.String("sharddir", "", "partitioned-index directory for -shardop")
		shardOp    = flag.String("shardop", "", "partitioned-index command: split, verify or stats (requires -sharddir)")
		shardN     = flag.Int("shards", 0, "partition count for -shardop split")
		shardAddrs = flag.String("shardaddrs", "", "replica topology recorded in the split manifest for \"xkserve -shards auto\": comma-separated shard groups of |-separated replica URLs")
		nodesFile  = flag.String("nodes", "", "edge-list nodes file (CSV/TSV; requires -edges, replaces -in/-schema)")
		edgesFile  = flag.String("edges", "", "edge-list edges file (CSV/TSV; requires -nodes)")
		scorer     = flag.String("scorer", "", fmt.Sprintf("result scorer: %s (default %s)", strings.Join(rank.Names(), ", "), rank.DefaultName))
		relax      = flag.Bool("relax", false, "relax queries with unmatched keywords (drop/substitute, loudly annotated) instead of returning nothing")
	)
	flag.Parse()
	if _, err := rank.New(*scorer); err != nil {
		fatal(err)
	}
	if (*nodesFile == "") != (*edgesFile == "") {
		fatal(fmt.Errorf("-nodes and -edges must be given together"))
	}
	if *nodesFile != "" && (*in != "" || *dtdFile != "" || *xsdFile != "" || *loadFrom != "") {
		fatal(fmt.Errorf("-nodes/-edges replace -in/-dtd/-xsd/-load"))
	}

	switch *shardOp {
	case "":
	case "split":
		if *shardDir == "" {
			fatal(fmt.Errorf("-shardop split requires -sharddir"))
		}
		if *shardN < 1 {
			fatal(fmt.Errorf("-shardop split requires -shards ≥ 1"))
		}
	case "verify", "stats":
		if *shardDir == "" {
			fatal(fmt.Errorf("-shardop %s requires -sharddir", *shardOp))
		}
		// Maintenance commands operate on the split alone; no dataset load.
		if err := shardMaintain(*shardDir, *shardOp); err != nil {
			fatal(err)
		}
		return
	default:
		fatal(fmt.Errorf("unknown -shardop %q (want split, verify or stats)", *shardOp))
	}

	switch *segOp {
	case "":
	case "build":
		if *segDir == "" {
			fatal(fmt.Errorf("-segop build requires -segdir"))
		}
	case "compact", "stats":
		if *segDir == "" {
			fatal(fmt.Errorf("-segop %s requires -segdir", *segOp))
		}
		// Maintenance commands operate on the store alone; no dataset load.
		if err := segMaintain(*segDir, *segOp, *idxCache); err != nil {
			fatal(err)
		}
		return
	default:
		fatal(fmt.Errorf("unknown -segop %q (want build, compact or stats)", *segOp))
	}

	if *loadFrom != "" {
		start := time.Now()
		sys, err := persist.LoadFileOpts(*loadFrom, persist.LoadOptions{
			DiskIndex:       *diskIndex,
			IndexCacheBytes: *idxCache,
		})
		if err != nil {
			fatal(err)
		}
		// Scorer and relaxation are serving-time choices, not snapshot
		// state: the pipeline config reads Opts per query.
		sys.Opts.Scorer = *scorer
		sys.Opts.Relax = *relax
		fmt.Fprintf(os.Stderr, "restored %d target objects, %d relations in %v\n",
			sys.Obj.NumObjects(), len(sys.Decomp.Fragments), time.Since(start).Round(time.Millisecond))
		if rd, ok := sys.Index.(*diskindex.Reader); ok {
			fmt.Fprintf(os.Stderr, "master index on disk: %s (%d terms, %d postings), cache %d bytes\n",
				rd.Path(), rd.NumKeywords(), rd.NumPostings(), *idxCache)
		}
		if *segOp == "build" {
			if err := segBuild(sys, *segDir); err != nil {
				fatal(err)
			}
			return
		}
		if *shardOp == "split" {
			if err := shardSplit(sys, *shardDir, *shardN, *loadFrom, *shardAddrs); err != nil {
				fatal(err)
			}
			return
		}
		serve(sys, *k, *all, *explain, *analyze)
		return
	}

	var src graphsource.Source
	var spec tss.Spec
	if *nodesFile != "" {
		ds, err := edgelist.Open(*nodesFile, *edgesFile, edgelist.Options{})
		if err != nil {
			fatal(err)
		}
		spec, _ = ds.Spec()
		fmt.Fprintf(os.Stderr, "%s: %d entities, %d links\n", ds.DatasetName(), ds.NumEntities, ds.NumLinks)
		src = ds
	} else {
		src, spec = xmlSource(*schemaFlag, *dtdFile, *xsdFile, *specFile, *in)
	}

	start := time.Now()
	sys, err := graphsource.Load(src, core.Options{
		Z:             *z,
		Decomposition: core.DecompositionPreset(*preset),
		Scorer:        *scorer,
		Relax:         *relax,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "loaded %d nodes, %d target objects, %d relations in %v\n",
		sys.Data.NumNodes(), sys.Obj.NumObjects(), len(sys.Decomp.Fragments),
		time.Since(start).Round(time.Millisecond))
	if *saveTo != "" {
		if err := persist.SaveFile(*saveTo, sys, spec); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "snapshot written to %s (+ %s)\n", *saveTo, persist.SidecarPath(*saveTo))
	}
	if *diskIndex {
		if err := swapToDiskIndex(sys, *saveTo, *idxCache); err != nil {
			fatal(err)
		}
	}
	if *segOp == "build" {
		if err := segBuild(sys, *segDir); err != nil {
			fatal(err)
		}
		return
	}
	if *shardOp == "split" {
		if err := shardSplit(sys, *shardDir, *shardN, *saveTo, *shardAddrs); err != nil {
			fatal(err)
		}
		return
	}
	serve(sys, *k, *all, *explain, *analyze)
}

// xmlSource resolves the XML-side flags — built-in schema, DTD/XSD +
// spec file, -in document or built-in synthetic data — into a
// graphsource.Source, the same ingestion boundary the edge-list path
// uses.
func xmlSource(schemaFlag, dtdFile, xsdFile, specFile, in string) (graphsource.Source, tss.Spec) {
	var sg *schema.Graph
	var spec tss.Spec
	switch {
	case dtdFile != "" || xsdFile != "":
		if specFile == "" {
			fatal(fmt.Errorf("-dtd/-xsd require -spec (segments and IDREF targets)"))
		}
		if in == "" {
			fatal(fmt.Errorf("-dtd/-xsd require -in (no built-in data for custom schemas)"))
		}
		sf, err := os.Open(specFile)
		if err != nil {
			fatal(err)
		}
		cfg, err := specfile.Parse(sf)
		sf.Close()
		if err != nil {
			fatal(err)
		}
		if xsdFile != "" {
			xf, err := os.Open(xsdFile)
			if err != nil {
				fatal(err)
			}
			sg, err = xsd.Parse(xf, xsd.Options{RefTargets: cfg.RefTargets, Roots: cfg.Roots})
			xf.Close()
			if err != nil {
				fatal(err)
			}
		} else {
			df, err := os.Open(dtdFile)
			if err != nil {
				fatal(err)
			}
			sg, err = dtd.Parse(df, dtd.Options{RefTargets: cfg.RefTargets, Roots: cfg.Roots})
			df.Close()
			if err != nil {
				fatal(err)
			}
		}
		spec = cfg.Spec
	case schemaFlag == "tpch":
		sg, spec = datagen.TPCHSchema(), datagen.TPCHSpec()
	case schemaFlag == "dblp":
		sg, spec = datagen.DBLPSchema(), datagen.DBLPSpec()
	default:
		fatal(fmt.Errorf("unknown schema %q", schemaFlag))
	}

	var data *xmlgraph.Graph
	name := schemaFlag
	if in != "" {
		name = in
		f, err := os.Open(in)
		if err != nil {
			fatal(err)
		}
		data, err = xmlgraph.Parse(f, xmlgraph.ParseOptions{OmitRoot: true})
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		var ds *datagen.Dataset
		var err error
		if schemaFlag == "tpch" {
			ds, err = datagen.TPCH(datagen.DefaultTPCHParams())
		} else {
			ds, err = datagen.DBLP(datagen.DefaultDBLPParams())
		}
		if err != nil {
			fatal(err)
		}
		data = ds.Data
	}
	return graphsource.FromXML(name, sg, spec, data), spec
}

// shardSplit partitions the loaded master index into n self-contained
// shard directories under dir, copying the dataset snapshot (when one
// was loaded or just saved) beside each slice so shard servers can
// restore their replicated structural data from the shard directory
// alone.
func shardSplit(sys *core.System, dir string, n int, snapshot, addrs string) error {
	ix, ok := sys.Index.(*kwindex.Index)
	if !ok {
		return fmt.Errorf("-shardop split needs the in-memory master index (omit -disk-index)")
	}
	opts := shard.SplitOptions{
		Snapshot: snapshot,
		Logf:     func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) },
	}
	if addrs != "" {
		groups, err := shard.ParseTopology(addrs)
		if err != nil {
			return err
		}
		opts.Addrs = groups
	}
	start := time.Now()
	man, err := shard.Split(ix, dir, n, opts)
	if err != nil {
		return err
	}
	for _, si := range man.Shards {
		fmt.Fprintf(os.Stderr, "shard %d: %s (%d postings, %d keywords, crc %08x)\n",
			si.ID, si.Dir, si.Postings, si.Keywords, si.CRC)
	}
	fmt.Fprintf(os.Stderr, "split into %d shards at %s in %v\n", n, dir, time.Since(start).Round(time.Millisecond))
	return nil
}

// shardMaintain runs a datasetless split command: verify re-checks
// every shard file against the manifest (CRCs, readability, and the
// routing invariant that each posting hashes to its shard); stats
// prints the manifest.
func shardMaintain(dir, op string) error {
	if op == "verify" {
		man, err := shard.Verify(dir)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "split at %s verified: %d shards, scheme %s\n", dir, man.N, man.Scheme)
		return nil
	}
	man, err := shard.LoadManifest(dir)
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}

// segBuild bulk-loads every target object of the loaded database into
// the segmented index at dir as committed on-disk segments, then
// compacts them down to one — the offline way to seed a directory for
// xkserve -segdir. The per-batch WAL fsync is skipped: nothing is
// acknowledged to a client here, and the flush/compaction commits are
// durable on their own.
func segBuild(sys *core.System, dir string) error {
	start := time.Now()
	st, err := segidx.Open(dir, segidx.Options{NoSync: true})
	if err != nil {
		return err
	}
	docs := segidx.DocumentsFromObjectGraph(sys.Obj)
	const chunk = 1024
	for i := 0; i < len(docs); i += chunk {
		end := min(i+chunk, len(docs))
		var b segidx.Batch
		for _, d := range docs[i:end] {
			b.AddDoc(d)
		}
		if err := st.Apply(b); err != nil {
			st.Close()
			return err
		}
		if err := st.Flush(); err != nil {
			st.Close()
			return err
		}
	}
	if err := st.Compact(); err != nil {
		st.Close()
		return err
	}
	if err := st.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "segmented index built at %s: %d documents in %v\n",
		dir, len(docs), time.Since(start).Round(time.Millisecond))
	return nil
}

// segMaintain runs a datasetless store command: compact merges the
// segment set down to one, stats prints the store's shape as JSON.
func segMaintain(dir, op string, cacheBytes int64) error {
	st, err := segidx.Open(dir, segidx.Options{IndexCacheBytes: cacheBytes})
	if err != nil {
		return err
	}
	if op == "compact" {
		if err := st.Compact(); err != nil {
			st.Close()
			return err
		}
	}
	out, err := json.MarshalIndent(st.Stats(), "", "  ")
	if err != nil {
		st.Close()
		return err
	}
	fmt.Println(string(out))
	return st.Close()
}

// swapToDiskIndex moves the freshly built master index onto disk and
// points the system at a paged reader over it. With -save the sidecar
// already written next to the snapshot is reused; otherwise the index
// goes to an unlinked temp file that lives as long as the open handle.
func swapToDiskIndex(sys *core.System, savedTo string, cacheBytes int64) error {
	ix, ok := sys.Index.(*kwindex.Index)
	if !ok {
		return nil
	}
	path := persist.SidecarPath(savedTo)
	temp := savedTo == ""
	if temp {
		f, err := os.CreateTemp("", "xkeyword-*.xki")
		if err != nil {
			return err
		}
		path = f.Name()
		f.Close()
		if err := diskindex.Create(path, ix); err != nil {
			os.Remove(path)
			return err
		}
	}
	rd, err := diskindex.Open(path, diskindex.Options{CacheBytes: cacheBytes})
	if temp {
		os.Remove(path) // the open handle keeps the unlinked file alive
	}
	if err != nil {
		return err
	}
	sys.Index = rd
	fmt.Fprintf(os.Stderr, "master index on disk: %s (%d terms, %d postings), cache %d bytes\n",
		path, rd.NumKeywords(), rd.NumPostings(), cacheBytes)
	return nil
}

// serve answers queries from the command line or stdin.
func serve(sys *core.System, k int, all, explain, analyze bool) {
	runQuery := func(keywords []string) {
		t0 := time.Now()
		if analyze {
			kk := k
			if all {
				kk = 0
			}
			expl, err := sys.ExplainAnalyze(context.Background(), keywords, kk)
			if err != nil {
				fmt.Fprintln(os.Stderr, "query:", err)
				return
			}
			fmt.Print(expl.Format())
			return
		}
		if explain {
			plans, err := sys.Plans(keywords)
			if err != nil {
				fmt.Fprintln(os.Stderr, "query:", err)
				return
			}
			fmt.Printf("%d candidate networks\n", len(plans))
			for _, p := range plans {
				fmt.Println(p.Plan.Explain(sys.TSS, sys.Store))
			}
			return
		}
		rs, rx, err := func() ([]exec.Result, *pipeline.Relaxation, error) {
			if all {
				return sys.QueryAllScoredContext(context.Background(), keywords, "")
			}
			return sys.QueryScoredContext(context.Background(), keywords, k, "")
		}()
		if err != nil {
			fmt.Fprintln(os.Stderr, "query:", err)
			return
		}
		if rx != nil {
			fmt.Fprintf(os.Stderr, "NOTE: query relaxed: %s\n", rx)
		}
		fmt.Printf("%d results in %v\n", len(rs), time.Since(t0).Round(time.Millisecond))
		for i, r := range rs {
			fmt.Printf("\n#%d  score %d\n%s\n", i+1, r.Score, sys.RenderResult(r))
		}
	}

	if flag.NArg() > 0 {
		runQuery(flag.Args())
		return
	}
	fmt.Fprintln(os.Stderr, "enter keyword queries, one per line (Ctrl-D to exit):")
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		words := strings.Fields(sc.Text())
		if len(words) == 0 {
			continue
		}
		runQuery(words)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xkeyword:", err)
	os.Exit(1)
}
