package shard_test

import (
	"context"
	"errors"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/qserve"
	"repro/internal/shard"
)

// TestQuorumLossRefuses kills enough shards that no quorum remains: the
// coordinator must refuse with ErrNoQuorum instead of serving a
// mostly-empty answer, loudly annotated or not.
func TestQuorumLossRefuses(t *testing.T) {
	sys := tpchSystem(t)
	cl := startCluster(t, sys, 3, clusterConfig{})
	cl.servers[0].Close()
	cl.servers[2].Close()
	_, err := cl.coord.QueryContext(context.Background(), []string{"john", "tv"}, 10)
	if !errors.Is(err, shard.ErrNoQuorum) {
		t.Fatalf("1 of 3 shards alive: err = %v, want ErrNoQuorum", err)
	}
	if got, _ := cl.coord.IndexHealthState(); got != core.IndexUnavailable {
		t.Fatalf("health below quorum = %v, want unavailable", got)
	}
}

// TestSlowShardDegrades makes one shard hang past the request timeout:
// it must be treated like a dead shard — the query degrades loudly
// within the timeout budget instead of stalling behind the stray.
func TestSlowShardDegrades(t *testing.T) {
	sys := tpchSystem(t)
	release := make(chan struct{})
	defer close(release)
	cl := startCluster(t, sys, 3, clusterConfig{
		opts: shard.CoordinatorOptions{
			RequestTimeout: 150 * time.Millisecond,
			Retry:          fault.RetryPolicy{Attempts: 1},
		},
		wrap: func(i int, h http.Handler) http.Handler {
			if i != 1 {
				return h
			}
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				<-release // hold every request until test teardown
			})
		},
	})
	ctx, deg := qserve.CaptureDegradation(context.Background())
	start := time.Now()
	rs, err := cl.coord.QueryContext(ctx, []string{"john", "tv"}, 10)
	if err != nil {
		t.Fatalf("slow shard must degrade, not fail: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("query stalled %v behind the slow shard", elapsed)
	}
	if deg() == nil {
		t.Fatal("slow shard produced no degradation note")
	}
	if len(rs) == 0 {
		t.Fatal("surviving partitions hold postings but the answer is empty")
	}
}

// TestBreakerOpensAndRecovers drives one shard through fail → breaker
// open → recovery: while open the shard is reported unavailable without
// probing it; after the window a half-open probe readmits it.
func TestBreakerOpensAndRecovers(t *testing.T) {
	sys := tpchSystem(t)
	var failing atomic.Bool
	failing.Store(true)
	var hits atomic.Int64
	cl := startCluster(t, sys, 3, clusterConfig{
		opts: shard.CoordinatorOptions{
			BreakerThreshold: 2,
			BreakerWindow:    100 * time.Millisecond,
			Retry:            fault.RetryPolicy{Attempts: 1},
		},
		wrap: func(i int, h http.Handler) http.Handler {
			if i != 0 {
				return h
			}
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				hits.Add(1)
				if failing.Load() {
					http.Error(w, "injected outage", http.StatusInternalServerError)
					return
				}
				h.ServeHTTP(w, r)
			})
		},
	})
	ctx := context.Background()
	kws := []string{"john", "tv"}

	// Two failing queries reach the threshold and open the breaker.
	for i := 0; i < 2; i++ {
		if _, err := cl.coord.QueryContext(ctx, kws, 5); err != nil {
			t.Fatalf("query %d: quorum held, want degraded success: %v", i, err)
		}
	}
	before := hits.Load()
	states := cl.coord.ShardStates()
	if states[0].State != string(core.IndexUnavailable) || states[0].Detail != "circuit breaker open" {
		t.Fatalf("shard 0 state = %q (%q), want unavailable via open breaker", states[0].State, states[0].Detail)
	}
	if hits.Load() != before {
		t.Fatal("ShardStates probed a shard whose breaker is open — the breaker exists to avoid that")
	}

	// Heal the shard; after the window the half-open probe readmits it.
	failing.Store(false)
	time.Sleep(150 * time.Millisecond)
	if _, err := cl.coord.QueryContext(ctx, kws, 5); err != nil {
		t.Fatalf("post-recovery query: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if st := cl.coord.ShardStates(); st[0].State == string(core.IndexOK) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard 0 never recovered: %+v", cl.coord.ShardStates()[0])
		}
		time.Sleep(20 * time.Millisecond)
	}
	cctx, deg := qserve.CaptureDegradation(context.Background())
	if _, err := cl.coord.QueryContext(cctx, kws, 5); err != nil || deg() != nil {
		t.Fatalf("recovered cluster still degraded (err=%v note=%+v)", err, deg())
	}
}

// TestRetryMasksTransientFailure fails each shard-0 request once: the
// retry policy must absorb the blip — exact answer, no degradation.
func TestRetryMasksTransientFailure(t *testing.T) {
	sys := tpchSystem(t)
	var calls atomic.Int64
	cl := startCluster(t, sys, 2, clusterConfig{
		opts: shard.CoordinatorOptions{
			Retry: fault.RetryPolicy{Attempts: 2, Base: time.Millisecond, Max: 5 * time.Millisecond},
		},
		wrap: func(i int, h http.Handler) http.Handler {
			if i != 0 {
				return h
			}
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if calls.Add(1)%2 == 1 { // every odd attempt fails
					http.Error(w, "transient blip", http.StatusInternalServerError)
					return
				}
				h.ServeHTTP(w, r)
			})
		},
	})
	ctx, deg := qserve.CaptureDegradation(context.Background())
	want, err := sys.QueryContext(context.Background(), []string{"john", "tv"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cl.coord.QueryContext(ctx, []string{"john", "tv"}, 10)
	if err != nil {
		t.Fatalf("retry did not mask the transient failure: %v", err)
	}
	if deg() != nil {
		t.Fatalf("masked transient failure still noted degradation: %+v", deg())
	}
	mustEqualResults(t, "retried", got, want)
}

// TestValidateCatchesMisconfiguration wires coordinators to clusters
// that lie about themselves: wrong shard count and wrong partition CRC
// must both fail Validate before any traffic is served.
func TestValidateCatchesMisconfiguration(t *testing.T) {
	sys := tpchSystem(t)
	cl := startCluster(t, sys, 2, clusterConfig{})
	ctx := context.Background()

	// A 3-shard coordinator pointed at a 2-shard deployment: the third
	// address is shard 0 again, which identifies as 0/2, not 2/3.
	wrong := shard.NewCoordinator(sys,
		[]string{cl.servers[0].URL, cl.servers[1].URL, cl.servers[0].URL},
		shard.CoordinatorOptions{HealthTTL: -1, Logf: t.Logf})
	if err := wrong.Validate(ctx); err == nil {
		t.Fatal("Validate accepted a shard identifying with the wrong id/count")
	}

	// A manifest whose recorded CRC disagrees with what the shard serves.
	man := &shard.Manifest{Version: 1, Scheme: shard.HashScheme, N: 2, Shards: []shard.ShardInfo{
		{ID: 0, CRC: 0x12345678}, {ID: 1, CRC: 0x12345678},
	}}
	mismatched := shard.NewCoordinator(sys,
		[]string{cl.servers[0].URL, cl.servers[1].URL},
		shard.CoordinatorOptions{Manifest: man, HealthTTL: -1, Logf: t.Logf})
	if err := mismatched.Validate(ctx); err == nil {
		t.Fatal("Validate accepted a shard serving a different partition CRC than the manifest records")
	}
}

// TestCancellationPropagates cancels the query context mid-flight: the
// coordinator must return the context error promptly, not grind through
// retries against a hung shard.
func TestCancellationPropagates(t *testing.T) {
	sys := tpchSystem(t)
	release := make(chan struct{})
	defer close(release)
	cl := startCluster(t, sys, 2, clusterConfig{
		wrap: func(i int, h http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				<-release
			})
		},
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := cl.coord.QueryContext(ctx, []string{"john", "tv"}, 5)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) && !errors.Is(err, shard.ErrNoQuorum) {
			t.Fatalf("cancelled query returned %v", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("cancelled query still running after 3s")
	}
}
