package shard_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/qserve"
	"repro/internal/shard"
)

// Both serving fronts satisfy the scored interface — the web layer can
// swap one for the other without caring which is behind it.
var (
	_ qserve.ScoredEngine = (*core.System)(nil)
	_ qserve.ScoredEngine = (*shard.Coordinator)(nil)
)

// TestScoredEquivalenceAcrossN: the coordinator's scored path must match
// the single-node engine for every scorer, at every shard count — the
// default via the unscored reference path, the non-default scorers via
// the single-node scored path (both full-enumerate then rank, so the
// scatter-gather merge is the only thing under test).
func TestScoredEquivalenceAcrossN(t *testing.T) {
	sys := tpchSystem(t)
	vocab := queryVocab(sys)
	if len(vocab) < 4 {
		t.Fatalf("test dataset has only %d multi-posting terms", len(vocab))
	}
	ctx := context.Background()
	queries := [][]string{
		{vocab[0], vocab[1]},
		{vocab[2], vocab[3]},
		{vocab[1], vocab[len(vocab)-1]},
	}
	for _, n := range []int{1, 3} {
		cl := startCluster(t, sys, n, clusterConfig{})
		for _, kws := range queries {
			for _, k := range []int{2, 10} {
				want, err := sys.QueryContext(ctx, kws, k)
				if err != nil {
					t.Fatal(err)
				}
				got, rx, err := cl.coord.QueryScoredContext(ctx, kws, k, "edgecount")
				if err != nil {
					t.Fatalf("n=%d %v: %v", n, kws, err)
				}
				if rx != nil {
					t.Fatalf("n=%d %v: unexpected relaxation %v", n, kws, rx)
				}
				mustEqualResults(t, fmt.Sprintf("n=%d %v k=%d edgecount", n, kws, k), got, want)

				for _, name := range []string{"weighted", "diversified"} {
					want, _, err := sys.QueryScoredContext(ctx, kws, k, name)
					if err != nil {
						t.Fatal(err)
					}
					got, _, err := cl.coord.QueryScoredContext(ctx, kws, k, name)
					if err != nil {
						t.Fatalf("n=%d %v %s: %v", n, kws, name, err)
					}
					mustEqualResults(t, fmt.Sprintf("n=%d %v k=%d %s", n, kws, k, name), got, want)
				}
			}
		}
	}
}

// Relaxation must survive the scatter-gather: a keyword no shard can
// match is dropped at the coordinator with the same record and the same
// answers as the single-node engine.
func TestCoordinatorRelaxation(t *testing.T) {
	sys := tpchSystem(t)
	sys.Opts.Relax = true // shards share sys in-process, so all sides agree
	vocab := queryVocab(sys)
	ctx := context.Background()
	kws := []string{vocab[0], "zzznotaword"}

	want, rxWant, err := sys.QueryScoredContext(ctx, kws, 10, "")
	if err != nil {
		t.Fatal(err)
	}
	if rxWant == nil || len(rxWant.Dropped) != 1 || rxWant.Dropped[0] != "zzznotaword" {
		t.Fatalf("single-node relaxation = %+v", rxWant)
	}

	for _, n := range []int{1, 3} {
		cl := startCluster(t, sys, n, clusterConfig{})
		got, rx, err := cl.coord.QueryScoredContext(ctx, kws, 10, "")
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if rx == nil || len(rx.Dropped) != 1 || rx.Dropped[0] != "zzznotaword" {
			t.Fatalf("n=%d: coordinator relaxation = %+v", n, rx)
		}
		mustEqualResults(t, fmt.Sprintf("n=%d relaxed", n), got, want)

		// Every keyword unmatched: empty answer plus the full record,
		// not an error.
		empty, rx, err := cl.coord.QueryScoredContext(ctx, []string{"zzznotaword", "qqnever"}, 10, "")
		if err != nil {
			t.Fatalf("n=%d all-dropped: %v", n, err)
		}
		if len(empty) != 0 || rx == nil || len(rx.Dropped) != 2 {
			t.Fatalf("n=%d all-dropped: %d results, relaxation %+v", n, len(empty), rx)
		}
	}
}

func shardCacheStats(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url + "/debug/shardcache")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/shardcache: %s", resp.Status)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestShardExecuteCache: repeating a query hits the shard-local execute
// cache (visible on /debug/shardcache), answers stay byte-identical,
// and InvalidateCache empties it.
func TestShardExecuteCache(t *testing.T) {
	sys := tpchSystem(t)
	vocab := queryVocab(sys)
	cl := startCluster(t, sys, 3, clusterConfig{})
	for _, s := range cl.shards {
		s.Cache = qserve.NewResultCache(0, 64, 1<<20, time.Minute)
	}
	ctx := context.Background()
	kws := []string{vocab[0], vocab[1]}

	first, err := cl.coord.QueryContext(ctx, kws, 10)
	if err != nil {
		t.Fatal(err)
	}
	second, err := cl.coord.QueryContext(ctx, kws, 10)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualResults(t, "cache repeat", second, first)

	hits := 0.0
	for _, ts := range cl.servers {
		st := shardCacheStats(t, ts.URL)
		if st["enabled"] != true {
			t.Fatalf("cache not enabled: %+v", st)
		}
		hits += st["hits"].(float64)
	}
	if hits == 0 {
		t.Fatal("no shard reported an execute-cache hit after a repeated query")
	}

	for _, s := range cl.shards {
		s.InvalidateCache()
	}
	for _, ts := range cl.servers {
		if st := shardCacheStats(t, ts.URL); st["entries"].(float64) != 0 {
			t.Fatalf("entries after invalidation: %+v", st)
		}
	}

	// Post-invalidation answers are rebuilt, not lost.
	third, err := cl.coord.QueryContext(ctx, kws, 10)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualResults(t, "post-invalidation", third, first)
}
