package optimizer_test

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestExplain(t *testing.T) {
	s := fig1System(t, core.Options{Z: 8})
	plans, err := s.Plans([]string{"john", "vcr"})
	if err != nil {
		t.Fatal(err)
	}
	sawProbe := false
	for _, pp := range plans {
		out := pp.Plan.Explain(s.TSS, s.Store)
		if !strings.Contains(out, "seed") {
			t.Fatalf("explain missing seed:\n%s", out)
		}
		if strings.Contains(out, "probe") {
			sawProbe = true
			if !strings.Contains(out, "clustered") && !strings.Contains(out, "hash") && !strings.Contains(out, "scan") {
				t.Fatalf("explain missing access path:\n%s", out)
			}
		}
	}
	if !sawProbe {
		t.Fatal("no plan had probe steps")
	}
	// Explain must also work without a store (no access paths).
	if out := plans[len(plans)-1].Plan.Explain(s.TSS, nil); out == "" {
		t.Fatal("empty explain")
	}
}
