package qserve

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/exec"
)

func rs(n int) []exec.Result {
	out := make([]exec.Result, n)
	for i := range out {
		out[i] = exec.Result{Bind: []int64{int64(i)}, Score: i}
	}
	return out
}

func TestCacheLRUEviction(t *testing.T) {
	// One shard so eviction order is fully deterministic.
	c := newResultCache(1, 3, 1<<20, 0)
	for i := 0; i < 3; i++ {
		c.put(fmt.Sprintf("q%d", i), rs(1), nil)
	}
	// Touch q0 so q1 is the LRU victim.
	if _, _, ok := c.get("q0"); !ok {
		t.Fatal("q0 missing")
	}
	if ev := c.put("q3", rs(1), nil); ev != 1 {
		t.Fatalf("evicted %d entries, want 1", ev)
	}
	if _, _, ok := c.get("q1"); ok {
		t.Fatal("q1 should have been evicted (LRU)")
	}
	for _, k := range []string{"q0", "q2", "q3"} {
		if _, _, ok := c.get(k); !ok {
			t.Fatalf("%s should have survived", k)
		}
	}
}

func TestCacheByteBudget(t *testing.T) {
	big := rs(100)
	budget := 2*resultBytes("k", big) + resultBytes("k", big)/2
	c := newResultCache(1, 1000, budget, 0)
	c.put("a", big, nil)
	c.put("b", big, nil)
	if ev := c.put("c", big, nil); ev == 0 {
		t.Fatal("third oversized entry should evict")
	}
	entries, bytes := c.usage()
	if bytes > budget {
		t.Fatalf("cache holds %d bytes over budget %d", bytes, budget)
	}
	if entries != 2 {
		t.Fatalf("entries = %d, want 2", entries)
	}
}

func TestCacheOversizedEntryStays(t *testing.T) {
	// An entry larger than the whole budget is still admitted alone (the
	// eviction loop keeps at least one entry), so a giant query cannot
	// wedge the shard into thrashing.
	c := newResultCache(1, 10, 16, 0)
	c.put("giant", rs(1000), nil)
	if _, _, ok := c.get("giant"); !ok {
		t.Fatal("oversized entry evicted itself")
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	c := newResultCache(2, 100, 1<<20, time.Millisecond)
	c.put("q", rs(2), nil)
	if _, _, ok := c.get("q"); !ok {
		t.Fatal("fresh entry missing")
	}
	time.Sleep(5 * time.Millisecond)
	if _, _, ok := c.get("q"); ok {
		t.Fatal("expired entry served")
	}
	entries, bytes := c.usage()
	if entries != 0 || bytes != 0 {
		t.Fatalf("expired entry retained: %d entries, %d bytes", entries, bytes)
	}
}

func TestCachePutRefreshesEntry(t *testing.T) {
	c := newResultCache(1, 10, 1<<20, 0)
	c.put("q", rs(1), nil)
	c.put("q", rs(5), nil)
	got, _, ok := c.get("q")
	if !ok || len(got) != 5 {
		t.Fatalf("refresh lost: ok=%v len=%d", ok, len(got))
	}
	entries, _ := c.usage()
	if entries != 1 {
		t.Fatalf("duplicate entries after refresh: %d", entries)
	}
}

func TestCacheKeyNormalization(t *testing.T) {
	a, err := cacheKey("topk", []string{"Codd", "Relational"}, 10, exec.NestedLoop, "")
	if err != nil {
		t.Fatal(err)
	}
	b, err := cacheKey("topk", []string{"relational!", "CODD"}, 10, exec.NestedLoop, "")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("permuted/case keys differ:\n%q\n%q", a, b)
	}
	c, _ := cacheKey("topk", []string{"codd", "relational"}, 20, exec.NestedLoop, "")
	if a == c {
		t.Fatal("different k collides")
	}
	d, _ := cacheKey("all", []string{"codd", "relational"}, 10, exec.NestedLoop, "")
	if a == d {
		t.Fatal("different kind collides")
	}
	e, _ := cacheKey("topk", []string{"codd", "codd"}, 10, exec.NestedLoop, "")
	f, _ := cacheKey("topk", []string{"codd"}, 10, exec.NestedLoop, "")
	if e == f {
		t.Fatal("keyword bag collapsed duplicates")
	}
	// Multi-token phrases normalize too.
	g, _ := cacheKey("topk", []string{"E. F. Codd"}, 10, exec.NestedLoop, "")
	h, _ := cacheKey("topk", []string{"e f codd"}, 10, exec.NestedLoop, "")
	if g != h {
		t.Fatalf("phrase keys differ:\n%q\n%q", g, h)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h histogram
	for i := 0; i < 90; i++ {
		h.observe(10 * time.Microsecond) // bucket upper bound 15µs
	}
	for i := 0; i < 10; i++ {
		h.observe(10 * time.Millisecond)
	}
	p50, p95 := h.quantile(0.50), h.quantile(0.95)
	if p50 > time.Millisecond {
		t.Fatalf("p50 = %v, want ≤1ms", p50)
	}
	if p95 < time.Millisecond {
		t.Fatalf("p95 = %v, want ≥1ms", p95)
	}
	if h.quantile(1.0) < p95 {
		t.Fatal("p100 < p95")
	}
	var empty histogram
	if empty.quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
}
