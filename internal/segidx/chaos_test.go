package segidx_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/kwindex"
	"repro/internal/segidx"
)

// Chaos suite: kill the store at every structural point of flush and
// compaction — and tear its files at arbitrary byte cuts — then reopen
// and check the crash-safety invariant: every acknowledged write is
// recovered, an unacknowledged one vanishes whole, and the store either
// opens with correct answers or fails loudly. Never silently wrong.

var errChaosKill = errors.New("chaos: simulated kill")

// killAt returns a crash hook that simulates a kill at one named point.
func killAt(point string) func(string) error {
	return func(p string) error {
		if p == point {
			return errChaosKill
		}
		return nil
	}
}

// chaosState seeds a store with two generations of acknowledged writes:
// a flushed segment (docs 1-3) and WAL-only state (doc 4 updated over
// the segment, doc 2 deleted, doc 5 fresh). Returns the reference the
// reopened store must match.
func chaosState(t *testing.T, s *segidx.Store) map[int64]segidx.Document {
	t.Helper()
	surviving := make(map[int64]segidx.Document)
	for i := int64(1); i <= 4; i++ {
		d := doc(i, field(i*10, "name", "name", fmt.Sprintf("john doc%d", i)))
		mustAdd(t, s, d)
		surviving[i] = d
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	upd := doc(4, field(40, "name", "name", "mary updated"))
	mustAdd(t, s, upd)
	surviving[4] = upd
	mustDelete(t, s, 2)
	delete(surviving, 2)
	fresh := doc(5, field(50, "comment", "comment", "urgent order"))
	mustAdd(t, s, fresh)
	surviving[5] = fresh
	return surviving
}

func requireChaosEquivalent(t *testing.T, stage string, s *segidx.Store, surviving map[int64]segidx.Document) {
	t.Helper()
	ref := refIndex(surviving)
	keys := []string{
		"john", "mary", "updated", "urgent", "order", "postcrash",
		"doc1", "doc2", "doc3", "doc4",
		"batch1", "batch2", "batch3", "batch4",
	}
	for _, k := range keys {
		want := ref.ContainingList(k)
		got := s.ContainingList(k)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !kwPostingsEqual(got, want) {
			t.Fatalf("%s: ContainingList(%q)\n got %+v\nwant %+v", stage, k, got, want)
		}
	}
}

func kwPostingsEqual(a, b []kwindex.Posting) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestChaosCrashMidFlush(t *testing.T) {
	points := []string{
		"flush:after-wal-rotate",
		"flush:after-segment-write",
		"flush:before-manifest",
		"flush:after-manifest",
	}
	for _, point := range points {
		point := point
		t.Run(strings.ReplaceAll(point, ":", "_"), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			s := openStore(t, dir, segidx.Options{CompactAt: -1, FlushBytes: -1})
			surviving := chaosState(t, s)

			s.SetCrashHook(killAt(point))
			if err := s.Flush(); !errors.Is(err, errChaosKill) {
				t.Fatalf("Flush = %v, want the simulated kill", err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			s2 := openStore(t, dir, segidx.Options{CompactAt: -1, FlushBytes: -1})
			requireChaosEquivalent(t, point, s2, surviving)

			// Whatever the crash left, the next flush must converge to a
			// clean committed state.
			if err := s2.Flush(); err != nil {
				t.Fatal(err)
			}
			requireChaosEquivalent(t, point+" reflushed", s2, surviving)
			st := s2.Stats()
			if st.MemDocs != 0 || st.MemTombs != 0 || st.Sealed != 0 {
				t.Fatalf("state not fully flushed: %+v", st)
			}
		})
	}
}

func TestChaosCrashMidCompaction(t *testing.T) {
	points := []string{
		"compact:after-segment-write",
		"compact:before-manifest",
		"compact:after-manifest",
	}
	for _, point := range points {
		point := point
		t.Run(strings.ReplaceAll(point, ":", "_"), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			s := openStore(t, dir, segidx.Options{CompactAt: -1, FlushBytes: -1})
			surviving := chaosState(t, s)
			if err := s.Flush(); err != nil { // two segments to merge
				t.Fatal(err)
			}

			s.SetCrashHook(killAt(point))
			if err := s.Compact(); !errors.Is(err, errChaosKill) {
				t.Fatalf("Compact = %v, want the simulated kill", err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			s2 := openStore(t, dir, segidx.Options{CompactAt: -1, FlushBytes: -1})
			requireChaosEquivalent(t, point, s2, surviving)

			// The interrupted compaction left either the old generation or
			// the committed new one — and a rerun converges to one segment.
			if err := s2.Compact(); err != nil {
				t.Fatal(err)
			}
			requireChaosEquivalent(t, point+" recompacted", s2, surviving)
			if st := s2.Stats(); len(st.Segments) != 1 {
				t.Fatalf("segments after recompaction = %d, want 1", len(st.Segments))
			}
		})
	}
}

// TestChaosManifestTornSwap simulates a kill between writing the
// manifest temp and the atomic rename: the orphaned temp must be
// quarantined and the previous committed manifest stays in force.
func TestChaosManifestTornSwap(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, segidx.Options{CompactAt: -1, FlushBytes: -1})
	surviving := chaosState(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Torn temp next to the committed manifest, then reopen.
	tmp := filepath.Join(dir, "MANIFEST.tmp-999999")
	if err := os.WriteFile(tmp, []byte("partial manifest write"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, dir, segidx.Options{CompactAt: -1, FlushBytes: -1})
	requireChaosEquivalent(t, "torn manifest swap", s2, surviving)
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("orphaned manifest temp still live: %v", err)
	}
	quarantined, err := filepath.Glob(tmp + "*")
	if err != nil || len(quarantined) != 1 || !strings.HasSuffix(quarantined[0], ".torn") {
		t.Fatalf("temp not quarantined to .torn: %v (%v)", quarantined, err)
	}
}

// TestChaosCorruptManifestFailsLoudly: a bit flip inside the committed
// manifest must refuse to open — never serve from a state the checksum
// cannot vouch for.
func TestChaosCorruptManifestFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, segidx.Options{CompactAt: -1, FlushBytes: -1})
	chaosState(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "MANIFEST")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x10
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := segidx.Open(dir, segidx.Options{}); err == nil {
		t.Fatal("Open accepted a manifest that fails its checksum")
	}
}

// TestChaosWALTornTailTable cuts the live WAL at the byte granularity
// of PR 5's torn-write table — empty, one byte, half, one short, plus a
// mid-record bit flip — and checks prefix semantics: the reopened store
// serves exactly the batches of the longest valid record prefix, whole
// batches only.
func TestChaosWALTornTailTable(t *testing.T) {
	mkBatches := func() []tornBatch {
		var out []tornBatch
		for i := int64(1); i <= 4; i++ {
			i := i
			var b segidx.Batch
			d := doc(i, field(i*10, "name", "name", fmt.Sprintf("john batch%d", i)))
			b.AddDoc(d)
			if i == 3 {
				b.DeleteTO(1) // batch 3 is multi-op: both ops or neither
			}
			out = append(out, tornBatch{b, func(m map[int64]segidx.Document) {
				m[i] = d
				if i == 3 {
					delete(m, 1)
				}
			}})
		}
		return out
	}

	// Seed once to learn the WAL's size and record boundaries.
	probeDir := t.TempDir()
	s, err := segidx.Open(probeDir, segidx.Options{CompactAt: -1, FlushBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	var walPath string
	for _, be := range mkBatches() {
		if err := s.Apply(be.b); err != nil {
			t.Fatal(err)
		}
	}
	walPath = walPathOf(t, probeDir)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}

	cuts := []int{0, 1, len(full) / 2, len(full) - 1, len(full)}
	for _, cut := range cuts {
		cut := cut
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			t.Parallel()
			runTornWALCase(t, mkBatches(), full[:cut])
		})
	}
	t.Run("bitflip", func(t *testing.T) {
		t.Parallel()
		flipped := append([]byte(nil), full...)
		flipped[len(full)/2] ^= 0x80
		runTornWALCase(t, mkBatches(), flipped)
	})
}

func walPathOf(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("wal files = %v (%v), want exactly 1", matches, err)
	}
	return matches[0]
}

// tornBatch pairs one acknowledged batch with its effect on the model.
type tornBatch struct {
	b     segidx.Batch
	apply func(map[int64]segidx.Document)
}

// runTornWALCase installs damaged WAL bytes into a fresh store
// directory and verifies prefix semantics on reopen.
func runTornWALCase(t *testing.T, batches []tornBatch, damaged []byte) {
	// Expected survivors: replay the damaged bytes through the same
	// whole-record decoder the store uses, then apply that prefix of
	// batches to the model.
	nRecs := 0
	segidx.ReplayWAL(damaged, func(segidx.Batch) { nRecs++ })
	surviving := make(map[int64]segidx.Document)
	for i := 0; i < nRecs; i++ {
		batches[i].apply(surviving)
	}

	dir := t.TempDir()
	s, err := segidx.Open(dir, segidx.Options{CompactAt: -1, FlushBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	wal := walPathOf(t, dir)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wal, damaged, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := segidx.Open(dir, segidx.Options{CompactAt: -1, FlushBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	requireChaosEquivalent(t, fmt.Sprintf("torn wal (%d bytes, %d records)", len(damaged), nRecs), s2, surviving)

	// Appends after recovery must land cleanly past the truncated tail.
	extra := doc(99, field(990, "name", "name", "postcrash"))
	if err := s2.Add(extra); err != nil {
		t.Fatal(err)
	}
	surviving[99] = extra
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := segidx.Open(dir, segidx.Options{CompactAt: -1, FlushBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	requireChaosEquivalent(t, "torn wal + post-crash append", s3, surviving)
}
