// Package ctxflow seeds violations for the ctxflow analyzer: functions
// holding a context.Context that fail to thread it.
package ctxflow

import "context"

type store struct{}

func (s *store) Get(key string) string { return key }

func (s *store) GetContext(ctx context.Context, key string) string { return key }

func lookup(key string) string { return key }

func lookupContext(ctx context.Context, key string) string { return key }

// reap has no Context variant, so calling it from a ctx-holding
// function is fine.
func reap() {}

func handle(ctx context.Context, s *store) {
	_ = context.Background() // violation: mints a root context while holding ctx

	_ = s.Get("a") // violation: GetContext exists on *store

	_ = lookup("b") // violation: lookupContext exists in this package

	_ = s.GetContext(ctx, "a") // ok: context variant used
	_ = lookupContext(ctx, "b")
	reap() // ok: no context variant exists

	//xk:ignore ctxflow the flight must outlive the request that started it
	_ = context.TODO() // suppressed
}

// detached has no ctx parameter; minting a root context here is the
// whole point and must not be flagged.
func detached(s *store) {
	ctx := context.Background()
	_ = s.GetContext(ctx, "a")
	_ = s.Get("a")
}
