package qserve_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/qserve"
)

// fakeEngine counts pipeline runs and can block until released or until
// the context ends, standing in for a slow join execution.
type fakeEngine struct {
	calls   atomic.Int64
	block   chan struct{} // nil = return immediately
	results []exec.Result
}

func (f *fakeEngine) run(ctx context.Context) ([]exec.Result, error) {
	f.calls.Add(1)
	if f.block != nil {
		select {
		case <-f.block:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return f.results, nil
}

func (f *fakeEngine) QueryContext(ctx context.Context, keywords []string, k int) ([]exec.Result, error) {
	return f.run(ctx)
}

func (f *fakeEngine) QueryAllStrategyContext(ctx context.Context, keywords []string, strat exec.Strategy) ([]exec.Result, error) {
	return f.run(ctx)
}

func fig1System(t testing.TB) *core.System {
	t.Helper()
	ds, err := datagen.TPCHFigure1()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.LoadPrepared(&core.Prepared{Schema: ds.Schema, TSS: ds.TSS, Data: ds.Data, Obj: ds.Obj},
		core.Options{Z: 8})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestCacheHitAndKeyNormalization(t *testing.T) {
	sys := fig1System(t)
	qs := qserve.New(sys, qserve.Options{})
	ctx := context.Background()

	base, err := qs.Query(ctx, []string{"john", "vcr"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) == 0 {
		t.Fatal("no results")
	}
	// Permuted order, different case, extra punctuation: all one entry.
	for _, q := range [][]string{
		{"vcr", "john"},
		{"John", "VCR"},
		{"  VCR!", "john,"},
	} {
		rs, err := qs.Query(ctx, q, 10)
		if err != nil {
			t.Fatalf("%v: %v", q, err)
		}
		if len(rs) != len(base) {
			t.Fatalf("%v: %d results, want %d", q, len(rs), len(base))
		}
	}
	st := qs.Stats()
	if st.Misses != 1 || st.Hits != 3 {
		t.Fatalf("hits=%d misses=%d, want 3/1", st.Hits, st.Misses)
	}
	// A different k is a different entry.
	if _, err := qs.Query(ctx, []string{"john", "vcr"}, 1); err != nil {
		t.Fatal(err)
	}
	if st := qs.Stats(); st.Misses != 2 {
		t.Fatalf("k=1 should miss: misses=%d", st.Misses)
	}
	if st := qs.Stats(); st.CacheEntries != 2 || st.CacheBytes <= 0 {
		t.Fatalf("cache usage = %d entries / %d bytes", st.CacheEntries, st.CacheBytes)
	}
}

func TestQueryAllThroughCache(t *testing.T) {
	sys := fig1System(t)
	qs := qserve.New(sys, qserve.Options{})
	ctx := context.Background()
	a, err := qs.QueryAll(ctx, []string{"us", "vcr"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := qs.QueryAll(ctx, []string{"VCR", "US"})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("all-results mismatch: %d vs %d", len(a), len(b))
	}
	want, err := sys.QueryAll([]string{"us", "vcr"})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(want) {
		t.Fatalf("served %d results, engine says %d", len(a), len(want))
	}
	if st := qs.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", st.Hits, st.Misses)
	}
}

func TestSingleflightCollapse(t *testing.T) {
	eng := &fakeEngine{block: make(chan struct{})}
	qs := qserve.New(eng, qserve.Options{MaxEntries: -1}) // no cache: isolate collapse
	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = qs.Query(context.Background(), []string{"codd", "relational"}, 10)
		}(i)
	}
	// Let every goroutine reach the flight, then release the pipeline.
	for qs.InFlight() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	close(eng.block)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	if got := eng.calls.Load(); got != 1 {
		t.Fatalf("pipeline ran %d times, want 1", got)
	}
	st := qs.Stats()
	if st.Collapses != n-1 {
		t.Fatalf("collapses=%d, want %d", st.Collapses, n-1)
	}
	if st.Misses != n {
		t.Fatalf("misses=%d, want %d", st.Misses, n)
	}
}

func TestAdmissionControlSheds(t *testing.T) {
	eng := &fakeEngine{block: make(chan struct{})}
	qs := qserve.New(eng, qserve.Options{
		MaxEntries:    -1,
		MaxConcurrent: 1,
		QueueWait:     5 * time.Millisecond,
	})
	// Occupy the only slot with a distinct query.
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = qs.Query(context.Background(), []string{"occupier"}, 10)
	}()
	for qs.InFlight() == 0 {
		time.Sleep(time.Millisecond)
	}
	// A different query cannot be admitted within the queue wait.
	_, err := qs.Query(context.Background(), []string{"shed", "me"}, 10)
	if !errors.Is(err, qserve.ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if st := qs.Stats(); st.Sheds != 1 {
		t.Fatalf("sheds=%d, want 1", st.Sheds)
	}
	close(eng.block)
	<-done
}

func TestCancellationStopsFlight(t *testing.T) {
	eng := &fakeEngine{block: make(chan struct{})} // never released: only ctx can end it
	qs := qserve.New(eng, qserve.Options{MaxEntries: -1})
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := qs.QueryAll(ctx, []string{"long", "query"})
		errc <- err
	}()
	for qs.InFlight() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled query did not return")
	}
	// The abandoned flight's own context was cancelled, releasing the
	// engine (and the admission slot).
	deadline := time.Now().Add(2 * time.Second)
	for qs.InFlight() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("flight still holds its slot after cancellation")
		}
		time.Sleep(time.Millisecond)
	}
	if st := qs.Stats(); st.Cancels != 1 {
		t.Fatalf("cancels=%d, want 1", st.Cancels)
	}
}

func TestCancelOneWaiterKeepsFlightAlive(t *testing.T) {
	eng := &fakeEngine{block: make(chan struct{}), results: []exec.Result{{Score: 1}}}
	qs := qserve.New(eng, qserve.Options{MaxEntries: -1})
	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	errs := make(chan error, 2)
	go func() {
		_, err := qs.Query(ctx1, []string{"shared"}, 10)
		errs <- err
	}()
	for qs.InFlight() == 0 {
		time.Sleep(time.Millisecond)
	}
	rsc := make(chan []exec.Result, 1)
	go func() {
		rs, err := qs.Query(context.Background(), []string{"shared"}, 10)
		rsc <- rs
		errs <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel1() // first caller leaves; second still waits
	if err := <-errs; !errors.Is(err, context.Canceled) {
		t.Fatalf("first caller err = %v", err)
	}
	close(eng.block)
	if err := <-errs; err != nil {
		t.Fatalf("surviving caller err = %v", err)
	}
	if rs := <-rsc; len(rs) != 1 {
		t.Fatalf("surviving caller got %d results", len(rs))
	}
	if got := eng.calls.Load(); got != 1 {
		t.Fatalf("pipeline ran %d times, want 1", got)
	}
}

// TestConcurrentMixedQueries is the race-focused serving test: many
// goroutines fire identical and distinct queries through one server;
// results must match the engine and the hit/collapse counters must
// account for every request. Run under -race in CI (see Makefile).
func TestConcurrentMixedQueries(t *testing.T) {
	sys := fig1System(t)
	qs := qserve.New(sys, qserve.Options{MaxConcurrent: 4, QueueWait: 5 * time.Second})
	queries := [][]string{
		{"john", "vcr"},
		{"us", "vcr"},
		{"tv", "vcr"},
		{"mike", "dvd"},
	}
	want := make(map[int]int)
	for i, q := range queries {
		rs, err := sys.QueryAll(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = len(rs)
	}
	const workers = 16
	const perWorker = 8
	var wg sync.WaitGroup
	errc := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				qi := (w + i) % len(queries)
				rs, err := qs.QueryAll(context.Background(), queries[qi])
				if err != nil {
					errc <- fmt.Errorf("query %v: %w", queries[qi], err)
					return
				}
				if len(rs) != want[qi] {
					errc <- fmt.Errorf("query %v: %d results, want %d", queries[qi], len(rs), want[qi])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	st := qs.Stats()
	total := st.Hits + st.Misses
	if total != workers*perWorker {
		t.Fatalf("hits+misses = %d, want %d (stats: %+v)", total, workers*perWorker, st)
	}
	// Each distinct query runs the pipeline at least once; everything
	// else must be served by the cache or a collapsed flight.
	if st.Hits == 0 {
		t.Fatalf("no cache hits across %d requests: %+v", total, st)
	}
	if st.Sheds != 0 || st.Errors != 0 {
		t.Fatalf("unexpected sheds/errors: %+v", st)
	}
	if st.Served != total {
		t.Fatalf("latency histogram served %d, want %d", st.Served, total)
	}
	if st.P95 < st.P50 {
		t.Fatalf("P95 %v < P50 %v", st.P95, st.P50)
	}
}

func TestEmptyAndInvalidQueries(t *testing.T) {
	qs := qserve.New(&fakeEngine{}, qserve.Options{})
	if _, err := qs.Query(context.Background(), nil, 10); err == nil {
		t.Fatal("empty query accepted")
	}
	if _, err := qs.Query(context.Background(), []string{"..."}, 10); err == nil {
		t.Fatal("tokenless keyword accepted")
	}
}
