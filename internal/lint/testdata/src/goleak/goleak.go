// Package goleak seeds violations for the goleak analyzer: goroutines
// launched in loops or on per-request paths with no join or
// cancellation mechanism. The compliant shapes thread a ctx, share a
// WaitGroup, or gather on a channel — the patterns the shard
// coordinator's scatter phases use.
package goleak

import (
	"context"
	"net/http"
	"sync"
)

func work(int) {}

func worker(ctx context.Context, j int) {
	select {
	case <-ctx.Done():
	default:
		work(j)
	}
}

// fanOutLeaky launches one goroutine per job with nothing reaching
// back: a slow job strands its goroutine forever.
func fanOutLeaky(jobs []int) {
	for _, j := range jobs {
		go work(j)
	}
}

// handleLeaky spawns per-request with no ctx: goroutine count grows
// with traffic.
func handleLeaky(w http.ResponseWriter, r *http.Request) {
	go func() {
		work(1)
	}()
	w.WriteHeader(http.StatusOK)
}

// fanOutWG joins every goroutine through a WaitGroup.
func fanOutWG(jobs []int) {
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			work(j)
		}(j)
	}
	wg.Wait()
}

// fanOutCtx threads the caller's ctx into every worker: cancellation
// can reach them.
func fanOutCtx(ctx context.Context, jobs []int) {
	for _, j := range jobs {
		go worker(ctx, j)
	}
}

// fanOutGather sends results on a channel the launcher drains: every
// goroutine is accounted for.
func fanOutGather(jobs []int) []int {
	ch := make(chan int)
	for _, j := range jobs {
		go func(j int) { ch <- j }(j)
	}
	var out []int
	for range jobs {
		out = append(out, <-ch)
	}
	return out
}

// startDaemon is a single background goroutine outside any loop or
// request path: out of scope.
func startDaemon() {
	go work(3)
}

// handleFireAndForget documents a deliberate detached goroutine.
func handleFireAndForget(w http.ResponseWriter, r *http.Request) {
	//xk:ignore goleak fire-and-forget metrics flush; bounded by the process lifetime, not per-request state
	go work(2)
	w.WriteHeader(http.StatusOK)
}
