package decomp

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/cn"
	"repro/internal/tss"
)

// pathFragments returns the fragments induced by the simple paths of
// exactly `size` edges in the network.
func pathFragments(tg *tss.Graph, t *cn.TSSNetwork, size int) []Fragment {
	adj := netAdjacency(t)
	var out []Fragment
	seen := make(map[string]bool)
	var dfs func(path []int, steps []Step)
	dfs = func(path []int, steps []Step) {
		if len(steps) == size {
			if f, err := NewFragment(tg, steps); err == nil && !seen[f.Key()] {
				seen[f.Key()] = true
				out = append(out, f)
			}
			return
		}
		cur := path[len(path)-1]
		for _, h := range adj[cur] {
			on := false
			for _, v := range path {
				if v == h.to {
					on = true
					break
				}
			}
			if on {
				continue
			}
			dfs(append(path, h.to), append(steps, h.step))
		}
	}
	for v := range t.Occs {
		dfs([]int{v}, nil)
	}
	return out
}

// Decomposition is a named set of fragments together with the physical
// design applied when materializing their connection relations.
type Decomposition struct {
	Name      string
	Fragments []Fragment
	Physical  Physical
}

// Physical describes the storage design of a decomposition's relations,
// matching the variants compared in §7.
type Physical struct {
	// ClusterBothDirections sorts the primary copy forward and adds a
	// backward sorted copy, so probes in either traversal direction are
	// clustered range scans.
	ClusterBothDirections bool
	// HashIndexes builds a single-attribute hash index on every column.
	HashIndexes bool
}

// FragmentKeys returns the sorted canonical keys of the fragments.
func (d *Decomposition) FragmentKeys() []string {
	keys := make([]string, len(d.Fragments))
	for i, f := range d.Fragments {
		keys[i] = f.Key()
	}
	sort.Strings(keys)
	return keys
}

// Has reports whether the decomposition contains the fragment.
func (d *Decomposition) Has(f Fragment) bool {
	for _, g := range d.Fragments {
		if g.Key() == f.Key() {
			return true
		}
	}
	return false
}

// add appends f if not already present.
func (d *Decomposition) add(f Fragment) {
	if !d.Has(f) {
		d.Fragments = append(d.Fragments, f)
	}
}

// JoinBound returns L = ceil(M / (B+1)), the fragment size that suffices
// to evaluate any CTSSN of size up to M with at most B joins (Thm 5.1).
func JoinBound(m, b int) int {
	if b < 0 || m <= 0 {
		return m
	}
	return (m + b) / (b + 1)
}

// Minimal returns the minimal decomposition: one fragment per TSS edge
// (§5.1). Physical design is left zero; the §7 presets below vary it.
func Minimal(tg *tss.Graph) *Decomposition {
	d := &Decomposition{Name: "Minimal"}
	for _, e := range tg.Edges() {
		d.add(MustFragment(tg, Step{EdgeID: e.ID, Dir: Fwd}))
	}
	return d
}

// Complete returns the Complete decomposition of §7: every non-useless
// fragment (MVD ones included) of size up to L, which always contains the
// minimal decomposition, clustered in both directions.
func Complete(tg *tss.Graph, l int) *Decomposition {
	d := &Decomposition{Name: "Complete", Physical: Physical{ClusterBothDirections: true, HashIndexes: true}}
	for n := 1; n <= l; n++ {
		for _, f := range EnumerateFragments(tg, n, true) {
			d.add(f)
		}
	}
	return d
}

// XKeyword runs the decomposition algorithm of Figure 12 for a maximum
// CTSSN size M and join budget B:
//
//  1. add the non-MVD fragments of size L = ceil(M/(B+1)) (plus the
//     minimal single-edge fragments, so every edge is covered as
//     Definition 5.2 requires);
//  2. list the CTSSN shapes of size up to M not covered with ≤ B joins;
//  3. add non-MVD fragments of size > L that help cover them;
//  4. greedily add the minimum number of MVD fragments of size ≤ L to
//     cover the rest.
//
// The result is the inlined, non-MVD-where-possible decomposition used
// for top-k execution, clustered in both directions with hash indexes.
func XKeyword(tg *tss.Graph, m, b int) (*Decomposition, error) {
	if m <= 0 || b < 0 {
		return nil, fmt.Errorf("decomp: need m > 0 and b >= 0 (got m=%d b=%d)", m, b)
	}
	// The algorithm is deterministic in the TSS graph structure, so its
	// output is memoized per (graph fingerprint, m, b): reloading the
	// same schema (tests, benchmark variants) skips the shape scan.
	memoKey := fmt.Sprintf("%s|m=%d|b=%d", graphFingerprint(tg), m, b)
	if v, ok := xkMemo.Load(memoKey); ok {
		d := v.(*Decomposition)
		cp := *d
		cp.Fragments = append([]Fragment(nil), d.Fragments...)
		return &cp, nil
	}
	d, err := xkeywordUncached(tg, m, b)
	if err != nil {
		return nil, err
	}
	xkMemo.Store(memoKey, d)
	cp := *d
	cp.Fragments = append([]Fragment(nil), d.Fragments...)
	return &cp, nil
}

var xkMemo sync.Map

func graphFingerprint(tg *tss.Graph) string {
	var sb strings.Builder
	for _, e := range tg.Edges() {
		sb.WriteString(e.From)
		sb.WriteByte('|')
		sb.WriteString(e.To)
		sb.WriteByte('|')
		sb.WriteString(e.PathString())
		fmt.Fprintf(&sb, "|%v%v%v%s;", e.Kind, e.ForwardMany, e.BackwardMany, e.ChoicePrefix)
	}
	return sb.String()
}

func xkeywordUncached(tg *tss.Graph, m, b int) (*Decomposition, error) {
	l := JoinBound(m, b)
	d := &Decomposition{Name: "XKeyword", Physical: Physical{ClusterBothDirections: true, HashIndexes: true}}
	// Single-edge fragments first: Definition 5.2 requires every edge in
	// at least one fragment, and CTSSNs shorter than L are evaluable
	// only through full fragments (projecting a longer relation would
	// lose connections lacking the extension).
	for _, f := range EnumerateFragments(tg, 1, false) {
		d.add(f)
	}
	for _, f := range EnumerateFragments(tg, l, false) {
		d.add(f)
	}

	// Shapes of size ≤ B+1 are always covered by the single-edge
	// fragments (one piece per edge uses at most B joins), so only
	// larger shapes need checking.
	var shapes []*cn.TSSNetwork
	for _, s := range EnumerateShapes(tg, m) {
		if s.Size() > b+1 {
			shapes = append(shapes, s)
		}
	}
	cov := NewCoverer(tg, d.Fragments)
	var queue []int
	for i, s := range shapes {
		if _, ok := cov.Cover(s, b); !ok {
			queue = append(queue, i)
		}
	}
	recheck := func(q []int) []int {
		cov = NewCoverer(tg, d.Fragments)
		var nq []int
		for _, si := range q {
			if _, ok := cov.Cover(shapes[si], b); !ok {
				nq = append(nq, si)
			}
		}
		return nq
	}
	// Candidate fragments of a given size are the simple paths of the
	// uncovered shapes — any other fragment cannot appear in them.
	candidates := func(q []int, size int, wantMVD bool) []Fragment {
		seen := make(map[string]Fragment)
		for _, si := range q {
			for _, f := range pathFragments(tg, shapes[si], size) {
				if f.IsUseless(tg) || f.HasMVD(tg) != wantMVD {
					continue
				}
				seen[f.Key()] = f
			}
		}
		keys := make([]string, 0, len(seen))
		for k := range seen {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		out := make([]Fragment, len(keys))
		for i, k := range keys {
			out[i] = seen[k]
		}
		return out
	}

	// Step 3: larger non-MVD fragments that help.
	for size := l + 1; size <= m && len(queue) > 0; size++ {
		for _, f := range candidates(queue, size, false) {
			helps := false
			trial := cov.With(f)
			for _, si := range queue {
				if _, ok := trial.Cover(shapes[si], b); ok {
					helps = true
					break
				}
			}
			if helps {
				d.add(f)
				cov = trial
			}
		}
		queue = recheck(queue)
	}

	// Step 4: greedy minimum MVD fragments of size ≤ L.
	if len(queue) > 0 {
		var mvds []Fragment
		for n := 2; n <= l; n++ {
			mvds = append(mvds, candidates(queue, n, true)...)
		}
		for len(queue) > 0 {
			bestGain, bestIdx := 0, -1
			for i, f := range mvds {
				if d.Has(f) {
					continue
				}
				trial := cov.With(f)
				gain := 0
				for _, si := range queue {
					if _, ok := trial.Cover(shapes[si], b); ok {
						gain++
					}
				}
				if gain > bestGain {
					bestGain, bestIdx = gain, i
				}
			}
			if bestIdx < 0 {
				return nil, fmt.Errorf("decomp: %d CTSSN shapes cannot be covered with B=%d joins (first: %s)",
					len(queue), b, shapes[queue[0]])
			}
			d.add(mvds[bestIdx])
			queue = recheck(queue)
		}
	}
	sort.Slice(d.Fragments, func(i, j int) bool { return d.Fragments[i].Key() < d.Fragments[j].Key() })
	return d, nil
}

// The §7 storage variants of the minimal decomposition.

// MinClust is the minimal decomposition with all clusterings per
// fragment (sorted copies in both directions).
func MinClust(tg *tss.Graph) *Decomposition {
	d := Minimal(tg)
	d.Name = "MinClust"
	d.Physical = Physical{ClusterBothDirections: true}
	return d
}

// MinNClustIndx is the minimal decomposition with single-attribute hash
// indexes on every column and no clustering.
func MinNClustIndx(tg *tss.Graph) *Decomposition {
	d := Minimal(tg)
	d.Name = "MinNClustIndx"
	d.Physical = Physical{HashIndexes: true}
	return d
}

// MinNClustNIndx is the minimal decomposition with no indexes and no
// clustering: every probe is a scan; hash joins are the sensible plan.
func MinNClustNIndx(tg *tss.Graph) *Decomposition {
	d := Minimal(tg)
	d.Name = "MinNClustNIndx"
	return d
}

// Combination unions two decompositions (used by the presentation-graph
// experiments: minimal + inlined).
func Combination(name string, ds ...*Decomposition) *Decomposition {
	out := &Decomposition{Name: name}
	for _, d := range ds {
		for _, f := range d.Fragments {
			out.add(f)
		}
		if d.Physical.ClusterBothDirections {
			out.Physical.ClusterBothDirections = true
		}
		if d.Physical.HashIndexes {
			out.Physical.HashIndexes = true
		}
	}
	return out
}
