// Package edgelist loads generic edge-list / relational dumps — a nodes
// file and an edges file, CSV or TSV — as a graphsource.Source, so
// non-XML data graphs (citation networks, wiki links, an exported SQL
// `edges` table) run through the unchanged XKeyword pipeline: schema
// and segment spec are inferred from the dump, the data graph is built
// with the same containment/reference shape the XML path produces, and
// tss.Decompose → kwindex → pipeline never know the difference.
//
// Format. The nodes file's header is `id,type,<attr>...`: every row is
// one entity with a unique string id, a type naming its segment, and
// optional attribute cells that become searchable text fields. The
// edges file's header is `from,to,label`: every row is one typed edge
// between two node ids. Tab-separated input is detected from the
// header. Example:
//
//	id,type,title,year,name
//	p1,paper,Proximity Search on Graphs,2003,
//	a1,author,,,Vagelis Hristidis
//
//	from,to,label
//	p1,a1,written_by
//
// Modeling. Each node row becomes a head node of its type with one
// child node per non-empty attribute (containment, like an XML
// element's fields). Each edge row becomes a dummy node labeled with
// the edge label, contained in the source and referencing the target —
// the exact authorref/cite idiom of the DBLP schema. The dummy is load-
// bearing, not cosmetic: TSS derivation contracts dummy chains into one
// target-object edge, but it deliberately drops length-1 intra-segment
// paths, so a direct same-type edge (paper cites paper) would silently
// vanish without it.
package edgelist

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/schema"
	"repro/internal/tss"
	"repro/internal/xmlgraph"
)

// Options configure Parse/Open.
type Options struct {
	// Name labels the dataset in errors and logs (default "edgelist").
	Name string
}

// Dataset is a parsed dump; it implements graphsource.Source (checked
// in the tests to avoid the import).
type Dataset struct {
	name   string
	schema *schema.Graph
	spec   tss.Spec
	data   *xmlgraph.Graph

	// NumEntities and NumLinks report the dump's row counts for logs.
	NumEntities int
	NumLinks    int
}

// DatasetName implements graphsource.Source.
func (d *Dataset) DatasetName() string { return d.name }

// SchemaGraph implements graphsource.Source.
func (d *Dataset) SchemaGraph() (*schema.Graph, error) { return d.schema, nil }

// Spec implements graphsource.Source.
func (d *Dataset) Spec() (tss.Spec, error) { return d.spec, nil }

// Data implements graphsource.Source.
func (d *Dataset) Data() (*xmlgraph.Graph, error) { return d.data, nil }

// Open loads a nodes file and an edges file from disk.
func Open(nodesPath, edgesPath string, opts Options) (*Dataset, error) {
	if opts.Name == "" {
		opts.Name = "edgelist:" + filepath.Base(nodesPath)
	}
	nf, err := os.Open(nodesPath)
	if err != nil {
		return nil, fmt.Errorf("edgelist: %w", err)
	}
	defer nf.Close() //xk:ignore errdrop read-only file; Parse sees every read error
	ef, err := os.Open(edgesPath)
	if err != nil {
		return nil, fmt.Errorf("edgelist: %w", err)
	}
	defer ef.Close() //xk:ignore errdrop read-only file; Parse sees every read error
	return Parse(nf, ef, opts)
}

// nodeRow is one parsed entity.
type nodeRow struct {
	id, typ string
	attrs   []string // parallel to the attr column list; "" = absent
}

// edgeRow is one parsed link.
type edgeRow struct {
	from, to, label string
}

// Parse reads the two files and builds the dataset: data graph, inferred
// schema, inferred segment spec. Every malformed input errors loudly —
// a dump that parses loads, or the caller learns exactly why not.
func Parse(nodes, edges io.Reader, opts Options) (*Dataset, error) {
	if opts.Name == "" {
		opts.Name = "edgelist"
	}
	attrCols, nrows, err := parseNodes(nodes)
	if err != nil {
		return nil, fmt.Errorf("edgelist: %s: %w", opts.Name, err)
	}
	erows, err := parseEdges(edges)
	if err != nil {
		return nil, fmt.Errorf("edgelist: %s: %w", opts.Name, err)
	}

	// Index the rows: id uniqueness, id -> type, per-type attribute
	// usage, per-(fromType,label,toType) edge usage.
	typeOf := make(map[string]string, len(nrows))
	attrUsed := make(map[string]map[int]bool) // type -> attr column set
	for _, r := range nrows {
		if _, dup := typeOf[r.id]; dup {
			return nil, fmt.Errorf("edgelist: %s: duplicate node id %q", opts.Name, r.id)
		}
		typeOf[r.id] = r.typ
		used := attrUsed[r.typ]
		if used == nil {
			used = make(map[int]bool)
			attrUsed[r.typ] = used
		}
		for ci, v := range r.attrs {
			if v != "" {
				used[ci] = true
			}
		}
	}
	type linkShape struct{ from, label, to string }
	linkShapes := make(map[linkShape]bool)
	for _, e := range erows {
		ft, ok := typeOf[e.from]
		if !ok {
			return nil, fmt.Errorf("edgelist: %s: edge references unknown node id %q", opts.Name, e.from)
		}
		tt, ok := typeOf[e.to]
		if !ok {
			return nil, fmt.Errorf("edgelist: %s: edge references unknown node id %q", opts.Name, e.to)
		}
		linkShapes[linkShape{ft, e.label, tt}] = true
	}

	// Collision checks up front, with edgelist-level messages: the same
	// conditions would fail later inside schema.Assign with a conformance
	// error that names none of the dump's columns.
	types := sortedKeys(attrUsed)
	typeSet := make(map[string]bool, len(types))
	for _, t := range types {
		typeSet[t] = true
	}
	labelFromTypes := make(map[string][]string) // label -> from types (sorted later)
	labelToTypes := make(map[string][]string)
	for ls := range linkShapes {
		if typeSet[ls.label] {
			return nil, fmt.Errorf("edgelist: %s: edge label %q collides with a node type", opts.Name, ls.label)
		}
		if attrUsed[ls.from] != nil {
			for ci := range attrUsed[ls.from] {
				if attrCols[ci] == ls.label {
					return nil, fmt.Errorf("edgelist: %s: edge label %q collides with attribute %q of type %q", opts.Name, ls.label, attrCols[ci], ls.from)
				}
			}
		}
		labelFromTypes[ls.label] = appendUnique(labelFromTypes[ls.label], ls.from)
		labelToTypes[ls.label] = appendUnique(labelToTypes[ls.label], ls.to)
	}
	labels := sortedKeys(labelFromTypes)

	// Infer the schema: one root-capable node per type, one tagged child
	// per used (type, attribute), one dummy node per edge label with
	// containment in from-types and references to to-types. Everything
	// iterates in sorted/column order so the same dump always produces
	// the same schema.
	sg := schema.New()
	var steps []error
	for _, t := range types {
		steps = append(steps, sg.AddNode(t, schema.All), sg.SetRoot(t))
	}
	for _, t := range types {
		for _, ci := range sortedInts(attrUsed[t]) {
			attr := attrCols[ci]
			steps = append(steps,
				sg.AddTaggedNode(t+"."+attr, attr, schema.All),
				sg.AddEdge(t, t+"."+attr, xmlgraph.Containment, 1))
		}
	}
	for _, l := range labels {
		steps = append(steps, sg.AddNode(l, schema.All))
		sort.Strings(labelFromTypes[l])
		sort.Strings(labelToTypes[l])
		for _, ft := range labelFromTypes[l] {
			steps = append(steps, sg.AddEdge(ft, l, xmlgraph.Containment, schema.Unbounded))
		}
		for _, tt := range labelToTypes[l] {
			steps = append(steps, sg.AddEdge(l, tt, xmlgraph.Reference, 1))
		}
	}
	for _, st := range steps {
		if st != nil {
			return nil, fmt.Errorf("edgelist: %s: inferring schema: %w", opts.Name, st)
		}
	}

	// Infer the segment spec: every type is a segment headed by itself
	// with its attribute nodes as members; every (from,label,to) shape
	// gets a presentation annotation on its head-to-head path.
	var spec tss.Spec
	for _, t := range types {
		seg := tss.SegmentSpec{Name: t, Head: t}
		for _, ci := range sortedInts(attrUsed[t]) {
			seg.Members = append(seg.Members, t+"."+attrCols[ci])
		}
		spec.Segments = append(spec.Segments, seg)
	}
	var shapes []linkShape
	for ls := range linkShapes {
		shapes = append(shapes, ls)
	}
	sort.Slice(shapes, func(i, j int) bool {
		if shapes[i].from != shapes[j].from {
			return shapes[i].from < shapes[j].from
		}
		if shapes[i].label != shapes[j].label {
			return shapes[i].label < shapes[j].label
		}
		return shapes[i].to < shapes[j].to
	})
	for _, ls := range shapes {
		pretty := strings.ReplaceAll(ls.label, "_", " ")
		spec.Annotations = append(spec.Annotations, tss.Annotation{
			Path:     ls.from + ">" + ls.label + ">" + ls.to,
			Forward:  pretty,
			Backward: pretty + " of",
		})
	}

	// Build the data graph in file order: heads with attribute children,
	// then one dummy per edge row.
	data := xmlgraph.New()
	heads := make(map[string]xmlgraph.NodeID, len(nrows))
	for _, r := range nrows {
		h := data.AddNode(r.typ, "")
		heads[r.id] = h
		for ci, v := range r.attrs {
			if v == "" {
				continue
			}
			data.MustAddEdge(h, data.AddNode(attrCols[ci], v), xmlgraph.Containment)
		}
	}
	for _, e := range erows {
		dummy := data.AddNode(e.label, "")
		data.MustAddEdge(heads[e.from], dummy, xmlgraph.Containment)
		data.MustAddEdge(dummy, heads[e.to], xmlgraph.Reference)
	}
	if err := data.Validate(); err != nil {
		return nil, fmt.Errorf("edgelist: %s: %w", opts.Name, err)
	}
	return &Dataset{
		name:        opts.Name,
		schema:      sg,
		spec:        spec,
		data:        data,
		NumEntities: len(nrows),
		NumLinks:    len(erows),
	}, nil
}

// parseNodes reads the nodes file: header `id,type,<attr>...`, then one
// row per entity. Returns the attribute column names and the rows.
func parseNodes(r io.Reader) (attrCols []string, rows []nodeRow, err error) {
	recs, err := readTable(r)
	if err != nil {
		return nil, nil, err
	}
	if len(recs) == 0 {
		return nil, nil, fmt.Errorf("nodes file is empty (want header id,type,...)")
	}
	head := recs[0]
	if len(head) < 2 || !strings.EqualFold(strings.TrimSpace(head[0]), "id") || !strings.EqualFold(strings.TrimSpace(head[1]), "type") {
		return nil, nil, fmt.Errorf("nodes header must start with id,type (got %q)", strings.Join(head, ","))
	}
	seen := map[string]bool{"id": true, "type": true}
	for _, c := range head[2:] {
		c = strings.TrimSpace(c)
		if err := checkName("attribute column", c); err != nil {
			return nil, nil, err
		}
		if seen[c] {
			return nil, nil, fmt.Errorf("duplicate attribute column %q", c)
		}
		seen[c] = true
		attrCols = append(attrCols, c)
	}
	for li, rec := range recs[1:] {
		id := strings.TrimSpace(rec[0])
		typ := strings.TrimSpace(rec[1])
		if id == "" {
			return nil, nil, fmt.Errorf("nodes row %d: empty id", li+2)
		}
		if err := checkName("node type", typ); err != nil {
			return nil, nil, fmt.Errorf("nodes row %d: %w", li+2, err)
		}
		row := nodeRow{id: id, typ: typ, attrs: make([]string, len(attrCols))}
		for ci := range attrCols {
			row.attrs[ci] = strings.TrimSpace(rec[2+ci])
		}
		rows = append(rows, row)
	}
	if len(rows) == 0 {
		return nil, nil, fmt.Errorf("nodes file has a header but no rows")
	}
	return attrCols, rows, nil
}

// parseEdges reads the edges file: header `from,to,label`. An empty
// edge set is allowed (a pure entity dump still answers single-segment
// queries).
func parseEdges(r io.Reader) ([]edgeRow, error) {
	recs, err := readTable(r)
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, nil
	}
	head := recs[0]
	if len(head) != 3 || !strings.EqualFold(strings.TrimSpace(head[0]), "from") ||
		!strings.EqualFold(strings.TrimSpace(head[1]), "to") || !strings.EqualFold(strings.TrimSpace(head[2]), "label") {
		return nil, fmt.Errorf("edges header must be from,to,label (got %q)", strings.Join(head, ","))
	}
	var rows []edgeRow
	for li, rec := range recs[1:] {
		e := edgeRow{
			from:  strings.TrimSpace(rec[0]),
			to:    strings.TrimSpace(rec[1]),
			label: strings.TrimSpace(rec[2]),
		}
		if e.from == "" || e.to == "" {
			return nil, fmt.Errorf("edges row %d: empty endpoint", li+2)
		}
		if err := checkName("edge label", e.label); err != nil {
			return nil, fmt.Errorf("edges row %d: %w", li+2, err)
		}
		rows = append(rows, e)
	}
	return rows, nil
}

// readTable reads a whole CSV/TSV input, detecting the delimiter from
// the first line: a tab anywhere in it selects TSV. Every record must
// have the header's field count (encoding/csv enforces it).
func readTable(r io.Reader) ([][]string, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	text := string(raw)
	if strings.TrimSpace(text) == "" {
		return nil, nil
	}
	firstLine := text
	if i := strings.IndexByte(text, '\n'); i >= 0 {
		firstLine = text[:i]
	}
	cr := csv.NewReader(strings.NewReader(text))
	if strings.ContainsRune(firstLine, '\t') {
		cr.Comma = '\t'
	}
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	return recs, nil
}

// checkName validates a type, attribute or label name: these become
// schema node names and annotation path components, so the separators
// ('.' joins type and attribute, '>' joins path steps) and whitespace
// are forbidden — loudly, naming the offender.
func checkName(what, name string) error {
	if name == "" {
		return fmt.Errorf("empty %s", what)
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
		default:
			return fmt.Errorf("%s %q: character %q not allowed (want letters, digits, _ or -)", what, name, r)
		}
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedInts(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func appendUnique(ss []string, s string) []string {
	for _, have := range ss {
		if have == s {
			return ss
		}
	}
	return append(ss, s)
}
