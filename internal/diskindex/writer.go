package diskindex

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"sort"

	"repro/internal/atomicio"
	"repro/internal/kwindex"
)

// Create serializes the master index to path crash-safely: the bytes go
// to a same-directory temp file that is fsynced and renamed over path
// only once complete, so a crash mid-save leaves any previous index
// generation untouched and never a torn .xki at path.
func Create(path string, ix *kwindex.Index) error {
	_, err := CreateCRC(path, ix)
	return err
}

// CreateCRC is Create returning the written file's metadata CRC — the
// fingerprint persist records in the snapshot so a stale or swapped
// sidecar is detected at load time.
func CreateCRC(path string, ix *kwindex.Index) (crc uint32, err error) {
	err = atomicio.WriteFile(path, func(f *os.File) error {
		h, werr := write(f, ix)
		if werr != nil {
			return werr
		}
		crc = h.metaCRC
		return nil
	})
	if err != nil {
		return 0, err
	}
	return crc, nil
}

// Write serializes the master index into f (an empty, seekable file):
// posting blocks first, then the schema-node table and term dictionary,
// then the header once every section offset is known. Callers that need
// durability should prefer Create, which adds the temp-file + fsync +
// rename protocol.
func Write(f *os.File, ix *kwindex.Index) error {
	_, err := write(f, ix)
	return err
}

func write(f *os.File, ix *kwindex.Index) (header, error) {
	terms := ix.Terms()

	// Schema-node table: distinct names, sorted, referenced by id.
	schemaID := make(map[string]uint64)
	var schemaNames []string
	for _, t := range terms {
		for _, p := range ix.Postings(t) {
			if _, ok := schemaID[p.SchemaNode]; !ok {
				schemaID[p.SchemaNode] = 0
				schemaNames = append(schemaNames, p.SchemaNode)
			}
		}
	}
	sort.Strings(schemaNames)
	for i, name := range schemaNames {
		schemaID[name] = uint64(i)
	}

	h := header{
		pageSize: DefaultPageSize,
		numTerms: uint64(len(terms)),
		postOff:  headerSize,
	}

	// Posting blocks, streamed behind a buffered writer. Each block's
	// CRC32 goes into its dictionary entry, so the read path can verify
	// every lazily paged block it decodes.
	if _, err := f.Seek(headerSize, 0); err != nil {
		return h, err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	var dict bytes.Buffer
	var scratch []byte
	var off uint64
	for _, t := range terms {
		ps := ix.Postings(t)
		scratch = scratch[:0]
		var prevTO, prevNode int64
		for _, p := range ps {
			scratch = binary.AppendUvarint(scratch, uint64(p.TO-prevTO))
			scratch = binary.AppendVarint(scratch, int64(p.Node)-prevNode)
			scratch = binary.AppendUvarint(scratch, schemaID[p.SchemaNode])
			prevTO, prevNode = p.TO, int64(p.Node)
		}
		if _, err := bw.Write(scratch); err != nil {
			return h, err
		}
		dict.WriteString(encodeUvarint(uint64(len(t))))
		dict.WriteString(t)
		dict.WriteString(encodeUvarint(uint64(len(ps))))
		dict.WriteString(encodeUvarint(off))
		dict.WriteString(encodeUvarint(uint64(len(scratch))))
		dict.WriteString(encodeUvarint(uint64(crc32.ChecksumIEEE(scratch))))
		off += uint64(len(scratch))
		h.numPostings += uint64(len(ps))
	}
	h.postLen = off

	var schemaBuf bytes.Buffer
	schemaBuf.WriteString(encodeUvarint(uint64(len(schemaNames))))
	for _, name := range schemaNames {
		schemaBuf.WriteString(encodeUvarint(uint64(len(name))))
		schemaBuf.WriteString(name)
	}
	h.schemaOff = h.postOff + h.postLen
	h.schemaLen = uint64(schemaBuf.Len())
	h.dictOff = h.schemaOff + h.schemaLen
	h.dictLen = uint64(dict.Len())

	crc := crc32.NewIEEE()
	crc.Write(schemaBuf.Bytes())
	crc.Write(dict.Bytes())
	h.metaCRC = crc.Sum32()

	if _, err := bw.Write(schemaBuf.Bytes()); err != nil {
		return h, err
	}
	if _, err := bw.Write(dict.Bytes()); err != nil {
		return h, err
	}
	if err := bw.Flush(); err != nil {
		return h, err
	}
	if _, err := f.WriteAt(h.marshal(), 0); err != nil {
		return h, err
	}
	return h, nil
}

func encodeUvarint(v uint64) string {
	var b [binary.MaxVarintLen64]byte
	return string(b[:binary.PutUvarint(b[:], v)])
}
