package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/cn"
	"repro/internal/datagen"
	"repro/internal/tss"
)

// AuthorChain builds the CTSSN of the §7 expansion experiment:
//
//	Author{a1} <- Paper -> Paper -> ... -> Paper -> Author{a2}
//
// with size-1 papers in a citation chain; the CTSSN size (TSS edges) is
// papers + 1. size must be at least 2 (one paper, two authors).
func AuthorChain(tg *tss.Graph, a1, a2 string, size int) (*cn.TSSNetwork, error) {
	if size < 2 {
		return nil, fmt.Errorf("experiments: chain size %d < 2", size)
	}
	authorEdge, citeEdge := -1, -1
	for _, e := range tg.Edges() {
		switch e.PathString() {
		case "paper>authorref>author":
			authorEdge = e.ID
		case "paper>cite>paper":
			citeEdge = e.ID
		}
	}
	if authorEdge < 0 || citeEdge < 0 {
		return nil, fmt.Errorf("experiments: TSS graph is not the DBLP graph")
	}
	papers := size - 1
	t := &cn.TSSNetwork{}
	t.Occs = append(t.Occs, cn.TSSOcc{
		Segment:  "author",
		Keywords: []cn.KeywordAt{{Keyword: a1, SchemaNode: "aname"}},
	})
	for i := 0; i < papers; i++ {
		t.Occs = append(t.Occs, cn.TSSOcc{Segment: "paper"})
	}
	t.Occs = append(t.Occs, cn.TSSOcc{
		Segment:  "author",
		Keywords: []cn.KeywordAt{{Keyword: a2, SchemaNode: "aname"}},
	})
	last := len(t.Occs) - 1
	t.Edges = append(t.Edges, cn.TSSEdgeRef{From: 1, To: 0, EdgeID: authorEdge})
	for i := 1; i < papers; i++ {
		t.Edges = append(t.Edges, cn.TSSEdgeRef{From: i, To: i + 1, EdgeID: citeEdge})
	}
	t.Edges = append(t.Edges, cn.TSSEdgeRef{From: papers, To: last, EdgeID: authorEdge})
	return t, nil
}

// PairForChain finds two author names connected by a citation chain of
// the given CTSSN size (papers = size-1), so the chain network surely
// has results. It follows a random citation walk from a random paper.
func PairForChain(ds *datagen.Dataset, rng *rand.Rand, size int) (a1, a2 string, ok bool) {
	papers := ds.Obj.BySegment("paper")
	if len(papers) == 0 {
		return "", "", false
	}
	need := size - 1
	for attempt := 0; attempt < 200; attempt++ {
		cur := papers[rng.Intn(len(papers))]
		chain := []int64{cur}
		for len(chain) < need {
			var next []int64
			for _, e := range ds.Obj.Out(cur) {
				if ds.Obj.TO(e.To).Segment == "paper" && !containsTO(chain, e.To) {
					next = append(next, e.To)
				}
			}
			if len(next) == 0 {
				break
			}
			cur = next[rng.Intn(len(next))]
			chain = append(chain, cur)
		}
		if len(chain) != need {
			continue
		}
		first := authorOf(ds, chain[0], rng)
		last := authorOf(ds, chain[len(chain)-1], rng)
		if first == "" || last == "" || first == last {
			continue
		}
		return first, last, true
	}
	return "", "", false
}

func containsTO(xs []int64, x int64) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func authorOf(ds *datagen.Dataset, paper int64, rng *rand.Rand) string {
	var names []string
	for _, e := range ds.Obj.Out(paper) {
		if ds.Obj.TO(e.To).Segment == "author" {
			names = append(names, authorNameOf(ds, e.To))
		}
	}
	if len(names) == 0 {
		return ""
	}
	return names[rng.Intn(len(names))]
}
