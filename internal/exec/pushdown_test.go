package exec_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/exec"
)

// Keyword-filter pushdown (§8's tighter master-index integration) must
// not change results and must not read more rows than the post-filter
// plan.
func TestPushdownEquivalenceAndBenefit(t *testing.T) {
	s := fig1System(t, core.Options{Z: 8})
	queries := [][]string{{"john", "vcr"}, {"us", "vcr"}, {"tv", "vcr"}}
	for _, q := range queries {
		plans, err := s.Plans(q)
		if err != nil {
			t.Fatal(err)
		}
		run := func(noPushdown bool) (keys map[string]bool, rows int64) {
			ex := &exec.Executor{Store: s.Store, TSS: s.TSS, Index: s.Index, NoPushdown: noPushdown}
			s.Store.ResetStats()
			keys = map[string]bool{}
			for _, pp := range plans {
				_ = ex.Evaluate(pp.Plan, func(r exec.Result) bool {
					keys[r.Key()] = true
					return true
				})
			}
			return keys, s.Store.Stats.Snapshot().RowsRead
		}
		withKeys, withRows := run(false)
		withoutKeys, withoutRows := run(true)
		if len(withKeys) != len(withoutKeys) {
			t.Fatalf("%v: pushdown changed result count: %d vs %d", q, len(withKeys), len(withoutKeys))
		}
		for k := range withKeys {
			if !withoutKeys[k] {
				t.Fatalf("%v: result %s only with pushdown", q, k)
			}
		}
		if withRows > withoutRows {
			t.Fatalf("%v: pushdown read MORE rows: %d vs %d", q, withRows, withoutRows)
		}
	}
}

// On a query whose keyword set is small relative to the probed fanout,
// pushdown must strictly reduce the rows read.
func TestPushdownStrictBenefit(t *testing.T) {
	// Use the synthetic TPC-H set, whose fanouts are large enough that
	// composite point lookups beat range probes plus filtering.
	sysBig := tpchSystem(t)
	plans, err := sysBig.Plans([]string{"john", "radio"})
	if err != nil {
		t.Fatal(err)
	}
	rows := func(noPushdown bool) int64 {
		ex := &exec.Executor{Store: sysBig.Store, TSS: sysBig.TSS, Index: sysBig.Index, NoPushdown: noPushdown}
		sysBig.Store.ResetStats()
		for _, pp := range plans {
			_ = ex.Evaluate(pp.Plan, func(exec.Result) bool { return true })
		}
		return sysBig.Store.Stats.Snapshot().RowsRead
	}
	with, without := rows(false), rows(true)
	if with >= without {
		t.Skipf("no strict benefit on this dataset (%d vs %d rows)", with, without)
	}
}

func tpchSystem(t *testing.T) *core.System {
	t.Helper()
	ds, err := tpchDataset()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.LoadPrepared(&core.Prepared{Schema: ds.Schema, TSS: ds.TSS, Data: ds.Data, Obj: ds.Obj},
		core.Options{Z: 8, SkipBlobs: true})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func tpchDataset() (*datagen.Dataset, error) {
	p := datagen.DefaultTPCHParams()
	p.Persons = 30
	p.Parts = 25
	return datagen.TPCH(p)
}
