# Development targets. `make check` is what CI (and every PR) runs:
# the tier-1 gate plus vet, the xkvet invariant linter (`make lint`),
# and the race-focused concurrency suites.

GO ?= go

.PHONY: check tier1 vet lint race chaos fuzzseed bench-qserve bench-diskindex bench-pipeline

check: vet lint tier1 fuzzseed race chaos

# Tier-1 gate (see ROADMAP.md).
tier1:
	$(GO) build ./... && $(GO) test ./...

vet:
	$(GO) vet ./...

# xkvet: the repo's own static-analysis suite (internal/lint). Enforces
# the concurrency/context/key-encoding invariants — keyjoin, ctxflow,
# errdrop, lockguard, nilrecv — and exits nonzero on any finding not
# suppressed by an //xk:ignore <analyzer> <reason> comment.
lint:
	$(GO) run ./cmd/xkvet -dir .

# The serving layer, the executor, the disk-index buffer pool and the
# query pipeline (shared CN memo + metrics sink under concurrent
# Query/QueryStream) are the concurrency-heavy packages; run their
# tests under the race detector.
race:
	$(GO) test -race ./internal/qserve/ ./internal/exec/ ./internal/diskindex/ ./internal/core/ ./internal/pipeline/

# Chaos suite: 200+ deterministic seeded fault scenarios (injected read
# errors, bit flips, short reads, engine latency/errors/hangs) over the
# disk index and the serving path, plus the torn-write table, all under
# the race detector. Asserts the robustness invariant: fail loudly or
# answer correctly — never return silently wrong results.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos|TestTornFileTable' ./internal/fault/ ./internal/diskindex/

# Run every fuzz target against its seed corpus only (no new inputs);
# catches regressions on the known tricky files deterministically.
fuzzseed:
	$(GO) test -run=Fuzz ./internal/diskindex/ ./internal/dtd/ ./internal/xmlgraph/

# Cold vs warm serving-layer latency on the DBLP workload.
bench-qserve:
	$(GO) test -run xxx -bench BenchmarkQServe -benchtime 50x .

# In-memory vs paged-disk master-index lookups (cold and warm pool).
bench-diskindex:
	$(GO) test -run xxx -bench BenchmarkDiskIndexLookup .

# Tracing-off vs EXPLAIN ANALYZE overhead of the staged query pipeline.
bench-pipeline:
	$(GO) test -run xxx -bench 'BenchmarkQuery$$|BenchmarkPipelineOverhead' -benchtime 200x .
