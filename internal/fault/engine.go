package fault

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/exec"
	"repro/internal/obs"
)

// Engine is the serving-path seam: the subset of the query engine the
// qserve layer drives (core.System implements it). EngineWrapper
// decorates one with injected latency, errors and hangs, so the chaos
// suite can starve admission slots and trip per-stage timeouts without
// touching the real pipeline.
type Engine interface {
	QueryContext(ctx context.Context, keywords []string, k int) ([]exec.Result, error)
	QueryAllStrategyContext(ctx context.Context, keywords []string, strat exec.Strategy) ([]exec.Result, error)
}

// EngineProfile sets the per-query fault probabilities of an
// EngineWrapper. The zero value injects nothing.
type EngineProfile struct {
	// MaxLatency, when positive, delays each query a uniform
	// [0, MaxLatency) — cancelled early if the context ends.
	MaxLatency time.Duration
	// ErrProb is the probability a query fails with ErrInjected.
	ErrProb float64
	// HangProb is the probability a query blocks until its context ends
	// — the slot-starvation fault: the admission slot stays occupied for
	// the query's whole deadline.
	HangProb float64
}

// EngineWrapper injects faults in front of an Engine.
type EngineWrapper struct {
	inner Engine
	prof  EngineProfile

	mu sync.Mutex
	r  rng // guarded by mu

	// Injected-fault counters.
	Queries obs.Counter
	Delays  obs.Counter
	Errs    obs.Counter
	Hangs   obs.Counter
}

// NewEngine wraps inner with seed-driven query faults.
func NewEngine(seed int64, inner Engine, prof EngineProfile) *EngineWrapper {
	return &EngineWrapper{
		inner: inner,
		prof:  prof,
		r:     rng{state: uint64(seed)*0x9e3779b97f4a7c15 + 1},
	}
}

// decide rolls the per-query dice.
func (w *EngineWrapper) decide() (hang bool, fail bool, delay time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.prof.MaxLatency > 0 {
		delay = time.Duration(w.r.intn(int(w.prof.MaxLatency)))
	}
	if w.r.float() < w.prof.HangProb {
		return true, false, delay
	}
	if w.r.float() < w.prof.ErrProb {
		return false, true, delay
	}
	return false, false, delay
}

// inject applies this query's fault schedule; a nil return means the
// query may proceed to the real engine.
func (w *EngineWrapper) inject(ctx context.Context) error {
	w.Queries.Add(1)
	hang, fail, delay := w.decide()
	if hang {
		w.Hangs.Add(1)
		<-ctx.Done()
		return ctx.Err()
	}
	if delay > 0 {
		w.Delays.Add(1)
		t := time.NewTimer(delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if fail {
		w.Errs.Add(1)
		return fmt.Errorf("%w: engine", ErrInjected)
	}
	return nil
}

func (w *EngineWrapper) QueryContext(ctx context.Context, keywords []string, k int) ([]exec.Result, error) {
	if err := w.inject(ctx); err != nil {
		return nil, err
	}
	return w.inner.QueryContext(ctx, keywords, k)
}

func (w *EngineWrapper) QueryAllStrategyContext(ctx context.Context, keywords []string, strat exec.Strategy) ([]exec.Result, error) {
	if err := w.inject(ctx); err != nil {
		return nil, err
	}
	return w.inner.QueryAllStrategyContext(ctx, keywords, strat)
}
