package presentation_test

import (
	"testing"

	"math/rand"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/presentation"
)

func newSeededRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// The §7 expansion scenario on DBLP data: build the presentation graph
// of the Author–Paper–Paper–Author chain, expand the first Paper
// occurrence, and check the invariants on a realistic graph.
func TestDBLPChainExpansion(t *testing.T) {
	cfg := experiments.QuickConfig()
	cfg.Queries = 1
	w, err := experiments.NewWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.LoadPrepared(w.Prepared, core.Options{Z: 8, SkipBlobs: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := newSeededRand(7)
	a1, a2, ok := experiments.PairForChain(w.DS, rng, 3)
	if !ok {
		t.Skip("no citation chain in the quick dataset")
	}
	net, err := experiments.AuthorChain(sys.TSS, a1, a2, 3)
	if err != nil {
		t.Fatal(err)
	}
	type probe struct {
		name string
		sess *presentation.Session
	}
	probes := []probe{
		{"combination", sys.PresentationSession(nil)},
		{"minimal", sys.PresentationSession(sys.MinimalFragments())},
		{"inlined", sys.PresentationSession(sys.InlinedFragments())},
	}
	var firstDisplayed []int64
	for _, pr := range probes {
		g, err := pr.sess.Build(net)
		if err != nil {
			t.Fatalf("%s: %v", pr.name, err)
		}
		if g.NumDisplayed() != len(net.Occs) {
			t.Fatalf("%s: initial PG has %d nodes", pr.name, g.NumDisplayed())
		}
		added, err := g.Expand(1, presentation.ExpandOptions{})
		if err != nil {
			t.Fatalf("%s: %v", pr.name, err)
		}
		_ = added
		got := g.Displayed(1)
		if firstDisplayed == nil {
			firstDisplayed = got
		} else if !sameIDs(firstDisplayed, got) {
			t.Fatalf("%s displayed %v, first variant displayed %v", pr.name, got, firstDisplayed)
		}
		// Contract back to the initially displayed paper.
		keep := g.Displayed(1)[0]
		if err := g.Contract(1, keep); err != nil {
			t.Fatalf("%s: contract: %v", pr.name, err)
		}
		if n := len(g.Displayed(1)); n != 1 {
			t.Fatalf("%s: %d papers after contraction", pr.name, n)
		}
	}
}

// MaxNodes caps the number of nodes an expansion adds (the UI's
// "first 10" rule).
func TestDBLPExpandCap(t *testing.T) {
	cfg := experiments.QuickConfig()
	cfg.Queries = 1
	w, err := experiments.NewWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.LoadPrepared(w.Prepared, core.Options{Z: 8, SkipBlobs: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := newSeededRand(11)
	a1, a2, ok := experiments.PairForChain(w.DS, rng, 4)
	if !ok {
		t.Skip("no chain")
	}
	net, err := experiments.AuthorChain(sys.TSS, a1, a2, 4)
	if err != nil {
		t.Fatal(err)
	}
	sess := sys.PresentationSession(nil)
	uncapped, err := sess.Build(net)
	if err != nil {
		t.Fatal(err)
	}
	addedAll, err := uncapped.Expand(2, presentation.ExpandOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if addedAll < 2 {
		t.Skipf("only %d expandable nodes; cap not observable", addedAll)
	}
	capped, err := sess.Build(net)
	if err != nil {
		t.Fatal(err)
	}
	added, err := capped.Expand(2, presentation.ExpandOptions{MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if added != 1 {
		t.Fatalf("capped expand added %d", added)
	}
}

func sameIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
