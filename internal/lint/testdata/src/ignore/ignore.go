// Package ignore seeds malformed suppression directives: an unknown
// analyzer name, a missing reason, and doubled-up directives are
// findings, never silent no-ops.
package ignore

//xk:ignore nosuchcheck this analyzer does not exist
var a = 1

//xk:ignore keyjoin
var b = 2

//xk:ignore keyjoin a well-formed directive with nothing to suppress is harmless
var c = 3

// A directive naming an analyzer that has since been removed from the
// registry must be reported, not silently dropped: the suppression it
// carried no longer guards anything.
//
//xk:ignore topkheap suppressed a check that was removed in the v2 port
var d = 4

//xk:ignore keyjoin set semantics //xk:ignore errdrop a second directive on one line suppresses nothing
var e = 5
