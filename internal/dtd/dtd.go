// Package dtd parses a practical subset of XML Document Type
// Definitions into schema graphs, so XKeyword can load datasets whose
// schema is not hard-coded. Supported declarations:
//
//	<!ELEMENT person (name, nation, order*)>   sequences with ?, *, +
//	<!ELEMENT line (part | product)>           choices (whole content)
//	<!ELEMENT name (#PCDATA)>                  leaves
//	<!ELEMENT db ANY> / EMPTY                  ignored content
//	<!ATTLIST part key ID #REQUIRED>           ID attributes (noted)
//	<!ATTLIST supplier ref IDREF #REQUIRED>    reference edges
//
// DTDs leave IDREF targets untyped; the caller supplies them through
// RefTargets (element -> referenced element), matching how the paper's
// schema graphs type their references (§3).
package dtd

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/schema"
	"repro/internal/xmlgraph"
)

// Options configure the translation.
type Options struct {
	// RefTargets types the IDREF attributes: element name -> element its
	// references point to. Elements with an IDREF attribute but no entry
	// here are an error.
	RefTargets map[string]string
	// Roots marks root-capable elements. If empty, every element that
	// appears in no other element's content model becomes a root.
	Roots []string
}

type elementDecl struct {
	name     string
	choice   bool
	children []childRef
	any      bool
}

type childRef struct {
	name      string
	maxOccurs int // schema.Unbounded for * and +
}

// Parse reads DTD declarations and builds the schema graph.
func Parse(r io.Reader, opts Options) (*schema.Graph, error) {
	decls, refs, err := scan(r)
	if err != nil {
		return nil, err
	}
	if len(decls) == 0 {
		return nil, fmt.Errorf("dtd: no element declarations")
	}
	g := schema.New()
	for _, d := range decls {
		kind := schema.All
		if d.choice {
			kind = schema.Choice
		}
		if err := g.AddNode(d.name, kind); err != nil {
			return nil, err
		}
	}
	referenced := make(map[string]bool)
	for _, d := range decls {
		for _, c := range d.children {
			if g.Node(c.name) == nil {
				return nil, fmt.Errorf("dtd: element %q used in %q but not declared", c.name, d.name)
			}
			if err := g.AddEdge(d.name, c.name, xmlgraph.Containment, c.maxOccurs); err != nil {
				return nil, err
			}
			referenced[c.name] = true
		}
	}
	for _, el := range refs {
		target, ok := opts.RefTargets[el]
		if !ok {
			return nil, fmt.Errorf("dtd: element %q has an IDREF attribute; add it to RefTargets", el)
		}
		if g.Node(el) == nil || g.Node(target) == nil {
			return nil, fmt.Errorf("dtd: IDREF %q -> %q names undeclared elements", el, target)
		}
		if err := g.AddEdge(el, target, xmlgraph.Reference, 1); err != nil {
			return nil, err
		}
	}
	roots := opts.Roots
	if len(roots) == 0 {
		for _, d := range decls {
			if !referenced[d.name] {
				roots = append(roots, d.name)
			}
		}
	}
	if len(roots) == 0 {
		return nil, fmt.Errorf("dtd: no root elements (cyclic containment?)")
	}
	for _, root := range roots {
		if err := g.SetRoot(root); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// ParseString is Parse over an in-memory DTD.
func ParseString(dtd string, opts Options) (*schema.Graph, error) {
	return Parse(strings.NewReader(dtd), opts)
}

// scan tokenizes the DTD into element declarations and the names of
// elements carrying IDREF attributes.
func scan(r io.Reader) ([]elementDecl, []string, error) {
	var decls []elementDecl
	var refs []string
	seen := make(map[string]bool)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	sc.Split(splitDecls)
	for sc.Scan() {
		decl := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(decl, "<!ELEMENT"):
			d, err := parseElement(decl)
			if err != nil {
				return nil, nil, err
			}
			if seen[d.name] {
				return nil, nil, fmt.Errorf("dtd: duplicate element %q", d.name)
			}
			seen[d.name] = true
			decls = append(decls, d)
		case strings.HasPrefix(decl, "<!ATTLIST"):
			el, hasRef, err := parseAttlist(decl)
			if err != nil {
				return nil, nil, err
			}
			if hasRef {
				refs = append(refs, el)
			}
		case decl == "" || strings.HasPrefix(decl, "<!--"):
			// comments and blank space
		default:
			return nil, nil, fmt.Errorf("dtd: unsupported declaration %q", truncate(decl, 40))
		}
	}
	return decls, refs, sc.Err()
}

// splitDecls yields one "<!...>" declaration (or comment) at a time.
func splitDecls(data []byte, atEOF bool) (advance int, token []byte, err error) {
	start := 0
	for start < len(data) && data[start] != '<' {
		start++
	}
	if start == len(data) {
		if atEOF {
			return len(data), nil, nil
		}
		return start, nil, nil
	}
	for i := start; i < len(data); i++ {
		if data[i] == '>' {
			return i + 1, data[start : i+1], nil
		}
	}
	if atEOF {
		return 0, nil, fmt.Errorf("dtd: unterminated declaration")
	}
	return start, nil, nil
}

func parseElement(decl string) (elementDecl, error) {
	body := strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(decl, "<!ELEMENT"), ">"))
	fields := strings.Fields(body)
	if len(fields) < 2 {
		return elementDecl{}, fmt.Errorf("dtd: malformed %q", decl)
	}
	d := elementDecl{name: fields[0]}
	content := strings.TrimSpace(body[len(fields[0]):])
	switch {
	case content == "EMPTY", content == "ANY":
		d.any = content == "ANY"
		return d, nil
	case strings.HasPrefix(content, "("):
		return parseContent(d, content)
	default:
		return elementDecl{}, fmt.Errorf("dtd: unsupported content model %q for %q", content, d.name)
	}
}

func parseContent(d elementDecl, content string) (elementDecl, error) {
	if !strings.HasPrefix(content, "(") || !strings.HasSuffix(strings.TrimRight(content, "*+?"), ")") {
		return d, fmt.Errorf("dtd: malformed content model %q for %q", content, d.name)
	}
	groupSuffix := "" // occurrence on the whole group, e.g. (a|b)*
	inner := content
	for strings.HasSuffix(inner, "*") || strings.HasSuffix(inner, "+") || strings.HasSuffix(inner, "?") {
		groupSuffix = inner[len(inner)-1:]
		inner = inner[:len(inner)-1]
	}
	inner = strings.TrimSuffix(strings.TrimPrefix(inner, "("), ")")
	if strings.Contains(inner, "(") {
		return d, fmt.Errorf("dtd: nested groups are not supported (element %q)", d.name)
	}
	if strings.TrimSpace(inner) == "#PCDATA" {
		return d, nil // leaf
	}
	var parts []string
	switch {
	case strings.Contains(inner, "|") && strings.Contains(inner, ","):
		return d, fmt.Errorf("dtd: mixed choice/sequence not supported (element %q)", d.name)
	case strings.Contains(inner, "|"):
		d.choice = true
		parts = strings.Split(inner, "|")
	default:
		parts = strings.Split(inner, ",")
	}
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return d, fmt.Errorf("dtd: empty particle in %q", d.name)
		}
		max := 1
		for strings.HasSuffix(p, "*") || strings.HasSuffix(p, "+") || strings.HasSuffix(p, "?") {
			if p[len(p)-1] == '*' || p[len(p)-1] == '+' {
				max = schema.Unbounded
			}
			p = p[:len(p)-1]
		}
		if groupSuffix == "*" || groupSuffix == "+" {
			max = schema.Unbounded
		}
		d.children = append(d.children, childRef{name: p, maxOccurs: max})
	}
	return d, nil
}

// parseAttlist reports whether the element declares an ID-typed
// reference attribute (IDREF or IDREFS).
func parseAttlist(decl string) (element string, hasRef bool, err error) {
	body := strings.TrimSuffix(strings.TrimPrefix(decl, "<!ATTLIST"), ">")
	fields := strings.Fields(body)
	if len(fields) < 1 {
		return "", false, fmt.Errorf("dtd: malformed %q", decl)
	}
	element = fields[0]
	for i := 1; i+1 < len(fields); i++ {
		switch fields[i+1] {
		case "IDREF", "IDREFS":
			hasRef = true
		}
	}
	return element, hasRef, nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
