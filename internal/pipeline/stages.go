package pipeline

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/cn"
	"repro/internal/exec"
	"repro/internal/kwindex"
	"repro/internal/optimizer"
	"repro/internal/rank"
	"repro/internal/schema"
	"repro/internal/tss"
)

// NetCache memoizes generated candidate networks per keyword-shape
// signature (core's per-System bounded LRU implements it). The cached
// networks carry positional placeholder keywords; the generate stage
// substitutes each query's keywords into a clone.
type NetCache interface {
	Get(sig string) ([]*cn.Network, bool)
	Put(sig string, nets []*cn.Network)
}

// Config assembles the default stages over a loaded system's parts.
type Config struct {
	Schema *schema.Graph
	TSS    *tss.Graph
	// Index is the master index backend (in-memory or disk-backed).
	Index kwindex.Source
	// Z is the maximum MTNN size of interest.
	Z int
	// Workers sizes the execute stage's worker pool.
	Workers int
	// StrictMinimal makes the rank stage drop non-minimal results.
	StrictMinimal bool
	// Scorer, when non-nil, re-ranks results in the rank stage. nil (or
	// rank.EdgeCount) keeps the canonical (Score, Ord) order and the
	// early-terminating top-k execution — byte-identical to the
	// pre-scorer engine. A query may override it via Query.Scorer.
	Scorer rank.Scorer
	// Relax lets the discover stage rewrite no-match keywords
	// (substitute or drop, recorded in Query.Relaxation) instead of
	// letting the query return zero results.
	Relax bool
	// NetCache, when non-nil, memoizes CN generation per keyword shape.
	NetCache NetCache
	// NewOptimizer builds the plan optimizer (per query).
	NewOptimizer func() *optimizer.Optimizer
	// NewExecutor builds the executor honoring the cache options (per
	// query; the lookup cache is shared across the query's plans).
	NewExecutor func() *exec.Executor
	// Metrics, when non-nil, accumulates cross-query stage statistics.
	Metrics *Metrics
}

// New builds the default pipeline over a configuration.
func New(cfg Config) *Pipeline {
	c := &cfg
	return &Pipeline{
		Discover: discoverStage{c},
		Generate: generateStage{c},
		Reduce:   reduceStage{c},
		Optimize: optimizeStage{c},
		Execute:  executeStage{c},
		Rank:     rankStage{c},
		Metrics:  cfg.Metrics,
	}
}

// scorerFor resolves a query's effective scorer: the per-query
// override, else the pipeline's configured one (nil = default).
func (c *Config) scorerFor(q *Query) rank.Scorer {
	if q.Scorer != nil {
		return q.Scorer
	}
	return c.Scorer
}

// placeholder returns the positional keyword stand-in cached networks
// carry; \x01 cannot appear in tokenized keywords.
func placeholder(i int) string { return fmt.Sprintf("\x01k%d\x01", i) }

// ShapeSignature encodes a keyword query's shape — which schema nodes
// hold each keyword, under which Z — as the CN memo key. Every node
// name is length-prefixed, so names containing separator characters
// cannot collide two different shapes (the old "," / ";" joined
// encoding could).
func ShapeSignature(z int, nodeLists [][]string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "z=%d", z)
	for _, nodes := range nodeLists {
		fmt.Fprintf(&sb, "|%d", len(nodes))
		for _, n := range nodes {
			fmt.Fprintf(&sb, ":%d:%s", len(n), n)
		}
	}
	return sb.String()
}

// discoverStage tokenizes the keywords and looks up, per keyword, the
// schema nodes whose extensions contain it (the containing-list heads
// of §4). Out is the total number of keyword→schema-node pairs.
type discoverStage struct{ cfg *Config }

func (s discoverStage) Name() string { return StageDiscover }

func (s discoverStage) Run(ctx context.Context, q *Query, rep *StageReport) error {
	if len(q.Keywords) == 0 {
		return fmt.Errorf("pipeline: empty keyword query")
	}
	rep.In = int64(len(q.Keywords))
	// The effective keyword arrays stay parallel: with relaxation off
	// (or unneeded) they are exactly the request's, byte for byte.
	keywords := make([]string, 0, len(q.Keywords))
	norm := make([]string, 0, len(q.Keywords))
	nodeLists := make([][]string, 0, len(q.Keywords))
	var rx *Relaxation
	var rxParts []string
	for _, k := range q.Keywords {
		toks := kwindex.Tokenize(k)
		if len(toks) == 0 {
			return fmt.Errorf("pipeline: keyword %q has no tokens", k)
		}
		n := toks[0]
		if len(toks) > 1 {
			// Multi-token keywords match nodes containing all tokens;
			// the master index handles that, keyed by the raw phrase.
			n = k
		}
		nodes := s.cfg.Index.SchemaNodes(n)
		if len(nodes) == 0 && s.cfg.Relax {
			// No-match relaxation: a multi-token phrase falls back to its
			// first individually-matching token; a keyword with no match
			// at all is dropped. Either way the rewrite is recorded — a
			// relaxed answer must never look like an exact one.
			if rx == nil {
				rx = &Relaxation{}
			}
			sub := ""
			if len(toks) > 1 {
				for _, t := range toks {
					if ns := s.cfg.Index.SchemaNodes(t); len(ns) > 0 {
						sub, nodes = t, ns
						break
					}
				}
			}
			if sub == "" {
				rx.Dropped = append(rx.Dropped, k)
				rxParts = append(rxParts, "dropped "+quoteKw(k))
				continue
			}
			if rx.Substituted == nil {
				rx.Substituted = make(map[string]string)
			}
			rx.Substituted[k] = sub
			rxParts = append(rxParts, "substituted "+quoteKw(k)+" -> "+quoteKw(sub))
			n = sub
		}
		keywords = append(keywords, k)
		norm = append(norm, n)
		nodeLists = append(nodeLists, nodes)
		rep.Out += int64(len(nodes))
	}
	if rx != nil {
		rx.Detail = relaxDetail(rxParts)
		q.Relaxation = rx
		rep.Note = "relaxed: " + rx.Detail
	}
	if len(keywords) == 0 {
		// Relaxation dropped every keyword: the query is fully answered
		// (with nothing) here; later stages have no keywords to work on.
		q.halt = true
		q.Results = nil
		return nil
	}
	q.Keywords = keywords
	q.Norm = norm
	q.NodeLists = nodeLists
	q.Sig = ShapeSignature(s.cfg.Z, q.NodeLists)
	return nil
}

// generateStage runs the CN generator (§4) — through the shape memo
// when one is configured — and substitutes the query's keywords for the
// cached networks' positional placeholders. Out is the number of
// candidate networks.
type generateStage struct{ cfg *Config }

func (s generateStage) Name() string { return StageGenerate }

func (s generateStage) Run(ctx context.Context, q *Query, rep *StageReport) error {
	rep.In = int64(len(q.Keywords))
	var generic []*cn.Network
	cached := false
	if s.cfg.NetCache != nil {
		generic, cached = s.cfg.NetCache.Get(q.Sig)
	}
	if cached {
		rep.CacheHits = 1
		rep.Cached = true
	} else {
		rep.CacheMisses = 1
		phKeywords := make([]string, len(q.Keywords))
		phNodes := make(map[string][]string, len(q.Keywords))
		for i := range q.Keywords {
			phKeywords[i] = placeholder(i)
			phNodes[phKeywords[i]] = q.NodeLists[i]
		}
		var err error
		generic, err = cn.Generate(cn.Input{
			Schema:        s.cfg.Schema,
			Keywords:      phKeywords,
			SchemaNodesOf: phNodes,
			MaxSize:       s.cfg.Z,
		})
		if err != nil {
			return err
		}
		if s.cfg.NetCache != nil {
			s.cfg.NetCache.Put(q.Sig, generic)
		}
	}
	// Substitute the query's keywords for the placeholders through a
	// direct placeholder→index map. A keyword that is not a known
	// placeholder means the cached network cannot belong to this shape:
	// fail loudly instead of silently skipping the substitution.
	phIndex := make(map[string]int, len(q.Keywords))
	for i := range q.Keywords {
		phIndex[placeholder(i)] = i
	}
	nets := make([]*cn.Network, len(generic))
	for i, g := range generic {
		n := g.Clone()
		for oi := range n.Occs {
			for ki, kw := range n.Occs[oi].Keywords {
				idx, ok := phIndex[kw]
				if !ok {
					return fmt.Errorf("pipeline: network %s carries unknown placeholder %q", g, kw)
				}
				n.Occs[oi].Keywords[ki] = q.Norm[idx]
			}
			sort.Strings(n.Occs[oi].Keywords)
		}
		nets[i] = n
	}
	q.CNs = nets
	rep.Out = int64(len(nets))
	return nil
}

// reduceStage reduces each candidate network to its CTSSN, keeps the
// lowest-score CN per distinct shape, and sorts ascending by score —
// the order the execute stage's smallest-first scheduling relies on.
type reduceStage struct{ cfg *Config }

func (s reduceStage) Name() string { return StageReduce }

func (s reduceStage) Run(ctx context.Context, q *Query, rep *StageReport) error {
	rep.In = int64(len(q.CNs))
	var out []*cn.TSSNetwork
	seen := make(map[string]bool)
	for _, n := range q.CNs {
		tn, err := cn.Reduce(s.cfg.TSS, n)
		if err != nil {
			return fmt.Errorf("pipeline: reducing %s: %w", n, err)
		}
		// Distinct CTSSNs only; keep the lowest-score CN per shape.
		key := tn.Canon()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, tn)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score() < out[j].Score() })
	q.Nets = out
	rep.Out = int64(len(out))
	return nil
}

// optimizeStage turns each CTSSN into an execution plan (§5).
type optimizeStage struct{ cfg *Config }

func (s optimizeStage) Name() string { return StageOptimize }

func (s optimizeStage) Run(ctx context.Context, q *Query, rep *StageReport) error {
	rep.In = int64(len(q.Nets))
	opt := s.cfg.NewOptimizer()
	var plans []exec.Planned
	for _, tn := range q.Nets {
		p, err := opt.Plan(tn)
		if err != nil {
			return fmt.Errorf("pipeline: planning %s: %w", tn, err)
		}
		plans = append(plans, exec.Planned{Plan: p})
	}
	q.Plans = plans
	rep.Out = int64(len(plans))
	return nil
}

// executeStage evaluates the plans (§6) in the query's mode: top-K
// through the smallest-first worker pool, all results plan by plan
// through one shared lookup cache, or a started stream. Cache traffic is
// the executor lookup cache's hit/miss counts.
type executeStage struct{ cfg *Config }

func (s executeStage) Name() string { return StageExecute }

func (s executeStage) Run(ctx context.Context, q *Query, rep *StageReport) error {
	rep.In = int64(len(q.Plans))
	rep.Note = q.Mode.String()
	switch q.Mode {
	case ModeTopK:
		if err := ctx.Err(); err != nil {
			return err
		}
		if !rank.IsDefault(s.cfg.scorerFor(q)) {
			// Early termination is only sound for the canonical (Score,
			// Ord) order: a non-default scorer may promote a result the
			// top-k pool would prune, so evaluate every plan fully and
			// let the rank stage truncate after re-scoring.
			rep.Note = "topk(full)"
			return s.runAll(ctx, q, rep)
		}
		ex := s.cfg.NewExecutor()
		out, err := exec.TopKPlansContext(ctx, ex, q.Plans, exec.TopKOptions{
			K:        q.K,
			Workers:  s.cfg.Workers,
			Strategy: q.Strategy,
		})
		recordLookups(ex, rep)
		if err != nil {
			return err
		}
		q.Results = out
	case ModeAll:
		if err := s.runAll(ctx, q, rep); err != nil {
			return err
		}
	case ModeStream:
		q.Stream = exec.StreamPlansContext(ctx, s.cfg.NewExecutor(), q.Plans, s.cfg.Workers, q.Strategy)
	default:
		return fmt.Errorf("pipeline: mode %v does not execute", q.Mode)
	}
	rep.Out = int64(len(q.Results))
	return nil
}

// runAll evaluates every plan to completion in plan order, stamping the
// canonical (plan, sequence) Ord — the ModeAll body, shared by the
// full-enumeration top-k path.
func (s executeStage) runAll(ctx context.Context, q *Query, rep *StageReport) error {
	ex := s.cfg.NewExecutor()
	var out []exec.Result
	for pi, p := range q.Plans {
		n := 0
		if err := ex.RunContext(ctx, p.Plan, q.Strategy, func(r exec.Result) bool {
			r.Ord = exec.MakeOrd(pi, n)
			n++
			out = append(out, r)
			return true
		}); err != nil {
			recordLookups(ex, rep)
			return err
		}
	}
	recordLookups(ex, rep)
	q.Results = out
	rep.Out = int64(len(out))
	return nil
}

// recordLookups copies the executor lookup cache's counters into the
// stage report.
func recordLookups(ex *exec.Executor, rep *StageReport) {
	if ex.Cache == nil {
		return
	}
	rep.CacheHits, rep.CacheMisses = ex.Cache.Stats()
}

// rankStage is the single place results are ordered and filtered: full
// result sets are sorted ascending by score (top-K sets arrive sorted
// and truncated from the worker pool), and StrictMinimal drops results
// violating §3.1's strict MTNN minimality.
type rankStage struct{ cfg *Config }

func (s rankStage) Name() string { return StageRank }

func (s rankStage) Run(ctx context.Context, q *Query, rep *StageReport) error {
	rep.In = int64(len(q.Results))
	sc := s.cfg.scorerFor(q)
	if q.Mode == ModeAll || (q.Mode == ModeTopK && !rank.IsDefault(sc)) {
		// (Score, Ord) is the canonical total order; for ModeAll's
		// sequential plan-by-plan enumeration it coincides with the
		// previous stable sort by score, but naming it here keeps every
		// ranked surface (this stage, the top-k pool, the scatter-gather
		// coordinator's merge) on one deterministic order. The
		// full-enumeration top-k path lands here too: scorers receive
		// their input canonically ordered (the tie-break they contract
		// to preserve).
		sort.Slice(q.Results, func(i, j int) bool { return exec.OrdLess(q.Results[i], q.Results[j]) })
	}
	if s.cfg.StrictMinimal {
		out := q.Results[:0]
		for _, r := range q.Results {
			if exec.IsMinimal(s.cfg.Index, r) {
				out = append(out, r)
			}
		}
		q.Results = out
	}
	if !rank.IsDefault(sc) {
		// Minimality filtering runs first so scorers rank exactly the
		// result set the caller will see.
		k := 0
		if q.Mode == ModeTopK {
			k = q.K
		}
		q.Results = sc.Rank(rank.Context{
			TSS:      s.cfg.TSS,
			Index:    s.cfg.Index,
			Keywords: q.Norm,
		}, q.Results, k)
		rep.Note = "scorer=" + sc.Name()
	}
	rep.Out = int64(len(q.Results))
	return nil
}
