package optimizer_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/optimizer"
)

// §6's seed example: for the part{tv} -> part{vcr} network (the VCR is a
// sub-part), the outermost loop must iterate the VCR side — the
// containment child — because many sub-parts share one parent, making
// the inner queries repeat and cache. The containing lists (1 TV, 2
// VCRs) are comparable, so cacheability decides.
func TestSeedPrefersCacheProfitableSide(t *testing.T) {
	s := fig1System(t, core.Options{Z: 8})
	nets, err := s.Networks([]string{"tv", "vcr"})
	if err != nil {
		t.Fatal(err)
	}
	opt := &optimizer.Optimizer{
		TSS: s.TSS, Store: s.Store, Index: s.Index, Stats: s.Stats,
		Fragments: s.Decomp.Fragments, MaxJoins: s.Opts.B,
	}
	checked := false
	for _, tn := range nets {
		// The direct sub-part network: two part occurrences, one edge,
		// the TV containing the VCR.
		if tn.Size() != 1 || len(tn.Occs) != 2 {
			continue
		}
		e := tn.Edges[0]
		te := s.TSS.Edge(e.EdgeID)
		if te.From != "part" || te.To != "part" {
			continue
		}
		// Identify the child (To) occurrence; it must hold vcr or tv.
		childOcc := e.To
		p, err := opt.Plan(tn)
		if err != nil {
			t.Fatal(err)
		}
		if p.Steps[0].Occ != childOcc {
			t.Fatalf("seed = occ%d, want the contained child occ%d (network %s)",
				p.Steps[0].Occ, childOcc, tn)
		}
		checked = true
	}
	if !checked {
		t.Fatal("sub-part network not found; vacuous")
	}
}
