package shard_test

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/kwindex"
	"repro/internal/shard"
	"repro/internal/xmlgraph"
)

func fig1Index(t testing.TB) *kwindex.Index {
	t.Helper()
	ds, err := datagen.TPCHFigure1()
	if err != nil {
		t.Fatal(err)
	}
	return kwindex.Build(ds.Obj)
}

func TestPartitionDeterministicAndInRange(t *testing.T) {
	for n := 1; n <= 9; n++ {
		for to := int64(-5); to < 2000; to++ {
			p := shard.Partition(to, n)
			if p < 0 || p >= n {
				t.Fatalf("Partition(%d, %d) = %d out of range", to, n, p)
			}
			if p != shard.Partition(to, n) {
				t.Fatalf("Partition(%d, %d) not deterministic", to, n)
			}
		}
	}
	if got := shard.Partition(42, 1); got != 0 {
		t.Fatalf("Partition(_, 1) = %d, want 0", got)
	}
	if got := shard.Partition(42, 0); got != 0 {
		t.Fatalf("Partition(_, 0) = %d, want 0", got)
	}
}

// Sequential TO ids — the realistic shape — must spread evenly: the mix
// step exists precisely so partition i does not become "TOs ≡ i mod n".
func TestPartitionDistribution(t *testing.T) {
	const n, tos = 7, 70000
	counts := make([]int, n)
	for to := int64(0); to < tos; to++ {
		counts[shard.Partition(to, n)]++
	}
	want := tos / n
	for p, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Fatalf("partition %d holds %d of %d postings (expected ~%d ±20%%): skewed hash", p, c, tos, want)
		}
	}
}

// Partitions must be disjoint and exhaustive: every posting of the
// master index lands in exactly Partition(TO, n).
func TestPartitionIndexDisjointExhaustive(t *testing.T) {
	ix := fig1Index(t)
	const n = 3
	parts := make([]*kwindex.Index, n)
	for p := 0; p < n; p++ {
		parts[p] = shard.PartitionIndex(ix, p, n)
	}
	total := 0
	for p, pix := range parts {
		total += pix.NumPostings()
		for _, term := range pix.Terms() {
			for _, post := range pix.Postings(term) {
				if shard.Partition(post.TO, n) != p {
					t.Fatalf("partition %d holds TO %d which routes to %d", p, post.TO, shard.Partition(post.TO, n))
				}
			}
		}
	}
	if total != ix.NumPostings() {
		t.Fatalf("partitions hold %d postings, master %d: not exhaustive", total, ix.NumPostings())
	}
	// Re-merging every term's slices must reproduce the master's list.
	for _, term := range ix.Terms() {
		var slices [][]kwindex.Posting
		for _, pix := range parts {
			if ps := pix.Postings(term); len(ps) > 0 {
				slices = append(slices, ps)
			}
		}
		if got, want := shard.MergePostings(slices), ix.ContainingList(term); !reflect.DeepEqual(got, want) {
			t.Fatalf("term %q: merged partitions differ from master list:\ngot  %v\nwant %v", term, got, want)
		}
	}
}

func TestMergePostingsRestoresOrder(t *testing.T) {
	a := []kwindex.Posting{{TO: 1, Node: 10, SchemaNode: "x"}, {TO: 9, Node: 2, SchemaNode: "x"}}
	b := []kwindex.Posting{{TO: 1, Node: 3, SchemaNode: "y"}, {TO: 4, Node: 1, SchemaNode: "y"}}
	got := shard.MergePostings([][]kwindex.Posting{a, b})
	for i := 1; i < len(got); i++ {
		p, q := got[i-1], got[i]
		if p.TO > q.TO || (p.TO == q.TO && p.Node > q.Node) {
			t.Fatalf("merged postings out of (TO, node) order at %d: %v", i, got)
		}
	}
	if len(got) != 4 {
		t.Fatalf("merged %d postings, want 4", len(got))
	}
}

func TestWireListsRoundTrip(t *testing.T) {
	lists := map[string][]kwindex.Posting{
		"tv": {
			{TO: 7, Node: xmlgraph.NodeID(70), SchemaNode: "part"},
			{TO: 8, Node: xmlgraph.NodeID(81), SchemaNode: "part"},
			{TO: 9, Node: xmlgraph.NodeID(90), SchemaNode: "descr"},
		},
		"john": {{TO: 1, Node: xmlgraph.NodeID(2), SchemaNode: "name"}},
		"none": nil,
	}
	wire := shard.EncodeLists(lists)
	back, ok := shard.DecodeLists(wire)
	if !ok {
		t.Fatal("DecodeLists rejected its own encoding")
	}
	for k, want := range lists {
		if got := back[k]; len(got) != len(want) || (len(want) > 0 && !reflect.DeepEqual(got, want)) {
			t.Fatalf("list %q did not round-trip:\ngot  %v\nwant %v", k, got, want)
		}
	}
}

func TestDecodeListsRejectsMalformed(t *testing.T) {
	wire := map[string]shard.WireList{
		"x": {Schemas: []string{"a"}, Posts: [][3]int64{{1, 2, 5}}}, // index 5 out of range
	}
	if _, ok := shard.DecodeLists(wire); ok {
		t.Fatal("DecodeLists accepted an out-of-range schema index")
	}
	wire["x"] = shard.WireList{Schemas: []string{"a"}, Posts: [][3]int64{{1, 2, -1}}}
	if _, ok := shard.DecodeLists(wire); ok {
		t.Fatal("DecodeLists accepted a negative schema index")
	}
}

func TestNormKeyword(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"TV", "tv"},
		{"  John! ", "john"},
		{"set of VCR", "set of VCR"}, // multi-token phrases stay raw
		{"!!!", ""},
	} {
		if got := shard.NormKeyword(tc.in); got != tc.want {
			t.Errorf("NormKeyword(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func res(score, plan, seq int) exec.Result {
	return exec.Result{Score: score, Ord: exec.MakeOrd(plan, seq)}
}

func TestMergeTopK(t *testing.T) {
	s1 := []exec.Result{res(1, 0, 0), res(2, 1, 1), res(3, 2, 0)}
	s2 := []exec.Result{res(1, 0, 1), res(2, 1, 0)}
	got := shard.MergeTopK([][]exec.Result{s1, s2}, 3)
	want := []exec.Result{res(1, 0, 0), res(1, 0, 1), res(2, 1, 0)}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("MergeTopK = %v, want %v", got, want)
	}
	// k ≤ 0 merges everything.
	if got := shard.MergeTopK([][]exec.Result{s1, s2}, 0); len(got) != 5 {
		t.Fatalf("MergeTopK(k=0) returned %d results, want 5", len(got))
	}
	// Duplicate Ords (overlapping covers) collapse to one.
	dup := shard.MergeTopK([][]exec.Result{{res(1, 0, 0)}, {res(1, 0, 0)}}, 0)
	if len(dup) != 1 {
		t.Fatalf("MergeTopK kept %d copies of a duplicated Ord, want 1", len(dup))
	}
	if got := shard.MergeTopK(nil, 5); len(got) != 0 {
		t.Fatalf("MergeTopK(nil) = %v, want empty", got)
	}
}

// MergeTopK against a brute-force sort over the concatenation, with
// per-stream ascending order as the coordinator guarantees it.
func TestMergeTopKMatchesSort(t *testing.T) {
	streams := [][]exec.Result{
		{res(1, 0, 0), res(1, 0, 2), res(4, 3, 1)},
		{res(1, 0, 1), res(2, 2, 0), res(2, 2, 5), res(9, 4, 0)},
		{},
		{res(3, 2, 7)},
	}
	var all []exec.Result
	for _, s := range streams {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool { return exec.OrdLess(all[i], all[j]) })
	for k := 1; k <= len(all)+1; k++ {
		want := all
		if k < len(all) {
			want = all[:k]
		}
		if got := shard.MergeTopK(streams, k); !reflect.DeepEqual(got, want) {
			t.Fatalf("k=%d: MergeTopK = %v, want %v", k, got, want)
		}
	}
}

func TestManifestRoundTripAndCorruption(t *testing.T) {
	dir := t.TempDir()
	m := &shard.Manifest{
		Version: 1,
		Scheme:  shard.HashScheme,
		N:       2,
		Shards: []shard.ShardInfo{
			{ID: 0, Dir: "shard-000", Index: "index.xki", CRC: 0xdeadbeef, Postings: 3, Keywords: 2},
			{ID: 1, Dir: "shard-001", Index: "index.xki", CRC: 0xcafef00d, Postings: 4, Keywords: 2},
		},
	}
	if err := shard.WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	got, err := shard.LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("manifest did not round-trip:\ngot  %+v\nwant %+v", got, m)
	}

	// A flipped body byte must fail the CRC check loudly.
	path := filepath.Join(dir, shard.ManifestName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := shard.LoadManifest(dir); err == nil {
		t.Fatal("LoadManifest accepted a corrupt manifest body")
	}

	// A foreign hash scheme must be rejected, not misrouted.
	m.Scheme = "other-scheme-v9"
	if err := shard.WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	if _, err := shard.LoadManifest(dir); err == nil {
		t.Fatal("LoadManifest accepted a manifest with a foreign hash scheme")
	}

	// Truncation / not-a-manifest.
	if err := os.WriteFile(path, []byte("XKWHAT 00000000\n{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := shard.LoadManifest(dir); err == nil {
		t.Fatal("LoadManifest accepted a foreign magic")
	}
}

func TestSplitAndVerify(t *testing.T) {
	ix := fig1Index(t)
	dir := t.TempDir()
	const n = 3
	m, err := shard.Split(ix, dir, n, shard.SplitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.N != n || len(m.Shards) != n {
		t.Fatalf("split manifest records %d/%d shards, want %d", m.N, len(m.Shards), n)
	}
	total := 0
	for _, si := range m.Shards {
		total += si.Postings
	}
	if total != ix.NumPostings() {
		t.Fatalf("split partitions hold %d postings, master %d", total, ix.NumPostings())
	}
	if _, err := shard.Verify(dir); err != nil {
		t.Fatalf("Verify failed on a fresh split: %v", err)
	}

	// Corrupt one partition file: Verify must fail and name the shard.
	ipath := filepath.Join(dir, m.Shards[1].Dir, m.Shards[1].Index)
	raw, err := os.ReadFile(ipath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(ipath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := shard.Verify(dir); err == nil {
		t.Fatal("Verify accepted a corrupted partition file")
	}
}

func TestSplitRejectsBadN(t *testing.T) {
	if _, err := shard.Split(fig1Index(t), t.TempDir(), 0, shard.SplitOptions{}); err == nil {
		t.Fatal("Split accepted n=0")
	}
}
