package decomp_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/decomp"
	"repro/internal/tss"
)

// randomWalk builds a random valid step sequence over the graph.
func randomWalk(tg *tss.Graph, rng *rand.Rand, n int) []decomp.Step {
	segs := tg.Segments()
	at := segs[rng.Intn(len(segs))]
	var steps []decomp.Step
	for len(steps) < n {
		outs := tg.Out(at)
		ins := tg.In(at)
		total := len(outs) + len(ins)
		if total == 0 {
			return nil
		}
		pick := rng.Intn(total)
		if pick < len(outs) {
			id := outs[pick]
			steps = append(steps, decomp.Step{EdgeID: id, Dir: decomp.Fwd})
			at = tg.Edge(id).To
		} else {
			id := ins[pick-len(outs)]
			steps = append(steps, decomp.Step{EdgeID: id, Dir: decomp.Bwd})
			at = tg.Edge(id).From
		}
	}
	return steps
}

// Property: a fragment and its reverse canonicalize identically, and the
// canonical key round-trips through Steps().
func TestQuickFragmentCanonical(t *testing.T) {
	tg := tpchGraph(t)
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%5) + 1
		rng := rand.New(rand.NewSource(seed))
		steps := randomWalk(tg, rng, n)
		if steps == nil {
			return true
		}
		frag, err := decomp.NewFragment(tg, steps)
		if err != nil {
			return false
		}
		rev := make([]decomp.Step, len(steps))
		for i, s := range steps {
			d := decomp.Fwd
			if s.Dir == decomp.Fwd {
				d = decomp.Bwd
			}
			rev[len(steps)-1-i] = decomp.Step{EdgeID: s.EdgeID, Dir: d}
		}
		fragRev, err := decomp.NewFragment(tg, rev)
		if err != nil {
			return false
		}
		if frag.Key() != fragRev.Key() {
			return false
		}
		// Rebuilding from canonical steps is a fixed point.
		again, err := decomp.NewFragment(tg, frag.Steps())
		return err == nil && again.Key() == frag.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: classification is orientation-invariant and Size matches the
// walk length.
func TestQuickClassifyInvariant(t *testing.T) {
	tg := dblpGraph(t)
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%4) + 1
		rng := rand.New(rand.NewSource(seed))
		steps := randomWalk(tg, rng, n)
		if steps == nil {
			return true
		}
		frag, err := decomp.NewFragment(tg, steps)
		if err != nil {
			return false
		}
		if frag.Size() != n {
			return false
		}
		switch frag.Classify(tg) {
		case decomp.Class4NF:
			return n == 1
		case decomp.ClassInlined, decomp.ClassMVD:
			return n > 1 || !frag.HasMVD(tg)
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: JoinBound really bounds — ceil(M/(B+1)) pieces of size L
// cover M edges.
func TestQuickJoinBoundArithmetic(t *testing.T) {
	f := func(mRaw, bRaw uint8) bool {
		m := int(mRaw%20) + 1
		b := int(bRaw % 10)
		l := decomp.JoinBound(m, b)
		// l pieces of size l, b+1 of them, must cover at least m edges.
		return l*(b+1) >= m && l >= 1 && l <= m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
