package tss_test

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/schema"
	"repro/internal/xmlgraph"
)

// Structural properties of the target decomposition, checked over both
// synthetic datasets:
//
//  1. every non-dummy data node belongs to exactly one target object,
//     and dummy nodes to none;
//  2. a target object's member nodes all map to schema nodes of its
//     segment, with the head node first;
//  3. every object edge is witnessed by an actual data path matching its
//     TSS edge's schema path;
//  4. object ids are head-node ids (so BLOB lookups resolve).
func TestDecomposeProperties(t *testing.T) {
	datasets := map[string]func() (*datagen.Dataset, error){
		"tpch": func() (*datagen.Dataset, error) {
			p := datagen.DefaultTPCHParams()
			p.Persons, p.Parts = 15, 12
			return datagen.TPCH(p)
		},
		"dblp": func() (*datagen.Dataset, error) {
			p := datagen.DefaultDBLPParams()
			p.PapersPerYear = 8
			return datagen.DBLP(p)
		},
	}
	for name, build := range datasets {
		ds, err := build()
		if err != nil {
			t.Fatal(err)
		}
		og, tg := ds.Obj, ds.TSS

		// Property 1: membership partition.
		memberCount := make(map[xmlgraph.NodeID]int)
		for _, toID := range og.Objects() {
			to := og.TO(toID)
			for _, n := range to.Nodes {
				memberCount[n]++
			}
		}
		for _, id := range ds.Data.Nodes() {
			typ := ds.Data.Node(id).Type
			dummy := tg.IsDummy(typ)
			toID, has := og.TOOf(id)
			switch {
			case dummy && has:
				t.Fatalf("%s: dummy node %d (%s) in TO %d", name, id, typ, toID)
			case !dummy && !has:
				t.Fatalf("%s: node %d (%s) in no TO", name, id, typ)
			case !dummy && memberCount[id] != 1:
				t.Fatalf("%s: node %d in %d TOs", name, id, memberCount[id])
			}
		}

		// Properties 2 and 4.
		for _, toID := range og.Objects() {
			to := og.TO(toID)
			if xmlgraph.NodeID(to.ID) != to.Nodes[0] {
				t.Fatalf("%s: TO %d head is node %d", name, to.ID, to.Nodes[0])
			}
			head := ds.Data.Node(to.Nodes[0])
			if seg, ok := tg.HeadSegment(head.Type); !ok || seg != to.Segment {
				t.Fatalf("%s: TO %d head type %s vs segment %s", name, to.ID, head.Type, to.Segment)
			}
			for _, n := range to.Nodes {
				if tg.SegmentOf(ds.Data.Node(n).Type) != to.Segment {
					t.Fatalf("%s: TO %d member %d of segment %s", name, to.ID,
						n, tg.SegmentOf(ds.Data.Node(n).Type))
				}
			}
		}

		// Property 3: every object edge has a witnessing data path.
		for _, fromTO := range og.Objects() {
			for _, oe := range og.Out(fromTO) {
				te := tg.Edge(oe.EdgeID)
				if !witnessed(ds, oe.From, oe.To, te.SchemaPath) {
					t.Fatalf("%s: object edge %d-%d (edge %d: %s) has no witness",
						name, oe.From, oe.To, oe.EdgeID, te.PathString())
				}
			}
		}
	}
}

// witnessed checks a data path from some node of TO from, matching the
// schema path, ending at a node of TO to.
func witnessed(ds *datagen.Dataset, from, to int64, path []schema.Edge) bool {
	frontier := map[xmlgraph.NodeID]bool{}
	for _, n := range ds.Obj.TO(from).Nodes {
		if ds.Data.Node(n).Type == path[0].From {
			frontier[n] = true
		}
	}
	for _, se := range path {
		next := map[xmlgraph.NodeID]bool{}
		for n := range frontier {
			for _, de := range ds.Data.Out(n) {
				if de.Kind == se.Kind && ds.Data.Node(de.To).Type == se.To {
					next[de.To] = true
				}
			}
		}
		frontier = next
	}
	for n := range frontier {
		if toID, ok := ds.Obj.TOOf(n); ok && toID == to {
			return true
		}
	}
	return false
}
