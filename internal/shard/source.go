package shard

import (
	"repro/internal/kwindex"
)

// QuerySource is the query-scoped kwindex.Source built from merged
// global postings: phase 2's execute requests carry one, so every shard
// (and the coordinator, for network reconstruction and minimality
// filtering) runs the ordinary pipeline against exactly the postings a
// single node's master index would have returned for this query's
// keywords. Lookups for keywords outside the query's set return empty —
// the pipeline only ever asks for the query's own keywords.
type QuerySource struct {
	lists    map[string][]kwindex.Posting // keyed by NormKeyword
	postings int
	keywords int
}

// NewQuerySource wraps merged lists (keyed by normalized keyword) with
// the global index totals the Source interface reports.
func NewQuerySource(lists map[string][]kwindex.Posting, postings, keywords int) *QuerySource {
	return &QuerySource{lists: lists, postings: postings, keywords: keywords}
}

var _ kwindex.Source = (*QuerySource)(nil)

// ContainingList returns the merged global list of one keyword.
func (s *QuerySource) ContainingList(k string) []kwindex.Posting {
	return s.lists[NormKeyword(k)]
}

// SchemaNodes returns the distinct schema nodes of the keyword's list.
func (s *QuerySource) SchemaNodes(k string) []string {
	return kwindex.DistinctSchemaNodes(s.ContainingList(k))
}

// TOSet returns the keyword's TOs, restricted to a schema node.
func (s *QuerySource) TOSet(k, schemaNode string) map[int64]bool {
	return kwindex.TOSetFromList(s.ContainingList(k), schemaNode)
}

// NumPostings reports the global posting total the coordinator summed.
func (s *QuerySource) NumPostings() int { return s.postings }

// NumKeywords reports the global keyword figure.
func (s *QuerySource) NumKeywords() int { return s.keywords }
