package decomp_test

import (
	"testing"

	"repro/internal/cn"
	"repro/internal/datagen"
	"repro/internal/decomp"
	"repro/internal/tss"
)

// edgeID finds a TSS edge by its schema path rendering.
func edgeID(t *testing.T, tg *tss.Graph, path string) int {
	t.Helper()
	for _, e := range tg.Edges() {
		if e.PathString() == path {
			return e.ID
		}
	}
	t.Fatalf("no TSS edge %q", path)
	return -1
}

func tpchGraph(t *testing.T) *tss.Graph {
	t.Helper()
	g, err := tss.Derive(datagen.TPCHSchema(), datagen.TPCHSpec())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// Shorthand step constructors bound to the TPC-H TSS graph.
type tpchEdges struct {
	liPart, liPerson, liProd, ordLi, partPart, persOrd, scPers int
}

func tpchIDs(t *testing.T, tg *tss.Graph) tpchEdges {
	return tpchEdges{
		liPart:   edgeID(t, tg, "lineitem>line>part"),
		liPerson: edgeID(t, tg, "lineitem>supplier>person"),
		liProd:   edgeID(t, tg, "lineitem>line>product"),
		ordLi:    edgeID(t, tg, "order>lineitem"),
		partPart: edgeID(t, tg, "part>sub>part"),
		persOrd:  edgeID(t, tg, "person>order"),
		scPers:   edgeID(t, tg, "service_call>person"),
	}
}

func TestFragmentConstruction(t *testing.T) {
	tg := tpchGraph(t)
	e := tpchIDs(t, tg)
	// POL: person>order>lineitem.
	pol := decomp.MustFragment(tg,
		decomp.Step{EdgeID: e.persOrd, Dir: decomp.Fwd},
		decomp.Step{EdgeID: e.ordLi, Dir: decomp.Fwd})
	if pol.Size() != 2 {
		t.Fatalf("size = %d", pol.Size())
	}
	// Segments follow the canonical orientation, which may be reversed.
	segs := pol.Segments(tg)
	if !(segs[0] == "person" && segs[1] == "order" && segs[2] == "lineitem") &&
		!(segs[0] == "lineitem" && segs[1] == "order" && segs[2] == "person") {
		t.Fatalf("segments = %v", segs)
	}
	// A fragment equals its reverse.
	rev := decomp.MustFragment(tg,
		decomp.Step{EdgeID: e.ordLi, Dir: decomp.Bwd},
		decomp.Step{EdgeID: e.persOrd, Dir: decomp.Bwd})
	if pol.Key() != rev.Key() {
		t.Fatalf("reverse keys differ: %q vs %q", pol.Key(), rev.Key())
	}
	// Disconnected steps rejected.
	if _, err := decomp.NewFragment(tg, []decomp.Step{
		{EdgeID: e.persOrd, Dir: decomp.Fwd},
		{EdgeID: e.partPart, Dir: decomp.Fwd},
	}); err == nil {
		t.Fatal("disconnected steps accepted")
	}
	if _, err := decomp.NewFragment(tg, nil); err == nil {
		t.Fatal("empty fragment accepted")
	}
	if _, err := decomp.NewFragment(tg, []decomp.Step{{EdgeID: 999}}); err == nil {
		t.Fatal("unknown edge accepted")
	}
}

// Theorem 5.3 on the paper's examples: PaLOLPa has the MVD
// O ->-> L1,Pa1 (Figure 10); POL and OLPa are inlined; single edges 4NF.
func TestMVDTheorem(t *testing.T) {
	tg := tpchGraph(t)
	e := tpchIDs(t, tg)
	cases := []struct {
		name  string
		steps []decomp.Step
		class decomp.Class
	}{
		{"PaPa (single edge)", []decomp.Step{{EdgeID: e.partPart, Dir: decomp.Fwd}}, decomp.Class4NF},
		{"POL", []decomp.Step{{EdgeID: e.persOrd, Dir: decomp.Fwd}, {EdgeID: e.ordLi, Dir: decomp.Fwd}}, decomp.ClassInlined},
		{"OLPa", []decomp.Step{{EdgeID: e.ordLi, Dir: decomp.Fwd}, {EdgeID: e.liPart, Dir: decomp.Fwd}}, decomp.ClassInlined},
		{"PaLOLPa", []decomp.Step{
			{EdgeID: e.liPart, Dir: decomp.Bwd},
			{EdgeID: e.ordLi, Dir: decomp.Bwd},
			{EdgeID: e.ordLi, Dir: decomp.Fwd},
			{EdgeID: e.liPart, Dir: decomp.Fwd},
		}, decomp.ClassMVD},
		{"LOL (sibling lineitems)", []decomp.Step{
			{EdgeID: e.ordLi, Dir: decomp.Bwd},
			{EdgeID: e.ordLi, Dir: decomp.Fwd},
		}, decomp.ClassMVD},
		{"LPaL (lineitems sharing a part)", []decomp.Step{
			{EdgeID: e.liPart, Dir: decomp.Fwd},
			{EdgeID: e.liPart, Dir: decomp.Bwd},
		}, decomp.ClassMVD},
		{"PaPaPa (sub chain)", []decomp.Step{
			{EdgeID: e.partPart, Dir: decomp.Fwd},
			{EdgeID: e.partPart, Dir: decomp.Fwd},
		}, decomp.ClassInlined},
		{"PaPaPa (two subs of one part)", []decomp.Step{
			{EdgeID: e.partPart, Dir: decomp.Bwd},
			{EdgeID: e.partPart, Dir: decomp.Fwd},
		}, decomp.ClassMVD},
	}
	for _, c := range cases {
		f := decomp.MustFragment(tg, c.steps...)
		if got := f.Classify(tg); got != c.class {
			t.Errorf("%s (%s): class %s, want %s", c.name, f.String(tg), got, c.class)
		}
	}
}

// §5's useless fragments: PaLPr (part and product through one lineitem's
// choice) and L-Pr-L (two lineitems through one contained product) can
// never connect distinct target objects; L-Pa-L (through a referenced
// part) can — the Figure 2 data does exactly that.
func TestUselessFragments(t *testing.T) {
	tg := tpchGraph(t)
	e := tpchIDs(t, tg)
	cases := []struct {
		name    string
		steps   []decomp.Step
		useless bool
	}{
		{"PaLPr", []decomp.Step{{EdgeID: e.liPart, Dir: decomp.Bwd}, {EdgeID: e.liProd, Dir: decomp.Fwd}}, true},
		{"LPrL", []decomp.Step{{EdgeID: e.liProd, Dir: decomp.Fwd}, {EdgeID: e.liProd, Dir: decomp.Bwd}}, true},
		{"LPaL", []decomp.Step{{EdgeID: e.liPart, Dir: decomp.Fwd}, {EdgeID: e.liPart, Dir: decomp.Bwd}}, false},
		{"PaLPa (one lineitem, part twice)", []decomp.Step{{EdgeID: e.liPart, Dir: decomp.Bwd}, {EdgeID: e.liPart, Dir: decomp.Fwd}}, true},
		{"POL", []decomp.Step{{EdgeID: e.persOrd, Dir: decomp.Fwd}, {EdgeID: e.ordLi, Dir: decomp.Fwd}}, false},
		{"O-P-O (orders of one person)", []decomp.Step{{EdgeID: e.persOrd, Dir: decomp.Bwd}, {EdgeID: e.persOrd, Dir: decomp.Fwd}}, false},
		{"P-SC-? two persons via one service_call", []decomp.Step{{EdgeID: e.scPers, Dir: decomp.Bwd}, {EdgeID: e.scPers, Dir: decomp.Fwd}}, true},
		{"SC-P-SC", []decomp.Step{{EdgeID: e.scPers, Dir: decomp.Fwd}, {EdgeID: e.scPers, Dir: decomp.Bwd}}, false},
	}
	for _, c := range cases {
		f := decomp.MustFragment(tg, c.steps...)
		if got := f.IsUseless(tg); got != c.useless {
			t.Errorf("%s (%s): useless=%v, want %v", c.name, f.String(tg), got, c.useless)
		}
	}
}

func TestEnumerateFragmentsExcludesUseless(t *testing.T) {
	tg := tpchGraph(t)
	for n := 1; n <= 3; n++ {
		all := decomp.EnumerateFragments(tg, n, true)
		nonMVD := decomp.EnumerateFragments(tg, n, false)
		if len(nonMVD) > len(all) {
			t.Fatalf("n=%d: non-MVD %d > all %d", n, len(nonMVD), len(all))
		}
		seen := map[string]bool{}
		for _, f := range all {
			if f.Size() != n {
				t.Fatalf("n=%d: got size %d", n, f.Size())
			}
			if f.IsUseless(tg) {
				t.Fatalf("useless fragment enumerated: %s", f.String(tg))
			}
			if seen[f.Key()] {
				t.Fatalf("duplicate fragment %s", f.Key())
			}
			seen[f.Key()] = true
		}
		for _, f := range nonMVD {
			if f.HasMVD(tg) {
				t.Fatalf("MVD fragment in non-MVD enumeration: %s", f.String(tg))
			}
		}
	}
	if len(decomp.EnumerateFragments(tg, 1, true)) != tg.NumEdges() {
		t.Fatalf("size-1 fragments != edges")
	}
	if decomp.EnumerateFragments(tg, 0, true) != nil {
		t.Fatal("n=0 returned fragments")
	}
}

// ctssn4 builds the shape Pa <- L <- O -> L -> Pa of Example 5.1.
func ctssn4(t *testing.T, tg *tss.Graph) *cn.TSSNetwork {
	e := tpchIDs(t, tg)
	return &cn.TSSNetwork{
		Occs: []cn.TSSOcc{
			{Segment: "part"}, {Segment: "lineitem"}, {Segment: "order"},
			{Segment: "lineitem"}, {Segment: "part"},
		},
		Edges: []cn.TSSEdgeRef{
			{From: 1, To: 0, EdgeID: e.liPart},
			{From: 2, To: 1, EdgeID: e.ordLi},
			{From: 2, To: 3, EdgeID: e.ordLi},
			{From: 3, To: 4, EdgeID: e.liPart},
		},
	}
}

// Example 5.1/5.2: CTSSN4 needs 3 joins under the minimal decomposition,
// 1 join once the OLPa fragment exists, and 0 joins with the unfolded
// PaLOLPa fragment.
func TestDecompositionJoinCounts(t *testing.T) {
	tg := tpchGraph(t)
	e := tpchIDs(t, tg)
	shape := ctssn4(t, tg)

	minimal := decomp.Minimal(tg)
	if j := decomp.MinJoins(tg, shape, minimal.Fragments); j != 3 {
		t.Errorf("minimal: %d joins, want 3", j)
	}

	olpa := decomp.MustFragment(tg,
		decomp.Step{EdgeID: e.ordLi, Dir: decomp.Fwd},
		decomp.Step{EdgeID: e.liPart, Dir: decomp.Fwd})
	withOLPa := append(append([]decomp.Fragment(nil), minimal.Fragments...), olpa)
	if j := decomp.MinJoins(tg, shape, withOLPa); j != 1 {
		t.Errorf("with OLPa: %d joins, want 1", j)
	}

	palolpa := decomp.MustFragment(tg,
		decomp.Step{EdgeID: e.liPart, Dir: decomp.Bwd},
		decomp.Step{EdgeID: e.ordLi, Dir: decomp.Bwd},
		decomp.Step{EdgeID: e.ordLi, Dir: decomp.Fwd},
		decomp.Step{EdgeID: e.liPart, Dir: decomp.Fwd})
	withBig := append(withOLPa, palolpa)
	if j := decomp.MinJoins(tg, shape, withBig); j != 0 {
		t.Errorf("with PaLOLPa: %d joins, want 0", j)
	}

	// A fragment set that cannot cover the shape at all.
	only := []decomp.Fragment{decomp.MustFragment(tg, decomp.Step{EdgeID: e.partPart, Dir: decomp.Fwd})}
	if j := decomp.MinJoins(tg, shape, only); j != -1 {
		t.Errorf("uncoverable shape: %d, want -1", j)
	}
}

func TestJoinBound(t *testing.T) {
	cases := []struct{ m, b, want int }{
		{6, 2, 2}, {8, 2, 3}, {4, 1, 2}, {1, 0, 1}, {7, 3, 2}, {6, 0, 6},
	}
	for _, c := range cases {
		if got := decomp.JoinBound(c.m, c.b); got != c.want {
			t.Errorf("JoinBound(%d,%d) = %d, want %d", c.m, c.b, got, c.want)
		}
	}
}

// Theorem 5.1: the XKeyword decomposition evaluates every CTSSN shape of
// size up to M with at most B joins.
func TestTheorem51(t *testing.T) {
	for _, cfg := range []struct{ m, b int }{{4, 1}, {6, 2}, {4, 3}} {
		for _, build := range []func(*testing.T) *tss.Graph{tpchGraph, dblpGraph} {
			tg := build(t)
			d, err := decomp.XKeyword(tg, cfg.m, cfg.b)
			if err != nil {
				t.Fatalf("m=%d b=%d: %v", cfg.m, cfg.b, err)
			}
			cov := decomp.NewCoverer(tg, d.Fragments)
			for _, shape := range decomp.EnumerateShapes(tg, cfg.m) {
				if _, ok := cov.Cover(shape, cfg.b); !ok {
					t.Errorf("m=%d b=%d: shape %s not covered", cfg.m, cfg.b, shape)
				}
			}
		}
	}
}

func dblpGraph(t *testing.T) *tss.Graph {
	t.Helper()
	g, err := tss.Derive(datagen.DBLPSchema(), datagen.DBLPSpec())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestXKeywordPrefersNonMVD(t *testing.T) {
	tg := dblpGraph(t)
	d, err := decomp.XKeyword(tg, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	mvds := 0
	for _, f := range d.Fragments {
		if f.HasMVD(tg) {
			mvds++
		}
	}
	nonMVDOnly := decomp.EnumerateFragments(tg, 2, false)
	_ = nonMVDOnly
	// The DBLP TSS graph needs some MVD fragments (e.g. the shared-parent
	// shapes), but the decomposition must not be mostly MVD.
	if mvds > len(d.Fragments)/2 {
		t.Fatalf("%d of %d fragments are MVD", mvds, len(d.Fragments))
	}
}

func TestXKeywordValidation(t *testing.T) {
	tg := tpchGraph(t)
	if _, err := decomp.XKeyword(tg, 0, 2); err == nil {
		t.Fatal("m=0 accepted")
	}
	if _, err := decomp.XKeyword(tg, 4, -1); err == nil {
		t.Fatal("b=-1 accepted")
	}
}

func TestPresetsShape(t *testing.T) {
	tg := tpchGraph(t)
	min := decomp.Minimal(tg)
	if len(min.Fragments) != tg.NumEdges() {
		t.Fatalf("minimal: %d fragments", len(min.Fragments))
	}
	mc := decomp.MinClust(tg)
	if !mc.Physical.ClusterBothDirections || mc.Physical.HashIndexes {
		t.Fatalf("MinClust physical = %+v", mc.Physical)
	}
	mi := decomp.MinNClustIndx(tg)
	if mi.Physical.ClusterBothDirections || !mi.Physical.HashIndexes {
		t.Fatalf("MinNClustIndx physical = %+v", mi.Physical)
	}
	mn := decomp.MinNClustNIndx(tg)
	if mn.Physical.ClusterBothDirections || mn.Physical.HashIndexes {
		t.Fatalf("MinNClustNIndx physical = %+v", mn.Physical)
	}
	comp := decomp.Complete(tg, 2)
	if len(comp.Fragments) <= len(min.Fragments) {
		t.Fatalf("Complete(%d) not larger than minimal", 2)
	}
	hasMVD := false
	for _, f := range comp.Fragments {
		if f.HasMVD(tg) {
			hasMVD = true
		}
	}
	if !hasMVD {
		t.Fatal("Complete must include MVD fragments")
	}
	// Combination unions fragments and physical flags.
	comb := decomp.Combination("combo", mc, mi)
	if len(comb.Fragments) != len(min.Fragments) {
		t.Fatalf("combination fragments = %d", len(comb.Fragments))
	}
	if !comb.Physical.ClusterBothDirections || !comb.Physical.HashIndexes {
		t.Fatalf("combination physical = %+v", comb.Physical)
	}
}
