package qserve

import (
	"context"
	"sort"
	"strings"
	"sync"
)

// Degradation annotates a response whose answer was computed without
// part of the index — e.g. the scatter-gather coordinator lost a shard's
// posting partition and answered from the surviving ones. The serving
// invariant from the fault-injection work applies: such an answer is
// never presented as complete. It is returned alongside the results (the
// web layer renders it into the response JSON), counted in Stats, and
// never cached — the shard may be back for the next query.
type Degradation struct {
	// Shards names the unavailable shards ("shard 2 of 5 at <addr>").
	Shards []string `json:"shards"`
	// Detail explains what the loss means for the answer.
	Detail string `json:"detail"`
	// Count is how many degradation records were folded into this note.
	// Failover retries can report the same shard loss several times in
	// one query; the Shards list stays deduplicated and Count keeps the
	// raw record count for operators chasing flapping replicas.
	Count int `json:"count"`
}

// merge folds another degradation into this one (multiple shards can
// fail during one query). Repeated records for the same shard do not
// grow the Shards list — they bump Count.
func (d *Degradation) merge(o Degradation) {
	n := o.Count
	if n == 0 {
		n = 1
	}
	d.Count += n
	d.Shards = append(d.Shards, o.Shards...)
	sort.Strings(d.Shards)
	d.Shards = dedupStrings(d.Shards)
	if d.Detail == "" {
		d.Detail = o.Detail
	} else if o.Detail != "" && !strings.Contains(d.Detail, o.Detail) {
		d.Detail += "; " + o.Detail
	}
}

func dedupStrings(ss []string) []string {
	out := ss[:0]
	for i, s := range ss {
		if i == 0 || s != ss[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// degSlot is the per-flight degradation collector. The serving layer —
// not the handler — owns the flight's context (singleflight runs the
// engine on a detached context shared by all collapsed waiters), so the
// slot is installed by serve() inside the flight and engines report into
// it with NoteDegradation.
type degSlot struct {
	mu sync.Mutex
	d  *Degradation // guarded by mu
}

type degSlotKey struct{}

// withDegradationSlot installs a fresh degradation slot into ctx.
func withDegradationSlot(ctx context.Context) (context.Context, *degSlot) {
	slot := &degSlot{}
	return context.WithValue(ctx, degSlotKey{}, slot), slot
}

// take returns the collected degradation, if any.
func (s *degSlot) take() *Degradation {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.d
}

// NoteDegradation records that the engine answered the in-flight query
// degraded (partial index, dead shard). A no-op when ctx carries no slot
// — engines may call it unconditionally; only contexts minted by the
// serving layer (or CaptureDegradation in tests) collect the note.
func NoteDegradation(ctx context.Context, d Degradation) {
	slot, ok := ctx.Value(degSlotKey{}).(*degSlot)
	if !ok {
		return
	}
	slot.mu.Lock()
	defer slot.mu.Unlock()
	if slot.d == nil {
		slot.d = &Degradation{}
	}
	slot.d.merge(d)
}

// CaptureDegradation installs a degradation slot into ctx and returns a
// getter for what the engine reported — for callers driving an engine
// directly (tests, CLI) without the serving layer in front.
func CaptureDegradation(ctx context.Context) (context.Context, func() *Degradation) {
	ctx, slot := withDegradationSlot(ctx)
	return ctx, slot.take
}
