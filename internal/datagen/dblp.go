package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/schema"
	"repro/internal/tss"
	"repro/internal/xmlgraph"
)

// DBLPSchema returns the DBLP schema graph of Figure 14:
//
//	conference(root) -> cname(1), confyear(*)
//	confyear         -> year(1), paper(*)
//	paper            -> title(1), pages(1), url(1), authorref(*), cite(*)
//	authorref (dummy) -ref-> author      ("by")
//	cite (dummy)      -ref-> paper       ("cites")
//	author(root)     -> aname(1)
func DBLPSchema() *schema.Graph {
	g := schema.New()
	g.MustBuild(
		g.AddNode("conference", schema.All),
		g.AddTaggedNode("cname", "name", schema.All),
		g.AddNode("confyear", schema.All),
		g.AddNode("year", schema.All),
		g.AddNode("paper", schema.All),
		g.AddNode("title", schema.All),
		g.AddNode("pages", schema.All),
		g.AddNode("url", schema.All),
		g.AddNode("authorref", schema.All),
		g.AddNode("cite", schema.All),
		g.AddNode("author", schema.All),
		g.AddTaggedNode("aname", "name", schema.All),
		g.SetRoot("conference"),
		g.SetRoot("author"),

		g.AddEdge("conference", "cname", xmlgraph.Containment, 1),
		g.AddEdge("conference", "confyear", xmlgraph.Containment, schema.Unbounded),
		g.AddEdge("confyear", "year", xmlgraph.Containment, 1),
		g.AddEdge("confyear", "paper", xmlgraph.Containment, schema.Unbounded),
		g.AddEdge("paper", "title", xmlgraph.Containment, 1),
		g.AddEdge("paper", "pages", xmlgraph.Containment, 1),
		g.AddEdge("paper", "url", xmlgraph.Containment, 1),
		g.AddEdge("paper", "authorref", xmlgraph.Containment, schema.Unbounded),
		g.AddEdge("paper", "cite", xmlgraph.Containment, schema.Unbounded),
		g.AddEdge("authorref", "author", xmlgraph.Reference, 1),
		g.AddEdge("cite", "paper", xmlgraph.Reference, 1),
		g.AddEdge("author", "aname", xmlgraph.Containment, 1),
	)
	return g
}

// DBLPSpec returns the target decomposition of Figure 14: Conference,
// Year, Paper and Author segments; authorref and cite are dummies.
func DBLPSpec() tss.Spec {
	return tss.Spec{
		Segments: []tss.SegmentSpec{
			{Name: "conference", Head: "conference", Members: []string{"cname"}},
			{Name: "confyear", Head: "confyear", Members: []string{"year"}},
			{Name: "paper", Head: "paper", Members: []string{"title", "pages", "url"}},
			{Name: "author", Head: "author", Members: []string{"aname"}},
		},
		Annotations: []tss.Annotation{
			{Path: "conference>confyear", Forward: "in year", Backward: "of conference"},
			{Path: "confyear>paper", Forward: "contains paper", Backward: "in issue"},
			{Path: "paper>authorref>author", Forward: "by author", Backward: "of paper"},
			{Path: "paper>cite>paper", Forward: "cites", Backward: "is cited by"},
		},
	}
}

// DBLPParams sizes a synthetic DBLP-like dataset. The paper uses the real
// DBLP dump with synthetic citations (avg 20 per paper); we synthesize
// the whole graph with the same structural parameters.
type DBLPParams struct {
	Conferences   int
	YearsPerConf  int
	PapersPerYear int
	Authors       int
	MinAuthors    int // authors per paper, uniform in [MinAuthors, MaxAuthors]
	MaxAuthors    int
	AvgCitations  int // citations per paper, uniform in [0, 2*AvgCitations]
	Seed          int64
}

// DefaultDBLPParams returns the configuration used by the unit tests:
// small enough to be fast, large enough for multi-result queries.
func DefaultDBLPParams() DBLPParams {
	return DBLPParams{
		Conferences:   4,
		YearsPerConf:  3,
		PapersPerYear: 25,
		Authors:       60,
		MinAuthors:    1,
		MaxAuthors:    3,
		AvgCitations:  5,
		Seed:          1,
	}
}

// BenchDBLPParams returns the larger configuration used by the benchmark
// harness (≈2k papers, avg 20 citations each, as in the paper's setup).
func BenchDBLPParams() DBLPParams {
	return DBLPParams{
		Conferences:   8,
		YearsPerConf:  10,
		PapersPerYear: 25,
		Authors:       600,
		MinAuthors:    1,
		MaxAuthors:    4,
		AvgCitations:  20,
		Seed:          7,
	}
}

// DBLP generates a synthetic DBLP-like dataset. Author names are
// "FirstN LastM" pairs from pools, titles are drawn from a topic
// vocabulary, and citations connect uniformly random papers (avg
// AvgCitations per paper), mirroring the paper's augmentation of DBLP.
func DBLP(p DBLPParams) (*Dataset, error) {
	if p.MinAuthors < 1 || p.MaxAuthors < p.MinAuthors {
		return nil, fmt.Errorf("datagen: bad author bounds [%d,%d]", p.MinAuthors, p.MaxAuthors)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	d := xmlgraph.New()
	cont := func(a, b xmlgraph.NodeID) { d.MustAddEdge(a, b, xmlgraph.Containment) }
	ref := func(a, b xmlgraph.NodeID) { d.MustAddEdge(a, b, xmlgraph.Reference) }

	authors := make([]xmlgraph.NodeID, p.Authors)
	for i := range authors {
		a := d.AddNode("author", "")
		cont(a, d.AddNode("name", AuthorName(i)))
		authors[i] = a
	}
	var papers []xmlgraph.NodeID
	pageStart := 1
	for c := 0; c < p.Conferences; c++ {
		conf := d.AddNode("conference", "")
		cont(conf, d.AddNode("name", confNames[c%len(confNames)]))
		for y := 0; y < p.YearsPerConf; y++ {
			cy := d.AddNode("confyear", "")
			cont(conf, cy)
			cont(cy, d.AddNode("year", fmt.Sprint(1993+y)))
			for i := 0; i < p.PapersPerYear; i++ {
				pa := d.AddNode("paper", "")
				cont(cy, pa)
				cont(pa, d.AddNode("title", title(rng)))
				cont(pa, d.AddNode("pages", fmt.Sprintf("%d-%d", pageStart, pageStart+11)))
				pageStart += 12
				cont(pa, d.AddNode("url", fmt.Sprintf("db/conf/%s/%d-%d.html", confNames[c%len(confNames)], 1993+y, i)))
				n := p.MinAuthors + rng.Intn(p.MaxAuthors-p.MinAuthors+1)
				perm := rng.Perm(len(authors))
				for k := 0; k < n && k < len(perm); k++ {
					ar := d.AddNode("authorref", "")
					cont(pa, ar)
					ref(ar, authors[perm[k]])
				}
				papers = append(papers, pa)
			}
		}
	}
	// Synthetic citations, as the paper adds to DBLP: uniform in
	// [0, 2*AvgCitations] so the mean is AvgCitations.
	for _, pa := range papers {
		n := 0
		if p.AvgCitations > 0 {
			n = rng.Intn(2*p.AvgCitations + 1)
		}
		for k := 0; k < n; k++ {
			target := papers[rng.Intn(len(papers))]
			if target == pa {
				continue
			}
			ci := d.AddNode("cite", "")
			cont(pa, ci)
			ref(ci, target)
		}
	}
	return assemble(DBLPSchema(), DBLPSpec(), d)
}

// AuthorName returns the deterministic name of the i-th generated author,
// so tests and benchmarks can pick keywords that surely occur.
func AuthorName(i int) string {
	return firstNames[i%len(firstNames)] + " " + lastNames[(i/len(firstNames))%len(lastNames)] + fmt.Sprint(i)
}

func title(rng *rand.Rand) string {
	n := 3 + rng.Intn(4)
	out := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			out += " "
		}
		out += titleWords[rng.Intn(len(titleWords))]
	}
	return out
}

var confNames = []string{"ICDE", "VLDB", "SIGMOD", "PODS", "EDBT", "WWW", "KDD", "CIKM"}
var firstNames = []string{"Alice", "Bob", "Carol", "David", "Elena", "Frank", "Grace", "Hector", "Irene", "Jorge"}
var lastNames = []string{"Smith", "Chen", "Garcia", "Kumar", "Papas", "Ivanov", "Tanaka", "Muller", "Rossi", "Silva"}
var titleWords = []string{
	"keyword", "proximity", "search", "xml", "graphs", "relational",
	"databases", "query", "optimization", "indexing", "semistructured",
	"schema", "storage", "views", "join", "top", "ranking", "web",
	"information", "retrieval", "candidate", "networks", "efficient",
}
