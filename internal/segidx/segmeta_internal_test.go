package segidx

import (
	"encoding/binary"
	"hash/crc32"
	"reflect"
	"testing"
)

// encodeSegMetaV1 reproduces the version-1 meta layout (claims and
// tombstones, no summaries) so the read-compat path can be tested
// against bytes a pre-summary build would have written.
func encodeSegMetaV1(ids []int64, tombs []int64) []byte {
	b := append([]byte(nil), segMetaMagic[:]...)
	b = binary.LittleEndian.AppendUint32(b, 1)
	b = binary.AppendUvarint(b, uint64(len(ids)))
	var prev int64
	for _, to := range ids {
		b = binary.AppendVarint(b, to-prev)
		prev = to
	}
	b = binary.AppendUvarint(b, uint64(len(tombs)))
	prev = 0
	for _, to := range tombs {
		b = binary.AppendVarint(b, to-prev)
		prev = to
	}
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

func TestSegMetaRoundTripV2(t *testing.T) {
	docs := map[int64]string{
		5:    "person[name=Anna nation=US]",
		42:   "",
		1000: "part[key=1005 name=TV]",
	}
	tombs := map[int64]bool{7: true, 900: true}
	gotDocs, gotTombs, err := decodeSegMeta(encodeSegMeta(docs, tombs))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotDocs, docs) {
		t.Fatalf("docs did not round-trip:\ngot  %v\nwant %v", gotDocs, docs)
	}
	if !reflect.DeepEqual(gotTombs, tombs) {
		t.Fatalf("tombs did not round-trip:\ngot  %v\nwant %v", gotTombs, tombs)
	}
}

// TestSegMetaReadsV1 feeds the decoder bytes in the pre-summary
// version-1 layout: claims and tombstones must decode exactly, with
// every summary empty (the caller then falls back to placeholder
// rendering instead of failing the segment).
func TestSegMetaReadsV1(t *testing.T) {
	raw := encodeSegMetaV1([]int64{3, 17, 400}, []int64{9})
	docs, tombs, err := decodeSegMeta(raw)
	if err != nil {
		t.Fatalf("v1 meta rejected: %v", err)
	}
	if want := map[int64]string{3: "", 17: "", 400: ""}; !reflect.DeepEqual(docs, want) {
		t.Fatalf("v1 docs = %v, want %v", docs, want)
	}
	if want := map[int64]bool{9: true}; !reflect.DeepEqual(tombs, want) {
		t.Fatalf("v1 tombs = %v, want %v", tombs, want)
	}
}

func TestSegMetaRejectsCorruption(t *testing.T) {
	good := encodeSegMeta(map[int64]string{1: "x"}, nil)
	for name, mutate := range map[string]func([]byte) []byte{
		"flipped-byte": func(b []byte) []byte { b[len(b)/2] ^= 0xff; return b },
		"truncated":    func(b []byte) []byte { return b[:len(b)-5] },
		"bad-magic":    func(b []byte) []byte { b[0] = 'Z'; return b },
		"future-version": func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:], 99)
			// Recompute the CRC so only the version is at fault.
			body := b[:len(b)-4]
			binary.LittleEndian.PutUint32(b[len(b)-4:], crc32.ChecksumIEEE(body))
			return b
		},
	} {
		raw := mutate(append([]byte(nil), good...))
		if _, _, err := decodeSegMeta(raw); err == nil {
			t.Errorf("%s: decodeSegMeta accepted corrupt meta", name)
		}
	}
}

// TestSegMetaTruncatesOversizedSummary pins the size guard: a summary
// past maxSummaryBytes is stored truncated, not rejected.
func TestSegMetaTruncatesOversizedSummary(t *testing.T) {
	big := make([]byte, maxSummaryBytes+100)
	for i := range big {
		big[i] = 'a'
	}
	docs, _, err := decodeSegMeta(encodeSegMeta(map[int64]string{1: string(big)}, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(docs[1]) != maxSummaryBytes {
		t.Fatalf("stored summary is %d bytes, want truncation to %d", len(docs[1]), maxSummaryBytes)
	}
}
