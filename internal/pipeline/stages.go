package pipeline

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/cn"
	"repro/internal/exec"
	"repro/internal/kwindex"
	"repro/internal/optimizer"
	"repro/internal/schema"
	"repro/internal/tss"
)

// NetCache memoizes generated candidate networks per keyword-shape
// signature (core's per-System bounded LRU implements it). The cached
// networks carry positional placeholder keywords; the generate stage
// substitutes each query's keywords into a clone.
type NetCache interface {
	Get(sig string) ([]*cn.Network, bool)
	Put(sig string, nets []*cn.Network)
}

// Config assembles the default stages over a loaded system's parts.
type Config struct {
	Schema *schema.Graph
	TSS    *tss.Graph
	// Index is the master index backend (in-memory or disk-backed).
	Index kwindex.Source
	// Z is the maximum MTNN size of interest.
	Z int
	// Workers sizes the execute stage's worker pool.
	Workers int
	// StrictMinimal makes the rank stage drop non-minimal results.
	StrictMinimal bool
	// NetCache, when non-nil, memoizes CN generation per keyword shape.
	NetCache NetCache
	// NewOptimizer builds the plan optimizer (per query).
	NewOptimizer func() *optimizer.Optimizer
	// NewExecutor builds the executor honoring the cache options (per
	// query; the lookup cache is shared across the query's plans).
	NewExecutor func() *exec.Executor
	// Metrics, when non-nil, accumulates cross-query stage statistics.
	Metrics *Metrics
}

// New builds the default pipeline over a configuration.
func New(cfg Config) *Pipeline {
	c := &cfg
	return &Pipeline{
		Discover: discoverStage{c},
		Generate: generateStage{c},
		Reduce:   reduceStage{c},
		Optimize: optimizeStage{c},
		Execute:  executeStage{c},
		Rank:     rankStage{c},
		Metrics:  cfg.Metrics,
	}
}

// placeholder returns the positional keyword stand-in cached networks
// carry; \x01 cannot appear in tokenized keywords.
func placeholder(i int) string { return fmt.Sprintf("\x01k%d\x01", i) }

// ShapeSignature encodes a keyword query's shape — which schema nodes
// hold each keyword, under which Z — as the CN memo key. Every node
// name is length-prefixed, so names containing separator characters
// cannot collide two different shapes (the old "," / ";" joined
// encoding could).
func ShapeSignature(z int, nodeLists [][]string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "z=%d", z)
	for _, nodes := range nodeLists {
		fmt.Fprintf(&sb, "|%d", len(nodes))
		for _, n := range nodes {
			fmt.Fprintf(&sb, ":%d:%s", len(n), n)
		}
	}
	return sb.String()
}

// discoverStage tokenizes the keywords and looks up, per keyword, the
// schema nodes whose extensions contain it (the containing-list heads
// of §4). Out is the total number of keyword→schema-node pairs.
type discoverStage struct{ cfg *Config }

func (s discoverStage) Name() string { return StageDiscover }

func (s discoverStage) Run(ctx context.Context, q *Query, rep *StageReport) error {
	if len(q.Keywords) == 0 {
		return fmt.Errorf("pipeline: empty keyword query")
	}
	rep.In = int64(len(q.Keywords))
	q.Norm = make([]string, len(q.Keywords))
	q.NodeLists = make([][]string, len(q.Keywords))
	for i, k := range q.Keywords {
		toks := kwindex.Tokenize(k)
		if len(toks) == 0 {
			return fmt.Errorf("pipeline: keyword %q has no tokens", k)
		}
		q.Norm[i] = toks[0]
		if len(toks) > 1 {
			// Multi-token keywords match nodes containing all tokens;
			// the master index handles that, keyed by the raw phrase.
			q.Norm[i] = k
		}
		q.NodeLists[i] = s.cfg.Index.SchemaNodes(q.Norm[i])
		rep.Out += int64(len(q.NodeLists[i]))
	}
	q.Sig = ShapeSignature(s.cfg.Z, q.NodeLists)
	return nil
}

// generateStage runs the CN generator (§4) — through the shape memo
// when one is configured — and substitutes the query's keywords for the
// cached networks' positional placeholders. Out is the number of
// candidate networks.
type generateStage struct{ cfg *Config }

func (s generateStage) Name() string { return StageGenerate }

func (s generateStage) Run(ctx context.Context, q *Query, rep *StageReport) error {
	rep.In = int64(len(q.Keywords))
	var generic []*cn.Network
	cached := false
	if s.cfg.NetCache != nil {
		generic, cached = s.cfg.NetCache.Get(q.Sig)
	}
	if cached {
		rep.CacheHits = 1
		rep.Cached = true
	} else {
		rep.CacheMisses = 1
		phKeywords := make([]string, len(q.Keywords))
		phNodes := make(map[string][]string, len(q.Keywords))
		for i := range q.Keywords {
			phKeywords[i] = placeholder(i)
			phNodes[phKeywords[i]] = q.NodeLists[i]
		}
		var err error
		generic, err = cn.Generate(cn.Input{
			Schema:        s.cfg.Schema,
			Keywords:      phKeywords,
			SchemaNodesOf: phNodes,
			MaxSize:       s.cfg.Z,
		})
		if err != nil {
			return err
		}
		if s.cfg.NetCache != nil {
			s.cfg.NetCache.Put(q.Sig, generic)
		}
	}
	// Substitute the query's keywords for the placeholders through a
	// direct placeholder→index map. A keyword that is not a known
	// placeholder means the cached network cannot belong to this shape:
	// fail loudly instead of silently skipping the substitution.
	phIndex := make(map[string]int, len(q.Keywords))
	for i := range q.Keywords {
		phIndex[placeholder(i)] = i
	}
	nets := make([]*cn.Network, len(generic))
	for i, g := range generic {
		n := g.Clone()
		for oi := range n.Occs {
			for ki, kw := range n.Occs[oi].Keywords {
				idx, ok := phIndex[kw]
				if !ok {
					return fmt.Errorf("pipeline: network %s carries unknown placeholder %q", g, kw)
				}
				n.Occs[oi].Keywords[ki] = q.Norm[idx]
			}
			sort.Strings(n.Occs[oi].Keywords)
		}
		nets[i] = n
	}
	q.CNs = nets
	rep.Out = int64(len(nets))
	return nil
}

// reduceStage reduces each candidate network to its CTSSN, keeps the
// lowest-score CN per distinct shape, and sorts ascending by score —
// the order the execute stage's smallest-first scheduling relies on.
type reduceStage struct{ cfg *Config }

func (s reduceStage) Name() string { return StageReduce }

func (s reduceStage) Run(ctx context.Context, q *Query, rep *StageReport) error {
	rep.In = int64(len(q.CNs))
	var out []*cn.TSSNetwork
	seen := make(map[string]bool)
	for _, n := range q.CNs {
		tn, err := cn.Reduce(s.cfg.TSS, n)
		if err != nil {
			return fmt.Errorf("pipeline: reducing %s: %w", n, err)
		}
		// Distinct CTSSNs only; keep the lowest-score CN per shape.
		key := tn.Canon()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, tn)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score() < out[j].Score() })
	q.Nets = out
	rep.Out = int64(len(out))
	return nil
}

// optimizeStage turns each CTSSN into an execution plan (§5).
type optimizeStage struct{ cfg *Config }

func (s optimizeStage) Name() string { return StageOptimize }

func (s optimizeStage) Run(ctx context.Context, q *Query, rep *StageReport) error {
	rep.In = int64(len(q.Nets))
	opt := s.cfg.NewOptimizer()
	var plans []exec.Planned
	for _, tn := range q.Nets {
		p, err := opt.Plan(tn)
		if err != nil {
			return fmt.Errorf("pipeline: planning %s: %w", tn, err)
		}
		plans = append(plans, exec.Planned{Plan: p})
	}
	q.Plans = plans
	rep.Out = int64(len(plans))
	return nil
}

// executeStage evaluates the plans (§6) in the query's mode: top-K
// through the smallest-first worker pool, all results plan by plan
// through one shared lookup cache, or a started stream. Cache traffic is
// the executor lookup cache's hit/miss counts.
type executeStage struct{ cfg *Config }

func (s executeStage) Name() string { return StageExecute }

func (s executeStage) Run(ctx context.Context, q *Query, rep *StageReport) error {
	rep.In = int64(len(q.Plans))
	rep.Note = q.Mode.String()
	switch q.Mode {
	case ModeTopK:
		if err := ctx.Err(); err != nil {
			return err
		}
		ex := s.cfg.NewExecutor()
		out, err := exec.TopKPlansContext(ctx, ex, q.Plans, exec.TopKOptions{
			K:        q.K,
			Workers:  s.cfg.Workers,
			Strategy: q.Strategy,
		})
		recordLookups(ex, rep)
		if err != nil {
			return err
		}
		q.Results = out
	case ModeAll:
		ex := s.cfg.NewExecutor()
		var out []exec.Result
		for pi, p := range q.Plans {
			n := 0
			if err := ex.RunContext(ctx, p.Plan, q.Strategy, func(r exec.Result) bool {
				r.Ord = exec.MakeOrd(pi, n)
				n++
				out = append(out, r)
				return true
			}); err != nil {
				recordLookups(ex, rep)
				return err
			}
		}
		recordLookups(ex, rep)
		q.Results = out
	case ModeStream:
		q.Stream = exec.StreamPlansContext(ctx, s.cfg.NewExecutor(), q.Plans, s.cfg.Workers, q.Strategy)
	default:
		return fmt.Errorf("pipeline: mode %v does not execute", q.Mode)
	}
	rep.Out = int64(len(q.Results))
	return nil
}

// recordLookups copies the executor lookup cache's counters into the
// stage report.
func recordLookups(ex *exec.Executor, rep *StageReport) {
	if ex.Cache == nil {
		return
	}
	rep.CacheHits, rep.CacheMisses = ex.Cache.Stats()
}

// rankStage is the single place results are ordered and filtered: full
// result sets are sorted ascending by score (top-K sets arrive sorted
// and truncated from the worker pool), and StrictMinimal drops results
// violating §3.1's strict MTNN minimality.
type rankStage struct{ cfg *Config }

func (s rankStage) Name() string { return StageRank }

func (s rankStage) Run(ctx context.Context, q *Query, rep *StageReport) error {
	rep.In = int64(len(q.Results))
	if q.Mode == ModeAll {
		// (Score, Ord) is the canonical total order; for ModeAll's
		// sequential plan-by-plan enumeration it coincides with the
		// previous stable sort by score, but naming it here keeps every
		// ranked surface (this stage, the top-k pool, the scatter-gather
		// coordinator's merge) on one deterministic order.
		sort.Slice(q.Results, func(i, j int) bool { return exec.OrdLess(q.Results[i], q.Results[j]) })
	}
	if s.cfg.StrictMinimal {
		out := q.Results[:0]
		for _, r := range q.Results {
			if exec.IsMinimal(s.cfg.Index, r) {
				out = append(out, r)
			}
		}
		q.Results = out
	}
	rep.Out = int64(len(q.Results))
	return nil
}
