// The quickstart example runs the paper's introductory query — the
// keywords "John, VCR" over the TPC-H-like XML graph of Figure 1 — and
// prints the ranked MTTON results: the size-6 tree (John supplied the
// lineitem whose product is a "set of VCR and DVD") first, then the
// size-8 trees (VCR sub-parts of the TV part John supplied).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/datagen"
)

func main() {
	// Load stage: the Figure 1 instance with the Figure 5 schema and the
	// Figure 6 target decomposition, indexed and materialized.
	ds, err := datagen.TPCHFigure1()
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.LoadPrepared(&core.Prepared{
		Schema: ds.Schema, TSS: ds.TSS, Data: ds.Data, Obj: ds.Obj,
	}, core.Options{Z: 8})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("query: John, VCR  (max MTNN size Z=8)")
	results, err := sys.QueryAll([]string{"John", "VCR"})
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range results {
		fmt.Printf("\n#%d  score %d (smaller = closer connection)\n", i+1, r.Score)
		fmt.Println(sys.RenderResult(r))
	}
	if len(results) == 0 {
		fmt.Println("no results")
	}
}
