package core

import (
	"container/list"
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/cn"
	"repro/internal/exec"
	"repro/internal/kwindex"
	"repro/internal/optimizer"
)

// netMemo caches generated candidate networks per (keyword-to-schema-node
// signature, Z): the CN generator's output depends only on which schema
// nodes hold each keyword, not on the keyword strings, so queries with
// the same "shape" (e.g. any two author names) share one generation.
// Cached networks carry positional placeholder keywords that Networks
// substitutes per query. The memo is a bounded LRU owned by one System:
// it used to be a package-global sync.Map keyed by *schema.Graph, which
// leaked every loaded system's networks for the life of the process.
type netMemo struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recent
	m   map[string]*list.Element
}

// netMemoCap bounds the distinct keyword shapes memoized per System.
const netMemoCap = 256

type netMemoEntry struct {
	sig  string
	nets []*cn.Network
}

func newNetMemo(capacity int) *netMemo {
	return &netMemo{cap: capacity, ll: list.New(), m: make(map[string]*list.Element)}
}

func (mm *netMemo) get(sig string) ([]*cn.Network, bool) {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	el, ok := mm.m[sig]
	if !ok {
		return nil, false
	}
	mm.ll.MoveToFront(el)
	return el.Value.(*netMemoEntry).nets, true
}

func (mm *netMemo) put(sig string, nets []*cn.Network) {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	if el, ok := mm.m[sig]; ok {
		el.Value.(*netMemoEntry).nets = nets
		mm.ll.MoveToFront(el)
		return
	}
	mm.m[sig] = mm.ll.PushFront(&netMemoEntry{sig: sig, nets: nets})
	for mm.cap > 0 && mm.ll.Len() > mm.cap {
		oldest := mm.ll.Back()
		mm.ll.Remove(oldest)
		delete(mm.m, oldest.Value.(*netMemoEntry).sig)
	}
}

func (mm *netMemo) len() int {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	return mm.ll.Len()
}

func placeholder(i int) string { return fmt.Sprintf("\x01k%d\x01", i) }

// Networks runs the keyword discoverer and the CN generator for a
// keyword query and returns the candidate TSS networks in ascending
// score order (paper §4). Keywords are tokenized case-insensitively.
func (s *System) Networks(keywords []string) ([]*cn.TSSNetwork, error) {
	if len(keywords) == 0 {
		return nil, fmt.Errorf("core: empty keyword query")
	}
	norm := make([]string, len(keywords))
	phNodes := make(map[string][]string, len(keywords))
	var sig strings.Builder
	fmt.Fprintf(&sig, "z=%d", s.Opts.Z)
	for i, k := range keywords {
		toks := kwindex.Tokenize(k)
		if len(toks) == 0 {
			return nil, fmt.Errorf("core: keyword %q has no tokens", k)
		}
		norm[i] = toks[0]
		if len(toks) > 1 {
			// Multi-token keywords match nodes containing all tokens;
			// the master index handles that, keyed by the raw phrase.
			norm[i] = k
		}
		nodes := s.Index.SchemaNodes(norm[i])
		phNodes[placeholder(i)] = nodes
		fmt.Fprintf(&sig, ";%s", strings.Join(nodes, ","))
	}
	generic, ok := s.memo().get(sig.String())
	if !ok {
		phKeywords := make([]string, len(keywords))
		for i := range keywords {
			phKeywords[i] = placeholder(i)
		}
		var err error
		generic, err = cn.Generate(cn.Input{
			Schema:        s.Schema,
			Keywords:      phKeywords,
			SchemaNodesOf: phNodes,
			MaxSize:       s.Opts.Z,
		})
		if err != nil {
			return nil, err
		}
		s.memo().put(sig.String(), generic)
	}
	// Substitute the query's keywords for the placeholders.
	nets := make([]*cn.Network, len(generic))
	for i, g := range generic {
		n := g.Clone()
		for oi := range n.Occs {
			for ki, kw := range n.Occs[oi].Keywords {
				var idx int
				if _, err := fmt.Sscanf(kw, "\x01k%d\x01", &idx); err == nil {
					n.Occs[oi].Keywords[ki] = norm[idx]
				}
			}
			sort.Strings(n.Occs[oi].Keywords)
		}
		nets[i] = n
	}
	var out []*cn.TSSNetwork
	seen := make(map[string]bool)
	for _, n := range nets {
		tn, err := cn.Reduce(s.TSS, n)
		if err != nil {
			return nil, fmt.Errorf("core: reducing %s: %w", n, err)
		}
		// Distinct CTSSNs only; keep the lowest-score CN per shape.
		key := tn.Canon()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, tn)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score() < out[j].Score() })
	return out, nil
}

// newExecutor builds an executor honoring the cache options.
func (s *System) newExecutor() *exec.Executor {
	ex := &exec.Executor{Store: s.Store, TSS: s.TSS, Index: s.Index}
	if s.Opts.CacheSize >= 0 {
		ex.Cache = exec.NewLookupCache(s.Opts.CacheSize)
	}
	return ex
}

// newOptimizer builds the plan optimizer over the loaded decomposition.
func (s *System) newOptimizer() *optimizer.Optimizer {
	return &optimizer.Optimizer{
		TSS:       s.TSS,
		Store:     s.Store,
		Index:     s.Index,
		Stats:     s.Stats,
		Fragments: s.Decomp.Fragments,
		MaxJoins:  s.Opts.B,
	}
}

// Plans generates and optimizes the plans of a keyword query, in
// ascending score order.
func (s *System) Plans(keywords []string) ([]exec.Planned, error) {
	nets, err := s.Networks(keywords)
	if err != nil {
		return nil, err
	}
	opt := s.newOptimizer()
	var plans []exec.Planned
	for _, tn := range nets {
		p, err := opt.Plan(tn)
		if err != nil {
			return nil, fmt.Errorf("core: planning %s: %w", tn, err)
		}
		plans = append(plans, exec.Planned{Plan: p})
	}
	return plans, nil
}

// Query answers a keyword proximity query with the top-k results,
// evaluated by a worker pool over the candidate networks smallest-first
// (the web-search-engine-like presentation of §3.1/§6).
func (s *System) Query(keywords []string, k int) ([]exec.Result, error) {
	return s.QueryContext(context.Background(), keywords, k)
}

// QueryContext is Query with cooperative cancellation: a cancelled
// context stops the in-flight join loops and the call returns ctx's
// error (the partial results are discarded).
func (s *System) QueryContext(ctx context.Context, keywords []string, k int) ([]exec.Result, error) {
	plans, err := s.Plans(keywords)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ex := s.newExecutor()
	out, err := exec.TopKPlansContext(ctx, ex, plans, exec.TopKOptions{
		K:        k,
		Workers:  s.Opts.Workers,
		Strategy: exec.NestedLoop,
	})
	if err != nil {
		return nil, err
	}
	return s.filterMinimal(out), nil
}

// filterMinimal applies the StrictMinimal option.
func (s *System) filterMinimal(rs []exec.Result) []exec.Result {
	if !s.Opts.StrictMinimal {
		return rs
	}
	out := rs[:0]
	for _, r := range rs {
		if exec.IsMinimal(s.Index, r) {
			out = append(out, r)
		}
	}
	return out
}

// QueryStream starts the page-by-page presentation of §3.1: workers
// evaluate the candidate networks smallest-first into a queue the
// caller drains with Stream.Next. Close the stream when done.
func (s *System) QueryStream(keywords []string) (*exec.Stream, error) {
	return s.QueryStreamContext(context.Background(), keywords)
}

// QueryStreamContext is QueryStream tied to a context: cancelling ctx
// closes the stream and stops its workers mid-join. The caller should
// still Close the stream when done.
func (s *System) QueryStreamContext(ctx context.Context, keywords []string) (*exec.Stream, error) {
	plans, err := s.Plans(keywords)
	if err != nil {
		return nil, err
	}
	return exec.StreamPlansContext(ctx, s.newExecutor(), plans, s.Opts.Workers, exec.NestedLoop), nil
}

// QueryAll returns every result of every candidate network, sorted by
// score, using the automatic strategy (hash joins on unindexed
// decompositions, nested loops otherwise).
func (s *System) QueryAll(keywords []string) ([]exec.Result, error) {
	return s.QueryAllStrategy(keywords, exec.AutoStrategy)
}

// QueryAllContext is QueryAll with cooperative cancellation.
func (s *System) QueryAllContext(ctx context.Context, keywords []string) ([]exec.Result, error) {
	return s.QueryAllStrategyContext(ctx, keywords, exec.AutoStrategy)
}

// QueryAllStrategy is QueryAll with an explicit evaluation strategy.
func (s *System) QueryAllStrategy(keywords []string, strat exec.Strategy) ([]exec.Result, error) {
	return s.QueryAllStrategyContext(context.Background(), keywords, strat)
}

// QueryAllStrategyContext is QueryAllStrategy with cooperative
// cancellation: a cancelled context terminates the in-flight plan
// evaluation and the call returns ctx's error.
func (s *System) QueryAllStrategyContext(ctx context.Context, keywords []string, strat exec.Strategy) ([]exec.Result, error) {
	plans, err := s.Plans(keywords)
	if err != nil {
		return nil, err
	}
	ex := s.newExecutor()
	var out []exec.Result
	for _, p := range plans {
		if err := ex.RunContext(ctx, p.Plan, strat, func(r exec.Result) bool {
			out = append(out, r)
			return true
		}); err != nil {
			return nil, err
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score < out[j].Score })
	return s.filterMinimal(out), nil
}
