package kwindex_test

import (
	"strings"
	"testing"
	"testing/quick"
	"unicode"

	"repro/internal/kwindex"
)

// Property: every token is non-empty, lower-case, and consists of
// letters/digits only; tokenizing a token is the identity.
func TestQuickTokenizeWellFormed(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range kwindex.Tokenize(s) {
			if tok == "" {
				return false
			}
			for _, r := range tok {
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
					return false
				}
			}
			// Case-folded: lowering again changes nothing (some letters
			// have no lowercase form and stay as they are).
			if tok != strings.ToLower(tok) {
				return false
			}
			again := kwindex.Tokenize(tok)
			if len(again) != 1 || again[0] != tok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: tokenization is insensitive to ASCII case and to the
// separator characters used.
func TestQuickTokenizeSeparatorInvariance(t *testing.T) {
	f := func(wordsRaw []uint8) bool {
		var words []string
		for _, w := range wordsRaw {
			words = append(words, strings.Repeat(string(rune('a'+w%26)), int(w%3)+1))
		}
		if len(words) == 0 {
			return true
		}
		spaced := strings.Join(words, " ")
		dashed := strings.Join(words, "--")
		a := kwindex.Tokenize(spaced)
		b := kwindex.Tokenize(dashed)
		c := kwindex.Tokenize(strings.ToUpper(spaced))
		if len(a) != len(b) || len(a) != len(c) {
			return false
		}
		for i := range a {
			if a[i] != b[i] || a[i] != c[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
