package pipeline

import (
	"time"

	"repro/internal/obs"
)

// Metrics accumulates per-stage counters and latency histograms across
// every query of a System. All fields are atomics — recording on the
// query path takes no locks — and a nil *Metrics is a valid no-op sink,
// mirroring the nil-Trace convention.
type Metrics struct {
	queries obs.Counter // completed Run calls
	byMode  [numModes]obs.Counter
	stages  [numStages]stageMetrics
}

// numModes is the number of pipeline modes (ModeNetworks..ModeStream).
const numModes = int(ModeStream) + 1

// stageMetrics is the cumulative account of one stage.
type stageMetrics struct {
	runs        obs.Counter
	errors      obs.Counter
	in          obs.Counter
	out         obs.Counter
	cacheHits   obs.Counter
	cacheMisses obs.Counter
	lat         obs.Histogram
}

// NewMetrics returns an empty sink.
func NewMetrics() *Metrics { return &Metrics{} }

// observe records one stage execution. Nil-safe.
func (m *Metrics) observe(stage int, d time.Duration, rep *StageReport, err error) {
	if m == nil || stage < 0 || stage >= numStages {
		return
	}
	sm := &m.stages[stage]
	sm.runs.Add(1)
	if err != nil {
		sm.errors.Add(1)
	}
	sm.in.Add(rep.In)
	sm.out.Add(rep.Out)
	sm.cacheHits.Add(rep.CacheHits)
	sm.cacheMisses.Add(rep.CacheMisses)
	sm.lat.Observe(d)
}

// finish records one completed pipeline run. Nil-safe.
func (m *Metrics) finish(mode Mode) {
	if m == nil {
		return
	}
	m.queries.Add(1)
	if i := int(mode); i >= 0 && i < numModes {
		m.byMode[i].Add(1)
	}
}

// StageSnapshot is the JSON-shaped cumulative view of one stage.
type StageSnapshot struct {
	Stage       string        `json:"stage"`
	Runs        int64         `json:"runs"`
	Errors      int64         `json:"errors"`
	In          int64         `json:"in"`
	Out         int64         `json:"out"`
	CacheHits   int64         `json:"cache_hits"`
	CacheMisses int64         `json:"cache_misses"`
	TotalNanos  int64         `json:"total_ns"`
	MeanMicros  int64         `json:"mean_us"`
	P50         time.Duration `json:"p50_ns"`
	P95         time.Duration `json:"p95_ns"`
}

// Snapshot is a point-in-time view of the pipeline counters, shaped for
// the /debug/pipeline endpoint.
type Snapshot struct {
	// Queries counts completed pipeline runs — queries that actually
	// executed, as opposed to being answered from a serving-layer cache.
	Queries int64 `json:"queries"`
	// ByMode breaks runs down by pipeline mode (networks, plans, topk,
	// all, stream).
	ByMode map[string]int64 `json:"by_mode"`
	// Stages holds one cumulative entry per stage, pipeline order.
	Stages []StageSnapshot `json:"stages"`
}

// Snapshot captures the current counters. Safe to call concurrently
// with recording; stages observed mid-run read slightly torn but
// monotone values. Nil-safe: a nil Metrics yields a zero Snapshot.
func (m *Metrics) Snapshot() Snapshot {
	snap := Snapshot{ByMode: make(map[string]int64)}
	if m == nil {
		return snap
	}
	snap.Queries = m.queries.Load()
	for mode := ModeNetworks; mode <= ModeStream; mode++ {
		if n := m.byMode[int(mode)].Load(); n > 0 {
			snap.ByMode[mode.String()] = n
		}
	}
	for i := range m.stages {
		sm := &m.stages[i]
		ss := StageSnapshot{
			Stage:       StageNames[i],
			Runs:        sm.runs.Load(),
			Errors:      sm.errors.Load(),
			In:          sm.in.Load(),
			Out:         sm.out.Load(),
			CacheHits:   sm.cacheHits.Load(),
			CacheMisses: sm.cacheMisses.Load(),
			TotalNanos:  int64(sm.lat.Sum()),
			P50:         sm.lat.Quantile(0.50),
			P95:         sm.lat.Quantile(0.95),
		}
		if ss.Runs > 0 {
			ss.MeanMicros = ss.TotalNanos / ss.Runs / int64(time.Microsecond)
		}
		snap.Stages = append(snap.Stages, ss)
	}
	return snap
}
