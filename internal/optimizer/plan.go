// Package optimizer turns candidate TSS networks into execution plans
// (paper §4): it chooses which connection relations evaluate each CTSSN
// (the fragment cover, with at most B joins when the decomposition
// allows), orders the nested loops starting from the keyword with the
// smallest containing list (§6), and prefers probe directions that are
// clustered or indexed. Common subexpressions across the CNs of one
// keyword query are reused through the executor's shared lookup cache.
package optimizer

import (
	"fmt"
	"sort"

	"repro/internal/cn"
	"repro/internal/decomp"
	"repro/internal/kwindex"
	"repro/internal/relstore"
	"repro/internal/tss"
)

// Step is one operation of a plan's nested-loop pipeline.
type Step struct {
	// Seed steps iterate the containing list of a keyword occurrence.
	Seed bool
	// Occ is the occurrence a seed step binds.
	Occ int

	// Piece steps probe a connection relation.
	Piece decomp.Piece
	// ProbePos is the position in Piece.Occs (== relation column) whose
	// occurrence is already bound and is used for the lookup.
	ProbePos int
	// CheckPos are further positions already bound: rows must agree.
	CheckPos []int
	// NewPos are positions bound by this step.
	NewPos []int
}

// Plan evaluates one CTSSN.
type Plan struct {
	Net   *cn.TSSNetwork
	Steps []Step
	// Joins is the number of piece-to-piece joins (pieces - 1).
	Joins int
	// Filters holds, per occurrence, the TO set every binding must fall
	// in (intersection of the keyword containing lists); nil = free.
	Filters []map[int64]bool
}

// Optimizer builds plans against a materialized decomposition.
type Optimizer struct {
	TSS   *tss.Graph
	Store *relstore.Store
	// Index is the master index backend, in-memory or disk-backed.
	Index kwindex.Source
	Stats *tss.Stats
	// Fragments available (union of the materialized decompositions).
	Fragments []decomp.Fragment
	// MaxJoins is B; covers use at most this many joins when possible
	// and fall back to unbounded otherwise.
	MaxJoins int
	// CostBased also considers the all-single-edge cover and picks the
	// cheaper plan by estimated I/O; set by the presentation module,
	// whose focused queries restrict most occurrences at run time.
	CostBased bool
	// RestrictedHint marks occurrences whose bindings will be restricted
	// to near-singleton sets at run time, for cost estimation.
	RestrictedHint []bool
}

// estimateCost predicts a plan's probe cost when driven from a single
// seed binding: per step, the expected rows a probe returns (fanout
// product along the piece) charged as one seek plus transfer, multiplied
// by the expected number of probe invocations.
func (o *Optimizer) estimateCost(p *Plan) float64 {
	const pageRows = 128
	bindings := 1.0
	cost := 0.0
	sel := func(occ int) float64 {
		s := 1.0
		if p.Filters[occ] != nil {
			s *= 0.05
		}
		if o.RestrictedHint != nil && occ < len(o.RestrictedHint) && o.RestrictedHint[occ] {
			s *= 0.05
		}
		return s
	}
	for _, st := range p.Steps {
		if st.Seed {
			continue
		}
		steps := st.Piece.Frag.Steps()
		rows := 1.0
		for pos := st.ProbePos; pos+1 < len(st.Piece.Occs); pos++ {
			rows *= o.stepFanout(steps[pos], true)
		}
		for pos := st.ProbePos; pos-1 >= 0; pos-- {
			rows *= o.stepFanout(steps[pos-1], false)
		}
		cost += bindings * (1 + rows/pageRows)
		next := bindings * rows
		for _, pos := range st.NewPos {
			next *= sel(st.Piece.Occs[pos])
		}
		if next < 0.01 {
			next = 0.01
		}
		bindings = next
	}
	return cost
}

// Plan builds the execution plan for one CTSSN, seeding the nested loop
// at the keyword occurrence with the smallest containing list (§6).
func (o *Optimizer) Plan(t *cn.TSSNetwork) (*Plan, error) {
	return o.plan(t, -1)
}

// PlanSeeded builds a plan whose outermost loop iterates occurrence
// seed, regardless of keywords — used by the presentation module, which
// evaluates networks anchored at a user-chosen node.
func (o *Optimizer) PlanSeeded(t *cn.TSSNetwork, seed int) (*Plan, error) {
	if seed < 0 || seed >= len(t.Occs) {
		return nil, fmt.Errorf("optimizer: seed occurrence %d out of range", seed)
	}
	return o.plan(t, seed)
}

// PlanSeededVariants returns the distinct plan alternatives for a seeded
// network: the minimum-piece cover and, when single-edge fragments can
// cover the network, the edge-by-edge cover. The presentation module
// samples both at run time and keeps the cheaper — the adaptive half of
// the optimizer's relation-choice problem (§4).
func (o *Optimizer) PlanSeededVariants(t *cn.TSSNetwork, seed int) ([]*Plan, error) {
	if seed < 0 || seed >= len(t.Occs) {
		return nil, fmt.Errorf("optimizer: seed occurrence %d out of range", seed)
	}
	base, err := o.plan(t, seed)
	if err != nil {
		return nil, err
	}
	out := []*Plan{base}
	var singles []decomp.Fragment
	for _, f := range o.Fragments {
		if f.Size() == 1 {
			singles = append(singles, f)
		}
	}
	if len(singles) == 0 || t.Size() == 0 {
		return out, nil
	}
	altPieces, ok := decomp.Cover(o.TSS, t, singles, -1)
	if !ok {
		return out, nil
	}
	alt, err := o.buildPlan(t, base.Filters, seed, altPieces)
	if err != nil {
		return out, nil
	}
	if alt.Joins != base.Joins {
		out = append(out, alt)
	}
	return out, nil
}

func (o *Optimizer) plan(t *cn.TSSNetwork, seed int) (*Plan, error) {
	filters, err := o.filters(t)
	if err != nil {
		return nil, err
	}
	if t.Size() == 0 {
		// Single-occurrence network: one seed step.
		if seed < 0 && t.Occs[0].Free() {
			return nil, fmt.Errorf("optimizer: single free occurrence")
		}
		return &Plan{Net: t, Steps: []Step{{Seed: true, Occ: 0}}, Filters: filters}, nil
	}
	pieces, ok := decomp.Cover(o.TSS, t, o.Fragments, o.MaxJoins)
	if !ok {
		if pieces, ok = decomp.Cover(o.TSS, t, o.Fragments, -1); !ok {
			return nil, fmt.Errorf("optimizer: network %s not coverable by the decomposition", t)
		}
	}

	if seed < 0 {
		// Seed choice (§6): primarily the keyword occurrence with the
		// smallest containing list; between comparable lists (within 2x),
		// prefer a cache-profitable occurrence — one whose step away
		// leads to a shared neighbor (to-one traversal), so the inner
		// queries repeat and the lookup cache absorbs them. This is why
		// the paper's example iterates the VCR part outermost: many
		// sub-parts share one parent part, while the reverse direction
		// fans out.
		seedSize := -1
		seedProfit := false
		for i, f := range filters {
			if f == nil {
				continue
			}
			profit := o.cacheProfitable(t, i)
			better := false
			switch {
			case seed < 0:
				better = true
			case len(f)*2 < seedSize || seedSize*2 < len(f):
				better = len(f) < seedSize // lists differ a lot: size rules
			case profit != seedProfit:
				better = profit // comparable lists: cacheability rules
			default:
				better = len(f) < seedSize
			}
			if better {
				seed, seedSize, seedProfit = i, len(f), profit
			}
		}
		if seed < 0 {
			return nil, fmt.Errorf("optimizer: network %s has no keyword occurrence", t)
		}
	}

	plan, err := o.buildPlan(t, filters, seed, pieces)
	if err != nil {
		return nil, err
	}
	if !o.CostBased {
		return plan, nil
	}
	// Cost-based choice (§4, challenge (a)): also consider the
	// single-edge cover — under heavy run-time restrictions (the
	// presentation module's focused queries) probing small relations
	// edge-by-edge often beats fewer probes on wide relations.
	var singles []decomp.Fragment
	for _, f := range o.Fragments {
		if f.Size() == 1 {
			singles = append(singles, f)
		}
	}
	if len(singles) == 0 {
		return plan, nil
	}
	altPieces, ok := decomp.Cover(o.TSS, t, singles, -1)
	if !ok {
		return plan, nil
	}
	alt, err := o.buildPlan(t, filters, seed, altPieces)
	if err != nil {
		return plan, nil
	}
	if o.estimateCost(alt) < o.estimateCost(plan) {
		return alt, nil
	}
	return plan, nil
}

// buildPlan orders the cover's pieces into a nested-loop pipeline.
func (o *Optimizer) buildPlan(t *cn.TSSNetwork, filters []map[int64]bool, seed int, pieces []decomp.Piece) (*Plan, error) {
	plan := &Plan{Net: t, Filters: filters, Joins: len(pieces) - 1}
	plan.Steps = append(plan.Steps, Step{Seed: true, Occ: seed})
	bound := map[int]bool{seed: true}
	remaining := append([]decomp.Piece(nil), pieces...)
	for len(remaining) > 0 {
		// Pick the cheapest runnable piece: one sharing a bound
		// occurrence, preferring pieces that bind keyword-constrained
		// occurrences (selective) and lower estimated fanout.
		bestIdx, bestCost := -1, 0.0
		for i, p := range remaining {
			probe := -1
			for pos, occ := range p.Occs {
				if bound[occ] {
					probe = pos
					break
				}
			}
			if probe < 0 {
				continue
			}
			cost := o.pieceCost(p, probe, bound, filters)
			if bestIdx < 0 || cost < bestCost {
				bestIdx, bestCost = i, cost
			}
		}
		if bestIdx < 0 {
			return nil, fmt.Errorf("optimizer: cover of %s is not connected", t)
		}
		p := remaining[bestIdx]
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		step := Step{Piece: p, ProbePos: -1}
		for pos, occ := range p.Occs {
			switch {
			case bound[occ] && step.ProbePos < 0:
				step.ProbePos = pos
			case bound[occ]:
				step.CheckPos = append(step.CheckPos, pos)
			default:
				step.NewPos = append(step.NewPos, pos)
				bound[occ] = true
			}
		}
		// Prefer a probe column the relation can serve from an index or
		// a clustered copy.
		step.ProbePos = o.bestProbe(p, append([]int{step.ProbePos}, step.CheckPos...))
		step.CheckPos = nil
		for pos, occ := range p.Occs {
			if pos != step.ProbePos && bound[occ] && !contains(step.NewPos, pos) {
				step.CheckPos = append(step.CheckPos, pos)
			}
		}
		plan.Steps = append(plan.Steps, step)
	}
	return plan, nil
}

// cacheProfitable reports whether stepping away from occurrence occ
// along some incident network edge is a to-one traversal: many seed
// bindings then share the same neighbor, so the nested loop re-sends the
// same inner queries and the lookup cache pays off (§6).
func (o *Optimizer) cacheProfitable(t *cn.TSSNetwork, occ int) bool {
	for _, e := range t.Edges {
		if e.From == occ {
			// Traversing forward: to-one unless the edge fans out.
			if !o.TSS.Edge(e.EdgeID).ForwardMany {
				return true
			}
		}
		if e.To == occ {
			// Traversing backward: to-one unless many sources share us.
			if !o.TSS.Edge(e.EdgeID).BackwardMany {
				return true
			}
		}
	}
	return false
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// bestProbe picks, among the bound positions, one the relation serves
// cheaply: clustered first, then hash-indexed, then any.
func (o *Optimizer) bestProbe(p decomp.Piece, boundPos []int) int {
	rel := o.Store.Relation(p.Frag.RelationName())
	if rel == nil {
		return boundPos[0]
	}
	for _, pos := range boundPos {
		if _, ok := rel.ClusteredOn([]int{pos}); ok {
			return pos
		}
	}
	for _, pos := range boundPos {
		if rel.HasHashIndex(pos) {
			return pos
		}
	}
	return boundPos[0]
}

// pieceCost estimates the fanout of extending the binding through p from
// probe position probe: the product of per-step fanouts, discounted when
// a newly bound occurrence is keyword-constrained.
func (o *Optimizer) pieceCost(p decomp.Piece, probe int, bound map[int]bool, filters []map[int64]bool) float64 {
	steps := p.Frag.Steps()
	cost := 1.0
	// Walk outward from the probe position in both directions.
	for pos := probe; pos+1 < len(p.Occs); pos++ {
		cost *= o.stepFanout(steps[pos], true)
		cost *= selectivity(p.Occs[pos+1], bound, filters)
	}
	for pos := probe; pos-1 >= 0; pos-- {
		cost *= o.stepFanout(steps[pos-1], false)
		cost *= selectivity(p.Occs[pos-1], bound, filters)
	}
	return cost
}

func (o *Optimizer) stepFanout(s decomp.Step, along bool) float64 {
	if o.Stats == nil {
		return 2
	}
	forward := (s.Dir == decomp.Fwd) == along
	f := o.Stats.Fanout(s.EdgeID, forward)
	if f <= 0 {
		return 0.1
	}
	return f
}

func selectivity(occ int, bound map[int]bool, filters []map[int64]bool) float64 {
	if bound[occ] {
		return 1 // equality check, not an expansion
	}
	if filters[occ] != nil {
		return 0.05 // keyword filters are selective
	}
	return 1
}

// filters computes, per occurrence, the intersection of the TO sets of
// its keyword constraints (nil for free occurrences). An empty
// intersection means the network has no results.
func (o *Optimizer) filters(t *cn.TSSNetwork) ([]map[int64]bool, error) {
	out := make([]map[int64]bool, len(t.Occs))
	for i, occ := range t.Occs {
		if occ.Free() {
			continue
		}
		var set map[int64]bool
		for _, ka := range occ.Keywords {
			s := o.Index.TOSet(ka.Keyword, ka.SchemaNode)
			if set == nil {
				set = s
				continue
			}
			for to := range set {
				if !s[to] {
					delete(set, to)
				}
			}
		}
		if set == nil {
			set = map[int64]bool{}
		}
		out[i] = set
	}
	return out, nil
}

// SortedFilter returns the filter set of occurrence occ as a sorted
// slice, for deterministic seed iteration.
func (p *Plan) SortedFilter(occ int) []int64 {
	set := p.Filters[occ]
	out := make([]int64, 0, len(set))
	for to := range set {
		out = append(out, to)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
