// Package datagen provides the two datasets of the paper: the TPC-H-like
// XML graph of Figures 1/5/6 (used for the worked examples) and a
// DBLP-like graph matching Figure 14 (used for the experiments of §7,
// with synthetic citations added exactly as the paper does). All
// generators are deterministic given a seed.
package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/schema"
	"repro/internal/tss"
	"repro/internal/xmlgraph"
)

// TPCHSchema returns the TPC-H-based schema graph of Figure 5:
//
//	person(root)       -> name(1), nation(1), order(*)
//	order              -> lineitem(*)
//	lineitem           -> quantity(1), ship(1), supplier(1), line(1)
//	supplier (dummy)   -ref-> person                 ("supplied by")
//	line (dummy,choice) -ref-> part | -> product(1)  ("line of")
//	part(root)         -> key(1), pname(1), sub(*)
//	sub (dummy)        -> part(1)                    ("sub-part")
//	product            -> prodkey(1), pdescr(1)
//	service_call(root) -> scdescr(1); -ref-> person  ("issued by")
func TPCHSchema() *schema.Graph {
	g := schema.New()
	g.MustBuild(
		g.AddNode("person", schema.All),
		g.AddNode("name", schema.All),
		g.AddNode("nation", schema.All),
		g.AddNode("order", schema.All),
		g.AddNode("lineitem", schema.All),
		g.AddNode("quantity", schema.All),
		g.AddNode("ship", schema.All),
		g.AddNode("supplier", schema.All),
		g.AddNode("line", schema.Choice),
		g.AddNode("part", schema.All),
		g.AddNode("key", schema.All),
		g.AddTaggedNode("pname", "name", schema.All),
		g.AddNode("sub", schema.All),
		g.AddNode("product", schema.All),
		g.AddNode("prodkey", schema.All),
		g.AddTaggedNode("pdescr", "descr", schema.All),
		g.AddNode("service_call", schema.All),
		g.AddTaggedNode("scdescr", "descr", schema.All),
		g.SetRoot("person"),
		g.SetRoot("part"),
		g.SetRoot("service_call"),

		g.AddEdge("person", "name", xmlgraph.Containment, 1),
		g.AddEdge("person", "nation", xmlgraph.Containment, 1),
		g.AddEdge("person", "order", xmlgraph.Containment, schema.Unbounded),
		g.AddEdge("order", "lineitem", xmlgraph.Containment, schema.Unbounded),
		g.AddEdge("lineitem", "quantity", xmlgraph.Containment, 1),
		g.AddEdge("lineitem", "ship", xmlgraph.Containment, 1),
		g.AddEdge("lineitem", "supplier", xmlgraph.Containment, 1),
		g.AddEdge("lineitem", "line", xmlgraph.Containment, 1),
		g.AddEdge("supplier", "person", xmlgraph.Reference, 1),
		g.AddEdge("line", "part", xmlgraph.Reference, 1),
		g.AddEdge("line", "product", xmlgraph.Containment, 1),
		g.AddEdge("part", "key", xmlgraph.Containment, 1),
		g.AddEdge("part", "pname", xmlgraph.Containment, 1),
		g.AddEdge("part", "sub", xmlgraph.Containment, schema.Unbounded),
		g.AddEdge("sub", "part", xmlgraph.Containment, 1),
		g.AddEdge("product", "prodkey", xmlgraph.Containment, 1),
		g.AddEdge("product", "pdescr", xmlgraph.Containment, 1),
		g.AddEdge("service_call", "scdescr", xmlgraph.Containment, 1),
		g.AddEdge("service_call", "person", xmlgraph.Reference, 1),
	)
	return g
}

// TPCHSpec returns the target decomposition of Figure 6: the segments and
// their semantic edge annotations. supplier, line and sub are dummy
// schema nodes.
func TPCHSpec() tss.Spec {
	return tss.Spec{
		Segments: []tss.SegmentSpec{
			{Name: "person", Head: "person", Members: []string{"name", "nation"}},
			{Name: "order", Head: "order"},
			{Name: "lineitem", Head: "lineitem", Members: []string{"quantity", "ship"}},
			{Name: "part", Head: "part", Members: []string{"key", "pname"}},
			{Name: "product", Head: "product", Members: []string{"prodkey", "pdescr"}},
			{Name: "service_call", Head: "service_call", Members: []string{"scdescr"}},
		},
		Annotations: []tss.Annotation{
			{Path: "person>order", Forward: "placed", Backward: "placed by"},
			{Path: "order>lineitem", Forward: "contains", Backward: "contained in"},
			{Path: "lineitem>supplier>person", Forward: "supplied by", Backward: "supplier of"},
			{Path: "lineitem>line>part", Forward: "line", Backward: "line of"},
			{Path: "lineitem>line>product", Forward: "line", Backward: "line of"},
			{Path: "part>sub>part", Forward: "sub-part", Backward: "sub-part of"},
			{Path: "service_call>person", Forward: "issued by", Backward: "issued"},
		},
	}
}

// TPCHGraph bundles the schema, TSS graph, typed data graph and the
// derived object graph of a TPC-H-like dataset.
type Dataset struct {
	Schema *schema.Graph
	TSS    *tss.Graph
	Data   *xmlgraph.Graph
	Obj    *tss.ObjectGraph
}

func assemble(sg *schema.Graph, spec tss.Spec, data *xmlgraph.Graph) (*Dataset, error) {
	if err := sg.Assign(data); err != nil {
		return nil, fmt.Errorf("datagen: %w", err)
	}
	tg, err := tss.Derive(sg, spec)
	if err != nil {
		return nil, fmt.Errorf("datagen: %w", err)
	}
	og, err := tg.Decompose(data)
	if err != nil {
		return nil, fmt.Errorf("datagen: %w", err)
	}
	return &Dataset{Schema: sg, TSS: tg, Data: data, Obj: og}, nil
}

// TPCHFigure1 builds the exact sample instance of Figure 1 (as far as the
// worked examples need it): John supplies two lineitems that reference
// the TV part (key 1005) with VCR sub-parts (keys 1008, 1009), and one
// lineitem whose product is described as "set of VCR and DVD". It is the
// fixture behind the §1 ("John, VCR") and Figure 2 ("US, VCR") examples.
func TPCHFigure1() (*Dataset, error) {
	d := xmlgraph.New()
	add := func(label, value string) xmlgraph.NodeID { return d.AddNode(label, value) }
	cont := func(a, b xmlgraph.NodeID) { d.MustAddEdge(a, b, xmlgraph.Containment) }
	ref := func(a, b xmlgraph.NodeID) { d.MustAddEdge(a, b, xmlgraph.Reference) }

	// Persons.
	p1 := add("person", "")
	cont(p1, add("name", "John"))
	cont(p1, add("nation", "US"))
	p2 := add("person", "")
	cont(p2, add("name", "Mike"))
	cont(p2, add("nation", "US"))

	// Mike places an order; John supplies its lineitems.
	o1 := add("order", "")
	cont(p2, o1)
	newLineitem := func(order xmlgraph.NodeID, qty, ship string, supplier xmlgraph.NodeID) xmlgraph.NodeID {
		l := add("lineitem", "")
		cont(order, l)
		cont(l, add("quantity", qty))
		cont(l, add("ship", ship))
		s := add("supplier", "")
		cont(l, s)
		ref(s, supplier)
		return l
	}
	l1 := newLineitem(o1, "10", "Oct 29 2001", p1)
	l2 := newLineitem(o1, "6", "Oct 25 2001", p1)
	l3 := newLineitem(o1, "10", "Nov 13 2001", p1)

	// The TV part with two VCR sub-parts (Figure 2's pa3, pa1, pa2).
	pa3 := add("part", "")
	cont(pa3, add("key", "1005"))
	cont(pa3, add("name", "TV"))
	newSubPart := func(parent xmlgraph.NodeID, key, name string) xmlgraph.NodeID {
		s := add("sub", "")
		cont(parent, s)
		pa := add("part", "")
		cont(s, pa)
		cont(pa, add("key", key))
		cont(pa, add("name", name))
		return pa
	}
	newSubPart(pa3, "1008", "VCR")
	newSubPart(pa3, "1009", "VCR")

	// l1 and l2 both reference the TV part (the Figure 2 MVD fragment).
	for _, l := range []xmlgraph.NodeID{l1, l2} {
		ln := add("line", "")
		cont(l, ln)
		ref(ln, pa3)
	}
	// l3 carries the product "set of VCR and DVD".
	ln3 := add("line", "")
	cont(l3, ln3)
	pr := add("product", "")
	cont(ln3, pr)
	cont(pr, add("prodkey", "2005"))
	cont(pr, add("descr", "set of VCR and DVD"))

	// A service call about the DVD, issued by Mike.
	sc := add("service_call", "")
	cont(sc, add("descr", "DVD error"))
	ref(sc, p2)

	return assemble(TPCHSchema(), TPCHSpec(), d)
}

// TPCHParams sizes a synthetic TPC-H-like dataset.
type TPCHParams struct {
	Persons           int
	OrdersPerPerson   int
	LineitemsPerOrder int
	Parts             int // top-level parts
	SubsPerPart       int
	Seed              int64
}

// DefaultTPCHParams returns a small but non-trivial configuration.
func DefaultTPCHParams() TPCHParams {
	return TPCHParams{
		Persons:           50,
		OrdersPerPerson:   4,
		LineitemsPerOrder: 3,
		Parts:             40,
		SubsPerPart:       3,
		Seed:              1,
	}
}

// TPCH generates a synthetic TPC-H-like dataset. Person names and part
// names are drawn from small pools so multi-occurrence keywords exist;
// every lineitem references a random supplier person and either a random
// part or an inline product (choice).
func TPCH(p TPCHParams) (*Dataset, error) {
	rng := rand.New(rand.NewSource(p.Seed))
	d := xmlgraph.New()
	cont := func(a, b xmlgraph.NodeID) { d.MustAddEdge(a, b, xmlgraph.Containment) }
	ref := func(a, b xmlgraph.NodeID) { d.MustAddEdge(a, b, xmlgraph.Reference) }

	persons := make([]xmlgraph.NodeID, p.Persons)
	for i := range persons {
		pe := d.AddNode("person", "")
		cont(pe, d.AddNode("name", personNames[i%len(personNames)]))
		cont(pe, d.AddNode("nation", nations[i%len(nations)]))
		persons[i] = pe
	}
	var parts []xmlgraph.NodeID
	key := 1000
	for i := 0; i < p.Parts; i++ {
		pa := d.AddNode("part", "")
		cont(pa, d.AddNode("key", fmt.Sprint(key)))
		cont(pa, d.AddNode("name", partNames[i%len(partNames)]))
		key++
		parts = append(parts, pa)
		for s := 0; s < p.SubsPerPart; s++ {
			sb := d.AddNode("sub", "")
			cont(pa, sb)
			sp := d.AddNode("part", "")
			cont(sb, sp)
			cont(sp, d.AddNode("key", fmt.Sprint(key)))
			cont(sp, d.AddNode("name", partNames[rng.Intn(len(partNames))]))
			key++
			parts = append(parts, sp)
		}
	}
	for _, pe := range persons {
		for o := 0; o < p.OrdersPerPerson; o++ {
			or := d.AddNode("order", "")
			cont(pe, or)
			for l := 0; l < p.LineitemsPerOrder; l++ {
				li := d.AddNode("lineitem", "")
				cont(or, li)
				cont(li, d.AddNode("quantity", fmt.Sprint(1+rng.Intn(20))))
				cont(li, d.AddNode("ship", fmt.Sprintf("2001-%02d-%02d", 1+rng.Intn(12), 1+rng.Intn(28))))
				sup := d.AddNode("supplier", "")
				cont(li, sup)
				ref(sup, persons[rng.Intn(len(persons))])
				ln := d.AddNode("line", "")
				cont(li, ln)
				if rng.Intn(4) == 0 {
					pr := d.AddNode("product", "")
					cont(ln, pr)
					cont(pr, d.AddNode("prodkey", fmt.Sprint(2000+rng.Intn(1000))))
					cont(pr, d.AddNode("descr", "set of "+partNames[rng.Intn(len(partNames))]+" and "+partNames[rng.Intn(len(partNames))]))
				} else {
					ref(ln, parts[rng.Intn(len(parts))])
				}
			}
		}
	}
	return assemble(TPCHSchema(), TPCHSpec(), d)
}

var personNames = []string{"John", "Mike", "Anna", "Maria", "Wei", "Yannis", "Vagelis", "Andrey", "Laura", "Pedro"}
var nations = []string{"US", "GR", "CN", "BR", "DE", "FR"}
var partNames = []string{"TV", "VCR", "DVD", "Radio", "Speaker", "Antenna", "Tuner", "Amp", "Remote", "Screen"}
