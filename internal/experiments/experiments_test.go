package experiments_test

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/tss"
)

func quickWorkload(t *testing.T) *experiments.Workload {
	t.Helper()
	w, err := experiments.NewWorkload(experiments.QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestAuthorChainShape(t *testing.T) {
	tg, err := tss.Derive(datagen.DBLPSchema(), datagen.DBLPSpec())
	if err != nil {
		t.Fatal(err)
	}
	for size := 2; size <= 6; size++ {
		net, err := experiments.AuthorChain(tg, "a", "b", size)
		if err != nil {
			t.Fatal(err)
		}
		if net.Size() != size {
			t.Fatalf("size %d: network has %d edges", size, net.Size())
		}
		if len(net.Occs) != size+1 {
			t.Fatalf("size %d: %d occurrences", size, len(net.Occs))
		}
		papers := 0
		for _, o := range net.Occs {
			if o.Segment == "paper" {
				papers++
			}
		}
		if papers != size-1 {
			t.Fatalf("size %d: %d papers", size, papers)
		}
	}
	if _, err := experiments.AuthorChain(tg, "a", "b", 1); err == nil {
		t.Fatal("size 1 accepted")
	}
	// Non-DBLP graph rejected.
	tg2, err := tss.Derive(datagen.TPCHSchema(), datagen.TPCHSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := experiments.AuthorChain(tg2, "a", "b", 2); err == nil {
		t.Fatal("TPC-H graph accepted")
	}
}

func TestPairForChain(t *testing.T) {
	ds, err := datagen.DBLP(datagen.DefaultDBLPParams())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	a1, a2, ok := experiments.PairForChain(ds, rng, 2)
	if !ok || a1 == "" || a2 == "" || a1 == a2 {
		t.Fatalf("pair = %q, %q, %v", a1, a2, ok)
	}
	// A size-3 chain needs an actual citation; the default dataset has
	// plenty.
	if _, _, ok := experiments.PairForChain(ds, rng, 3); !ok {
		t.Fatal("no size-3 chain found")
	}
}

func TestWorkloadDeterministic(t *testing.T) {
	a := quickWorkload(t)
	b := quickWorkload(t)
	if len(a.Pairs) != len(b.Pairs) {
		t.Fatalf("pair counts differ: %d vs %d", len(a.Pairs), len(b.Pairs))
	}
	for i := range a.Pairs {
		if a.Pairs[i] != b.Pairs[i] {
			t.Fatalf("pair %d differs: %v vs %v", i, a.Pairs[i], b.Pairs[i])
		}
	}
}

func TestFig15aRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	w := quickWorkload(t)
	fig, err := experiments.Fig15a(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 5 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) != len(w.Config.Ks) {
			t.Fatalf("%s: %d points", s.Label, len(s.Points))
		}
	}
	out := fig.Format()
	if !strings.Contains(out, "Figure 15a") || !strings.Contains(out, "xkeyword") {
		t.Fatalf("format output wrong:\n%s", out)
	}
}

func TestFig15bRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	w := quickWorkload(t)
	fig, err := experiments.Fig15b(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 5 {
		t.Fatalf("series = %d", len(fig.Series))
	}
}

func TestFig16aRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	w := quickWorkload(t)
	fig, err := experiments.Fig16a(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	// The naive and optimized runs must produce the same result counts.
	naive, opt := fig.Series[0], fig.Series[1]
	for i := range naive.Points {
		if naive.Points[i].Results != opt.Points[i].Results {
			t.Fatalf("size %d: naive %v results, optimized %v",
				naive.Points[i].X, naive.Points[i].Results, opt.Points[i].Results)
		}
	}
	// The lookup-count speedup must not fall below 1 (the cache never
	// issues more lookups than the naive run).
	for _, p := range fig.Series[2].Points {
		if p.Lookups > 0 && p.Lookups < 1.0 {
			t.Fatalf("size %d: lookup ratio %f < 1", p.X, p.Lookups)
		}
	}
}

func TestFigZRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	w := quickWorkload(t)
	fig, err := experiments.FigZ(w, []int{5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	nets := fig.Series[0]
	if nets.Points[1].Results < nets.Points[0].Results {
		t.Fatalf("candidate networks shrank with Z: %v -> %v",
			nets.Points[0].Results, nets.Points[1].Results)
	}
}

func TestFigBaselineRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := experiments.QuickConfig()
	fig, err := experiments.FigBaseline(cfg, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	// Both systems answer the same top-10 queries; whenever the
	// data-graph baseline finds fewer trees than XKeyword finds results
	// something is wrong (the reverse can happen: distinct-root
	// semantics may emit trees XKeyword's Z bound or CN shapes exclude).
	b, x := fig.Series[0].Points[0], fig.Series[1].Points[0]
	if b.Results == 0 && x.Results > 0 {
		t.Fatalf("baseline found nothing, xkeyword %v", x.Results)
	}
}

func TestFig16bRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	w := quickWorkload(t)
	fig, err := experiments.Fig16b(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	// All variants must expand the same numbers of nodes.
	for i := range fig.Series[0].Points {
		a := fig.Series[0].Points[i].Results
		b := fig.Series[1].Points[i].Results
		c := fig.Series[2].Points[i].Results
		if a != b || b != c {
			t.Fatalf("size %d: expansion counts differ: %v %v %v",
				fig.Series[0].Points[i].X, a, b, c)
		}
	}
}
