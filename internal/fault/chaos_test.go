// Chaos suite: seeded fault scenarios over the two hardened layers —
// the paged disk index (transient read errors, bit flips, short reads)
// and the qserve serving path (latency, injected errors, hangs under a
// small admission window). Every scenario replays deterministically
// from its seed and asserts the robustness invariant end to end:
//
//	fail loudly or answer correctly — never return silently wrong
//	results.
//
// `make chaos` runs exactly this file under -race; it also runs as part
// of the ordinary test suite because the scenarios are cheap.
package fault_test

import (
	"context"
	"fmt"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/diskindex"
	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/kwindex"
	"repro/internal/qserve"
)

// chaosRand is the test-side scenario-parameter stream: splitmix64,
// like the injector's own stream, so scenario profiles are identical
// across platforms and Go releases.
type chaosRand struct{ state uint64 }

func newChaosRand(seed int64) *chaosRand {
	return &chaosRand{state: uint64(seed)*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9}
}

func (r *chaosRand) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *chaosRand) float() float64 { return float64(r.next()>>11) / (1 << 53) }
func (r *chaosRand) intn(n int) int { return int(r.next() % uint64(n)) }

// fixture is the shared fault-free ground truth: the Figure-1 system,
// its in-memory master index, an .xki written from it, and baseline
// answers for every term and query.
type fixture struct {
	sys   *core.System
	mem   *kwindex.Index
	xki   string
	terms []string
	lists map[string][]kwindex.Posting
	tos   map[string]map[int64]bool

	queries  [][]string
	scores   [][]int           // fault-free top-k score multiset per query
	universe []map[string]bool // every valid (network, bindings, score) per query
}

var (
	fixOnce sync.Once
	fix     *fixture
	fixErr  error
)

func chaosFixture(t *testing.T) *fixture {
	t.Helper()
	fixOnce.Do(func() { fix, fixErr = buildFixture() })
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fix
}

func buildFixture() (*fixture, error) {
	ds, err := datagen.TPCHFigure1()
	if err != nil {
		return nil, err
	}
	sys, err := core.LoadPrepared(&core.Prepared{Schema: ds.Schema, TSS: ds.TSS, Data: ds.Data, Obj: ds.Obj},
		core.Options{Z: 8})
	if err != nil {
		return nil, err
	}
	mem, ok := sys.Index.(*kwindex.Index)
	if !ok {
		return nil, fmt.Errorf("fixture index is %T, want *kwindex.Index", sys.Index)
	}
	fx := &fixture{
		sys:   sys,
		mem:   mem,
		terms: mem.Terms(),
		lists: make(map[string][]kwindex.Posting),
		tos:   make(map[string]map[int64]bool),
		queries: [][]string{
			{"john"}, {"vcr"}, {"john", "vcr"}, {"us", "vcr"}, {"tv", "vcr"}, {"mike", "dvd"},
		},
	}
	for _, term := range fx.terms {
		fx.lists[term] = mem.ContainingList(term)
		fx.tos[term] = mem.TOSet(term, "")
	}
	for _, q := range fx.queries {
		rs, err := sys.QueryContext(context.Background(), q, 10)
		if err != nil {
			return nil, fmt.Errorf("baseline query %v: %w", q, err)
		}
		fx.scores = append(fx.scores, scoresOf(rs))
		// The full result universe (huge k) pins down which individual
		// results are valid; ties at the top-k boundary make the exact
		// member set run-dependent, but never let an invented result in.
		all, err := sys.QueryContext(context.Background(), q, 1<<20)
		if err != nil {
			return nil, fmt.Errorf("baseline universe %v: %w", q, err)
		}
		uni := make(map[string]bool, len(all))
		for _, r := range all {
			uni[r.Key()+"/"+fmt.Sprint(r.Score)] = true
		}
		fx.universe = append(fx.universe, uni)
	}
	return fx, nil
}

// writeXKI writes the fixture index to a fresh .xki under dir.
func (fx *fixture) writeXKI(dir string) (string, error) {
	path := filepath.Join(dir, "chaos.xki")
	if err := diskindex.Create(path, fx.mem); err != nil {
		return "", err
	}
	return path, nil
}

// scoresOf returns the sorted score multiset of a result list — the
// part of a top-k answer the ranking actually specifies.
func scoresOf(rs []exec.Result) []int {
	scores := make([]int, len(rs))
	for i, r := range rs {
		scores[i] = r.Score
	}
	sort.Ints(scores)
	return scores
}

// checkAnswer asserts rs is a correct top-k answer for query qi: its
// score multiset matches the fault-free baseline, and every result is a
// member of the query's full result universe. Tie order and which of
// several equal-score results sit at the k boundary are unspecified;
// a missing score, an extra score, or a fabricated result is wrong.
func (fx *fixture) checkAnswer(qi int, rs []exec.Result) error {
	if got, want := scoresOf(rs), fx.scores[qi]; !reflect.DeepEqual(got, want) {
		return fmt.Errorf("score multiset %v, want %v", got, want)
	}
	for _, r := range rs {
		if key := r.Key() + "/" + fmt.Sprint(r.Score); !fx.universe[qi][key] {
			return fmt.Errorf("result %s is not in the valid result universe", key)
		}
	}
	return nil
}

// TestChaosDiskIndex runs seeded read-fault scenarios against the paged
// disk index. Each scenario opens the same .xki through a fault-
// injecting ReaderAt and looks up every term. The invariant: a lookup
// either matches the in-memory ground truth, or the reader has recorded
// a loud soft-failure (Err() != nil). Scenarios with an in-memory
// failover must always answer correctly — a degraded primary's failed
// lookup is retried on the rebuilt fallback, never returned empty.
func TestChaosDiskIndex(t *testing.T) {
	fx := chaosFixture(t)
	xki, err := fx.writeXKI(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const scenarios = 128
	for seed := 0; seed < scenarios; seed++ {
		t.Run(fmt.Sprintf("seed=%03d", seed), func(t *testing.T) {
			t.Parallel()
			r := newChaosRand(int64(seed))
			prof := fault.Profile{
				ReadErrProb:   r.float() * 0.4,
				ReadErrStreak: 1 + r.intn(5), // sometimes beyond the retry budget
				CorruptProb:   r.float() * 0.3,
				ShortReadProb: r.float() * 0.15,
			}
			withFailover := seed%2 == 1
			inj := fault.NewInjector(int64(seed), prof)
			rd, err := diskindex.Open(xki, diskindex.Options{
				CacheBytes:     4 << 10, // tiny pool: most lookups touch the injected disk
				ListCacheBytes: -1,      // no decoded cache: every lookup re-reads and re-verifies
				Retry:          fault.RetryPolicy{Attempts: 3, Base: 20 * time.Microsecond, Max: 200 * time.Microsecond, Jitter: 0.5},
				WrapReaderAt:   inj.ReaderAt,
			})
			if err != nil {
				// Open reads the header, schema and dictionary eagerly; under
				// injected faults it may refuse the file — that is the loud
				// path, as long as it says why.
				if err.Error() == "" {
					t.Fatalf("Open failed with an empty error message")
				}
				return
			}
			defer rd.Close()

			if withFailover {
				fo := kwindex.NewFailover(rd,
					func() (kwindex.Source, error) { return fx.mem, nil }, nil)
				for _, term := range fx.terms {
					if got := fo.ContainingList(term); !reflect.DeepEqual(got, fx.lists[term]) {
						t.Fatalf("failover ContainingList(%q) diverged from ground truth", term)
					}
					if got := fo.TOSet(term, ""); !reflect.DeepEqual(got, fx.tos[term]) {
						t.Fatalf("failover TOSet(%q) diverged from ground truth", term)
					}
				}
				return
			}
			for _, term := range fx.terms {
				got := rd.ContainingList(term)
				if !reflect.DeepEqual(got, fx.lists[term]) && rd.Err() == nil {
					t.Fatalf("silently wrong ContainingList(%q): diverged with no recorded error", term)
				}
				tos := rd.TOSet(term, "")
				if !reflect.DeepEqual(tos, fx.tos[term]) && rd.Err() == nil {
					t.Fatalf("silently wrong TOSet(%q): diverged with no recorded error", term)
				}
			}
		})
	}
}

// TestChaosQserve runs seeded serving-path scenarios: the real pipeline
// behind a fault-injecting engine (latency, errors, hangs), under a
// deliberately small admission window with concurrent clients. Every
// query must either return the fault-free baseline result or a non-nil
// error — overload, cancellation and injected failures are all loud;
// a 200-with-wrong-rows is the one forbidden outcome.
func TestChaosQserve(t *testing.T) {
	fx := chaosFixture(t)
	const scenarios = 96
	for seed := 0; seed < scenarios; seed++ {
		t.Run(fmt.Sprintf("seed=%03d", seed), func(t *testing.T) {
			t.Parallel()
			r := newChaosRand(int64(1000 + seed))
			prof := fault.EngineProfile{
				MaxLatency: time.Duration(r.intn(int(2 * time.Millisecond))),
				ErrProb:    r.float() * 0.5,
				HangProb:   r.float() * 0.3,
			}
			eng := fault.NewEngine(int64(seed), fx.sys, prof)
			cacheEntries := -1
			if r.intn(2) == 0 {
				cacheEntries = 64
			}
			breaker := time.Duration(-1) // disabled
			if r.intn(2) == 0 {
				breaker = 5 * time.Millisecond
			}
			qs := qserve.New(eng, qserve.Options{
				MaxEntries:    cacheEntries,
				MaxConcurrent: 1 + r.intn(4),
				QueueWait:     time.Duration(1+r.intn(5)) * time.Millisecond,
				BreakerWindow: breaker,
				Logf:          func(string, ...any) {},
			})

			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					lr := newChaosRand(int64(seed*31 + w))
					for i := 0; i < 4; i++ {
						qi := lr.intn(len(fx.queries))
						ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
						got, err := qs.Query(ctx, fx.queries[qi], 10)
						cancel()
						if err != nil {
							continue // loud failure: allowed
						}
						if aerr := fx.checkAnswer(qi, got); aerr != nil {
							t.Errorf("silently wrong answer for %v: %v", fx.queries[qi], aerr)
							return
						}
					}
				}(w)
			}
			wg.Wait()
		})
	}
}
