package exec

import "context"

// cancelCheck amortizes context polls over the hot join loops: tick
// polls the context only every cancelCheckStride calls, so the common
// uncancelled case costs one increment and one mask per row, while a
// cancelled context is still observed within a bounded number of
// iterations even when a plan produces no results for a long stretch.
type cancelCheck struct {
	ctx context.Context
	n   uint
	err error
}

const cancelCheckStride = 64 // power of two; poll every stride iterations

func newCancelCheck(ctx context.Context) cancelCheck {
	// Poll once up front so an already-cancelled context is observed
	// even by evaluations smaller than one stride.
	return cancelCheck{ctx: ctx, err: ctx.Err()}
}

// tick reports whether the evaluation should stop, polling the context
// every cancelCheckStride calls.
func (c *cancelCheck) tick() bool {
	if c.err != nil {
		return true
	}
	c.n++
	if c.n&(cancelCheckStride-1) != 0 {
		return false
	}
	return c.now()
}

// now polls the context immediately. Used at result emission, where the
// rate is low enough that an exact check is cheap and gives callers a
// hard guarantee: no result is emitted after cancellation.
func (c *cancelCheck) now() bool {
	if c.err != nil {
		return true
	}
	c.err = c.ctx.Err()
	return c.err != nil
}
