package proximity_test

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/proximity"
	"repro/internal/xmlgraph"
)

func fig1Searcher(t *testing.T) (*proximity.Searcher, *datagen.Dataset) {
	t.Helper()
	ds, err := datagen.TPCHFigure1()
	if err != nil {
		t.Fatal(err)
	}
	return proximity.NewSearcher(ds.Data), ds
}

// Find part Near john: the TV part John supplied (distance 5 through
// supplier-lineitem-line) ranks above the VCR sub-parts (distance 7).
func TestFindPartNearJohn(t *testing.T) {
	s, ds := fig1Searcher(t)
	ranked, err := s.FindNear("part", "john", proximity.Options{MaxDistance: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 3 {
		t.Fatalf("ranked %d parts, want 3", len(ranked))
	}
	// Distances must be sorted and the closest must be the TV.
	for i := 1; i < len(ranked); i++ {
		if ranked[i-1].Distance > ranked[i].Distance {
			t.Fatal("not sorted by distance")
		}
	}
	best := ds.Data.Node(ranked[0].Node)
	if best.Type != "part" {
		t.Fatalf("best find node is %q", best.Type)
	}
	// The TV part's children include key 1005; check via its name child.
	var name string
	for _, e := range ds.Data.Out(ranked[0].Node) {
		if ds.Data.Node(e.To).Type == "pname" {
			name = ds.Data.Node(e.To).Value
		}
	}
	if name != "TV" {
		t.Fatalf("closest part to John is %q, want TV", name)
	}
	if ranked[0].Distance >= ranked[1].Distance {
		t.Fatalf("TV (%d) must be strictly closer than the sub-parts (%d)",
			ranked[0].Distance, ranked[1].Distance)
	}
}

// The ranking agrees with exact shortest distances on the graph.
func TestDistancesAreExact(t *testing.T) {
	s, ds := fig1Searcher(t)
	ranked, err := s.FindNear("part", "us", proximity.Options{MaxDistance: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Collect the near set: nodes containing "us".
	var nearNodes []xmlgraph.NodeID
	for _, id := range ds.Data.Nodes() {
		if ds.Data.Node(id).Value == "US" {
			nearNodes = append(nearNodes, id)
		}
	}
	if len(nearNodes) == 0 {
		t.Fatal("no near nodes")
	}
	for _, r := range ranked {
		min := -1
		for _, n := range nearNodes {
			if d := ds.Data.UndirectedDistance(r.Node, n); d >= 0 && (min < 0 || d < min) {
				min = d
			}
		}
		if r.Distance != min {
			t.Fatalf("node %d: reported %d, exact %d", r.Node, r.Distance, min)
		}
	}
}

func TestMaxDistancePrunes(t *testing.T) {
	s, _ := fig1Searcher(t)
	near, err := s.FindNear("part", "john", proximity.Options{MaxDistance: 5})
	if err != nil {
		t.Fatal(err)
	}
	far, err := s.FindNear("part", "john", proximity.Options{MaxDistance: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(near) >= len(far) {
		t.Fatalf("pruning had no effect: %d vs %d", len(near), len(far))
	}
	for _, r := range near {
		if r.Distance > 5 {
			t.Fatalf("distance %d exceeds bound", r.Distance)
		}
	}
}

func TestKBound(t *testing.T) {
	s, _ := fig1Searcher(t)
	ranked, err := s.FindNear("part", "us", proximity.Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 1 {
		t.Fatalf("K=1 returned %d", len(ranked))
	}
}

func TestValidation(t *testing.T) {
	s, _ := fig1Searcher(t)
	if _, err := s.FindNear("", "john", proximity.Options{}); err == nil {
		t.Fatal("empty find accepted")
	}
	if _, err := s.FindNear("part", "zzznothing", proximity.Options{}); err == nil {
		t.Fatal("unmatched near accepted")
	}
}
