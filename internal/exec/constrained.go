package exec

import (
	"sort"

	"repro/internal/optimizer"
)

// Constraint restricts an evaluation: PreBind fixes occurrences to
// specific target objects and Restrict narrows the admissible TO set of
// occurrences (nil entries leave an occurrence unrestricted). The
// presentation module uses constraints to find minimal connections of a
// candidate node to the already-displayed graph (Figure 13).
type Constraint struct {
	PreBind  map[int]int64
	Restrict []map[int64]bool
}

// EvaluateConstrained evaluates the plan with the constraint folded into
// the plan's keyword filters. If the plan's seed occurrence is free it
// must be pre-bound or restricted, otherwise the seed iterates nothing.
func (ex *Executor) EvaluateConstrained(p *optimizer.Plan, c Constraint, emit func(Result) bool) error {
	eff := make([]map[int64]bool, len(p.Filters))
	for occ := range eff {
		sets := make([]map[int64]bool, 0, 3)
		if p.Filters[occ] != nil {
			sets = append(sets, p.Filters[occ])
		}
		if c.Restrict != nil && c.Restrict[occ] != nil {
			sets = append(sets, c.Restrict[occ])
		}
		if to, ok := c.PreBind[occ]; ok {
			sets = append(sets, map[int64]bool{to: true})
		}
		if len(sets) == 0 {
			continue
		}
		out := make(map[int64]bool)
		for to := range sets[0] {
			ok := true
			for _, s := range sets[1:] {
				if !s[to] {
					ok = false
					break
				}
			}
			if ok {
				out[to] = true
			}
		}
		eff[occ] = out
	}
	cp := *p
	cp.Filters = eff
	return ex.Evaluate(&cp, emit)
}

// First returns the first result of a constrained evaluation, if any.
func (ex *Executor) First(p *optimizer.Plan, c Constraint) (Result, bool, error) {
	var out Result
	found := false
	err := ex.EvaluateConstrained(p, c, func(r Result) bool {
		out = r
		found = true
		return false
	})
	return out, found, err
}

// SortedSet renders a TO set as a sorted slice (test and display helper).
func SortedSet(set map[int64]bool) []int64 {
	out := make([]int64, 0, len(set))
	for to := range set {
		out = append(out, to)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
