package graphsource_test

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/graphsource"
	"repro/internal/tss"
)

// The XML adapter is a pure repackaging: loading through it must answer
// exactly like the direct core.Load path it generalizes.
func TestXMLAdapterEquivalence(t *testing.T) {
	sg, spec := datagen.TPCHSchema(), datagen.TPCHSpec()
	dsA, err := datagen.TPCHFigure1()
	if err != nil {
		t.Fatal(err)
	}
	dsB, err := datagen.TPCHFigure1()
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{Z: 8}
	direct, err := core.LoadPrepared(&core.Prepared{Schema: dsA.Schema, TSS: dsA.TSS, Data: dsA.Data, Obj: dsA.Obj}, opts)
	if err != nil {
		t.Fatal(err)
	}
	viaSource, err := graphsource.Load(graphsource.FromXML("fig1", sg, spec, dsB.Data), opts)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	for _, kws := range [][]string{{"john", "vcr"}, {"smith"}} {
		want, err := direct.QueryContext(ctx, kws, 10)
		if err != nil {
			t.Fatal(err)
		}
		got, err := viaSource.QueryContext(ctx, kws, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%v: %d results via source, %d direct", kws, len(got), len(want))
		}
		for i := range want {
			g, w := got[i], want[i]
			if g.Score != w.Score || g.Ord != w.Ord || !reflect.DeepEqual(g.Bind, w.Bind) || g.Net.Canon() != w.Net.Canon() {
				t.Fatalf("%v: result %d differs between source and direct load", kws, i)
			}
		}
	}
}

// Prepare surfaces source errors instead of half-loading.
type brokenSource struct{ graphsource.Source }

func (brokenSource) DatasetName() string     { return "broken" }
func (brokenSource) Spec() (tss.Spec, error) { return tss.Spec{}, errBoom }
func TestPrepareSurfacesSourceErrors(t *testing.T) {
	sg, spec := datagen.TPCHSchema(), datagen.TPCHSpec()
	ds, err := datagen.TPCHFigure1()
	if err != nil {
		t.Fatal(err)
	}
	src := brokenSource{graphsource.FromXML("fig1", sg, spec, ds.Data)}
	if _, err := graphsource.Prepare(src); err == nil {
		t.Fatal("broken source prepared")
	}
}

var errBoom = context.DeadlineExceeded
