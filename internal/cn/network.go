// Package cn implements XKeyword's candidate network generator (paper
// §4): given the schema nodes whose extensions contain each keyword, it
// enumerates — completely and non-redundantly — every schema node
// network of size up to Z that some XML instance could instantiate as an
// MTNN, extending DISCOVER's generator with the XML-specific constraints
// (choice nodes, single containment parents, maxOccurs). It also reduces
// candidate networks to candidate TSS networks (CTSSNs), the unit the
// optimizer and executor work on.
package cn

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/xmlgraph"
)

// Occ is one occurrence of a schema node in a candidate network. The same
// schema node may occur several times playing different roles. A non-free
// occurrence is annotated with the keywords its instances must contain
// (the S^K notation of §4).
type Occ struct {
	Schema   string
	Keywords []string // sorted; empty for free occurrences
}

// Free reports whether the occurrence carries no keyword annotation.
func (o Occ) Free() bool { return len(o.Keywords) == 0 }

func (o Occ) label() string {
	if o.Free() {
		return o.Schema
	}
	return o.Schema + "{" + strings.Join(o.Keywords, ",") + "}"
}

// Edge connects two occurrences; its direction and kind match a schema
// graph edge between the occurrences' schema nodes.
type Edge struct {
	From, To int
	Kind     xmlgraph.EdgeKind
}

// Network is a candidate network: an uncycled (tree-shaped) graph of
// schema node occurrences. Its score is its size in schema edges.
type Network struct {
	Occs  []Occ
	Edges []Edge
}

// Size returns the number of schema edges — the network's score (§3.1).
func (n *Network) Size() int { return len(n.Edges) }

// Clone returns a deep copy.
func (n *Network) Clone() *Network {
	c := &Network{
		Occs:  make([]Occ, len(n.Occs)),
		Edges: append([]Edge(nil), n.Edges...),
	}
	for i, o := range n.Occs {
		c.Occs[i] = Occ{Schema: o.Schema, Keywords: append([]string(nil), o.Keywords...)}
	}
	return c
}

// adjacency returns, per occurrence, its incident edges.
func (n *Network) adjacency() [][]Edge {
	adj := make([][]Edge, len(n.Occs))
	for _, e := range n.Edges {
		adj[e.From] = append(adj[e.From], e)
		adj[e.To] = append(adj[e.To], e)
	}
	return adj
}

// Leaves returns the indexes of occurrences with exactly one incident
// edge (or the single occurrence of an edgeless network).
func (n *Network) Leaves() []int {
	if len(n.Occs) == 1 {
		return []int{0}
	}
	deg := make([]int, len(n.Occs))
	for _, e := range n.Edges {
		deg[e.From]++
		deg[e.To]++
	}
	var leaves []int
	for i, d := range deg {
		if d == 1 {
			leaves = append(leaves, i)
		}
	}
	return leaves
}

// Canon returns a canonical string: two networks are isomorphic (as
// keyword-annotated, edge-directed trees) iff their canonical strings are
// equal. Networks are small (≤ Z+1 occurrences), so rooting at every
// occurrence and taking the minimum is cheap.
func (n *Network) Canon() string {
	adj := n.adjacency()
	best := ""
	for r := range n.Occs {
		s := n.canonFrom(r, -1, adj)
		if best == "" || s < best {
			best = s
		}
	}
	return best
}

func (n *Network) canonFrom(v, parentEdge int, adj [][]Edge) string {
	var subs []string
	for _, e := range adj[v] {
		other := e.From
		dir := "<"
		if e.From == v {
			other = e.To
			dir = ">"
		}
		if parentEdge >= 0 && other == parentEdge {
			continue
		}
		kind := "c"
		if e.Kind == xmlgraph.Reference {
			kind = "r"
		}
		subs = append(subs, dir+kind+n.canonFrom(other, v, adj))
	}
	sort.Strings(subs)
	return n.Occs[v].label() + "(" + strings.Join(subs, "|") + ")"
}

// String renders the network for diagnostics, e.g.
// "name{john}[<-person[->order]]".
func (n *Network) String() string {
	if len(n.Occs) == 0 {
		return "(empty)"
	}
	adj := n.adjacency()
	visited := make([]bool, len(n.Occs))
	var walk func(v int) string
	walk = func(v int) string {
		visited[v] = true
		out := n.Occs[v].label()
		var kids []string
		for _, e := range adj[v] {
			other, dir := e.To, "->"
			if e.To == v {
				other, dir = e.From, "<-"
			}
			if visited[other] {
				continue
			}
			kids = append(kids, dir+walk(other))
		}
		if len(kids) > 0 {
			out += "[" + strings.Join(kids, " ") + "]"
		}
		return out
	}
	return walk(0)
}

// Validate checks structural invariants: a connected tree, edges matching
// occurrence bounds, sorted keyword lists.
func (n *Network) Validate() error {
	if len(n.Occs) == 0 {
		return fmt.Errorf("cn: empty network")
	}
	if len(n.Edges) != len(n.Occs)-1 {
		return fmt.Errorf("cn: %d edges for %d occurrences (not a tree)", len(n.Edges), len(n.Occs))
	}
	seen := make([]bool, len(n.Occs))
	adj := n.adjacency()
	var dfs func(int)
	dfs = func(v int) {
		seen[v] = true
		for _, e := range adj[v] {
			o := e.From + e.To - v
			if !seen[o] {
				dfs(o)
			}
		}
	}
	dfs(0)
	for i, s := range seen {
		if !s {
			return fmt.Errorf("cn: occurrence %d disconnected", i)
		}
	}
	for _, o := range n.Occs {
		if !sort.StringsAreSorted(o.Keywords) {
			return fmt.Errorf("cn: keywords of %s not sorted", o.Schema)
		}
	}
	return nil
}
