package pipeline_test

import (
	"context"
	"strings"
	"testing"

	"repro/internal/cn"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/pipeline"
)

// TestShapeSignatureLengthPrefixed is the regression test for the CN
// memo key: the old encoding joined schema-node lists with bare ","/";"
// separators, so node names containing those characters collided two
// different keyword shapes. The length-prefixed encoding keeps every
// distinct shape distinct.
func TestShapeSignatureLengthPrefixed(t *testing.T) {
	collisions := [][2][][]string{
		// One node named "a,b" vs two nodes "a" and "b": the old
		// encoding produced ";a,b" for both.
		{{{"a,b"}}, {{"a", "b"}}},
		// A ";" inside a name vs a keyword-list boundary: ";a;b" both.
		{{{"a;b"}}, {{"a"}, {"b"}}},
		// Separator shuffled across keyword boundaries: ";a,b;c" vs
		// ";a;b,c" are distinct, but ";a,b,c" with nodes {"a","b,c"}
		// vs {"a,b","c"} collided.
		{{{"a", "b,c"}}, {{"a,b", "c"}}},
	}
	for i, pair := range collisions {
		a := pipeline.ShapeSignature(6, pair[0])
		b := pipeline.ShapeSignature(6, pair[1])
		if a == b {
			t.Errorf("case %d: shapes %v and %v share signature %q", i, pair[0], pair[1], a)
		}
	}
	// Z participates in the key.
	if pipeline.ShapeSignature(6, [][]string{{"a"}}) == pipeline.ShapeSignature(8, [][]string{{"a"}}) {
		t.Error("Z not part of the signature")
	}
	// Identical shapes agree, of course.
	if pipeline.ShapeSignature(6, [][]string{{"x", "y"}}) != pipeline.ShapeSignature(6, [][]string{{"x", "y"}}) {
		t.Error("identical shapes produced different signatures")
	}
}

// testSystem loads the paper's Figure 1 TPCH fragment.
func testSystem(t *testing.T) *core.System {
	t.Helper()
	ds, err := datagen.TPCHFigure1()
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.LoadPrepared(&core.Prepared{Schema: ds.Schema, TSS: ds.TSS, Data: ds.Data, Obj: ds.Obj},
		core.Options{Z: 8})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// newPipeline assembles a pipeline over a loaded system's exported
// parts, the way core does internally, with an overridable net cache.
func newPipeline(sys *core.System, nc pipeline.NetCache) *pipeline.Pipeline {
	return pipeline.New(pipeline.Config{
		Schema:   sys.Schema,
		TSS:      sys.TSS,
		Index:    sys.Index,
		Z:        sys.Opts.Z,
		Workers:  sys.Opts.Workers,
		NetCache: nc,
		NewOptimizer: func() *optimizer.Optimizer {
			return &optimizer.Optimizer{
				TSS: sys.TSS, Store: sys.Store, Index: sys.Index, Stats: sys.Stats,
				Fragments: sys.Decomp.Fragments, MaxJoins: sys.Opts.B,
			}
		},
		NewExecutor: func() *exec.Executor {
			return &exec.Executor{Store: sys.Store, TSS: sys.TSS, Index: sys.Index,
				Cache: exec.NewLookupCache(0)}
		},
	})
}

// poisonedCache returns a cached network carrying a keyword that is not
// a placeholder of the current query.
type poisonedCache struct{}

func (poisonedCache) Get(sig string) ([]*cn.Network, bool) {
	return []*cn.Network{{
		Occs: []cn.Occ{{Schema: "nation", Keywords: []string{"not-a-placeholder"}}},
	}}, true
}

func (poisonedCache) Put(sig string, nets []*cn.Network) {}

// TestSubstitutionFailsLoudly is the regression test for the old
// fmt.Sscanf placeholder parsing, which silently skipped any cached
// keyword it could not parse: a substitution that does not match a
// known placeholder must now surface as an error.
func TestSubstitutionFailsLoudly(t *testing.T) {
	sys := testSystem(t)
	p := newPipeline(sys, poisonedCache{})
	q := &pipeline.Query{Keywords: []string{"john"}, Mode: pipeline.ModeNetworks}
	err := p.Run(context.Background(), q)
	if err == nil {
		t.Fatal("corrupt cached network substituted silently")
	}
	if !strings.Contains(err.Error(), "placeholder") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestStagesReportIntoTrace drives a real top-k query with tracing on
// and checks every stage reported duration and cardinality.
func TestStagesReportIntoTrace(t *testing.T) {
	sys := testSystem(t)
	tr := obs.NewTrace()
	q := &pipeline.Query{
		Keywords: []string{"john", "vcr"},
		Mode:     pipeline.ModeTopK,
		K:        10,
		Strategy: exec.NestedLoop,
		Trace:    tr,
	}
	p := newPipeline(sys, nil)
	if err := p.Run(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	if len(q.Results) == 0 {
		t.Fatal("query produced no results")
	}
	spans := tr.Spans()
	if len(spans) != len(pipeline.StageNames) {
		t.Fatalf("got %d spans, want %d", len(spans), len(pipeline.StageNames))
	}
	for i, sp := range spans {
		if sp.Stage != pipeline.StageNames[i] {
			t.Fatalf("span %d is %q, want %q", i, sp.Stage, pipeline.StageNames[i])
		}
		if sp.Duration < 0 {
			t.Fatalf("stage %s has negative duration", sp.Stage)
		}
	}
	// Cardinalities chain: discover in = keywords, execute in = plans,
	// rank out = result count.
	if spans[0].In != 2 {
		t.Fatalf("discover in = %d, want 2", spans[0].In)
	}
	if spans[4].In != int64(len(q.Plans)) {
		t.Fatalf("execute in = %d, want %d plans", spans[4].In, len(q.Plans))
	}
	if spans[5].Out != int64(len(q.Results)) {
		t.Fatalf("rank out = %d, want %d results", spans[5].Out, len(q.Results))
	}
	// Without a net cache the generate stage reports a miss.
	if spans[1].Cached || spans[1].CacheMisses != 1 {
		t.Fatalf("generate span cache fields wrong: %+v", spans[1])
	}
	// The executor's lookup cache traffic surfaced on the execute span.
	if spans[4].CacheHits+spans[4].CacheMisses == 0 {
		t.Fatal("execute span has no lookup-cache traffic")
	}
}

// TestPartialModesStopEarly checks ModeNetworks and ModePlans run only
// their stage prefix.
func TestPartialModesStopEarly(t *testing.T) {
	sys := testSystem(t)
	p := newPipeline(sys, nil)

	tr := obs.NewTrace()
	q := &pipeline.Query{Keywords: []string{"john", "vcr"}, Mode: pipeline.ModeNetworks, Trace: tr}
	if err := p.Run(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	if len(q.Nets) == 0 || q.Plans != nil || q.Results != nil {
		t.Fatalf("networks mode side effects wrong: %d nets, %d plans, %d results",
			len(q.Nets), len(q.Plans), len(q.Results))
	}
	if got := len(tr.Spans()); got != 3 {
		t.Fatalf("networks mode ran %d stages, want 3", got)
	}

	tr = obs.NewTrace()
	q = &pipeline.Query{Keywords: []string{"john", "vcr"}, Mode: pipeline.ModePlans, Trace: tr}
	if err := p.Run(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	if len(q.Plans) == 0 || q.Results != nil {
		t.Fatal("plans mode did not stop after optimize")
	}
	if got := len(tr.Spans()); got != 4 {
		t.Fatalf("plans mode ran %d stages, want 4", got)
	}
}

// TestMetricsAccumulate checks the cumulative sink distinguishes runs
// per mode and counts stage traffic.
func TestMetricsAccumulate(t *testing.T) {
	sys := testSystem(t)
	m := pipeline.NewMetrics()
	cfgp := pipeline.New(pipeline.Config{
		Schema: sys.Schema, TSS: sys.TSS, Index: sys.Index, Z: sys.Opts.Z,
		Workers: sys.Opts.Workers,
		NewOptimizer: func() *optimizer.Optimizer {
			return &optimizer.Optimizer{TSS: sys.TSS, Store: sys.Store, Index: sys.Index,
				Stats: sys.Stats, Fragments: sys.Decomp.Fragments, MaxJoins: sys.Opts.B}
		},
		NewExecutor: func() *exec.Executor {
			return &exec.Executor{Store: sys.Store, TSS: sys.TSS, Index: sys.Index}
		},
		Metrics: m,
	})
	for i := 0; i < 3; i++ {
		q := &pipeline.Query{Keywords: []string{"john", "vcr"}, Mode: pipeline.ModeTopK, K: 5,
			Strategy: exec.NestedLoop}
		if err := cfgp.Run(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
	snap := m.Snapshot()
	if snap.Queries != 3 {
		t.Fatalf("queries = %d, want 3", snap.Queries)
	}
	if snap.ByMode["topk"] != 3 {
		t.Fatalf("by_mode[topk] = %d, want 3", snap.ByMode["topk"])
	}
	if len(snap.Stages) != len(pipeline.StageNames) {
		t.Fatalf("got %d stage snapshots", len(snap.Stages))
	}
	for _, ss := range snap.Stages {
		if ss.Runs != 3 {
			t.Fatalf("stage %s ran %d times, want 3", ss.Stage, ss.Runs)
		}
		if ss.Errors != 0 {
			t.Fatalf("stage %s reported errors", ss.Stage)
		}
	}
	// A nil sink is a valid no-op.
	var nilM *pipeline.Metrics
	if s := nilM.Snapshot(); s.Queries != 0 {
		t.Fatal("nil metrics snapshot non-zero")
	}
}

// TestExplainFormat sanity-checks the textual tree (the golden-file
// test for full output lives in core, next to ExplainAnalyze).
func TestExplainFormat(t *testing.T) {
	sys := testSystem(t)
	expl, err := sys.ExplainAnalyze(context.Background(), []string{"john", "vcr"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	text := expl.Format()
	for _, want := range []string{"EXPLAIN ANALYZE", "mode=topk k=10", "discover", "generate",
		"reduce", "optimize", "execute", "rank", "memo=miss"} {
		if !strings.Contains(text, want) {
			t.Fatalf("formatted explain missing %q:\n%s", want, text)
		}
	}
}
