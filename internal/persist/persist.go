// Package persist saves a loaded XKeyword system to disk and restores
// it, so the load stage — conformance, target decomposition, master
// indexing, the Figure 12 algorithm and connection-relation
// materialization — runs once per dataset. The format is a gob stream
// holding the schema graph, the administrator's TSS spec, the typed data
// graph, the chosen fragments with their materialized relations, and the
// target-object BLOBs.
package persist

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"repro/internal/atomicio"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/diskindex"
	"repro/internal/kwindex"
	"repro/internal/obs"
	"repro/internal/relstore"
	"repro/internal/schema"
	"repro/internal/tss"
	"repro/internal/xmlgraph"
)

// Degradations counts master-index fallbacks: loads or lookups that
// abandoned the disk-backed sidecar and rebuilt the index in memory.
var Degradations obs.Counter

// Quarantines counts files moved aside by the startup recovery sweep
// (torn temp files) and by corruption quarantines.
var Quarantines obs.Counter

// formatVersion guards against loading incompatible snapshots.
//
// History:
//
//	1 — initial format
//	2 — master index moved to a sidecar .xki file (SaveFile writes it
//	    next to the snapshot; LoadFileOpts can serve from it instead of
//	    rebuilding the in-memory index)
const formatVersion = 2

type snapshot struct {
	Version int

	SchemaNodes []schemaNodeDTO
	SchemaEdges []schemaEdgeDTO

	Segments    []tss.SegmentSpec
	Annotations []tss.Annotation

	Nodes []nodeDTO
	Edges []edgeDTO

	Opts core.Options

	DecompName    string
	Physical      decomp.Physical
	FragmentSteps [][]stepDTO
	Relations     []relationDTO
	Blobs         map[int64][]byte
	M             int

	// SidecarCRC is the metadata checksum of the .xki sidecar written by
	// the same SaveFile call, linking the two generations: a load that
	// finds a sidecar with a different fingerprint is looking at a stale
	// or foreign index file. Zero (including in pre-linkage snapshots,
	// which gob decodes with the field absent) skips the check.
	SidecarCRC uint32
}

type schemaNodeDTO struct {
	Name, Tag string
	Kind      uint8
	Root      bool
}

type schemaEdgeDTO struct {
	From, To  string
	Kind      uint8
	MaxOccurs int
}

type nodeDTO struct {
	ID           int64
	Label, Value string
	Type         string
}

type edgeDTO struct {
	From, To int64
	Kind     uint8
}

type stepDTO struct {
	EdgeID int
	Dir    uint8
}

type relationDTO struct {
	Name      string
	Cols      []string
	Rows      [][]int64
	Clustered []int
	Orderings [][]int
	HashCols  []int
}

// Save writes the system to w. Writers that need crash safety and the
// snapshot↔sidecar linkage should use SaveFile.
func Save(w io.Writer, sys *core.System, spec tss.Spec) error {
	snap, err := buildSnapshot(sys, spec)
	if err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(snap)
}

func buildSnapshot(sys *core.System, spec tss.Spec) (*snapshot, error) {
	snap := snapshot{
		Version:     formatVersion,
		Segments:    spec.Segments,
		Annotations: spec.Annotations,
		Opts:        sys.Opts,
		DecompName:  sys.Decomp.Name,
		Physical:    sys.Decomp.Physical,
		Blobs:       sys.Store.Blobs(),
		M:           sys.M,
	}
	for _, name := range sys.Schema.Nodes() {
		n := sys.Schema.Node(name)
		snap.SchemaNodes = append(snap.SchemaNodes, schemaNodeDTO{
			Name: n.Name, Tag: n.Tag, Kind: uint8(n.Kind), Root: n.Root,
		})
	}
	for _, e := range sys.Schema.Edges() {
		snap.SchemaEdges = append(snap.SchemaEdges, schemaEdgeDTO{
			From: e.From, To: e.To, Kind: uint8(e.Kind), MaxOccurs: e.MaxOccurs,
		})
	}
	for _, id := range sys.Data.Nodes() {
		n := sys.Data.Node(id)
		snap.Nodes = append(snap.Nodes, nodeDTO{ID: int64(id), Label: n.Label, Value: n.Value, Type: n.Type})
	}
	for _, e := range sys.Data.Edges() {
		snap.Edges = append(snap.Edges, edgeDTO{From: int64(e.From), To: int64(e.To), Kind: uint8(e.Kind)})
	}
	for _, f := range sys.Decomp.Fragments {
		var steps []stepDTO
		for _, s := range f.Steps() {
			steps = append(steps, stepDTO{EdgeID: s.EdgeID, Dir: uint8(s.Dir)})
		}
		snap.FragmentSteps = append(snap.FragmentSteps, steps)
		rel := sys.Store.Relation(f.RelationName())
		if rel == nil {
			return nil, fmt.Errorf("persist: relation %s not materialized", f.RelationName())
		}
		rows, clustered, orderings, hashCols := rel.Export()
		dto := relationDTO{
			Name: rel.Name, Cols: rel.Cols,
			Clustered: clustered, Orderings: orderings, HashCols: hashCols,
		}
		for _, r := range rows {
			dto.Rows = append(dto.Rows, []int64(r))
		}
		snap.Relations = append(snap.Relations, dto)
	}
	return &snap, nil
}

// SidecarPath returns the master-index sidecar written next to a
// snapshot at path.
func SidecarPath(path string) string { return path + ".xki" }

// saveWriter lets crash tests interpose a fault.LimitWriter between the
// snapshot encoder and the temp file; production leaves it the identity.
var saveWriter = func(f *os.File) io.Writer { return f }

// SaveFile writes the system to path, plus the master index as a paged
// sidecar at SidecarPath(path), so a later LoadFileOpts with DiskIndex
// can start serving without rebuilding (or even holding) the index.
//
// Both files are written crash-safely (temp + fsync + rename), sidecar
// first: the snapshot records the sidecar's checksum, and its rename is
// the commit point for the pair. A crash at any instant leaves the
// previous generation loadable — at worst with an orphaned new-sidecar
// whose fingerprint no snapshot references.
func SaveFile(path string, sys *core.System, spec tss.Spec) error {
	ix, ok := sys.Index.(*kwindex.Index)
	if !ok {
		// The system already serves from disk; re-derive the postings for
		// a fresh, self-contained sidecar.
		ix = kwindex.Build(sys.Obj)
	}
	crc, err := diskindex.CreateCRC(SidecarPath(path), ix)
	if err != nil {
		return err
	}
	snap, err := buildSnapshot(sys, spec)
	if err != nil {
		return err
	}
	snap.SidecarCRC = crc
	return atomicio.WriteFile(path, func(f *os.File) error {
		return gob.NewEncoder(saveWriter(f)).Encode(snap)
	})
}

// Load restores a system from r, skipping every load-stage computation:
// the schema, data graph, fragments and relations come from the
// snapshot; only the in-memory derivations (TSS graph, object graph,
// master index, statistics) are rebuilt, which is linear in the data.
func Load(r io.Reader) (*core.System, error) {
	sys, _, err := load(r)
	if err != nil {
		return nil, err
	}
	sys.Index = kwindex.Build(sys.Obj)
	return sys, nil
}

// load restores everything but the master index, which the caller
// attaches (rebuilt in memory, or a disk-backed reader). It also returns
// the decoded snapshot so callers can check the sidecar linkage.
func load(r io.Reader) (*core.System, *snapshot, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, nil, fmt.Errorf("persist: %w", err)
	}
	if snap.Version != formatVersion {
		return nil, nil, fmt.Errorf("persist: snapshot format version %d, but this build reads version %d — re-run the load stage (xkeyword -save) to regenerate the snapshot", snap.Version, formatVersion)
	}

	sg := schema.New()
	for _, n := range snap.SchemaNodes {
		if err := sg.AddTaggedNode(n.Name, n.Tag, schema.NodeKind(n.Kind)); err != nil {
			return nil, nil, err
		}
		if n.Root {
			if err := sg.SetRoot(n.Name); err != nil {
				return nil, nil, err
			}
		}
	}
	for _, e := range snap.SchemaEdges {
		if err := sg.AddEdge(e.From, e.To, xmlgraph.EdgeKind(e.Kind), e.MaxOccurs); err != nil {
			return nil, nil, err
		}
	}

	data := xmlgraph.New()
	for _, n := range snap.Nodes {
		if err := data.AddNodeWithID(xmlgraph.NodeID(n.ID), n.Label, n.Value); err != nil {
			return nil, nil, err
		}
		data.SetType(xmlgraph.NodeID(n.ID), n.Type)
	}
	for _, e := range snap.Edges {
		if err := data.AddEdge(xmlgraph.NodeID(e.From), xmlgraph.NodeID(e.To), xmlgraph.EdgeKind(e.Kind)); err != nil {
			return nil, nil, err
		}
	}

	spec := tss.Spec{Segments: snap.Segments, Annotations: snap.Annotations}
	tg, err := tss.Derive(sg, spec)
	if err != nil {
		return nil, nil, err
	}
	og, err := tg.Decompose(data)
	if err != nil {
		return nil, nil, err
	}

	store := relstore.NewStore(snap.Opts.PoolPages)
	d := &decomp.Decomposition{Name: snap.DecompName, Physical: snap.Physical}
	for i, steps := range snap.FragmentSteps {
		ss := make([]decomp.Step, len(steps))
		for j, s := range steps {
			ss[j] = decomp.Step{EdgeID: s.EdgeID, Dir: decomp.Dir(s.Dir)}
		}
		f, err := decomp.NewFragment(tg, ss)
		if err != nil {
			return nil, nil, fmt.Errorf("persist: fragment %d: %w", i, err)
		}
		d.Fragments = append(d.Fragments, f)
		dto := snap.Relations[i]
		rel, err := store.CreateRelation(dto.Name, dto.Cols)
		if err != nil {
			return nil, nil, err
		}
		rows := make([]relstore.Row, len(dto.Rows))
		for j, r := range dto.Rows {
			rows[j] = relstore.Row(r)
		}
		if err := rel.Import(rows, dto.Clustered, dto.Orderings, dto.HashCols); err != nil {
			return nil, nil, err
		}
	}
	for id, b := range snap.Blobs {
		store.PutBlob(id, b)
	}

	sys := &core.System{
		Schema: sg,
		TSS:    tg,
		Data:   data,
		Obj:    og,
		Store:  store,
		Stats:  og.CollectStats(),
		Decomp: d,
		M:      snap.M,
		Opts:   snap.Opts,
	}
	return sys, &snap, nil
}

// LoadFile restores a system from path with an in-memory master index.
func LoadFile(path string) (*core.System, error) {
	return LoadFileOpts(path, LoadOptions{})
}

// LoadOptions configure LoadFileOpts.
type LoadOptions struct {
	// DiskIndex serves the master index from the SidecarPath(path) file
	// through a buffer pool instead of rebuilding it in memory, making
	// cold start independent of index size.
	DiskIndex bool
	// IndexCacheBytes is the buffer-pool budget for DiskIndex
	// (0 = diskindex.DefaultCacheBytes).
	IndexCacheBytes int64
	// SelfHeal makes a DiskIndex load survive sidecar loss and
	// corruption instead of erroring: a sidecar that is missing, fails
	// validation, or mismatches the snapshot's recorded checksum is
	// quarantined and the index rebuilt in memory (degraded mode), and a
	// sidecar that fails later, at lookup time, is failed over the same
	// way via kwindex.Failover. Without it a bad sidecar is a hard load
	// error.
	SelfHeal bool
	// OnDegrade, if set, is called with the cause whenever SelfHeal
	// abandons the sidecar — at load time or on first failed lookup.
	OnDegrade func(error)
	// WrapReaderAt is the fault-injection seam passed through to
	// diskindex.Options (chaos tests only).
	WrapReaderAt func(io.ReaderAt) io.ReaderAt
}

// LoadFileOpts restores a system from path, choosing the master-index
// backend per opts. It begins with a recovery sweep: temp files orphaned
// by a crash mid-SaveFile are quarantined (renamed *.torn) so they can
// never shadow a future write.
func LoadFileOpts(path string, opts LoadOptions) (*core.System, error) {
	for _, target := range []string{path, SidecarPath(path)} {
		torn, err := atomicio.Sweep(target)
		if err != nil {
			return nil, fmt.Errorf("persist: recovery sweep: %w", err)
		}
		Quarantines.Add(int64(len(torn)))
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() //xk:ignore errdrop read-only snapshot; Close cannot lose data
	if !opts.DiskIndex {
		return Load(f)
	}
	sys, snap, err := load(f)
	if err != nil {
		return nil, err
	}
	degrade := func(cause error) {
		Degradations.Add(1)
		if opts.OnDegrade != nil {
			opts.OnDegrade(cause)
		}
	}
	rd, err := diskindex.Open(SidecarPath(path), diskindex.Options{
		CacheBytes:   opts.IndexCacheBytes,
		WrapReaderAt: opts.WrapReaderAt,
	})
	if err == nil && snap.SidecarCRC != 0 && rd.MetaCRC() != snap.SidecarCRC {
		err = fmt.Errorf("persist: sidecar %s checksum %#x does not match the snapshot's recorded %#x — stale or foreign index file",
			SidecarPath(path), rd.MetaCRC(), snap.SidecarCRC)
		if _, qerr := rd.Quarantine(); qerr == nil {
			Quarantines.Add(1)
		}
	}
	if err != nil {
		if !opts.SelfHeal {
			return nil, fmt.Errorf("persist: opening disk index (was the snapshot written by this version's SaveFile?): %w", err)
		}
		// Quarantine whatever is at the sidecar path (unless Open already
		// did, or it never existed) and serve degraded from a rebuild.
		if _, statErr := os.Stat(SidecarPath(path)); statErr == nil {
			if _, qerr := atomicio.Quarantine(SidecarPath(path)); qerr == nil {
				Quarantines.Add(1)
			}
		}
		degrade(err)
		sys.Index = kwindex.Build(sys.Obj)
		return sys, nil
	}
	if !opts.SelfHeal {
		sys.Index = rd
		return sys, nil
	}
	obj := sys.Obj
	sys.Index = kwindex.NewFailover(rd,
		func() (kwindex.Source, error) {
			if _, qerr := rd.Quarantine(); qerr == nil {
				Quarantines.Add(1)
			}
			return kwindex.Build(obj), nil
		},
		degrade)
	return sys, nil
}
