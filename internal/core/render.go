package core

import (
	"fmt"
	"strings"

	"repro/internal/exec"
)

// SummarySource is the optional index-backend interface behind
// SummaryOf: a live store (internal/segidx) that knows the
// presentation summaries of runtime-ingested target objects.
type SummarySource interface {
	Summary(to int64) (string, bool)
}

// SummaryOf returns a target object's presentation summary, consulting
// the index backend first — a runtime-ingested document's summary wins
// over (and exists beside no) object-graph entry — and falling back to
// the load-stage object graph. All presentation paths go through this,
// so ingested TOs render like native ones instead of as "TO(n)?"
// placeholders.
func (s *System) SummaryOf(to int64) string {
	if src, ok := s.Index.(SummarySource); ok {
		if sum, ok := src.Summary(to); ok {
			return sum
		}
	}
	return s.Obj.Summary(to)
}

// RenderResult renders an MTTON as an indented tree of target-object
// summaries with the semantic edge annotations of the TSS graph — the
// result presentation of §3 (e.g. "lineitem —line→ part[key=1005 TV]").
func (s *System) RenderResult(r exec.Result) string {
	adj := make([][]int, len(r.Net.Occs))
	type edgeInfo struct {
		label   string
		forward bool
	}
	edges := make(map[[2]int]edgeInfo)
	for _, e := range r.Net.Edges {
		te := s.TSS.Edge(e.EdgeID)
		adj[e.From] = append(adj[e.From], e.To)
		adj[e.To] = append(adj[e.To], e.From)
		edges[[2]int{e.From, e.To}] = edgeInfo{label: te.ForwardLabel, forward: true}
		edges[[2]int{e.To, e.From}] = edgeInfo{label: te.BackwardLabel, forward: false}
	}
	var sb strings.Builder
	visited := make([]bool, len(r.Net.Occs))
	var walk func(v, depth int)
	walk = func(v, depth int) {
		visited[v] = true
		sb.WriteString(strings.Repeat("  ", depth))
		if depth > 0 {
			sb.WriteString("└─ ")
		}
		sb.WriteString(s.SummaryOf(r.Bind[v]))
		if kws := r.Net.Occs[v].Keywords; len(kws) > 0 {
			var ks []string
			for _, k := range kws {
				ks = append(ks, k.Keyword)
			}
			fmt.Fprintf(&sb, "  «%s»", strings.Join(ks, ","))
		}
		sb.WriteString("\n")
		for _, o := range adj[v] {
			if visited[o] {
				continue
			}
			info := edges[[2]int{v, o}]
			sb.WriteString(strings.Repeat("  ", depth+1))
			fmt.Fprintf(&sb, "(%s)\n", info.label)
			walk(o, depth+1)
		}
	}
	walk(0, 0)
	return strings.TrimRight(sb.String(), "\n")
}

// ResultSummaries returns the target-object summaries of a result in
// occurrence order, for compact display and tests.
func (s *System) ResultSummaries(r exec.Result) []string {
	out := make([]string, len(r.Bind))
	for i, to := range r.Bind {
		out[i] = s.SummaryOf(to)
	}
	return out
}
