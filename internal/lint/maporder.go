package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// maporder flags slices populated by iterating a map and then returned
// or serialized with no intervening sort: Go's map iteration order is
// deliberately randomized, so the slice's element order differs from
// run to run. This is the repo's most-shipped bug class — the
// canonical (Score, Ord) result contract requires byte-identical
// output, and both PR 3 (top-k scheduling) and PR 7 (tie-break
// scheduling) landed fixes for nondeterministic orderings that the
// randomized equivalence suites caught late. The sanctioned pattern is
// collect-then-sort (see sortedKeys in internal/edgelist).
//
// The check follows the value: a `for ... range m` over a map whose
// body appends to a slice declared outside the loop taints that slice;
// the taint is cleared by any sort call (package sort/slices, or a
// callee whose name contains "sort") taking the slice, or by a
// non-append redefinition; a tainted slice reaching a return
// statement, an encoding/printing call, or a channel send is reported
// at the range statement.
var analyzerMaporder = &Analyzer{
	Name: "maporder",
	Doc:  "slices built by map iteration must be sorted before they are returned or serialized",
	Run:  runMaporder,
}

func runMaporder(p *Pass) {
	for _, ff := range p.Flow.Funcs {
		ast.Inspect(ff.Body, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok || !isMapRange(p, rng) {
				return true
			}
			for _, sl := range mapFedSlices(p, ff, rng) {
				if sink := unsortedSink(p, ff, rng, sl); sink != "" {
					p.Reportf(rng.Pos(), "slice %s is built by iterating a map and %s without a sort; map order is randomized, so output order differs across runs — sort it first", sl.Name(), sink)
				}
			}
			return true
		})
	}
}

func isMapRange(p *Pass, rng *ast.RangeStmt) bool {
	t := p.TypeOf(rng.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// mapFedSlices returns the slice-typed variables that (a) are appended
// to inside the range body and (b) are declared outside the loop, so
// the map's iteration order escapes the loop through them.
func mapFedSlices(p *Pass, ff *FuncFlow, rng *ast.RangeStmt) []*types.Var {
	var out []*types.Var
	seen := make(map[*types.Var]bool)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isAppendCall(p, call) || i >= len(as.Lhs) {
				continue
			}
			v := ff.VarOf(as.Lhs[i])
			if v == nil || seen[v] {
				continue
			}
			if _, isSlice := v.Type().Underlying().(*types.Slice); !isSlice {
				continue
			}
			if declaredInside(ff, v, rng) {
				continue
			}
			seen[v] = true
			out = append(out, v)
		}
		return true
	})
	return out
}

func isAppendCall(p *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := p.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// declaredInside reports whether every definition of v lies inside the
// loop (a loop-local accumulator resets each iteration and cannot leak
// the order).
func declaredInside(ff *FuncFlow, v *types.Var, rng *ast.RangeStmt) bool {
	defs := ff.DefsOf(v)
	if len(defs) == 0 {
		return false
	}
	for _, d := range defs {
		if d.Pos < rng.Pos() || d.Pos > rng.End() {
			return false
		}
	}
	return true
}

// unsortedSink scans v's uses after the loop in source order. A sort
// call clears the taint; a non-append redefinition clears it too (the
// map-ordered contents are gone). A return, encode/print call, or
// channel send while still tainted is the bug; the returned string
// names the sink for the message.
func unsortedSink(p *Pass, ff *FuncFlow, rng *ast.RangeStmt, v *types.Var) string {
	type event struct {
		pos  token.Pos
		kind string // "sort", "redef", or a sink description
	}
	var events []event
	for _, d := range ff.DefsOf(v) {
		if d.Pos <= rng.End() || d.RHS == nil {
			continue
		}
		if call, ok := ast.Unparen(d.RHS).(*ast.CallExpr); ok && isAppendCall(p, call) {
			continue // still accumulating; taint stays
		}
		events = append(events, event{d.Pos, "redef"})
	}
	for _, use := range ff.UsesOf(v) {
		if use.Pos() <= rng.End() {
			continue
		}
		switch kind := classifyUse(p, ff, use); kind {
		case "":
		default:
			events = append(events, event{use.Pos(), kind})
		}
	}
	// Earliest event decides: a sink before any sort/redef is a finding.
	var first *event
	for i := range events {
		if first == nil || events[i].pos < first.pos {
			first = &events[i]
		}
	}
	if first == nil || first.kind == "sort" || first.kind == "redef" {
		return ""
	}
	return first.kind
}

// classifyUse labels one post-loop use of the tainted slice: "sort"
// for a sanitizing call, a sink description for order-sensitive
// escapes, "" for neutral uses (len, cap, indexing, further appends).
func classifyUse(p *Pass, ff *FuncFlow, use *ast.Ident) string {
	// Inside a return statement (possibly wrapped: `return append(s, x)`).
	if ff.flowHasReturnAncestor(use) {
		return "returned"
	}
	for n := ast.Node(use); n != nil; n = ff.flow.Parent(n) {
		switch pn := ff.flow.Parent(n).(type) {
		case *ast.CallExpr:
			if arg, ok := n.(ast.Expr); ok && isCallArg(pn, arg) {
				return classifyCall(p, pn)
			}
		case *ast.SendStmt:
			if pn.Value == n {
				return "sent on a channel"
			}
		case ast.Stmt:
			return ""
		}
	}
	return ""
}

func (ff *FuncFlow) flowHasReturnAncestor(n ast.Node) bool {
	for p := ff.flow.parent[n]; p != nil; p = ff.flow.parent[p] {
		if _, ok := p.(*ast.ReturnStmt); ok {
			return true
		}
		if _, ok := p.(ast.Stmt); ok {
			return false
		}
	}
	return false
}

func isCallArg(call *ast.CallExpr, e ast.Expr) bool {
	for _, a := range call.Args {
		if a == e {
			return true
		}
	}
	return false
}

// classifyCall decides what passing the slice to this call means:
// "sort" for sorting helpers, a sink description for serialization,
// "" for anything else (unknown callees stay silent — a helper may
// sort internally, and guessing would drown the repo in noise).
func classifyCall(p *Pass, call *ast.CallExpr) string {
	fn := calleeFunc(p, call)
	if fn == nil {
		return ""
	}
	name := fn.Name()
	lower := strings.ToLower(name)
	if pkg := fn.Pkg(); pkg != nil {
		if pkg.Path() == "sort" {
			return "sort" // sort.Slice/Strings/Ints/Sort/Stable all order the slice
		}
		if pkg.Path() == "slices" {
			if strings.Contains(lower, "sort") {
				return "sort"
			}
			return ""
		}
	}
	if strings.Contains(lower, "sort") || strings.Contains(lower, "canonical") {
		return "sort"
	}
	switch {
	case strings.Contains(lower, "marshal"), strings.Contains(lower, "encode"),
		strings.HasPrefix(lower, "fprint"), strings.HasPrefix(lower, "print"),
		strings.Contains(lower, "serialize"), name == "Join":
		return "passed to " + name
	}
	return ""
}
