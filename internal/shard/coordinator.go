package shard

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/kwindex"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/qserve"
	"repro/internal/rank"
)

// ErrNoQuorum is returned when fewer than a quorum of shard groups can
// answer a query's lookup phase (or no group is left to execute a
// cover). A group counts as answering while at least one of its
// replicas does, so with replication ErrNoQuorum means whole groups —
// every replica of a partition — are down, not single processes. The
// web layer maps it to 503 + Retry-After: a mostly-empty answer must
// not be served as a result set, loudly annotated or not.
var ErrNoQuorum = errors.New("shard: quorum of shards unavailable")

// CoordinatorOptions configure a Coordinator. The zero value selects
// the defaults.
type CoordinatorOptions struct {
	// Quorum is the minimum number of shards that must answer the
	// lookup phase (default: majority, n/2+1). Below it queries fail
	// with ErrNoQuorum instead of degrading.
	Quorum int
	// RequestTimeout bounds each shard request (default 5s).
	RequestTimeout time.Duration
	// Retry is the per-request retry policy for transient failures
	// (default: 2 attempts, 10ms base backoff).
	Retry fault.RetryPolicy
	// BreakerThreshold consecutive failures open a shard's circuit
	// breaker (default 3); BreakerWindow is how long it fast-fails
	// before admitting a probe (default 2s).
	BreakerThreshold int
	BreakerWindow    time.Duration
	// HealthTTL caches ShardStates probes for this long (default 1s;
	// negative disables caching). The serving layer consults health on
	// every query, which must not cost a full shard fan-out each time.
	HealthTTL time.Duration
	// Manifest, when non-nil, lets Validate check each shard serves the
	// split it records (CRC + scheme + count).
	Manifest *Manifest
	// HTTPClient overrides the transport (tests use the httptest
	// server's client). Default: a dedicated pooled client.
	HTTPClient *http.Client
	// Logf receives operational messages (default log.Printf).
	Logf func(format string, args ...any)

	// HedgeDisabled turns off hedged requests. By default, groups with
	// more than one replica hedge: once a request to the healthiest
	// replica runs past that replica's observed p95 latency, the same
	// idempotent request fires at the next replica and the first success
	// wins (the loser is cancelled). Replicas serve identical partition
	// data, so hedging never changes an answer, only its tail latency.
	HedgeDisabled bool
	// HedgeMinDelay/HedgeMaxDelay clamp the latency-derived hedge delay
	// (defaults 1ms / 100ms) so a cold or noisy histogram cannot hedge
	// instantly or wait out the whole request timeout.
	HedgeMinDelay time.Duration
	HedgeMaxDelay time.Duration
	// HedgeBudgetPct caps fired hedges at this percentage of hedgeable
	// requests, coordinator-wide (default 10) — a slow cluster must not
	// double its own load.
	HedgeBudgetPct int
	// HedgeMinSamples is how many latency observations a replica needs
	// before its p95 is trusted to derive a hedge delay (default 16).
	HedgeMinSamples int
}

func (o *CoordinatorOptions) defaults(n int) {
	if o.Quorum <= 0 {
		o.Quorum = n/2 + 1
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 5 * time.Second
	}
	if o.Retry.Attempts == 0 {
		o.Retry = fault.RetryPolicy{Attempts: 2, Base: 10 * time.Millisecond, Max: 250 * time.Millisecond, Jitter: 0.5}
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerWindow <= 0 {
		o.BreakerWindow = 2 * time.Second
	}
	if o.HealthTTL == 0 {
		o.HealthTTL = time.Second
	}
	if o.HTTPClient == nil {
		o.HTTPClient = &http.Client{}
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	if o.HedgeMinDelay <= 0 {
		o.HedgeMinDelay = time.Millisecond
	}
	if o.HedgeMaxDelay <= 0 {
		o.HedgeMaxDelay = 100 * time.Millisecond
	}
	if o.HedgeBudgetPct <= 0 {
		o.HedgeBudgetPct = 10
	}
	if o.HedgeMinSamples <= 0 {
		o.HedgeMinSamples = 16
	}
}

// Coordinator scatter-gathers keyword queries across N shard servers.
// It implements qserve.Engine, so the full serving layer — result
// cache, singleflight, admission control, breaker, health — fronts it
// unchanged; it also implements the health interfaces (IndexHealthState
// with the quorum rule, ShardStates for per-shard reporting).
type Coordinator struct {
	sys    *core.System
	groups []*replicaGroup
	hedge  *hedgeControl
	opts   CoordinatorOptions

	lookupLat  obs.Histogram // phase 1 wall time per query
	executeLat obs.Histogram // phase 2 wall time per query
	mergeLat   obs.Histogram // merge wall time per query

	queries       atomic.Int64
	degraded      atomic.Int64
	reassignments atomic.Int64
	crcMismatches atomic.Int64

	stMu    sync.Mutex
	stCache []qserve.ShardState // guarded by stMu — last probe result
	stAt    time.Time           // guarded by stMu — when it was taken
}

var (
	_ qserve.Engine       = (*Coordinator)(nil)
	_ qserve.ScoredEngine = (*Coordinator)(nil)
)

// NewCoordinator wires a coordinator to one shard server per partition
// (base URLs, index = shard id) — the single-replica special case of
// NewCoordinatorGroups. sys supplies the replicated structural data
// used to derive networks and plans; its own Index field is never
// consulted for answers.
func NewCoordinator(sys *core.System, addrs []string, opts CoordinatorOptions) *Coordinator {
	groups := make([][]string, len(addrs))
	for i, a := range addrs {
		groups[i] = []string{a}
	}
	return NewCoordinatorGroups(sys, groups, opts)
}

// NewCoordinatorGroups wires a coordinator to a replica topology: one
// address list per shard, index = shard id. Every replica of a group
// must serve a byte-identical copy of that shard's partition (Validate
// cross-checks the partition CRCs); each lookup/execute routes to the
// group's healthiest replica with failover to siblings, so a partition
// is unavailable only when its whole group is.
func NewCoordinatorGroups(sys *core.System, groups [][]string, opts CoordinatorOptions) *Coordinator {
	opts.defaults(len(groups))
	c := &Coordinator{sys: sys, opts: opts}
	c.hedge = &hedgeControl{
		disabled:   opts.HedgeDisabled,
		minDelay:   opts.HedgeMinDelay,
		maxDelay:   opts.HedgeMaxDelay,
		budgetPct:  int64(opts.HedgeBudgetPct),
		minSamples: int64(opts.HedgeMinSamples),
	}
	for i, addrs := range groups {
		g := &replicaGroup{shard: i, hedge: c.hedge}
		for ri, a := range addrs {
			label := fmt.Sprintf("shard %d at %s", i, a)
			if len(addrs) > 1 {
				label = fmt.Sprintf("shard %d replica %d at %s", i, ri, a)
			}
			g.replicas = append(g.replicas, &shardClient{
				id:        i,
				replica:   ri,
				label:     label,
				base:      a,
				hc:        opts.HTTPClient,
				timeout:   opts.RequestTimeout,
				threshold: opts.BreakerThreshold,
				window:    opts.BreakerWindow,
			})
		}
		c.groups = append(c.groups, g)
	}
	return c
}

// N returns the shard (group) count.
func (c *Coordinator) N() int { return len(c.groups) }

// Replicas returns the total replica count across all groups.
func (c *Coordinator) Replicas() int {
	n := 0
	for _, g := range c.groups {
		n += len(g.replicas)
	}
	return n
}

func (c *Coordinator) quorum() int { return c.opts.Quorum }

// Validate probes every replica of every group and checks identity:
// shard id, count, hash scheme, and the partition CRC — against the
// manifest when one was provided, and always across the group's own
// replicas, since hedging and failover are only byte-preserving when
// every replica serves the identical partition. A coordinator serving
// in front of mismatched shards would silently misroute, so deployments
// call this before taking traffic.
func (c *Coordinator) Validate(ctx context.Context) error {
	n := len(c.groups)
	for i, g := range c.groups {
		var anchor *StatsResponse // the group's first replica, for the cross-check
		for _, cl := range g.replicas {
			var st StatsResponse
			if err := cl.probe(ctx, "/shard/stats", struct{}{}, &st, c.opts.Retry); err != nil {
				return fmt.Errorf("shard: validating shard %d: %w", i, err)
			}
			if st.Shard != i || st.Of != n {
				return fmt.Errorf("shard: %s identifies as shard %d/%d, expected %d/%d", cl.base, st.Shard, st.Of, i, n)
			}
			if st.Scheme != HashScheme {
				return fmt.Errorf("shard: %s uses hash scheme %q, coordinator uses %q", cl.base, st.Scheme, HashScheme)
			}
			if m := c.opts.Manifest; m != nil && st.CRC != m.Shards[i].CRC {
				return fmt.Errorf("shard: %s serves partition CRC %08x, manifest records %08x — wrong split?", cl.base, st.CRC, m.Shards[i].CRC)
			}
			if anchor == nil {
				st := st
				anchor = &st
			} else if st.CRC != anchor.CRC || st.Postings != anchor.Postings || st.Keywords != anchor.Keywords {
				// A replica serving a CRC (or, for in-memory partitions
				// with no file CRC, index totals) its sibling does not is
				// not a copy of the same split — failover and hedging
				// would change answers, so refuse.
				return fmt.Errorf("shard: %s serves CRC %08x / %d postings / %d keywords, its sibling %s serves %08x / %d / %d — replicas of shard %d are not copies of one split",
					cl.base, st.CRC, st.Postings, st.Keywords, g.replicas[0].base, anchor.CRC, anchor.Postings, anchor.Keywords, i)
			}
		}
	}
	return nil
}

// QueryContext implements qserve.Engine: the scatter-gather top-k query.
func (c *Coordinator) QueryContext(ctx context.Context, keywords []string, k int) ([]exec.Result, error) {
	if k <= 0 {
		return nil, ctx.Err()
	}
	rs, _, err := c.query(ctx, keywords, k, exec.NestedLoop, nil, nil)
	return rs, err
}

// QueryAllStrategyContext implements qserve.Engine: the scatter-gather
// full-result query.
func (c *Coordinator) QueryAllStrategyContext(ctx context.Context, keywords []string, strat exec.Strategy) ([]exec.Result, error) {
	rs, _, err := c.query(ctx, keywords, 0, strat, nil, nil)
	return rs, err
}

// QueryScoredContext implements qserve.ScoredEngine: the scatter-gather
// top-k query ranked by the named scorer, with the relaxation record.
// The default scorer keeps the per-shard top-k caps and the early-
// terminating canonical merge byte-identical to QueryContext; any other
// scorer fetches full streams (a shard-side cap could prune a result
// the scorer would promote) and re-ranks the merged list exactly like a
// single node would.
func (c *Coordinator) QueryScoredContext(ctx context.Context, keywords []string, k int, scorer string) ([]exec.Result, *pipeline.Relaxation, error) {
	name := scorer
	if name == "" {
		name = c.sys.Opts.Scorer
	}
	sc, err := rank.New(name)
	if err != nil {
		return nil, nil, err
	}
	if k <= 0 {
		return nil, nil, ctx.Err()
	}
	return c.query(ctx, keywords, k, exec.NestedLoop, sc, nil)
}

// QueryTraced is QueryContext with a per-query obs.Trace covering the
// coordinator phases (scatter-lookup, the local pipeline's derivation
// stages, scatter-execute, merge).
func (c *Coordinator) QueryTraced(ctx context.Context, keywords []string, k int) (*obs.Trace, []exec.Result, error) {
	tr := obs.NewTrace()
	rs, _, err := c.query(ctx, keywords, k, exec.NestedLoop, nil, tr)
	return tr, rs, err
}

// query is the two-phase scatter-gather path; see the package comment
// for the protocol and its equivalence argument. A nil (or default)
// scorer is the byte-identical canonical path; a non-default scorer
// turns off the per-shard and merge top-k cutoffs and re-ranks the full
// merged list. The relaxation record comes from the coordinator's local
// derivation; shards relax identically against the same merged lists
// (the CRC cross-check would catch any divergence).
func (c *Coordinator) query(ctx context.Context, keywords []string, k int, strat exec.Strategy, sc rank.Scorer, trace *obs.Trace) ([]exec.Result, *pipeline.Relaxation, error) {
	c.queries.Add(1)
	n := len(c.groups)

	// Normalize once; wire lists are keyed by the normalized form.
	norms := make([]string, 0, len(keywords))
	seenNorm := make(map[string]bool)
	for _, kw := range keywords {
		nk := NormKeyword(kw)
		if nk == "" {
			return nil, nil, fmt.Errorf("shard: keyword %q has no tokens", kw)
		}
		if !seenNorm[nk] {
			seenNorm[nk] = true
			norms = append(norms, nk)
		}
	}
	if c.sys.Opts.Relax {
		// Relaxation may substitute a no-match phrase by one of its
		// tokens, so the merged query-scoped source must carry each
		// token's list too — for the coordinator's own derivation and for
		// every shard's identical one.
		for _, kw := range keywords {
			for _, t := range kwindex.Tokenize(kw) {
				if !seenNorm[t] {
					seenNorm[t] = true
					norms = append(norms, t)
				}
			}
		}
	}

	// Phase 1: scatter the lookups; the union of the live partitions'
	// lists is the (possibly partial) global containing list.
	start := time.Now()
	lookups := make([]LookupResponse, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := range c.groups {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = c.groups[i].do(ctx, "/shard/lookup", LookupRequest{Keywords: norms}, &lookups[i], c.opts.Retry)
			if errs[i] == nil && (lookups[i].Shard != i || lookups[i].Of != n) {
				errs[i] = fmt.Errorf("%s identifies as %d/%d", c.groups[i].name(n), lookups[i].Shard, lookups[i].Of)
			}
		}(i)
	}
	wg.Wait()
	c.lookupLat.Observe(time.Since(start))
	trace.Add(obs.Span{Stage: "scatter-lookup", Start: start, Duration: time.Since(start), In: int64(n), Out: int64(len(norms))})
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}

	alive := make([]bool, n)
	var dead []int
	live := 0
	for i := range c.groups {
		if errs[i] == nil {
			alive[i] = true
			live++
		} else {
			dead = append(dead, i)
		}
	}
	if live < c.quorum() {
		return nil, nil, fmt.Errorf("%w: %d of %d shards answered (quorum %d); first failure: %v", ErrNoQuorum, live, n, c.quorum(), errs[dead[0]])
	}
	if len(dead) > 0 {
		// Loud, never silent: the answer excludes every result tree that
		// contains a TO of a dead partition. A group only lands here when
		// every one of its replicas failed — single-replica faults are
		// absorbed by the group's failover. The serving layer attaches
		// this note to the response and refuses to cache it.
		var names []string
		for _, i := range dead {
			names = append(names, c.groups[i].name(n))
			c.opts.Logf("shard: lookup phase lost %s: %v", names[len(names)-1], errs[i])
		}
		c.degraded.Add(1)
		qserve.NoteDegradation(ctx, qserve.Degradation{
			Shards: names,
			Detail: fmt.Sprintf("answers computed without %d of %d index partitions: results containing their target objects are missing", len(dead), n),
		})
	}

	// Merge the partition slices into the query-scoped global source.
	merged := make(map[string][]kwindex.Posting, len(norms))
	for _, nk := range norms {
		var parts [][]kwindex.Posting
		for i := range c.groups {
			if !alive[i] {
				continue
			}
			if wl, ok := lookups[i].Lists[nk]; ok {
				ps, ok := DecodeLists(map[string]WireList{nk: wl})
				if !ok {
					return nil, nil, fmt.Errorf("shard: shard %d returned malformed postings for %q", i, nk)
				}
				parts = append(parts, ps[nk])
			}
		}
		merged[nk] = MergePostings(parts)
	}
	globalPostings, globalKeywords := 0, 0
	for i := range c.groups {
		if alive[i] {
			globalPostings += lookups[i].Postings
			if lookups[i].Keywords > globalKeywords {
				globalKeywords = lookups[i].Keywords
			}
		}
	}
	src := NewQuerySource(merged, globalPostings, globalKeywords)

	// Derive the network list locally — the same derivation every shard
	// performs — to attach results to networks and cross-check CRCs.
	q := &pipeline.Query{Keywords: keywords, Mode: pipeline.ModeNetworks, Trace: trace}
	if err := c.sys.PipelineWith(src).Run(ctx, q); err != nil {
		return nil, nil, err
	}
	if len(q.Nets) == 0 {
		// Nothing to execute — relaxation dropped every keyword, or the
		// shape admits no candidate network. Every shard would derive
		// the same empty list (CRC of nothing), so skip the scatter.
		return nil, q.Relaxation, nil
	}
	wantCRC := CanonCRC(q.Nets)

	// A non-default scorer needs the complete result set: per-shard
	// top-k caps and the merge cutoff are only sound for the canonical
	// order it may depart from.
	fetchK := k
	if !rank.IsDefault(sc) {
		fetchK = 0
	}

	// Phase 2: scatter execution. Every live shard owns its own
	// partition; dead partitions are covered by survivors — execution
	// needs only this request (it carries the full merged postings) and
	// the replicated structural data, so reassignment keeps the answer
	// exact.
	startExec := time.Now()
	covers := make([][]int, n)
	var pending []int // partitions needing a (re)assignment
	for p := 0; p < n; p++ {
		if alive[p] {
			covers[p] = append(covers[p], p)
		} else {
			pending = append(pending, p)
		}
	}
	wireLists := EncodeLists(merged)
	streams := make([][]exec.Result, 0, n)
	// Bounded reassignment rounds: each round either succeeds or marks
	// at least one more shard dead, so n rounds always suffice.
	for round := 0; round < n; round++ {
		// Distribute pending partitions round-robin over live shards.
		if len(pending) > 0 {
			sortInts(pending)
			var hosts []int
			for i := range c.groups {
				if alive[i] {
					hosts = append(hosts, i)
				}
			}
			if len(hosts) == 0 {
				return nil, nil, fmt.Errorf("%w: no shard left to execute partitions %v", ErrNoQuorum, pending)
			}
			for j, p := range pending {
				covers[hosts[j%len(hosts)]] = append(covers[hosts[j%len(hosts)]], p)
			}
			if round > 0 {
				c.reassignments.Add(int64(len(pending)))
				c.opts.Logf("shard: reassigned partitions %v to surviving shards", pending)
			}
			pending = nil
		}
		// Fan this round's requests to shards with uncollected covers.
		type execOut struct {
			resp ExecResponse
			err  error
		}
		// Dense per-shard slots, not a map: the gather below walks shards
		// in index order so lost-shard logs, the pending list, and the
		// stream order feeding the merge are identical across runs.
		outs := make([]*execOut, n)
		var ewg sync.WaitGroup
		for i := range c.groups {
			if !alive[i] || len(covers[i]) == 0 {
				continue
			}
			ewg.Add(1)
			go func(i int) {
				defer ewg.Done()
				parts := covers[i]
				out := &execOut{}
				out.err = c.groups[i].do(ctx, "/shard/execute", ExecRequest{
					Keywords:       keywords,
					K:              fetchK,
					Strategy:       uint8(strat),
					N:              n,
					Parts:          parts,
					Lists:          wireLists,
					GlobalPostings: globalPostings,
					GlobalKeywords: globalKeywords,
				}, &out.resp, c.opts.Retry)
				if out.err == nil && out.resp.NetsCRC != wantCRC {
					c.crcMismatches.Add(1)
					out.err = fmt.Errorf("shard %d derived networks CRC %08x, coordinator %08x — mismatched structural data?", i, out.resp.NetsCRC, wantCRC)
				}
				outs[i] = out
			}(i)
		}
		ewg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		for i, out := range outs {
			if out == nil {
				continue // shard had no cover this round
			}
			if out.err != nil {
				c.opts.Logf("shard: execute phase lost shard %d: %v", i, out.err)
				alive[i] = false
				pending = append(pending, covers[i]...)
				covers[i] = nil
				continue
			}
			stream := make([]exec.Result, 0, len(out.resp.Results))
			for _, wr := range out.resp.Results {
				pi := int(wr.Ord >> 32)
				if pi < 0 || pi >= len(q.Nets) {
					return nil, nil, fmt.Errorf("shard: shard %d returned result for plan %d of %d", i, pi, len(q.Nets))
				}
				stream = append(stream, exec.Result{Net: q.Nets[pi], Bind: wr.Bind, Score: wr.Score, Ord: wr.Ord})
			}
			streams = append(streams, stream)
			covers[i] = nil
		}
		if len(pending) == 0 {
			break
		}
	}
	if len(pending) > 0 {
		return nil, nil, fmt.Errorf("%w: partitions %v still unexecuted after reassignment", ErrNoQuorum, pending)
	}
	c.executeLat.Observe(time.Since(startExec))
	trace.Add(obs.Span{Stage: "scatter-execute", Start: startExec, Duration: time.Since(startExec), In: int64(n), Out: int64(len(streams))})

	// Merge the per-shard streams on the canonical order with top-k
	// cutoff, then apply the single-node rank stage's minimality filter.
	startMerge := time.Now()
	out := MergeTopK(streams, fetchK)
	if c.sys.Opts.StrictMinimal {
		kept := out[:0]
		for _, r := range out {
			if exec.IsMinimal(src, r) {
				kept = append(kept, r)
			}
		}
		out = kept
	}
	if !rank.IsDefault(sc) {
		// Re-rank exactly as the single-node rank stage would: the
		// query-scoped source carries the globally merged postings, so
		// content-weighted costs match a single node's byte for byte.
		out = sc.Rank(rank.Context{TSS: c.sys.TSS, Index: src, Keywords: q.Norm}, out, k)
	}
	c.mergeLat.Observe(time.Since(startMerge))
	trace.Add(obs.Span{Stage: "merge", Start: startMerge, Duration: time.Since(startMerge), In: int64(len(streams)), Out: int64(len(out))})
	return out, q.Relaxation, nil
}

// MergeTopK merges per-shard result streams — each ascending in the
// canonical (Score, Ord) order — into the globally first k results
// (k ≤ 0 means all), with early termination at the cutoff. Duplicate
// results (an overlapping cover after a mid-query reassignment race)
// share an Ord, order adjacently, and are dropped defensively; disjoint
// covers produce none.
func MergeTopK(streams [][]exec.Result, k int) []exec.Result {
	idx := make([]int, len(streams))
	var out []exec.Result
	for {
		best := -1
		for s := range streams {
			if idx[s] >= len(streams[s]) {
				continue
			}
			if best < 0 || exec.OrdLess(streams[s][idx[s]], streams[best][idx[best]]) {
				best = s
			}
		}
		if best < 0 {
			return out
		}
		r := streams[best][idx[best]]
		idx[best]++
		if len(out) > 0 && out[len(out)-1].Ord == r.Ord {
			continue
		}
		out = append(out, r)
		if k > 0 && len(out) >= k {
			return out
		}
	}
}

// ShardStates probes every replica of every group for /healthz and
// /debug surfaces: a replica whose breaker is open is reported
// unavailable without a probe (that is the breaker's point); the rest
// answer a short stats request. Each group folds to one ShardState —
// as available as its healthiest replica, since any live replica can
// answer for the partition — with the per-replica breakdown (address,
// breaker state, last error) alongside so an operator can see which
// replica of a group is sick. Probes are cached for HealthTTL so the
// serving layer's per-query health check does not cost a fan-out each
// time.
func (c *Coordinator) ShardStates() []qserve.ShardState {
	if c.opts.HealthTTL > 0 {
		c.stMu.Lock()
		if c.stCache != nil && time.Since(c.stAt) < c.opts.HealthTTL {
			cached := append([]qserve.ShardState(nil), c.stCache...)
			c.stMu.Unlock()
			return cached
		}
		c.stMu.Unlock()
	}
	states := make([]qserve.ShardState, len(c.groups))
	var wg sync.WaitGroup
	for i, g := range c.groups {
		wg.Add(1)
		go func(i int, g *replicaGroup) {
			defer wg.Done()
			states[i] = c.groupState(i, g)
		}(i, g)
	}
	wg.Wait()
	if c.opts.HealthTTL > 0 {
		c.stMu.Lock()
		c.stCache = append([]qserve.ShardState(nil), states...)
		c.stAt = time.Now()
		c.stMu.Unlock()
	}
	return states
}

// healthRank orders index health states best-first for the group fold.
func healthRank(state string) int {
	switch state {
	case string(core.IndexOK):
		return 0
	case string(core.IndexDegraded):
		return 1
	default:
		return 2
	}
}

// groupState probes one group's replicas concurrently and folds them
// into the group's ShardState.
func (c *Coordinator) groupState(i int, g *replicaGroup) qserve.ShardState {
	reps := make([]qserve.ReplicaState, len(g.replicas))
	var wg sync.WaitGroup
	for ri, cl := range g.replicas {
		wg.Add(1)
		go func(ri int, cl *shardClient) {
			defer wg.Done()
			rs := qserve.ReplicaState{
				Replica:   ri,
				Addr:      cl.base,
				Breaker:   cl.breakerLabel(),
				LastErr:   cl.lastError(),
				P50Millis: cl.lat.Quantile(0.50).Milliseconds(),
				P99Millis: cl.lat.Quantile(0.99).Milliseconds(),
			}
			if cl.broken() {
				rs.State, rs.Detail = string(core.IndexUnavailable), "circuit breaker open"
				reps[ri] = rs
				return
			}
			ctx, cancel := context.WithTimeout(context.Background(), c.opts.RequestTimeout)
			defer cancel()
			var sr StatsResponse
			if err := cl.probe(ctx, "/shard/stats", struct{}{}, &sr, fault.RetryPolicy{Attempts: 1}); err != nil {
				rs.State, rs.Detail = string(core.IndexUnavailable), err.Error()
			} else if sr.Shard != i || sr.Scheme != HashScheme {
				rs.State = string(core.IndexUnavailable)
				rs.Detail = fmt.Sprintf("identifies as shard %d scheme %q", sr.Shard, sr.Scheme)
			} else {
				rs.State, rs.Detail = sr.IndexState, sr.IndexErr
			}
			reps[ri] = rs
		}(ri, cl)
	}
	wg.Wait()
	best := 0
	for ri := 1; ri < len(reps); ri++ {
		if healthRank(reps[ri].State) < healthRank(reps[best].State) {
			best = ri
		}
	}
	return qserve.ShardState{
		ID:        i,
		Addr:      reps[best].Addr,
		State:     reps[best].State,
		Detail:    reps[best].Detail,
		P50Millis: reps[best].P50Millis,
		P99Millis: reps[best].P99Millis,
		Replicas:  reps,
	}
}

// IndexHealthState implements the serving layer's health probe with the
// quorum rule: unavailable only when fewer than a quorum of shard
// groups have a live replica; degraded while any replica is down or
// degraded — a group on its last replica still answers exactly, but an
// operator should look; ok otherwise.
func (c *Coordinator) IndexHealthState() (core.IndexHealth, error) {
	states := c.ShardStates()
	live, notOK := 0, 0
	var firstDetail string
	for _, st := range states {
		if st.State != string(core.IndexUnavailable) {
			live++
		}
		sick := st.State != string(core.IndexOK)
		detail := fmt.Sprintf("shard %d at %s: %s (%s)", st.ID, st.Addr, st.State, st.Detail)
		for _, r := range st.Replicas {
			if r.State != string(core.IndexOK) && !sick {
				sick = true
				detail = fmt.Sprintf("shard %d replica %d at %s: %s (%s)", st.ID, r.Replica, r.Addr, r.State, r.Detail)
			}
		}
		if sick {
			notOK++
			if firstDetail == "" {
				firstDetail = detail
			}
		}
	}
	if live < c.quorum() {
		return core.IndexUnavailable, fmt.Errorf("%d of %d shards reachable, quorum is %d; %s", live, len(states), c.quorum(), firstDetail)
	}
	if notOK > 0 {
		return core.IndexDegraded, fmt.Errorf("%d of %d shards not ok; %s", notOK, len(states), firstDetail)
	}
	return core.IndexOK, nil
}

// CoordSnapshot is the coordinator's Stats view, shaped for JSON.
type CoordSnapshot struct {
	N             int   `json:"n"`
	Replicas      int   `json:"replicas"`
	Quorum        int   `json:"quorum"`
	Queries       int64 `json:"queries"`
	Degraded      int64 `json:"degraded"`
	Reassignments int64 `json:"reassignments"`
	CRCMismatches int64 `json:"crc_mismatches"`
	// Failovers counts group requests a non-preferred replica saved
	// after its sibling failed; Hedges/HedgeWins count hedged requests
	// fired and those the hedge answered first.
	Failovers  int64               `json:"failovers"`
	Hedges     int64               `json:"hedges"`
	HedgeWins  int64               `json:"hedge_wins"`
	LookupP50  time.Duration       `json:"lookup_p50_ns"`
	ExecuteP50 time.Duration       `json:"execute_p50_ns"`
	MergeP50   time.Duration       `json:"merge_p50_ns"`
	Shards     []qserve.ShardState `json:"shards"`
}

// Stats snapshots the coordinator counters, phase latencies, failover
// and hedging figures, and the per-shard (per-replica) states.
func (c *Coordinator) Stats() CoordSnapshot {
	var failovers int64
	for _, g := range c.groups {
		failovers += g.failovers.Load()
	}
	snap := CoordSnapshot{
		N:             len(c.groups),
		Replicas:      c.Replicas(),
		Quorum:        c.quorum(),
		Queries:       c.queries.Load(),
		Degraded:      c.degraded.Load(),
		Reassignments: c.reassignments.Load(),
		CRCMismatches: c.crcMismatches.Load(),
		Failovers:     failovers,
		Hedges:        c.hedge.fired.Load(),
		HedgeWins:     c.hedge.wins.Load(),
		LookupP50:     c.lookupLat.Quantile(0.50),
		ExecuteP50:    c.executeLat.Quantile(0.50),
		MergeP50:      c.mergeLat.Quantile(0.50),
		Shards:        c.ShardStates(),
	}
	sort.Slice(snap.Shards, func(i, j int) bool { return snap.Shards[i].ID < snap.Shards[j].ID })
	return snap
}
