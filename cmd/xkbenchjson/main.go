// Command xkbenchjson turns `go test -bench` text output into a
// machine-readable benchmark trajectory file. It reads the test binary's
// stdout on stdin, tees every line through unchanged (so the run stays
// readable in the terminal and in CI logs), and writes the parsed
// results as JSON with -out. The committed BENCH_*.json files at the
// repo root are produced this way; regenerating one and diffing it is
// the cheap check that a change did not regress the write or read path.
//
// Usage:
//
//	go test -run xxx -bench BenchmarkSegidx -benchmem ./internal/segidx/ |
//	    xkbenchjson -out BENCH_segidx.json
//
// Each benchmark line ("BenchmarkFoo/cold-8  100  12345 ns/op  67 B/op
// 8 allocs/op") becomes one entry with the sub-benchmark path preserved,
// so cold/warm and synced/nosync variants stay distinguishable. Header
// lines (goos, goarch, pkg, cpu) are captured as run metadata. The exit
// status is nonzero when the input contains a test failure or no
// benchmark results at all, so a piped Makefile target cannot silently
// commit an empty trajectory.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// benchResult is one parsed benchmark line.
type benchResult struct {
	// Name is the benchmark path without the "Benchmark" prefix or the
	// trailing -GOMAXPROCS suffix, e.g. "SegidxLookup/cold".
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix of the line (0 when absent).
	Procs      int   `json:"procs,omitempty"`
	Iterations int64 `json:"iterations"`
	// NsPerOp is the reported ns/op (fractional for sub-nanosecond ops).
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	MBPerSec    *float64 `json:"mb_per_sec,omitempty"`
	// Extra holds any custom ReportMetric units, keyed by unit string.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// benchFile is the JSON document written to -out.
type benchFile struct {
	GOOS       string        `json:"goos,omitempty"`
	GOARCH     string        `json:"goarch,omitempty"`
	Pkg        string        `json:"pkg,omitempty"`
	CPU        string        `json:"cpu,omitempty"`
	Benchmarks []benchResult `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "write the parsed results as JSON to this file")
	flag.Parse()

	var doc benchFile
	failed := false
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			doc.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBenchLine(line); ok {
				doc.Benchmarks = append(doc.Benchmarks, r)
			}
		case strings.HasPrefix(line, "--- FAIL") || line == "FAIL" || strings.HasPrefix(line, "FAIL\t"):
			failed = true
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if failed {
		fatal(fmt.Errorf("benchmark run failed; not writing %s", *out))
	}
	if len(doc.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark results on stdin (is -bench set?)"))
	}
	if *out != "" {
		buf, err := json.MarshalIndent(&doc, "", "  ")
		if err != nil {
			fatal(err)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "xkbenchjson: %d results -> %s\n", len(doc.Benchmarks), *out)
	}
}

// parseBenchLine parses one result line: a name, an iteration count,
// then (value, unit) pairs.
func parseBenchLine(line string) (benchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return benchResult{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchResult{}, false
	}
	r := benchResult{Iterations: iters}
	r.Name, r.Procs = splitProcs(strings.TrimPrefix(fields[0], "Benchmark"))
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchResult{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
			seen = true
		case "B/op":
			b := v
			r.BytesPerOp = &b
		case "allocs/op":
			a := v
			r.AllocsPerOp = &a
		case "MB/s":
			m := v
			r.MBPerSec = &m
		default:
			if r.Extra == nil {
				r.Extra = make(map[string]float64)
			}
			r.Extra[unit] = v
		}
	}
	return r, seen
}

// splitProcs strips the trailing -GOMAXPROCS suffix go test appends to
// every benchmark name ("Foo/cold-8" -> "Foo/cold", 8). A trailing
// -<digits> that is part of a sub-benchmark's own name is
// indistinguishable from the suffix; the repo's benchmarks avoid that.
func splitProcs(name string) (string, int) {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name, 0
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil || n <= 0 {
		return name, 0
	}
	return name[:i], n
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xkbenchjson:", err)
	os.Exit(1)
}
