// Command xkvet is the repo's static-analysis gate: it loads every
// package in the module, type-checks it (standard library importers
// only — no x/tools), runs the internal/lint analyzers, and reports
// findings. It exits 0 when clean, 1 when there are findings, 2 on
// load/usage errors, regardless of output format.
//
// Output formats (-format):
//
//	text   one `file:line: [analyzer] message` per finding (default)
//	json   the version-1 JSON report (stable schema; see internal/lint)
//	sarif  minimal SARIF 2.1.0 for CI code-scanning uploads
//
// -sarif <path> additionally writes the SARIF log to a file no matter
// which -format is selected, so CI can keep human-readable text on
// stdout and still archive a machine-readable artifact.
//
// Findings are suppressed only by an explicit annotated comment on the
// offending line or the line above:
//
//	//xk:ignore <analyzer> <reason>
//
// A missing reason, an unknown analyzer name, or a doubled-up directive
// is itself a finding, so a typo can never silently disable a check.
//
// Usage:
//
//	xkvet [-dir .] [-analyzers keyjoin,ctxflow,...] [-format text|json|sarif] [-sarif out.sarif] [-list]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	dir := flag.String("dir", ".", "any directory inside the module to vet")
	names := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	format := flag.String("format", "text", "output format: text, json, or sarif")
	sarifOut := flag.String("sarif", "", "also write a SARIF 2.1.0 log to this file")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	all := lint.Analyzers()
	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *format != "text" && *format != "json" && *format != "sarif" {
		fmt.Fprintf(os.Stderr, "xkvet: unknown format %q (want text, json, or sarif)\n", *format)
		os.Exit(2)
	}

	selected := all
	if *names != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range all {
			byName[a.Name] = a
		}
		selected = nil
		for _, n := range strings.Split(*names, ",") {
			n = strings.TrimSpace(n)
			a, ok := byName[n]
			if !ok {
				fmt.Fprintf(os.Stderr, "xkvet: unknown analyzer %q (use -list)\n", n)
				os.Exit(2)
			}
			selected = append(selected, a)
		}
	}

	root, err := lint.ModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xkvet:", err)
		os.Exit(2)
	}
	findings, err := lint.CheckModule(root, selected)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xkvet:", err)
		os.Exit(2)
	}

	if *sarifOut != "" {
		b, err := lint.FormatSARIF(findings, selected)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xkvet:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*sarifOut, b, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "xkvet:", err)
			os.Exit(2)
		}
	}

	switch *format {
	case "json":
		b, err := lint.FormatJSON(findings)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xkvet:", err)
			os.Exit(2)
		}
		os.Stdout.Write(b)
	case "sarif":
		b, err := lint.FormatSARIF(findings, selected)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xkvet:", err)
			os.Exit(2)
		}
		os.Stdout.Write(b)
	default:
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "xkvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
