package persist_test

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/datagen"
	"repro/internal/fault"
	"repro/internal/persist"
)

// TestKillMidSaveLeavesPreviousGenerationLoadable simulates the process
// dying at assorted points while SaveFile streams the snapshot, and
// asserts the previous generation keeps loading and answering queries —
// the whole point of the temp-file + rename protocol.
func TestKillMidSaveLeavesPreviousGenerationLoadable(t *testing.T) {
	sys := loadFig1(t)
	spec := datagen.TPCHSpec()
	path := filepath.Join(t.TempDir(), "snap.xkdb")
	if err := persist.SaveFile(path, sys, spec); err != nil {
		t.Fatal(err)
	}
	want, err := sys.QueryAll([]string{"john", "vcr"})
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("probe query returned nothing; test is vacuous")
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	for _, cut := range []int64{0, 1, st.Size() / 2, st.Size() - 1} {
		restore := persist.SetSaveWriter(func(f *os.File) io.Writer {
			return fault.LimitWriter(f, cut)
		})
		err := persist.SaveFile(path, sys, spec)
		restore()
		if !errors.Is(err, fault.ErrCrash) {
			t.Fatalf("cut %d: SaveFile err = %v, want ErrCrash", cut, err)
		}
		for _, opts := range []persist.LoadOptions{
			{DiskIndex: true},
			{DiskIndex: true, SelfHeal: true},
		} {
			restored, err := persist.LoadFileOpts(path, opts)
			if err != nil {
				t.Fatalf("cut %d, opts %+v: previous generation unloadable: %v", cut, opts, err)
			}
			got, err := restored.QueryAll([]string{"john", "vcr"})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("cut %d: %d results, want %d", cut, len(got), len(want))
			}
			for i := range got {
				if got[i].Key() != want[i].Key() {
					t.Fatalf("cut %d: result %d differs after crash-recovery load", cut, i)
				}
			}
		}
	}
}

// TestSelfHealQuarantinesCorruptSidecar corrupts the sidecar's posting
// region on disk and asserts a SelfHeal load still answers correctly —
// from the quarantined-and-rebuilt in-memory index — while a plain
// DiskIndex load of a sidecar with a wrong fingerprint stays a hard
// error rather than a silently wrong answer.
func TestSelfHealQuarantinesCorruptSidecar(t *testing.T) {
	sys := loadFig1(t)
	spec := datagen.TPCHSpec()
	path := filepath.Join(t.TempDir(), "snap.xkdb")
	if err := persist.SaveFile(path, sys, spec); err != nil {
		t.Fatal(err)
	}
	// Truncating the sidecar makes Open reject it outright.
	side := persist.SidecarPath(path)
	b, err := os.ReadFile(side)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(side, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := persist.LoadFileOpts(path, persist.LoadOptions{DiskIndex: true}); err == nil {
		t.Fatal("plain DiskIndex load accepted a truncated sidecar")
	}

	var degradedWith error
	restored, err := persist.LoadFileOpts(path, persist.LoadOptions{
		DiskIndex: true,
		SelfHeal:  true,
		OnDegrade: func(cause error) { degradedWith = cause },
	})
	if err != nil {
		t.Fatalf("SelfHeal load failed: %v", err)
	}
	if degradedWith == nil {
		t.Fatal("OnDegrade not called for a truncated sidecar")
	}
	if _, err := os.Stat(side); !os.IsNotExist(err) {
		t.Fatal("corrupt sidecar not quarantined away from its path")
	}
	want, err := sys.QueryAll([]string{"john", "vcr"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.QueryAll([]string{"john", "vcr"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || len(got) == 0 {
		t.Fatalf("degraded load answered %d results, want %d (nonzero)", len(got), len(want))
	}
}
