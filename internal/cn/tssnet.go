package cn

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/tss"
)

// KeywordAt records that a TSS occurrence must contain a keyword on a
// specific schema node (the T_{k,S} notation of §4).
type KeywordAt struct {
	Keyword    string
	SchemaNode string
}

// TSSOcc is one occurrence of a target schema segment in a CTSSN.
type TSSOcc struct {
	Segment  string
	Keywords []KeywordAt // sorted by (Keyword, SchemaNode); empty = free
}

// Free reports whether the occurrence has no keyword constraint.
func (o TSSOcc) Free() bool { return len(o.Keywords) == 0 }

func (o TSSOcc) label() string {
	if o.Free() {
		return o.Segment
	}
	parts := make([]string, len(o.Keywords))
	for i, k := range o.Keywords {
		parts[i] = k.Keyword + "@" + k.SchemaNode
	}
	return o.Segment + "{" + strings.Join(parts, ",") + "}"
}

// TSSEdgeRef connects two TSS occurrences through a TSS graph edge.
type TSSEdgeRef struct {
	From, To int
	EdgeID   int // index into the TSS graph's edges
}

// TSSNetwork is a candidate TSS network (CTSSN): the reduction of a
// candidate network onto the TSS graph, which is what the optimizer
// covers with connection relations and the executor evaluates.
type TSSNetwork struct {
	Occs  []TSSOcc
	Edges []TSSEdgeRef
	// CN is the originating candidate network; its size (in schema
	// edges) is the score of every MTNN/MTTON the CTSSN produces.
	CN *Network
}

// Size returns the number of TSS edges.
func (t *TSSNetwork) Size() int { return len(t.Edges) }

// Score returns the schema-edge size of the originating CN — the score
// MTTONs of this network carry.
func (t *TSSNetwork) Score() int {
	if t.CN == nil {
		return t.Size()
	}
	return t.CN.Size()
}

// Canon returns a canonical string for isomorphism grouping.
func (t *TSSNetwork) Canon() string {
	adj := make([][]TSSEdgeRef, len(t.Occs))
	for _, e := range t.Edges {
		adj[e.From] = append(adj[e.From], e)
		adj[e.To] = append(adj[e.To], e)
	}
	var canonFrom func(v, parent int) string
	canonFrom = func(v, parent int) string {
		var subs []string
		for _, e := range adj[v] {
			other, dir := e.To, ">"
			if e.To == v {
				other, dir = e.From, "<"
			}
			if other == parent {
				continue
			}
			subs = append(subs, fmt.Sprintf("%s%d%s", dir, e.EdgeID, canonFrom(other, v)))
		}
		sort.Strings(subs)
		return t.Occs[v].label() + "(" + strings.Join(subs, "|") + ")"
	}
	best := ""
	for r := range t.Occs {
		if s := canonFrom(r, -1); best == "" || s < best {
			best = s
		}
	}
	return best
}

// String renders the CTSSN for diagnostics.
func (t *TSSNetwork) String() string {
	if len(t.Occs) == 0 {
		return "(empty)"
	}
	var parts []string
	for _, o := range t.Occs {
		parts = append(parts, o.label())
	}
	var es []string
	for _, e := range t.Edges {
		es = append(es, fmt.Sprintf("%d-%d(e%d)", e.From, e.To, e.EdgeID))
	}
	return strings.Join(parts, " ") + " / " + strings.Join(es, " ")
}

// Reduce maps a candidate network onto the TSS graph (§4): occurrences
// in the same segment connected by intra-segment edges merge into one
// TSS occurrence; dummy occurrences are contracted into the TSS edges
// whose schema paths they instantiate.
func Reduce(tg *tss.Graph, net *Network) (*TSSNetwork, error) {
	n := len(net.Occs)
	segOf := make([]string, n)
	for i, o := range net.Occs {
		segOf[i] = tg.SegmentOf(o.Schema)
		if segOf[i] == "" && !o.Free() {
			return nil, fmt.Errorf("cn: dummy occurrence %s carries keywords", o.Schema)
		}
	}
	// Union-find over occurrences; merge intra-segment edges.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, e := range net.Edges {
		if segOf[e.From] != "" && segOf[e.From] == segOf[e.To] {
			parent[find(e.From)] = find(e.To)
		}
	}
	// Create TSS occurrences per non-dummy group.
	groupIdx := make(map[int]int)
	out := &TSSNetwork{CN: net}
	for i := 0; i < n; i++ {
		if segOf[i] == "" {
			continue
		}
		r := find(i)
		if _, ok := groupIdx[r]; !ok {
			groupIdx[r] = len(out.Occs)
			out.Occs = append(out.Occs, TSSOcc{Segment: segOf[r]})
		}
		gi := groupIdx[r]
		for _, k := range net.Occs[i].Keywords {
			out.Occs[gi].Keywords = append(out.Occs[gi].Keywords, KeywordAt{Keyword: k, SchemaNode: net.Occs[i].Schema})
		}
	}
	for gi := range out.Occs {
		ks := out.Occs[gi].Keywords
		sort.Slice(ks, func(a, b int) bool {
			if ks[a].Keyword != ks[b].Keyword {
				return ks[a].Keyword < ks[b].Keyword
			}
			return ks[a].SchemaNode < ks[b].SchemaNode
		})
	}
	// Contract dummy chains into TSS edges. Walk from every non-dummy
	// occurrence along edges whose far side is a dummy (or directly
	// another segment), accumulating the schema path.
	adj := net.adjacency()
	seenEdge := make(map[[2]int]bool) // (minOcc,maxOcc) per CN edge consumed in a chain
	edgeKey := func(e Edge) [2]int {
		if e.From < e.To {
			return [2]int{e.From, e.To}
		}
		return [2]int{e.To, e.From}
	}
	for i := 0; i < n; i++ {
		if segOf[i] == "" {
			continue
		}
		for _, e := range adj[i] {
			other := e.From + e.To - i
			if segOf[other] == segOf[i] && segOf[other] != "" {
				continue // intra-segment, already merged
			}
			if seenEdge[edgeKey(e)] {
				continue
			}
			// Walk through dummies. Each step must keep one consistent
			// orientation (all edges forward from one end), since TSS
			// edges are forward schema paths.
			var chainOccs []int // occurrence sequence i, d1, ..., dk, j
			var chainEdges []Edge
			cur, prev := other, i
			chainOccs = append(chainOccs, i)
			chainEdges = append(chainEdges, e)
			for segOf[cur] == "" {
				chainOccs = append(chainOccs, cur)
				var next *Edge
				for _, e2 := range adj[cur] {
					o2 := e2.From + e2.To - cur
					if o2 == prev {
						continue
					}
					if next != nil {
						return nil, fmt.Errorf("cn: dummy occurrence %s branches; cannot map to a TSS edge", net.Occs[cur].Schema)
					}
					cp := e2
					next = &cp
				}
				if next == nil {
					return nil, fmt.Errorf("cn: dummy occurrence %s dead-ends", net.Occs[cur].Schema)
				}
				chainEdges = append(chainEdges, *next)
				prev, cur = cur, next.From+next.To-cur
			}
			chainOccs = append(chainOccs, cur)
			for _, ce := range chainEdges {
				seenEdge[edgeKey(ce)] = true
			}
			// Orientation: forward if every edge points along the walk
			// i -> cur; backward if every edge points against it.
			fwd, bwd := true, true
			for k, ce := range chainEdges {
				a, b := chainOccs[k], chainOccs[k+1]
				if ce.From == a && ce.To == b {
					bwd = false
				} else {
					fwd = false
				}
			}
			var fromOcc, toOcc int
			var pathOccs []int
			var pathEdges []Edge
			switch {
			case fwd:
				fromOcc, toOcc = i, cur
				pathOccs = chainOccs
				pathEdges = chainEdges
			case bwd:
				fromOcc, toOcc = cur, i
				pathOccs = reversed(chainOccs)
				pathEdges = reversedEdges(chainEdges)
			default:
				return nil, fmt.Errorf("cn: mixed-direction dummy chain between %s and %s", net.Occs[i].Schema, net.Occs[cur].Schema)
			}
			eid, err := matchTSSEdge(tg, net, segOf, pathOccs, pathEdges, fromOcc, toOcc)
			if err != nil {
				return nil, err
			}
			out.Edges = append(out.Edges, TSSEdgeRef{
				From:   groupIdx[find(fromOcc)],
				To:     groupIdx[find(toOcc)],
				EdgeID: eid,
			})
		}
	}
	sort.Slice(out.Edges, func(a, b int) bool {
		ea, eb := out.Edges[a], out.Edges[b]
		if ea.From != eb.From {
			return ea.From < eb.From
		}
		if ea.To != eb.To {
			return ea.To < eb.To
		}
		return ea.EdgeID < eb.EdgeID
	})
	if len(out.Edges) != len(out.Occs)-1 {
		return nil, fmt.Errorf("cn: reduction produced %d edges for %d TSS occurrences", len(out.Edges), len(out.Occs))
	}
	return out, nil
}

// matchTSSEdge finds the TSS edge whose schema path equals the chain's
// forward-oriented schema node and edge-kind sequence.
func matchTSSEdge(tg *tss.Graph, net *Network, segOf []string, pathOccs []int, pathEdges []Edge, fromOcc, toOcc int) (int, error) {
	fromSeg, toSeg := segOf[fromOcc], segOf[toOcc]
	for _, te := range tg.Edges() {
		if te.From != fromSeg || te.To != toSeg {
			continue
		}
		if len(te.SchemaPath) != len(pathOccs)-1 {
			continue
		}
		ok := te.SchemaPath[0].From == net.Occs[pathOccs[0]].Schema
		for k, se := range te.SchemaPath {
			if !ok {
				break
			}
			if se.To != net.Occs[pathOccs[k+1]].Schema || se.Kind != pathEdges[k].Kind {
				ok = false
			}
		}
		if ok {
			return te.ID, nil
		}
	}
	return 0, fmt.Errorf("cn: no TSS edge matches chain %s -> %s", net.Occs[fromOcc].Schema, net.Occs[toOcc].Schema)
}

func reversed(xs []int) []int {
	out := make([]int, len(xs))
	for i, x := range xs {
		out[len(xs)-1-i] = x
	}
	return out
}

func reversedEdges(es []Edge) []Edge {
	out := make([]Edge, len(es))
	for i, e := range es {
		out[len(es)-1-i] = e
	}
	return out
}
