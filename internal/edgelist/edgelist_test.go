package edgelist_test

import (
	"bytes"
	"context"
	"encoding/csv"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/edgelist"
	"repro/internal/graphsource"
	"repro/internal/rank"
)

// The dataset is a graph source without importing graphsource — checked
// here so the adapter and the interface cannot drift apart.
var _ graphsource.Source = (*edgelist.Dataset)(nil)

func citationBytes(t testing.TB) (nodes, edges []byte) {
	t.Helper()
	nodes, edges, err := datagen.CitationCSV(datagen.DefaultCitationParams())
	if err != nil {
		t.Fatal(err)
	}
	return nodes, edges
}

func parse(t testing.TB, nodes, edges []byte) *edgelist.Dataset {
	t.Helper()
	ds, err := edgelist.Parse(bytes.NewReader(nodes), bytes.NewReader(edges), edgelist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// End to end: the synthetic citation dump parses, loads through the
// generic source path, and answers keyword queries under every scorer.
func TestCitationEndToEnd(t *testing.T) {
	nodes, edges := citationBytes(t)
	ds := parse(t, nodes, edges)
	p := datagen.DefaultCitationParams()
	if want := p.Papers + p.Authors + p.Venues; ds.NumEntities != want {
		t.Fatalf("NumEntities = %d, want %d", ds.NumEntities, want)
	}
	if ds.NumLinks == 0 {
		t.Fatal("no links parsed")
	}
	sys, err := graphsource.Load(ds, core.Options{Z: 6})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, scorer := range rank.Names() {
		rs, rx, err := sys.QueryScoredContext(ctx, []string{"alice", "icde"}, 5, scorer)
		if err != nil {
			t.Fatalf("%s: %v", scorer, err)
		}
		if rx != nil {
			t.Fatalf("%s: unexpected relaxation %v", scorer, rx)
		}
		if len(rs) == 0 {
			t.Fatalf("%s: no results for alice+icde", scorer)
		}
	}
}

// The same dump must always produce the same dataset: schema, spec and
// query answers are functions of the bytes, not of map iteration order.
func TestParseDeterministic(t *testing.T) {
	nodes, edges := citationBytes(t)
	a, b := parse(t, nodes, edges), parse(t, nodes, edges)
	specA, _ := a.Spec()
	specB, _ := b.Spec()
	if fmt.Sprintf("%+v", specA) != fmt.Sprintf("%+v", specB) {
		t.Fatal("two parses inferred different specs")
	}
	ctx := context.Background()
	sysA, err := graphsource.Load(a, core.Options{Z: 6})
	if err != nil {
		t.Fatal(err)
	}
	sysB, err := graphsource.Load(b, core.Options{Z: 6})
	if err != nil {
		t.Fatal(err)
	}
	rsA, err := sysA.QueryContext(ctx, []string{"alice", "icde"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	rsB, err := sysB.QueryContext(ctx, []string{"alice", "icde"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rsA) != len(rsB) {
		t.Fatalf("parses answer differently: %d vs %d results", len(rsA), len(rsB))
	}
	for i := range rsA {
		if rsA[i].Score != rsB[i].Score || rsA[i].Ord != rsB[i].Ord {
			t.Fatalf("result %d differs across parses", i)
		}
	}
}

// toTSV rewrites a CSV table tab-separated, exercising the delimiter
// sniffing on real content.
func toTSV(t *testing.T, in []byte) []byte {
	t.Helper()
	recs, err := csv.NewReader(bytes.NewReader(in)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	w := csv.NewWriter(&out)
	w.Comma = '\t'
	if err := w.WriteAll(recs); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

func TestParseTSV(t *testing.T) {
	nodes, edges := citationBytes(t)
	csvDS := parse(t, nodes, edges)
	tsvDS := parse(t, toTSV(t, nodes), toTSV(t, edges))
	if tsvDS.NumEntities != csvDS.NumEntities || tsvDS.NumLinks != csvDS.NumLinks {
		t.Fatalf("TSV parse: %d/%d, CSV parse: %d/%d",
			tsvDS.NumEntities, tsvDS.NumLinks, csvDS.NumEntities, csvDS.NumLinks)
	}
}

// Every malformed input errors loudly, naming the problem.
func TestParseErrors(t *testing.T) {
	goodNodes := "id,type,name\na1,author,Alice\np1,paper,\n"
	goodEdges := "from,to,label\np1,a1,written_by\n"
	cases := []struct {
		name, nodes, edges, want string
	}{
		{"empty nodes", "", goodEdges, "nodes file is empty"},
		{"header only", "id,type,name\n", goodEdges, "no rows"},
		{"bad nodes header", "ident,type\na1,author\n", goodEdges, "must start with id,type"},
		{"duplicate id", "id,type\na1,author\na1,author\n", goodEdges, `duplicate node id "a1"`},
		{"empty id", "id,type\n,author\n", goodEdges, "empty id"},
		{"bad type name", "id,type\na1,au thor\n", goodEdges, "not allowed"},
		{"duplicate attr column", "id,type,name,name\na1,author,x,y\n", goodEdges, "duplicate attribute column"},
		{"bad edges header", goodNodes, "src,dst,label\np1,a1,written_by\n", "must be from,to,label"},
		{"unknown endpoint", goodNodes, "from,to,label\np1,zz,written_by\n", `unknown node id "zz"`},
		{"empty endpoint", goodNodes, "from,to,label\n,a1,written_by\n", "empty endpoint"},
		{"bad label name", goodNodes, "from,to,label\np1,a1,written by\n", "not allowed"},
		{"label collides with type", goodNodes, "from,to,label\np1,a1,author\n", "collides with a node type"},
		{"label collides with attr", goodNodes, "from,to,label\na1,p1,name\n", `collides with attribute "name"`},
		{"ragged row", "id,type\na1,author,extra\n", goodEdges, "wrong number of fields"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := edgelist.Parse(strings.NewReader(tc.nodes), strings.NewReader(tc.edges), edgelist.Options{})
			if err == nil {
				t.Fatal("malformed input accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// An entity-only dump (no edges file content) is a valid dataset.
func TestParseNoEdges(t *testing.T) {
	ds, err := edgelist.Parse(
		strings.NewReader("id,type,name\na1,author,Alice\n"),
		strings.NewReader(""), edgelist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumEntities != 1 || ds.NumLinks != 0 {
		t.Fatalf("counts = %d/%d", ds.NumEntities, ds.NumLinks)
	}
	sys, err := graphsource.Load(ds, core.Options{Z: 6})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := sys.QueryContext(context.Background(), []string{"alice"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 {
		t.Fatalf("%d results for alice", len(rs))
	}
}

// TestChaosEdgelist asserts the robustness invariant on the parser:
// under seeded byte corruption of a valid dump it either fails loudly
// or produces a dataset whose graph still validates and loads — never
// a silent half-graph or a panic.
func TestChaosEdgelist(t *testing.T) {
	nodes, edges := citationBytes(t)
	rng := rand.New(rand.NewSource(31))
	load := 0
	for i := 0; i < 200; i++ {
		n := append([]byte(nil), nodes...)
		e := append([]byte(nil), edges...)
		victim := n
		if rng.Intn(2) == 1 {
			victim = e
		}
		for flips := 1 + rng.Intn(3); flips > 0; flips-- {
			victim[rng.Intn(len(victim))] ^= byte(1 << rng.Intn(8))
		}
		ds, err := edgelist.Parse(bytes.NewReader(n), bytes.NewReader(e), edgelist.Options{})
		if err != nil {
			continue // loud failure is a correct outcome
		}
		// Accepted: the dump must actually be loadable.
		if _, err := graphsource.Prepare(ds); err != nil {
			t.Fatalf("seed %d: parse accepted a dump that does not load: %v", i, err)
		}
		load++
	}
	t.Logf("chaos: %d/200 corrupted dumps still loaded", load)
}

func FuzzParse(f *testing.F) {
	nodes, edges := citationBytes(f)
	f.Add(string(nodes), string(edges))
	f.Add("id,type,name\na1,author,Alice\n", "from,to,label\na1,a1,cites\n")
	f.Add("id\ttype\na1\tauthor\n", "from\tto\tlabel\na1\ta1\tcites\n")
	f.Add("", "")
	f.Add("id,type\na1,author\n", "from,to,label\na1,zz,cites\n")
	f.Fuzz(func(t *testing.T, ns, es string) {
		ds, err := edgelist.Parse(strings.NewReader(ns), strings.NewReader(es), edgelist.Options{})
		if err != nil {
			return
		}
		// Anything accepted must at least prepare without error: the
		// inferred schema, spec and data have to agree with each other.
		if _, err := graphsource.Prepare(ds); err != nil {
			t.Fatalf("accepted dump does not prepare: %v", err)
		}
	})
}
