package core

import (
	"container/list"
	"context"
	"sync"

	"repro/internal/cn"
	"repro/internal/exec"
	"repro/internal/kwindex"
	"repro/internal/optimizer"
	"repro/internal/pipeline"
	"repro/internal/rank"
)

// netMemo caches generated candidate networks per (keyword-to-schema-node
// signature, Z): the CN generator's output depends only on which schema
// nodes hold each keyword, not on the keyword strings, so queries with
// the same "shape" (e.g. any two author names) share one generation.
// Cached networks carry positional placeholder keywords that the
// pipeline's generate stage substitutes per query. The memo is a bounded
// LRU owned by one System: it used to be a package-global sync.Map keyed
// by *schema.Graph, which leaked every loaded system's networks for the
// life of the process.
type netMemo struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recent
	m   map[string]*list.Element
}

// netMemoCap bounds the distinct keyword shapes memoized per System.
const netMemoCap = 256

type netMemoEntry struct {
	sig  string
	nets []*cn.Network
}

func newNetMemo(capacity int) *netMemo {
	return &netMemo{cap: capacity, ll: list.New(), m: make(map[string]*list.Element)}
}

func (mm *netMemo) get(sig string) ([]*cn.Network, bool) {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	el, ok := mm.m[sig]
	if !ok {
		return nil, false
	}
	mm.ll.MoveToFront(el)
	return el.Value.(*netMemoEntry).nets, true
}

func (mm *netMemo) put(sig string, nets []*cn.Network) {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	if el, ok := mm.m[sig]; ok {
		el.Value.(*netMemoEntry).nets = nets
		mm.ll.MoveToFront(el)
		return
	}
	mm.m[sig] = mm.ll.PushFront(&netMemoEntry{sig: sig, nets: nets})
	for mm.cap > 0 && mm.ll.Len() > mm.cap {
		oldest := mm.ll.Back()
		mm.ll.Remove(oldest)
		delete(mm.m, oldest.Value.(*netMemoEntry).sig)
	}
}

func (mm *netMemo) len() int {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	return mm.ll.Len()
}

// Get and Put implement pipeline.NetCache.
func (mm *netMemo) Get(sig string) ([]*cn.Network, bool) { return mm.get(sig) }

// Put stores the generated networks for a shape signature.
func (mm *netMemo) Put(sig string, nets []*cn.Network) { mm.put(sig, nets) }

// newPipeline assembles the staged query path over the System's current
// backends. Built per call so swapping System.Index (e.g. to a
// disk-backed reader) or toggling options keeps taking effect exactly as
// it did when the query path read the fields directly; the stages
// themselves are stateless and the memo and metrics sinks are shared.
func (s *System) newPipeline() *pipeline.Pipeline {
	return pipeline.New(pipeline.Config{
		Schema:        s.Schema,
		TSS:           s.TSS,
		Index:         s.Index,
		Z:             s.Opts.Z,
		Workers:       s.Opts.Workers,
		StrictMinimal: s.Opts.StrictMinimal,
		Scorer:        s.scorer(),
		Relax:         s.Opts.Relax,
		NetCache:      s.memo(),
		NewOptimizer:  s.newOptimizer,
		NewExecutor:   s.newExecutor,
		Metrics:       s.PipelineMetrics(),
	})
}

// scorer resolves the System's configured default scorer. Opts.Scorer
// is validated by LoadPrepared and by every flag surface; an invalid
// name reaching this point is a programming error and panics rather
// than silently ranking by the wrong order.
func (s *System) scorer() rank.Scorer {
	sc, err := rank.New(s.Opts.Scorer)
	if err != nil {
		panic(err)
	}
	return sc
}

// resolveScorer resolves a per-query scorer name: "" falls back to the
// System default, anything else must name a shipped scorer.
func (s *System) resolveScorer(name string) (rank.Scorer, error) {
	if name == "" {
		name = s.Opts.Scorer
	}
	return rank.New(name)
}

// run drives a query through the pipeline.
func (s *System) run(ctx context.Context, q *pipeline.Query) error {
	return s.newPipeline().Run(ctx, q)
}

// PipelineWith assembles the staged query path over the System's
// structural data (schema, TSS, store, decomposition) with a substitute
// master-index source. The scatter-gather serving path uses it to run
// discovery, CN generation and planning against a query-scoped source
// carrying globally merged postings, so every shard derives the exact
// plan list a single node would. The CN memo is shared with the normal
// path: it is keyed by keyword shape, which the source fully determines.
func (s *System) PipelineWith(ix kwindex.Source) *pipeline.Pipeline {
	return pipeline.New(pipeline.Config{
		Schema:        s.Schema,
		TSS:           s.TSS,
		Index:         ix,
		Z:             s.Opts.Z,
		Workers:       s.Opts.Workers,
		StrictMinimal: s.Opts.StrictMinimal,
		Scorer:        s.scorer(),
		Relax:         s.Opts.Relax,
		NetCache:      s.memo(),
		NewOptimizer:  func() *optimizer.Optimizer { return s.newOptimizerWith(ix) },
		NewExecutor:   func() *exec.Executor { return s.newExecutorWith(ix) },
		Metrics:       s.PipelineMetrics(),
	})
}

// ExecutorWith builds an executor over the System's connection store
// with a substitute master-index source (keyword-filter pushdown and
// minimality checks read the index).
func (s *System) ExecutorWith(ix kwindex.Source) *exec.Executor {
	return s.newExecutorWith(ix)
}

// Networks runs the keyword discoverer, the CN generator and the CTSSN
// reduction for a keyword query and returns the candidate TSS networks
// in ascending score order (paper §4). Keywords are tokenized
// case-insensitively.
func (s *System) Networks(keywords []string) ([]*cn.TSSNetwork, error) {
	q := &pipeline.Query{Keywords: keywords, Mode: pipeline.ModeNetworks}
	if err := s.run(context.Background(), q); err != nil {
		return nil, err
	}
	return q.Nets, nil
}

// newExecutor builds an executor honoring the cache options.
func (s *System) newExecutor() *exec.Executor { return s.newExecutorWith(s.Index) }

func (s *System) newExecutorWith(ix kwindex.Source) *exec.Executor {
	ex := &exec.Executor{Store: s.Store, TSS: s.TSS, Index: ix}
	if s.Opts.CacheSize >= 0 {
		ex.Cache = exec.NewLookupCache(s.Opts.CacheSize)
	}
	return ex
}

// newOptimizer builds the plan optimizer over the loaded decomposition.
func (s *System) newOptimizer() *optimizer.Optimizer { return s.newOptimizerWith(s.Index) }

func (s *System) newOptimizerWith(ix kwindex.Source) *optimizer.Optimizer {
	return &optimizer.Optimizer{
		TSS:       s.TSS,
		Store:     s.Store,
		Index:     ix,
		Stats:     s.Stats,
		Fragments: s.Decomp.Fragments,
		MaxJoins:  s.Opts.B,
	}
}

// Plans generates and optimizes the plans of a keyword query, in
// ascending score order.
func (s *System) Plans(keywords []string) ([]exec.Planned, error) {
	q := &pipeline.Query{Keywords: keywords, Mode: pipeline.ModePlans}
	if err := s.run(context.Background(), q); err != nil {
		return nil, err
	}
	return q.Plans, nil
}

// Query answers a keyword proximity query with the top-k results,
// evaluated by a worker pool over the candidate networks smallest-first
// (the web-search-engine-like presentation of §3.1/§6).
func (s *System) Query(keywords []string, k int) ([]exec.Result, error) {
	return s.QueryContext(context.Background(), keywords, k)
}

// QueryContext is Query with cooperative cancellation: a cancelled
// context stops the in-flight join loops and the call returns ctx's
// error (the partial results are discarded).
func (s *System) QueryContext(ctx context.Context, keywords []string, k int) ([]exec.Result, error) {
	q := &pipeline.Query{
		Keywords: keywords,
		Mode:     pipeline.ModeTopK,
		K:        k,
		Strategy: exec.NestedLoop,
	}
	if err := s.run(ctx, q); err != nil {
		return nil, err
	}
	return q.Results, nil
}

// QueryScoredContext answers a top-k keyword query ranked by the named
// scorer ("" falls back to Opts.Scorer, then to edgecount — the
// paper's ranking, byte-identical to QueryContext). The returned
// Relaxation is non-nil exactly when Opts.Relax is on and the query was
// rewritten to be answerable; callers must surface it.
func (s *System) QueryScoredContext(ctx context.Context, keywords []string, k int, scorer string) ([]exec.Result, *pipeline.Relaxation, error) {
	sc, err := s.resolveScorer(scorer)
	if err != nil {
		return nil, nil, err
	}
	q := &pipeline.Query{
		Keywords: keywords,
		Mode:     pipeline.ModeTopK,
		K:        k,
		Strategy: exec.NestedLoop,
		Scorer:   sc,
	}
	if err := s.run(ctx, q); err != nil {
		return nil, nil, err
	}
	return q.Results, q.Relaxation, nil
}

// QueryAllScoredContext is QueryScoredContext without the top-k bound:
// every result of every candidate network, ranked by the named scorer,
// using the automatic evaluation strategy.
func (s *System) QueryAllScoredContext(ctx context.Context, keywords []string, scorer string) ([]exec.Result, *pipeline.Relaxation, error) {
	sc, err := s.resolveScorer(scorer)
	if err != nil {
		return nil, nil, err
	}
	q := &pipeline.Query{
		Keywords: keywords,
		Mode:     pipeline.ModeAll,
		Strategy: exec.AutoStrategy,
		Scorer:   sc,
	}
	if err := s.run(ctx, q); err != nil {
		return nil, nil, err
	}
	return q.Results, q.Relaxation, nil
}

// QueryStream starts the page-by-page presentation of §3.1: workers
// evaluate the candidate networks smallest-first into a queue the
// caller drains with Stream.Next. Close the stream when done.
func (s *System) QueryStream(keywords []string) (*exec.Stream, error) {
	return s.QueryStreamContext(context.Background(), keywords)
}

// QueryStreamContext is QueryStream tied to a context: cancelling ctx
// closes the stream and stops its workers mid-join. The caller should
// still Close the stream when done.
func (s *System) QueryStreamContext(ctx context.Context, keywords []string) (*exec.Stream, error) {
	q := &pipeline.Query{
		Keywords: keywords,
		Mode:     pipeline.ModeStream,
		Strategy: exec.NestedLoop,
	}
	if err := s.run(ctx, q); err != nil {
		return nil, err
	}
	return q.Stream, nil
}

// QueryAll returns every result of every candidate network, sorted by
// score, using the automatic strategy (hash joins on unindexed
// decompositions, nested loops otherwise).
func (s *System) QueryAll(keywords []string) ([]exec.Result, error) {
	return s.QueryAllStrategy(keywords, exec.AutoStrategy)
}

// QueryAllContext is QueryAll with cooperative cancellation.
func (s *System) QueryAllContext(ctx context.Context, keywords []string) ([]exec.Result, error) {
	return s.QueryAllStrategyContext(ctx, keywords, exec.AutoStrategy)
}

// QueryAllStrategy is QueryAll with an explicit evaluation strategy.
func (s *System) QueryAllStrategy(keywords []string, strat exec.Strategy) ([]exec.Result, error) {
	return s.QueryAllStrategyContext(context.Background(), keywords, strat)
}

// QueryAllStrategyContext is QueryAllStrategy with cooperative
// cancellation: a cancelled context terminates the in-flight plan
// evaluation and the call returns ctx's error.
func (s *System) QueryAllStrategyContext(ctx context.Context, keywords []string, strat exec.Strategy) ([]exec.Result, error) {
	q := &pipeline.Query{
		Keywords: keywords,
		Mode:     pipeline.ModeAll,
		Strategy: strat,
	}
	if err := s.run(ctx, q); err != nil {
		return nil, err
	}
	return q.Results, nil
}
