package experiments

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/exec"
	"repro/internal/optimizer"
	"repro/internal/presentation"
)

// Fig16a reproduces Figure 16(a): the speedup of the optimized execution
// algorithm (lookup-result caching, §6) over the naive non-caching
// algorithm of DISCOVER/DBXplorer, producing all results of author-chain
// networks, as the CTSSN size grows. The cached run's point carries the
// cached cost; the speedup series is derived in the Format output as the
// naive/cached ratio (also returned as the Results column of the naive
// series for machine reading).
func Fig16a(w *Workload) (Figure, error) {
	fig := Figure{ID: "16a", Title: "optimized vs naive execution (caching)", XLabel: "size"}
	sys, err := w.load(core.PresetXKeyword, -1)
	if err != nil {
		return fig, err
	}
	opt := &optimizer.Optimizer{
		TSS: sys.TSS, Store: sys.Store, Index: sys.Index, Stats: sys.Stats,
		Fragments: sys.Decomp.Fragments, MaxJoins: sys.Opts.B,
	}
	rng := rand.New(rand.NewSource(w.Config.Seed + 2))

	naive := Series{Label: "naive"}
	cached := Series{Label: "optimized"}
	speedup := Series{Label: "speedup (naive/optimized)"}
	for _, size := range w.Config.Sizes {
		var np, cp Point
		np.X, cp.X = size, size
		runs := 0
		for q := 0; q < w.Config.Queries; q++ {
			a1, a2, ok := PairForChain(w.DS, rng, size)
			if !ok {
				continue
			}
			net, err := AuthorChain(sys.TSS, a1, a2, size)
			if err != nil {
				return fig, err
			}
			plan, err := opt.Plan(net)
			if err != nil {
				return fig, err
			}
			for _, mode := range []bool{false, true} {
				ex := &exec.Executor{Store: sys.Store, TSS: sys.TSS, Index: sys.Index}
				if mode {
					ex.Cache = exec.NewLookupCache(0)
				}
				nres := 0
				dur, io := measure(sys.Store, func() {
					_ = ex.Evaluate(plan, func(exec.Result) bool {
						nres++
						return true
					})
				})
				pt := &np
				if mode {
					pt = &cp
				}
				pt.Millis += float64(dur.Microseconds()) / 1000
				pt.Cost += io.Cost()
				pt.Lookups += float64(io.Lookups)
				pt.Results += float64(nres)
			}
			runs++
		}
		if runs > 0 {
			for _, pt := range []*Point{&np, &cp} {
				pt.Millis /= float64(runs)
				pt.Cost /= float64(runs)
				pt.Lookups /= float64(runs)
				pt.Results /= float64(runs)
			}
		}
		sp := Point{X: size}
		if cp.Millis > 0 {
			sp.Millis = np.Millis / cp.Millis // wall-clock speedup
		}
		if cp.Cost > 0 {
			sp.Cost = np.Cost / cp.Cost // I/O-cost speedup
		}
		if cp.Lookups > 0 {
			sp.Lookups = np.Lookups / cp.Lookups
		}
		naive.Points = append(naive.Points, np)
		cached.Points = append(cached.Points, cp)
		speedup.Points = append(speedup.Points, sp)
	}
	fig.Series = []Series{naive, cached, speedup}
	return fig, nil
}

// Fig16b reproduces Figure 16(b): the average time to expand a Paper
// node of the presentation graph of the author-chain network, under the
// three probe sets of §7 — the inlined (multi-edge) relations, the
// minimal (single-edge) relations, and their combination. The paper's
// finding: the combination wins for sizes > 2; minimal is slightly
// better at size 2; inlined is slowest because adjacency checks probe
// oversized relations.
func Fig16b(w *Workload) (Figure, error) {
	fig := Figure{ID: "16b", Title: "presentation-graph expansion of a Paper node", XLabel: "size"}
	sys, err := w.load(core.PresetXKeyword, -1)
	if err != nil {
		return fig, err
	}
	variants := []struct {
		label string
		frags []decomp.Fragment
	}{
		{"inlined", sys.InlinedFragments()},
		{"minimal", sys.MinimalFragments()},
		{"combination", sys.Decomp.Fragments},
	}
	rng := rand.New(rand.NewSource(w.Config.Seed + 3))
	// Shared queries per size so variants expand identical graphs.
	type chainQuery struct {
		size   int
		a1, a2 string
	}
	var queries []chainQuery
	for _, size := range w.Config.Sizes {
		for q := 0; q < w.Config.Queries; q++ {
			if a1, a2, ok := PairForChain(w.DS, rng, size); ok {
				queries = append(queries, chainQuery{size, a1, a2})
			}
		}
	}
	for _, v := range variants {
		series := Series{Label: v.label}
		for _, size := range w.Config.Sizes {
			var pt Point
			pt.X = size
			runs := 0
			for _, q := range queries {
				if q.size != size {
					continue
				}
				net, err := AuthorChain(sys.TSS, q.a1, q.a2, size)
				if err != nil {
					return fig, err
				}
				sess := &presentation.Session{
					TSS: sys.TSS, Obj: sys.Obj, Store: sys.Store, Index: sys.Index,
					Stats: sys.Stats, Fragments: v.frags, Fallback: sys.Decomp.Fragments,
					Cache: exec.NewLookupCache(0),
				}
				g, err := sess.Build(net)
				if err != nil {
					continue // pair raced out of results; skip
				}
				// Expand the first (internal when size > 2) Paper node.
				paperOcc := 1
				added := 0
				dur, io := measure(sys.Store, func() {
					added, err = g.Expand(paperOcc, presentation.ExpandOptions{})
				})
				if err != nil {
					return fig, err
				}
				pt.Millis += float64(dur.Microseconds()) / 1000
				pt.Cost += io.Cost()
				pt.Lookups += float64(io.Lookups)
				pt.Results += float64(added)
				runs++
			}
			if runs > 0 {
				pt.Millis /= float64(runs)
				pt.Cost /= float64(runs)
				pt.Lookups /= float64(runs)
				pt.Results /= float64(runs)
			}
			series.Points = append(series.Points, pt)
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

// All runs every figure.
func All(w *Workload) ([]Figure, error) {
	var out []Figure
	for _, fn := range []func(*Workload) (Figure, error){Fig15a, Fig15b, Fig16a, Fig16b} {
		f, err := fn(w)
		if err != nil {
			return out, err
		}
		out = append(out, f)
	}
	return out, nil
}
