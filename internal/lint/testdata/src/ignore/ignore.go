// Package ignore seeds malformed suppression directives: an unknown
// analyzer name and a missing reason are findings, never silent no-ops.
package ignore

//xk:ignore nosuchcheck this analyzer does not exist
var a = 1

//xk:ignore keyjoin
var b = 2

//xk:ignore keyjoin a well-formed directive with nothing to suppress is harmless
var c = 3
