package segidx_test

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/kwindex"
	"repro/internal/segidx"
	"repro/internal/xmlgraph"
)

func xmlNode(id int64) xmlgraph.NodeID { return xmlgraph.NodeID(id) }

func segMetaName(id uint64) string { return fmt.Sprintf("seg-%06d.meta", id) }

func openStore(t *testing.T, dir string, opts segidx.Options) *segidx.Store {
	t.Helper()
	s, err := segidx.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func field(node int64, schema, label, value string) segidx.Field {
	return segidx.Field{Node: xmlNode(node), SchemaNode: schema, Label: label, Value: value}
}

func doc(to int64, fields ...segidx.Field) segidx.Document {
	return segidx.Document{TO: to, Fields: fields}
}

func mustAdd(t *testing.T, s *segidx.Store, d segidx.Document) {
	t.Helper()
	if err := s.Add(d); err != nil {
		t.Fatal(err)
	}
}

func mustDelete(t *testing.T, s *segidx.Store, to int64) {
	t.Helper()
	if err := s.Delete(to); err != nil {
		t.Fatal(err)
	}
}

// tosOf extracts the sorted TO set of a containing list as a readable
// fingerprint for assertions.
func tosOf(ps []kwindex.Posting) []int64 {
	var out []int64
	for _, p := range ps {
		out = append(out, p.TO)
	}
	return out
}

func TestStoreAddQueryLifecycle(t *testing.T) {
	s := openStore(t, t.TempDir(), segidx.Options{})
	mustAdd(t, s, doc(1, field(10, "name", "name", "John Smith")))
	mustAdd(t, s, doc(2, field(20, "name", "name", "John Doe"), field(21, "comment", "comment", "urgent order")))

	if got := tosOf(s.ContainingList("john")); !reflect.DeepEqual(got, []int64{1, 2}) {
		t.Fatalf("ContainingList(john) TOs = %v, want [1 2]", got)
	}
	if got := s.SchemaNodes("urgent"); !reflect.DeepEqual(got, []string{"comment"}) {
		t.Fatalf("SchemaNodes(urgent) = %v", got)
	}
	if set := s.TOSet("john", "name"); !set[1] || !set[2] || len(set) != 2 {
		t.Fatalf("TOSet(john, name) = %v", set)
	}
	// Multi-token keywords intersect per-token lists by (TO, node).
	if got := tosOf(s.ContainingList("John Smith")); !reflect.DeepEqual(got, []int64{1}) {
		t.Fatalf("ContainingList(John Smith) TOs = %v, want [1]", got)
	}
	if got := s.ContainingList(""); got != nil {
		t.Fatalf("ContainingList(\"\") = %v, want nil", got)
	}
}

func TestNewestWinsUpdateAndDelete(t *testing.T) {
	s := openStore(t, t.TempDir(), segidx.Options{})
	mustAdd(t, s, doc(1, field(10, "name", "name", "John")))
	mustAdd(t, s, doc(2, field(20, "name", "name", "John")))

	// Replacing TO 1 removes its old postings entirely.
	mustAdd(t, s, doc(1, field(10, "name", "name", "Mary")))
	if got := tosOf(s.ContainingList("john")); !reflect.DeepEqual(got, []int64{2}) {
		t.Fatalf("after update, ContainingList(john) TOs = %v, want [2]", got)
	}
	if got := tosOf(s.ContainingList("mary")); !reflect.DeepEqual(got, []int64{1}) {
		t.Fatalf("ContainingList(mary) TOs = %v, want [1]", got)
	}

	mustDelete(t, s, 2)
	if got := s.ContainingList("john"); len(got) != 0 {
		t.Fatalf("after delete, ContainingList(john) = %v, want empty", got)
	}
	// Deleting an unknown TO is a durable no-op.
	mustDelete(t, s, 999)

	// A re-added TO is alive again.
	mustAdd(t, s, doc(2, field(20, "name", "name", "John")))
	if got := tosOf(s.ContainingList("john")); !reflect.DeepEqual(got, []int64{2}) {
		t.Fatalf("after re-add, ContainingList(john) TOs = %v, want [2]", got)
	}
}

// TestUpdateAcrossFlushMasksOlderSegment drives the layered masking:
// the newest layer must win even when the older version lives in a
// committed segment and the newer in the memtable (and vice versa).
func TestUpdateAcrossFlushMasksOlderSegment(t *testing.T) {
	s := openStore(t, t.TempDir(), segidx.Options{})
	mustAdd(t, s, doc(1, field(10, "name", "name", "John")))
	mustAdd(t, s, doc(2, field(20, "name", "name", "John")))
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	mustAdd(t, s, doc(1, field(10, "name", "name", "Mary"))) // memtable shadows segment
	mustDelete(t, s, 2)                                      // tombstone masks segment
	if got := s.ContainingList("john"); len(got) != 0 {
		t.Fatalf("ContainingList(john) = %v, want empty", got)
	}
	if got := tosOf(s.ContainingList("mary")); !reflect.DeepEqual(got, []int64{1}) {
		t.Fatalf("ContainingList(mary) TOs = %v, want [1]", got)
	}

	// Flush the masking layer too: two segments, newest still wins.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := s.ContainingList("john"); len(got) != 0 {
		t.Fatalf("after 2nd flush, ContainingList(john) = %v, want empty", got)
	}
	if got := tosOf(s.ContainingList("mary")); !reflect.DeepEqual(got, []int64{1}) {
		t.Fatalf("after 2nd flush, ContainingList(mary) TOs = %v, want [1]", got)
	}
}

func TestWALReplayOnReopen(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, segidx.Options{})
	mustAdd(t, s, doc(1, field(10, "name", "name", "John")))
	mustDelete(t, s, 7)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Nothing was flushed: the WAL alone must reconstruct the state.
	s2 := openStore(t, dir, segidx.Options{})
	if got := tosOf(s2.ContainingList("john")); !reflect.DeepEqual(got, []int64{1}) {
		t.Fatalf("after reopen, ContainingList(john) TOs = %v, want [1]", got)
	}
	st := s2.Stats()
	if st.MemDocs != 1 || st.MemTombs != 1 {
		t.Fatalf("replayed memtable = %+v, want 1 doc + 1 tombstone", st)
	}
}

func TestFlushReopenServesFromSegment(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, segidx.Options{})
	mustAdd(t, s, doc(1, field(10, "name", "name", "John")))
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir, segidx.Options{})
	st := s2.Stats()
	if len(st.Segments) != 1 || st.MemDocs != 0 {
		t.Fatalf("stats after reopen = %+v, want 1 segment and empty memtable", st)
	}
	if got := tosOf(s2.ContainingList("john")); !reflect.DeepEqual(got, []int64{1}) {
		t.Fatalf("ContainingList(john) TOs = %v, want [1]", got)
	}
}

func TestFlushEmptyIsNoop(t *testing.T) {
	s := openStore(t, t.TempDir(), segidx.Options{})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); len(st.Segments) != 0 || st.Flushes != 0 {
		t.Fatalf("stats after empty flush = %+v, want none", st)
	}
}

func TestCompactMergesAndEliminatesTombstones(t *testing.T) {
	s := openStore(t, t.TempDir(), segidx.Options{CompactAt: -1})
	for i := int64(1); i <= 4; i++ {
		mustAdd(t, s, doc(i, field(i*10, "name", "name", "John")))
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(t, s, doc(2, field(20, "name", "name", "Mary"))) // update across segments
	mustDelete(t, s, 3)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if len(st.Segments) != 5 {
		t.Fatalf("segments before compaction = %d, want 5", len(st.Segments))
	}

	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if len(st.Segments) != 1 {
		t.Fatalf("segments after compaction = %d, want 1", len(st.Segments))
	}
	// No base index below the merged set: every tombstone must be gone,
	// and the masked old versions with it.
	if st.Segments[0].Tombs != 0 {
		t.Fatalf("compacted segment keeps %d tombstones", st.Segments[0].Tombs)
	}
	if st.Segments[0].Docs != 3 {
		t.Fatalf("compacted segment owns %d docs, want 3", st.Segments[0].Docs)
	}
	if got := tosOf(s.ContainingList("john")); !reflect.DeepEqual(got, []int64{1, 4}) {
		t.Fatalf("after compaction, ContainingList(john) TOs = %v, want [1 4]", got)
	}
	if got := tosOf(s.ContainingList("mary")); !reflect.DeepEqual(got, []int64{2}) {
		t.Fatalf("after compaction, ContainingList(mary) TOs = %v, want [2]", got)
	}

	// Superseded segment files must be gone from disk.
	entries, err := os.ReadDir(s.Stats().Dir)
	if err != nil {
		t.Fatal(err)
	}
	var xki int
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".xki") {
			xki++
		}
	}
	if xki != 1 {
		t.Fatalf("%d .xki files after compaction, want 1", xki)
	}
}

func TestAutoFlushAndAutoCompact(t *testing.T) {
	// Tiny thresholds: every document forces a flush, and the segment
	// count immediately reaches the compaction trigger.
	s := openStore(t, t.TempDir(), segidx.Options{FlushBytes: 1, CompactAt: 2})
	for i := int64(1); i <= 6; i++ {
		mustAdd(t, s, doc(i, field(i*10, "name", "name", "John")))
	}
	st := s.Stats()
	if st.Flushes < 6 {
		t.Fatalf("flushes = %d, want >= 6", st.Flushes)
	}
	if st.Compacts == 0 {
		t.Fatalf("no compaction ran, stats = %+v", st)
	}
	if len(st.Segments) > 2 {
		t.Fatalf("segments = %d, want <= 2 under CompactAt:2", len(st.Segments))
	}
	if got := tosOf(s.ContainingList("john")); !reflect.DeepEqual(got, []int64{1, 2, 3, 4, 5, 6}) {
		t.Fatalf("ContainingList(john) TOs = %v", got)
	}
	if err := s.Err(); err != nil {
		t.Fatalf("store unhealthy: %v", err)
	}
}

func TestBaseIndexOverlay(t *testing.T) {
	ds, err := datagen.TPCHFigure1()
	if err != nil {
		t.Fatal(err)
	}
	base := kwindex.Build(ds.Obj)
	john := base.ContainingList("John")
	if len(john) != 1 {
		t.Fatalf("fixture: ContainingList(John) = %+v, want 1 posting", john)
	}
	johnTO := john[0].TO

	dir := t.TempDir()
	s := openStore(t, dir, segidx.Options{Base: base})
	// Untouched keywords pass through the base unchanged.
	if got := s.ContainingList("VCR"); !reflect.DeepEqual(got, base.ContainingList("VCR")) {
		t.Fatalf("ContainingList(VCR) = %+v, want base's", got)
	}

	// A delete tombstones the base object...
	mustDelete(t, s, johnTO)
	if got := s.ContainingList("John"); len(got) != 0 {
		t.Fatalf("after delete, ContainingList(John) = %+v, want empty", got)
	}
	// ...and an ingested replacement shadows it.
	mustAdd(t, s, doc(johnTO, field(9001, "name", "name", "Johnny")))
	if got := tosOf(s.ContainingList("johnny")); !reflect.DeepEqual(got, []int64{johnTO}) {
		t.Fatalf("ContainingList(johnny) TOs = %v, want [%d]", got, johnTO)
	}

	// Flush + compact must keep the tombstone: the base still holds
	// postings it masks.
	mustAdd(t, s, doc(1_000_001, field(9100, "name", "name", "Extra")))
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	mustDelete(t, s, 1_000_001)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Segments[0].Tombs == 0 {
		t.Fatalf("compaction over a base dropped its tombstones: %+v", st)
	}
	if got := s.ContainingList("John"); len(got) != 0 {
		t.Fatalf("after compaction, ContainingList(John) = %+v, want still masked", got)
	}
}

// TestIngestMatchesBatchBuild is the bulk-equivalence check: ingesting
// DocumentsFromObjectGraph must produce exactly the index kwindex.Build
// derives from the same object graph — before a flush (memtable only),
// after it (segment only), and after a reopen.
func TestIngestMatchesBatchBuild(t *testing.T) {
	ds, err := datagen.TPCHFigure1()
	if err != nil {
		t.Fatal(err)
	}
	ref := kwindex.Build(ds.Obj)

	dir := t.TempDir()
	s := openStore(t, dir, segidx.Options{})
	var b segidx.Batch
	for _, d := range segidx.DocumentsFromObjectGraph(ds.Obj) {
		b.AddDoc(d)
	}
	if err := s.Apply(b); err != nil {
		t.Fatal(err)
	}

	check := func(stage string) {
		t.Helper()
		for _, term := range ref.Terms() {
			want := ref.ContainingList(term)
			if got := s.ContainingList(term); !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: ContainingList(%q) = %+v, want %+v", stage, term, got, want)
			}
		}
		if s.NumPostings() != ref.NumPostings() {
			t.Fatalf("%s: NumPostings = %d, want %d", stage, s.NumPostings(), ref.NumPostings())
		}
		if s.NumKeywords() != ref.NumKeywords() {
			t.Fatalf("%s: NumKeywords = %d, want %d", stage, s.NumKeywords(), ref.NumKeywords())
		}
	}
	check("memtable")
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	check("segment")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s = openStore(t, dir, segidx.Options{})
	check("reopened")
}

func TestOpenRefusesCorruptSegment(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, segidx.Options{})
	mustAdd(t, s, doc(1, field(10, "name", "name", "John")))
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a byte in the segment meta sidecar: the manifest fingerprint
	// no longer matches and the open must fail loudly.
	metaPath := filepath.Join(dir, segMetaName(st.Segments[0].ID))
	b, err := os.ReadFile(metaPath)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x40
	if err := os.WriteFile(metaPath, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := segidx.Open(dir, segidx.Options{}); err == nil {
		t.Fatal("Open accepted a segment meta that fails its manifest fingerprint")
	}
}

func TestClosedStoreRefusesWrites(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, segidx.Options{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(doc(1, field(10, "name", "name", "x"))); err == nil {
		t.Fatal("Add on closed store succeeded")
	}
	if err := s.Flush(); err == nil {
		t.Fatal("Flush on closed store succeeded")
	}
	if err := s.Compact(); err != nil {
		// Compact on an empty closed store is a no-op before the closed
		// check only when under 2 segments; either nil or ErrClosed is
		// acceptable, but it must not panic or corrupt.
		t.Logf("Compact on closed store: %v", err)
	}
}
