package dtd_test

import (
	"testing"

	"repro/internal/dtd"
)

// FuzzParse asserts the DTD parser never panics and accepted schemas are
// structurally sound (every edge endpoint declared).
func FuzzParse(f *testing.F) {
	seeds := []string{
		`<!ELEMENT a (#PCDATA)>`,
		`<!ELEMENT a (b, c*)>` + "\n" + `<!ELEMENT b (#PCDATA)>` + "\n" + `<!ELEMENT c (#PCDATA)>`,
		`<!ELEMENT a (b | c)>` + "\n" + `<!ELEMENT b (#PCDATA)>` + "\n" + `<!ELEMENT c (#PCDATA)>`,
		`<!ELEMENT a EMPTY>` + "\n" + `<!ATTLIST a r IDREF #REQUIRED>`,
		`<!ELEMENT a (`,
		`<!WAT x>`,
		``,
		`<!-- only a comment -->`,
		`<!ELEMENT a (b?, c+)>`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		g, err := dtd.ParseString(doc, dtd.Options{RefTargets: map[string]string{"a": "a"}})
		if err != nil {
			return
		}
		for _, e := range g.Edges() {
			if g.Node(e.From) == nil || g.Node(e.To) == nil {
				t.Fatalf("dangling edge %v in accepted schema (doc %q)", e, doc)
			}
		}
	})
}
