package shard

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
)

// newTestClient wires a shardClient to a httptest server with a tight
// breaker, the shape the coordinator builds per replica.
func newTestClient(ts *httptest.Server, threshold int, window time.Duration) *shardClient {
	return &shardClient{
		id:        0,
		base:      ts.URL,
		hc:        ts.Client(),
		timeout:   2 * time.Second,
		threshold: threshold,
		window:    window,
	}
}

// TestBreakerHalfOpenAdmitsOneProbe drives the breaker through fail →
// open → half-open under CONCURRENT callers: while the single half-open
// probe is in flight, every other concurrent call must fast-fail
// without touching the server — the probing flag exists so a recovering
// replica is not trampled by a thundering herd the moment its window
// expires.
func TestBreakerHalfOpenAdmitsOneProbe(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	var hits atomic.Int64
	probeGate := make(chan struct{}) // holds the probe open while siblings race
	var gateOnce sync.Once
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if failing.Load() {
			http.Error(w, "injected outage", http.StatusInternalServerError)
			return
		}
		gateOnce.Do(func() { <-probeGate }) // first healthy request = the probe
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte("{}"))
	}))
	defer ts.Close()

	cl := newTestClient(ts, 2, 50*time.Millisecond)
	ctx := context.Background()
	retry := fault.RetryPolicy{Attempts: 1}
	var out struct{}

	// Two failures open the breaker.
	for i := 0; i < 2; i++ {
		if err := cl.call(ctx, "/x", struct{}{}, &out, retry); err == nil {
			t.Fatal("failing server answered")
		}
	}
	if !cl.broken() {
		t.Fatal("breaker still closed after reaching the threshold")
	}
	if lbl := cl.breakerLabel(); lbl != "open" {
		t.Fatalf("breaker label %q, want open", lbl)
	}
	before := hits.Load()
	if err := cl.call(ctx, "/x", struct{}{}, &out, retry); err == nil {
		t.Fatal("open breaker admitted a call")
	}
	if hits.Load() != before {
		t.Fatal("fast-fail reached the server — the breaker exists to avoid that")
	}

	// Heal the server and wait out the window: the breaker half-opens.
	failing.Store(false)
	time.Sleep(60 * time.Millisecond)
	if lbl := cl.breakerLabel(); lbl != "half-open" {
		t.Fatalf("breaker label %q after the window, want half-open", lbl)
	}

	// Race 16 concurrent callers at the half-open breaker. The first is
	// admitted as the probe and parks on the gate; the rest must
	// fast-fail without a request. Poll until the probe is holding the
	// gate (it counts one hit), then launch the herd.
	const herd = 16
	probeDone := make(chan error, 1)
	go func() {
		var o struct{}
		probeDone <- cl.call(ctx, "/x", struct{}{}, &o, retry)
	}()
	deadline := time.Now().Add(2 * time.Second)
	for hits.Load() != before+1 {
		if time.Now().After(deadline) {
			t.Fatal("half-open probe never reached the server")
		}
		time.Sleep(time.Millisecond)
	}
	var wg sync.WaitGroup
	var fastFails atomic.Int64
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var o struct{}
			if err := cl.call(ctx, "/x", struct{}{}, &o, retry); err != nil {
				fastFails.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := hits.Load(); got != before+1 {
		t.Fatalf("herd drove %d extra requests past the half-open probe, want 0", got-(before+1))
	}
	if got := fastFails.Load(); got != herd {
		t.Fatalf("%d of %d herd calls fast-failed, want all", got, herd)
	}

	// Release the probe: its success closes the breaker and the herd's
	// next wave flows normally.
	close(probeGate)
	if err := <-probeDone; err != nil {
		t.Fatalf("half-open probe failed against a healthy server: %v", err)
	}
	if cl.broken() {
		t.Fatal("breaker still broken after a successful probe")
	}
	if lbl := cl.breakerLabel(); lbl != "closed" {
		t.Fatalf("breaker label %q after recovery, want closed", lbl)
	}
	var wg2 sync.WaitGroup
	var errs atomic.Int64
	for i := 0; i < herd; i++ {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			var o struct{}
			if err := cl.call(ctx, "/x", struct{}{}, &o, retry); err != nil {
				errs.Add(1)
			}
		}()
	}
	wg2.Wait()
	if errs.Load() != 0 {
		t.Fatalf("%d calls failed after the breaker closed", errs.Load())
	}
	if cl.lastError() != "" {
		t.Fatalf("lastError %q after recovery, want empty", cl.lastError())
	}
}

// TestBreakerFailedProbeReopens checks the other half of half-open:
// a failed probe must re-open the window, and while the re-opened
// breaker fast-fails no probe slot is leaked (probing resets).
func TestBreakerFailedProbeReopens(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "still down", http.StatusInternalServerError)
	}))
	defer ts.Close()
	cl := newTestClient(ts, 1, 30*time.Millisecond)
	ctx := context.Background()
	retry := fault.RetryPolicy{Attempts: 1}
	var out struct{}

	if err := cl.call(ctx, "/x", struct{}{}, &out, retry); err == nil {
		t.Fatal("failing server answered")
	}
	for round := 0; round < 3; round++ {
		time.Sleep(40 * time.Millisecond)
		if lbl := cl.breakerLabel(); lbl != "half-open" {
			t.Fatalf("round %d: label %q, want half-open", round, lbl)
		}
		if err := cl.call(ctx, "/x", struct{}{}, &out, retry); err == nil {
			t.Fatal("failed probe reported success")
		}
		if !cl.broken() {
			t.Fatalf("round %d: failed probe did not re-open the breaker", round)
		}
	}
}

// TestBreakerCancelledProbeReleasesSlot covers the half-open probe
// whose call ends in cancellation rather than success or failure — a
// hedge loser cancelled by the winner, or a caller that gave up. The
// cancellation path charges neither noteSuccess nor noteFailure, so it
// must release the single probe slot explicitly; if it leaks, probing
// stays true forever and allow() fast-fails the replica permanently
// even after it recovers.
func TestBreakerCancelledProbeReleasesSlot(t *testing.T) {
	var mode atomic.Value
	mode.Store("fail")
	var hits atomic.Int64
	hung := make(chan struct{}) // released at test end; the client abandons the probe long before
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		switch mode.Load() {
		case "fail":
			http.Error(w, "injected outage", http.StatusInternalServerError)
		case "hang":
			<-hung // hung replica: never answers while the probe is in flight
		default:
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write([]byte("{}"))
		}
	}))
	defer ts.Close()
	defer close(hung) // LIFO: free the hung handler before Close waits on it

	cl := newTestClient(ts, 1, 30*time.Millisecond)
	retry := fault.RetryPolicy{Attempts: 1}
	var out struct{}

	// One failure opens the breaker; the window elapsing half-opens it.
	if err := cl.call(context.Background(), "/x", struct{}{}, &out, retry); err == nil {
		t.Fatal("failing server answered")
	}
	time.Sleep(40 * time.Millisecond)
	if lbl := cl.breakerLabel(); lbl != "half-open" {
		t.Fatalf("label %q after the window, want half-open", lbl)
	}

	// Admit the probe against a now-hung replica, wait until it is in
	// flight, then cancel it — exactly what a hedge winner does to the
	// loser it raced.
	mode.Store("hang")
	before := hits.Load()
	pctx, cancel := context.WithCancel(context.Background())
	probeDone := make(chan error, 1)
	go func() {
		var o struct{}
		probeDone <- cl.call(pctx, "/x", struct{}{}, &o, retry)
	}()
	deadline := time.Now().Add(2 * time.Second)
	for hits.Load() != before+1 {
		if time.Now().After(deadline) {
			t.Fatal("half-open probe never reached the server")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-probeDone; err == nil {
		t.Fatal("cancelled probe reported success")
	}

	// The slot must be free again: with the replica healed, the very
	// next call is admitted as a fresh probe and closes the breaker.
	mode.Store("ok")
	if err := cl.call(context.Background(), "/x", struct{}{}, &out, retry); err != nil {
		t.Fatalf("probe slot leaked: call after cancelled probe failed: %v", err)
	}
	if cl.broken() {
		t.Fatal("breaker still broken after the recovered probe succeeded")
	}
	if lbl := cl.breakerLabel(); lbl != "closed" {
		t.Fatalf("label %q after recovery, want closed", lbl)
	}
}

// TestLatencyObservedOnlyOnSuccess pins down what feeds the latency
// histogram, because it now drives routing (order's proven/p50 rank)
// and the p95-derived hedge delay: failed attempts (~0ms connection
// refusals would rank a flapping replica fastest) and /shard/stats
// health probes (cheap samples would mark a cold replica "proven" and
// drag p95 toward the hedge clamp floor) must not be observed.
func TestLatencyObservedOnlyOnSuccess(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failing.Load() {
			http.Error(w, "injected outage", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte("{}"))
	}))
	defer ts.Close()

	cl := newTestClient(ts, 10, time.Second)
	ctx := context.Background()
	retry := fault.RetryPolicy{Attempts: 1}
	var out struct{}

	if err := cl.call(ctx, "/x", struct{}{}, &out, retry); err == nil {
		t.Fatal("failing server answered")
	}
	if n := cl.lat.Count(); n != 0 {
		t.Fatalf("failed call fed the routing histogram: %d samples, want 0", n)
	}
	failing.Store(false)
	if err := cl.probe(ctx, "/shard/stats", struct{}{}, &out, retry); err != nil {
		t.Fatalf("stats probe failed: %v", err)
	}
	if n := cl.lat.Count(); n != 0 {
		t.Fatalf("stats probe fed the routing histogram: %d samples, want 0", n)
	}
	if err := cl.call(ctx, "/x", struct{}{}, &out, retry); err != nil {
		t.Fatalf("healthy call failed: %v", err)
	}
	if n := cl.lat.Count(); n != 1 {
		t.Fatalf("successful call observed %d samples, want 1", n)
	}
}

// TestHedgeBudgetAllow exercises the budget arithmetic directly: the
// grace admits early hedges, then fired hedges track the percentage.
func TestHedgeBudgetAllow(t *testing.T) {
	hc := &hedgeControl{budgetPct: 10, minDelay: time.Millisecond, maxDelay: time.Second, minSamples: 1}
	if !hc.allow() {
		t.Fatal("fresh budget must admit the grace hedge")
	}
	hc.fired.Add(1)
	if hc.allow() {
		t.Fatal("grace spent with zero requests: budget must refuse")
	}
	hc.reqs.Add(100) // 100 requests at 10% → 10 hedges + grace
	for i := 0; i < 10; i++ {
		if !hc.allow() {
			t.Fatalf("hedge %d refused inside the budget", i)
		}
		hc.fired.Add(1)
	}
	if hc.allow() {
		t.Fatalf("budget exceeded: %d fired for %d requests", hc.fired.Load(), hc.reqs.Load())
	}
	var disabled *hedgeControl
	if disabled.allow() {
		t.Fatal("nil hedgeControl must never hedge")
	}
	if (&hedgeControl{disabled: true}).allow() {
		t.Fatal("disabled hedgeControl must never hedge")
	}
}
