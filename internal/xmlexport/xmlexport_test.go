package xmlexport_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/xmlexport"
	"repro/internal/xmlgraph"
)

func TestRoundTripFigure1(t *testing.T) {
	ds, err := datagen.TPCHFigure1()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := xmlexport.Write(&buf, ds.Data, "db"); err != nil {
		t.Fatal(err)
	}
	doc := buf.String()
	back, err := xmlgraph.Parse(strings.NewReader(doc), xmlgraph.ParseOptions{OmitRoot: true})
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, doc)
	}
	if back.NumNodes() != ds.Data.NumNodes() {
		t.Fatalf("nodes: %d -> %d", ds.Data.NumNodes(), back.NumNodes())
	}
	if back.NumEdges() != ds.Data.NumEdges() {
		t.Fatalf("edges: %d -> %d", ds.Data.NumEdges(), back.NumEdges())
	}
	// The re-parsed graph still conforms to the schema.
	if err := datagen.TPCHSchema().Assign(back); err != nil {
		t.Fatal(err)
	}
	// Value survival.
	if !strings.Contains(doc, "set of VCR and DVD") {
		t.Fatal("product description lost")
	}
}

func TestRoundTripDBLP(t *testing.T) {
	p := datagen.DefaultDBLPParams()
	p.PapersPerYear = 5
	ds, err := datagen.DBLP(p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := xmlexport.Write(&buf, ds.Data, "dblp"); err != nil {
		t.Fatal(err)
	}
	back, err := xmlgraph.Parse(bytes.NewReader(buf.Bytes()), xmlgraph.ParseOptions{OmitRoot: true})
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != ds.Data.NumNodes() || back.NumEdges() != ds.Data.NumEdges() {
		t.Fatalf("size mismatch: %d/%d -> %d/%d",
			ds.Data.NumNodes(), ds.Data.NumEdges(), back.NumNodes(), back.NumEdges())
	}
	if err := datagen.DBLPSchema().Assign(back); err != nil {
		t.Fatal(err)
	}
}

func TestEscaping(t *testing.T) {
	g := xmlgraph.New()
	a := g.AddNode("a", "")
	b := g.AddNode("b", `<&>"quoted"`)
	g.MustAddEdge(a, b, xmlgraph.Containment)
	var buf bytes.Buffer
	if err := xmlexport.Write(&buf, g, "r"); err != nil {
		t.Fatal(err)
	}
	back, err := xmlgraph.Parse(&buf, xmlgraph.ParseOptions{OmitRoot: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range back.Nodes() {
		if back.Node(id).Label == "b" && back.Node(id).Value != `<&>"quoted"` {
			t.Fatalf("value mangled: %q", back.Node(id).Value)
		}
	}
}
