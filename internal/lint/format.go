package lint

import (
	"encoding/json"
	"sort"
)

// This file renders findings into the two machine-readable formats
// cmd/xkvet exposes. Both are compatibility contracts, pinned by golden
// tests: fields may be added in a later schema version, never renamed,
// removed, or reordered within one — CI pipelines jq these bytes.

// jsonReport is the -format json schema, version 1.
type jsonReport struct {
	Version  int           `json:"version"`
	Tool     string        `json:"tool"`
	Count    int           `json:"count"`
	Findings []jsonFinding `json:"findings"`
}

type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// FormatJSON renders findings as the version-1 JSON report. Findings
// keep the order they were given in (CheckModule/CheckDir emit them
// sorted by file, line, analyzer); an empty run yields "findings": [],
// never null.
func FormatJSON(findings []Finding) ([]byte, error) {
	r := jsonReport{
		Version:  1,
		Tool:     "xkvet",
		Count:    len(findings),
		Findings: make([]jsonFinding, 0, len(findings)),
	}
	for _, f := range findings {
		r.Findings = append(r.Findings, jsonFinding{
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Analyzer: f.Name,
			Message:  f.Msg,
		})
	}
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Minimal SARIF 2.1.0 — one run, one driver, rules from the analyzer
// registry, one result per finding. Only the fields CI consumers
// (GitHub code scanning, sarif-tools) actually read are emitted.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine int `json:"startLine"`
}

// FormatSARIF renders findings as a minimal SARIF 2.1.0 log. The rule
// table lists every analyzer that ran plus the "ignore" pseudo-rule
// (malformed suppression directives report under it), sorted by id, so
// the log is byte-stable for a given registry and finding set.
func FormatSARIF(findings []Finding, analyzers []*Analyzer) ([]byte, error) {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}
	rules = append(rules, sarifRule{
		ID:               ignoreName,
		ShortDescription: sarifText{Text: "//xk:ignore directives must name a known analyzer and carry a reason"},
	})
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Name,
			Level:   "error",
			Message: sarifText{Text: f.Msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: f.Pos.Filename},
					Region:           sarifRegion{StartLine: f.Pos.Line},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "xkvet", Rules: rules}},
			Results: results,
		}},
	}
	b, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
