package segidx_test

import (
	"encoding/binary"
	"reflect"
	"testing"

	"repro/internal/segidx"
)

// FuzzWALReplay drives the WAL replay decoder with arbitrary bytes —
// the exact situation after a crash leaves a torn or bit-damaged log.
// Replay must never panic, never apply a partial record, and be
// prefix-stable: re-replaying the valid prefix it reported yields the
// same batches and the same length. Seed inputs (mirrored in
// testdata/fuzz) cover a well-formed log, truncated and bit-flipped
// tails, an oversized length claim and plain garbage.
func FuzzWALReplay(f *testing.F) {
	log, _ := sampleLog()
	f.Add([]byte{})
	f.Add(log)
	f.Add(log[:len(log)-3]) // torn mid-payload
	f.Add(log[:7])          // torn mid-header
	flipped := append([]byte(nil), log...)
	flipped[len(flipped)/2] ^= 0x20
	f.Add(flipped)
	huge := make([]byte, 8)
	binary.LittleEndian.PutUint32(huge, 1<<31-1) // oversized length claim
	f.Add(append(append([]byte(nil), log...), huge...))
	f.Add([]byte("this is not a write-ahead log"))

	f.Fuzz(func(t *testing.T, data []byte) {
		var batches []segidx.Batch
		n := segidx.ReplayWAL(data, func(b segidx.Batch) { batches = append(batches, b) })
		if n < 0 || n > int64(len(data)) {
			t.Fatalf("valid prefix %d outside [0, %d]", n, len(data))
		}
		// Every applied batch must survive an encode/decode round trip:
		// replay never surfaces a batch the codec itself would reject.
		for i, b := range batches {
			enc := segidx.EncodeBatch(nil, b)
			dec, err := segidx.DecodeBatch(enc)
			if err != nil {
				t.Fatalf("batch %d does not re-encode: %v", i, err)
			}
			if !reflect.DeepEqual(dec, b) {
				t.Fatalf("batch %d changes across re-encode", i)
			}
		}
		// Prefix stability: replaying the reported valid prefix is a
		// fixed point.
		var again []segidx.Batch
		n2 := segidx.ReplayWAL(data[:n], func(b segidx.Batch) { again = append(again, b) })
		if n2 != n {
			t.Fatalf("replay of valid prefix reports %d, want %d", n2, n)
		}
		if len(again) != len(batches) {
			t.Fatalf("replay of valid prefix applies %d batches, want %d", len(again), len(batches))
		}
		for i := range batches {
			if !reflect.DeepEqual(again[i], batches[i]) {
				t.Fatalf("batch %d differs across replays", i)
			}
		}
	})
}
