// Package crcgate seeds violations for the crcgate analyzer: buffers
// whose checksum is verified only after their bytes have already been
// parsed or copied out. The compliant shapes extract-and-compare first
// — reads that feed the comparison itself, and fills/measures of the
// buffer, are part of verification and do not fire.
package crcgate

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"hash/crc64"
	"io"
)

var errCorrupt = errors.New("corrupt")

// parseFirst decodes the payload before checking the trailer CRC: a
// bit flip in the length field has already been believed.
func parseFirst(b []byte) (uint64, error) {
	v := binary.BigEndian.Uint64(b[4:12])
	if crc32.ChecksumIEEE(b[:len(b)-4]) != binary.BigEndian.Uint32(b[len(b)-4:]) {
		return 0, errCorrupt
	}
	return v, nil
}

// copyOut exports unverified bytes: the destination keeps them even if
// the comparison later fails.
func copyOut(b, dst []byte) error {
	copy(dst, b)
	want := binary.LittleEndian.Uint32(b[:4])
	if crc64.Checksum(b[4:], crc64.MakeTable(crc64.ISO)) != uint64(want) {
		return errCorrupt
	}
	return nil
}

// verifyFirst is the sanctioned order: extract the stored CRC, compare,
// and only then parse.
func verifyFirst(b []byte) (uint64, error) {
	if len(b) < 12 {
		return 0, errCorrupt
	}
	want := binary.BigEndian.Uint32(b[len(b)-4:])
	if crc32.ChecksumIEEE(b[:len(b)-4]) != want {
		return 0, errCorrupt
	}
	return binary.BigEndian.Uint64(b[:8]), nil
}

// readAndVerify fills the buffer and verifies before any parse: fills
// and measures are not uses of unverified bytes.
func readAndVerify(r io.Reader) ([]byte, error) {
	buf := make([]byte, 64)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(buf[:60]) != binary.LittleEndian.Uint32(buf[60:]) {
		return nil, errCorrupt
	}
	return buf[:60], nil
}

// peekSuppressed documents a deliberate pre-verify read: the version
// byte only routes to a decoder, and both decoders re-verify.
func peekSuppressed(b []byte) (byte, error) {
	//xk:ignore crcgate the peeked version byte only selects a decoder; both decoders re-verify the frame
	v := b[0]
	if crc32.ChecksumIEEE(b[1:len(b)-4]) != binary.LittleEndian.Uint32(b[len(b)-4:]) {
		return 0, errCorrupt
	}
	return v, nil
}
