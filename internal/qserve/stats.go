package qserve

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// serverStats holds the serving counters and the latency histogram.
// Counters are atomics: the serve path must not take a lock just to
// count.
type serverStats struct {
	hits      atomic.Int64
	misses    atomic.Int64
	collapses atomic.Int64
	sheds     atomic.Int64
	cancels   atomic.Int64
	errors    atomic.Int64
	evictions atomic.Int64
	latency   histogram
}

// histogram is a fixed-bucket latency histogram: bucket i holds
// durations in [2^i, 2^(i+1)) microseconds, the last bucket catches the
// overflow (≥ ~8.4 s). Power-of-two bounds make observe a bit-length
// instruction and keep the whole structure a flat array of atomics —
// no locks, stdlib only.
type histogram struct {
	buckets [latBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
}

const latBuckets = 24

func (h *histogram) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	us := uint64(d / time.Microsecond)
	b := bits.Len64(us) // 0 for 0–1µs, 1 for 2–3µs, ...
	if b >= latBuckets {
		b = latBuckets - 1
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// bucketUpper is the inclusive upper bound of bucket b.
func bucketUpper(b int) time.Duration {
	return time.Duration((uint64(1)<<uint(b))-1) * time.Microsecond
}

// quantile returns the upper bound of the bucket containing the p-th
// (0..1) observation of the snapshot taken bucket by bucket. With
// power-of-two buckets the answer is within 2× of the true quantile,
// which is what an operations dashboard needs.
func (h *histogram) quantile(p float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(p*float64(total) + 0.5)
	if target < 1 {
		target = 1
	}
	var cum int64
	for b := 0; b < latBuckets; b++ {
		cum += h.buckets[b].Load()
		if cum >= target {
			return bucketUpper(b)
		}
	}
	return bucketUpper(latBuckets - 1)
}

// Snapshot is a point-in-time view of the serving counters, shaped for
// JSON (the /debug/qserve endpoint).
type Snapshot struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Collapses int64 `json:"collapses"`
	Sheds     int64 `json:"sheds"`
	Cancels   int64 `json:"cancels"`
	Errors    int64 `json:"errors"`
	Evictions int64 `json:"evictions"`

	CacheEntries int   `json:"cache_entries"`
	CacheBytes   int64 `json:"cache_bytes"`
	InFlight     int   `json:"in_flight"`

	Served     int64         `json:"served"`
	MeanMicros int64         `json:"mean_us"`
	P50        time.Duration `json:"p50_ns"`
	P95        time.Duration `json:"p95_ns"`
}

// Stats returns a snapshot of the serving counters and latencies.
func (s *Server) Stats() Snapshot {
	snap := Snapshot{
		Hits:      s.stats.hits.Load(),
		Misses:    s.stats.misses.Load(),
		Collapses: s.stats.collapses.Load(),
		Sheds:     s.stats.sheds.Load(),
		Cancels:   s.stats.cancels.Load(),
		Errors:    s.stats.errors.Load(),
		Evictions: s.stats.evictions.Load(),
		InFlight:  s.InFlight(),
		Served:    s.stats.latency.count.Load(),
		P50:       s.stats.latency.quantile(0.50),
		P95:       s.stats.latency.quantile(0.95),
	}
	if s.cache != nil {
		snap.CacheEntries, snap.CacheBytes = s.cache.usage()
	}
	if snap.Served > 0 {
		snap.MeanMicros = s.stats.latency.sum.Load() / snap.Served / int64(time.Microsecond)
	}
	return snap
}
