package persist

import (
	"io"
	"os"
)

// SetSaveWriter installs a wrapper around the snapshot temp file so
// crash tests can cut the write mid-stream, and returns a restore func.
func SetSaveWriter(w func(*os.File) io.Writer) (restore func()) {
	old := saveWriter
	saveWriter = w
	return func() { saveWriter = old }
}
