package presentation_test

import (
	"strings"
	"testing"

	"repro/internal/presentation"
)

func TestDOTRendering(t *testing.T) {
	s := fig1System(t)
	sess := s.PresentationSession(nil)
	g := buildPG(t, s, sess)
	liOcc := -1
	for i, o := range g.Net.Occs {
		if o.Segment == "lineitem" {
			liOcc = i
		}
	}
	if _, err := g.Expand(liOcc, presentation.ExpandOptions{}); err != nil {
		t.Fatal(err)
	}

	dot := g.DOT(s.Obj.Summary)
	for _, frag := range []string{"digraph pg", "cluster_0", "John", "TV", "(expanded)", "->"} {
		if !strings.Contains(dot, frag) {
			t.Fatalf("DOT missing %q:\n%s", frag, dot)
		}
	}
	// Nil summary falls back to ids.
	if bare := g.DOT(nil); !strings.Contains(bare, "TO ") {
		t.Fatal("bare DOT missing id labels")
	}

	// Every rendered edge pair is genuinely connected, and the expanded
	// lineitem occurrence contributes two pairs toward the TV part.
	pairs := g.DisplayedPairs()
	total := 0
	for _, ps := range pairs {
		total += len(ps)
	}
	if total < len(g.Net.Edges) {
		t.Fatalf("only %d connected pairs for %d edges", total, len(g.Net.Edges))
	}
	// The lineitem-part edge has both lineitems connected to the TV.
	for ei, e := range g.Net.Edges {
		if g.Net.Occs[e.From].Segment == "lineitem" && g.Net.Occs[e.To].Segment == "part" {
			if len(pairs[ei]) != 2 {
				t.Fatalf("lineitem-part pairs = %v", pairs[ei])
			}
		}
	}
}
