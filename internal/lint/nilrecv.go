package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// nilrecv checks types documented nil-safe (a type whose doc comment
// contains "nil-safe" or an //xk:nilsafe directive): every
// pointer-receiver method must compare the receiver against nil before
// its first field access. obs.Trace, obs.Counter and obs.Histogram
// promise "a nil sink is a valid no-op" so that disabled observability
// costs nothing on the query path; one unguarded method turns that
// contract into a nil-pointer panic in production.
var analyzerNilrecv = &Analyzer{
	Name: "nilrecv",
	Doc:  "pointer methods of nil-safe documented types must nil-check the receiver before field access",
	Run:  runNilrecv,
}

func runNilrecv(p *Pass) {
	marked := collectNilSafeTypes(p)
	if len(marked) == 0 {
		return
	}
	for _, ff := range p.Flow.Funcs {
		fd := ff.Decl
		if fd == nil || fd.Recv == nil || len(fd.Recv.List) != 1 {
			continue
		}
		recvField := fd.Recv.List[0]
		tn := receiverTypeName(p, recvField.Type)
		if tn == nil || !marked[tn] {
			continue
		}
		if _, isPtr := ast.Unparen(recvField.Type).(*ast.StarExpr); !isPtr {
			continue // value receivers cannot be nil-guarded; out of scope
		}
		if len(recvField.Names) != 1 || recvField.Names[0].Name == "_" {
			continue // receiver unused: nothing to dereference
		}
		recvObj, ok := p.Info.Defs[recvField.Names[0]].(*types.Var)
		if !ok {
			continue
		}
		checkNilGuard(p, fd, recvObj, tn.Name())
	}
}

// collectNilSafeTypes finds type declarations documented nil-safe.
func collectNilSafeTypes(p *Pass) map[*types.TypeName]bool {
	out := make(map[*types.TypeName]bool)
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil && len(gd.Specs) == 1 {
					doc = gd.Doc
				}
				if doc == nil || !nilSafeDoc(doc.Text()) {
					continue
				}
				if tn, ok := p.Info.Defs[ts.Name].(*types.TypeName); ok {
					out[tn] = true
				}
			}
		}
	}
	return out
}

func nilSafeDoc(text string) bool {
	lower := strings.ToLower(text)
	return strings.Contains(lower, "nil-safe") || strings.Contains(lower, "xk:nilsafe")
}

// receiverTypeName resolves the named type a method receiver belongs
// to.
func receiverTypeName(p *Pass, expr ast.Expr) *types.TypeName {
	t := p.TypeOf(expr)
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}

// checkNilGuard reports a method whose first receiver dereference (a
// field access or explicit *recv) precedes any `recv == nil` /
// `recv != nil` comparison in source order.
func checkNilGuard(p *Pass, fd *ast.FuncDecl, recv *types.Var, typeName string) {
	guard := token.NoPos
	deref := token.NoPos
	var derefExpr string
	isRecv := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && p.Info.Uses[id] == recv
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.BinaryExpr:
			if (e.Op == token.EQL || e.Op == token.NEQ) &&
				((isRecv(e.X) && isNilIdent(p, e.Y)) || (isRecv(e.Y) && isNilIdent(p, e.X))) {
				if guard == token.NoPos || e.Pos() < guard {
					guard = e.Pos()
				}
			}
		case *ast.SelectorExpr:
			if !isRecv(e.X) {
				return true
			}
			if s := p.Info.Selections[e]; s != nil && s.Kind() == types.FieldVal {
				if deref == token.NoPos || e.Pos() < deref {
					deref, derefExpr = e.Pos(), types.ExprString(e)
				}
			}
		case *ast.StarExpr:
			if isRecv(e.X) {
				if deref == token.NoPos || e.Pos() < deref {
					deref, derefExpr = e.Pos(), types.ExprString(e)
				}
			}
		}
		return true
	})
	if deref == token.NoPos {
		return // no dereference at all: trivially nil-safe
	}
	if guard == token.NoPos {
		p.Reportf(deref, "%s is documented nil-safe but %s.%s dereferences %s without a nil check", typeName, typeName, fd.Name.Name, derefExpr)
		return
	}
	if deref < guard {
		p.Reportf(deref, "%s.%s dereferences %s before the nil check; guard the receiver first", typeName, fd.Name.Name, derefExpr)
	}
}

func isNilIdent(p *Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := p.Info.Uses[id].(*types.Nil)
	return isNil
}
