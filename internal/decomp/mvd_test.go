package decomp_test

import (
	"fmt"
	"testing"

	"repro/internal/datagen"
	"repro/internal/decomp"
	"repro/internal/relstore"
	"repro/internal/tss"
)

// TestMVDTheoremBruteForce validates Theorem 5.3 against materialized
// data: for every fragment of size 2 and 3 that the theorem flags as
// MVD, the populated connection relation must exhibit the claimed
// dependency — grouping rows by the branching interior attribute, the
// group's rows are exactly the cross product of its left and right
// sides, minus the tuples the distinct-subgraph rule excludes.
func TestMVDTheoremBruteForce(t *testing.T) {
	params := datagen.DefaultTPCHParams()
	params.Persons, params.Parts = 20, 15
	ds, err := datagen.TPCH(params)
	if err != nil {
		t.Fatal(err)
	}
	tg := ds.TSS
	store := relstore.NewStore(relstore.DefaultPoolPages)
	var frags []decomp.Fragment
	for n := 2; n <= 3; n++ {
		frags = append(frags, decomp.EnumerateFragments(tg, n, true)...)
	}
	d := &decomp.Decomposition{Name: "test", Fragments: frags}
	if err := decomp.Materialize(store, ds.Obj, d); err != nil {
		t.Fatal(err)
	}

	checkedMVDs := 0
	for _, f := range frags {
		if !f.HasMVD(tg) {
			continue
		}
		rel := store.Relation(f.RelationName())
		if rel == nil || rel.NumRows() < 4 {
			continue // too little data to observe anything
		}
		center, ok := branchingInterior(tg, f)
		if !ok {
			t.Fatalf("%s flagged MVD without a branching interior", f.String(tg))
		}
		if err := verifyMVD(rel, center); err != nil {
			t.Errorf("%s: %v", f.String(tg), err)
		}
		checkedMVDs++
	}
	if checkedMVDs == 0 {
		t.Fatal("no MVD fragments with data; test is vacuous")
	}
	t.Logf("verified the dependency on %d MVD relations", checkedMVDs)
}

// branchingInterior returns the column index of the first interior
// segment entered by a contracting step and left by an expanding step —
// the Theorem 5.3 witness — recomputed from the public API.
func branchingInterior(tg *tss.Graph, f decomp.Fragment) (int, bool) {
	steps := f.Steps()
	expanding := func(id int, dir decomp.Dir) bool {
		e := tg.Edge(id)
		if dir == decomp.Fwd {
			return e.ForwardMany
		}
		return e.BackwardMany
	}
	for i := 0; i+1 < len(steps); i++ {
		rev := decomp.Fwd
		if steps[i].Dir == decomp.Fwd {
			rev = decomp.Bwd
		}
		leftMany := expanding(steps[i].EdgeID, rev)
		rightMany := expanding(steps[i+1].EdgeID, steps[i+1].Dir)
		if leftMany && rightMany {
			return i + 1, true // column of the interior segment
		}
	}
	return 0, false
}

// verifyMVD checks the cross-product-minus-duplicates property at the
// given center column.
func verifyMVD(rel *relstore.Relation, center int) error {
	type group struct {
		lefts, rights map[string][]int64
		rows          map[string]bool
	}
	groups := make(map[int64]*group)
	key := func(xs []int64) string { return fmt.Sprint(xs) }
	rel.Scan(func(row relstore.Row) bool {
		g := groups[row[center]]
		if g == nil {
			g = &group{
				lefts:  make(map[string][]int64),
				rights: make(map[string][]int64),
				rows:   make(map[string]bool),
			}
			groups[row[center]] = g
		}
		left := append([]int64(nil), row[:center]...)
		right := append([]int64(nil), row[center+1:]...)
		g.lefts[key(left)] = left
		g.rights[key(right)] = right
		g.rows[key(row)] = true
		return true
	})
	for cv, g := range groups {
		for _, l := range g.lefts {
			for _, r := range g.rights {
				combined := append(append(append([]int64(nil), l...), cv), r...)
				if hasDup(combined) {
					continue // excluded by the distinct-subgraph rule
				}
				if !g.rows[key(combined)] {
					return fmt.Errorf("center=%d group=%d: expected tuple %v missing", center, cv, combined)
				}
			}
		}
	}
	return nil
}

func hasDup(xs []int64) bool {
	for i := range xs {
		for j := i + 1; j < len(xs); j++ {
			if xs[i] == xs[j] {
				return true
			}
		}
	}
	return false
}
