// Package repro is a from-scratch Go reproduction of the XKeyword system
// from "Keyword Proximity Search on XML Graphs" (V. Hristidis,
// Y. Papakonstantinou, A. Balmin; ICDE 2003).
//
// The implementation lives under internal/: the XML graph model
// (xmlgraph), schema graphs (schema), target schema segments and the
// target-object decomposition (tss), the relational substrate with paged
// storage and a buffer pool (relstore), the master keyword index
// (kwindex), the candidate network generator (cn), TSS-graph
// decompositions and the Figure 12 algorithm (decomp), plan optimization
// (optimizer), nested-loop/hash execution with result caching (exec),
// interactive presentation graphs (presentation), synthetic TPC-H-like
// and DBLP-like datasets (datagen), the §7 experiment harness
// (experiments), and the system facade (core).
//
// See README.md for usage, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the reproduced evaluation.
package repro
