package qserve

import (
	"time"

	"repro/internal/exec"
)

// ResultCache is the exported face of the serving layer's sharded
// LRU+TTL+byte-budget result cache, for other serving surfaces that
// need the same machinery with their own keys — the shard server caches
// /shard/execute responses with it. Keys are opaque here: the caller
// owns their construction and any scoped invalidation over them.
type ResultCache struct {
	c *resultCache
}

// NewResultCache builds a cache with the given shard count, total entry
// and byte bounds, and TTL (non-positive TTL = no expiry).
func NewResultCache(shards, maxEntries int, maxBytes int64, ttl time.Duration) *ResultCache {
	if shards <= 0 {
		shards = 8
	}
	return &ResultCache{c: newResultCache(shards, maxEntries, maxBytes, ttl)}
}

// Get returns the cached results and the meta value stored with them.
func (rc *ResultCache) Get(key string) ([]exec.Result, any, bool) {
	return rc.c.get(key)
}

// Put stores results under key; meta comes back verbatim from Get. It
// returns the number of entries evicted to fit the new one.
func (rc *ResultCache) Put(key string, rs []exec.Result, meta any) int64 {
	return rc.c.put(key, rs, meta)
}

// Clear drops every entry and returns how many were dropped.
func (rc *ResultCache) Clear() int64 { return rc.c.clear() }

// Usage totals the cached entries and approximate bytes.
func (rc *ResultCache) Usage() (entries int, bytes int64) { return rc.c.usage() }
