package qserve

import (
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/pipeline"
)

// serverStats holds the serving counters and the latency histogram.
// Counters are atomics: the serve path must not take a lock just to
// count.
type serverStats struct {
	hits          atomic.Int64
	misses        atomic.Int64
	collapses     atomic.Int64
	sheds         atomic.Int64
	cancels       atomic.Int64
	errors        atomic.Int64
	evictions     atomic.Int64
	invalidations atomic.Int64
	breakerTrips  atomic.Int64
	degraded      atomic.Int64
	relaxed       atomic.Int64
	latency       histogram
}

// histogram is the shared fixed-bucket latency histogram from the obs
// package (bucket i holds durations in [2^i, 2^(i+1)) microseconds).
// The thin wrapper keeps qserve's historical lowercase call sites.
type histogram struct{ obs.Histogram }

func (h *histogram) observe(d time.Duration) { h.Observe(d) }

func (h *histogram) quantile(p float64) time.Duration { return h.Quantile(p) }

// Snapshot is a point-in-time view of the serving counters, shaped for
// JSON (the /debug/qserve endpoint).
type Snapshot struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Collapses int64 `json:"collapses"`
	Sheds     int64 `json:"sheds"`
	Cancels   int64 `json:"cancels"`
	Errors    int64 `json:"errors"`
	Evictions int64 `json:"evictions"`

	// Invalidations counts cache invalidations (full or token-scoped;
	// one per acknowledged ingest batch on a live-index deployment).
	Invalidations int64 `json:"invalidations"`

	// Degraded counts queries answered with a loud degradation note
	// (partial index after a shard loss). Such answers bypass the cache.
	Degraded int64 `json:"degraded"`

	// Relaxed counts executed queries whose keywords were rewritten
	// (dropped/substituted) to be answerable; cache hits on relaxed
	// entries are not re-counted.
	Relaxed int64 `json:"relaxed"`

	CacheEntries int   `json:"cache_entries"`
	CacheBytes   int64 `json:"cache_bytes"`
	InFlight     int   `json:"in_flight"`
	Waiters      int64 `json:"waiters"`

	// BreakerOpen and BreakerTrips describe the admission breaker;
	// RetryAfterMillis is the current backoff hint shed clients receive.
	BreakerOpen      bool  `json:"breaker_open"`
	BreakerTrips     int64 `json:"breaker_trips"`
	RetryAfterMillis int64 `json:"retry_after_ms"`

	// IndexState and IndexErr surface the index backend's health (see
	// core.IndexHealth): a disk-backed reader fails softly — lookups
	// return empty results and the first failure parks in Err() — so
	// without this a corrupt index would be invisible here.
	IndexState string `json:"index_state,omitempty"`
	IndexErr   string `json:"index_err,omitempty"`

	// Shards lists the per-shard states when the engine is a
	// scatter-gather coordinator.
	Shards []ShardState `json:"shards,omitempty"`

	Served     int64         `json:"served"`
	MeanMicros int64         `json:"mean_us"`
	P50        time.Duration `json:"p50_ns"`
	P95        time.Duration `json:"p95_ns"`

	// Pipeline is the engine's cumulative per-stage breakdown, when the
	// engine exposes one (core.System does). Misses executed the
	// pipeline; hits were answered from the result cache — so
	// Pipeline.Queries tracks Misses, not Served, and the difference is
	// the work the cache absorbed.
	Pipeline *pipeline.Snapshot `json:"pipeline,omitempty"`
}

// pipelineSource is the optional engine interface Stats uses to embed
// the per-stage pipeline counters.
type pipelineSource interface {
	PipelineSnapshot() pipeline.Snapshot
}

// Stats returns a snapshot of the serving counters and latencies.
func (s *Server) Stats() Snapshot {
	snap := Snapshot{
		Hits:          s.stats.hits.Load(),
		Misses:        s.stats.misses.Load(),
		Collapses:     s.stats.collapses.Load(),
		Sheds:         s.stats.sheds.Load(),
		Cancels:       s.stats.cancels.Load(),
		Errors:        s.stats.errors.Load(),
		Evictions:     s.stats.evictions.Load(),
		Invalidations: s.stats.invalidations.Load(),
		Degraded:      s.stats.degraded.Load(),
		Relaxed:       s.stats.relaxed.Load(),
		InFlight:      s.InFlight(),
		Waiters:       s.waiters.Load(),

		BreakerOpen:      s.breakerOpen(),
		BreakerTrips:     s.stats.breakerTrips.Load(),
		RetryAfterMillis: s.RetryAfter().Milliseconds(),

		Served: s.stats.latency.Count(),
		P50:    s.stats.latency.quantile(0.50),
		P95:    s.stats.latency.quantile(0.95),
	}
	if hs, ok := s.eng.(healthSource); ok {
		state, err := hs.IndexHealthState()
		snap.IndexState = string(state)
		if err != nil {
			snap.IndexErr = err.Error()
			s.noteIndexErr(err)
		}
	}
	if s.cache != nil {
		snap.CacheEntries, snap.CacheBytes = s.cache.usage()
	}
	if snap.Served > 0 {
		snap.MeanMicros = int64(s.stats.latency.Sum()) / snap.Served / int64(time.Microsecond)
	}
	if src, ok := s.eng.(pipelineSource); ok {
		p := src.PipelineSnapshot()
		snap.Pipeline = &p
	}
	snap.Shards = s.ShardStates()
	return snap
}
