package tss_test

import (
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/schema"
	"repro/internal/tss"
	"repro/internal/xmlgraph"
)

func tpchTSS(t *testing.T) *tss.Graph {
	t.Helper()
	g, err := tss.Derive(datagen.TPCHSchema(), datagen.TPCHSpec())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func findEdge(t *testing.T, g *tss.Graph, path string) tss.Edge {
	t.Helper()
	for _, e := range g.Edges() {
		if e.PathString() == path {
			return e
		}
	}
	t.Fatalf("no TSS edge with path %q; have %v", path, paths(g))
	return tss.Edge{}
}

func paths(g *tss.Graph) []string {
	var out []string
	for _, e := range g.Edges() {
		out = append(out, e.PathString())
	}
	return out
}

func TestDeriveTPCHEdges(t *testing.T) {
	g := tpchTSS(t)
	want := map[string]struct {
		from, to string
		kind     xmlgraph.EdgeKind
		fMany    bool // ForwardMany
		bMany    bool // BackwardMany
		choice   string
	}{
		"person>order":             {"person", "order", xmlgraph.Containment, true, false, ""},
		"order>lineitem":           {"order", "lineitem", xmlgraph.Containment, true, false, ""},
		"lineitem>supplier>person": {"lineitem", "person", xmlgraph.Reference, false, true, ""},
		"lineitem>line>part":       {"lineitem", "part", xmlgraph.Reference, false, true, "line"},
		"lineitem>line>product":    {"lineitem", "product", xmlgraph.Containment, false, false, "line"},
		"part>sub>part":            {"part", "part", xmlgraph.Containment, true, false, ""},
		"service_call>person":      {"service_call", "person", xmlgraph.Reference, false, true, ""},
	}
	if g.NumEdges() != len(want) {
		t.Fatalf("derived %d edges %v, want %d", g.NumEdges(), paths(g), len(want))
	}
	for path, w := range want {
		e := findEdge(t, g, path)
		if e.From != w.from || e.To != w.to {
			t.Errorf("%s: endpoints %s->%s, want %s->%s", path, e.From, e.To, w.from, w.to)
		}
		if e.Kind != w.kind {
			t.Errorf("%s: kind %v, want %v", path, e.Kind, w.kind)
		}
		if e.ForwardMany != w.fMany || e.BackwardMany != w.bMany {
			t.Errorf("%s: multiplicity fwd=%v bwd=%v, want fwd=%v bwd=%v",
				path, e.ForwardMany, e.BackwardMany, w.fMany, w.bMany)
		}
		if e.ChoicePrefix != w.choice {
			t.Errorf("%s: choice prefix %q, want %q", path, e.ChoicePrefix, w.choice)
		}
	}
}

func TestDeriveAnnotations(t *testing.T) {
	g := tpchTSS(t)
	e := findEdge(t, g, "lineitem>supplier>person")
	if e.ForwardLabel != "supplied by" || e.BackwardLabel != "supplier of" {
		t.Fatalf("labels = %q/%q", e.ForwardLabel, e.BackwardLabel)
	}
	// Unannotated edges get kind-based defaults.
	sg := datagen.TPCHSchema()
	spec := datagen.TPCHSpec()
	spec.Annotations = nil
	g2, err := tss.Derive(sg, spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g2.Edges() {
		if e.ForwardLabel == "" || e.BackwardLabel == "" {
			t.Fatalf("edge %s has empty default label", e.PathString())
		}
	}
}

func TestDeriveValidation(t *testing.T) {
	sg := datagen.TPCHSchema()
	cases := []struct {
		name string
		spec tss.Spec
	}{
		{"empty head", tss.Spec{Segments: []tss.SegmentSpec{{Name: "x"}}}},
		{"unknown head", tss.Spec{Segments: []tss.SegmentSpec{{Name: "x", Head: "nope"}}}},
		{"unknown member", tss.Spec{Segments: []tss.SegmentSpec{{Name: "x", Head: "person", Members: []string{"nope"}}}}},
		{"duplicate segment", tss.Spec{Segments: []tss.SegmentSpec{
			{Name: "x", Head: "person"}, {Name: "x", Head: "order"}}}},
		{"shared member", tss.Spec{Segments: []tss.SegmentSpec{
			{Name: "x", Head: "person", Members: []string{"name"}},
			{Name: "y", Head: "part", Members: []string{"name"}}}}},
		{"unreachable member", tss.Spec{Segments: []tss.SegmentSpec{
			{Name: "x", Head: "person", Members: []string{"key"}}}}},
	}
	for _, c := range cases {
		if _, err := tss.Derive(sg, c.spec); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestSegmentLookups(t *testing.T) {
	g := tpchTSS(t)
	if g.SegmentOf("nation") != "person" {
		t.Fatalf("SegmentOf(nation) = %q", g.SegmentOf("nation"))
	}
	if !g.IsDummy("supplier") || g.IsDummy("person") || g.IsDummy("nosuch") {
		t.Fatal("IsDummy wrong")
	}
	if seg, ok := g.HeadSegment("part"); !ok || seg != "part" {
		t.Fatalf("HeadSegment(part) = %q,%v", seg, ok)
	}
	if _, ok := g.HeadSegment("key"); ok {
		t.Fatal("non-head reported as head")
	}
	if len(g.Segments()) != 6 {
		t.Fatalf("segments = %v", g.Segments())
	}
	// part has a self-edge: it appears in both Out and In.
	self := findEdge(t, g, "part>sub>part")
	inPart, outPart := false, false
	for _, id := range g.Out("part") {
		if id == self.ID {
			outPart = true
		}
	}
	for _, id := range g.In("part") {
		if id == self.ID {
			inPart = true
		}
	}
	if !inPart || !outPart {
		t.Fatal("self edge missing from adjacency")
	}
}

func TestDeriveRejectsDummyCycle(t *testing.T) {
	sg := schema.New()
	sg.MustBuild(
		sg.AddNode("a", schema.All),
		sg.AddNode("d1", schema.All),
		sg.AddNode("d2", schema.All),
		sg.SetRoot("a"),
		sg.AddEdge("a", "d1", xmlgraph.Containment, 1),
		sg.AddEdge("d1", "d2", xmlgraph.Containment, 1),
		sg.AddEdge("d2", "d1", xmlgraph.Reference, 1),
	)
	_, err := tss.Derive(sg, tss.Spec{Segments: []tss.SegmentSpec{{Name: "a", Head: "a"}}})
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("dummy cycle not detected: %v", err)
	}
}

func TestDecomposeFigure1(t *testing.T) {
	ds, err := datagen.TPCHFigure1()
	if err != nil {
		t.Fatal(err)
	}
	og := ds.Obj
	// TOs: 2 persons, 1 order, 3 lineitems, 3 parts (TV + 2 VCR subs),
	// 1 product, 1 service call = 11.
	if og.NumObjects() != 11 {
		t.Fatalf("objects = %d, want 11", og.NumObjects())
	}
	counts := map[string]int{}
	for _, id := range og.Objects() {
		counts[og.TO(id).Segment]++
	}
	want := map[string]int{"person": 2, "order": 1, "lineitem": 3, "part": 3, "product": 1, "service_call": 1}
	for seg, n := range want {
		if counts[seg] != n {
			t.Errorf("segment %s: %d objects, want %d", seg, counts[seg], n)
		}
	}
	// The person TO includes its name and nation nodes.
	p := og.BySegment("person")[0]
	if got := len(og.TO(p).Nodes); got != 3 {
		t.Fatalf("person TO has %d nodes, want 3", got)
	}
	// Object edges: person->order (1), order->lineitem (3),
	// lineitem->person (3 via supplier), lineitem->part (2, both to TV),
	// lineitem->product (1), part->part (2 subs), service_call->person (1).
	if og.NumEdges() != 13 {
		t.Fatalf("object edges = %d, want 13", og.NumEdges())
	}
	// The TV part must have 2 incoming lineitem edges and 2 outgoing subs.
	var tv int64 = -1
	for _, id := range og.BySegment("part") {
		if strings.Contains(og.Summary(id), "TV") {
			tv = id
		}
	}
	if tv < 0 {
		t.Fatal("TV part not found")
	}
	inLI, outSub := 0, 0
	for _, e := range og.In(tv) {
		if og.TO(e.From).Segment == "lineitem" {
			inLI++
		}
	}
	for _, e := range og.Out(tv) {
		if og.TO(e.To).Segment == "part" {
			outSub++
		}
	}
	if inLI != 2 || outSub != 2 {
		t.Fatalf("TV edges: %d lineitems in, %d subs out; want 2, 2", inLI, outSub)
	}
}

func TestDecomposeRequiresTypes(t *testing.T) {
	g := tpchTSS(t)
	d := xmlgraph.New()
	d.AddNode("person", "") // untyped
	if _, err := g.Decompose(d); err == nil {
		t.Fatal("untyped graph accepted")
	}
}

func TestBlobAndSummary(t *testing.T) {
	ds, err := datagen.TPCHFigure1()
	if err != nil {
		t.Fatal(err)
	}
	og := ds.Obj
	var john int64 = -1
	for _, id := range og.BySegment("person") {
		if strings.Contains(og.Summary(id), "John") {
			john = id
		}
	}
	if john < 0 {
		t.Fatal("John not found")
	}
	blob, err := og.BlobXML(john)
	if err != nil {
		t.Fatal(err)
	}
	s := string(blob)
	for _, frag := range []string{"<person", "<name", "John", "<nation", "US"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("blob %q missing %q", s, frag)
		}
	}
	if strings.Contains(s, "order") {
		t.Fatalf("blob leaked non-member subtree: %q", s)
	}
	if _, err := og.BlobXML(999999); err == nil {
		t.Fatal("unknown TO accepted")
	}
	if sum := og.Summary(john); !strings.Contains(sum, "name=John") || !strings.Contains(sum, "nation=US") {
		t.Fatalf("summary = %q", sum)
	}
}

func TestDecomposeDBLP(t *testing.T) {
	ds, err := datagen.DBLP(datagen.DefaultDBLPParams())
	if err != nil {
		t.Fatal(err)
	}
	p := datagen.DefaultDBLPParams()
	og := ds.Obj
	wantPapers := p.Conferences * p.YearsPerConf * p.PapersPerYear
	if got := len(og.BySegment("paper")); got != wantPapers {
		t.Fatalf("papers = %d, want %d", got, wantPapers)
	}
	if got := len(og.BySegment("author")); got != p.Authors {
		t.Fatalf("authors = %d, want %d", got, p.Authors)
	}
	// TSS edges of Figure 14.
	wantEdges := map[string]bool{
		"conference>confyear":    true,
		"confyear>paper":         true,
		"paper>authorref>author": true,
		"paper>cite>paper":       true,
	}
	for _, e := range ds.TSS.Edges() {
		if !wantEdges[e.PathString()] {
			t.Fatalf("unexpected TSS edge %s", e.PathString())
		}
		delete(wantEdges, e.PathString())
	}
	if len(wantEdges) != 0 {
		t.Fatalf("missing TSS edges: %v", wantEdges)
	}
	// Every paper TO has ≥1 author edge.
	for _, id := range og.BySegment("paper") {
		hasAuthor := false
		for _, e := range og.Out(id) {
			if og.TO(e.To).Segment == "author" {
				hasAuthor = true
				break
			}
		}
		if !hasAuthor {
			t.Fatalf("paper %d has no author edge", id)
		}
	}
}
