package core

import (
	"repro/internal/diskindex"
	"repro/internal/kwindex"
)

// PostingSource is the master-index read interface the whole query
// pipeline — CN generation, planning, execution, strict-minimality
// filtering and the presentation graphs — consumes. It aliases
// kwindex.Source (defined next to the Posting type, where both backends
// can implement it without an import cycle) and is satisfied by
//
//   - *kwindex.Index: the in-memory index the load stage builds, and
//   - *diskindex.Reader: the paged, disk-backed index served through a
//     buffer pool, for datasets whose index does not fit in RAM and for
//     O(1)-cold-start restores.
//
// Swap backends by assigning System.Index; everything downstream is
// oblivious to which one it reads.
type PostingSource = kwindex.Source

var (
	_ PostingSource = (*kwindex.Index)(nil)
	_ PostingSource = (*diskindex.Reader)(nil)
)
