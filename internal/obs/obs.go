// Package obs provides the observability primitives threaded through
// the query pipeline: nanosecond spans collected into a per-query Trace
// (a nil Trace is valid, and every operation on it is an allocation-free
// no-op), lock-free counters, and fixed-bucket latency histograms whose
// power-of-two bounds make recording a bit-length instruction. Standard
// library only, like the rest of the repo.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a lock-free cumulative counter. Like Trace, it is
// nil-safe: a nil *Counter is a valid no-op sink, so callers can wire
// optional metrics without nil checks of their own.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Load returns the current value.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// HistBuckets is the number of histogram buckets: bucket i holds
// durations in [2^i, 2^(i+1)) microseconds, the last bucket catches the
// overflow (≥ ~8.4 s).
const HistBuckets = 24

// Histogram is a fixed-bucket latency histogram. Power-of-two bucket
// bounds make Observe a bit-length instruction and keep the whole
// structure a flat array of atomics — no locks, safe for concurrent
// use, and cheap enough to sit on every hot path. Like Trace, it is
// nil-safe: a nil *Histogram observes into the void.
type Histogram struct {
	buckets [HistBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	us := uint64(d / time.Microsecond)
	b := bits.Len64(us) // 0 for 0–1µs, 1 for 2–3µs, ...
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// BucketUpper is the inclusive upper bound of bucket b.
func BucketUpper(b int) time.Duration {
	return time.Duration((uint64(1)<<uint(b))-1) * time.Microsecond
}

// Quantile returns the upper bound of the bucket containing the p-th
// (0..1) observation of the snapshot taken bucket by bucket. With
// power-of-two buckets the answer is within 2× of the true quantile,
// which is what an operations dashboard needs.
func (h *Histogram) Quantile(p float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(p*float64(total) + 0.5)
	if target < 1 {
		target = 1
	}
	var cum int64
	for b := 0; b < HistBuckets; b++ {
		cum += h.buckets[b].Load()
		if cum >= target {
			return BucketUpper(b)
		}
	}
	return BucketUpper(HistBuckets - 1)
}
