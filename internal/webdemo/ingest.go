package webdemo

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/kwindex"
	"repro/internal/segidx"
)

// maxIngestBody bounds one /api/ingest request body.
const maxIngestBody = 32 << 20

// EnableIngest attaches a live segidx store to the server: /api/ingest
// accepts write batches against it and /debug/segidx exposes its shape.
// cmd/xkserve calls this when -segdir is set, after pointing the
// system's master index at the same store, so every acknowledged batch
// is durable (WAL) and immediately visible to queries.
func (s *Server) EnableIngest(st *segidx.Store) { s.ingest = st }

// ingestRequest is the /api/ingest body: documents to add (an existing
// TO is replaced — newest wins) and target objects to delete. The whole
// request is one atomic, durable batch.
type ingestRequest struct {
	Add    []segidx.Document `json:"add"`
	Delete []int64           `json:"delete"`
	// Flush forces the memtable to a committed on-disk segment after
	// the batch is applied (otherwise flushing follows the store's
	// size-based policy).
	Flush bool `json:"flush"`
}

// handleIngest applies one write batch to the live index. The batch is
// acknowledged only after its WAL record is durable; the result cache
// is invalidated so no stale answer survives the write.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.ingest == nil {
		httpError(w, http.StatusNotFound, errors.New("live ingestion not enabled (start xkserve with -segdir)"))
		return
	}
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		httpError(w, http.StatusMethodNotAllowed, errors.New("POST a JSON batch: {\"add\": [...], \"delete\": [...]}"))
		return
	}
	var req ingestRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxIngestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad ingest body: %w", err))
		return
	}
	var batch segidx.Batch
	for _, d := range req.Add {
		batch.AddDoc(d)
	}
	for _, to := range req.Delete {
		batch.DeleteTO(to)
	}
	if len(batch) == 0 {
		httpError(w, http.StatusBadRequest, errors.New("empty batch: nothing to add or delete"))
		return
	}
	if err := s.ingest.Apply(batch); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	if req.Flush {
		if err := s.ingest.Flush(); err != nil {
			// The batch itself is durable; report the flush failure
			// without unacknowledging the write.
			httpError(w, http.StatusInternalServerError, fmt.Errorf("batch durable but flush failed: %w", err))
			return
		}
	}
	// Cache invalidation is scoped to the batch's token footprint when it
	// is knowable: an added document's tokens come from its own fields,
	// so only cached queries mentioning one of them can be stale. A
	// delete's footprint is NOT knowable from the request — the removed
	// document's tokens live in the index layers, not the batch — so any
	// batch with deletes falls back to full invalidation.
	if len(req.Delete) > 0 {
		s.qs.InvalidateCache()
	} else {
		s.qs.InvalidateCacheTokens(ingestTokens(req.Add))
	}
	writeJSON(w, map[string]interface{}{
		"added":   len(req.Add),
		"deleted": len(req.Delete),
		"flushed": req.Flush,
	})
}

// ingestTokens collects the distinct index tokens of the batch's added
// documents — the exact set kwindex.Build would index for them, and
// therefore the widest set of keywords whose cached answers the batch
// can change.
func ingestTokens(docs []segidx.Document) []string {
	seen := make(map[string]bool)
	var out []string
	for _, d := range docs {
		for _, f := range d.Fields {
			for _, tok := range append(kwindex.Tokenize(f.Label), kwindex.Tokenize(f.Value)...) {
				if !seen[tok] {
					seen[tok] = true
					out = append(out, tok)
				}
			}
		}
	}
	return out
}

// handleSegidxStats exposes the live store's shape — segments, memtable
// occupancy, WAL sequence, flush/compaction counters — for dashboards
// and the ingest tests.
func (s *Server) handleSegidxStats(w http.ResponseWriter, r *http.Request) {
	if s.ingest == nil {
		httpError(w, http.StatusNotFound, errors.New("live ingestion not enabled (start xkserve with -segdir)"))
		return
	}
	writeJSON(w, s.ingest.Stats())
}
