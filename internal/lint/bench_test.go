package lint

import (
	"testing"
	"time"
)

// BenchmarkXkvet measures the full `make lint` unit of work: load,
// parse, and type-check every module package, build the flow facts and
// call graph, and run the analyzers. The typecheck variant runs the
// same load with an empty analyzer list, so the difference between the
// two is what the eleven analyzers themselves cost on top of the
// type-check they share.
func BenchmarkXkvet(b *testing.B) {
	root, err := ModuleRoot(".")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("typecheck", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := CheckModule(root, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := CheckModule(root, Analyzers()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestXkvetWallClock is the `make lint` latency brake: one full-module
// run must finish far inside a minute (it takes a few seconds today).
// The fact layer runs fixpoint loops per function and the call-graph
// pass is module-wide, so an accidentally superlinear (or, as once
// shipped, cyclic) traversal shows up here as a budget blowout rather
// than as a CI job that silently got slower.
func TestXkvetWallClock(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type-check is slow; skipped in -short mode")
	}
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := CheckModule(root, Analyzers()); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 60*time.Second {
		t.Errorf("full-module xkvet took %v, over the 60s budget — a flow or call-graph pass has gone superlinear", d)
	}
}
