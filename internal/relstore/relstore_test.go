package relstore

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestRelation(t *testing.T, s *Store, name string, rows []Row) *Relation {
	t.Helper()
	cols := []string{"a", "b"}
	if len(rows) > 0 {
		cols = make([]string, len(rows[0]))
		for i := range cols {
			cols[i] = string(rune('a' + i))
		}
	}
	r, err := s.CreateRelation(name, cols)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if err := r.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	r.Seal()
	return r
}

func TestCreateRelationValidation(t *testing.T) {
	s := NewStore(16)
	if _, err := s.CreateRelation("", []string{"a"}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := s.CreateRelation("r", nil); err == nil {
		t.Fatal("no columns accepted")
	}
	if _, err := s.CreateRelation("r", []string{"a"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateRelation("r", []string{"a"}); err == nil {
		t.Fatal("duplicate relation accepted")
	}
	if s.Relation("r") == nil || s.Relation("nope") != nil {
		t.Fatal("Relation lookup wrong")
	}
}

func TestInsertValidation(t *testing.T) {
	s := NewStore(16)
	r, _ := s.CreateRelation("r", []string{"a", "b"})
	if err := r.Insert(Row{1}); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if err := r.Insert(Row{1, 2}); err != nil {
		t.Fatal(err)
	}
	r.Seal()
	if err := r.Insert(Row{3, 4}); err == nil {
		t.Fatal("insert after seal accepted")
	}
}

func TestLookupPathsAgree(t *testing.T) {
	// The same logical lookup must return the same multiset of rows on
	// every access path.
	rng := rand.New(rand.NewSource(42))
	var rows []Row
	for i := 0; i < 1000; i++ {
		rows = append(rows, Row{int64(rng.Intn(50)), int64(rng.Intn(50)), int64(i)})
	}
	s := NewStore(64)
	scanRel := newTestRelation(t, s, "scan", rows)
	hashRel := newTestRelation(t, s, "hash", rows)
	hashRel.BuildAllHashIndexes()
	clustRel := newTestRelation(t, s, "clust", rows)
	if err := clustRel.Cluster(0); err != nil {
		t.Fatal(err)
	}
	ordRel := newTestRelation(t, s, "ord", rows)
	if err := ordRel.AddOrdering(0, 1); err != nil {
		t.Fatal(err)
	}

	count := func(rs []Row) map[[3]int64]int {
		m := make(map[[3]int64]int)
		for _, r := range rs {
			m[[3]int64{r[0], r[1], r[2]}]++
		}
		return m
	}
	for v := int64(0); v < 50; v++ {
		got0, p0 := scanRel.LookupPrefix([]int{0}, []int64{v})
		got1, p1 := hashRel.LookupPrefix([]int{0}, []int64{v})
		got2, p2 := clustRel.LookupPrefix([]int{0}, []int64{v})
		got3, p3 := ordRel.LookupPrefix([]int{0}, []int64{v})
		if p0 != PathScan || p1 != PathHash || p2 != PathClustered || p3 != PathClustered {
			t.Fatalf("paths = %v %v %v %v", p0, p1, p2, p3)
		}
		c0 := count(got0)
		for name, c := range map[string]map[[3]int64]int{"hash": count(got1), "clust": count(got2), "ord": count(got3)} {
			if len(c) != len(c0) {
				t.Fatalf("v=%d: %s returned %d distinct rows, scan %d", v, name, len(c), len(c0))
			}
			for k, n := range c0 {
				if c[k] != n {
					t.Fatalf("v=%d: %s disagrees on %v: %d vs %d", v, name, k, c[k], n)
				}
			}
		}
	}
}

func TestLookupPrefixMultiColumn(t *testing.T) {
	s := NewStore(16)
	r := newTestRelation(t, s, "r", []Row{
		{1, 10, 100}, {1, 10, 101}, {1, 20, 102}, {2, 10, 103},
	})
	if err := r.AddOrdering(0, 1); err != nil {
		t.Fatal(err)
	}
	rows, path := r.LookupPrefix([]int{0, 1}, []int64{1, 10})
	if path != PathClustered || len(rows) != 2 {
		t.Fatalf("rows=%v path=%v", rows, path)
	}
	// Without a matching ordering the lookup degrades to a scan.
	rows2, path2 := r.LookupPrefix([]int{1, 2}, []int64{10, 103})
	if path2 != PathScan || len(rows2) != 1 {
		t.Fatalf("rows=%v path=%v", rows2, path2)
	}
}

func TestLookupEqMissingValue(t *testing.T) {
	s := NewStore(16)
	r := newTestRelation(t, s, "r", []Row{{1, 2}, {3, 4}})
	r.BuildAllHashIndexes()
	if rows := r.LookupEq(0, 99); rows != nil {
		t.Fatalf("rows = %v, want nil", rows)
	}
}

func TestScanEarlyStop(t *testing.T) {
	s := NewStore(16)
	var rows []Row
	for i := 0; i < 10; i++ {
		rows = append(rows, Row{int64(i), 0})
	}
	r := newTestRelation(t, s, "r", rows)
	n := 0
	r.Scan(func(Row) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("scanned %d rows, want 3", n)
	}
}

func TestIOAccounting(t *testing.T) {
	s := NewStore(2) // tiny pool: 2 pages
	var rows []Row
	for i := 0; i < PageRows*4; i++ { // 4 pages
		rows = append(rows, Row{int64(i), int64(i % 7)})
	}
	r := newTestRelation(t, s, "r", rows)
	r.Scan(func(Row) bool { return true })
	st := s.Stats.Snapshot()
	if st.PageReads != 4 {
		t.Fatalf("first scan reads = %d, want 4", st.PageReads)
	}
	// Pool holds 2 pages; a second scan re-reads at least 2 pages.
	r.Scan(func(Row) bool { return true })
	st2 := s.Stats.Snapshot()
	if st2.PageReads <= st.PageReads {
		t.Fatalf("second scan should miss with a 2-page pool: %d -> %d", st.PageReads, st2.PageReads)
	}
	if st2.Scans != 2 || st2.RowsRead != int64(2*len(rows)) {
		t.Fatalf("stats = %+v", st2)
	}
}

func TestBufferPoolHitsAfterWarm(t *testing.T) {
	s := NewStore(64)
	var rows []Row
	for i := 0; i < PageRows*3; i++ {
		rows = append(rows, Row{int64(i % 5), int64(i)})
	}
	r := newTestRelation(t, s, "r", rows)
	if err := r.Cluster(0); err != nil {
		t.Fatal(err)
	}
	r.LookupEq(0, 3)
	st := s.Stats.Snapshot()
	r.LookupEq(0, 3)
	st2 := s.Stats.Snapshot()
	if st2.PageReads != st.PageReads {
		t.Fatalf("warm lookup missed: %d -> %d", st.PageReads, st2.PageReads)
	}
	if st2.PageHits <= st.PageHits {
		t.Fatalf("warm lookup recorded no hits: %+v", st2)
	}
}

func TestBufferPoolLRU(t *testing.T) {
	p := NewBufferPool(2)
	k := func(i int32) PageKey { return PageKey{Relation: "r", Page: i} }
	if p.Access(k(1)) || p.Access(k(2)) {
		t.Fatal("cold accesses reported hits")
	}
	if !p.Access(k(1)) {
		t.Fatal("cached page missed")
	}
	p.Access(k(3)) // evicts 2 (LRU)
	if p.Access(k(2)) {
		t.Fatal("evicted page reported hit")
	}
	if p.Len() != 2 {
		t.Fatalf("pool len = %d", p.Len())
	}
	p.Reset()
	if p.Len() != 0 {
		t.Fatal("reset did not empty pool")
	}
	// Zero-capacity pool never hits.
	z := NewBufferPool(0)
	if z.Access(k(1)) || z.Access(k(1)) {
		t.Fatal("zero-capacity pool cached")
	}
}

func TestClusterRebuildsIndexes(t *testing.T) {
	s := NewStore(16)
	r := newTestRelation(t, s, "r", []Row{{3, 30}, {1, 10}, {2, 20}})
	r.BuildAllHashIndexes()
	if err := r.AddOrdering(1); err != nil {
		t.Fatal(err)
	}
	if err := r.Cluster(0); err != nil {
		t.Fatal(err)
	}
	// Hash index must still find the right row after the physical sort.
	rows, path := r.LookupPrefix([]int{1}, []int64{30})
	if len(rows) != 1 || rows[0][0] != 3 {
		t.Fatalf("rows=%v path=%v", rows, path)
	}
	// Ordering on col 1 must have been rebuilt.
	if _, ok := r.ClusteredOn([]int{1}); !ok {
		t.Fatal("ordering on col 1 lost after Cluster")
	}
	if _, ok := r.ClusteredOn([]int{0}); !ok {
		t.Fatal("primary clustering not reported")
	}
}

func TestClusteredOnPrefixSemantics(t *testing.T) {
	s := NewStore(16)
	r := newTestRelation(t, s, "r", []Row{{1, 2, 3}})
	if err := r.AddOrdering(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.ClusteredOn([]int{0}); !ok {
		t.Fatal("prefix [0] of ordering [0,1] not matched")
	}
	if _, ok := r.ClusteredOn([]int{1}); ok {
		t.Fatal("non-prefix [1] matched")
	}
}

func TestBlobs(t *testing.T) {
	s := NewStore(16)
	s.PutBlob(7, []byte("<part/>"))
	b, ok := s.Blob(7)
	if !ok || string(b) != "<part/>" {
		t.Fatalf("blob = %q, %v", b, ok)
	}
	if _, ok := s.Blob(8); ok {
		t.Fatal("missing blob found")
	}
}

func TestStoreTotals(t *testing.T) {
	s := NewStore(16)
	newTestRelation(t, s, "a", []Row{{1, 2}, {3, 4}})
	newTestRelation(t, s, "b", make([]Row, 0))
	if s.TotalRows() != 2 {
		t.Fatalf("TotalRows = %d", s.TotalRows())
	}
	if got := s.Relations(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Relations = %v", got)
	}
	if s.TotalPages() != 1 {
		t.Fatalf("TotalPages = %d", s.TotalPages())
	}
}

// Property: for random data, LookupPrefix on a clustered relation returns
// exactly the rows a filter scan returns.
func TestQuickClusteredEqualsScan(t *testing.T) {
	f := func(seed int64, nRaw uint16, domainRaw uint8) bool {
		n := int(nRaw%500) + 1
		domain := int64(domainRaw%20) + 1
		rng := rand.New(rand.NewSource(seed))
		s := NewStore(32)
		r, _ := s.CreateRelation("r", []string{"x", "y"})
		for i := 0; i < n; i++ {
			if err := r.Insert(Row{rng.Int63n(domain), rng.Int63n(domain)}); err != nil {
				return false
			}
		}
		r.Seal()
		want := make(map[int64]int)
		r.Scan(func(row Row) bool { want[row[0]*1000+row[1]]++; return true })
		if err := r.Cluster(0); err != nil {
			return false
		}
		got := make(map[int64]int)
		for v := int64(0); v < domain; v++ {
			for _, row := range r.LookupEq(0, v) {
				got[row[0]*1000+row[1]]++
			}
		}
		if len(got) != len(want) {
			return false
		}
		for k, c := range want {
			if got[k] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
