package cn

import (
	"fmt"
	"sort"

	"repro/internal/schema"
	"repro/internal/xmlgraph"
)

// Input parameterizes candidate network generation.
type Input struct {
	Schema   *schema.Graph
	Keywords []string
	// SchemaNodesOf lists, per keyword, the schema nodes whose extensions
	// contain it (from the master index's containing lists).
	SchemaNodesOf map[string][]string
	// MaxSize is Z, the maximum MTNN size the user is interested in.
	MaxSize int
	// MaxNetworks bounds the output as a safety valve (0 = unlimited).
	MaxNetworks int
}

// Generate enumerates all candidate networks of size up to Z in
// non-decreasing size order. The algorithm grows partial networks
// breadth-first from occurrences holding the first keyword, attaching
// one occurrence per step along schema edges in either direction, and
// prunes:
//
//   - duplicates, via canonical forms;
//   - occurrences with two containment parents (an element has one);
//   - choice occurrences instantiating more than one alternative;
//   - children beyond a containment edge's maxOccurs;
//   - partial networks that can no longer cover the remaining keywords
//     within the size budget.
//
// A partial network is emitted when every keyword is assigned and every
// leaf is a keyword occurrence.
func Generate(in Input) ([]*Network, error) {
	if in.Schema == nil || len(in.Keywords) == 0 {
		return nil, fmt.Errorf("cn: need a schema and at least one keyword")
	}
	if in.MaxSize < 0 {
		return nil, fmt.Errorf("cn: negative MaxSize")
	}
	for _, k := range in.Keywords {
		if len(in.SchemaNodesOf[k]) == 0 {
			// Some keyword occurs nowhere: no results, no networks.
			return nil, nil
		}
		for _, s := range in.SchemaNodesOf[k] {
			if in.Schema.Node(s) == nil {
				return nil, fmt.Errorf("cn: keyword %q maps to unknown schema node %q", k, s)
			}
		}
	}

	kwIdx := make(map[string]int, len(in.Keywords))
	for i, k := range in.Keywords {
		kwIdx[k] = i
	}
	canHold := func(s string, kws []string) bool {
		for _, k := range kws {
			found := false
			for _, sn := range in.SchemaNodesOf[k] {
				if sn == s {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}

	type partial struct {
		net       *Network
		remaining uint32 // bitmask over in.Keywords still unassigned
	}
	fullMask := uint32(1)<<uint(len(in.Keywords)) - 1
	maskOf := func(kws []string) uint32 {
		var m uint32
		for _, k := range kws {
			m |= 1 << uint(kwIdx[k])
		}
		return m
	}

	// Seeds: every schema node that can hold the first keyword, annotated
	// with every subset of keywords containing it that the node can hold.
	var queue []partial
	seen := make(map[string]bool)
	k0 := in.Keywords[0]
	for _, s := range in.SchemaNodesOf[k0] {
		for _, sub := range keywordSubsets(in.Keywords, k0) {
			if !canHold(s, sub) {
				continue
			}
			net := &Network{Occs: []Occ{{Schema: s, Keywords: sub}}}
			key := net.Canon()
			if seen[key] {
				continue
			}
			seen[key] = true
			queue = append(queue, partial{net: net, remaining: fullMask &^ maskOf(sub)})
		}
	}

	var out []*Network
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		if p.remaining == 0 && allLeavesBound(p.net) {
			out = append(out, p.net)
			if in.MaxNetworks > 0 && len(out) >= in.MaxNetworks {
				break
			}
			continue // complete networks cannot grow into new candidates
		}
		if p.net.Size() >= in.MaxSize {
			continue
		}
		for v := range p.net.Occs {
			for _, nb := range in.Schema.Neighbors(p.net.Occs[v].Schema) {
				for _, sub := range extensionSubsets(in.Keywords, p.remaining) {
					if len(sub) > 0 && !canHold(nb.Node, sub) {
						continue
					}
					child := Occ{Schema: nb.Node, Keywords: sub}
					net := p.net.Clone()
					ci := len(net.Occs)
					net.Occs = append(net.Occs, child)
					var e Edge
					if nb.Forward {
						e = Edge{From: v, To: ci, Kind: nb.Edge.Kind}
					} else {
						e = Edge{From: ci, To: v, Kind: nb.Edge.Kind}
					}
					net.Edges = append(net.Edges, e)
					if !admissible(in.Schema, net, e) {
						continue
					}
					rem := p.remaining &^ maskOf(sub)
					// Feasibility: every free leaf needs at least one more
					// edge to become keyword-bound, and remaining keywords
					// need at least one new occurrence.
					need := 0
					for _, l := range net.Leaves() {
						if net.Occs[l].Free() {
							need++
						}
					}
					if need == 0 && rem != 0 {
						need = 1
					}
					if net.Size()+need > in.MaxSize {
						continue
					}
					key := net.Canon()
					if seen[key] {
						continue
					}
					seen[key] = true
					queue = append(queue, partial{net: net, remaining: rem})
				}
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Size() < out[j].Size() })
	return out, nil
}

// keywordSubsets returns every non-empty subset of keywords containing
// must, each sorted.
func keywordSubsets(keywords []string, must string) [][]string {
	var rest []string
	for _, k := range keywords {
		if k != must {
			rest = append(rest, k)
		}
	}
	var out [][]string
	for m := 0; m < 1<<uint(len(rest)); m++ {
		sub := []string{must}
		for i, k := range rest {
			if m&(1<<uint(i)) != 0 {
				sub = append(sub, k)
			}
		}
		sort.Strings(sub)
		out = append(out, sub)
	}
	return out
}

// extensionSubsets returns the keyword sets a newly attached occurrence
// may carry: the empty set (free) plus every non-empty subset of the
// remaining keywords.
func extensionSubsets(keywords []string, remaining uint32) [][]string {
	out := [][]string{nil}
	var rem []string
	for i, k := range keywords {
		if remaining&(1<<uint(i)) != 0 {
			rem = append(rem, k)
		}
	}
	for m := 1; m < 1<<uint(len(rem)); m++ {
		var sub []string
		for i, k := range rem {
			if m&(1<<uint(i)) != 0 {
				sub = append(sub, k)
			}
		}
		sort.Strings(sub)
		out = append(out, sub)
	}
	return out
}

// admissible checks the XML-specific constraints after adding edge e.
func admissible(sg *schema.Graph, net *Network, e Edge) bool {
	// Single containment parent.
	if e.Kind == xmlgraph.Containment {
		parents := 0
		for _, o := range net.Edges {
			if o.To == e.To && o.Kind == xmlgraph.Containment {
				parents++
			}
		}
		if parents > 1 {
			return false
		}
	}
	// Choice occurrences instantiate at most one alternative (outgoing
	// edge), counting both containment and reference alternatives.
	if sg.IsChoice(net.Occs[e.From].Schema) {
		outs := 0
		for _, o := range net.Edges {
			if o.From == e.From {
				outs++
			}
		}
		if outs > 1 {
			return false
		}
	}
	// maxOccurs: outgoing edges of one occurrence via the same schema
	// edge are bounded — for containment (children count) and for
	// references alike (a single-valued IDREF points to one element).
	se, ok := sg.FindEdge(net.Occs[e.From].Schema, net.Occs[e.To].Schema, e.Kind)
	if ok && se.MaxOccurs != schema.Unbounded {
		n := 0
		for _, o := range net.Edges {
			if o.From == e.From && o.Kind == e.Kind && net.Occs[o.To].Schema == net.Occs[e.To].Schema {
				n++
			}
		}
		if n > se.MaxOccurs {
			return false
		}
	}
	return true
}

func allLeavesBound(n *Network) bool {
	for _, l := range n.Leaves() {
		if n.Occs[l].Free() {
			return false
		}
	}
	return true
}
