// Package retryloop seeds violations for the retryloop analyzer:
// hand-rolled retry loops that spin without an attempt bound, without
// backoff, or both. The compliant shapes at the bottom mirror
// fault.RetryPolicy.Do and ordinary skip-on-error iteration, which must
// not fire.
package retryloop

import (
	"errors"
	"time"
)

var errTransient = errors.New("transient")

func op() error { return errTransient }

func check(int) error { return nil }

// retryForever spins hot until the operation succeeds: no bound, no
// backoff.
func retryForever() error {
	for {
		if err := op(); err == nil {
			return nil
		}
	}
}

// retryHot bounds its attempts but hammers the operation back-to-back.
func retryHot(n int) error {
	var err error
	for i := 0; i < n; i++ {
		if err = op(); err == nil {
			return nil
		}
	}
	return err
}

// retryUnbounded backs off politely but never gives up.
func retryUnbounded() error {
	for {
		err := op()
		if err == nil {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// retrySkipShape retries via continue-on-error with a success exit
// below; bounded but hot.
func retrySkipShape(n int) error {
	for i := 0; i < n; i++ {
		err := op()
		if err != nil {
			continue
		}
		return nil
	}
	return errTransient
}

// retryWell is the blessed shape: bounded attempts with backoff between
// them.
func retryWell(n int) error {
	var err error
	for i := 0; i < n; i++ {
		if err = op(); err == nil {
			return nil
		}
		time.Sleep(time.Duration(i+1) * time.Millisecond)
	}
	return err
}

// retrySuppressed documents an intentional spin: the test clock only
// advances between attempts, so sleeping would deadlock.
func retrySuppressed() error {
	//xk:ignore retryloop fake-clock test helper; the harness advances time between attempts
	for {
		if err := op(); err == nil {
			return nil
		}
	}
}

// skipLoop is ordinary skip-on-error iteration over items — success
// does not exit the loop, so this is not a retry and must not fire.
func skipLoop(xs []int) int {
	good := 0
	for i := 0; i < len(xs); i++ {
		if err := check(xs[i]); err != nil {
			continue
		}
		good++
	}
	return good
}

// rangeSkip is the same shape over a range loop; range loops iterate
// items, not attempts, and are out of scope entirely.
func rangeSkip(xs []int) error {
	for _, x := range xs {
		if err := check(x); err != nil {
			continue
		}
		break
	}
	return nil
}
