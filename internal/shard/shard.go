// Package shard implements horizontal scale-out for the XKeyword engine
// (ROADMAP item 2): the master index is partitioned by target object
// into N shards, each servable by an independent xkserve replica, and a
// coordinator scatter-gathers keyword queries across them.
//
// The design follows from one observation about the paper's result
// shape: an MTTON is a *tree* of target objects, so the TOs of one
// result can hash to every partition. Executing CNs against only a
// shard's local index slice would silently lose every cross-partition
// result. The protocol therefore has two phases:
//
//   - Lookup scatter: the coordinator fans the query's keyword lookups
//     to all shards. Partitions are disjoint and exhaustive over TOs, so
//     the union of the local containing lists is exactly the global
//     containing list (multi-token intersection is TO-local, so it
//     commutes with the union).
//   - Execute scatter: the coordinator ships the merged global postings
//     back out as a query-scoped index source. Each shard runs the
//     identical pipeline (CN generation, planning, join execution) over
//     its replicated structural data — connection relations are
//     replicated, only the memory-dominant index is partitioned — and
//     keeps the results it owns: owner(result) = Partition of the first
//     binding. Covers are disjoint and exhaustive, so the union of the
//     per-shard result sets is the exact global result set.
//
// Determinism: every result carries the canonical order key exec.Result
// .Ord (plan index, emission sequence); plans are derived identically on
// every shard from the identical query-scoped source, so merging the
// per-shard streams by (Score, Ord) and truncating to K reproduces
// single-node execution byte for byte (the equivalence suite asserts
// this for N ∈ {1,2,3,7}).
//
// Failure semantics preserve the repo's "fail loudly or answer
// correctly" invariant: an execute-phase failure is fully recoverable
// (the request carries everything needed, so the dead shard's cover is
// reassigned to survivors and the answer stays exact); a lookup-phase
// failure loses that shard's posting partition, and the answer — exact
// over the surviving partitions — is annotated with a loud degradation
// note via qserve.NoteDegradation and never cached. When fewer than a
// quorum of shards answer, the coordinator refuses with ErrNoQuorum
// instead of serving a mostly-empty answer.
package shard

import (
	"sort"

	"repro/internal/kwindex"
)

// HashScheme names the partition function recorded in the manifest; a
// manifest with an unknown scheme is rejected rather than misrouted.
const HashScheme = "splitmix-to-v1"

// Partition maps a target object to its partition in [0, n). TO ids are
// small and sequential, so the raw value is mixed (splitmix64 finalizer)
// before the modulus; otherwise partition i would hold exactly the TOs
// ≡ i (mod n) and any id-correlated locality would skew shard load.
func Partition(to int64, n int) int {
	if n <= 1 {
		return 0
	}
	z := uint64(to) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(n))
}

// PartitionIndex filters a built master index down to one partition's
// postings: every posting whose TO hashes to part. The split path feeds
// the result to the diskindex writer; the shard server also uses it as
// the failover fallback when its partition file goes bad (rebuilding
// from the in-memory index mirrors PR 5's degrade-once failover).
func PartitionIndex(ix *kwindex.Index, part, n int) *kwindex.Index {
	out := make(map[string][]kwindex.Posting)
	for _, term := range ix.Terms() {
		var keep []kwindex.Posting
		for _, p := range ix.Postings(term) {
			if Partition(p.TO, n) == part {
				keep = append(keep, p)
			}
		}
		if len(keep) > 0 {
			out[term] = keep
		}
	}
	return kwindex.FromPostings(out)
}

// MergePostings concatenates per-shard slices of one containing list and
// restores the global (TO, node) sort order the Source contract
// promises. Partitions are disjoint, so this is a set union.
func MergePostings(lists [][]kwindex.Posting) []kwindex.Posting {
	var out []kwindex.Posting
	for _, ps := range lists {
		out = append(out, ps...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TO != out[j].TO {
			return out[i].TO < out[j].TO
		}
		return out[i].Node < out[j].Node
	})
	return out
}
