package shard

import (
	"encoding/json"
	"fmt"
	"hash/crc64"
	"sort"
	"strings"
)

// execMeta is what a cached /shard/execute response carries besides the
// owned results: the derived-network checksum and plan count the
// coordinator cross-checks.
type execMeta struct {
	NetsCRC uint32
	Plans   int
}

// execCacheKey is the deterministic identity of an execute request. The
// response is a pure function of the request — it carries the full
// merged posting lists and the cover set, and the structural data it is
// joined against is replicated and immutable while serving — so equal
// keys really do mean equal answers; the cache TTL bounds staleness
// across index swaps, and the failover degrade hook invalidates
// eagerly. Keywords keep their request order (they feed plan derivation
// positionally); Parts are sorted (a cover is a set); Lists — the bulk
// of the request — are folded to a CRC64 of their canonical JSON
// (encoding/json emits map keys sorted).
func execCacheKey(req *ExecRequest) (string, error) {
	lists, err := json.Marshal(req.Lists)
	if err != nil {
		return "", fmt.Errorf("shard: hashing posting lists: %w", err)
	}
	parts := append([]int(nil), req.Parts...)
	sort.Ints(parts)
	var b strings.Builder
	fmt.Fprintf(&b, "k=%d|s=%d|n=%d|p=%v|gp=%d|gk=%d|l=%016x|",
		req.K, req.Strategy, req.N, parts, req.GlobalPostings, req.GlobalKeywords,
		crc64.Checksum(lists, crc64.MakeTable(crc64.ECMA)))
	for i, kw := range req.Keywords {
		if i > 0 {
			b.WriteByte(0)
		}
		b.WriteString(kw)
	}
	return b.String(), nil
}

// InvalidateCache drops every cached execute response. The serving
// wiring calls it when the partition source degrades or is swapped: the
// cached answers may reflect the index state before the transition.
func (s *Server) InvalidateCache() {
	if s.Cache != nil {
		s.Cache.Clear()
	}
}
