package diskindex

import (
	"container/list"
	"hash/maphash"
	"sync"
	"sync/atomic"

	"repro/internal/kwindex"
)

// listCache is a byte-bounded sharded cache of decoded posting lists.
// It sits above the page pool: the pool bounds how much raw index stays
// in memory, the list cache makes a warm term lookup a single map probe
// — the same cost profile as the in-memory index — instead of a varint
// decode of the whole list on every query.
//
// Eviction is CLOCK (second chance) rather than strict LRU so that a hit
// only takes a read lock and an atomic flag store; promoting on every
// get would serialize readers on the shard mutex and defeat the point of
// caching. Entries are immutable once published, so a reader may use one
// after it has been evicted.
type listCache struct {
	seed   maphash.Seed
	shards []listShard

	hits   atomic.Int64
	misses atomic.Int64
}

type listShard struct {
	mu    sync.RWMutex
	ll    *list.List               // guarded by mu; clock ring; back = next eviction candidate
	m     map[string]*list.Element // guarded by mu
	bytes int64                    // guarded by mu
	cap   int64
}

type listEntry struct {
	term string
	ps   []kwindex.Posting
	size int64
	used atomic.Bool // referenced since the clock hand last passed
}

func newListCache(totalBytes int64, shards int) *listCache {
	if shards < 1 {
		shards = 1
	}
	c := &listCache{seed: maphash.MakeSeed(), shards: make([]listShard, shards)}
	per := totalBytes / int64(shards)
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i].ll = list.New()
		c.shards[i].m = make(map[string]*list.Element)
		c.shards[i].cap = per
	}
	return c
}

func (c *listCache) shard(term string) *listShard {
	return &c.shards[maphash.String(c.seed, term)%uint64(len(c.shards))]
}

func (c *listCache) get(term string) ([]kwindex.Posting, bool) {
	sh := c.shard(term)
	sh.mu.RLock()
	el, ok := sh.m[term]
	sh.mu.RUnlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	// The entry is immutable; even if eviction races us it stays valid.
	e := el.Value.(*listEntry)
	e.used.Store(true)
	c.hits.Add(1)
	return e.ps, true
}

// listEntrySize approximates an entry's resident bytes: the map/list
// bookkeeping plus one Posting struct per posting (the schema-node
// strings are shared with the reader's table and not charged here).
func listEntrySize(term string, ps []kwindex.Posting) int64 {
	return 96 + int64(len(term)) + int64(len(ps))*40
}

func (c *listCache) put(term string, ps []kwindex.Posting) {
	sh := c.shard(term)
	size := listEntrySize(term, ps)
	if size > sh.cap/2 {
		return // an entry that would evict half the shard is not worth caching
	}
	sh.mu.Lock()
	if el, ok := sh.m[term]; ok {
		// Replace rather than mutate: a concurrent get may hold the old
		// entry, which must stay intact.
		old := el.Value.(*listEntry)
		sh.ll.Remove(el)
		delete(sh.m, term)
		sh.bytes -= old.size
	}
	e := &listEntry{term: term, ps: ps, size: size}
	e.used.Store(true)
	sh.m[term] = sh.ll.PushFront(e)
	sh.bytes += size
	// Advance the clock hand: recently referenced entries get a second
	// chance; each pass clears the flag, so the sweep terminates.
	for sh.bytes > sh.cap && sh.ll.Len() > 1 {
		back := sh.ll.Back()
		be := back.Value.(*listEntry)
		if be.used.CompareAndSwap(true, false) {
			sh.ll.MoveToFront(back)
			continue
		}
		sh.ll.Remove(back)
		delete(sh.m, be.term)
		sh.bytes -= be.size
	}
	sh.mu.Unlock()
}
