package diskindex

import "errors"

// Error classification for read-path failures. Callers that self-heal
// (persist's degraded-mode load, the serving layer's health probe) branch
// on these: an ErrIO is transient-shaped — the device said no even after
// bounded retries — while an ErrCorrupt means the bytes themselves are
// wrong and rereading will never help; the file should be quarantined
// and the index rebuilt.
var (
	// ErrCorrupt marks checksum mismatches and malformed encodings: the
	// data on disk is not what the writer produced.
	ErrCorrupt = errors.New("diskindex: data corrupt")
	// ErrIO marks read failures that persisted through the retry budget.
	ErrIO = errors.New("diskindex: I/O failure")
)
