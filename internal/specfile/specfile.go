// Package specfile parses the administrator configuration that drives
// loading an arbitrary dataset: the target schema segments (the
// administrator-designated decomposition of §3), the semantic edge
// annotations, and — when the schema comes from a DTD — the IDREF
// targets and root elements the DTD cannot express. The format is
// line-oriented:
//
//	# comment
//	segment person head=person members=name,nation
//	segment order head=order
//	annotate person>order forward="placed" backward="placed by"
//	reftarget supplier person
//	root person
package specfile

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/tss"
)

// Config is everything a spec file declares.
type Config struct {
	Spec       tss.Spec
	RefTargets map[string]string
	Roots      []string
}

// Parse reads a spec file.
func Parse(r io.Reader) (*Config, error) {
	cfg := &Config{RefTargets: make(map[string]string)}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields, err := splitQuoted(line)
		if err != nil {
			return nil, fmt.Errorf("specfile: line %d: %w", lineNo, err)
		}
		switch fields[0] {
		case "segment":
			seg, err := parseSegment(fields[1:])
			if err != nil {
				return nil, fmt.Errorf("specfile: line %d: %w", lineNo, err)
			}
			cfg.Spec.Segments = append(cfg.Spec.Segments, seg)
		case "annotate":
			ann, err := parseAnnotation(fields[1:])
			if err != nil {
				return nil, fmt.Errorf("specfile: line %d: %w", lineNo, err)
			}
			cfg.Spec.Annotations = append(cfg.Spec.Annotations, ann)
		case "reftarget":
			if len(fields) != 3 {
				return nil, fmt.Errorf("specfile: line %d: reftarget needs element and target", lineNo)
			}
			cfg.RefTargets[fields[1]] = fields[2]
		case "root":
			if len(fields) != 2 {
				return nil, fmt.Errorf("specfile: line %d: root needs one element", lineNo)
			}
			cfg.Roots = append(cfg.Roots, fields[1])
		default:
			return nil, fmt.Errorf("specfile: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(cfg.Spec.Segments) == 0 {
		return nil, fmt.Errorf("specfile: no segment declarations")
	}
	return cfg, nil
}

// ParseString is Parse over an in-memory spec.
func ParseString(s string) (*Config, error) {
	return Parse(strings.NewReader(s))
}

func parseSegment(fields []string) (tss.SegmentSpec, error) {
	if len(fields) < 1 {
		return tss.SegmentSpec{}, fmt.Errorf("segment needs a name")
	}
	seg := tss.SegmentSpec{Name: fields[0]}
	for _, f := range fields[1:] {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return seg, fmt.Errorf("segment option %q is not key=value", f)
		}
		switch key {
		case "head":
			seg.Head = val
		case "members":
			if val != "" {
				seg.Members = strings.Split(val, ",")
			}
		default:
			return seg, fmt.Errorf("unknown segment option %q", key)
		}
	}
	if seg.Head == "" {
		seg.Head = seg.Name
	}
	return seg, nil
}

func parseAnnotation(fields []string) (tss.Annotation, error) {
	if len(fields) < 1 {
		return tss.Annotation{}, fmt.Errorf("annotate needs a path")
	}
	ann := tss.Annotation{Path: fields[0]}
	for _, f := range fields[1:] {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return ann, fmt.Errorf("annotate option %q is not key=value", f)
		}
		switch key {
		case "forward":
			ann.Forward = val
		case "backward":
			ann.Backward = val
		default:
			return ann, fmt.Errorf("unknown annotate option %q", key)
		}
	}
	return ann, nil
}

// splitQuoted splits on spaces, keeping double-quoted substrings (which
// may contain spaces) as single fields with the quotes stripped.
func splitQuoted(line string) ([]string, error) {
	var out []string
	var cur strings.Builder
	inQuote := false
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range line {
		switch {
		case r == '"':
			inQuote = !inQuote
		case r == ' ' && !inQuote:
			flush()
		default:
			cur.WriteRune(r)
		}
	}
	if inQuote {
		return nil, fmt.Errorf("unterminated quote")
	}
	flush()
	if len(out) == 0 {
		return nil, fmt.Errorf("empty line")
	}
	return out, nil
}
