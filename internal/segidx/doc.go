package segidx

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"repro/internal/kwindex"
	"repro/internal/tss"
	"repro/internal/xmlgraph"
)

// Field is one keyword-bearing node of an ingested document: the same
// unit kwindex.Build indexes when it walks the object graph. Its
// keywords are the tokens of Label and Value, deduplicated per field.
type Field struct {
	// Node distinguishes two nodes of the same type inside one target
	// object (the paper's ⟨TOid, nodeID, schemaNode⟩ triplet).
	Node xmlgraph.NodeID `json:"node"`
	// SchemaNode is the node's schema type — what the CN generator
	// matches keyword occurrences against.
	SchemaNode string `json:"schema"`
	// Label is the node's tag; Value its text content.
	Label string `json:"label"`
	Value string `json:"value"`
}

// Document is the unit of ingestion: one target object together with
// its keyword-bearing member nodes. Adding a document with the TO of an
// existing one replaces it entirely (newest wins).
type Document struct {
	TO     int64   `json:"to"`
	Fields []Field `json:"fields"`
}

// postings derives the document's master-index postings, mirroring
// kwindex.Build exactly: per field, the distinct tokens of the label
// and value each yield one ⟨TO, node, schema node⟩ posting. emit is
// called once per (token, posting) pair.
func (d *Document) postings(emit func(tok string, p kwindex.Posting)) {
	for _, f := range d.Fields {
		seen := make(map[string]bool)
		for _, tok := range append(kwindex.Tokenize(f.Label), kwindex.Tokenize(f.Value)...) {
			if seen[tok] {
				continue
			}
			seen[tok] = true
			emit(tok, kwindex.Posting{TO: d.TO, Node: f.Node, SchemaNode: f.SchemaNode})
		}
	}
}

// Summary renders the document the way tss.ObjectGraph.Summary renders
// a batch-loaded target object — head label plus the valued member
// fields, e.g. "part[key=1005 name=TV]" — so ingested TOs present like
// native ones instead of as placeholders. The head is the field with
// the smallest node id (DocumentsFromObjectGraph and the object graph
// both assign the head the lowest id of its TO).
func (d *Document) Summary() string {
	if len(d.Fields) == 0 {
		return fmt.Sprintf("TO#%d", d.TO)
	}
	head := 0
	for i, f := range d.Fields {
		if f.Node < d.Fields[head].Node {
			head = i
		}
	}
	var fields []string
	if v := d.Fields[head].Value; v != "" {
		fields = append(fields, v)
	}
	rest := make([]Field, 0, len(d.Fields)-1)
	for i, f := range d.Fields {
		if i != head {
			rest = append(rest, f)
		}
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i].Node < rest[j].Node })
	for _, f := range rest {
		if f.Value != "" {
			fields = append(fields, fmt.Sprintf("%s=%s", f.Label, f.Value))
		}
	}
	if len(fields) == 0 {
		return fmt.Sprintf("%s#%d", d.Fields[head].Label, d.TO)
	}
	return fmt.Sprintf("%s[%s]", d.Fields[head].Label, strings.Join(fields, " "))
}

// approxBytes estimates the document's memtable footprint for the
// flush trigger.
func (d *Document) approxBytes() int64 {
	n := int64(64)
	for _, f := range d.Fields {
		n += 48 + int64(len(f.SchemaNode)+len(f.Label)+len(f.Value))
	}
	return n
}

// Op is one ingestion operation: an upsert (Doc != nil) or a delete by
// target object (Doc == nil, Delete set).
type Op struct {
	Doc    *Document
	Delete int64
}

// Batch is a group of operations acknowledged (and made durable)
// together: the WAL frames a batch as a single record, so after a crash
// either every operation of an acknowledged batch is replayed or — for
// the unacknowledged batch a kill tore mid-write — none are.
type Batch []Op

// AddDoc appends an upsert to the batch.
func (b *Batch) AddDoc(d Document) { *b = append(*b, Op{Doc: &d}) }

// DeleteTO appends a tombstone for a target object to the batch.
func (b *Batch) DeleteTO(to int64) { *b = append(*b, Op{Delete: to}) }

// DocumentsFromObjectGraph extracts every target object of an object
// graph as an ingestable document — the offline bulk-build path
// (xkeyword -segop build). The documents reproduce exactly what
// kwindex.Build would index over the same graph.
func DocumentsFromObjectGraph(og *tss.ObjectGraph) []Document {
	byTO := make(map[int64]*Document)
	var order []int64
	for _, id := range og.Data.Nodes() {
		toID, ok := og.TOOf(id)
		if !ok {
			continue
		}
		d := byTO[toID]
		if d == nil {
			d = &Document{TO: toID}
			byTO[toID] = d
			order = append(order, toID)
		}
		n := og.Data.Node(id)
		d.Fields = append(d.Fields, Field{Node: id, SchemaNode: n.Type, Label: n.Label, Value: n.Value})
	}
	out := make([]Document, 0, len(order))
	for _, to := range order {
		out = append(out, *byTO[to])
	}
	return out
}

// WAL payload encoding. A record is one batch:
//
//	uvarint opCount
//	per op: one tag byte (opAdd | opDelete), then
//	  opAdd:    varint TO, uvarint nFields, per field:
//	            varint node, 3 × (uvarint len + bytes) for
//	            schema node, label, value
//	  opDelete: varint TO
const (
	opAdd    = 1
	opDelete = 2
)

// maxWALString bounds any single length-prefixed string in a WAL
// record; longer claims mean a corrupt record, not a huge allocation.
const maxWALString = 1 << 24

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func encodeBatch(b []byte, batch Batch) []byte {
	b = binary.AppendUvarint(b, uint64(len(batch)))
	for _, op := range batch {
		if op.Doc != nil {
			b = append(b, opAdd)
			b = binary.AppendVarint(b, op.Doc.TO)
			b = binary.AppendUvarint(b, uint64(len(op.Doc.Fields)))
			for _, f := range op.Doc.Fields {
				b = binary.AppendVarint(b, int64(f.Node))
				b = appendString(b, f.SchemaNode)
				b = appendString(b, f.Label)
				b = appendString(b, f.Value)
			}
		} else {
			b = append(b, opDelete)
			b = binary.AppendVarint(b, op.Delete)
		}
	}
	return b
}

// walDecoder reads the varint stream of one record payload, erroring
// instead of panicking on any malformed input.
type walDecoder struct {
	b []byte
	i int
}

func (d *walDecoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b[d.i:])
	if n <= 0 {
		return 0, fmt.Errorf("segidx: malformed uvarint at payload byte %d", d.i)
	}
	d.i += n
	return v, nil
}

func (d *walDecoder) varint() (int64, error) {
	v, n := binary.Varint(d.b[d.i:])
	if n <= 0 {
		return 0, fmt.Errorf("segidx: malformed varint at payload byte %d", d.i)
	}
	d.i += n
	return v, nil
}

func (d *walDecoder) string() (string, error) {
	l, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if l > maxWALString || l > uint64(len(d.b)-d.i) {
		return "", fmt.Errorf("segidx: string of %d bytes overruns payload at byte %d", l, d.i)
	}
	s := string(d.b[d.i : d.i+int(l)])
	d.i += int(l)
	return s, nil
}

func decodeBatch(payload []byte) (Batch, error) {
	d := &walDecoder{b: payload}
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(payload)) { // each op takes ≥ 1 byte
		return nil, fmt.Errorf("segidx: record claims %d ops in %d bytes", n, len(payload))
	}
	batch := make(Batch, 0, n)
	for k := uint64(0); k < n; k++ {
		if d.i >= len(d.b) {
			return nil, fmt.Errorf("segidx: record truncated at op %d", k)
		}
		tag := d.b[d.i]
		d.i++
		switch tag {
		case opAdd:
			to, err := d.varint()
			if err != nil {
				return nil, err
			}
			nf, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			if nf > uint64(len(d.b)-d.i) { // each field takes ≥ 4 bytes
				return nil, fmt.Errorf("segidx: document claims %d fields in %d bytes", nf, len(d.b)-d.i)
			}
			doc := &Document{TO: to}
			if nf > 0 {
				doc.Fields = make([]Field, 0, nf)
			}
			for j := uint64(0); j < nf; j++ {
				node, err := d.varint()
				if err != nil {
					return nil, err
				}
				schema, err := d.string()
				if err != nil {
					return nil, err
				}
				label, err := d.string()
				if err != nil {
					return nil, err
				}
				value, err := d.string()
				if err != nil {
					return nil, err
				}
				doc.Fields = append(doc.Fields, Field{Node: xmlgraph.NodeID(node), SchemaNode: schema, Label: label, Value: value})
			}
			batch = append(batch, Op{Doc: doc})
		case opDelete:
			to, err := d.varint()
			if err != nil {
				return nil, err
			}
			batch = append(batch, Op{Delete: to})
		default:
			return nil, fmt.Errorf("segidx: unknown op tag %d at payload byte %d", tag, d.i-1)
		}
	}
	if d.i != len(d.b) {
		return nil, fmt.Errorf("segidx: %d trailing bytes after record ops", len(d.b)-d.i)
	}
	return batch, nil
}
