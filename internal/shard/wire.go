package shard

import (
	"hash/crc32"
	"sort"

	"repro/internal/cn"
	"repro/internal/kwindex"
	"repro/internal/xmlgraph"
)

// The wire protocol is stdlib net/http + JSON: three POST endpoints on
// every shard server.
//
//	/shard/lookup  — phase 1: local containing lists for the query's
//	                 normalized keywords (the shard's partition slice).
//	/shard/execute — phase 2: run the pipeline over the request-carried
//	                 merged global postings and return the results whose
//	                 owner partition is in the request's cover set.
//	/shard/stats   — identity and health: shard id, N, scheme, index
//	                 state; the coordinator validates these at startup
//	                 and polls them for /healthz.
//
// Posting lists dominate the payload, so they travel dictionary-coded:
// the distinct schema-node names once per list, each posting as a
// [to, node, schemaIndex] triple.

// WireList is one containing list in dictionary-coded form.
type WireList struct {
	Schemas []string   `json:"schemas"`
	Posts   [][3]int64 `json:"posts"` // [TO, node, index into Schemas]
}

// EncodeLists dictionary-codes containing lists for the wire.
func EncodeLists(lists map[string][]kwindex.Posting) map[string]WireList {
	out := make(map[string]WireList, len(lists))
	for k, ps := range lists {
		var wl WireList
		idx := make(map[string]int)
		for _, p := range ps {
			si, ok := idx[p.SchemaNode]
			if !ok {
				si = len(wl.Schemas)
				idx[p.SchemaNode] = si
				wl.Schemas = append(wl.Schemas, p.SchemaNode)
			}
			wl.Posts = append(wl.Posts, [3]int64{p.TO, int64(p.Node), int64(si)})
		}
		out[k] = wl
	}
	return out
}

// DecodeLists is the inverse of EncodeLists. Postings with an
// out-of-range schema index are rejected by returning ok=false — a
// malformed peer must fail the request loudly, not inject postings.
func DecodeLists(wire map[string]WireList) (map[string][]kwindex.Posting, bool) {
	out := make(map[string][]kwindex.Posting, len(wire))
	for k, wl := range wire {
		ps := make([]kwindex.Posting, 0, len(wl.Posts))
		for _, t := range wl.Posts {
			si := t[2]
			if si < 0 || si >= int64(len(wl.Schemas)) {
				return nil, false
			}
			ps = append(ps, kwindex.Posting{TO: t[0], Node: xmlgraph.NodeID(t[1]), SchemaNode: wl.Schemas[si]})
		}
		out[k] = ps
	}
	return out, true
}

// LookupRequest asks a shard for its partition's containing lists.
type LookupRequest struct {
	// Keywords are the normalized keywords (NormKeyword of the query's
	// raw keywords).
	Keywords []string `json:"keywords"`
}

// LookupResponse carries one shard's partition slice of each list.
type LookupResponse struct {
	Shard int                 `json:"shard"`
	Of    int                 `json:"of"`
	Lists map[string]WireList `json:"lists"`
	// Postings/Keywords are the partition index's totals (the
	// coordinator sums postings across shards — partitions are disjoint
	// — and takes the max of keywords, an upper-bound display figure).
	Postings int `json:"postings"`
	Keywords int `json:"keywords"`
	// State is the shard's local index health ("ok"/"degraded"): a shard
	// answering from its rebuilt fallback still answers exactly, but the
	// coordinator surfaces it in health.
	State  string `json:"state"`
	Detail string `json:"detail,omitempty"`
}

// ExecRequest asks a shard to execute the query over the merged global
// postings and return the results it owns.
type ExecRequest struct {
	// Keywords are the raw query keywords (the pipeline re-normalizes,
	// so plans derive identically everywhere).
	Keywords []string `json:"keywords"`
	// K bounds the owned results (top-k); 0 means all results.
	K int `json:"k"`
	// Strategy is the exec.Strategy value.
	Strategy uint8 `json:"strategy"`
	// N is the partition count; Parts is this shard's cover — the
	// partitions whose results it must return. Normally {shard id};
	// after an execute-phase failure the coordinator reassigns the dead
	// shard's partitions to survivors, which keeps the answer exact
	// because this request carries everything execution needs.
	N     int   `json:"n"`
	Parts []int `json:"parts"`
	// Lists are the merged global containing lists, keyed by normalized
	// keyword; GlobalPostings/GlobalKeywords size the query-scoped
	// source.
	Lists          map[string]WireList `json:"lists"`
	GlobalPostings int                 `json:"global_postings"`
	GlobalKeywords int                 `json:"global_keywords"`
}

// WireResult is one owned result. The network is identified by the plan
// index (the high half of Ord): plan lists derive identically on every
// shard and the coordinator, which NetsCRC proves per response.
type WireResult struct {
	Ord   int64   `json:"ord"`
	Score int     `json:"score"`
	Bind  []int64 `json:"bind"`
}

// ExecResponse carries a shard's owned results.
type ExecResponse struct {
	Shard   int          `json:"shard"`
	Of      int          `json:"of"`
	Results []WireResult `json:"results"`
	// NetsCRC checksums the canonical forms of the derived network list;
	// the coordinator rejects a response disagreeing with its own
	// derivation instead of mis-attaching results to networks.
	NetsCRC uint32 `json:"nets_crc"`
	// Plans is the derived plan count, for traces.
	Plans int `json:"plans"`
}

// StatsResponse is a shard's identity and health.
type StatsResponse struct {
	Shard      int    `json:"shard"`
	Of         int    `json:"of"`
	Scheme     string `json:"scheme"`
	CRC        uint32 `json:"crc"`
	IndexState string `json:"index_state"`
	IndexErr   string `json:"index_err,omitempty"`
	Postings   int    `json:"postings"`
	Keywords   int    `json:"keywords"`
}

// errorResponse is the JSON error body of a non-200 shard response.
type errorResponse struct {
	Error string `json:"error"`
}

// NormKeyword mirrors the pipeline discover stage's normalization: a
// single-token keyword becomes its token, a multi-token keyword stays
// the raw phrase (the index intersects its tokens on lookup). Wire
// lists are keyed by this form on both sides.
func NormKeyword(k string) string {
	toks := kwindex.Tokenize(k)
	switch len(toks) {
	case 0:
		return ""
	case 1:
		return toks[0]
	}
	return k
}

// CanonCRC checksums a network list's canonical forms in order. Shards
// and coordinator compare it to prove they derived the same plans from
// the same query-scoped source before results are attached to networks.
func CanonCRC(nets []*cn.TSSNetwork) uint32 {
	h := crc32.NewIEEE()
	for _, n := range nets {
		h.Write([]byte(n.Canon())) //xk:ignore errdrop hash writes cannot fail
		h.Write([]byte{0})         //xk:ignore errdrop hash writes cannot fail
	}
	return h.Sum32()
}

// sortInts sorts a cover set for stable request bodies and logs.
func sortInts(xs []int) { sort.Ints(xs) }
