// Package banks implements the data-graph keyword-proximity baseline
// XKeyword is compared against in §2: systems in the style of BANKS
// (Bhalotia et al., ICDE 2002 [6]) and of Goldman et al. (VLDB 1998
// [12]) search the graph of the data directly — no schema, no
// precomputed connection relations. Results are node trees containing
// all keywords, found by backward-expanding search and emitted with
// distinct-root semantics (one shortest tree per root node), the
// standard BANKS heuristic for approximating the Steiner-tree problem.
//
// The paper's criticism — such systems traverse a huge data graph and
// ignore the schema — is what the benchmarks quantify against XKeyword.
package banks

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/kwindex"
	"repro/internal/xmlgraph"
)

// Tree is one result: a node tree containing every keyword, scored by
// its edge count (the same proximity semantics as the paper's MTNNs).
type Tree struct {
	Root  xmlgraph.NodeID
	Nodes []xmlgraph.NodeID
	Edges []xmlgraph.Edge
	Score int
}

// Searcher runs keyword proximity searches over one data graph.
type Searcher struct {
	g *xmlgraph.Graph
	// byToken indexes nodes by the tokens of their tags and values.
	byToken map[string][]xmlgraph.NodeID
}

// NewSearcher indexes the graph's tokens.
func NewSearcher(g *xmlgraph.Graph) *Searcher {
	s := &Searcher{g: g, byToken: make(map[string][]xmlgraph.NodeID)}
	for _, id := range g.Nodes() {
		n := g.Node(id)
		seen := make(map[string]bool)
		for _, tok := range append(kwindex.Tokenize(n.Label), kwindex.Tokenize(n.Value)...) {
			if !seen[tok] {
				seen[tok] = true
				s.byToken[tok] = append(s.byToken[tok], id)
			}
		}
	}
	return s
}

// Options bound a search.
type Options struct {
	// MaxScore is the largest tree size of interest (the Z of §3.1).
	MaxScore int
	// K bounds the number of trees returned (0 = all).
	K int
}

// Search returns the result trees for the keywords, sorted by score,
// with distinct-root semantics: for every node reached by the backward
// search of every keyword, the union of the shortest paths to each
// keyword forms one candidate tree; trees whose paths overlap
// inconsistently (sharing nodes, hence not a tree) are discarded, and
// structurally identical trees found from different roots are deduped.
func (s *Searcher) Search(keywords []string, opts Options) ([]Tree, error) {
	if len(keywords) == 0 {
		return nil, fmt.Errorf("banks: empty keyword query")
	}
	if opts.MaxScore <= 0 {
		opts.MaxScore = 8
	}
	// Per-keyword BFS over the undirected graph from all source nodes.
	reaches := make([]reach, len(keywords))
	for i, kw := range keywords {
		toks := kwindex.Tokenize(kw)
		if len(toks) == 0 {
			return nil, fmt.Errorf("banks: keyword %q has no tokens", kw)
		}
		sources := s.matchAll(toks)
		if len(sources) == 0 {
			return nil, nil
		}
		r := reach{
			dist: make(map[xmlgraph.NodeID]int),
			prev: make(map[xmlgraph.NodeID]xmlgraph.NodeID),
		}
		queue := make([]xmlgraph.NodeID, 0, len(sources))
		for _, src := range sources {
			r.dist[src] = 0
			queue = append(queue, src)
		}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			if r.dist[cur] >= opts.MaxScore {
				continue
			}
			for _, nb := range s.g.UndirectedNeighbors(cur) {
				if _, seen := r.dist[nb.Node]; seen {
					continue
				}
				r.dist[nb.Node] = r.dist[cur] + 1
				r.prev[nb.Node] = cur
				queue = append(queue, nb.Node)
			}
		}
		reaches[i] = r
	}

	// Candidate roots: reached by every keyword within budget, emitted
	// in increasing total score via a heap.
	var cands []cand
	for v, d0 := range reaches[0].dist {
		total := d0
		ok := true
		for i := 1; i < len(reaches); i++ {
			d, reached := reaches[i].dist[v]
			if !reached {
				ok = false
				break
			}
			total += d
		}
		if ok && total <= opts.MaxScore {
			cands = append(cands, cand{root: v, score: total})
		}
	}
	h := &candHeap{items: cands}
	heap.Init(h)

	var out []Tree
	seen := make(map[string]bool)
	for h.Len() > 0 {
		c := heap.Pop(h).(cand)
		tree, ok := s.assemble(c.root, reaches)
		if !ok {
			continue
		}
		sig := treeSig(tree)
		if seen[sig] {
			continue
		}
		seen[sig] = true
		out = append(out, tree)
		if opts.K > 0 && len(out) >= opts.K {
			break
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score < out[j].Score })
	return out, nil
}

// matchAll returns the nodes containing every token.
func (s *Searcher) matchAll(toks []string) []xmlgraph.NodeID {
	counts := make(map[xmlgraph.NodeID]int)
	for _, tok := range toks {
		for _, id := range s.byToken[tok] {
			counts[id]++
		}
	}
	var out []xmlgraph.NodeID
	for id, c := range counts {
		if c == len(toks) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// reach is one keyword's backward-search frontier: shortest distances
// and parent pointers toward the nearest node containing the keyword.
type reach struct {
	dist map[xmlgraph.NodeID]int
	prev map[xmlgraph.NodeID]xmlgraph.NodeID
}

// cand is a candidate root with its total distance to all keywords.
type cand struct {
	root  xmlgraph.NodeID
	score int
}

// assemble unions the shortest paths from root to each keyword; the
// union must be a tree (distinct-root heuristic: overlapping paths that
// merge and re-split are rejected).
func (s *Searcher) assemble(root xmlgraph.NodeID, reaches []reach) (Tree, bool) {
	nodes := map[xmlgraph.NodeID]bool{root: true}
	type pair struct{ a, b xmlgraph.NodeID }
	edges := make(map[pair]xmlgraph.Edge)
	score := 0
	for _, r := range reaches {
		cur := root
		for r.dist[cur] != 0 {
			next := r.prev[cur]
			a, b := cur, next
			if a > b {
				a, b = b, a
			}
			if _, dup := edges[pair{a, b}]; !dup {
				e, ok := s.edgeBetween(cur, next)
				if !ok {
					return Tree{}, false
				}
				edges[pair{a, b}] = e
				score++
			}
			// Path merging: fine as long as the union stays a tree; the
			// acyclicity check below rejects the rest.
			nodes[next] = true
			cur = next
		}
	}
	t := Tree{Root: root, Score: score}
	for id := range nodes {
		t.Nodes = append(t.Nodes, id)
	}
	sort.Slice(t.Nodes, func(i, j int) bool { return t.Nodes[i] < t.Nodes[j] })
	for _, e := range edges {
		t.Edges = append(t.Edges, e)
	}
	sub := xmlgraph.Subgraph{Nodes: t.Nodes, Edges: t.Edges}
	if !sub.IsUncycled() || !sub.IsConnected() {
		return Tree{}, false
	}
	// Minimality-ish: with distinct-root semantics the root may be a
	// redundant leaf (degree 1 and keyword-free paths collapse); such
	// trees reappear rooted elsewhere, so drop the duplicates here.
	if len(t.Edges) != len(t.Nodes)-1 {
		return Tree{}, false
	}
	return t, true
}

func (s *Searcher) edgeBetween(a, b xmlgraph.NodeID) (xmlgraph.Edge, bool) {
	for _, e := range s.g.Out(a) {
		if e.To == b {
			return e, true
		}
	}
	for _, e := range s.g.In(a) {
		if e.From == b {
			return e, true
		}
	}
	return xmlgraph.Edge{}, false
}

// treeSig canonicalizes a tree by its sorted edge list.
func treeSig(t Tree) string {
	es := make([]string, len(t.Edges))
	for i, e := range t.Edges {
		a, b := e.From, e.To
		if a > b {
			a, b = b, a
		}
		es[i] = fmt.Sprintf("%d-%d", a, b)
	}
	sort.Strings(es)
	return fmt.Sprint(es)
}

// candHeap orders candidate roots by total keyword distance; the heap
// interface methods below implement container/heap.
type candHeap struct {
	items []cand
}

func (h *candHeap) Len() int           { return len(h.items) }
func (h *candHeap) Less(i, j int) bool { return h.items[i].score < h.items[j].score }
func (h *candHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *candHeap) Push(x interface{}) { h.items = append(h.items, x.(cand)) }
func (h *candHeap) Pop() interface{} {
	n := len(h.items)
	it := h.items[n-1]
	h.items = h.items[:n-1]
	return it
}
