package relstore

import (
	"sync"
	"testing"
)

// The store is read-only after loading; concurrent readers across the
// top-k worker pool must agree and not race (run under -race).
func TestConcurrentReaders(t *testing.T) {
	s := NewStore(64)
	var rows []Row
	for i := 0; i < PageRows*8; i++ {
		rows = append(rows, Row{int64(i % 37), int64(i)})
	}
	r := newTestRelation(t, s, "r", rows)
	r.BuildAllHashIndexes()
	if err := r.AddOrdering(0); err != nil {
		t.Fatal(err)
	}

	want := make(map[int64]int)
	for v := int64(0); v < 37; v++ {
		want[v] = len(r.LookupEq(0, v))
	}

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				v := (seed*31 + int64(i)) % 37
				if got := len(r.LookupEq(0, v)); got != want[v] {
					errs <- "lookup mismatch"
					return
				}
				if i%17 == 0 {
					n := 0
					r.Scan(func(Row) bool { n++; return n < 10 })
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	// Stats are consistent (all adds accounted, snapshot races none).
	st := s.Stats.Snapshot()
	if st.Lookups == 0 || st.RowsRead == 0 {
		t.Fatalf("stats lost updates: %+v", st)
	}
}
