package relstore

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Row is one tuple of a connection relation: target-object ids, one per
// attribute (the paper represents the ID datatype as integers, §5).
type Row []int64

// Relation is a connection relation. Attributes are named after the TSS
// occurrences they bind. Relations are built once at load time and then
// read-only; reads are safe for concurrent use.
type Relation struct {
	Name  string
	Cols  []string
	store *Store

	mu        sync.RWMutex
	rows      []Row
	hashIdx   map[int]map[int64][]int32 // col -> value -> row indexes
	orderings map[string][]int32        // colset key -> row permutation sorted by those cols
	clustered []int                     // physical (primary) sort order; nil if insertion order
	sealed    bool
}

// NumRows returns the relation's cardinality.
func (r *Relation) NumRows() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.rows)
}

// NumPages returns the page count of the primary copy.
func (r *Relation) NumPages() int {
	n := r.NumRows()
	return (n + PageRows - 1) / PageRows
}

// Arity returns the number of attributes.
func (r *Relation) Arity() int { return len(r.Cols) }

// ColIndex returns the index of the named attribute, or -1.
func (r *Relation) ColIndex(name string) int {
	for i, c := range r.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

// Insert appends a tuple. It is an error after Seal or with wrong arity.
func (r *Relation) Insert(row Row) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sealed {
		return fmt.Errorf("relstore: %s is sealed", r.Name)
	}
	if len(row) != len(r.Cols) {
		return fmt.Errorf("relstore: %s: arity %d row into %d-ary relation", r.Name, len(row), len(r.Cols))
	}
	r.rows = append(r.rows, append(Row(nil), row...))
	return nil
}

// Seal freezes the relation and builds the requested physical design.
// After Seal the relation is read-only.
func (r *Relation) Seal() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sealed = true
}

// BuildHashIndex creates a single-attribute hash index on column col.
func (r *Relation) BuildHashIndex(col int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if col < 0 || col >= len(r.Cols) {
		return fmt.Errorf("relstore: %s: no column %d", r.Name, col)
	}
	if r.hashIdx == nil {
		r.hashIdx = make(map[int]map[int64][]int32)
	}
	idx := make(map[int64][]int32)
	for i, row := range r.rows {
		idx[row[col]] = append(idx[row[col]], int32(i))
	}
	r.hashIdx[col] = idx
	return nil
}

// BuildAllHashIndexes creates a hash index on every attribute (the
// "single attribute indices on every attribute" design of §5.1).
func (r *Relation) BuildAllHashIndexes() {
	for c := range r.Cols {
		if err := r.BuildHashIndex(c); err != nil {
			panic(err) // unreachable: columns enumerated from r.Cols
		}
	}
}

// Cluster physically sorts the primary copy by the given column prefix
// (an index-organized table clustered "on the direction that the
// relation is used", §5.1). Existing indexes and orderings are rebuilt.
func (r *Relation) Cluster(cols ...int) error {
	r.mu.Lock()
	if err := r.checkCols(cols); err != nil {
		r.mu.Unlock()
		return err
	}
	sort.SliceStable(r.rows, func(i, j int) bool { return lessBy(r.rows[i], r.rows[j], cols) })
	r.clustered = append([]int(nil), cols...)
	hashCols := make([]int, 0, len(r.hashIdx))
	for c := range r.hashIdx {
		hashCols = append(hashCols, c)
	}
	ordKeys := make([][]int, 0, len(r.orderings))
	for k := range r.orderings {
		ordKeys = append(ordKeys, colsFromKey(k))
	}
	r.hashIdx = nil
	r.orderings = nil
	r.mu.Unlock()
	sort.Ints(hashCols)
	for _, c := range hashCols {
		if err := r.BuildHashIndex(c); err != nil {
			return err
		}
	}
	for _, oc := range ordKeys {
		if err := r.AddOrdering(oc...); err != nil {
			return err
		}
	}
	return nil
}

// AddOrdering builds a secondary sorted copy (a clustering of the
// relation in another direction). Lookups by a prefix of cols become
// binary-search range scans over that copy.
func (r *Relation) AddOrdering(cols ...int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.checkCols(cols); err != nil {
		return err
	}
	perm := make([]int32, len(r.rows))
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.SliceStable(perm, func(i, j int) bool { return lessBy(r.rows[perm[i]], r.rows[perm[j]], cols) })
	if r.orderings == nil {
		r.orderings = make(map[string][]int32)
	}
	r.orderings[colKey(cols)] = perm
	return nil
}

func (r *Relation) checkCols(cols []int) error {
	if len(cols) == 0 {
		return fmt.Errorf("relstore: %s: empty column list", r.Name)
	}
	for _, c := range cols {
		if c < 0 || c >= len(r.Cols) {
			return fmt.Errorf("relstore: %s: no column %d", r.Name, c)
		}
	}
	return nil
}

func lessBy(a, b Row, cols []int) bool {
	for _, c := range cols {
		if a[c] != b[c] {
			return a[c] < b[c]
		}
	}
	return false
}

func colKey(cols []int) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = strconv.Itoa(c)
	}
	return strings.Join(parts, ",")
}

func colsFromKey(k string) []int {
	parts := strings.Split(k, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		out[i], _ = strconv.Atoi(p)
	}
	return out
}

// HasHashIndex reports whether column col has a hash index.
func (r *Relation) HasHashIndex(col int) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.hashIdx[col]
	return ok
}

// ClusteredOn reports whether the relation (primary or a secondary copy)
// is sorted with cols as a prefix, returning the ordering key to probe.
func (r *Relation) ClusteredOn(cols []int) (ordering string, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if hasPrefix(r.clustered, cols) {
		return "", true
	}
	for key := range r.orderings {
		if hasPrefix(colsFromKey(key), cols) {
			return key, true
		}
	}
	return "", false
}

func hasPrefix(have, want []int) bool {
	if len(have) < len(want) {
		return false
	}
	for i, c := range want {
		if have[i] != c {
			return false
		}
	}
	return true
}
