package segidx_test

import (
	"encoding/binary"
	"hash/crc32"
	"reflect"
	"testing"

	"repro/internal/segidx"
)

// frame wraps one encoded batch payload in the WAL's record framing:
// [uint32 LE length][uint32 LE CRC32(payload)][payload]. Built by hand
// here so the tests pin the on-disk format, not just the code's own
// round trip.
func frame(payload []byte) []byte {
	rec := make([]byte, 8, 8+len(payload))
	binary.LittleEndian.PutUint32(rec[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:], crc32.ChecksumIEEE(payload))
	return append(rec, payload...)
}

func sampleBatches() []segidx.Batch {
	var b1, b2, b3 segidx.Batch
	b1.AddDoc(doc(1, field(10, "name", "name", "John Smith")))
	b1.DeleteTO(7)
	b2.AddDoc(doc(-3, field(-30, "σχήμα", "ÜberGraph", "TPC-H 2001")))
	b3.AddDoc(doc(1, field(11, "comment", "", "")))
	b3.AddDoc(doc(2))
	return []segidx.Batch{b1, b2, b3}
}

func sampleLog() ([]byte, []segidx.Batch) {
	batches := sampleBatches()
	var log []byte
	for _, b := range batches {
		log = append(log, frame(segidx.EncodeBatch(nil, b))...)
	}
	return log, batches
}

func TestBatchCodecRoundTrip(t *testing.T) {
	for i, b := range sampleBatches() {
		enc := segidx.EncodeBatch(nil, b)
		got, err := segidx.DecodeBatch(enc)
		if err != nil {
			t.Fatalf("batch %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, b) {
			t.Fatalf("batch %d: round trip\n got %+v\nwant %+v", i, got, b)
		}
	}
}

func TestDecodeBatchRejectsEveryTruncation(t *testing.T) {
	// A strict prefix of a valid payload can never decode cleanly: the
	// op count no longer matches the bytes present.
	var b segidx.Batch
	b.AddDoc(doc(1, field(10, "name", "name", "John Smith")))
	b.DeleteTO(42)
	enc := segidx.EncodeBatch(nil, b)
	for cut := 0; cut < len(enc); cut++ {
		if _, err := segidx.DecodeBatch(enc[:cut]); err == nil {
			t.Fatalf("decode accepted truncation to %d of %d bytes", cut, len(enc))
		}
	}
	if _, err := segidx.DecodeBatch(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Fatal("decode accepted a trailing byte")
	}
}

func TestReplayWALStopsAtTornTail(t *testing.T) {
	log, batches := sampleLog()
	// Record boundaries, for computing which cuts keep which records.
	var bounds []int
	off := 0
	for _, b := range batches {
		off += 8 + len(segidx.EncodeBatch(nil, b))
		bounds = append(bounds, off)
	}

	cuts := []int{0, 1, 7, bounds[0] - 1, bounds[0], bounds[0] + 3, bounds[1], len(log) - 1, len(log)}
	for _, cut := range cuts {
		data := log[:cut]
		var got []segidx.Batch
		n := segidx.ReplayWAL(data, func(b segidx.Batch) { got = append(got, b) })

		// The valid prefix is the largest record boundary at or below
		// the cut, and exactly the records before it are applied.
		wantLen, wantRecs := 0, 0
		for i, b := range bounds {
			if b <= cut {
				wantLen, wantRecs = b, i+1
			}
		}
		if n != int64(wantLen) {
			t.Fatalf("cut %d: valid prefix = %d, want %d", cut, n, wantLen)
		}
		if len(got) != wantRecs {
			t.Fatalf("cut %d: %d batches replayed, want %d", cut, len(got), wantRecs)
		}
		if wantRecs > 0 && !reflect.DeepEqual(got, batches[:wantRecs]) {
			t.Fatalf("cut %d: replayed batches are not the acknowledged prefix", cut)
		}
	}
}

func TestReplayWALStopsAtBitFlip(t *testing.T) {
	log, batches := sampleLog()
	b0end := 8 + len(segidx.EncodeBatch(nil, batches[0]))
	// Flip one payload byte inside the second record: the first record
	// must survive untouched, everything from the flip on is dropped.
	data := append([]byte(nil), log...)
	data[b0end+8] ^= 0x01
	var got []segidx.Batch
	n := segidx.ReplayWAL(data, func(b segidx.Batch) { got = append(got, b) })
	if n != int64(b0end) {
		t.Fatalf("valid prefix = %d, want %d", n, b0end)
	}
	if len(got) != 1 || !reflect.DeepEqual(got[0], batches[0]) {
		t.Fatalf("replayed %d batches, want exactly the first", len(got))
	}
}

func TestReplayWALRejectsOversizedLengthClaim(t *testing.T) {
	// A frame claiming a huge payload must stop replay, not allocate.
	rec := make([]byte, 8)
	binary.LittleEndian.PutUint32(rec[0:], 1<<31-1)
	log, batches := sampleLog()
	data := append(append([]byte(nil), log...), rec...)
	var got []segidx.Batch
	n := segidx.ReplayWAL(data, func(b segidx.Batch) { got = append(got, b) })
	if n != int64(len(log)) || len(got) != len(batches) {
		t.Fatalf("prefix = %d with %d batches, want %d with %d", n, len(got), len(log), len(batches))
	}
}
