package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
)

// StageRow aggregates one pipeline stage over the workload's queries.
type StageRow struct {
	Stage      string
	ColdMicros float64 // stage time of the first query on a fresh system
	WarmMicros float64 // mean stage time once the CN memo is hot
	In, Out    float64 // mean cardinalities (warm runs)
	CacheHits  float64
	CacheMiss  float64
}

// StageTable is the per-stage cost breakdown of the top-k query path —
// where the time of §4 (CN generation), §5 (optimization) and §6
// (execution) actually goes on the benchmark workload, measured through
// EXPLAIN ANALYZE. Every author-pair query shares one keyword shape, so
// the cold column is the single first query on a fresh system (memo
// miss: full CN generation) and the warm column averages the repeats
// (memo hit) — the generate rows differ by exactly what the memo saves.
type StageTable struct {
	K       int
	Queries int
	Rows    []StageRow
	Cold    time.Duration // end-to-end, first query
	Warm    time.Duration // mean end-to-end, memo-warm queries
}

// StageBreakdown measures the per-stage timing columns over the
// workload's author-pair queries at top-K, under the xkeyword preset.
func StageBreakdown(w *Workload, k int) (StageTable, error) {
	tbl := StageTable{K: k, Queries: len(w.Pairs)}
	sys, err := w.load(core.PresetXKeyword, 0)
	if err != nil {
		return tbl, err
	}
	rows := map[string]*StageRow{}
	var order []string
	record := func(pair [2]string, cold bool) error {
		expl, err := sys.ExplainAnalyze(context.Background(), pair[:], k)
		if err != nil {
			return err
		}
		for _, sp := range expl.Stages {
			row := rows[sp.Stage]
			if row == nil {
				row = &StageRow{Stage: sp.Stage}
				rows[sp.Stage] = row
				order = append(order, sp.Stage)
			}
			if cold {
				row.ColdMicros = float64(sp.Duration.Microseconds())
			} else {
				row.WarmMicros += float64(sp.Duration.Microseconds())
				row.In += float64(sp.In)
				row.Out += float64(sp.Out)
				row.CacheHits += float64(sp.CacheHits)
				row.CacheMiss += float64(sp.CacheMisses)
			}
		}
		if cold {
			tbl.Cold = expl.Total
		} else {
			tbl.Warm += expl.Total
		}
		return nil
	}
	if err := record(w.Pairs[0], true); err != nil {
		return tbl, err
	}
	for _, pair := range w.Pairs {
		if err := record(pair, false); err != nil {
			return tbl, err
		}
	}
	n := float64(len(w.Pairs))
	for _, name := range order {
		row := rows[name]
		row.WarmMicros /= n
		row.In /= n
		row.Out /= n
		row.CacheHits /= n
		row.CacheMiss /= n
		tbl.Rows = append(tbl.Rows, *row)
	}
	tbl.Warm /= time.Duration(len(w.Pairs))
	return tbl, nil
}

// Format renders the stage table, one row per pipeline stage.
func (t StageTable) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Pipeline stage breakdown — top-%d, %d query pairs (cold = first query, fresh CN memo; warm = mean with the memo hot)\n", t.K, t.Queries)
	fmt.Fprintf(&sb, "%-9s %12s %12s %8s %8s %9s %9s\n",
		"stage", "cold µs", "warm µs", "in", "out", "hits", "misses")
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "%-9s %12.1f %12.1f %8.1f %8.1f %9.1f %9.1f\n",
			r.Stage, r.ColdMicros, r.WarmMicros, r.In, r.Out, r.CacheHits, r.CacheMiss)
	}
	fmt.Fprintf(&sb, "%-9s %12.1f %12.1f\n", "total",
		float64(t.Cold.Microseconds()), float64(t.Warm.Microseconds()))
	return sb.String()
}
