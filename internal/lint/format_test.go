package lint

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureFindings is a representative finding set: multiple analyzers,
// multiple files, and an em-dash to pin the JSON escaping behavior.
func fixtureFindings() []Finding {
	return []Finding{
		{
			Pos:  token.Position{Filename: "internal/segidx/segidx.go", Line: 88},
			Name: "atomiccommit",
			Msg:  "os.Rename publishes a file written by os.WriteFile (no fsync); a crash can commit a torn file — use atomicio.WriteFile",
		},
		{
			Pos:  token.Position{Filename: "internal/shard/coordinator.go", Line: 436},
			Name: "maporder",
			Msg:  "slice pending is built by iterating a map and returned without a sort; map order is randomized, so output order differs across runs — sort it first",
		},
	}
}

// TestFormatGoldens pins the exact bytes of both machine-readable
// formats, for a populated run and an empty one: these are the schema
// contract CI consumes, so any change must be a deliberate golden
// update.
func TestFormatGoldens(t *testing.T) {
	cases := []struct {
		golden string
		render func() ([]byte, error)
	}{
		{"format_json.txt", func() ([]byte, error) { return FormatJSON(fixtureFindings()) }},
		{"format_json_empty.txt", func() ([]byte, error) { return FormatJSON(nil) }},
		{"format_sarif.txt", func() ([]byte, error) { return FormatSARIF(fixtureFindings(), Analyzers()) }},
		{"format_sarif_empty.txt", func() ([]byte, error) { return FormatSARIF(nil, Analyzers()) }},
	}
	for _, c := range cases {
		t.Run(c.golden, func(t *testing.T) {
			got, err := c.render()
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden", c.golden)
			if *update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("reading golden (run `go test ./internal/lint -run Format -update`): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s drifted\n--- got ---\n%s--- want ---\n%s", c.golden, got, want)
			}
		})
	}
}

// TestFormatByteStable renders each format twice and demands identical
// bytes — a map sneaking into the report structs would randomize field
// or rule order between calls.
func TestFormatByteStable(t *testing.T) {
	for i := 0; i < 3; i++ {
		a, err := FormatJSON(fixtureFindings())
		if err != nil {
			t.Fatal(err)
		}
		b, err := FormatJSON(fixtureFindings())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatal("FormatJSON is not byte-stable across calls")
		}
		sa, err := FormatSARIF(fixtureFindings(), Analyzers())
		if err != nil {
			t.Fatal(err)
		}
		sb, err := FormatSARIF(fixtureFindings(), Analyzers())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sa, sb) {
			t.Fatal("FormatSARIF is not byte-stable across calls")
		}
	}
}

// TestFormatJSONSchema checks the structural contract a CI jq step
// relies on: version 1, tool xkvet, count matching the findings array,
// every finding carrying file/line/analyzer/message, and an empty run
// emitting [] rather than null.
func TestFormatJSONSchema(t *testing.T) {
	b, err := FormatJSON(fixtureFindings())
	if err != nil {
		t.Fatal(err)
	}
	var r struct {
		Version  int    `json:"version"`
		Tool     string `json:"tool"`
		Count    int    `json:"count"`
		Findings []struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(b, &r); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if r.Version != 1 || r.Tool != "xkvet" {
		t.Errorf("header = version %d tool %q, want version 1 tool xkvet", r.Version, r.Tool)
	}
	if r.Count != len(r.Findings) || r.Count != len(fixtureFindings()) {
		t.Errorf("count %d does not match findings array %d", r.Count, len(r.Findings))
	}
	for i, f := range r.Findings {
		if f.File == "" || f.Line == 0 || f.Analyzer == "" || f.Message == "" {
			t.Errorf("finding %d has empty required field: %+v", i, f)
		}
	}
	empty, err := FormatJSON(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(empty), `"findings": []`) {
		t.Errorf("empty run must emit findings: [], got:\n%s", empty)
	}
}

// TestFormatSARIFSchema checks the SARIF invariants consumers depend
// on: version 2.1.0, one run, every result's ruleId present in the
// driver's rule table, and results: [] on an empty run.
func TestFormatSARIFSchema(t *testing.T) {
	b, err := FormatSARIF(fixtureFindings(), Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(b, &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("want one run of SARIF 2.1.0, got version %q with %d runs", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "xkvet" {
		t.Errorf("driver name %q, want xkvet", run.Tool.Driver.Name)
	}
	ruleIDs := make(map[string]bool)
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	for _, a := range Analyzers() {
		if !ruleIDs[a.Name] {
			t.Errorf("registry analyzer %s missing from the SARIF rule table", a.Name)
		}
	}
	for i, res := range run.Results {
		if !ruleIDs[res.RuleID] {
			t.Errorf("result %d ruleId %q not in the rule table", i, res.RuleID)
		}
		if res.Level != "error" {
			t.Errorf("result %d level %q, want error", i, res.Level)
		}
		if len(res.Locations) != 1 || res.Locations[0].PhysicalLocation.ArtifactLocation.URI == "" ||
			res.Locations[0].PhysicalLocation.Region.StartLine == 0 {
			t.Errorf("result %d lacks a physical location: %+v", i, res)
		}
	}
	empty, err := FormatSARIF(nil, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(empty), `"results": []`) {
		t.Errorf("empty run must emit results: [], got:\n%s", empty)
	}
}
