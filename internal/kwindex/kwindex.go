// Package kwindex implements XKeyword's master index (paper §4, load
// stage item 1): an inverted index that stores, for every keyword k, the
// list of ⟨TOid, nodeID, schemaNode⟩ triplets identifying the nodes that
// contain k. The schema node is needed by the CN generator and the node
// id distinguishes two nodes of the same type inside one target object.
// It replaces the Oracle interMedia Text extension of the paper's
// implementation.
package kwindex

import (
	"sort"
	"strings"
	"unicode"

	"repro/internal/tss"
	"repro/internal/xmlgraph"
)

// Posting locates one occurrence of a keyword.
type Posting struct {
	TO         int64
	Node       xmlgraph.NodeID
	SchemaNode string
}

// Index is the master index. Build once with Build; reads are then safe
// for concurrent use.
type Index struct {
	postings map[string][]Posting
	nTokens  int
}

// Tokenize lower-cases s and splits it into maximal letter/digit runs.
func Tokenize(s string) []string {
	var toks []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, cur.String())
			cur.Reset()
		}
	}
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			cur.WriteRune(unicode.ToLower(r))
		} else {
			flush()
		}
	}
	flush()
	return toks
}

// Build indexes every target-object member node of the object graph: the
// keywords of a node are the tokens of its tag and of its value (paper
// §3.1, keywords(n)). Dummy nodes carry no information and are skipped —
// they belong to no target object.
func Build(og *tss.ObjectGraph) *Index {
	ix := &Index{postings: make(map[string][]Posting)}
	for _, id := range og.Data.Nodes() {
		toID, ok := og.TOOf(id)
		if !ok {
			continue
		}
		n := og.Data.Node(id)
		seen := make(map[string]bool)
		for _, tok := range append(Tokenize(n.Label), Tokenize(n.Value)...) {
			if seen[tok] {
				continue
			}
			seen[tok] = true
			ix.postings[tok] = append(ix.postings[tok], Posting{TO: toID, Node: id, SchemaNode: n.Type})
			ix.nTokens++
		}
	}
	for _, ps := range ix.postings {
		sort.Slice(ps, func(i, j int) bool {
			if ps[i].TO != ps[j].TO {
				return ps[i].TO < ps[j].TO
			}
			return ps[i].Node < ps[j].Node
		})
	}
	return ix
}

// ContainingList returns the postings of keyword k (the containing list
// L(k) of §4). The keyword is tokenized first; a multi-token keyword
// matches nodes containing all its tokens. The returned slice must not
// be modified.
func (ix *Index) ContainingList(k string) []Posting {
	toks := Tokenize(k)
	switch len(toks) {
	case 0:
		return nil
	case 1:
		return ix.postings[toks[0]]
	}
	// Intersect by (TO, Node).
	type key struct {
		to   int64
		node xmlgraph.NodeID
	}
	counts := make(map[key]int)
	byKey := make(map[key]Posting)
	for _, tok := range toks {
		seen := make(map[key]bool)
		for _, p := range ix.postings[tok] {
			k := key{p.TO, p.Node}
			if seen[k] {
				continue
			}
			seen[k] = true
			counts[k]++
			byKey[k] = p
		}
	}
	var out []Posting
	for k, c := range counts {
		if c == len(toks) {
			out = append(out, byKey[k])
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TO != out[j].TO {
			return out[i].TO < out[j].TO
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// SchemaNodes returns the distinct schema nodes whose extensions contain
// keyword k, sorted — the input the CN generator needs.
func (ix *Index) SchemaNodes(k string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, p := range ix.ContainingList(k) {
		if !seen[p.SchemaNode] {
			seen[p.SchemaNode] = true
			out = append(out, p.SchemaNode)
		}
	}
	sort.Strings(out)
	return out
}

// TOSet returns the set of target objects containing keyword k,
// restricted to postings on the given schema node ("" for any).
func (ix *Index) TOSet(k, schemaNode string) map[int64]bool {
	set := make(map[int64]bool)
	for _, p := range ix.ContainingList(k) {
		if schemaNode == "" || p.SchemaNode == schemaNode {
			set[p.TO] = true
		}
	}
	return set
}

// NumPostings returns the total number of postings in the index.
func (ix *Index) NumPostings() int { return ix.nTokens }

// NumKeywords returns the number of distinct indexed tokens.
func (ix *Index) NumKeywords() int { return len(ix.postings) }
