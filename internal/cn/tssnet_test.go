package cn_test

import (
	"strings"
	"testing"

	"repro/internal/cn"
	"repro/internal/datagen"
	"repro/internal/tss"
	"repro/internal/xmlgraph"
)

func mustReduce(t *testing.T, tg *tss.Graph, net *cn.Network) *cn.TSSNetwork {
	t.Helper()
	tn, err := cn.Reduce(tg, net)
	if err != nil {
		t.Fatalf("Reduce(%s): %v", net, err)
	}
	return tn
}

// The size-6 intro network reduces to person{john} <- lineitem -> product{vcr}.
func TestReduceIntroNetwork(t *testing.T) {
	in, ds := fig1Input(t, []string{"john", "vcr"}, 6)
	nets := generate(t, in)
	var target *cn.Network
	for _, n := range nets {
		s := n.String()
		if n.Size() == 6 && strings.Contains(s, "pdescr{vcr}") && strings.Contains(s, "supplier") {
			target = n
			break
		}
	}
	if target == nil {
		t.Fatal("intro network not found")
	}
	tn := mustReduce(t, ds.TSS, target)
	if len(tn.Occs) != 3 || tn.Size() != 2 {
		t.Fatalf("reduced to %s", tn)
	}
	segs := map[string]bool{}
	for _, o := range tn.Occs {
		segs[o.Segment] = true
	}
	for _, want := range []string{"person", "lineitem", "product"} {
		if !segs[want] {
			t.Fatalf("missing segment %s in %s", want, tn)
		}
	}
	if tn.Score() != 6 {
		t.Fatalf("score = %d, want 6 (the CN size)", tn.Score())
	}
	// Keyword constraints preserved with their schema nodes.
	found := 0
	for _, o := range tn.Occs {
		for _, k := range o.Keywords {
			switch {
			case k.Keyword == "john" && k.SchemaNode == "name" && o.Segment == "person":
				found++
			case k.Keyword == "vcr" && k.SchemaNode == "pdescr" && o.Segment == "product":
				found++
			}
		}
	}
	if found != 2 {
		t.Fatalf("keyword constraints lost: %s", tn)
	}
}

// §4's "TV, VCR" example: the CTSSNs of size up to Z=8 must include the
// part-to-part shapes the paper lists — the direct sub-part edge
// (CTSSN1), the shared-parent and chain shapes (CTSSN2/3), and the
// part <- lineitem <- order -> lineitem -> part shape (CTSSN4).
func TestCTSSNEnumeration(t *testing.T) {
	in, ds := fig1Input(t, []string{"tv", "vcr"}, 8)
	nets := generate(t, in)
	var canons []string
	seen := map[string]*cn.TSSNetwork{}
	for _, n := range nets {
		tn := mustReduce(t, ds.TSS, n)
		c := tn.Canon()
		if _, dup := seen[c]; !dup {
			seen[c] = tn
			canons = append(canons, c)
		}
	}
	// Locate the paper's shapes by structure.
	var direct, sharedParent, chain, viaOrder, viaProduct bool
	for _, tn := range seen {
		partOccs, liOccs, orderOccs, prodOccs := 0, 0, 0, 0
		for _, o := range tn.Occs {
			switch o.Segment {
			case "part":
				partOccs++
			case "lineitem":
				liOccs++
			case "order":
				orderOccs++
			case "product":
				prodOccs++
			}
		}
		switch {
		case tn.Size() == 1 && partOccs == 2:
			direct = true // CTSSN1: part{tv} -> part{vcr} (or mirrored)
		case tn.Size() == 2 && partOccs == 3 && sharedTail(tn):
			sharedParent = true // CTSSN2: tv <- X -> vcr
		case tn.Size() == 2 && partOccs == 3 && !sharedTail(tn):
			chain = true // CTSSN3: tv -> X -> vcr
		case tn.Size() == 4 && partOccs == 2 && liOccs == 2 && orderOccs == 1:
			viaOrder = true // CTSSN4: Pa <- L <- O -> L -> Pa
		case partOccs == 1 && prodOccs == 1 && liOccs >= 1:
			viaProduct = true // CTSSN5 analogue: TV part vs VCR product descr
		}
	}
	if !direct {
		t.Error("CTSSN1 (direct sub-part) missing")
	}
	if !sharedParent {
		t.Error("CTSSN2 (shared parent part) missing")
	}
	if !chain {
		t.Error("CTSSN3 (sub-part chain) missing")
	}
	if !viaOrder {
		t.Error("CTSSN4 (via order) missing")
	}
	if !viaProduct {
		t.Error("CTSSN5 analogue (part vs product descr) missing")
	}
	t.Logf("%d CNs reduced to %d distinct CTSSNs", len(nets), len(canons))
}

// sharedTail reports whether some occurrence has two outgoing edges
// (the <- X -> shape) rather than a directed chain.
func sharedTail(tn *cn.TSSNetwork) bool {
	outs := make(map[int]int)
	for _, e := range tn.Edges {
		outs[e.From]++
	}
	for _, c := range outs {
		if c >= 2 {
			return true
		}
	}
	return false
}

func TestReduceMergesIntraSegment(t *testing.T) {
	// name{john} <- person -> nation{us}: one TSS occurrence, no edges.
	ds, err := datagen.TPCHFigure1()
	if err != nil {
		t.Fatal(err)
	}
	net := &cn.Network{
		Occs: []cn.Occ{
			{Schema: "name", Keywords: []string{"john"}},
			{Schema: "person"},
			{Schema: "nation", Keywords: []string{"us"}},
		},
		Edges: []cn.Edge{
			{From: 1, To: 0, Kind: xmlgraph.Containment},
			{From: 1, To: 2, Kind: xmlgraph.Containment},
		},
	}
	tn := mustReduce(t, ds.TSS, net)
	if len(tn.Occs) != 1 || tn.Size() != 0 {
		t.Fatalf("reduced to %s", tn)
	}
	if len(tn.Occs[0].Keywords) != 2 {
		t.Fatalf("merged occurrence keywords = %+v", tn.Occs[0].Keywords)
	}
}

func TestReduceRejectsKeywordOnDummy(t *testing.T) {
	ds, err := datagen.TPCHFigure1()
	if err != nil {
		t.Fatal(err)
	}
	net := &cn.Network{
		Occs: []cn.Occ{{Schema: "supplier", Keywords: []string{"x"}}},
	}
	if _, err := cn.Reduce(ds.TSS, net); err == nil {
		t.Fatal("keyword on dummy accepted")
	}
}

func TestReduceAllGeneratedNetworks(t *testing.T) {
	// Every generated network for several keyword pairs must reduce
	// cleanly, and the reduction must be a tree over TSS occurrences.
	pairs := [][]string{{"john", "vcr"}, {"tv", "vcr"}, {"us", "dvd"}, {"mike", "1005"}}
	for _, kws := range pairs {
		in, ds := fig1Input(t, kws, 8)
		for _, n := range generate(t, in) {
			tn := mustReduce(t, ds.TSS, n)
			if tn.Size() != len(tn.Occs)-1 {
				t.Fatalf("%v: not a tree: %s", kws, tn)
			}
			if tn.Size() > n.Size() {
				t.Fatalf("%v: CTSSN larger than CN: %s vs %s", kws, tn, n)
			}
			// Edge endpoints must match the TSS edge's segments.
			for _, e := range tn.Edges {
				te := ds.TSS.Edge(e.EdgeID)
				if tn.Occs[e.From].Segment != te.From || tn.Occs[e.To].Segment != te.To {
					t.Fatalf("%v: edge %v does not match TSS edge %s", kws, e, te.PathString())
				}
			}
		}
	}
}

func TestReduceDBLPAuthorPair(t *testing.T) {
	// Author-Paper-Author via authorref dummies: 2 TSS edges.
	ds, err := datagen.DBLP(datagen.DefaultDBLPParams())
	if err != nil {
		t.Fatal(err)
	}
	net := &cn.Network{
		Occs: []cn.Occ{
			{Schema: "aname", Keywords: []string{"alice"}},
			{Schema: "author"},
			{Schema: "authorref"},
			{Schema: "paper"},
			{Schema: "authorref"},
			{Schema: "author"},
			{Schema: "aname", Keywords: []string{"bob"}},
		},
		Edges: []cn.Edge{
			{From: 1, To: 0, Kind: xmlgraph.Containment},
			{From: 2, To: 1, Kind: xmlgraph.Reference},
			{From: 3, To: 2, Kind: xmlgraph.Containment},
			{From: 3, To: 4, Kind: xmlgraph.Containment},
			{From: 4, To: 5, Kind: xmlgraph.Reference},
			{From: 5, To: 6, Kind: xmlgraph.Containment},
		},
	}
	tn := mustReduce(t, ds.TSS, net)
	if len(tn.Occs) != 3 || tn.Size() != 2 {
		t.Fatalf("reduced to %s", tn)
	}
	if tn.Score() != 6 {
		t.Fatalf("score = %d", tn.Score())
	}
}
