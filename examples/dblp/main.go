// The dblp example mirrors the paper's demo (Figure 4): a DBLP-like
// bibliography (Figure 14 schema — conferences, years, papers, authors,
// citations) queried with two author names, presented as a ranked list
// of result trees, like the web-search-engine presentation of §3.1.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/datagen"
)

func main() {
	params := datagen.DefaultDBLPParams()
	params.AvgCitations = 10
	ds, err := datagen.DBLP(params)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.LoadPrepared(&core.Prepared{
		Schema: ds.Schema, TSS: ds.TSS, Data: ds.Data, Obj: ds.Obj,
	}, core.Options{Z: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded: %d target objects, %d connection relations (%s decomposition)\n",
		sys.Obj.NumObjects(), len(sys.Decomp.Fragments), sys.Decomp.Name)

	// Pick two authors who co-authored a paper, so close results exist.
	a1, a2 := coAuthors(sys)
	fmt.Printf("\nquery: %q, %q — top 5 results\n", a1, a2)
	results, err := sys.Query([]string{a1, a2}, 5)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range results {
		fmt.Printf("\n#%d  score %d\n%s\n", i+1, r.Score, sys.RenderResult(r))
	}

	// A second query: an author against a title word.
	fmt.Printf("\nquery: %q, %q — top 3 results\n", a1, "keyword")
	results, err = sys.Query([]string{a1, "keyword"}, 3)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range results {
		fmt.Printf("\n#%d  score %d\n%s\n", i+1, r.Score, sys.RenderResult(r))
	}
}

func coAuthors(sys *core.System) (string, string) {
	for _, pa := range sys.Obj.BySegment("paper") {
		var names []string
		for _, e := range sys.Obj.Out(pa) {
			if sys.Obj.TO(e.To).Segment == "author" {
				sum := sys.Obj.Summary(e.To)
				names = append(names, strings.TrimSuffix(strings.SplitN(sum, "name=", 2)[1], "]"))
			}
		}
		if len(names) >= 2 {
			return names[0], names[1]
		}
	}
	log.Fatal("no co-authored paper in the generated data")
	return "", ""
}
