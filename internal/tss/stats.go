package tss

// Stats are the load-stage statistics of §4: the number s(S) of target
// objects per segment and the average number c(S -> S') of neighbors a
// random S-object reaches through each TSS edge, in both directions.
// The optimizer uses them to order joins.
type Stats struct {
	Count map[string]int // segment -> target object count
	// FwdFanout[edgeID] is the average number of To-objects per
	// From-object; BwdFanout the reverse.
	FwdFanout map[int]float64
	BwdFanout map[int]float64
}

// CollectStats computes statistics over the object graph.
func (og *ObjectGraph) CollectStats() *Stats {
	st := &Stats{
		Count:     make(map[string]int),
		FwdFanout: make(map[int]float64),
		BwdFanout: make(map[int]float64),
	}
	for _, id := range og.Objects() {
		st.Count[og.TO(id).Segment]++
	}
	edgeCount := make(map[int]int)
	for _, id := range og.Objects() {
		for _, e := range og.Out(id) {
			edgeCount[e.EdgeID]++
		}
	}
	for _, e := range og.TSS.Edges() {
		n := edgeCount[e.ID]
		if from := st.Count[e.From]; from > 0 {
			st.FwdFanout[e.ID] = float64(n) / float64(from)
		}
		if to := st.Count[e.To]; to > 0 {
			st.BwdFanout[e.ID] = float64(n) / float64(to)
		}
	}
	return st
}

// Fanout returns the average fanout of traversing edgeID in the given
// direction (true = forward).
func (s *Stats) Fanout(edgeID int, forward bool) float64 {
	if forward {
		return s.FwdFanout[edgeID]
	}
	return s.BwdFanout[edgeID]
}
