// Package diskindex is the paged, disk-backed master index: a single
// binary file (conventionally *.xki) holding the inverted index the load
// stage builds, served by ReadAt through a fixed-capacity buffer pool so
// the system can answer keyword queries over datasets whose index does
// not fit in RAM, and so a restored snapshot starts serving without
// rebuilding the index (EMBANKS' disk-based direction for the paper's
// Oracle interMedia Text index; see PAPERS.md).
//
// # File format (version 2)
//
//	┌────────────────────────────────────────────────────────────┐
//	│ header (88 bytes, little endian, CRC-guarded)              │
//	├────────────────────────────────────────────────────────────┤
//	│ posting blocks — per term, delta-encoded varint triplets   │
//	│   ⟨TO delta, node delta (zigzag), schema-node id⟩          │
//	├────────────────────────────────────────────────────────────┤
//	│ schema-node table — uvarint count, then len-prefixed names │
//	├────────────────────────────────────────────────────────────┤
//	│ term dictionary — sorted; per term: len-prefixed token,    │
//	│   posting count, block offset, block length, block CRC32   │
//	│   (uvarints)                                               │
//	└────────────────────────────────────────────────────────────┘
//
// The dictionary and schema table are loaded into memory at Open (they
// are small — one entry per distinct token); posting blocks stay on disk
// and are paged in on demand. A CRC32 over the metadata sections and one
// over the header reject corrupt or truncated files at Open; the
// per-block CRC recorded in each dictionary entry (new in version 2)
// catches corruption inside the lazily paged posting region, which Open
// never touches — no silently wrong posting list can leave the reader.
package diskindex

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

const (
	// FormatVersion is the on-disk format revision.
	//
	// History:
	//
	//	1 — initial format
	//	2 — per-term posting-block CRC32 appended to each dictionary
	//	    entry, so paged reads are checksum-verified
	FormatVersion = 2
	// DefaultPageSize is the buffer-pool page size.
	DefaultPageSize = 4096
	// DefaultCacheBytes is the default buffer-pool budget.
	DefaultCacheBytes = 1 << 20

	headerSize = 88
)

// magic identifies an XKeyword disk index ("XKI" + format marker).
var magic = [4]byte{'X', 'K', 'I', '1'}

// header is the fixed-size file prologue.
type header struct {
	pageSize    uint32
	numTerms    uint64
	numPostings uint64
	postOff     uint64
	postLen     uint64
	schemaOff   uint64
	schemaLen   uint64
	dictOff     uint64
	dictLen     uint64
	metaCRC     uint32 // over the schema table and dictionary bytes
}

// marshal encodes the header, computing its trailing CRC.
func (h *header) marshal() []byte {
	b := make([]byte, headerSize)
	copy(b[0:4], magic[:])
	le := binary.LittleEndian
	le.PutUint32(b[4:], FormatVersion)
	le.PutUint32(b[8:], h.pageSize)
	// b[12:16] reserved.
	le.PutUint64(b[16:], h.numTerms)
	le.PutUint64(b[24:], h.numPostings)
	le.PutUint64(b[32:], h.postOff)
	le.PutUint64(b[40:], h.postLen)
	le.PutUint64(b[48:], h.schemaOff)
	le.PutUint64(b[56:], h.schemaLen)
	le.PutUint64(b[64:], h.dictOff)
	le.PutUint64(b[72:], h.dictLen)
	le.PutUint32(b[80:], h.metaCRC)
	le.PutUint32(b[84:], crc32.ChecksumIEEE(b[:84]))
	return b
}

// unmarshal decodes and validates the fixed-size fields (magic, version,
// header CRC); section-boundary validation is Open's job, which knows
// the file size.
func (h *header) unmarshal(b []byte) error {
	if len(b) != headerSize {
		return fmt.Errorf("diskindex: header is %d bytes, want %d", len(b), headerSize)
	}
	// The magic/version gates deliberately precede the CRC check so a
	// foreign or stale file reports "not an index" / "wrong version"
	// instead of a misleading corruption error; both reads are rejected
	// on mismatch, never parsed onward.
	if [4]byte(b[0:4]) != magic { //xk:ignore crcgate magic and version are identification gates, checked before the CRC on purpose
		return fmt.Errorf("diskindex: bad magic %q — not an .xki index file", b[0:4])
	}
	le := binary.LittleEndian
	if v := le.Uint32(b[4:]); v != FormatVersion {
		return fmt.Errorf("diskindex: format version %d, want %d — re-run the load stage to rebuild the index", v, FormatVersion)
	}
	if got, want := crc32.ChecksumIEEE(b[:84]), le.Uint32(b[84:]); got != want {
		return fmt.Errorf("diskindex: header checksum mismatch (file corrupt)")
	}
	h.pageSize = le.Uint32(b[8:])
	h.numTerms = le.Uint64(b[16:])
	h.numPostings = le.Uint64(b[24:])
	h.postOff = le.Uint64(b[32:])
	h.postLen = le.Uint64(b[40:])
	h.schemaOff = le.Uint64(b[48:])
	h.schemaLen = le.Uint64(b[56:])
	h.dictOff = le.Uint64(b[64:])
	h.dictLen = le.Uint64(b[72:])
	h.metaCRC = le.Uint32(b[80:])
	return nil
}

// uvarint reads one unsigned varint from b at position i, erroring
// instead of panicking on truncated or oversized encodings.
func uvarint(b []byte, i int) (uint64, int, error) {
	v, n := binary.Uvarint(b[i:])
	if n <= 0 {
		return 0, 0, fmt.Errorf("diskindex: malformed varint at byte %d", i)
	}
	return v, i + n, nil
}

// varint is uvarint's signed (zigzag) counterpart.
func varint(b []byte, i int) (int64, int, error) {
	v, n := binary.Varint(b[i:])
	if n <= 0 {
		return 0, 0, fmt.Errorf("diskindex: malformed varint at byte %d", i)
	}
	return v, i + n, nil
}
