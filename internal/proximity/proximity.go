// Package proximity implements the second data-graph baseline of §2:
// the Find/Near semantics of Goldman, Shivakumar, Venkatasubramanian
// and Garcia-Molina ("Proximity Search in Databases", VLDB 1998 [12]).
// A query names a Find set and a Near set, each generated from
// keywords; the system ranks the Find objects by their distance to the
// nearest Near object. Their system precomputed hub indices to bound
// the distance computations; with in-memory graphs a multi-source BFS
// from the Near set gives exact distances directly, which is what this
// implementation does. Like BANKS, it works on the raw data graph and
// ignores the schema — the contrast XKeyword's §2 draws.
package proximity

import (
	"fmt"
	"sort"

	"repro/internal/kwindex"
	"repro/internal/xmlgraph"
)

// Ranked is one Find object with its distance to the Near set.
type Ranked struct {
	Node     xmlgraph.NodeID
	Distance int
}

// Searcher answers Find/Near queries over one data graph.
type Searcher struct {
	g       *xmlgraph.Graph
	byToken map[string][]xmlgraph.NodeID
}

// NewSearcher indexes the graph's tokens.
func NewSearcher(g *xmlgraph.Graph) *Searcher {
	s := &Searcher{g: g, byToken: make(map[string][]xmlgraph.NodeID)}
	for _, id := range g.Nodes() {
		n := g.Node(id)
		seen := make(map[string]bool)
		for _, tok := range append(kwindex.Tokenize(n.Label), kwindex.Tokenize(n.Value)...) {
			if !seen[tok] {
				seen[tok] = true
				s.byToken[tok] = append(s.byToken[tok], id)
			}
		}
	}
	return s
}

// Options bound a Find/Near query.
type Options struct {
	// MaxDistance prunes the BFS (0 means 8, matching the Z default).
	MaxDistance int
	// K bounds the ranking (0 = all).
	K int
}

// FindNear returns the nodes matching the find keyword, ranked by their
// undirected distance to the nearest node matching the near keyword.
// Find objects farther than MaxDistance from every Near object are
// omitted (their distance is effectively infinite).
func (s *Searcher) FindNear(find, near string, opts Options) ([]Ranked, error) {
	if opts.MaxDistance <= 0 {
		opts.MaxDistance = 8
	}
	findSet := s.match(find)
	if findSet == nil {
		return nil, fmt.Errorf("proximity: find keyword %q has no tokens or matches", find)
	}
	nearSet := s.match(near)
	if nearSet == nil {
		return nil, fmt.Errorf("proximity: near keyword %q has no tokens or matches", near)
	}
	// Multi-source BFS from the Near set (the role the hub index played).
	dist := make(map[xmlgraph.NodeID]int, len(nearSet))
	queue := make([]xmlgraph.NodeID, 0, len(nearSet))
	for _, id := range nearSet {
		dist[id] = 0
		queue = append(queue, id)
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if dist[cur] >= opts.MaxDistance {
			continue
		}
		for _, nb := range s.g.UndirectedNeighbors(cur) {
			if _, seen := dist[nb.Node]; !seen {
				dist[nb.Node] = dist[cur] + 1
				queue = append(queue, nb.Node)
			}
		}
	}
	var out []Ranked
	for _, id := range findSet {
		if d, ok := dist[id]; ok {
			out = append(out, Ranked{Node: id, Distance: d})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			return out[i].Distance < out[j].Distance
		}
		return out[i].Node < out[j].Node
	})
	if opts.K > 0 && len(out) > opts.K {
		out = out[:opts.K]
	}
	return out, nil
}

// match returns the nodes containing every token of the keyword, or nil
// if the keyword is empty or matches nothing.
func (s *Searcher) match(kw string) []xmlgraph.NodeID {
	toks := kwindex.Tokenize(kw)
	if len(toks) == 0 {
		return nil
	}
	counts := make(map[xmlgraph.NodeID]int)
	for _, tok := range toks {
		for _, id := range s.byToken[tok] {
			counts[id]++
		}
	}
	var out []xmlgraph.NodeID
	for id, c := range counts {
		if c == len(toks) {
			out = append(out, id)
		}
	}
	if len(out) == 0 {
		return nil
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
