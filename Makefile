# Development targets. `make check` is what CI (and every PR) runs:
# the tier-1 gate plus vet and the race-focused concurrency suites.

GO ?= go

.PHONY: check tier1 vet race bench-qserve

check: vet tier1 race

# Tier-1 gate (see ROADMAP.md).
tier1:
	$(GO) build ./... && $(GO) test ./...

vet:
	$(GO) vet ./...

# The serving layer and the executor are the concurrency-heavy
# packages; run their tests under the race detector.
race:
	$(GO) test -race ./internal/qserve/ ./internal/exec/

# Cold vs warm serving-layer latency on the DBLP workload.
bench-qserve:
	$(GO) test -run xxx -bench BenchmarkQServe -benchtime 50x .
