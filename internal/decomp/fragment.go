// Package decomp implements XKeyword's TSS graph decompositions (paper
// §5): fragments — walks over (unfolded) TSS graphs — that materialize
// into connection relations, the MVD classification of Theorem 5.3, the
// useless-fragment rules, CTSSN covering under a join budget B, the
// decomposition algorithm of Figure 12, and the decomposition presets
// compared in the experiments (§7).
package decomp

import (
	"fmt"
	"strings"

	"repro/internal/tss"
)

// Dir is the traversal direction of a TSS edge inside a fragment walk.
type Dir uint8

const (
	// Fwd traverses the edge From -> To.
	Fwd Dir = iota
	// Bwd traverses the edge To -> From.
	Bwd
)

func (d Dir) flip() Dir {
	if d == Fwd {
		return Bwd
	}
	return Fwd
}

// Step is one hop of a fragment walk.
type Step struct {
	EdgeID int
	Dir    Dir
}

// Fragment is a walk over the TSS graph (possibly revisiting segments —
// the unfolded-graph fragments of Definition 5.2). Fragments are
// canonicalized at construction: a walk and its reverse denote the same
// fragment.
type Fragment struct {
	steps []Step
}

// NewFragment canonicalizes and validates a walk: consecutive steps must
// share the segment they meet at.
func NewFragment(tg *tss.Graph, steps []Step) (Fragment, error) {
	if len(steps) == 0 {
		return Fragment{}, fmt.Errorf("decomp: empty fragment")
	}
	for i, s := range steps {
		if s.EdgeID < 0 || s.EdgeID >= tg.NumEdges() {
			return Fragment{}, fmt.Errorf("decomp: step %d: unknown edge %d", i, s.EdgeID)
		}
		if i > 0 {
			if stepTo(tg, steps[i-1]) != stepFrom(tg, s) {
				return Fragment{}, fmt.Errorf("decomp: steps %d and %d do not meet", i-1, i)
			}
		}
	}
	f := Fragment{steps: append([]Step(nil), steps...)}
	rev := f.reversedSteps()
	if stepsKey(rev) < stepsKey(f.steps) {
		f.steps = rev
	}
	return f, nil
}

// MustFragment is NewFragment panicking on error, for tests and tables.
func MustFragment(tg *tss.Graph, steps ...Step) Fragment {
	f, err := NewFragment(tg, steps)
	if err != nil {
		panic(err)
	}
	return f
}

// stepFrom returns the segment a step starts at.
func stepFrom(tg *tss.Graph, s Step) string {
	e := tg.Edge(s.EdgeID)
	if s.Dir == Fwd {
		return e.From
	}
	return e.To
}

// stepTo returns the segment a step ends at.
func stepTo(tg *tss.Graph, s Step) string {
	e := tg.Edge(s.EdgeID)
	if s.Dir == Fwd {
		return e.To
	}
	return e.From
}

// stepExpanding reports whether traversing the step may fan out (one
// source instance, many target instances).
func stepExpanding(tg *tss.Graph, s Step) bool {
	e := tg.Edge(s.EdgeID)
	if s.Dir == Fwd {
		return e.ForwardMany
	}
	return e.BackwardMany
}

// Size returns the fragment's size in TSS edges.
func (f Fragment) Size() int { return len(f.steps) }

// Steps returns a copy of the canonical step sequence.
func (f Fragment) Steps() []Step { return append([]Step(nil), f.steps...) }

func (f Fragment) reversedSteps() []Step {
	out := make([]Step, len(f.steps))
	for i, s := range f.steps {
		out[len(f.steps)-1-i] = Step{EdgeID: s.EdgeID, Dir: s.Dir.flip()}
	}
	return out
}

func stepsKey(steps []Step) string {
	var sb strings.Builder
	for _, s := range steps {
		d := byte('f')
		if s.Dir == Bwd {
			d = 'b'
		}
		fmt.Fprintf(&sb, "e%d%c.", s.EdgeID, d)
	}
	return sb.String()
}

// Key returns the fragment's canonical identity.
func (f Fragment) Key() string { return stepsKey(f.steps) }

// RelationName returns the connection relation name for this fragment.
func (f Fragment) RelationName() string {
	return "CR_" + strings.TrimSuffix(strings.ReplaceAll(f.Key(), ".", "_"), "_")
}

// Segments returns the walk's segment sequence (length Size()+1).
func (f Fragment) Segments(tg *tss.Graph) []string {
	out := []string{stepFrom(tg, f.steps[0])}
	for _, s := range f.steps {
		out = append(out, stepTo(tg, s))
	}
	return out
}

// String renders the fragment, e.g. "person>order>lineitem".
func (f Fragment) String(tg *tss.Graph) string {
	var sb strings.Builder
	sb.WriteString(stepFrom(tg, f.steps[0]))
	for _, s := range f.steps {
		if s.Dir == Fwd {
			sb.WriteString(">")
		} else {
			sb.WriteString("<")
		}
		sb.WriteString(stepTo(tg, s))
	}
	return sb.String()
}

// HasMVD implements Theorem 5.3: a fragment has a non-trivial multivalued
// dependency iff some interior segment is entered by a contracting step
// and left by an expanding step — the walk branches out independently on
// both sides of that segment (the O of the PaLOLPa example, Figure 10).
func (f Fragment) HasMVD(tg *tss.Graph) bool {
	for i := 0; i+1 < len(f.steps); i++ {
		// leftMany: from the interior node, the reverse of step i fans out.
		leftMany := stepExpanding(tg, Step{EdgeID: f.steps[i].EdgeID, Dir: f.steps[i].Dir.flip()})
		rightMany := stepExpanding(tg, f.steps[i+1])
		if leftMany && rightMany {
			return true
		}
	}
	return false
}

// Class labels a fragment's normal form (§5.1).
type Class uint8

const (
	// Class4NF: single-edge fragments are always in 4NF.
	Class4NF Class = iota
	// ClassInlined: multi-edge fragments without MVDs ("inlined").
	ClassInlined
	// ClassMVD: fragments whose relation has a non-trivial MVD.
	ClassMVD
)

// String names the class.
func (c Class) String() string {
	switch c {
	case Class4NF:
		return "4NF"
	case ClassInlined:
		return "inlined"
	default:
		return "MVD"
	}
}

// Classify returns the fragment's normal-form class.
func (f Fragment) Classify(tg *tss.Graph) Class {
	if f.HasMVD(tg) {
		return ClassMVD
	}
	if len(f.steps) == 1 {
		return Class4NF
	}
	return ClassInlined
}

// IsUseless implements the two useless-fragment rules of §5:
//
//  1. A walk that leaves an interior segment on both sides through the
//     same to-one choice prefix can never connect two distinct target
//     objects (children of a choice node never connect through it) —
//     the PaLPr example. The same holds for leaving twice through one
//     to-one edge.
//  2. A walk that enters an interior segment from both sides through
//     paths with no reference edge (T1 -> T <- T2, l1 != ref, l2 != ref)
//     is impossible: the segment's containment ancestry is unique.
func (f Fragment) IsUseless(tg *tss.Graph) bool {
	for i := 0; i+1 < len(f.steps); i++ {
		a, b := f.steps[i], f.steps[i+1]
		ea, eb := tg.Edge(a.EdgeID), tg.Edge(b.EdgeID)
		// Pattern <-X->: both edges leave the interior segment.
		if a.Dir == Bwd && b.Dir == Fwd {
			if ea.ChoicePrefix != "" && ea.ChoicePrefix == eb.ChoicePrefix {
				return true
			}
			if a.EdgeID == b.EdgeID && !ea.ForwardMany {
				return true
			}
		}
		// Pattern ->X<-: both edges enter the interior segment.
		if a.Dir == Fwd && b.Dir == Bwd {
			if !ea.BackwardMany && !eb.BackwardMany {
				return true
			}
		}
	}
	return false
}
