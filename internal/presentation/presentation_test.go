package presentation_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/presentation"
)

func fig1System(t *testing.T) *core.System {
	t.Helper()
	ds, err := datagen.TPCHFigure1()
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.LoadPrepared(&core.Prepared{Schema: ds.Schema, TSS: ds.TSS, Data: ds.Data, Obj: ds.Obj},
		core.Options{Z: 8})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// usVCRNetwork finds the Figure 2/3 network person{us}—lineitem—part—part{vcr}.
func usVCRNetwork(t *testing.T, s *core.System) int {
	t.Helper()
	nets, err := s.Networks([]string{"us", "vcr"})
	if err != nil {
		t.Fatal(err)
	}
	for i, tn := range nets {
		segs := map[string]int{}
		for _, o := range tn.Occs {
			segs[o.Segment]++
		}
		if len(tn.Occs) == 4 && segs["person"] == 1 && segs["lineitem"] == 1 && segs["part"] == 2 {
			return i
		}
	}
	t.Fatal("figure-3 network not found")
	return -1
}

func buildPG(t *testing.T, s *core.System, sess *presentation.Session) *presentation.Graph {
	t.Helper()
	nets, err := s.Networks([]string{"us", "vcr"})
	if err != nil {
		t.Fatal(err)
	}
	g, err := sess.Build(nets[usVCRNetwork(t, s)])
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// The Figure 3 scenario: the initial graph is one MTTON; expanding the
// lineitem occurrence displays both lineitems connected to the person
// and TV part; contracting back to one lineitem restores a single tree.
func TestFigure3ExpandContract(t *testing.T) {
	s := fig1System(t)
	sess := s.PresentationSession(nil)
	g := buildPG(t, s, sess)

	if g.NumDisplayed() != 4 {
		t.Fatalf("initial PG has %d nodes, want 4", g.NumDisplayed())
	}
	// Locate the lineitem occurrence.
	liOcc := -1
	for i, o := range g.Net.Occs {
		if o.Segment == "lineitem" {
			liOcc = i
		}
	}
	added, err := g.Expand(liOcc, presentation.ExpandOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Both l1 and l2 reference the TV part: one is displayed already,
	// the other must be added.
	if added != 1 {
		t.Fatalf("expand added %d lineitems, want 1", added)
	}
	if got := len(g.Displayed(liOcc)); got != 2 {
		t.Fatalf("lineitems displayed = %d, want 2", got)
	}
	if !g.Expanded[liOcc] {
		t.Fatal("occurrence not marked expanded")
	}
	// The person and parts stay as they were (minimal expansion reuses
	// displayed neighbors).
	for i, o := range g.Net.Occs {
		if i != liOcc && len(g.Displayed(i)) != 1 {
			t.Fatalf("occurrence %d (%s) displays %d nodes, want 1", i, o.Segment, len(g.Displayed(i)))
		}
	}

	// Contract back to the first lineitem.
	keep := g.Displayed(liOcc)[0]
	if err := g.Contract(liOcc, keep); err != nil {
		t.Fatal(err)
	}
	if got := len(g.Displayed(liOcc)); got != 1 {
		t.Fatalf("after contraction: %d lineitems", got)
	}
	if g.NumDisplayed() != 4 {
		t.Fatalf("after contraction PG has %d nodes, want 4", g.NumDisplayed())
	}
	if g.Expanded[liOcc] {
		t.Fatal("occurrence still marked expanded")
	}
}

// Expanding the VCR part occurrence displays both VCR sub-parts.
func TestExpandKeywordOccurrence(t *testing.T) {
	s := fig1System(t)
	sess := s.PresentationSession(nil)
	g := buildPG(t, s, sess)
	vcrOcc := -1
	for i, o := range g.Net.Occs {
		for _, k := range o.Keywords {
			if k.Keyword == "vcr" {
				vcrOcc = i
			}
		}
	}
	if vcrOcc < 0 {
		t.Fatal("vcr occurrence missing")
	}
	if _, err := g.Expand(vcrOcc, presentation.ExpandOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := len(g.Displayed(vcrOcc)); got != 2 {
		t.Fatalf("vcr parts displayed = %d, want 2", got)
	}
}

func TestExpandMaxNodes(t *testing.T) {
	s := fig1System(t)
	sess := s.PresentationSession(nil)
	g := buildPG(t, s, sess)
	liOcc := -1
	for i, o := range g.Net.Occs {
		if o.Segment == "lineitem" {
			liOcc = i
		}
	}
	added, err := g.Expand(liOcc, presentation.ExpandOptions{MaxNodes: 0})
	if err != nil {
		t.Fatal(err)
	}
	if added < 1 {
		t.Fatalf("added = %d", added)
	}
}

// Every displayed node must lie on an MTTON of displayed nodes
// (property (c)) after arbitrary navigation.
func TestPropertyCInvariant(t *testing.T) {
	s := fig1System(t)
	sess := s.PresentationSession(nil)
	g := buildPG(t, s, sess)
	for occ := range g.Net.Occs {
		if _, err := g.Expand(occ, presentation.ExpandOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	// Validate: every displayed (occ, TO) appears in some full result
	// whose bindings are all displayed.
	all, err := s.QueryAll([]string{"us", "vcr"})
	if err != nil {
		t.Fatal(err)
	}
	canon := g.Net.Canon()
	supported := make(map[int]map[int64]bool)
	for i := range g.Net.Occs {
		supported[i] = map[int64]bool{}
	}
	for _, r := range all {
		if r.Net.Canon() != canon {
			continue
		}
		inPG := true
		for i, to := range r.Bind {
			if !g.Active[i][to] {
				inPG = false
				break
			}
		}
		if inPG {
			for i, to := range r.Bind {
				supported[i][to] = true
			}
		}
	}
	for i := range g.Net.Occs {
		for _, to := range g.Displayed(i) {
			if !supported[i][to] {
				t.Fatalf("displayed node occ=%d to=%d lies on no displayed MTTON", i, to)
			}
		}
	}
}

// The three probe sets of Figure 16(b) must produce the same expansions.
func TestProbeSetEquivalence(t *testing.T) {
	s := fig1System(t)
	variants := map[string]*presentation.Session{
		"combination": s.PresentationSession(nil),
		"minimal":     s.PresentationSession(s.MinimalFragments()),
		"inlined":     s.PresentationSession(s.InlinedFragments()),
	}
	var want []int64
	for name, sess := range variants {
		g := buildPG(t, s, sess)
		liOcc := -1
		for i, o := range g.Net.Occs {
			if o.Segment == "lineitem" {
				liOcc = i
			}
		}
		if _, err := g.Expand(liOcc, presentation.ExpandOptions{}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := g.Displayed(liOcc)
		if want == nil {
			want = got
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("%s displayed %v, want %v", name, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s displayed %v, want %v", name, got, want)
			}
		}
	}
}

func TestErrorPaths(t *testing.T) {
	s := fig1System(t)
	sess := s.PresentationSession(nil)
	g := buildPG(t, s, sess)
	if _, err := g.Expand(-1, presentation.ExpandOptions{}); err == nil {
		t.Fatal("bad occurrence accepted")
	}
	if err := g.Contract(0, 999999); err == nil {
		t.Fatal("undisplayed keep accepted")
	}
	// Building a PG for a resultless network fails.
	nets, err := s.Networks([]string{"mike", "tv"})
	if err != nil {
		t.Fatal(err)
	}
	failed := false
	for _, tn := range nets {
		if _, err := sess.Build(tn); err != nil {
			failed = true
			if !strings.Contains(err.Error(), "no results") {
				t.Fatalf("unexpected error: %v", err)
			}
		}
	}
	_ = failed // some networks may have results; the loop checks error text
}
